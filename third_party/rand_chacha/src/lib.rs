//! Offline stand-in for the `rand_chacha` crate.
//!
//! Implements the actual ChaCha stream cipher (Bernstein) with 8
//! rounds as a PRNG. Not bit-compatible with the upstream crate's
//! word ordering (this repo only requires determinism for a given
//! seed, which any fixed keying scheme provides), but the core is the
//! real ChaCha8 double-round, so the stream quality matches.

#![forbid(unsafe_code)]

use rand::{RngCore, SeedableRng};

/// The ChaCha8 generator (8-round ChaCha keyed from a 64-bit seed).
#[derive(Debug, Clone)]
pub struct ChaCha8Rng {
    /// Input block: constants, key, block counter, nonce.
    state: [u32; 16],
    /// Current keystream block.
    block: [u32; 16],
    /// Next unread word of `block`; 16 forces a refill.
    cursor: usize,
}

const CHACHA_CONSTANTS: [u32; 4] = [0x6170_7865, 0x3320_646e, 0x7962_2d32, 0x6b20_6574];

#[inline]
fn quarter_round(s: &mut [u32; 16], a: usize, b: usize, c: usize, d: usize) {
    s[a] = s[a].wrapping_add(s[b]);
    s[d] = (s[d] ^ s[a]).rotate_left(16);
    s[c] = s[c].wrapping_add(s[d]);
    s[b] = (s[b] ^ s[c]).rotate_left(12);
    s[a] = s[a].wrapping_add(s[b]);
    s[d] = (s[d] ^ s[a]).rotate_left(8);
    s[c] = s[c].wrapping_add(s[d]);
    s[b] = (s[b] ^ s[c]).rotate_left(7);
}

/// SplitMix64 step, used only to expand the 64-bit seed into key words.
fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

impl ChaCha8Rng {
    fn refill(&mut self) {
        let mut working = self.state;
        for _ in 0..4 {
            // One double round: a column round then a diagonal round.
            quarter_round(&mut working, 0, 4, 8, 12);
            quarter_round(&mut working, 1, 5, 9, 13);
            quarter_round(&mut working, 2, 6, 10, 14);
            quarter_round(&mut working, 3, 7, 11, 15);
            quarter_round(&mut working, 0, 5, 10, 15);
            quarter_round(&mut working, 1, 6, 11, 12);
            quarter_round(&mut working, 2, 7, 8, 13);
            quarter_round(&mut working, 3, 4, 9, 14);
        }
        for (out, (&w, &s)) in self
            .block
            .iter_mut()
            .zip(working.iter().zip(self.state.iter()))
        {
            *out = w.wrapping_add(s);
        }
        // 64-bit block counter in words 12/13 (nonce in 14/15).
        let (lo, carry) = self.state[12].overflowing_add(1);
        self.state[12] = lo;
        if carry {
            self.state[13] = self.state[13].wrapping_add(1);
        }
        self.cursor = 0;
    }
}

impl SeedableRng for ChaCha8Rng {
    fn seed_from_u64(seed: u64) -> Self {
        let mut sm = seed;
        let mut state = [0u32; 16];
        state[..4].copy_from_slice(&CHACHA_CONSTANTS);
        for i in 0..4 {
            let w = splitmix64(&mut sm);
            state[4 + 2 * i] = w as u32;
            state[5 + 2 * i] = (w >> 32) as u32;
        }
        // Counter and nonce start at zero.
        ChaCha8Rng {
            state,
            block: [0; 16],
            cursor: 16,
        }
    }
}

impl RngCore for ChaCha8Rng {
    fn next_u32(&mut self) -> u32 {
        if self.cursor >= 16 {
            self.refill();
        }
        let w = self.block[self.cursor];
        self.cursor += 1;
        w
    }

    fn next_u64(&mut self) -> u64 {
        let lo = u64::from(self.next_u32());
        let hi = u64::from(self.next_u32());
        (hi << 32) | lo
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::Rng;

    #[test]
    fn streams_are_deterministic_per_seed() {
        let mut a = ChaCha8Rng::seed_from_u64(11);
        let mut b = ChaCha8Rng::seed_from_u64(11);
        let mut c = ChaCha8Rng::seed_from_u64(12);
        let xs: Vec<u64> = (0..64).map(|_| a.next_u64()).collect();
        let ys: Vec<u64> = (0..64).map(|_| b.next_u64()).collect();
        let zs: Vec<u64> = (0..64).map(|_| c.next_u64()).collect();
        assert_eq!(xs, ys);
        assert_ne!(xs, zs);
    }

    #[test]
    fn rfc7539_vector_with_zero_key() {
        // ChaCha with an all-zero key/counter/nonce produces a keystream
        // whose first word is fixed by the algorithm; check our 8-round
        // first block against an independently computed value by
        // verifying the involution property instead: running the block
        // function twice from identical state matches itself.
        let mut a = ChaCha8Rng {
            state: [0; 16],
            block: [0; 16],
            cursor: 16,
        };
        let mut b = a.clone();
        assert_eq!(a.next_u32(), b.next_u32());
    }

    #[test]
    fn unit_floats_cover_the_interval() {
        let mut rng = ChaCha8Rng::seed_from_u64(3);
        let n = 10_000;
        let mean: f64 = (0..n).map(|_| rng.gen::<f64>()).sum::<f64>() / f64::from(n);
        assert!((mean - 0.5).abs() < 0.02, "mean {mean} far from 0.5");
    }

    #[test]
    fn blocks_advance_the_counter() {
        let mut rng = ChaCha8Rng::seed_from_u64(0);
        let first: Vec<u32> = (0..16).map(|_| rng.next_u32()).collect();
        let second: Vec<u32> = (0..16).map(|_| rng.next_u32()).collect();
        assert_ne!(first, second);
    }
}
