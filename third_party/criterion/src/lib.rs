//! Offline stand-in for the `criterion` crate.
//!
//! Implements the API surface the workspace's benches use
//! (`criterion_group!`/`criterion_main!`, benchmark groups,
//! `bench_function` / `bench_with_input`, `Bencher::iter`,
//! [`black_box`]). Instead of criterion's statistical machinery it
//! runs each closure `sample_size` times around a warm-up pass and
//! prints the mean wall time — enough to compare hot paths while the
//! registry is offline.

#![forbid(unsafe_code)]

use std::fmt::Display;
use std::time::{Duration, Instant};

/// Opaque value barrier preventing the optimizer from deleting work.
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// A benchmark identifier (`group/function/parameter`).
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    label: String,
}

impl BenchmarkId {
    /// Id with a function name and a parameter.
    pub fn new(function: impl Display, parameter: impl Display) -> Self {
        BenchmarkId {
            label: format!("{function}/{parameter}"),
        }
    }

    /// Id from a parameter alone.
    pub fn from_parameter(parameter: impl Display) -> Self {
        BenchmarkId {
            label: parameter.to_string(),
        }
    }
}

impl From<&str> for BenchmarkId {
    fn from(label: &str) -> Self {
        BenchmarkId {
            label: label.to_string(),
        }
    }
}

impl From<String> for BenchmarkId {
    fn from(label: String) -> Self {
        BenchmarkId { label }
    }
}

/// Runs one benchmark's measurement loop.
#[derive(Debug)]
pub struct Bencher {
    samples: usize,
    /// Mean duration of one iteration, filled by [`Bencher::iter`].
    measured: Option<Duration>,
}

impl Bencher {
    /// Times `routine`, running one warm-up pass plus `samples`
    /// measured passes.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut routine: F) {
        black_box(routine());
        let start = Instant::now();
        for _ in 0..self.samples {
            black_box(routine());
        }
        self.measured = Some(start.elapsed() / self.samples as u32);
    }
}

/// A named set of related benchmarks.
#[derive(Debug)]
pub struct BenchmarkGroup {
    name: String,
    sample_size: usize,
}

impl BenchmarkGroup {
    /// Sets the number of measured iterations per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Benchmarks `routine` with no input.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, mut routine: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id = id.into();
        let mut b = Bencher {
            samples: self.sample_size,
            measured: None,
        };
        routine(&mut b);
        self.report(&id, b.measured);
        self
    }

    /// Benchmarks `routine` against a borrowed input.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut routine: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let mut b = Bencher {
            samples: self.sample_size,
            measured: None,
        };
        routine(&mut b, input);
        self.report(&id, b.measured);
        self
    }

    fn report(&self, id: &BenchmarkId, measured: Option<Duration>) {
        match measured {
            Some(d) => println!(
                "bench {}/{}: {:>12.3?} per iter ({} samples)",
                self.name, id.label, d, self.sample_size
            ),
            None => println!("bench {}/{}: no measurement taken", self.name, id.label),
        }
    }

    /// Ends the group (no-op; parity with criterion).
    pub fn finish(self) {}
}

/// The top-level benchmark driver.
#[derive(Debug, Default)]
pub struct Criterion {}

impl Criterion {
    /// Opens a named group.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup {
        BenchmarkGroup {
            name: name.into(),
            sample_size: 20,
        }
    }

    /// Benchmarks `routine` outside any group.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, routine: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        self.benchmark_group("top").bench_function(id, routine);
        self
    }
}

/// Declares a function bundling the listed benchmarks.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        fn $name() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Declares `main` running the listed groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn groups_run_and_measure() {
        let mut c = Criterion::default();
        let mut g = c.benchmark_group("g");
        g.sample_size(3);
        let mut runs = 0u32;
        g.bench_function("count", |b| {
            b.iter(|| {
                runs += 1;
            })
        });
        // one warm-up + three samples
        assert_eq!(runs, 4);
        g.finish();
    }
}
