//! Offline stand-in for the `rand` crate (0.8 API subset).
//!
//! The build environment has no crates-io access, so this in-tree crate
//! provides exactly the trait surface the workspace uses: [`RngCore`],
//! [`Rng`] (with `gen` / `gen_range` / `gen_bool`), and
//! [`SeedableRng::seed_from_u64`]. Generators live in the sibling
//! `rand_chacha` stand-in. Sampling uses the usual 53-bit mantissa
//! trick for floats and rejection-free modulo reduction for integers
//! (the tiny modulo bias is irrelevant for simulation workloads).

#![forbid(unsafe_code)]

use std::ops::{Range, RangeInclusive};

/// A low-level source of random 32/64-bit words.
pub trait RngCore {
    /// Returns the next random `u32`.
    fn next_u32(&mut self) -> u32;
    /// Returns the next random `u64`.
    fn next_u64(&mut self) -> u64;
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u32(&mut self) -> u32 {
        (**self).next_u32()
    }
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// A generator that can be deterministically seeded.
pub trait SeedableRng: Sized {
    /// Creates a generator from a 64-bit seed.
    fn seed_from_u64(state: u64) -> Self;
}

/// Types samplable uniformly over their "standard" domain
/// (`[0, 1)` for floats, the full range for integers).
pub trait StandardSample {
    /// Draws one value from `rng`.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl StandardSample for f64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 significant bits, uniform in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl StandardSample for f32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u32() >> 8) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

impl StandardSample for bool {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32() & 1 == 1
    }
}

macro_rules! impl_standard_int {
    ($($t:ty),*) => {$(
        impl StandardSample for $t {
            fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}
impl_standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// Ranges that can produce a uniform sample of `T`.
pub trait SampleRange<T> {
    /// Draws one value in the range from `rng`.
    fn sample_one<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! impl_sample_range_int {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_one<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let width = (self.end as u128).wrapping_sub(self.start as u128);
                self.start + (rng.next_u64() as u128 % width) as $t
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_one<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample empty range");
                let width = (hi as u128) - (lo as u128) + 1;
                lo + (rng.next_u64() as u128 % width) as $t
            }
        }
    )*};
}
impl_sample_range_int!(u8, u16, u32, u64, usize, i32, i64);

impl SampleRange<f64> for Range<f64> {
    fn sample_one<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "cannot sample empty range");
        self.start + f64::sample(rng) * (self.end - self.start)
    }
}

impl SampleRange<f64> for RangeInclusive<f64> {
    fn sample_one<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        let (lo, hi) = (*self.start(), *self.end());
        assert!(lo <= hi, "cannot sample empty range");
        lo + f64::sample(rng) * (hi - lo)
    }
}

/// High-level sampling helpers, blanket-implemented for every
/// [`RngCore`].
pub trait Rng: RngCore {
    /// Draws a value from the type's standard distribution.
    fn gen<T: StandardSample>(&mut self) -> T {
        T::sample(self)
    }

    /// Draws a value uniformly from `range`.
    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T {
        range.sample_one(self)
    }

    /// Returns `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool {
        self.gen::<f64>() < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

#[cfg(test)]
mod tests {
    use super::*;

    struct Counter(u64);
    impl RngCore for Counter {
        fn next_u32(&mut self) -> u32 {
            self.next_u64() as u32
        }
        fn next_u64(&mut self) -> u64 {
            self.0 = self.0.wrapping_mul(6364136223846793005).wrapping_add(1);
            self.0
        }
    }

    #[test]
    fn floats_stay_in_unit_interval() {
        let mut rng = Counter(42);
        for _ in 0..1000 {
            let x: f64 = rng.gen();
            assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    fn ranges_respect_bounds() {
        let mut rng = Counter(7);
        for _ in 0..1000 {
            let a = rng.gen_range(3usize..10);
            assert!((3..10).contains(&a));
            let b = rng.gen_range(0u32..=5);
            assert!(b <= 5);
            let c = rng.gen_range(-2.0f64..2.0);
            assert!((-2.0..2.0).contains(&c));
        }
    }

    #[test]
    fn works_through_unsized_references() {
        fn takes_dynish<R: RngCore + ?Sized>(rng: &mut R) -> f64 {
            rng.gen()
        }
        let mut rng = Counter(1);
        assert!((0.0..1.0).contains(&takes_dynish(&mut rng)));
    }
}
