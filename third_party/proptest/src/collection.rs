//! Collection strategies (`prop::collection::vec`).

use std::ops::Range;

use crate::strategy::Strategy;
use crate::test_runner::TestRng;

/// A size specification: an exact length or a half-open range.
#[derive(Debug, Clone, Copy)]
pub struct SizeRange {
    lo: usize,
    hi: usize,
}

impl From<usize> for SizeRange {
    fn from(n: usize) -> Self {
        SizeRange { lo: n, hi: n + 1 }
    }
}

impl From<Range<usize>> for SizeRange {
    fn from(r: Range<usize>) -> Self {
        assert!(r.start < r.end, "empty vec size range");
        SizeRange {
            lo: r.start,
            hi: r.end,
        }
    }
}

/// Generates `Vec`s of `elem` values with a length drawn from `size`.
pub fn vec<S: Strategy>(elem: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
    VecStrategy {
        elem,
        size: size.into(),
    }
}

/// Strategy returned by [`vec()`].
#[derive(Debug, Clone)]
pub struct VecStrategy<S> {
    elem: S,
    size: SizeRange,
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;
    fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
        let len = if self.size.hi - self.size.lo <= 1 {
            self.size.lo
        } else {
            self.size.lo + rng.next_index(self.size.hi - self.size.lo)
        };
        (0..len).map(|_| self.elem.generate(rng)).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn exact_and_ranged_lengths() {
        let mut rng = TestRng::for_case("collection::tests", 1);
        let exact = vec(0usize..5, 7usize);
        assert_eq!(exact.generate(&mut rng).len(), 7);
        let ranged = vec(0usize..5, 2..6);
        for _ in 0..100 {
            let v = ranged.generate(&mut rng);
            assert!((2..6).contains(&v.len()));
            assert!(v.iter().all(|&x| x < 5));
        }
    }
}
