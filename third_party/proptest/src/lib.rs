//! Offline stand-in for the `proptest` crate.
//!
//! The build environment has no crates-io access, so this in-tree crate
//! implements the subset of proptest the workspace's property tests
//! use: the [`strategy::Strategy`] trait with `prop_map`, tuple /
//! range / [`strategy::Just`] / union / collection strategies,
//! `any::<bool>()`, the [`proptest!`] test macro with
//! `proptest_config`, and the `prop_assert*` / `prop_assume!` macros.
//!
//! Differences from upstream, by design:
//!
//! * **No shrinking.** A failing case reports its case index and the
//!   generated values' `Debug` where the assertion formats them; cases
//!   are deterministic per (test name, case index), so failures are
//!   reproducible by re-running the test.
//! * **Deterministic RNG.** Upstream seeds from the OS and persists
//!   regressions in `*.proptest-regressions`; this stand-in derives
//!   the stream from the test's module path, so every run covers the
//!   same cases (regression files are ignored).

#![forbid(unsafe_code)]

pub mod collection;
pub mod strategy;
pub mod test_runner;

/// Strategy for "any value of `T`" (the [`Arbitrary`] types).
pub fn any<T: Arbitrary>() -> T::Strategy {
    T::arbitrary()
}

/// Types with a canonical whole-domain strategy.
pub trait Arbitrary {
    /// The strategy `any` returns.
    type Strategy: strategy::Strategy<Value = Self>;
    /// Builds the whole-domain strategy.
    fn arbitrary() -> Self::Strategy;
}

/// Whole-domain strategy carrier for [`Arbitrary`] scalars.
#[derive(Debug, Clone, Copy, Default)]
pub struct AnyScalar<T>(std::marker::PhantomData<T>);

macro_rules! impl_arbitrary_scalar {
    ($($t:ty => $gen:expr),* $(,)?) => {$(
        impl strategy::Strategy for AnyScalar<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut test_runner::TestRng) -> $t {
                let f: fn(&mut test_runner::TestRng) -> $t = $gen;
                f(rng)
            }
        }
        impl Arbitrary for $t {
            type Strategy = AnyScalar<$t>;
            fn arbitrary() -> Self::Strategy {
                AnyScalar(std::marker::PhantomData)
            }
        }
    )*};
}

impl_arbitrary_scalar! {
    bool => |rng| rng.next_u64() & 1 == 1,
    u8 => |rng| rng.next_u64() as u8,
    u16 => |rng| rng.next_u64() as u16,
    u32 => |rng| rng.next_u64() as u32,
    u64 => |rng| rng.next_u64(),
    usize => |rng| rng.next_u64() as usize,
    i32 => |rng| rng.next_u64() as i32,
    i64 => |rng| rng.next_u64() as i64,
}

/// The glob-import surface mirrored from upstream.
pub mod prelude {
    pub use crate as prop;
    pub use crate::any;
    pub use crate::strategy::{Just, Strategy};
    pub use crate::test_runner::{ProptestConfig, TestCaseError};
    pub use crate::{
        prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, prop_oneof, proptest,
    };
}

/// Builds a union strategy choosing uniformly among the listed
/// same-valued strategies.
#[macro_export]
macro_rules! prop_oneof {
    ($($strategy:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $(::std::boxed::Box::new($strategy)),+
        ])
    };
}

/// Asserts a condition inside a [`proptest!`] body, failing the case
/// (not the process) on violation.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, concat!("assertion failed: ", stringify!($cond)))
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !$cond {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!($($fmt)*),
            ));
        }
    };
}

/// Asserts equality inside a [`proptest!`] body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            *l == *r,
            "assertion failed: {} == {} (left: {:?}, right: {:?})",
            stringify!($left),
            stringify!($right),
            l,
            r
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)*) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(*l == *r, $($fmt)*);
    }};
}

/// Asserts inequality inside a [`proptest!`] body.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            *l != *r,
            "assertion failed: {} != {} (both: {:?})",
            stringify!($left),
            stringify!($right),
            l
        );
    }};
}

/// Rejects the current case (skipped, not failed) when the assumption
/// does not hold.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !$cond {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::reject(
                concat!("assumption failed: ", stringify!($cond)),
            ));
        }
    };
}

/// Declares property tests: each `fn` runs `config.cases` deterministic
/// cases of its strategies.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::__proptest_fns!(($config) $($rest)*);
    };
    ($($rest:tt)*) => {
        $crate::__proptest_fns!(($crate::test_runner::ProptestConfig::default()) $($rest)*);
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_fns {
    (($config:expr) $(
        $(#[$meta:meta])*
        fn $name:ident($($arg:pat_param in $strategy:expr),* $(,)?) $body:block
    )*) => {$(
        $(#[$meta])*
        fn $name() {
            let config = $config;
            let strategies = ($($strategy,)*);
            let mut rejected = 0u32;
            for case in 0..config.cases {
                let mut rng = $crate::test_runner::TestRng::for_case(
                    concat!(module_path!(), "::", stringify!($name)),
                    case,
                );
                let ($($arg,)*) =
                    $crate::strategy::Strategy::generate(&strategies, &mut rng);
                let outcome = (|| -> ::std::result::Result<(), $crate::test_runner::TestCaseError> {
                    { $body }
                    ::std::result::Result::Ok(())
                })();
                match outcome {
                    ::std::result::Result::Ok(()) => {}
                    ::std::result::Result::Err($crate::test_runner::TestCaseError::Reject(_)) => {
                        rejected += 1;
                    }
                    ::std::result::Result::Err($crate::test_runner::TestCaseError::Fail(msg)) => {
                        panic!(
                            "proptest case {case}/{} of {} failed: {msg}",
                            config.cases,
                            stringify!($name),
                        );
                    }
                }
            }
            assert!(
                rejected < config.cases,
                "every case of {} was rejected by prop_assume!",
                stringify!($name),
            );
        }
    )*};
}
