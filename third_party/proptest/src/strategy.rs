//! The [`Strategy`] trait and its combinators.

use std::ops::{Range, RangeInclusive};

use crate::test_runner::TestRng;

/// A recipe for generating values of `Value`.
///
/// Unlike upstream proptest there is no value tree / shrinking: a
/// strategy is just a deterministic function of the case RNG.
pub trait Strategy {
    /// The generated type.
    type Value;

    /// Generates one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<U, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> U,
    {
        Map { inner: self, f }
    }

    /// Keeps only values satisfying `pred`, retrying a bounded number
    /// of times before panicking.
    fn prop_filter<F>(self, whence: &'static str, pred: F) -> Filter<Self, F>
    where
        Self: Sized,
        F: Fn(&Self::Value) -> bool,
    {
        Filter {
            inner: self,
            whence,
            pred,
        }
    }
}

impl<S: Strategy + ?Sized> Strategy for &S {
    type Value = S::Value;
    fn generate(&self, rng: &mut TestRng) -> Self::Value {
        (**self).generate(rng)
    }
}

impl<S: Strategy + ?Sized> Strategy for Box<S> {
    type Value = S::Value;
    fn generate(&self, rng: &mut TestRng) -> Self::Value {
        (**self).generate(rng)
    }
}

/// Always generates a clone of the wrapped value.
#[derive(Debug, Clone, Copy)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// [`Strategy::prop_map`] adapter.
#[derive(Debug, Clone)]
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, U, F: Fn(S::Value) -> U> Strategy for Map<S, F> {
    type Value = U;
    fn generate(&self, rng: &mut TestRng) -> U {
        (self.f)(self.inner.generate(rng))
    }
}

/// [`Strategy::prop_filter`] adapter.
#[derive(Debug, Clone)]
pub struct Filter<S, F> {
    inner: S,
    whence: &'static str,
    pred: F,
}

impl<S: Strategy, F: Fn(&S::Value) -> bool> Strategy for Filter<S, F> {
    type Value = S::Value;
    fn generate(&self, rng: &mut TestRng) -> S::Value {
        for _ in 0..1000 {
            let v = self.inner.generate(rng);
            if (self.pred)(&v) {
                return v;
            }
        }
        panic!("prop_filter exhausted retries: {}", self.whence);
    }
}

/// Uniform choice among boxed same-valued strategies (`prop_oneof!`).
pub struct Union<T> {
    options: Vec<Box<dyn Strategy<Value = T>>>,
}

impl<T> Union<T> {
    /// Builds a union from its options (must be non-empty).
    pub fn new(options: Vec<Box<dyn Strategy<Value = T>>>) -> Self {
        assert!(!options.is_empty(), "prop_oneof! needs at least one option");
        Union { options }
    }
}

impl<T> Strategy for Union<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        let idx = rng.next_index(self.options.len());
        self.options[idx].generate(rng)
    }
}

macro_rules! impl_range_strategy {
    ($($t:ty => $via:ident),* $(,)?) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                $via(rng, self.start, self.end)
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range strategy");
                $via(rng, lo, hi + 1 as $t)
            }
        }
    )*};
}

fn int_between<T>(rng: &mut TestRng, lo: T, hi: T) -> T
where
    T: Copy + TryInto<i128> + TryFrom<i128>,
    <T as TryInto<i128>>::Error: std::fmt::Debug,
    <T as TryFrom<i128>>::Error: std::fmt::Debug,
{
    let lo_w: i128 = lo.try_into().expect("range bound fits i128");
    let hi_w: i128 = hi.try_into().expect("range bound fits i128");
    let width = (hi_w - lo_w) as u128;
    let picked = lo_w + (u128::from(rng.next_u64()) % width) as i128;
    T::try_from(picked).expect("sampled value fits the range type")
}

impl_range_strategy!(
    usize => int_between,
    u8 => int_between,
    u16 => int_between,
    u32 => int_between,
    u64 => int_between,
    i32 => int_between,
    i64 => int_between,
);

impl Strategy for Range<f64> {
    type Value = f64;
    fn generate(&self, rng: &mut TestRng) -> f64 {
        assert!(self.start < self.end, "empty range strategy");
        self.start + rng.next_f64() * (self.end - self.start)
    }
}

impl Strategy for RangeInclusive<f64> {
    type Value = f64;
    fn generate(&self, rng: &mut TestRng) -> f64 {
        let (lo, hi) = (*self.start(), *self.end());
        assert!(lo <= hi, "empty range strategy");
        lo + rng.next_f64() * (hi - lo)
    }
}

macro_rules! impl_tuple_strategy {
    ($($name:ident),+) => {
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            #[allow(non_snake_case)]
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.generate(rng),)+)
            }
        }
    };
}

impl_tuple_strategy!(A);
impl_tuple_strategy!(A, B);
impl_tuple_strategy!(A, B, C);
impl_tuple_strategy!(A, B, C, D);
impl_tuple_strategy!(A, B, C, D, E);
impl_tuple_strategy!(A, B, C, D, E, F);

#[cfg(test)]
mod tests {
    use super::*;

    fn rng() -> TestRng {
        TestRng::for_case("strategy::tests", 0)
    }

    #[test]
    fn ranges_respect_bounds() {
        let mut r = rng();
        for _ in 0..500 {
            let v = (3usize..9).generate(&mut r);
            assert!((3..9).contains(&v));
            let f = (0.5f64..2.0).generate(&mut r);
            assert!((0.5..2.0).contains(&f));
        }
    }

    #[test]
    fn map_and_tuples_compose() {
        let s = (1usize..4, 0u64..10).prop_map(|(a, b)| a as u64 + b);
        let mut r = rng();
        for _ in 0..100 {
            let v = s.generate(&mut r);
            assert!(v < 13);
        }
    }

    #[test]
    fn union_picks_all_options() {
        let u = Union::new(vec![
            Box::new(Just(1u8)) as Box<dyn Strategy<Value = u8>>,
            Box::new(Just(2u8)),
        ]);
        let mut r = rng();
        let picks: Vec<u8> = (0..64).map(|_| u.generate(&mut r)).collect();
        assert!(picks.contains(&1) && picks.contains(&2));
    }
}
