//! Test-case configuration, RNG and error plumbing.

/// Per-`proptest!` configuration.
#[derive(Debug, Clone, Copy)]
pub struct ProptestConfig {
    /// Number of cases generated per test.
    pub cases: u32,
}

impl ProptestConfig {
    /// Configuration running `cases` cases per test.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 64 }
    }
}

/// Why a case did not pass.
#[derive(Debug, Clone)]
pub enum TestCaseError {
    /// The case was skipped (`prop_assume!` violated).
    Reject(String),
    /// The case failed (`prop_assert*` violated).
    Fail(String),
}

impl TestCaseError {
    /// A failure with the given message.
    pub fn fail(msg: impl Into<String>) -> Self {
        TestCaseError::Fail(msg.into())
    }

    /// A rejection with the given message.
    pub fn reject(msg: impl Into<String>) -> Self {
        TestCaseError::Reject(msg.into())
    }
}

/// Deterministic per-case generator (SplitMix64 keyed by test name and
/// case index, so reruns reproduce failures exactly).
#[derive(Debug, Clone)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// RNG for case `case` of the named test.
    pub fn for_case(test_name: &str, case: u32) -> Self {
        // FNV-1a over the name, mixed with the case index.
        let mut h = 0xcbf2_9ce4_8422_2325u64;
        for b in test_name.bytes() {
            h ^= u64::from(b);
            h = h.wrapping_mul(0x1000_0000_01b3);
        }
        TestRng {
            state: h ^ (u64::from(case).wrapping_mul(0x9e37_79b9_7f4a_7c15)),
        }
    }

    /// Next raw 64-bit word.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    /// Uniform `f64` in `[0, 1)`.
    pub fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Uniform index in `0..n` (`n > 0`).
    pub fn next_index(&mut self, n: usize) -> usize {
        assert!(n > 0, "cannot pick from an empty domain");
        (self.next_u64() % n as u64) as usize
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rng_is_deterministic_per_name_and_case() {
        let a: Vec<u64> = {
            let mut r = TestRng::for_case("x::y", 3);
            (0..8).map(|_| r.next_u64()).collect()
        };
        let b: Vec<u64> = {
            let mut r = TestRng::for_case("x::y", 3);
            (0..8).map(|_| r.next_u64()).collect()
        };
        let c: Vec<u64> = {
            let mut r = TestRng::for_case("x::y", 4);
            (0..8).map(|_| r.next_u64()).collect()
        };
        assert_eq!(a, b);
        assert_ne!(a, c);
    }
}
