#!/usr/bin/env bash
# Full local gate: formatting, lints, build, tests.
#
#   scripts/check.sh          # everything
#   scripts/check.sh --fast   # skip the release build
#
# Mirrors what reviewers run; keep it green before pushing.
set -euo pipefail
cd "$(dirname "$0")/.."

fast=0
[[ "${1:-}" == "--fast" ]] && fast=1

run() {
    echo "==> $*"
    "$@"
}

run cargo fmt --all --check
# Domain rules first (D1/D2/P1/N1/O1, see DESIGN.md §11): fails on any
# unwaived violation or stale entry in lint-waivers.toml.
run cargo run -p peercache-lint --quiet
if [[ $fast -eq 0 ]]; then
    # Deep semantic pass (T1/C1/A1, see DESIGN.md §16): item parser +
    # call graph + dataflow over the whole workspace, machine-readable
    # report for `repro lint`, hard wall-time budget so the stage can
    # never quietly grow past interactive use.
    run cargo run -p peercache-lint --quiet -- --deep \
        --json target/lint-report.json --budget-ms 5000
fi
run cargo clippy --workspace --all-targets -- -D warnings
run env RUSTDOCFLAGS="-D warnings" cargo doc --workspace --no-deps --quiet
if [[ $fast -eq 0 ]]; then
    run cargo build --workspace --release
fi
run cargo test --workspace -q
# Second pass with the runtime invariant oracles armed: reference
# dual-ascent re-verification, bitwise contention-matrix checks, and
# Steiner connectivity after every world event (crates/core/src/strict.rs).
run cargo test --workspace --features strict-invariants -q
# The chaos acceptance trace (500+ injected faults, two partition
# windows, lease-based ADMIN deposition, byte-identical replay) must
# hold with the oracles armed.
run cargo test --test chaos_trace --features strict-invariants -q
# The sharded-world determinism suite (200+ churn events per topology,
# byte-identical digests across every Parallelism setting) must hold
# with the per-tick shard oracles armed.
run cargo test --test shard_world --features strict-invariants -q
# The replication robustness suite: SWIM membership edge cases and the
# R = 3 chaos trace (500+ faults, durability / convergence / recovery
# oracles, byte-identical replay) with the oracles armed.
run cargo test --test swim_membership --features strict-invariants -q
run cargo test --test replication_chaos --features strict-invariants -q
if [[ $fast -eq 0 ]]; then
    # Release-mode smoke runs of the hot-path benches: quick variants,
    # do not overwrite the committed BENCH_*.json files.
    run env PEERCACHE_BENCH_QUICK=1 cargo bench -p peercache-bench --bench planning_hot_path
    run env PEERCACHE_BENCH_QUICK=1 cargo bench -p peercache-bench --bench churn_trace
    run env PEERCACHE_BENCH_QUICK=1 cargo bench -p peercache-bench --bench chaos_matrix
    # Scale smoke: the hierarchical planner on shrunken topologies
    # (full grid100/rgg100k rows are re-measured by the perf gate).
    run env PEERCACHE_BENCH_QUICK=1 cargo bench -p peercache-bench --bench scale
    # Shard smoke: the thread sweep on a shrunken grid asserts digest
    # equality across thread counts (full grid50 sweep is re-measured
    # by the perf gate against BENCH_shard.json).
    run env PEERCACHE_BENCH_QUICK=1 cargo bench -p peercache-bench --bench shard
    # Replication smoke: one R=1 trace cell with its structural oracles
    # (full 3x3 matrix is re-measured by the perf gate against
    # BENCH_replication.json).
    run env PEERCACHE_BENCH_QUICK=1 cargo bench -p peercache-bench --bench replication
    # Perf-regression gate: re-runs the benches fresh and diffs the
    # structural counters (exact) and wall-clock numbers (tolerance
    # band, see PEERCACHE_PERF_TOL) against the committed BENCH_*.json.
    run cargo run --release --bin repro -- perf --check
    # Trace-analyzer smoke on the committed chaos capture: span forest,
    # latency table, and critical path must all render without orphans.
    run cargo run -q --release --bin repro -- trace tests/fixtures/chaos_fixture.jsonl
    # Static-analysis summary from the deep pass's JSON report.
    run cargo run -q --release --bin repro -- lint target/lint-report.json
fi
echo "==> all checks passed"
