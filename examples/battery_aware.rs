//! Battery-aware fairness — footnote 1 of §III-B made concrete.
//!
//! The paper quantifies storage fairness and notes that "a Fairness
//! Degree Cost on the battery can be defined similarly and considered
//! together in weighted summation". Here one half of a 6x6 grid runs on
//! low battery; with the battery term enabled, the planner steers the
//! caching load toward the charged half without being told anything
//! about geography.
//!
//! Run with: `cargo run --example battery_aware`

use peercache::prelude::*;

fn drained_side_load(net: &Network) -> (usize, usize) {
    // Columns 0-2 are the drained half on the 6x6 grid.
    let mut drained = 0;
    let mut charged = 0;
    for n in net.clients() {
        if n.index() % 6 < 3 {
            drained += net.used(n);
        } else {
            charged += net.used(n);
        }
    }
    (drained, charged)
}

fn run(battery_weight: f64) -> Result<(Network, f64), CoreError> {
    let mut net = paper_grid(6)?;
    for n in net.clients().collect::<Vec<_>>() {
        if n.index() % 6 < 3 {
            net.set_battery(n, 0.15)?; // nearly empty west side
        }
    }
    let config = ApproxConfig {
        weights: CostWeights {
            battery_fairness: battery_weight,
            ..Default::default()
        },
        ..Default::default()
    };
    let placement = ApproxPlanner::new(config).plan(&mut net, 5)?;
    Ok((net, placement.total_contention_cost()))
}

fn main() -> Result<(), CoreError> {
    println!("6x6 grid; columns 0-2 at 15% battery, columns 3-5 fully charged\n");
    println!(
        "{:>16} {:>14} {:>14} {:>12}",
        "battery weight", "drained load", "charged load", "contention"
    );
    for weight in [0.0, 1.0, 4.0, 16.0] {
        let (net, contention) = run(weight)?;
        let (drained, charged) = drained_side_load(&net);
        println!("{weight:>16} {drained:>14} {charged:>14} {contention:>12.1}");
    }
    println!(
        "\nwith the battery term on, copies migrate to the charged half; the \
         contention price of that shift stays small"
    );
    Ok(())
}
