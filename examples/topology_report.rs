//! Why placements look the way they do: topology analysis + placement
//! report side by side.
//!
//! Betweenness centrality predicts where the Hop-Count baseline parks
//! its caches (the relay hot spot) — exactly the node whose owner would
//! be exploited. The fairness-aware planner spreads around it.
//!
//! Run with: `cargo run --example topology_report`

use peercache::graph::analysis;
use peercache::prelude::*;
use peercache::report;

fn main() -> Result<(), CoreError> {
    let net = paper_grid(6)?;
    let g = net.graph();

    println!("topology: 6x6 grid, producer {}", net.producer());
    let deg = analysis::degree_stats(g);
    println!(
        "  degree min/mean/max: {}/{:.2}/{}",
        deg.min, deg.mean, deg.max
    );
    println!(
        "  diameter {} hops, radius {}, average path {:.2} hops",
        analysis::diameter(g)?,
        analysis::radius(g)?,
        analysis::average_path_length(g)?
    );

    let bc = analysis::betweenness(g);
    let mut ranked: Vec<(usize, f64)> = bc.iter().copied().enumerate().collect();
    ranked.sort_by(|a, b| b.1.total_cmp(&a.1));
    println!("  top relay nodes (betweenness): ");
    for (node, score) in ranked.iter().take(4) {
        println!("    node {node:>2}: {score:.3}");
    }

    // Where does each algorithm put the load?
    let mut hopc_net = net.clone();
    GreedyBaselinePlanner::hop_count(BaselineConfig::default()).plan(&mut hopc_net, 5)?;
    let hopc_cache = hopc_net
        .clients()
        .find(|&n| hopc_net.used(n) > 0)
        .expect("hopc caches somewhere");
    println!(
        "\nHopc parks everything on node {} (betweenness {:.3}, rank {})",
        hopc_cache,
        bc[hopc_cache.index()],
        ranked
            .iter()
            .position(|&(n, _)| n == hopc_cache.index())
            .expect("ranked")
            + 1
    );

    let mut fair_net = net;
    let placement = ApproxPlanner::default().plan(&mut fair_net, 5)?;
    println!("\nfairness-aware placement:");
    println!("{}", report::render(&fair_net, &placement));
    println!(
        "load map (producer = *):\n{}",
        report::render_grid_loads(&fair_net, 6)
    );
    Ok(())
}
