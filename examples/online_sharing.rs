//! Online sharing session: chunks arrive over time, old ones retire.
//!
//! The paper's future-work section calls for online solutions where
//! "some chunks may become out-dated, necessitating cache replacement".
//! This example runs a long sharing session on a 5x5 grid: a new chunk
//! arrives every step, only the 6 most recent chunks stay live, and the
//! fairness feedback keeps the rotating load spread across devices.
//!
//! Run with: `cargo run --example online_sharing`

use peercache::online::OnlineCache;
use peercache::prelude::*;

fn main() -> Result<(), CoreError> {
    const ARRIVALS: usize = 24;
    const RETENTION: usize = 6;

    let network = paper_grid(5)?;
    let mut cache = OnlineCache::new(network, ApproxConfig::default()).with_retention(RETENTION);

    println!("online session: {ARRIVALS} arrivals, retention window {RETENTION} chunks\n");
    println!(
        "{:>6} {:>7} {:>12} {:>8} {:>14}",
        "chunk", "copies", "contention", "gini", "storage used"
    );
    let mut peak_gini: f64 = 0.0;
    for _ in 0..ARRIVALS {
        let placed = cache.insert_chunk()?;
        let (chunk, copies, contention) =
            (placed.chunk, placed.caches.len(), placed.contention_cost());
        let net = cache.network();
        let loads: Vec<usize> = net.clients().map(|n| net.used(n)).collect();
        let used: usize = loads.iter().sum();
        let capacity: usize = net.clients().map(|n| net.capacity(n)).sum();
        let g = metrics::gini(&loads);
        peak_gini = peak_gini.max(g);
        println!(
            "{:>6} {:>7} {:>12.1} {:>8.3} {:>9}/{:<4}",
            chunk.to_string(),
            copies,
            contention,
            g,
            used,
            capacity
        );
    }

    println!(
        "\nlive chunks at the end: {:?}",
        cache
            .live_chunks()
            .iter()
            .map(|c| c.index())
            .collect::<Vec<_>>()
    );
    println!("peak gini over the whole session: {peak_gini:.3}");
    println!("(retirement keeps storage bounded; fairness keeps the rotation even)");
    Ok(())
}
