//! Music festival: the paper's motivating scenario.
//!
//! Smartphones at a large outdoor event capture photo/video chunks and
//! share them peer-to-peer. Devices have *different* spare storage
//! (their owners decide what to contribute), so an unfair placement
//! would exhaust a few generous phones and drive their owners away.
//!
//! This example builds a connected random geometric network of 80
//! phones with heterogeneous capacities, shares 8 media chunks, and
//! contrasts the fairness-aware approximation algorithm with the
//! contention-only baseline.
//!
//! Run with: `cargo run --example music_festival`

use peercache::prelude::*;
use peercache::workload;

fn describe(net: &Network, placement: &Placement, name: &str) {
    let loads: Vec<usize> = net.clients().map(|n| net.used(n)).collect();
    let hot = loads.iter().max().copied().unwrap_or(0);
    let caching = loads.iter().filter(|&&l| l > 0).count();
    println!("\n== {name} ==");
    println!(
        "  total contention cost : {:9.1}",
        placement.total_contention_cost()
    );
    println!("  gini coefficient      : {:.3}", metrics::gini(&loads));
    println!(
        "  75-percentile fairness: {:.1}%",
        100.0 * metrics::p_percentile_fairness(&loads, 0.75)
    );
    println!(
        "  phones caching        : {caching}/{} (hottest: {hot} chunks)",
        loads.len()
    );
    // Saturated phones are the ones whose owners would quit.
    let saturated = net.clients().filter(|&n| net.remaining(n) == 0).count();
    println!("  phones at capacity    : {saturated}");
}

fn main() -> Result<(), CoreError> {
    const PHONES: usize = 80;
    const CHUNKS: usize = 8;

    let build = || {
        workload::ScenarioBuilder::new(Topology::RandomGeometric {
            nodes: PHONES,
            range: 0.18,
        })
        .capacity_between(1, 6) // owners contribute 1..6 chunk slots
        .producer(0)
        .seed(2017)
        .build()
    };

    println!("music festival: {PHONES} phones, {CHUNKS} media chunks, heterogeneous storage");

    let mut fair_net = build()?;
    let fair = ApproxPlanner::default().plan(&mut fair_net, CHUNKS)?;
    describe(&fair_net, &fair, "fairness-aware (Appx)");

    let mut cont_net = build()?;
    let cont =
        GreedyBaselinePlanner::contention(BaselineConfig::default()).plan(&mut cont_net, CHUNKS)?;
    describe(&cont_net, &cont, "contention-only (Cont)");

    let fair_loads: Vec<usize> = fair_net.clients().map(|n| fair_net.used(n)).collect();
    let cont_loads: Vec<usize> = cont_net.clients().map(|n| cont_net.used(n)).collect();
    println!(
        "\nfairness gain: gini {:.3} -> {:.3}, while contention cost changes by {:+.1}%",
        metrics::gini(&cont_loads),
        metrics::gini(&fair_loads),
        100.0 * (fair.total_contention_cost() - cont.total_contention_cost())
            / cont.total_contention_cost()
    );
    Ok(())
}
