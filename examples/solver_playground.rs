//! The LP/MILP substrate, stand-alone: build one chunk's ConFL MILP,
//! dump it in LP format, solve it with the bundled branch-and-bound,
//! and compare against the brute-force enumerator.
//!
//! This is the machinery that replaces the paper's PuLP brute force —
//! useful on its own whenever a small MILP needs solving without
//! external bindings.
//!
//! Run with: `cargo run --example solver_playground`

use peercache::costs::CostWeights;
use peercache::exact::{best_facility_set, solve_chunk_milp};
use peercache::graph::paths::PathSelection;
use peercache::instance::ConflInstance;
use peercache::lp::{solve_milp, Model, Relation, Sense};
use peercache::prelude::*;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // Part 1: a tiny standalone MILP through the public solver API.
    println!("== standalone MILP ==");
    let mut m = Model::new(Sense::Maximize);
    let chunks = m.add_integer_var("chunks", 0.0, 10.0, 3.0);
    let copies = m.add_integer_var("copies", 0.0, 10.0, 2.0);
    m.add_constraint(vec![(chunks, 2.0), (copies, 1.0)], Relation::Le, 11.0);
    m.add_constraint(vec![(chunks, 1.0), (copies, 3.0)], Relation::Le, 14.0);
    println!("{}", m.to_lp_format());
    let sol = solve_milp(&m, &Default::default())?;
    println!(
        "optimum {} at chunks={}, copies={}\n",
        sol.objective,
        sol.value(chunks),
        sol.value(copies)
    );

    // Part 2: one chunk of the caching problem as a certified MILP.
    println!("== one-chunk ConFL on a 2x3 grid ==");
    let net = Network::new(builders::grid(2, 3), NodeId::new(0), 2)?;
    let inst = ConflInstance::build(&net, CostWeights::default(), PathSelection::FewestHops)?;

    let (milp_set, milp_obj) = solve_chunk_milp(&net, &inst)?;
    println!(
        "MILP optimum: open {:?}, objective {milp_obj:.2}",
        milp_set.iter().map(|n| n.index()).collect::<Vec<_>>()
    );

    let brtf_set = best_facility_set(&net, &inst, 20)?;
    let (brtf_costs, _, _) = inst.evaluate_set(&net, &brtf_set)?;
    println!(
        "enumeration:  open {:?}, objective {:.2} (tree is 2-approximate)",
        brtf_set.iter().map(|n| n.index()).collect::<Vec<_>>(),
        brtf_costs.total()
    );
    assert!(milp_obj <= brtf_costs.total() + 1e-6);
    println!("\nthe certified MILP lower-bounds the practical enumerator, as it must");
    Ok(())
}
