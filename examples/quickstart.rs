//! Quickstart: fair caching on the paper's default scenario.
//!
//! Builds the 6x6 grid of §V-A (producer at node 9, capacity 5), places
//! 5 chunks with the approximation algorithm, and prints where every
//! chunk landed together with the fairness statistics.
//!
//! Run with: `cargo run --example quickstart`

use peercache::prelude::*;

fn main() -> Result<(), CoreError> {
    // The paper's default evaluation scenario.
    let mut network = paper_grid(6)?;
    println!(
        "network: 6x6 grid, {} nodes, producer {}, capacity {} chunks/node",
        network.node_count(),
        network.producer(),
        network.capacity(NodeId::new(0)),
    );

    let planner = ApproxPlanner::default();
    let placement = planner.plan(&mut network, 5)?;

    println!("\nper-chunk placement ({}):", planner.name());
    for chunk in placement.chunks() {
        let caches: Vec<String> = chunk.caches.iter().map(|n| n.to_string()).collect();
        println!(
            "  chunk {}: {:2} copies on [{}]  (access {:7.1}, dissemination {:7.1})",
            chunk.chunk,
            chunk.caches.len(),
            caches.join(", "),
            chunk.costs.access,
            chunk.costs.dissemination,
        );
    }

    let costs = placement.total_costs();
    println!("\ntotals:");
    println!("  fairness degree cost : {:9.2}", costs.fairness);
    println!("  accessing contention : {:9.2}", costs.access);
    println!("  dissemination        : {:9.2}", costs.dissemination);
    println!(
        "  total contention     : {:9.2}",
        placement.total_contention_cost()
    );

    let loads: Vec<usize> = network.clients().map(|n| network.used(n)).collect();
    println!("\nfairness:");
    println!("  gini coefficient     : {:.3}", metrics::gini(&loads));
    println!(
        "  75-percentile        : {:.1}% of nodes hold 75% of the data",
        100.0 * metrics::p_percentile_fairness(&loads, 0.75)
    );
    println!(
        "  caching nodes        : {}/{}",
        loads.iter().filter(|&&l| l > 0).count(),
        loads.len()
    );
    Ok(())
}
