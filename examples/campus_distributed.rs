//! Campus IoT: the distributed protocol, message budgets, and loss.
//!
//! Road-side cameras and IoT nodes on a campus grid have no global
//! topology view, so they run Algorithm 2: contention collection within
//! k hops, TIGHT/SPAN bidding, and ADMIN self-election. This example
//! sweeps the hop limit (the Fig. 3 experiment), shows the per-type
//! message budget of Table II, and demonstrates convergence under 20%
//! message loss.
//!
//! Run with: `cargo run --example campus_distributed`

use peercache::dist::engine::LossConfig;
use peercache::prelude::*;

fn main() -> Result<(), CoreError> {
    const CHUNKS: usize = 5;

    println!("hop-limit sweep on a 6x6 campus grid ({CHUNKS} chunks):");
    println!(
        "{:>4} {:>12} {:>8} {:>10} {:>10}",
        "k", "contention", "gini", "messages", "fallbacks"
    );
    for k in 1..=4 {
        let mut net = paper_grid(6)?;
        let planner = DistributedPlanner::with_k_hops(k);
        let placement = planner.plan(&mut net, CHUNKS)?;
        let report = planner.last_report();
        let loads: Vec<usize> = net.clients().map(|n| net.used(n)).collect();
        println!(
            "{k:>4} {:>12.1} {:>8.3} {:>10} {:>10}",
            placement.total_contention_cost(),
            metrics::gini(&loads),
            report.messages.total(),
            report.fallbacks_per_chunk.iter().sum::<usize>(),
        );
    }
    println!("(k = 1 starves the protocol of information; k = 2 is the paper's sweet spot)");

    // Message budget breakdown at k = 2.
    let mut net = paper_grid(6)?;
    let planner = DistributedPlanner::default();
    planner.plan(&mut net, CHUNKS)?;
    let m = planner.last_report().messages;
    println!("\nmessage budget at k = 2 (Table II categories):");
    for (kind, count) in m.per_kind() {
        println!("  {:<7}: {count:6}", kind.label());
    }
    println!("  total  : {:6}  (bound: O(QN + N^2))", m.total());

    // Fault injection: the protocol still converges when a fifth of all
    // control messages vanish.
    let mut lossy_net = paper_grid(6)?;
    let lossy = DistributedPlanner::with_loss(LossConfig {
        drop_probability: 0.2,
        seed: 7,
    });
    let placement = lossy.plan(&mut lossy_net, CHUNKS)?;
    let report = lossy.last_report();
    println!(
        "\nwith 20% message loss: {} messages dropped, still placed {} chunks \
         (contention {:.1}, max {} ticks/chunk)",
        report.messages.dropped,
        placement.chunks().len(),
        placement.total_contention_cost(),
        report.ticks_per_chunk.iter().max().unwrap_or(&0),
    );
    Ok(())
}
