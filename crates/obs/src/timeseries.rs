//! Fixed-capacity, deterministic time-series recording.
//!
//! A [`TimeSeries`] is a value type owned by the instrumented component
//! (the simulator, the cache world) — not interned in the process-wide
//! metric registry — so cloning a world clones its telemetry and two
//! identical runs record identical series. Timestamps are supplied by
//! the caller (simulation ticks, event indices, or an injected
//! [`MonotonicClock`]); the recorder never reads ambient time.
//!
//! Capacity is bounded by **decimation**: the recorder keeps every
//! `stride`-th offered sample, and whenever the buffer fills it drops
//! every other retained point and doubles the stride. The retained set
//! is a pure function of the offered sample sequence, so replays emit
//! byte-identical series.

use crate::clock::MonotonicClock;
use crate::sink::{enabled, write_record};

/// Default point capacity of a [`TimeSeries`].
pub const DEFAULT_CAPACITY: usize = 512;

/// A bounded `(timestamp, value)` series with deterministic decimation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TimeSeries {
    name: &'static str,
    cap: usize,
    stride: u64,
    offered: u64,
    points: Vec<(u64, i64)>,
}

impl TimeSeries {
    /// A series named `name` with the default capacity (512 points).
    #[must_use]
    pub fn new(name: &'static str) -> Self {
        Self::with_capacity(name, DEFAULT_CAPACITY)
    }

    /// A series with an explicit capacity (clamped to at least 2).
    #[must_use]
    pub fn with_capacity(name: &'static str, cap: usize) -> Self {
        TimeSeries {
            name,
            cap: cap.max(2),
            stride: 1,
            offered: 0,
            points: Vec::new(),
        }
    }

    /// The series name.
    #[must_use]
    pub fn name(&self) -> &'static str {
        self.name
    }

    /// Current decimation stride: one point kept per `stride` offers.
    #[must_use]
    pub fn stride(&self) -> u64 {
        self.stride
    }

    /// How many samples have been offered (kept or decimated).
    #[must_use]
    pub fn offered(&self) -> u64 {
        self.offered
    }

    /// The retained points, oldest first.
    #[must_use]
    pub fn points(&self) -> &[(u64, i64)] {
        &self.points
    }

    /// Offers one sample at timestamp `t`.
    pub fn record(&mut self, t: u64, v: i64) {
        if self.offered.is_multiple_of(self.stride) {
            if self.points.len() == self.cap {
                let mut i = 0usize;
                self.points.retain(|_| {
                    i += 1;
                    (i - 1).is_multiple_of(2)
                });
                self.stride *= 2;
            }
            if self.offered.is_multiple_of(self.stride) {
                self.points.push((t, v));
            }
        }
        self.offered += 1;
    }

    /// Offers one sample stamped by `clock`.
    pub fn record_now(&mut self, clock: &MonotonicClock, v: i64) {
        self.record(clock.now_us(), v);
    }

    /// Writes the series as one `timeseries` JSONL record (no-op when
    /// tracing is off):
    ///
    /// ```json
    /// {"ts_us":9,"kind":"timeseries","name":"sim.queue_depth",
    ///  "stride":2,"offered":130,"points":[[0,4],[2,9]]}
    /// ```
    pub fn emit(&self) {
        if !enabled() {
            return;
        }
        use std::fmt::Write as _;
        let mut extra = String::with_capacity(48 + 16 * self.points.len());
        let _ = write!(
            extra,
            "\"stride\":{},\"offered\":{},\"points\":[",
            self.stride, self.offered
        );
        for (i, (t, v)) in self.points.iter().enumerate() {
            if i > 0 {
                extra.push(',');
            }
            let _ = write!(extra, "[{t},{v}]");
        }
        extra.push(']');
        write_record("timeseries", self.name, &extra, &[]);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn records_within_capacity_verbatim() {
        let mut ts = TimeSeries::with_capacity("sim.queue_depth", 8);
        for t in 0..5u64 {
            ts.record(t, t as i64 * 10);
        }
        assert_eq!(ts.points(), &[(0, 0), (1, 10), (2, 20), (3, 30), (4, 40)]);
        assert_eq!(ts.stride(), 1);
        assert_eq!(ts.offered(), 5);
    }

    #[test]
    fn decimates_deterministically_when_full() {
        let mut a = TimeSeries::with_capacity("sim.queue_depth", 4);
        for t in 0..64u64 {
            a.record(t, t as i64);
        }
        // Capacity 4 over 64 offers → stride grew past 4; the retained
        // timestamps are exactly the multiples of the final stride.
        assert!(a.points().len() <= 4);
        assert!(a.stride() >= 16);
        for (t, v) in a.points() {
            assert_eq!(t % a.stride(), 0);
            assert_eq!(*v, *t as i64);
        }
        // Pure function of the offer sequence: a replay is identical.
        let mut b = TimeSeries::with_capacity("sim.queue_depth", 4);
        for t in 0..64u64 {
            b.record(t, t as i64);
        }
        assert_eq!(a, b);
    }

    #[test]
    fn never_exceeds_capacity() {
        let mut ts = TimeSeries::with_capacity("sim.in_flight", 16);
        for t in 0..10_000u64 {
            ts.record(t, 1);
            assert!(ts.points().len() <= 16);
        }
        assert_eq!(ts.offered(), 10_000);
    }

    #[test]
    fn fixed_clock_recording_is_deterministic() {
        let clock = MonotonicClock::Fixed(77);
        let mut ts = TimeSeries::new("world.components");
        ts.record_now(&clock, 3);
        assert_eq!(ts.points(), &[(77, 3)]);
    }
}
