//! Typed field values and their JSON encoding.

use std::borrow::Cow;

/// A field value attached to a span, event or metric record.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// Unsigned integer.
    U64(u64),
    /// Signed integer.
    I64(i64),
    /// Floating point (non-finite values encode as `null`).
    F64(f64),
    /// Boolean.
    Bool(bool),
    /// String (borrowed when `'static`).
    Str(Cow<'static, str>),
}

impl Value {
    /// Appends the JSON encoding of this value to `out`.
    pub(crate) fn write_json(&self, out: &mut String) {
        use std::fmt::Write as _;
        match self {
            Value::U64(v) => {
                let _ = write!(out, "{v}");
            }
            Value::I64(v) => {
                let _ = write!(out, "{v}");
            }
            Value::F64(v) if v.is_finite() => {
                let _ = write!(out, "{v}");
            }
            Value::F64(_) => out.push_str("null"),
            Value::Bool(v) => {
                let _ = write!(out, "{v}");
            }
            Value::Str(s) => write_json_string(out, s),
        }
    }
}

/// Appends `s` as a JSON string literal (quoted, escaped) to `out`.
pub(crate) fn write_json_string(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                use std::fmt::Write as _;
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

macro_rules! impl_value_from {
    ($($t:ty => $variant:ident as $cast:ty),* $(,)?) => {$(
        impl From<$t> for Value {
            fn from(v: $t) -> Self {
                Value::$variant(v as $cast)
            }
        }
    )*};
}

impl_value_from!(
    u8 => U64 as u64,
    u16 => U64 as u64,
    u32 => U64 as u64,
    u64 => U64 as u64,
    usize => U64 as u64,
    i8 => I64 as i64,
    i16 => I64 as i64,
    i32 => I64 as i64,
    i64 => I64 as i64,
    isize => I64 as i64,
    f32 => F64 as f64,
    f64 => F64 as f64,
);

impl From<bool> for Value {
    fn from(v: bool) -> Self {
        Value::Bool(v)
    }
}

impl From<&'static str> for Value {
    fn from(v: &'static str) -> Self {
        Value::Str(Cow::Borrowed(v))
    }
}

impl From<String> for Value {
    fn from(v: String) -> Self {
        Value::Str(Cow::Owned(v))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn json(v: Value) -> String {
        let mut s = String::new();
        v.write_json(&mut s);
        s
    }

    #[test]
    fn scalars_encode_as_json() {
        assert_eq!(json(Value::from(7u32)), "7");
        assert_eq!(json(Value::from(-3i64)), "-3");
        assert_eq!(json(Value::from(true)), "true");
        assert_eq!(json(Value::from(1.5f64)), "1.5");
        assert_eq!(json(Value::from(f64::NAN)), "null");
        assert_eq!(json(Value::from(f64::INFINITY)), "null");
    }

    #[test]
    fn strings_escape_specials() {
        assert_eq!(json(Value::from("plain")), "\"plain\"");
        assert_eq!(
            json(Value::from("a\"b\\c\nd".to_string())),
            "\"a\\\"b\\\\c\\nd\""
        );
        assert_eq!(json(Value::from("\u{1}".to_string())), "\"\\u0001\"");
    }
}
