//! A minimal JSON value and recursive-descent parser.
//!
//! The workspace has no crates-io access, so the trace analyzer
//! (`repro trace`) and the perf-regression gate (`repro perf --check`)
//! parse their JSONL/JSON inputs with this hand-rolled reader. It
//! accepts the subset of JSON the workspace itself emits (objects,
//! arrays, strings with the standard escapes, finite numbers, booleans,
//! null) and rejects everything else with a positioned error.

/// A parsed JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// A non-negative integer literal, kept exact: 64-bit trace ids
    /// exceed `f64`'s 53-bit mantissa, so parsing them as floats would
    /// silently corrupt them.
    Int(u64),
    /// Any other number (parsed as `f64`).
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object; member order is preserved.
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Parses `src` as a single JSON value (trailing whitespace allowed).
    pub fn parse(src: &str) -> Result<Json, String> {
        let mut p = Parser {
            b: src.as_bytes(),
            i: 0,
        };
        p.skip_ws();
        let v = p.value()?;
        p.skip_ws();
        if p.i != p.b.len() {
            return Err(format!("trailing data at byte {}", p.i));
        }
        Ok(v)
    }

    /// Member `key` of an object, or `None`.
    #[must_use]
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(members) => members.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The number value, or `None`.
    #[must_use]
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Int(n) => Some(*n as f64),
            Json::Num(n) => Some(*n),
            _ => None,
        }
    }

    /// The number value as `u64` if it is a non-negative integer.
    #[must_use]
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Json::Int(n) => Some(*n),
            Json::Num(n) if *n >= 0.0 && n.fract() == 0.0 && *n <= u64::MAX as f64 => {
                Some(*n as u64)
            }
            _ => None,
        }
    }

    /// The string value, or `None`.
    #[must_use]
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The boolean value, or `None`.
    #[must_use]
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Json::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The array elements, or `None`.
    #[must_use]
    pub fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(items) => Some(items),
            _ => None,
        }
    }

    /// The object members, or `None`.
    #[must_use]
    pub fn as_obj(&self) -> Option<&[(String, Json)]> {
        match self {
            Json::Obj(members) => Some(members),
            _ => None,
        }
    }
}

struct Parser<'a> {
    b: &'a [u8],
    i: usize,
}

impl Parser<'_> {
    fn skip_ws(&mut self) {
        while self.i < self.b.len() && matches!(self.b[self.i], b' ' | b'\t' | b'\n' | b'\r') {
            self.i += 1;
        }
    }

    fn expect(&mut self, c: u8) -> Result<(), String> {
        if self.i < self.b.len() && self.b[self.i] == c {
            self.i += 1;
            Ok(())
        } else {
            Err(format!("expected {:?} at byte {}", c as char, self.i))
        }
    }

    fn value(&mut self) -> Result<Json, String> {
        match self.b.get(self.i) {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => Ok(Json::Str(self.string()?)),
            Some(b't') => self.literal("true", Json::Bool(true)),
            Some(b'f') => self.literal("false", Json::Bool(false)),
            Some(b'n') => self.literal("null", Json::Null),
            Some(c) if c.is_ascii_digit() || *c == b'-' => self.number(),
            _ => Err(format!("unexpected input at byte {}", self.i)),
        }
    }

    fn literal(&mut self, word: &str, v: Json) -> Result<Json, String> {
        if self.b[self.i..].starts_with(word.as_bytes()) {
            self.i += word.len();
            Ok(v)
        } else {
            Err(format!("bad literal at byte {}", self.i))
        }
    }

    fn number(&mut self) -> Result<Json, String> {
        let start = self.i;
        if self.b.get(self.i) == Some(&b'-') {
            self.i += 1;
        }
        while self
            .b
            .get(self.i)
            .is_some_and(|c| c.is_ascii_digit() || matches!(c, b'.' | b'e' | b'E' | b'+' | b'-'))
        {
            self.i += 1;
        }
        let text = std::str::from_utf8(&self.b[start..self.i]).expect("ascii digits");
        // Plain non-negative integers stay exact (trace ids need all 64
        // bits); everything else goes through f64.
        if !text.contains(['.', 'e', 'E']) {
            if let Ok(n) = text.parse::<u64>() {
                return Ok(Json::Int(n));
            }
        }
        text.parse::<f64>()
            .map(Json::Num)
            .map_err(|e| format!("bad number {text:?} at byte {start}: {e}"))
    }

    fn string(&mut self) -> Result<String, String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.b.get(self.i) {
                None => return Err("unterminated string".to_string()),
                Some(b'"') => {
                    self.i += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.i += 1;
                    match self.b.get(self.i) {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'u') => {
                            let code = self.hex4()?;
                            // Surrogate pairs are not emitted by our own
                            // writer; map lone surrogates to U+FFFD.
                            out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                        }
                        _ => return Err(format!("bad escape at byte {}", self.i)),
                    }
                    self.i += 1;
                }
                Some(_) => {
                    // Consume one UTF-8 scalar (the input is a &str, so
                    // byte boundaries are valid).
                    let rest = std::str::from_utf8(&self.b[self.i..]).expect("valid utf-8");
                    let c = rest.chars().next().expect("non-empty");
                    out.push(c);
                    self.i += c.len_utf8();
                }
            }
        }
    }

    fn hex4(&mut self) -> Result<u32, String> {
        let start = self.i + 1;
        let end = start + 4;
        if end > self.b.len() {
            return Err(format!("truncated \\u escape at byte {}", self.i));
        }
        let hex = std::str::from_utf8(&self.b[start..end])
            .map_err(|_| format!("bad \\u escape at byte {}", self.i))?;
        let code = u32::from_str_radix(hex, 16)
            .map_err(|_| format!("bad \\u escape at byte {}", self.i))?;
        self.i = end - 1;
        Ok(code)
    }

    fn object(&mut self) -> Result<Json, String> {
        self.expect(b'{')?;
        let mut members = Vec::new();
        self.skip_ws();
        if self.b.get(self.i) == Some(&b'}') {
            self.i += 1;
            return Ok(Json::Obj(members));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let v = self.value()?;
            members.push((key, v));
            self.skip_ws();
            match self.b.get(self.i) {
                Some(b',') => self.i += 1,
                Some(b'}') => {
                    self.i += 1;
                    return Ok(Json::Obj(members));
                }
                _ => return Err(format!("expected ',' or '}}' at byte {}", self.i)),
            }
        }
    }

    fn array(&mut self) -> Result<Json, String> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.b.get(self.i) == Some(&b']') {
            self.i += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.b.get(self.i) {
                Some(b',') => self.i += 1,
                Some(b']') => {
                    self.i += 1;
                    return Ok(Json::Arr(items));
                }
                _ => return Err(format!("expected ',' or ']' at byte {}", self.i)),
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_records_our_sink_emits() {
        let line = r#"{"ts_us":12,"kind":"span","name":"dist.round","dur_us":431,"chunk":0,"ok":true,"ratio":1.5,"note":"a\"b\\c\nd","none":null}"#;
        let v = Json::parse(line).unwrap();
        assert_eq!(v.get("ts_us").unwrap().as_u64(), Some(12));
        assert_eq!(v.get("kind").unwrap().as_str(), Some("span"));
        assert_eq!(v.get("ok").unwrap().as_bool(), Some(true));
        assert_eq!(v.get("ratio").unwrap().as_f64(), Some(1.5));
        assert_eq!(v.get("note").unwrap().as_str(), Some("a\"b\\c\nd"));
        assert_eq!(v.get("none"), Some(&Json::Null));
        assert_eq!(v.get("missing"), None);
    }

    #[test]
    fn parses_nested_arrays_and_numbers() {
        let v = Json::parse(r#"{"points":[[0,3],[4,-2]],"f":-1.25e2}"#).unwrap();
        let points = v.get("points").unwrap().as_arr().unwrap();
        assert_eq!(points.len(), 2);
        assert_eq!(points[1].as_arr().unwrap()[1].as_f64(), Some(-2.0));
        assert_eq!(v.get("f").unwrap().as_f64(), Some(-125.0));
        assert_eq!(v.get("f").unwrap().as_u64(), None);
    }

    #[test]
    fn parses_unicode_escapes() {
        let v = Json::parse("\"\\u0041\\u00e9 caf\u{e9}\"").unwrap();
        assert_eq!(v.as_str(), Some("A\u{e9} caf\u{e9}"));
    }

    #[test]
    fn rejects_malformed_input() {
        assert!(Json::parse("{").is_err());
        assert!(Json::parse(r#"{"a":1,}"#).is_err());
        assert!(Json::parse("[1 2]").is_err());
        assert!(Json::parse("1 2").is_err());
        assert!(Json::parse(r#""unterminated"#).is_err());
        assert!(Json::parse("tru").is_err());
    }
}
