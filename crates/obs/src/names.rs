//! The central registry of observability names (lint rule O1).
//!
//! Every span, event, counter, gauge, histogram and time-series name
//! used anywhere in the workspace must appear in [`REGISTERED_NAMES`].
//! `peercache-lint` parses the string literals of this file and flags
//! any `obs::span!`/`obs::counter(...)`-style call site whose name is
//! not a `'static` literal found here — so a typo'd or drifting metric
//! name fails the lint gate instead of silently forking a new series.
//!
//! Keep the list sorted (a unit test enforces it); `is_registered` is a
//! binary search over it.

/// Every observability name in use across the workspace, sorted.
pub const REGISTERED_NAMES: &[&str] = &[
    "apsp.compute",
    "apsp.update",
    "apsp.update_topology",
    "bench.run",
    "bench.walltime_by_size",
    "core.dual_ascent",
    "dist.cross_shard_msgs",
    "dist.degraded_clients",
    "dist.deposition",
    "dist.election",
    "dist.election_timeout",
    "dist.engine.payload_miss",
    "dist.latency.badmin",
    "dist.latency.cc",
    "dist.latency.freeze",
    "dist.latency.nadmin",
    "dist.latency.npi",
    "dist.latency.ping",
    "dist.latency.pong",
    "dist.latency.span",
    "dist.latency.tight",
    "dist.msg.badmin",
    "dist.msg.cc",
    "dist.msg.dropped",
    "dist.msg.freeze",
    "dist.msg.nadmin",
    "dist.msg.npi",
    "dist.msg.ping",
    "dist.msg.pong",
    "dist.msg.span",
    "dist.msg.tight",
    "dist.plan",
    "dist.replica.anti_entropy",
    "dist.replica.read_repair",
    "dist.retry",
    "dist.round",
    "dist.sim.converged",
    "dist.swim.confirm",
    "dist.swim.ping",
    "dist.swim.refute",
    "dist.swim.suspect",
    "dist.timeout",
    "online.insert",
    "online.retire",
    "planner.chunk",
    "planner.contention_bytes",
    "planner.region_count",
    "planner.scale",
    "repair.recovery_bytes",
    "repro.figure",
    "repro.perf",
    "repro.trace",
    "shard.queue_depth",
    "sim.in_flight",
    "sim.queue_depth",
    "sim.unsettled_clients",
    "world.components",
    "world.cross_shard_events",
    "world.deferred_demand",
    "world.demand_deferred",
    "world.demand_live",
    "world.join",
    "world.link_down",
    "world.link_up",
    "world.partition_formed",
    "world.partition_healed",
    "world.repair",
    "world.repair_vs_replan",
    "world.replicas",
    "world.shard_count",
    "world.tick",
];

/// Whether `name` appears in the registry.
#[must_use]
pub fn is_registered(name: &str) -> bool {
    REGISTERED_NAMES.binary_search(&name).is_ok()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn registry_is_sorted_and_unique() {
        for pair in REGISTERED_NAMES.windows(2) {
            assert!(
                pair[0] < pair[1],
                "registry must be sorted and unique: {:?} !< {:?}",
                pair[0],
                pair[1]
            );
        }
    }

    #[test]
    fn lookup_hits_and_misses() {
        assert!(is_registered("dist.round"));
        assert!(is_registered("world.repair_vs_replan"));
        assert!(!is_registered("dist.rouund"));
        assert!(!is_registered(""));
    }
}
