//! Process-global typed metrics behind a name-interned registry.
//!
//! Handles are `&'static`; recording is lock-free (relaxed atomics).
//! The registry lock is only taken on first intern of a name and when
//! snapshotting, never on the record path — call sites that care about
//! the intern cost should fetch the handle once and keep it.

use std::sync::atomic::{AtomicI64, AtomicU64, Ordering};
use std::sync::{Mutex, OnceLock};

/// A monotonically increasing counter.
#[derive(Debug, Default)]
pub struct Counter {
    value: AtomicU64,
}

impl Counter {
    /// Adds `n`.
    pub fn add(&self, n: u64) {
        self.value.fetch_add(n, Ordering::Relaxed);
    }

    /// Adds 1.
    pub fn incr(&self) {
        self.add(1);
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        self.value.load(Ordering::Relaxed)
    }

    fn reset(&self) {
        self.value.store(0, Ordering::Relaxed);
    }
}

/// A value that can move both ways.
#[derive(Debug, Default)]
pub struct Gauge {
    value: AtomicI64,
}

impl Gauge {
    /// Sets the gauge.
    pub fn set(&self, v: i64) {
        self.value.store(v, Ordering::Relaxed);
    }

    /// Adds `delta` (may be negative).
    pub fn add(&self, delta: i64) {
        self.value.fetch_add(delta, Ordering::Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> i64 {
        self.value.load(Ordering::Relaxed)
    }

    fn reset(&self) {
        self.value.store(0, Ordering::Relaxed);
    }
}

/// Number of log-scale buckets in a [`Histogram`]: values below 64 get
/// one exact bucket each; every power-of-two octave above is split into
/// 8 sub-buckets (HDR-style), bounding the relative quantile error at
/// 12.5% while keeping the struct a flat atomic array.
const HISTOGRAM_BUCKETS: usize = 64 + (64 - 6) * 8;

/// Index of the bucket containing `v`.
fn bucket_index(v: u64) -> usize {
    if v < 64 {
        return v as usize;
    }
    let octave = (63 - v.leading_zeros()) as usize; // 2^octave <= v
    let sub = ((v >> (octave - 3)) & 7) as usize;
    64 + (octave - 6) * 8 + sub
}

/// Largest value mapping to bucket `idx`.
fn bucket_upper(idx: usize) -> u64 {
    if idx < 64 {
        return idx as u64;
    }
    let k = idx - 64;
    let octave = 6 + k / 8;
    let sub = (k % 8) as u128;
    let upper = ((8 + sub + 1) << (octave - 3)) - 1;
    u64::try_from(upper).unwrap_or(u64::MAX)
}

/// A streaming histogram of `u64` samples: count, sum, min, max plus
/// log-scale buckets — exact below 64, 8 sub-buckets per power-of-two
/// octave above (`bucket_index`), tight enough for p50/p95/p99
/// delivery-latency reporting.
#[derive(Debug)]
pub struct Histogram {
    count: AtomicU64,
    sum: AtomicU64,
    min: AtomicU64,
    max: AtomicU64,
    buckets: [AtomicU64; HISTOGRAM_BUCKETS],
}

impl Default for Histogram {
    fn default() -> Self {
        Histogram {
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
            min: AtomicU64::new(u64::MAX),
            max: AtomicU64::new(0),
            buckets: std::array::from_fn(|_| AtomicU64::new(0)),
        }
    }
}

impl Histogram {
    /// Records one sample.
    pub fn record(&self, v: u64) {
        self.count.fetch_add(1, Ordering::Relaxed);
        self.sum.fetch_add(v, Ordering::Relaxed);
        self.min.fetch_min(v, Ordering::Relaxed);
        self.max.fetch_max(v, Ordering::Relaxed);
        self.buckets[bucket_index(v)].fetch_add(1, Ordering::Relaxed);
    }

    /// Number of samples recorded.
    pub fn count(&self) -> u64 {
        self.count.load(Ordering::Relaxed)
    }

    /// Sum of all samples.
    pub fn sum(&self) -> u64 {
        self.sum.load(Ordering::Relaxed)
    }

    /// Smallest sample, or `None` before any sample.
    pub fn min(&self) -> Option<u64> {
        (self.count() > 0).then(|| self.min.load(Ordering::Relaxed))
    }

    /// Largest sample, or `None` before any sample.
    pub fn max(&self) -> Option<u64> {
        (self.count() > 0).then(|| self.max.load(Ordering::Relaxed))
    }

    /// Mean sample, or `None` before any sample.
    pub fn mean(&self) -> Option<f64> {
        let n = self.count();
        (n > 0).then(|| self.sum() as f64 / n as f64)
    }

    /// Upper bound of the smallest log-scale bucket containing the
    /// `q`-quantile (`q` in `[0, 1]`), or `None` before any sample.
    /// Exact for values below 64; within 12.5% above.
    pub fn quantile_bound(&self, q: f64) -> Option<u64> {
        let n = self.count();
        if n == 0 {
            return None;
        }
        let target = (q.clamp(0.0, 1.0) * n as f64).ceil().max(1.0) as u64;
        let mut seen = 0u64;
        for (i, bucket) in self.buckets.iter().enumerate() {
            seen += bucket.load(Ordering::Relaxed);
            if seen >= target {
                return Some(bucket_upper(i));
            }
        }
        self.max()
    }

    fn reset(&self) {
        self.count.store(0, Ordering::Relaxed);
        self.sum.store(0, Ordering::Relaxed);
        self.min.store(u64::MAX, Ordering::Relaxed);
        self.max.store(0, Ordering::Relaxed);
        for b in &self.buckets {
            b.store(0, Ordering::Relaxed);
        }
    }
}

enum Metric {
    Counter(&'static Counter),
    Gauge(&'static Gauge),
    Histogram(&'static Histogram),
}

fn registry() -> &'static Mutex<Vec<(&'static str, Metric)>> {
    static REGISTRY: OnceLock<Mutex<Vec<(&'static str, Metric)>>> = OnceLock::new();
    REGISTRY.get_or_init(|| Mutex::new(Vec::new()))
}

fn intern<T: Default>(
    name: &'static str,
    pick: impl Fn(&Metric) -> Option<&'static T>,
    wrap: impl Fn(&'static T) -> Metric,
) -> &'static T {
    let mut reg = registry().lock().expect("metric registry poisoned");
    for (n, metric) in reg.iter() {
        if *n == name {
            return pick(metric).unwrap_or_else(|| {
                panic!("metric {name:?} already registered with a different type")
            });
        }
    }
    let handle: &'static T = Box::leak(Box::default());
    reg.push((name, wrap(handle)));
    handle
}

/// Returns the process-global counter `name`, creating it on first use.
pub fn counter(name: &'static str) -> &'static Counter {
    intern(
        name,
        |m| match m {
            Metric::Counter(c) => Some(c),
            _ => None,
        },
        Metric::Counter,
    )
}

/// Returns the process-global gauge `name`, creating it on first use.
pub fn gauge(name: &'static str) -> &'static Gauge {
    intern(
        name,
        |m| match m {
            Metric::Gauge(g) => Some(g),
            _ => None,
        },
        Metric::Gauge,
    )
}

/// Returns the process-global histogram `name`, creating it on first
/// use.
pub fn histogram(name: &'static str) -> &'static Histogram {
    intern(
        name,
        |m| match m {
            Metric::Histogram(h) => Some(h),
            _ => None,
        },
        Metric::Histogram,
    )
}

/// A point-in-time rendering of one metric, ready for the JSONL sink.
#[derive(Debug, Clone)]
pub struct MetricSnapshot {
    /// Record kind: `counter`, `gauge` or `histogram`.
    pub kind: &'static str,
    /// Metric name.
    pub name: String,
    /// Pre-rendered JSON members (without braces), e.g. `"value":3`.
    pub body: String,
}

/// Snapshots every registered metric in registration order.
pub fn snapshot_metrics() -> Vec<MetricSnapshot> {
    let reg = registry().lock().expect("metric registry poisoned");
    reg.iter()
        .map(|(name, metric)| match metric {
            Metric::Counter(c) => MetricSnapshot {
                kind: "counter",
                name: (*name).to_string(),
                body: format!("\"value\":{}", c.get()),
            },
            Metric::Gauge(g) => MetricSnapshot {
                kind: "gauge",
                name: (*name).to_string(),
                body: format!("\"value\":{}", g.get()),
            },
            Metric::Histogram(h) => MetricSnapshot {
                kind: "histogram",
                name: (*name).to_string(),
                body: format!(
                    "\"count\":{},\"sum\":{},\"min\":{},\"max\":{},\"p50_le\":{},\"p95_le\":{},\"p99_le\":{}",
                    h.count(),
                    h.sum(),
                    h.min().unwrap_or(0),
                    h.max().unwrap_or(0),
                    h.quantile_bound(0.5).unwrap_or(0),
                    h.quantile_bound(0.95).unwrap_or(0),
                    h.quantile_bound(0.99).unwrap_or(0),
                ),
            },
        })
        .collect()
}

/// Resets every registered metric to zero (handles stay valid). Meant
/// for tests and between benchmark repetitions.
pub fn reset_metrics() {
    let reg = registry().lock().expect("metric registry poisoned");
    for (_, metric) in reg.iter() {
        match metric {
            Metric::Counter(c) => c.reset(),
            Metric::Gauge(g) => g.reset(),
            Metric::Histogram(h) => h.reset(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_intern_by_name() {
        let a = counter("test.counter.a");
        let b = counter("test.counter.a");
        a.add(2);
        b.incr();
        assert_eq!(a.get(), 3);
        assert!(std::ptr::eq(a, b));
    }

    #[test]
    fn gauges_move_both_ways() {
        let g = gauge("test.gauge");
        g.set(5);
        g.add(-2);
        assert_eq!(g.get(), 3);
    }

    #[test]
    fn histogram_tracks_extremes_and_quantiles() {
        let h = histogram("test.histogram");
        assert!(h.min().is_none());
        for v in [0u64, 1, 2, 3, 100] {
            h.record(v);
        }
        assert_eq!(h.count(), 5);
        assert_eq!(h.sum(), 106);
        assert_eq!(h.min(), Some(0));
        assert_eq!(h.max(), Some(100));
        assert!((h.mean().unwrap() - 21.2).abs() < 1e-9);
        // p50 of [0,1,2,3,100] is 2 — exact, since buckets below 64 are
        // one value wide.
        assert_eq!(h.quantile_bound(0.5), Some(2));
        assert!(h.quantile_bound(1.0).unwrap() >= 100);
    }

    #[test]
    fn log_buckets_bound_relative_error() {
        // Below 64 the bucket is the value itself; above, the upper
        // bound overshoots by at most 1/8 of the value's octave.
        for v in [0u64, 1, 5, 63, 64, 100, 1000, 123_456, u64::MAX / 2] {
            let idx = bucket_index(v);
            let upper = bucket_upper(idx);
            assert!(upper >= v, "upper {upper} < v {v}");
            if v < 64 {
                assert_eq!(upper, v);
            } else {
                assert!(upper - v <= v / 8 + 1, "v {v} upper {upper} too loose");
            }
            if idx > 0 {
                assert!(
                    bucket_upper(idx - 1) < v,
                    "bucket {idx} not minimal for {v}"
                );
            }
        }
        assert_eq!(bucket_index(u64::MAX), HISTOGRAM_BUCKETS - 1);
        assert_eq!(bucket_upper(HISTOGRAM_BUCKETS - 1), u64::MAX);
        // 100 sits in the [96,104) sub-bucket of the 64..128 octave.
        assert_eq!(bucket_upper(bucket_index(100)), 103);
    }

    #[test]
    fn quantiles_on_latency_like_data() {
        let h = histogram("test.histogram.latency");
        for v in 1..=100u64 {
            h.record(v);
        }
        assert_eq!(h.quantile_bound(0.5), Some(50));
        // 95 falls in the sub-bucket [88,96): upper bound 95 — exact here.
        assert_eq!(h.quantile_bound(0.95), Some(95));
        assert_eq!(h.quantile_bound(0.99), Some(103));
    }

    #[test]
    fn snapshot_renders_every_metric() {
        counter("test.snap.count").add(7);
        gauge("test.snap.gauge").set(-4);
        histogram("test.snap.hist").record(16);
        let snaps = snapshot_metrics();
        let find = |n: &str| {
            snaps
                .iter()
                .find(|s| s.name == n)
                .unwrap_or_else(|| panic!("{n} missing"))
        };
        assert!(find("test.snap.count").body.contains("\"value\":7"));
        assert!(find("test.snap.gauge").body.contains("\"value\":-4"));
        let h = find("test.snap.hist");
        assert_eq!(h.kind, "histogram");
        assert!(h.body.contains("\"count\":1"));
    }

    #[test]
    #[should_panic(expected = "different type")]
    fn type_confusion_panics() {
        counter("test.confused");
        gauge("test.confused");
    }

    #[test]
    fn scale_gauges_are_registered_and_hold_extreme_byte_counts() {
        // The scale planner reports state sizes through these gauges;
        // the names must be in the O1 registry and the handles must
        // survive the full i64 range (contention-state byte counts are
        // u64-sized upstream and clamped by the caller).
        for n in [
            "planner.contention_bytes",
            "planner.region_count",
            "planner.scale",
        ] {
            assert!(crate::names::is_registered(n), "{n} missing from registry");
        }
        let g = gauge("planner.contention_bytes");
        g.set(i64::MAX);
        assert_eq!(g.get(), i64::MAX);
        g.set(i64::MIN);
        assert_eq!(g.get(), i64::MIN);
        g.set(0);
        let r = gauge("planner.region_count");
        r.set(0);
        r.add(3);
        r.add(-3);
        assert_eq!(r.get(), 0);
    }
}
