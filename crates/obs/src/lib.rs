//! Zero-dependency observability for the peercache workspace.
//!
//! Three pieces, all hand-rolled on `std` (the build environment has no
//! crates-io access, and the hot paths must stay dependency-free):
//!
//! * **Tracing** — [`span()`]/[`Span`] RAII timers on monotonic clocks and
//!   fire-and-forget [`event()`]s, both carrying typed key/value fields.
//!   The [`span!`] and [`event!`] macros are the ergonomic entry points.
//! * **Metrics** — process-global [`Counter`]s, [`Gauge`]s and
//!   [`Histogram`]s behind a name-interned registry ([`counter`],
//!   [`gauge`], [`histogram`]); handles are `&'static` atomics, so
//!   recording is a relaxed atomic op with no locking.
//! * **A JSONL sink** — selected by the `PEERCACHE_TRACE` environment
//!   variable: `stderr`, `stdout`, or a file path (appended). When the
//!   variable is unset or empty, every tracing call is a no-op: no sink
//!   is allocated, no field vectors are built, no I/O happens — the
//!   only residual cost is one atomic load per call site.
//! * **Causal tracing** — [`TraceContext`]/[`emit_span`] spans with
//!   explicit trace/span/parent ids and tick timestamps, plus the
//!   offline analysis half ([`parse_spans`], [`build_forest`],
//!   [`critical_path`], [`latency_table`]) used by `repro trace`.
//! * **Time-series** — bounded, deterministic [`TimeSeries`] recorders
//!   with decimation, owned by the instrumented component.
//! * **Support** — a minimal [`Json`] reader (no crates-io access) and
//!   the central observability-name registry ([`REGISTERED_NAMES`],
//!   enforced by lint rule O1).
//!
//! # Record schema
//!
//! One JSON object per line, timestamps in microseconds since the
//! process's first observability call:
//!
//! ```json
//! {"ts_us":120,"kind":"span","name":"dual_ascent","dur_us":431,"chunk":0,"rounds":17}
//! {"ts_us":552,"kind":"event","name":"plan_chunk","planner":"Appx","cost_total":96.5}
//! {"ts_us":901,"kind":"counter","name":"dist.cross_shard_msgs","value":1204}
//! {"ts_us":902,"kind":"histogram","name":"plan.chunk_us","count":5,"sum":2125,"min":311,"max":612}
//! ```
//!
//! # Example
//!
//! ```
//! use peercache_obs as obs;
//!
//! // With PEERCACHE_TRACE unset this is all no-op (and allocation-free).
//! let mut sp = obs::span!("demo.work", items = 3usize);
//! for i in 0..3u64 {
//!     obs::counter("demo.iterations").incr();
//!     obs::event!("demo.step", step = i);
//! }
//! sp.add_field("outcome", "ok".into());
//! drop(sp); // emits the span record (if tracing is enabled)
//! assert!(obs::counter("demo.iterations").get() >= 3);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod clock;
mod json;
mod metrics;
mod names;
mod sink;
mod span;
mod timeseries;
mod trace;
mod value;

pub use clock::MonotonicClock;
pub use json::Json;
pub use metrics::{
    counter, gauge, histogram, reset_metrics, snapshot_metrics, Counter, Gauge, Histogram,
    MetricSnapshot,
};
pub use names::{is_registered, REGISTERED_NAMES};
pub use sink::{emit_metrics, enabled, flush, with_quiet};
pub use span::{event, span, Span, Stopwatch};
pub use timeseries::TimeSeries;
pub use trace::{
    build_forest, critical_path, emit_span, latency_table, parse_spans, CriticalPath, LatencyRow,
    SpanRecord, TraceContext, TraceTree,
};
pub use value::Value;

/// Starts a [`Span`] with inline fields:
/// `span!("name", key = value, ...)`.
///
/// Field values go through [`Value::from`]; the span records wall time
/// from this point until it is dropped. No-op when tracing is off.
#[macro_export]
macro_rules! span {
    ($name:expr $(, $key:ident = $val:expr)* $(,)?) => {{
        #[allow(unused_mut)]
        let mut __span = $crate::span($name);
        if __span.is_recording() {
            $(__span.add_field(stringify!($key), $crate::Value::from($val));)*
        }
        __span
    }};
}

/// Emits an [`event()`] with inline fields:
/// `event!("name", key = value, ...)`.
///
/// The field array is only built when tracing is enabled.
#[macro_export]
macro_rules! event {
    ($name:expr $(, $key:ident = $val:expr)* $(,)?) => {
        if $crate::enabled() {
            $crate::event($name, &[$((stringify!($key), $crate::Value::from($val))),*]);
        }
    };
}
