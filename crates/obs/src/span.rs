//! RAII span timers and fire-and-forget events.

use std::time::Instant;

use crate::sink::{enabled, is_quiet, write_record};
use crate::value::Value;

/// A timed section of code. Created by [`span`] (or the [`crate::span!`]
/// macro); the record is emitted when the span is dropped.
///
/// When tracing is off the span holds nothing and does nothing.
#[derive(Debug)]
pub struct Span {
    inner: Option<SpanInner>,
}

#[derive(Debug)]
struct SpanInner {
    name: &'static str,
    start: Instant,
    fields: Vec<(&'static str, Value)>,
}

/// Starts a span named `name`. Near-zero-cost no-op when tracing is
/// off (no allocation, no clock read).
pub fn span(name: &'static str) -> Span {
    let inner = (enabled() && !is_quiet()).then(|| SpanInner {
        name,
        start: Instant::now(),
        fields: Vec::new(),
    });
    Span { inner }
}

impl Span {
    /// Attaches a field (no-op when tracing is off).
    pub fn add_field(&mut self, key: &'static str, value: Value) {
        if let Some(inner) = &mut self.inner {
            inner.fields.push((key, value));
        }
    }

    /// Whether this span will emit a record on drop.
    pub fn is_recording(&self) -> bool {
        self.inner.is_some()
    }
}

impl Drop for Span {
    fn drop(&mut self) {
        if let Some(inner) = self.inner.take() {
            let dur_us = inner.start.elapsed().as_micros() as u64;
            write_record(
                "span",
                inner.name,
                &format!("\"dur_us\":{dur_us}"),
                &inner.fields,
            );
        }
    }
}

/// Emits an instantaneous event record with the given fields. Callers
/// that build fields dynamically should guard with [`enabled`] (the
/// [`crate::event!`] macro does).
pub fn event(name: &str, fields: &[(&str, Value)]) {
    if enabled() && !is_quiet() {
        write_record("event", name, "", fields);
    }
}

/// A phase stopwatch for breaking one span into consecutive stages:
/// each [`Stopwatch::lap_us`] returns the microseconds since the
/// previous lap (or since start). Reads no clock when tracing is off —
/// laps then return 0.
#[derive(Debug)]
pub struct Stopwatch(Option<Instant>);

impl Stopwatch {
    /// Starts the stopwatch (no-op when tracing is off).
    pub fn start() -> Self {
        Stopwatch(enabled().then(Instant::now))
    }

    /// Microseconds since the previous lap, restarting the lap timer.
    pub fn lap_us(&mut self) -> u64 {
        match &mut self.0 {
            Some(t) => {
                let e = t.elapsed().as_micros() as u64;
                *t = Instant::now();
                e
            }
            None => 0,
        }
    }
}
