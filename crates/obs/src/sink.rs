//! The JSONL sink behind `PEERCACHE_TRACE`.

use std::cell::Cell;
use std::fs::{File, OpenOptions};
use std::io::Write as _;
use std::sync::{Mutex, OnceLock};
use std::time::Instant;

use crate::value::{write_json_string, Value};

thread_local! {
    /// Per-thread emission suppression flag; see [`with_quiet`].
    static QUIET: Cell<bool> = const { Cell::new(false) };
}

/// Runs `f` with observability emission suppressed on this thread:
/// spans, events, and raw records become no-ops until it returns.
///
/// This is the sanctioned way to call potentially-emitting code from
/// inside a thread fan-out (lint rule C1): worker threads must not
/// interleave the shared JSONL stream or skew span counts, so the
/// deterministic serial arm and the threaded arm of a fan-out both
/// wrap their per-item work in `with_quiet`, keeping emitted traces
/// identical across `Parallelism` settings. Metric *values* (atomic
/// counters/gauges) still update; only record emission is suppressed.
pub fn with_quiet<R>(f: impl FnOnce() -> R) -> R {
    QUIET.with(|q| {
        let prev = q.replace(true);
        let out = f();
        q.set(prev);
        out
    })
}

/// Whether emission is currently suppressed on this thread.
pub(crate) fn is_quiet() -> bool {
    QUIET.with(Cell::get)
}

/// Where trace records go.
enum Sink {
    Stderr,
    Stdout,
    File(Mutex<File>),
}

static SINK: OnceLock<Option<Sink>> = OnceLock::new();
static EPOCH: OnceLock<Instant> = OnceLock::new();

fn sink() -> &'static Option<Sink> {
    SINK.get_or_init(|| {
        let target = std::env::var("PEERCACHE_TRACE").unwrap_or_default();
        match target.as_str() {
            "" | "0" | "off" => None,
            "stderr" => Some(Sink::Stderr),
            "stdout" => Some(Sink::Stdout),
            path => match OpenOptions::new().create(true).append(true).open(path) {
                Ok(f) => Some(Sink::File(Mutex::new(f))),
                Err(e) => {
                    eprintln!("peercache-obs: cannot open PEERCACHE_TRACE={path}: {e}");
                    None
                }
            },
        }
    })
}

/// Returns `true` when `PEERCACHE_TRACE` selected a sink.
///
/// The first call latches the environment variable for the process
/// lifetime; callers can treat this as a cheap atomic load.
pub fn enabled() -> bool {
    sink().is_some()
}

/// Microseconds since the process's first observability call.
pub(crate) fn ts_us() -> u64 {
    EPOCH.get_or_init(Instant::now).elapsed().as_micros() as u64
}

/// Serializes one record and writes it as a line. `kind` and `name` are
/// emitted first, then `extra` (pre-rendered JSON members, e.g.
/// `"dur_us":12`), then the fields.
pub(crate) fn write_record(kind: &str, name: &str, extra: &str, fields: &[(&str, Value)]) {
    if is_quiet() {
        return;
    }
    let Some(sink) = sink() else { return };
    let mut line = String::with_capacity(96 + 24 * fields.len());
    line.push_str("{\"ts_us\":");
    {
        use std::fmt::Write as _;
        let _ = write!(line, "{}", ts_us());
    }
    line.push_str(",\"kind\":\"");
    line.push_str(kind);
    line.push_str("\",\"name\":");
    write_json_string(&mut line, name);
    if !extra.is_empty() {
        line.push(',');
        line.push_str(extra);
    }
    for (key, value) in fields {
        line.push(',');
        write_json_string(&mut line, key);
        line.push(':');
        value.write_json(&mut line);
    }
    line.push_str("}\n");
    match sink {
        Sink::Stderr => {
            let _ = std::io::stderr().lock().write_all(line.as_bytes());
        }
        Sink::Stdout => {
            let _ = std::io::stdout().lock().write_all(line.as_bytes());
        }
        Sink::File(file) => {
            if let Ok(mut f) = file.lock() {
                let _ = f.write_all(line.as_bytes());
            }
        }
    }
}

/// Flushes the sink (meaningful for file sinks; no-op otherwise).
pub fn flush() {
    if let Some(Sink::File(file)) = sink() {
        if let Ok(mut f) = file.lock() {
            let _ = f.flush();
        }
    }
}

/// Writes every registered metric as one record (counters, gauges,
/// histograms). No-op when tracing is off.
pub fn emit_metrics() {
    if !enabled() {
        return;
    }
    for snap in crate::metrics::snapshot_metrics() {
        write_record(snap.kind, &snap.name, &snap.body, &[]);
    }
    flush();
}
