//! Injectable monotonic clock.
//!
//! Lint rule D2 keeps ambient time sources (`Instant::now`, `SystemTime`)
//! out of the deterministic crates; code there that wants wall-clock
//! measurements (e.g. churn-repair timing in `core::world`) takes a
//! [`MonotonicClock`] instead. The default reads real elapsed time from the
//! process-wide telemetry epoch; tests freeze it for reproducible output.

use crate::sink::ts_us;

/// A microsecond clock that can be swapped for a frozen one in tests.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum MonotonicClock {
    /// Real elapsed time since the process-wide observability epoch.
    #[default]
    System,
    /// A frozen timestamp: `now_us` always returns this value, so
    /// durations measure as zero (fully deterministic).
    Fixed(u64),
}

impl MonotonicClock {
    /// Current reading in microseconds.
    #[must_use]
    pub fn now_us(&self) -> u64 {
        match self {
            MonotonicClock::System => ts_us(),
            MonotonicClock::Fixed(t) => *t,
        }
    }

    /// Microseconds elapsed since an earlier reading of this clock.
    #[must_use]
    pub fn elapsed_us(&self, start_us: u64) -> u64 {
        self.now_us().saturating_sub(start_us)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fixed_clock_is_frozen() {
        let c = MonotonicClock::Fixed(41);
        assert_eq!(c.now_us(), 41);
        assert_eq!(c.elapsed_us(41), 0);
        assert_eq!(c.elapsed_us(100), 0); // saturates, never underflows
    }

    #[test]
    fn system_clock_is_monotonic() {
        let c = MonotonicClock::System;
        let a = c.now_us();
        let b = c.now_us();
        assert!(b >= a);
    }
}
