//! Causal tracing: deterministic trace contexts, span emission, and
//! offline reconstruction of span trees from a JSONL trace.
//!
//! Unlike [`crate::span`] (a wall-clock RAII timer), causal spans carry
//! explicit identity — a trace id, a span id, and a parent span id —
//! and explicit start/end timestamps in *simulation ticks*, so a
//! deterministic run emits a byte-identical trace (modulo the `ts_us`
//! wall-clock prefix) on every replay. The distributed simulator
//! allocates span ids from a per-round counter and derives the trace id
//! from the configured seeds; nothing about ids ever feeds back into
//! protocol decisions, so tracing on/off cannot change an outcome.
//!
//! Record schema (`kind":"span"` lines that carry a `"trace"` member):
//!
//! ```json
//! {"ts_us":9,"kind":"span","name":"dist.msg.tight","trace":81,"span":7,
//!  "parent":1,"start":3,"end":5,"fate":"delivered","from":2,"to":0}
//! ```
//!
//! The analysis half ([`parse_spans`], [`build_forest`],
//! [`critical_path`], [`latency_table`]) powers `repro trace` and the
//! trace-completeness tests.

use std::collections::BTreeMap;

use crate::json::Json;
use crate::sink::{enabled, write_record};
use crate::value::Value;

/// Identity of one causal span: which trace it belongs to, its own id,
/// and the id of the span that caused it (0 = root, no parent).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct TraceContext {
    /// Trace id, deterministic from the run's seeds.
    pub trace: u64,
    /// This span's id, unique within the trace (roots use 1).
    pub span: u64,
    /// Parent span id; 0 marks a root span.
    pub parent: u64,
}

/// Emits one causal span record. `start`/`end` are in simulation ticks;
/// `fate` states how the span resolved (`delivered`, `dropped:loss`,
/// `expired`, ...). No-op when tracing is off.
pub fn emit_span(
    name: &'static str,
    ctx: TraceContext,
    start: u64,
    end: u64,
    fate: &str,
    fields: &[(&str, Value)],
) {
    if !enabled() {
        return;
    }
    let extra = format!(
        "\"trace\":{},\"span\":{},\"parent\":{},\"start\":{},\"end\":{},\"fate\":\"{}\"",
        ctx.trace, ctx.span, ctx.parent, start, end, fate
    );
    write_record("span", name, &extra, fields);
}

/// One causal span read back from a JSONL trace.
#[derive(Debug, Clone, PartialEq)]
pub struct SpanRecord {
    /// Span name (e.g. `dist.msg.tight`).
    pub name: String,
    /// Trace id.
    pub trace: u64,
    /// Span id.
    pub span: u64,
    /// Parent span id (0 = root).
    pub parent: u64,
    /// Start tick.
    pub start: u64,
    /// End tick.
    pub end: u64,
    /// How the span resolved.
    pub fate: String,
}

impl SpanRecord {
    /// `end - start` (saturating).
    #[must_use]
    pub fn latency(&self) -> u64 {
        self.end.saturating_sub(self.start)
    }
}

/// Parses every causal span out of a JSONL trace. Lines that are not
/// span records, or span records without the full causal schema
/// (`trace`/`span`/`parent`/`start`/`end` — RAII wall-clock spans may
/// carry a correlating `trace` field but no span id), are skipped;
/// malformed JSON is an error.
pub fn parse_spans(jsonl: &str) -> Result<Vec<SpanRecord>, String> {
    let mut spans = Vec::new();
    for (lineno, line) in jsonl.lines().enumerate() {
        let line = line.trim();
        if line.is_empty() {
            continue;
        }
        let v = Json::parse(line).map_err(|e| format!("line {}: {e}", lineno + 1))?;
        if v.get("kind").and_then(Json::as_str) != Some("span") {
            continue;
        }
        let field = |k: &str| v.get(k).and_then(Json::as_u64);
        let (Some(trace), Some(span), Some(parent), Some(start), Some(end)) = (
            field("trace"),
            field("span"),
            field("parent"),
            field("start"),
            field("end"),
        ) else {
            continue;
        };
        spans.push(SpanRecord {
            name: v
                .get("name")
                .and_then(Json::as_str)
                .ok_or_else(|| format!("line {}: span missing name", lineno + 1))?
                .to_string(),
            trace,
            span,
            parent,
            start,
            end,
            fate: v
                .get("fate")
                .and_then(Json::as_str)
                .unwrap_or_default()
                .to_string(),
        });
    }
    Ok(spans)
}

/// All spans of one trace, plus which of them are orphans.
#[derive(Debug, Clone)]
pub struct TraceTree {
    /// The trace id.
    pub trace: u64,
    /// Every span of the trace, in span-id (allocation) order.
    pub spans: Vec<SpanRecord>,
    /// Ids of spans whose non-zero parent id resolves to no span in
    /// this trace. Empty for a complete trace.
    pub orphans: Vec<u64>,
}

/// Groups spans by trace id (ascending) and flags orphans.
///
/// Replaying a round within one process capture re-emits the exact
/// same records under the same trace id (a replay *is* the same
/// trace), so byte-identical duplicates within a trace collapse to one
/// span; span-id order is preserved.
#[must_use]
pub fn build_forest(spans: &[SpanRecord]) -> Vec<TraceTree> {
    let mut by_trace: BTreeMap<u64, Vec<SpanRecord>> = BTreeMap::new();
    for s in spans {
        by_trace.entry(s.trace).or_default().push(s.clone());
    }
    by_trace
        .into_iter()
        .map(|(trace, mut spans)| {
            spans.sort_by(|a, b| {
                (a.span, a.start, a.end, &a.name, &a.fate, a.parent)
                    .cmp(&(b.span, b.start, b.end, &b.name, &b.fate, b.parent))
            });
            spans.dedup();
            let ids: std::collections::BTreeSet<u64> = spans.iter().map(|s| s.span).collect();
            let orphans = spans
                .iter()
                .filter(|s| s.parent != 0 && !ids.contains(&s.parent))
                .map(|s| s.span)
                .collect();
            TraceTree {
                trace,
                spans,
                orphans,
            }
        })
        .collect()
}

/// The critical path of one trace: the causal chain from the root down
/// to the latest-finishing span.
#[derive(Debug, Clone)]
pub struct CriticalPath {
    /// The chain, root first.
    pub spans: Vec<SpanRecord>,
    /// `last.end - first.start`: end-to-end latency along the chain.
    pub total: u64,
}

/// Computes the critical path of `tree`: finds the latest-finishing
/// *leaf* span (largest `end`; larger span id on ties, i.e. the
/// causally later allocation) and walks its parent chain back to the
/// root. Leaves only — the root span covers the whole round by
/// construction, so scanning interior spans would always degenerate to
/// the root alone. Returns `None` for an empty trace.
#[must_use]
pub fn critical_path(tree: &TraceTree) -> Option<CriticalPath> {
    let by_id: BTreeMap<u64, &SpanRecord> = tree.spans.iter().map(|s| (s.span, s)).collect();
    let parents: std::collections::BTreeSet<u64> = tree.spans.iter().map(|s| s.parent).collect();
    let last = tree
        .spans
        .iter()
        .filter(|s| !parents.contains(&s.span))
        .max_by(|a, b| a.end.cmp(&b.end).then(a.span.cmp(&b.span)))?;
    let mut chain = vec![last.clone()];
    let mut cursor = last;
    while cursor.parent != 0 {
        match by_id.get(&cursor.parent) {
            Some(parent) => {
                chain.push((*parent).clone());
                cursor = parent;
            }
            None => break, // orphan: path starts mid-air
        }
    }
    chain.reverse();
    let total = chain
        .last()
        .map(|l| l.end.saturating_sub(chain[0].start))
        .unwrap_or(0);
    Some(CriticalPath {
        spans: chain,
        total,
    })
}

/// Exact delivery-latency percentiles for one message kind.
#[derive(Debug, Clone, PartialEq)]
pub struct LatencyRow {
    /// Span name (e.g. `dist.msg.cc`).
    pub name: String,
    /// Number of delivered spans.
    pub count: u64,
    /// Exact p50 latency in ticks.
    pub p50: u64,
    /// Exact p95 latency in ticks.
    pub p95: u64,
    /// Exact p99 latency in ticks.
    pub p99: u64,
    /// Largest latency in ticks.
    pub max: u64,
}

fn percentile(sorted: &[u64], q: f64) -> u64 {
    debug_assert!(!sorted.is_empty());
    let rank = (q * sorted.len() as f64).ceil().max(1.0) as usize;
    sorted[rank.min(sorted.len()) - 1]
}

/// Builds a per-kind delivery-latency table from `dist.msg.*` spans
/// whose fate is a delivery (`delivered` / `delivered_dup`), sorted by
/// name. Percentiles are exact (computed from the full sample list,
/// not histogram buckets).
#[must_use]
pub fn latency_table(spans: &[SpanRecord]) -> Vec<LatencyRow> {
    let mut by_name: BTreeMap<&str, Vec<u64>> = BTreeMap::new();
    for s in spans {
        if s.name.starts_with("dist.msg.") && s.fate.starts_with("delivered") {
            by_name.entry(&s.name).or_default().push(s.latency());
        }
    }
    by_name
        .into_iter()
        .map(|(name, mut lats)| {
            lats.sort_unstable();
            LatencyRow {
                name: name.to_string(),
                count: lats.len() as u64,
                p50: percentile(&lats, 0.50),
                p95: percentile(&lats, 0.95),
                p99: percentile(&lats, 0.99),
                max: *lats.last().expect("non-empty"),
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rec(
        name: &str,
        trace: u64,
        span: u64,
        parent: u64,
        start: u64,
        end: u64,
        fate: &str,
    ) -> SpanRecord {
        SpanRecord {
            name: name.to_string(),
            trace,
            span,
            parent,
            start,
            end,
            fate: fate.to_string(),
        }
    }

    #[test]
    fn parses_only_causal_spans() {
        let jsonl = concat!(
            "{\"ts_us\":1,\"kind\":\"span\",\"name\":\"dist.round\",\"trace\":9,\"span\":1,\"parent\":0,\"start\":0,\"end\":40,\"fate\":\"settled\"}\n",
            "{\"ts_us\":2,\"kind\":\"span\",\"name\":\"planner.chunk\",\"dur_us\":55}\n",
            "{\"ts_us\":3,\"kind\":\"counter\",\"name\":\"dist.retry\",\"value\":4}\n",
            "\n",
            "{\"ts_us\":4,\"kind\":\"span\",\"name\":\"dist.msg.npi\",\"trace\":9,\"span\":2,\"parent\":1,\"start\":0,\"end\":2,\"fate\":\"delivered\"}\n",
        );
        let spans = parse_spans(jsonl).unwrap();
        assert_eq!(spans.len(), 2);
        assert_eq!(spans[0].name, "dist.round");
        assert_eq!(spans[1].parent, 1);
        assert_eq!(spans[1].latency(), 2);
        assert!(parse_spans("{oops").is_err());
    }

    #[test]
    fn forest_groups_and_flags_orphans() {
        let spans = vec![
            rec("dist.round", 7, 1, 0, 0, 10, "settled"),
            rec("dist.msg.npi", 7, 2, 1, 0, 1, "delivered"),
            rec("dist.msg.cc", 8, 2, 5, 0, 1, "delivered"), // parent 5 missing
            rec("dist.round", 8, 1, 0, 0, 3, "settled"),
        ];
        let forest = build_forest(&spans);
        assert_eq!(forest.len(), 2);
        assert_eq!(forest[0].trace, 7);
        assert!(forest[0].orphans.is_empty());
        assert_eq!(forest[1].orphans, vec![2]);
    }

    #[test]
    fn critical_path_matches_hand_computation() {
        // Hand-built negotiation: root (1) covers ticks 0..40. Chain A:
        // 1→2→4 ends at 12. Chain B: 1→3→5→6 ends at 40 (the deposition).
        // Critical path must be B, 4 spans, total 40 - 0 = 40.
        let spans = vec![
            rec("dist.round", 3, 1, 0, 0, 40, "settled"),
            rec("dist.msg.npi", 3, 2, 1, 0, 2, "delivered"),
            rec("dist.msg.tight", 3, 3, 1, 1, 4, "delivered"),
            rec("dist.msg.freeze", 3, 4, 2, 2, 12, "delivered"),
            rec("dist.msg.nadmin", 3, 5, 3, 4, 9, "delivered"),
            rec("dist.deposition", 3, 6, 5, 40, 40, "deposed"),
        ];
        let tree = &build_forest(&spans)[0];
        let path = critical_path(tree).unwrap();
        assert_eq!(
            path.spans.iter().map(|s| s.span).collect::<Vec<_>>(),
            vec![1, 3, 5, 6],
        );
        assert_eq!(path.spans.len(), 4);
        assert_eq!(path.total, 40);
    }

    #[test]
    fn critical_path_survives_orphans() {
        let spans = vec![
            rec("dist.msg.cc", 2, 4, 9, 5, 20, "delivered"), // orphan
            rec("dist.round", 2, 1, 0, 0, 10, "budget"),
        ];
        let tree = &build_forest(&spans)[0];
        let path = critical_path(tree).unwrap();
        assert_eq!(path.spans.len(), 1);
        assert_eq!(path.spans[0].span, 4);
        assert_eq!(path.total, 15);
    }

    #[test]
    fn latency_table_is_exact() {
        let mut spans = vec![rec("dist.round", 1, 1, 0, 0, 99, "settled")];
        // 20 TIGHT deliveries with latencies 1..=20, one dropped (ignored).
        for i in 1..=20u64 {
            spans.push(rec("dist.msg.tight", 1, 1 + i, 1, 0, i, "delivered"));
        }
        spans.push(rec("dist.msg.tight", 1, 40, 1, 0, 500, "dropped:loss"));
        spans.push(rec("dist.msg.cc", 1, 41, 1, 2, 5, "delivered_dup"));
        let table = latency_table(&spans);
        assert_eq!(table.len(), 2);
        assert_eq!(table[0].name, "dist.msg.cc");
        assert_eq!(table[0].count, 1);
        assert_eq!(table[0].p50, 3);
        let tight = &table[1];
        assert_eq!(tight.count, 20);
        assert_eq!(tight.p50, 10); // ceil(0.5*20) = 10th smallest = 10
        assert_eq!(tight.p95, 19); // ceil(0.95*20) = 19
        assert_eq!(tight.p99, 20); // ceil(0.99*20) = 20
        assert_eq!(tight.max, 20);
    }
}
