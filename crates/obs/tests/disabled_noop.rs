//! The disabled path: with `PEERCACHE_TRACE` unset the API must be a
//! no-op — spans don't record, events don't write, and metrics still
//! count (they are always-on atomics, independent of the sink).

use peercache_obs as obs;

#[test]
fn disabled_tracing_is_inert_but_metrics_count() {
    std::env::remove_var("PEERCACHE_TRACE");
    assert!(!obs::enabled());

    let sp = obs::span!("noop.span", weight = 9u64);
    assert!(!sp.is_recording());
    drop(sp);
    obs::event!("noop.event", x = 1u64);
    obs::event("noop.direct", &[("y", obs::Value::from(2u64))]);
    obs::emit_metrics();
    obs::flush();

    obs::counter("noop.counter").add(5);
    assert_eq!(obs::counter("noop.counter").get(), 5);
    obs::reset_metrics();
    assert_eq!(obs::counter("noop.counter").get(), 0);
}
