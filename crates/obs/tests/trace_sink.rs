//! End-to-end sink test: runs in its own test binary (own process), so
//! setting `PEERCACHE_TRACE` before the first observability call
//! latches the file sink for the whole test.
//!
//! Everything is exercised from a single `#[test]` because the sink is
//! process-global: parallel test threads would race the latch.

use peercache_obs as obs;

/// Minimal structural JSON check: balanced braces/brackets outside
/// strings, no trailing garbage. Not a full parser, but enough to catch
/// broken escaping or missing separators in the hand-rolled encoder.
fn assert_valid_jsonish(line: &str) {
    let line = line.trim();
    assert!(
        line.starts_with('{') && line.ends_with('}'),
        "not an object: {line}"
    );
    let mut depth = 0i32;
    let mut in_string = false;
    let mut escaped = false;
    for c in line.chars() {
        if in_string {
            if escaped {
                escaped = false;
            } else if c == '\\' {
                escaped = true;
            } else if c == '"' {
                in_string = false;
            }
            continue;
        }
        match c {
            '"' => in_string = true,
            '{' | '[' => depth += 1,
            '}' | ']' => depth -= 1,
            _ => {}
        }
        assert!(depth >= 0, "unbalanced braces in {line}");
    }
    assert_eq!(depth, 0, "unbalanced braces in {line}");
    assert!(!in_string, "unterminated string in {line}");
}

#[test]
fn file_sink_captures_spans_events_and_metrics() {
    let path =
        std::env::temp_dir().join(format!("peercache-obs-test-{}.jsonl", std::process::id()));
    let _ = std::fs::remove_file(&path);
    std::env::set_var("PEERCACHE_TRACE", &path);

    assert!(obs::enabled(), "file sink should have latched");

    {
        let mut sp = obs::span!("test.outer", chunk = 3usize, planner = "Appx");
        sp.add_field("cost", obs::Value::from(12.25f64));
        obs::event!(
            "test.mark",
            ok = true,
            detail = "with \"quotes\" and \\slashes".to_string()
        );
        let _inner = obs::span!("test.inner");
    }
    obs::counter("test.sink.msgs").add(41);
    obs::counter("test.sink.msgs").incr();
    obs::histogram("test.sink.lat_us").record(250);
    obs::emit_metrics();
    obs::flush();

    let content = std::fs::read_to_string(&path).expect("trace file exists");
    let lines: Vec<&str> = content.lines().collect();
    assert!(lines.len() >= 5, "expected >=5 records, got: {content}");
    for line in &lines {
        assert_valid_jsonish(line);
        assert!(line.contains("\"ts_us\":"), "missing ts_us: {line}");
    }

    // Spans carry durations and fields; inner closes before outer.
    let outer = lines
        .iter()
        .find(|l| l.contains("\"name\":\"test.outer\""))
        .expect("outer span recorded");
    assert!(outer.contains("\"kind\":\"span\""));
    assert!(outer.contains("\"dur_us\":"));
    assert!(outer.contains("\"chunk\":3"));
    assert!(outer.contains("\"planner\":\"Appx\""));
    assert!(outer.contains("\"cost\":12.25"));
    let outer_idx = lines.iter().position(|l| l.contains("test.outer")).unwrap();
    let inner_idx = lines.iter().position(|l| l.contains("test.inner")).unwrap();
    assert!(inner_idx < outer_idx, "RAII: inner span must close first");

    // Events carry escaped strings.
    let event = lines
        .iter()
        .find(|l| l.contains("\"name\":\"test.mark\""))
        .expect("event recorded");
    assert!(event.contains("\"ok\":true"));
    assert!(event.contains("\\\"quotes\\\""));

    // Metrics snapshot records.
    let counter = lines
        .iter()
        .find(|l| l.contains("\"name\":\"test.sink.msgs\""))
        .expect("counter snapshot recorded");
    assert!(counter.contains("\"kind\":\"counter\""));
    assert!(counter.contains("\"value\":42"));
    let hist = lines
        .iter()
        .find(|l| l.contains("\"name\":\"test.sink.lat_us\""))
        .expect("histogram snapshot recorded");
    assert!(hist.contains("\"count\":1"));
    assert!(hist.contains("\"sum\":250"));
    assert!(hist.contains("\"p95_le\":"));

    // Causal spans round-trip through the analysis half.
    obs::emit_span(
        "dist.round",
        obs::TraceContext {
            trace: 77,
            span: 1,
            parent: 0,
        },
        0,
        9,
        "settled",
        &[],
    );
    obs::emit_span(
        "dist.msg.npi",
        obs::TraceContext {
            trace: 77,
            span: 2,
            parent: 1,
        },
        0,
        3,
        "delivered",
        &[("to", obs::Value::from(4u64))],
    );
    let mut ts = obs::TimeSeries::with_capacity("sim.queue_depth", 8);
    ts.record(0, 2);
    ts.record(1, 5);
    ts.emit();
    obs::flush();

    let content = std::fs::read_to_string(&path).expect("trace file exists");
    for line in content.lines() {
        assert_valid_jsonish(line);
    }
    let spans = obs::parse_spans(&content).expect("trace parses");
    assert_eq!(spans.len(), 2, "exactly the two causal spans: {spans:?}");
    let forest = obs::build_forest(&spans);
    assert_eq!(forest.len(), 1);
    assert!(forest[0].orphans.is_empty());
    let path_out = obs::critical_path(&forest[0]).expect("non-empty trace");
    assert_eq!(path_out.spans.len(), 2);
    assert_eq!(path_out.total, 3);
    let series_line = content
        .lines()
        .find(|l| l.contains("\"kind\":\"timeseries\""))
        .expect("timeseries record");
    assert!(series_line.contains("\"name\":\"sim.queue_depth\""));
    assert!(series_line.contains("\"points\":[[0,2],[1,5]]"));

    let _ = std::fs::remove_file(&path);
}
