//! Exact baselines: brute-force subset enumeration ("Brtf") and a MILP
//! cross-check.
//!
//! The paper's optimal baseline solves the ILP with PuLP for small
//! networks and reports that it "fails to obtain results within
//! meaningful time" beyond that. Here:
//!
//! * [`BruteForcePlanner`] enumerates every facility subset per chunk
//!   with cost-bound pruning. Its dissemination tree uses the same
//!   2-approximate Steiner routine as the other planners, so it is
//!   exact in facility choice and assignment, and tree-approximate —
//!   the practical "optimal" the figures compare against.
//! * [`MilpPlanner`] encodes one chunk's ConFL as a mixed-integer
//!   program (single-commodity-flow connectivity replaces the
//!   exponential cut family (6)) and solves it with `peercache-lp` —
//!   the certified optimum, viable only on tiny graphs, used in tests
//!   to validate the brute force.

// Index loops below walk several parallel arrays at once; iterator
// chains would obscure the lockstep structure.
#![allow(clippy::needless_range_loop)]

use peercache_graph::NodeId;
use peercache_lp::{solve_milp, MilpOptions, Model, Relation, Sense};

use peercache_graph::paths::PathSelection;

use crate::costs::CostWeights;
use crate::instance::ConflInstance;
use crate::placement::Placement;
use crate::planner::{chunk_span, commit_chunk, finish_chunk_span, CachePlanner};
use crate::{ChunkId, CoreError, Network};

/// Configuration of the exact planners.
#[derive(Debug, Clone, PartialEq)]
pub struct ExactConfig {
    /// Objective weights.
    pub weights: CostWeights,
    /// Path routing model for the contention metric.
    pub selection: PathSelection,
    /// Refuse to enumerate beyond this many facility candidates
    /// (`2^max_candidates` subsets).
    pub max_candidates: usize,
}

impl Default for ExactConfig {
    fn default() -> Self {
        ExactConfig {
            weights: CostWeights::default(),
            selection: PathSelection::FewestHops,
            max_candidates: 20,
        }
    }
}

/// Brute-force exact planner ("Brtf" in the figures).
#[derive(Debug, Clone, Default)]
pub struct BruteForcePlanner {
    /// Planner parameters.
    pub config: ExactConfig,
}

impl BruteForcePlanner {
    /// Creates a planner with explicit parameters.
    pub fn new(config: ExactConfig) -> Self {
        BruteForcePlanner { config }
    }
}

/// Finds the cost-minimal facility subset for one chunk by enumeration.
///
/// Returns the best facility set (sorted). Subsets whose fairness +
/// access cost already exceed the incumbent skip the Steiner-tree
/// evaluation; masks are visited in increasing-cardinality-agnostic
/// numeric order, so the result is deterministic.
///
/// # Errors
///
/// Returns [`CoreError::InvalidParameter`] when there are more than
/// `max_candidates` candidates.
pub fn best_facility_set(
    net: &Network,
    inst: &ConflInstance,
    max_candidates: usize,
) -> Result<Vec<NodeId>, CoreError> {
    let candidates = inst.candidates();
    if candidates.len() > max_candidates {
        return Err(CoreError::InvalidParameter(format!(
            "brute force limited to {max_candidates} candidates, instance has {}",
            candidates.len()
        )));
    }
    let mut best_set: Vec<NodeId> = Vec::new();
    let (empty_costs, _, _) = inst.evaluate_set(net, &[])?;
    let mut best_total = empty_costs.total();

    let mut subset = Vec::with_capacity(candidates.len());
    for mask in 1u64..(1u64 << candidates.len()) {
        subset.clear();
        let mut fairness = 0.0;
        for (bit, &cand) in candidates.iter().enumerate() {
            if mask & (1 << bit) != 0 {
                subset.push(cand);
                fairness += inst.facility_cost(cand);
            }
        }
        if fairness >= best_total {
            continue;
        }
        let (_, access) = inst.assign_clients(net, &subset);
        if fairness + access >= best_total {
            continue;
        }
        let (costs, _, _) = inst.evaluate_set(net, &subset)?;
        if costs.total() < best_total {
            best_total = costs.total();
            best_set = subset.clone();
        }
    }
    Ok(best_set)
}

impl CachePlanner for BruteForcePlanner {
    fn name(&self) -> &str {
        "Brtf"
    }

    fn plan(&self, net: &mut Network, chunk_count: usize) -> Result<Placement, CoreError> {
        let mut placement = Placement::default();
        for q in 0..chunk_count {
            let chunk = ChunkId::new(q);
            let span = chunk_span("Brtf", chunk);
            let inst = ConflInstance::build_for_chunk(
                net,
                chunk,
                self.config.weights,
                self.config.selection,
            )?;
            let set = best_facility_set(net, &inst, self.config.max_candidates)?;
            let cp = commit_chunk(net, &inst, chunk, &set)?;
            finish_chunk_span(span, &cp);
            placement.push(cp);
        }
        Ok(placement)
    }
}

/// Solves one chunk's ConFL instance as a MILP; returns the optimal
/// facility set and the certified objective value.
///
/// Connectivity constraint (6) of the ILP — "the chosen caching nodes
/// form a Steiner tree with the producer" — is encoded compactly with a
/// single-commodity flow: the producer ships one unit to every opened
/// facility and flow may only use purchased edges.
///
/// # Errors
///
/// Returns [`CoreError::Solver`] if branch-and-bound fails (node limit
/// or numerical trouble).
pub fn solve_chunk_milp(
    net: &Network,
    inst: &ConflInstance,
) -> Result<(Vec<NodeId>, f64), CoreError> {
    let producer = inst.producer();
    let candidates = inst.candidates();
    let clients: Vec<NodeId> = inst.clients().to_vec();
    let edges: Vec<(NodeId, NodeId)> = net.graph().edges().collect();
    let big_m = candidates.len().max(1) as f64;

    let mut model = Model::new(Sense::Minimize);

    // y_i: open facility i.
    let y: Vec<_> = candidates
        .iter()
        .map(|&i| model.add_binary_var(format!("y{i}"), inst.facility_cost(i)))
        .collect();
    // x_ij: client j served by facility i (candidates + producer);
    // continuous in [0,1] — integral at any optimum with integral y.
    let providers: Vec<NodeId> = candidates.iter().copied().chain([producer]).collect();
    let mut x = vec![Vec::new(); providers.len()];
    for (pi, &i) in providers.iter().enumerate() {
        for &j in &clients {
            let v = model.add_var(format!("x{i}_{j}"), 0.0, 1.0, inst.connection_cost(i, j));
            x[pi].push(v);
        }
    }
    // z_e: edge bought for dissemination.
    let z: Vec<_> = edges
        .iter()
        .map(|&(u, v)| {
            model.add_binary_var(
                format!("z{u}_{v}"),
                inst.weights().dissemination * inst.matrix().edge_cost(u, v),
            )
        })
        .collect();
    // Directed flows per edge.
    let flow: Vec<(peercache_lp::VarId, peercache_lp::VarId)> = edges
        .iter()
        .map(|&(u, v)| {
            (
                model.add_var(format!("f{u}_{v}"), 0.0, f64::INFINITY, 0.0),
                model.add_var(format!("f{v}_{u}"), 0.0, f64::INFINITY, 0.0),
            )
        })
        .collect();

    // Each client is served exactly once.
    for (jj, _) in clients.iter().enumerate() {
        let terms = (0..providers.len()).map(|pi| (x[pi][jj], 1.0)).collect();
        model.add_constraint(terms, Relation::Eq, 1.0);
    }
    // Serving requires an open facility (producer always open).
    for (pi, _) in candidates.iter().enumerate() {
        for (jj, _) in clients.iter().enumerate() {
            model.add_constraint(vec![(x[pi][jj], 1.0), (y[pi], -1.0)], Relation::Le, 0.0);
        }
    }
    // Flow conservation: every non-producer node absorbs y_i units
    // (0 for non-candidates).
    for node in net.graph().nodes() {
        if node == producer {
            continue;
        }
        let mut terms = Vec::new();
        for (ei, &(u, v)) in edges.iter().enumerate() {
            let (fuv, fvu) = flow[ei];
            if v == node {
                terms.push((fuv, 1.0)); // inflow u->v
                terms.push((fvu, -1.0));
            } else if u == node {
                terms.push((fvu, 1.0)); // inflow v->u
                terms.push((fuv, -1.0));
            }
        }
        let demand = candidates.iter().position(|&c| c == node).map(|ci| y[ci]);
        match demand {
            Some(yv) => {
                terms.push((yv, -1.0));
                model.add_constraint(terms, Relation::Eq, 0.0);
            }
            None => model.add_constraint(terms, Relation::Eq, 0.0),
        }
    }
    // Flow only on purchased edges.
    for (ei, _) in edges.iter().enumerate() {
        let (fuv, fvu) = flow[ei];
        model.add_constraint(
            vec![(fuv, 1.0), (fvu, 1.0), (z[ei], -big_m)],
            Relation::Le,
            0.0,
        );
    }

    let sol = solve_milp(&model, &MilpOptions::default())
        .map_err(|e| CoreError::Solver(e.to_string()))?;
    let set: Vec<NodeId> = candidates
        .iter()
        .enumerate()
        .filter(|&(ci, _)| sol.value(y[ci]) > 0.5)
        .map(|(_, &i)| i)
        .collect();
    Ok((set, sol.objective))
}

/// MILP-backed exact planner ("Ilp"): certified optimum per chunk.
///
/// Only viable on tiny graphs (a handful of binaries per node and
/// edge); used to validate [`BruteForcePlanner`].
#[derive(Debug, Clone, Default)]
pub struct MilpPlanner {
    /// Planner parameters (`max_candidates` is ignored).
    pub config: ExactConfig,
}

impl CachePlanner for MilpPlanner {
    fn name(&self) -> &str {
        "Ilp"
    }

    fn plan(&self, net: &mut Network, chunk_count: usize) -> Result<Placement, CoreError> {
        let mut placement = Placement::default();
        for q in 0..chunk_count {
            let chunk = ChunkId::new(q);
            let span = chunk_span("Ilp", chunk);
            let inst = ConflInstance::build_for_chunk(
                net,
                chunk,
                self.config.weights,
                self.config.selection,
            )?;
            let (set, _) = solve_chunk_milp(net, &inst)?;
            let cp = commit_chunk(net, &inst, chunk, &set)?;
            finish_chunk_span(span, &cp);
            placement.push(cp);
        }
        Ok(placement)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use peercache_graph::builders;

    fn small_net() -> Network {
        // 2x3 grid, producer in a corner.
        Network::new(builders::grid(2, 3), NodeId::new(0), 2).unwrap()
    }

    fn inst(net: &Network) -> ConflInstance {
        ConflInstance::build(net, CostWeights::default(), PathSelection::FewestHops).unwrap()
    }

    #[test]
    fn brute_force_beats_or_matches_any_fixed_set() {
        let net = small_net();
        let i = inst(&net);
        let best = best_facility_set(&net, &i, 20).unwrap();
        let (best_costs, _, _) = i.evaluate_set(&net, &best).unwrap();
        // Compare against a few arbitrary sets.
        for set in [
            vec![],
            vec![NodeId::new(5)],
            vec![NodeId::new(1), NodeId::new(4)],
            vec![NodeId::new(2), NodeId::new(3), NodeId::new(5)],
        ] {
            let (costs, _, _) = i.evaluate_set(&net, &set).unwrap();
            assert!(
                best_costs.total() <= costs.total() + 1e-9,
                "set {set:?} beat brute force"
            );
        }
    }

    #[test]
    fn brute_force_rejects_oversized_instances() {
        let net = Network::new(builders::grid(5, 5), NodeId::new(0), 2).unwrap();
        let i = inst(&net);
        assert!(matches!(
            best_facility_set(&net, &i, 10),
            Err(CoreError::InvalidParameter(_))
        ));
    }

    #[test]
    fn brute_force_planner_places_chunks() {
        let mut net = small_net();
        let placement = BruteForcePlanner::default().plan(&mut net, 2).unwrap();
        assert_eq!(placement.chunks().len(), 2);
        for cp in placement.chunks() {
            assert_eq!(cp.assignment.len(), 5);
        }
    }

    #[test]
    fn milp_matches_brute_force_when_tree_is_a_path() {
        // On a path graph every Steiner tree is a union of shortest
        // paths, so the KMB approximation is exact and the two exact
        // solvers must agree on the optimum objective.
        let net = Network::new(builders::path(4), NodeId::new(0), 2).unwrap();
        let i = inst(&net);
        let brtf = best_facility_set(&net, &i, 20).unwrap();
        let (brtf_costs, _, _) = i.evaluate_set(&net, &brtf).unwrap();
        let (milp_set, milp_obj) = solve_chunk_milp(&net, &i).unwrap();
        assert!(
            (brtf_costs.total() - milp_obj).abs() < 1e-6,
            "brtf {} vs milp {} (sets {:?} / {:?})",
            brtf_costs.total(),
            milp_obj,
            brtf,
            milp_set
        );
    }

    #[test]
    fn pruning_never_changes_the_enumeration_result() {
        // The fairness/access bound prunes are admissible: the winning
        // subset must match a prune-free exhaustive scan.
        let net = Network::new(builders::grid(2, 3), NodeId::new(2), 2).unwrap();
        let i = inst(&net);
        let best = best_facility_set(&net, &i, 20).unwrap();
        let candidates = i.candidates();
        let mut exhaustive: Option<(f64, Vec<NodeId>)> = None;
        for mask in 0u64..(1 << candidates.len()) {
            let subset: Vec<NodeId> = candidates
                .iter()
                .enumerate()
                .filter(|&(bit, _)| mask & (1 << bit) != 0)
                .map(|(_, &c)| c)
                .collect();
            let (costs, _, _) = i.evaluate_set(&net, &subset).unwrap();
            if exhaustive.as_ref().is_none_or(|(t, _)| costs.total() < *t) {
                exhaustive = Some((costs.total(), subset));
            }
        }
        let (best_total, _) = exhaustive.unwrap();
        let (pruned_costs, _, _) = i.evaluate_set(&net, &best).unwrap();
        assert!((pruned_costs.total() - best_total).abs() < 1e-9);
    }

    #[test]
    fn exact_solvers_work_on_star_topologies() {
        // A star stresses the Steiner phase: every tree goes through
        // the hub.
        let net = Network::new(builders::star(6), NodeId::new(0), 2).unwrap();
        let i = inst(&net);
        let best = best_facility_set(&net, &i, 20).unwrap();
        let (costs, assignment, _) = i.evaluate_set(&net, &best).unwrap();
        assert!(costs.total().is_finite());
        assert_eq!(assignment.len(), 5);
    }

    #[test]
    fn milp_never_exceeds_brute_force() {
        let net = small_net();
        let i = inst(&net);
        let brtf = best_facility_set(&net, &i, 20).unwrap();
        let (brtf_costs, _, _) = i.evaluate_set(&net, &brtf).unwrap();
        let (_, milp_obj) = solve_chunk_milp(&net, &i).unwrap();
        assert!(milp_obj <= brtf_costs.total() + 1e-6);
        // And the KMB bound caps the gap at 2x on the tree term only.
        assert!(brtf_costs.total() <= 2.0 * milp_obj + 1e-6);
    }
}
