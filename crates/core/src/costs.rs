//! The paper's cost model: Fairness Degree Cost (Eq. 1) and Contention
//! Cost (Eq. 2).
//!
//! *Fairness Degree Cost* lives on [`crate::Network::fairness_cost`]
//! (it is a property of a node's storage state). This module owns the
//! *contention* side:
//!
//! * the **Node Contention Cost** `w_k` — the node's degree, since every
//!   neighbor pushes requests and chunk transfers through `k`;
//! * the per-node path term `w_k (1 + S(k))` — already-cached chunks
//!   inflate contention because each cached chunk is also transmitted to
//!   neighbors;
//! * the **Path Contention Cost** `c_ij = Σ_{k ∈ PATH(i,j)} w_k (1 + S(k))`
//!   along the shortest path, with `c_ii = 0` (serving yourself needs no
//!   transmission);
//! * the **edge cost** `c_e = c_ij` for adjacent `i`, `j`, used by the
//!   dissemination (Steiner) phase.

use peercache_graph::paths::{AllPairsPaths, Parallelism, PathSelection};
use peercache_graph::NodeId;

use crate::{CoreError, Network};

/// Absolute tolerance for comparing accumulated cost values.
///
/// Costs are sums of per-node contention terms and fairness ratios, all of
/// magnitude well below `1e12`, so an absolute epsilon is adequate; it
/// matches the `1e-12` payment slack used by the dual-ascent solver.
pub const COST_EPS: f64 = 1e-9;

/// Are two cost values equal up to [`COST_EPS`]?
///
/// This is the sanctioned way to compare f64 costs for *approximate*
/// equality (lint rule N1 forbids direct `==`/`!=` on cost values).
#[inline]
#[must_use]
pub fn approx_eq(a: f64, b: f64) -> bool {
    (a - b).abs() <= COST_EPS
}

/// Is a cost value zero up to [`COST_EPS`]?
#[inline]
#[must_use]
pub fn approx_zero(x: f64) -> bool {
    x.abs() <= COST_EPS
}

/// *Exact* equality of two cost values, by design.
///
/// The deterministic layers break ties on exact bitwise-equal costs (e.g.
/// client assignment prefers the lower node id only when connection costs
/// are *identical*); using an epsilon there would change which ties exist
/// and break the byte-identical replan guarantee. Routing those sites
/// through this helper documents the intent and keeps them auditable — the
/// N1 lint flags raw `==` but allows this named helper.
#[inline]
#[must_use]
pub fn cost_tie_eq(a: f64, b: f64) -> bool {
    a == b
}

/// Relative weights of the three objective terms of ILP (3).
///
/// The paper weighs fairness and contention equally and scales the
/// dissemination term by `M` (formulation (8)); all default to 1.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CostWeights {
    /// Weight of the storage Fairness Degree Cost term.
    pub fairness: f64,
    /// Weight of the battery Fairness Degree Cost term (footnote 1 of
    /// §III-B; 0 by default, i.e. storage-only fairness as in the
    /// paper's evaluation).
    pub battery_fairness: f64,
    /// Weight of the accessing-phase Contention Cost term.
    pub contention: f64,
    /// `M`, the scale of the dissemination (Steiner tree) term.
    pub dissemination: f64,
}

impl Default for CostWeights {
    fn default() -> Self {
        CostWeights {
            fairness: 1.0,
            battery_fairness: 0.0,
            contention: 1.0,
            dissemination: 1.0,
        }
    }
}

/// Per-node contention terms `w_k (1 + S(k))` for the current caching
/// state, indexed by node id.
///
/// # Example
///
/// ```
/// use peercache_core::{costs, ChunkId, Network};
/// use peercache_graph::{builders, NodeId};
///
/// let mut net = Network::new(builders::grid(3, 3), NodeId::new(4), 5)?;
/// let before = costs::node_contention_terms(&net);
/// assert_eq!(before[0], 2.0); // corner: degree 2, nothing cached
///
/// net.cache(NodeId::new(0), ChunkId::new(0))?;
/// let after = costs::node_contention_terms(&net);
/// assert_eq!(after[0], 4.0); // degree 2 * (1 + 1 cached chunk)
/// # Ok::<(), peercache_core::CoreError>(())
/// ```
pub fn node_contention_terms(net: &Network) -> Vec<f64> {
    let producer_load = net.distinct_cached_chunks();
    net.graph()
        .nodes()
        .map(|k| {
            let w = net.graph().degree(k) as f64;
            // The producer originates every published chunk and keeps
            // serving all of them, so it carries the full chunk
            // population in its term even though it caches nothing.
            let load = if k == net.producer() {
                producer_load
            } else {
                net.used(k)
            };
            w * (1.0 + load as f64)
        })
        .collect()
}

/// All-pairs Path Contention Costs for a caching state, plus the hop
/// distances the Hop-Count baseline needs.
///
/// A `ContentionMatrix` is a *snapshot* of one caching state. After the
/// state changes it can either be recomputed from scratch
/// ([`ContentionMatrix::compute`]) or refreshed in place with
/// [`ContentionMatrix::update`], which re-runs shortest paths only for
/// the sources whose routes pass *through* a node whose term changed —
/// the committed chunks of the iterative planners touch a handful of
/// nodes, so most rows survive untouched.
#[derive(Debug, Clone)]
pub struct ContentionMatrix {
    terms: Vec<f64>,
    paths: AllPairsPaths,
}

impl ContentionMatrix {
    /// Computes the matrix for the network's current caching state.
    ///
    /// `selection` controls whether packets follow the hop-shortest path
    /// (the paper's model) or the contention-cheapest path (ablation).
    ///
    /// # Errors
    ///
    /// Propagates [`CoreError::Graph`] on internal failures (cannot
    /// happen for a well-formed [`Network`]).
    pub fn compute(net: &Network, selection: PathSelection) -> Result<Self, CoreError> {
        ContentionMatrix::compute_with(net, selection, Parallelism::Sequential)
    }

    /// Computes the matrix with a configurable thread fan-out for the
    /// per-source shortest-path runs; byte-identical to
    /// [`ContentionMatrix::compute`] for every [`Parallelism`] choice.
    ///
    /// # Errors
    ///
    /// Propagates [`CoreError::Graph`] on internal failures (cannot
    /// happen for a well-formed [`Network`]).
    pub fn compute_with(
        net: &Network,
        selection: PathSelection,
        parallelism: Parallelism,
    ) -> Result<Self, CoreError> {
        let terms = node_contention_terms(net);
        let paths = AllPairsPaths::compute_with(net.graph(), &terms, selection, parallelism)?;
        Ok(ContentionMatrix { terms, paths })
    }

    /// Refreshes the matrix in place after the network's caching state
    /// changed, recomputing only the invalidated shortest-path sources.
    ///
    /// `dirty` is the caller's account of which nodes changed caching
    /// state since the snapshot (for the planners: the committed
    /// facilities plus the producer, whose term tracks the distinct
    /// chunk population). It is cross-checked in debug builds — the
    /// actual invalidation diffs the recomputed per-node terms, so a
    /// stale `dirty` set can never produce a wrong matrix.
    ///
    /// Returns the number of shortest-path sources recomputed. The
    /// result is byte-identical to a fresh
    /// [`ContentionMatrix::compute`] on the new state.
    ///
    /// # Errors
    ///
    /// Propagates [`CoreError::Graph`] on internal failures (cannot
    /// happen for a well-formed [`Network`]).
    pub fn update(
        &mut self,
        net: &Network,
        dirty: &[NodeId],
        parallelism: Parallelism,
    ) -> Result<usize, CoreError> {
        let terms = node_contention_terms(net);
        debug_assert!(
            terms
                .iter()
                .zip(&self.terms)
                .enumerate()
                .all(|(k, (new, old))| new == old || dirty.contains(&NodeId::new(k))),
            "a node outside the declared dirty set {dirty:?} changed its contention term"
        );
        let _ = dirty;
        let recomputed = self.paths.update(net.graph(), &terms, parallelism)?;
        self.terms = terms;
        Ok(recomputed)
    }

    /// Refreshes the matrix in place after a **topology** change —
    /// links or nodes added or removed — together with whatever node
    /// terms moved with it (a departure drops the degree term of every
    /// former neighbor, for instance).
    ///
    /// `removed_edges` / `added_edges` describe the net structural
    /// difference since the snapshot; `net` must already be in its
    /// post-churn state. Delegates to
    /// [`AllPairsPaths::update_topology`], whose per-row invalidation
    /// rules keep the recompute scoped to the sources the edit can
    /// actually affect.
    ///
    /// Returns the number of shortest-path sources recomputed. The
    /// result is byte-identical to a fresh
    /// [`ContentionMatrix::compute`] on the new state.
    ///
    /// # Errors
    ///
    /// Propagates [`CoreError::Graph`] if an edit mentions a node the
    /// graph does not know.
    pub fn update_topology(
        &mut self,
        net: &Network,
        removed_edges: &[(NodeId, NodeId)],
        added_edges: &[(NodeId, NodeId)],
        parallelism: Parallelism,
    ) -> Result<usize, CoreError> {
        let terms = node_contention_terms(net);
        let recomputed = self.paths.update_topology(
            net.graph(),
            &terms,
            removed_edges,
            added_edges,
            parallelism,
        )?;
        self.terms = terms;
        Ok(recomputed)
    }

    /// The Path Contention Cost `c_ij` (0 on the diagonal).
    ///
    /// # Panics
    ///
    /// Panics if either node is out of bounds.
    pub fn cost(&self, i: NodeId, j: NodeId) -> f64 {
        self.paths.cost(i, j)
    }

    /// Hop count of the routed path (the Hop-Count baseline's metric).
    ///
    /// # Panics
    ///
    /// Panics if either node is out of bounds.
    pub fn hops(&self, i: NodeId, j: NodeId) -> Option<u32> {
        self.paths.hops(i, j)
    }

    /// The routed path between two nodes, endpoints included.
    ///
    /// # Panics
    ///
    /// Panics if either node is out of bounds.
    pub fn path(&self, i: NodeId, j: NodeId) -> Option<Vec<NodeId>> {
        self.paths.path(i, j)
    }

    /// The contention term `w_k (1 + S(k))` of one node.
    ///
    /// # Panics
    ///
    /// Panics if `k` is out of bounds.
    pub fn node_term(&self, k: NodeId) -> f64 {
        self.terms[k.index()]
    }

    /// Edge cost `c_e` for an adjacent pair: the one-hop path cost,
    /// i.e. the two endpoint terms.
    ///
    /// # Panics
    ///
    /// Panics if either node is out of bounds.
    pub fn edge_cost(&self, u: NodeId, v: NodeId) -> f64 {
        self.terms[u.index()] + self.terms[v.index()]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ChunkId;
    use peercache_graph::builders;

    fn net() -> Network {
        Network::new(builders::grid(3, 3), NodeId::new(4), 5).unwrap()
    }

    #[test]
    fn node_terms_use_degree() {
        let net = net();
        let terms = node_contention_terms(&net);
        assert_eq!(terms[0], 2.0); // corner
        assert_eq!(terms[1], 3.0); // edge
        assert_eq!(terms[4], 4.0); // center
    }

    #[test]
    fn cached_chunks_inflate_terms() {
        let mut net = net();
        net.cache(NodeId::new(1), ChunkId::new(0)).unwrap();
        net.cache(NodeId::new(1), ChunkId::new(1)).unwrap();
        let terms = node_contention_terms(&net);
        assert_eq!(terms[1], 3.0 * 3.0); // degree 3 * (1 + 2)
    }

    #[test]
    fn diagonal_cost_is_zero() {
        let net = net();
        let m = ContentionMatrix::compute(&net, PathSelection::FewestHops).unwrap();
        for n in net.graph().nodes() {
            assert_eq!(m.cost(n, n), 0.0);
        }
    }

    #[test]
    fn adjacent_cost_sums_both_endpoints() {
        let net = net();
        let m = ContentionMatrix::compute(&net, PathSelection::FewestHops).unwrap();
        // corner 0 (w=2) and edge 1 (w=3), nothing cached.
        assert_eq!(m.cost(NodeId::new(0), NodeId::new(1)), 5.0);
        assert_eq!(m.edge_cost(NodeId::new(0), NodeId::new(1)), 5.0);
    }

    #[test]
    fn matrix_reflects_state_changes_after_recompute() {
        let mut net = net();
        let before = ContentionMatrix::compute(&net, PathSelection::FewestHops).unwrap();
        net.cache(NodeId::new(1), ChunkId::new(0)).unwrap();
        let after = ContentionMatrix::compute(&net, PathSelection::FewestHops).unwrap();
        assert!(
            after.cost(NodeId::new(0), NodeId::new(1))
                > before.cost(NodeId::new(0), NodeId::new(1))
        );
    }

    #[test]
    fn hops_are_available_for_the_hopc_baseline() {
        let net = net();
        let m = ContentionMatrix::compute(&net, PathSelection::FewestHops).unwrap();
        assert_eq!(m.hops(NodeId::new(0), NodeId::new(8)), Some(4));
    }

    #[test]
    fn default_weights_are_all_one() {
        let w = CostWeights::default();
        assert_eq!((w.fairness, w.contention, w.dissemination), (1.0, 1.0, 1.0));
    }

    fn assert_matrices_identical(a: &ContentionMatrix, b: &ContentionMatrix, net: &Network) {
        for u in net.graph().nodes() {
            assert_eq!(a.node_term(u).to_bits(), b.node_term(u).to_bits());
            for v in net.graph().nodes() {
                assert_eq!(a.cost(u, v).to_bits(), b.cost(u, v).to_bits(), "{u}->{v}");
                assert_eq!(a.hops(u, v), b.hops(u, v));
                assert_eq!(a.path(u, v), b.path(u, v));
            }
        }
    }

    #[test]
    fn update_after_commits_matches_fresh_compute() {
        let mut net = net();
        let mut m = ContentionMatrix::compute(&net, PathSelection::FewestHops).unwrap();
        for (chunk, node) in [(0usize, 1usize), (1, 7), (2, 1)] {
            net.cache(NodeId::new(node), ChunkId::new(chunk)).unwrap();
            let dirty = [NodeId::new(node), net.producer()];
            let redone = m.update(&net, &dirty, Parallelism::Sequential).unwrap();
            assert!(redone <= net.node_count());
            let fresh = ContentionMatrix::compute(&net, PathSelection::FewestHops).unwrap();
            assert_matrices_identical(&m, &fresh, &net);
        }
    }

    #[test]
    fn topology_update_after_departure_matches_fresh() {
        let mut net = net();
        net.cache(NodeId::new(1), ChunkId::new(0)).unwrap();
        let mut m = ContentionMatrix::compute(&net, PathSelection::FewestHops).unwrap();
        let dep = net.deactivate_node(NodeId::new(8)).unwrap();
        let removed: Vec<(NodeId, NodeId)> = dep
            .former_neighbors
            .iter()
            .map(|&v| (NodeId::new(8), v))
            .collect();
        let redone = m
            .update_topology(&net, &removed, &[], Parallelism::Sequential)
            .unwrap();
        assert!(redone <= net.node_count());
        let fresh = ContentionMatrix::compute(&net, PathSelection::FewestHops).unwrap();
        assert_matrices_identical(&m, &fresh, &net);
        assert!(m.cost(NodeId::new(0), NodeId::new(8)).is_infinite());
        // The ghost node contributes nothing to contention.
        assert_eq!(m.node_term(NodeId::new(8)), 0.0);
    }

    #[test]
    fn topology_update_after_link_churn_matches_fresh() {
        let mut net = net();
        let mut m = ContentionMatrix::compute(&net, PathSelection::FewestHops).unwrap();
        net.remove_link(NodeId::new(4), NodeId::new(5)).unwrap();
        m.update_topology(
            &net,
            &[(NodeId::new(4), NodeId::new(5))],
            &[],
            Parallelism::Sequential,
        )
        .unwrap();
        net.add_link(NodeId::new(0), NodeId::new(4)).unwrap();
        m.update_topology(
            &net,
            &[],
            &[(NodeId::new(0), NodeId::new(4))],
            Parallelism::Sequential,
        )
        .unwrap();
        let fresh = ContentionMatrix::compute(&net, PathSelection::FewestHops).unwrap();
        assert_matrices_identical(&m, &fresh, &net);
    }

    #[test]
    fn parallel_compute_matches_sequential() {
        let mut net = net();
        net.cache(NodeId::new(3), ChunkId::new(0)).unwrap();
        let seq = ContentionMatrix::compute(&net, PathSelection::FewestHops).unwrap();
        let par = ContentionMatrix::compute_with(
            &net,
            PathSelection::FewestHops,
            Parallelism::Threads(3),
        )
        .unwrap();
        assert_matrices_identical(&seq, &par, &net);
    }
}
