use std::collections::{BTreeMap, BTreeSet};
use std::fmt;

use peercache_graph::{components, Graph, NodeId};

use crate::CoreError;

/// Identifier of a data chunk.
///
/// The paper divides the shared data into `Q` equal-size chunks; chunk
/// ids are dense indices `0..Q`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct ChunkId(usize);

impl ChunkId {
    /// Creates a chunk id from a raw index.
    #[inline]
    pub const fn new(index: usize) -> Self {
        ChunkId(index)
    }

    /// Raw index of the chunk.
    #[inline]
    pub const fn index(self) -> usize {
        self.0
    }
}

impl From<usize> for ChunkId {
    fn from(index: usize) -> Self {
        ChunkId(index)
    }
}

impl fmt::Display for ChunkId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.0)
    }
}

/// The system model of §III-A: a connected wireless topology plus the
/// caching state of every node.
///
/// One designated **producer** originates all chunks; it never caches
/// (its storage is not part of the cost model). Every other node is both
/// a potential caching **facility** and a **client** that wants every
/// chunk. A node stores at most one copy of a given chunk and at most
/// `capacity` chunks in total.
///
/// # Example
///
/// ```
/// use peercache_core::{ChunkId, Network};
/// use peercache_graph::{builders, NodeId};
///
/// let mut net = Network::new(builders::grid(3, 3), NodeId::new(4), 2)?;
/// net.cache(NodeId::new(0), ChunkId::new(0))?;
/// assert_eq!(net.used(NodeId::new(0)), 1);
/// assert!(net.is_cached(NodeId::new(0), ChunkId::new(0)));
/// // Fairness Degree Cost: 1 used / (2 - 1) remaining = 1.0
/// assert_eq!(net.fairness_cost(NodeId::new(0)), 1.0);
/// # Ok::<(), peercache_core::CoreError>(())
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct Network {
    graph: Graph,
    producer: NodeId,
    capacity: Vec<usize>,
    cached: Vec<BTreeSet<ChunkId>>,
    /// Remaining battery fraction per node in `[0, 1]` (1 = full).
    battery: Vec<f64>,
    /// Per-chunk interest sets; chunks without an entry are wanted by
    /// every client (the paper's default assumption).
    interest: BTreeMap<ChunkId, BTreeSet<NodeId>>,
    /// Churn mask: departed peers stay in the graph as isolated ghost
    /// nodes (so every id-indexed table stays aligned) but are inactive —
    /// they are not clients, never facilities, and cache nothing.
    active: Vec<bool>,
    /// Whether mutators may split the active subgraph.
    policy: PartitionPolicy,
    /// Incremental component labels over the active subgraph: each active
    /// node carries the smallest node index of its connected component;
    /// inactive nodes carry [`NO_COMPONENT`]. Maintained by every
    /// topology mutator under both policies, so `strict-invariants` can
    /// cross-check it against a from-scratch BFS.
    comp: Vec<usize>,
}

/// How [`Network`] mutators respond to an edit that would split the
/// active subgraph.
///
/// The paper's cost model assumes a connected topology, so the historical
/// (and default) behavior is to [reject](PartitionPolicy::Reject) any
/// departure or link removal that would partition the active nodes. The
/// partition-tolerant world layer switches to
/// [`PartitionPolicy::Allow`], under which splits succeed and the
/// network's incremental component tracking records them instead.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum PartitionPolicy {
    /// Reject partitioning edits with [`CoreError::DisconnectedNetwork`].
    #[default]
    Reject,
    /// Allow partitioning edits; component tracking records the split.
    Allow,
}

/// Component label of inactive (departed) nodes. Active nodes are
/// labelled with the smallest node index of their component, which is
/// always `< node_count() < usize::MAX`.
const NO_COMPONENT: usize = usize::MAX;

/// What a node departure left behind, returned by
/// [`Network::deactivate_node`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Departure {
    /// Chunks whose copy on the departed node was lost.
    pub lost_chunks: Vec<ChunkId>,
    /// The departed node's former neighbors, ascending; the removed
    /// edges are `(node, neighbor)` for each entry.
    pub former_neighbors: Vec<NodeId>,
}

impl Network {
    /// Creates a network with the same caching capacity on every node.
    ///
    /// # Errors
    ///
    /// * [`CoreError::Graph`] if `producer` is not a node of `graph`.
    /// * [`CoreError::DisconnectedNetwork`] if `graph` is disconnected.
    pub fn new(graph: Graph, producer: NodeId, capacity: usize) -> Result<Self, CoreError> {
        let capacities = vec![capacity; graph.node_count()];
        Network::with_capacities(graph, producer, capacities)
    }

    /// Creates a network with per-node caching capacities.
    ///
    /// The producer's capacity entry is ignored (it never caches).
    ///
    /// # Errors
    ///
    /// * [`CoreError::Graph`] if `producer` is out of bounds or
    ///   `capacities` is shorter than the node count.
    /// * [`CoreError::DisconnectedNetwork`] if `graph` is disconnected.
    pub fn with_capacities(
        graph: Graph,
        producer: NodeId,
        capacities: Vec<usize>,
    ) -> Result<Self, CoreError> {
        if !graph.contains_node(producer) {
            return Err(CoreError::Graph(
                peercache_graph::GraphError::NodeOutOfBounds {
                    node: producer,
                    node_count: graph.node_count(),
                },
            ));
        }
        if capacities.len() != graph.node_count() {
            return Err(CoreError::Graph(
                peercache_graph::GraphError::NodeOutOfBounds {
                    node: NodeId::new(capacities.len()),
                    node_count: graph.node_count(),
                },
            ));
        }
        if !components::is_connected(&graph) {
            return Err(CoreError::DisconnectedNetwork);
        }
        let n = graph.node_count();
        Ok(Network {
            graph,
            producer,
            capacity: capacities,
            cached: vec![BTreeSet::new(); n],
            battery: vec![1.0; n],
            interest: BTreeMap::new(),
            active: vec![true; n],
            policy: PartitionPolicy::default(),
            // Connected at birth: one component labelled by node 0.
            comp: vec![0; n],
        })
    }

    /// The underlying topology.
    pub fn graph(&self) -> &Graph {
        &self.graph
    }

    /// The producer node.
    pub fn producer(&self) -> NodeId {
        self.producer
    }

    /// Number of nodes, producer included.
    pub fn node_count(&self) -> usize {
        self.graph.node_count()
    }

    /// Iterates over the client nodes: every *active* node except the
    /// producer. Departed peers are not clients.
    pub fn clients(&self) -> impl Iterator<Item = NodeId> + '_ {
        let producer = self.producer;
        self.graph
            .nodes()
            .filter(move |&n| n != producer && self.active[n.index()])
    }

    /// Returns `true` if `node` is currently part of the network (has
    /// not departed).
    ///
    /// # Panics
    ///
    /// Panics if `node` is out of bounds.
    pub fn is_active(&self, node: NodeId) -> bool {
        self.active[node.index()]
    }

    /// The active nodes, producer included, ascending.
    pub fn active_nodes(&self) -> Vec<NodeId> {
        self.graph
            .nodes()
            .filter(|&n| self.active[n.index()])
            .collect()
    }

    /// The current [`PartitionPolicy`].
    pub fn partition_policy(&self) -> PartitionPolicy {
        self.policy
    }

    /// Sets how future mutators respond to partitioning edits.
    ///
    /// Switching policies never changes current state: component labels
    /// are maintained under both.
    pub fn set_partition_policy(&mut self, policy: PartitionPolicy) {
        self.policy = policy;
    }

    /// Component label of `node`: the smallest node index of its
    /// connected component. `None` for inactive or out-of-bounds nodes.
    pub fn component_of(&self, node: NodeId) -> Option<usize> {
        match self.comp.get(node.index()) {
            Some(&c) if c != NO_COMPONENT => Some(c),
            _ => None,
        }
    }

    /// Returns `true` if `a` and `b` are both active and mutually
    /// reachable through active nodes.
    pub fn same_component(&self, a: NodeId, b: NodeId) -> bool {
        match (self.component_of(a), self.component_of(b)) {
            (Some(x), Some(y)) => x == y,
            _ => false,
        }
    }

    /// Returns `true` if `node` is active and can reach the producer
    /// through active nodes.
    pub fn in_producer_component(&self, node: NodeId) -> bool {
        self.same_component(node, self.producer)
    }

    /// Number of connected components of the active subgraph.
    pub fn component_count(&self) -> usize {
        let mut labels: Vec<usize> = self
            .comp
            .iter()
            .copied()
            .filter(|&c| c != NO_COMPONENT)
            .collect();
        labels.sort_unstable();
        labels.dedup();
        labels.len()
    }

    /// The connected components of the active subgraph, each sorted
    /// ascending, ordered by smallest member id — the same shape as
    /// [`peercache_graph::components::components_of_subset`].
    pub fn active_components(&self) -> Vec<Vec<NodeId>> {
        let mut by_label: BTreeMap<usize, Vec<NodeId>> = BTreeMap::new();
        for (i, &c) in self.comp.iter().enumerate() {
            if c != NO_COMPONENT {
                by_label.entry(c).or_default().push(NodeId::new(i));
            }
        }
        by_label.into_values().collect()
    }

    /// Rewrites every occurrence of component label `from` to `to`.
    fn relabel_component(&mut self, from: usize, to: usize) {
        if from == to {
            return;
        }
        for c in &mut self.comp {
            if *c == from {
                *c = to;
            }
        }
    }

    /// Members currently carrying component label `id`, ascending.
    fn component_members(&self, id: usize) -> Vec<NodeId> {
        self.comp
            .iter()
            .enumerate()
            .filter(|&(_, &c)| c == id)
            .map(|(i, _)| NodeId::new(i))
            .collect()
    }

    /// Re-derives component labels over `members`, which must be the
    /// full membership of one former component (ascending). A scoped BFS
    /// suffices: any active neighbor of a member was reachable before
    /// the edit, hence also a member.
    fn split_components(&mut self, members: &[NodeId]) {
        for &n in members {
            self.comp[n.index()] = NO_COMPONENT;
        }
        let mut stack = Vec::new();
        for &start in members {
            if self.comp[start.index()] != NO_COMPONENT {
                continue;
            }
            // `members` is ascending, so the first unvisited member is
            // the smallest index of its sub-component — the new label.
            let label = start.index();
            self.comp[start.index()] = label;
            stack.push(start);
            while let Some(u) = stack.pop() {
                for v in self.graph.neighbors(u) {
                    if self.active[v.index()] && self.comp[v.index()] == NO_COMPONENT {
                        self.comp[v.index()] = label;
                        stack.push(v);
                    }
                }
            }
        }
    }

    /// Total caching capacity of `node` in chunks (`S_tot(i)`).
    ///
    /// # Panics
    ///
    /// Panics if `node` is out of bounds.
    pub fn capacity(&self, node: NodeId) -> usize {
        self.capacity[node.index()]
    }

    /// Chunks currently cached on `node` (`S(i)`).
    ///
    /// # Panics
    ///
    /// Panics if `node` is out of bounds.
    pub fn used(&self, node: NodeId) -> usize {
        self.cached[node.index()].len()
    }

    /// Free chunk slots remaining on `node`.
    ///
    /// # Panics
    ///
    /// Panics if `node` is out of bounds.
    pub fn remaining(&self, node: NodeId) -> usize {
        self.capacity(node).saturating_sub(self.used(node))
    }

    /// The set of chunks cached on `node`.
    ///
    /// # Panics
    ///
    /// Panics if `node` is out of bounds.
    pub fn cached_chunks(&self, node: NodeId) -> &BTreeSet<ChunkId> {
        &self.cached[node.index()]
    }

    /// Returns `true` if `node` holds a copy of `chunk` in its cache.
    ///
    /// The producer is *not* reported here even though it can always
    /// serve every chunk; use [`Network::can_serve`] for serving checks.
    ///
    /// # Panics
    ///
    /// Panics if `node` is out of bounds.
    pub fn is_cached(&self, node: NodeId, chunk: ChunkId) -> bool {
        self.cached[node.index()].contains(&chunk)
    }

    /// Returns `true` if `node` can serve `chunk` — it either caches it
    /// or is the producer.
    ///
    /// # Panics
    ///
    /// Panics if `node` is out of bounds.
    pub fn can_serve(&self, node: NodeId, chunk: ChunkId) -> bool {
        node == self.producer || self.is_cached(node, chunk)
    }

    /// Nodes caching `chunk`, sorted (producer excluded).
    pub fn holders(&self, chunk: ChunkId) -> Vec<NodeId> {
        self.graph
            .nodes()
            .filter(|&n| self.is_cached(n, chunk))
            .collect()
    }

    /// Number of cached copies of `chunk` (producer excluded): the
    /// replication degree the chunk currently enjoys.
    pub fn replica_count(&self, chunk: ChunkId) -> usize {
        self.graph
            .nodes()
            .filter(|&n| self.is_cached(n, chunk))
            .count()
    }

    /// Caches `chunk` on `node`, consuming one storage slot.
    ///
    /// # Errors
    ///
    /// * [`CoreError::ProducerCannotCache`] for the producer.
    /// * [`CoreError::StorageFull`] when the node is at capacity.
    /// * [`CoreError::AlreadyCached`] for duplicate copies.
    /// * [`CoreError::InvalidParameter`] for a departed node.
    pub fn cache(&mut self, node: NodeId, chunk: ChunkId) -> Result<(), CoreError> {
        if node == self.producer {
            return Err(CoreError::ProducerCannotCache {
                producer: self.producer,
            });
        }
        if !self.active[node.index()] {
            return Err(CoreError::InvalidParameter(format!(
                "node {node} has departed and cannot cache"
            )));
        }
        if self.used(node) >= self.capacity(node) {
            return Err(CoreError::StorageFull {
                node,
                capacity: self.capacity(node),
            });
        }
        if !self.cached[node.index()].insert(chunk) {
            return Err(CoreError::AlreadyCached { node, chunk });
        }
        Ok(())
    }

    /// Evicts `chunk` from `node`; returns whether a copy was present.
    ///
    /// Cache replacement is future work in the paper, but eviction is
    /// needed by the online-arrival extension.
    ///
    /// # Panics
    ///
    /// Panics if `node` is out of bounds.
    pub fn uncache(&mut self, node: NodeId, chunk: ChunkId) -> bool {
        self.cached[node.index()].remove(&chunk)
    }

    /// The Fairness Degree Cost of Eq. 1: `S(i) / (S_tot(i) - S(i))`.
    ///
    /// Returns `0.0` for an empty cache, `f64::INFINITY` when storage is
    /// exhausted (or has zero capacity), and `f64::INFINITY` for the
    /// producer, which may never be selected as a caching facility.
    ///
    /// # Panics
    ///
    /// Panics if `node` is out of bounds.
    pub fn fairness_cost(&self, node: NodeId) -> f64 {
        if node == self.producer || !self.active[node.index()] {
            return f64::INFINITY;
        }
        // Compare the integer count, not its f64 cast (lint rule N1).
        let remaining = self.remaining(node);
        if remaining == 0 {
            f64::INFINITY
        } else {
            self.used(node) as f64 / remaining as f64
        }
    }

    /// Number of chunks cached per node, indexed by node id.
    pub fn load_vector(&self) -> Vec<usize> {
        self.cached.iter().map(BTreeSet::len).collect()
    }

    /// Remaining battery fraction of `node` (1.0 unless set).
    ///
    /// # Panics
    ///
    /// Panics if `node` is out of bounds.
    pub fn battery(&self, node: NodeId) -> f64 {
        self.battery[node.index()]
    }

    /// Sets the remaining battery fraction of `node`.
    ///
    /// Footnote 1 of §III-B: battery is the second resource users care
    /// about; a Fairness Degree Cost on it is "defined similarly and
    /// considered together in weighted summation" — see
    /// [`Network::battery_fairness_cost`] and
    /// [`crate::costs::CostWeights::battery_fairness`].
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::InvalidParameter`] unless `fraction` is in
    /// `[0, 1]`.
    pub fn set_battery(&mut self, node: NodeId, fraction: f64) -> Result<(), CoreError> {
        if !(0.0..=1.0).contains(&fraction) {
            return Err(CoreError::InvalidParameter(format!(
                "battery fraction must be in [0, 1], got {fraction}"
            )));
        }
        self.battery[node.index()] = fraction;
        Ok(())
    }

    /// Drains `amount` battery from `node`, saturating at empty.
    ///
    /// # Panics
    ///
    /// Panics if `node` is out of bounds.
    pub fn drain_battery(&mut self, node: NodeId, amount: f64) {
        let b = &mut self.battery[node.index()];
        *b = (*b - amount.max(0.0)).max(0.0);
    }

    /// The battery analog of Eq. 1: consumed over remaining,
    /// `(1 - b) / b` for battery fraction `b`.
    ///
    /// Returns `0.0` for a full battery, `f64::INFINITY` for an empty
    /// one, and `f64::INFINITY` for the producer (never a facility).
    ///
    /// # Panics
    ///
    /// Panics if `node` is out of bounds.
    pub fn battery_fairness_cost(&self, node: NodeId) -> f64 {
        if node == self.producer || !self.active[node.index()] {
            return f64::INFINITY;
        }
        let b = self.battery[node.index()];
        if b <= 0.0 {
            f64::INFINITY
        } else {
            (1.0 - b) / b
        }
    }

    /// Restricts `chunk` to the given interested clients.
    ///
    /// §III-A assumes "every node wants to acquire all the cached
    /// data"; real sharing apps have per-item audiences (only some
    /// attendees care about a given video clip). A restricted chunk is
    /// planned, assigned, and costed for its audience only. An empty
    /// iterator removes the chunk's audience entirely (it will be
    /// placed with zero access demand).
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::Graph`] for out-of-range nodes and
    /// [`CoreError::InvalidParameter`] if the producer is listed (it
    /// already has everything).
    pub fn set_interest(
        &mut self,
        chunk: ChunkId,
        clients: impl IntoIterator<Item = NodeId>,
    ) -> Result<(), CoreError> {
        let mut set = BTreeSet::new();
        for n in clients {
            if !self.graph.contains_node(n) {
                return Err(CoreError::Graph(
                    peercache_graph::GraphError::NodeOutOfBounds {
                        node: n,
                        node_count: self.node_count(),
                    },
                ));
            }
            if n == self.producer {
                return Err(CoreError::InvalidParameter(format!(
                    "producer {n} cannot be an interested client"
                )));
            }
            set.insert(n);
        }
        self.interest.insert(chunk, set);
        Ok(())
    }

    /// Clears any interest restriction on `chunk` (back to "everyone").
    pub fn clear_interest(&mut self, chunk: ChunkId) {
        self.interest.remove(&chunk);
    }

    /// The clients that want `chunk`, sorted — all clients unless a
    /// restriction was set with [`Network::set_interest`]. Departed
    /// nodes are never interested (their restriction entries are kept in
    /// case they rejoin, but filtered here).
    pub fn interested_clients(&self, chunk: ChunkId) -> Vec<NodeId> {
        match self.interest.get(&chunk) {
            Some(set) => set
                .iter()
                .copied()
                .filter(|&n| self.active[n.index()])
                .collect(),
            None => self.clients().collect(),
        }
    }

    /// Returns `true` if `node` wants `chunk`.
    ///
    /// # Panics
    ///
    /// Panics if `node` is out of bounds.
    pub fn is_interested(&self, node: NodeId, chunk: ChunkId) -> bool {
        if node == self.producer || !self.active[node.index()] {
            return false;
        }
        match self.interest.get(&chunk) {
            Some(set) => set.contains(&node),
            None => true,
        }
    }

    /// Number of distinct chunks present anywhere in the network.
    ///
    /// This doubles as the producer's effective load in the contention
    /// model: the producer originates every published chunk and keeps
    /// transmitting each of them to its neighbors, so its node term
    /// inflates with the number of chunks in circulation even though it
    /// "caches" nothing.
    pub fn distinct_cached_chunks(&self) -> usize {
        let mut all = BTreeSet::new();
        for set in &self.cached {
            all.extend(set.iter().copied());
        }
        all.len()
    }

    /// Total free chunk slots across all non-producer nodes.
    pub fn total_free_slots(&self) -> usize {
        self.clients().map(|n| self.remaining(n)).sum()
    }

    /// Returns `true` if the *active* nodes are mutually connected.
    ///
    /// The constructor guarantees this at birth; under the default
    /// [`PartitionPolicy::Reject`] every churn mutator preserves it by
    /// rejecting edits that would partition the active subgraph. Under
    /// [`PartitionPolicy::Allow`] it may return `false`; consult
    /// [`Network::active_components`] for the pieces. Deliberately
    /// answered by a from-scratch BFS, independent of the incremental
    /// component labels.
    pub fn active_connected(&self) -> bool {
        components::is_connected_subset(&self.graph, &self.active_nodes())
    }

    /// Removes `node` from the network: drops its incident links, clears
    /// its cache, and marks it inactive. The node stays in the graph as
    /// an isolated ghost so all id-indexed state keeps its alignment.
    ///
    /// Returns the lost chunk copies and former neighbors — exactly what
    /// the repair layer needs to find orphaned placements and to feed
    /// the incremental path update.
    ///
    /// # Errors
    ///
    /// * [`CoreError::InvalidParameter`] if `node` is the producer (the
    ///   chunk origin cannot depart) or already departed.
    /// * [`CoreError::DisconnectedNetwork`] under
    ///   [`PartitionPolicy::Reject`] if the departure would partition the
    ///   remaining active nodes; the network is unchanged. Under
    ///   [`PartitionPolicy::Allow`] the departure succeeds and component
    ///   tracking records the split.
    pub fn deactivate_node(&mut self, node: NodeId) -> Result<Departure, CoreError> {
        if node == self.producer {
            return Err(CoreError::InvalidParameter(format!(
                "producer {node} cannot depart"
            )));
        }
        if !self.graph.contains_node(node) || !self.active[node.index()] {
            return Err(CoreError::InvalidParameter(format!(
                "node {node} is not an active member of the network"
            )));
        }
        if self.policy == PartitionPolicy::Reject {
            let survivors: Vec<NodeId> = self
                .active_nodes()
                .into_iter()
                .filter(|&n| n != node)
                .collect();
            if !components::is_connected_subset(&self.graph, &survivors) {
                return Err(CoreError::DisconnectedNetwork);
            }
        }
        let old_label = self.comp[node.index()];
        let former_neighbors = self.graph.remove_node(node).map_err(CoreError::Graph)?;
        let lost_chunks: Vec<ChunkId> = std::mem::take(&mut self.cached[node.index()])
            .into_iter()
            .collect();
        self.active[node.index()] = false;
        self.comp[node.index()] = NO_COMPONENT;
        // The victim's former component may have split (and loses its
        // label if the victim carried the smallest index): re-derive it.
        let members = self.component_members(old_label);
        self.split_components(&members);
        Ok(Departure {
            lost_chunks,
            former_neighbors,
        })
    }

    /// Adds a brand-new node with the given links and capacity, and
    /// returns its id.
    ///
    /// The node arrives with an empty cache and a full battery.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::InvalidParameter`] if `neighbors` is empty
    /// (the newcomer would be unreachable) or lists an inactive or
    /// unknown node; the network is unchanged on error.
    pub fn join_node(
        &mut self,
        neighbors: &[NodeId],
        capacity: usize,
    ) -> Result<NodeId, CoreError> {
        if neighbors.is_empty() {
            return Err(CoreError::InvalidParameter(
                "a joining node needs at least one link".into(),
            ));
        }
        for &v in neighbors {
            if !self.graph.contains_node(v) || !self.active[v.index()] {
                return Err(CoreError::InvalidParameter(format!(
                    "cannot link joining node to inactive or unknown node {v}"
                )));
            }
        }
        let node = self.graph.add_node();
        for &v in neighbors {
            self.graph.add_edge(node, v).map_err(CoreError::Graph)?;
        }
        self.capacity.push(capacity);
        self.cached.push(BTreeSet::new());
        self.battery.push(1.0);
        self.active.push(true);
        // The newcomer bridges its neighbors' components: merge them all
        // onto the smallest label (neighbors are non-empty and active).
        let mut target = NO_COMPONENT;
        for &v in neighbors {
            target = target.min(self.comp[v.index()]);
        }
        for &v in neighbors {
            let label = self.comp[v.index()];
            self.relabel_component(label, target);
        }
        self.comp.push(target);
        Ok(node)
    }

    /// Adds the link `(u, v)` between two active nodes; returns whether
    /// the link is new.
    ///
    /// # Errors
    ///
    /// * [`CoreError::InvalidParameter`] if either endpoint is inactive.
    /// * [`CoreError::Graph`] for unknown endpoints or a self-loop.
    pub fn add_link(&mut self, u: NodeId, v: NodeId) -> Result<bool, CoreError> {
        for e in [u, v] {
            if self.graph.contains_node(e) && !self.active[e.index()] {
                return Err(CoreError::InvalidParameter(format!(
                    "cannot link departed node {e}"
                )));
            }
        }
        if self.graph.contains_edge(u, v) {
            return Ok(false);
        }
        self.graph.add_edge(u, v).map_err(CoreError::Graph)?;
        // A new link may heal a partition: merge onto the smaller label.
        let (cu, cv) = (self.comp[u.index()], self.comp[v.index()]);
        self.relabel_component(cu.max(cv), cu.min(cv));
        Ok(true)
    }

    /// Removes the link `(u, v)`; returns whether a link was removed.
    ///
    /// # Errors
    ///
    /// * [`CoreError::Graph`] for unknown endpoints.
    /// * [`CoreError::DisconnectedNetwork`] under
    ///   [`PartitionPolicy::Reject`] if the removal would partition the
    ///   active nodes; the network is unchanged. Under
    ///   [`PartitionPolicy::Allow`] the removal succeeds and component
    ///   tracking records the split.
    pub fn remove_link(&mut self, u: NodeId, v: NodeId) -> Result<bool, CoreError> {
        if !self.graph.contains_edge(u, v) {
            // Bounds-check through the graph for a consistent error.
            self.graph.remove_edge(u, v).map_err(CoreError::Graph)?;
            return Ok(false);
        }
        self.graph.remove_edge(u, v).map_err(CoreError::Graph)?;
        if self.policy == PartitionPolicy::Reject {
            if !self.active_connected() {
                self.graph.add_edge(u, v).map_err(CoreError::Graph)?;
                return Err(CoreError::DisconnectedNetwork);
            }
            // Still connected: component labels are unchanged.
            return Ok(true);
        }
        // An edge exists only between active nodes (ghosts are isolated),
        // so both endpoints share a component; it may now have split.
        let members = self.component_members(self.comp[u.index()]);
        self.split_components(&members);
        Ok(true)
    }

    /// Clears all cached chunks, keeping topology and capacities.
    pub fn reset(&mut self) {
        for set in &mut self.cached {
            set.clear();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use peercache_graph::builders;

    fn net3x3() -> Network {
        Network::new(builders::grid(3, 3), NodeId::new(4), 2).unwrap()
    }

    #[test]
    fn constructor_rejects_bad_producer() {
        let err = Network::new(builders::grid(2, 2), NodeId::new(10), 1).unwrap_err();
        assert!(matches!(err, CoreError::Graph(_)));
    }

    #[test]
    fn constructor_rejects_disconnected_graph() {
        let g = Graph::new(3);
        let err = Network::new(g, NodeId::new(0), 1).unwrap_err();
        assert_eq!(err, CoreError::DisconnectedNetwork);
    }

    #[test]
    fn constructor_rejects_wrong_capacity_len() {
        let err =
            Network::with_capacities(builders::grid(2, 2), NodeId::new(0), vec![1, 1]).unwrap_err();
        assert!(matches!(err, CoreError::Graph(_)));
    }

    #[test]
    fn clients_exclude_producer() {
        let net = net3x3();
        let clients: Vec<NodeId> = net.clients().collect();
        assert_eq!(clients.len(), 8);
        assert!(!clients.contains(&NodeId::new(4)));
    }

    #[test]
    fn cache_updates_usage_and_fairness() {
        let mut net = net3x3();
        let n = NodeId::new(0);
        assert_eq!(net.fairness_cost(n), 0.0);
        net.cache(n, ChunkId::new(0)).unwrap();
        assert_eq!(net.used(n), 1);
        assert_eq!(net.remaining(n), 1);
        assert_eq!(net.fairness_cost(n), 1.0);
        net.cache(n, ChunkId::new(1)).unwrap();
        assert!(net.fairness_cost(n).is_infinite());
    }

    #[test]
    fn producer_cannot_cache_and_has_infinite_fairness() {
        let mut net = net3x3();
        let err = net.cache(NodeId::new(4), ChunkId::new(0)).unwrap_err();
        assert!(matches!(err, CoreError::ProducerCannotCache { .. }));
        assert!(net.fairness_cost(NodeId::new(4)).is_infinite());
    }

    #[test]
    fn storage_full_rejected() {
        let mut net = net3x3();
        let n = NodeId::new(1);
        net.cache(n, ChunkId::new(0)).unwrap();
        net.cache(n, ChunkId::new(1)).unwrap();
        let err = net.cache(n, ChunkId::new(2)).unwrap_err();
        assert!(matches!(err, CoreError::StorageFull { .. }));
    }

    #[test]
    fn duplicate_copy_rejected() {
        let mut net = net3x3();
        let n = NodeId::new(1);
        net.cache(n, ChunkId::new(0)).unwrap();
        let err = net.cache(n, ChunkId::new(0)).unwrap_err();
        assert!(matches!(err, CoreError::AlreadyCached { .. }));
    }

    #[test]
    fn holders_and_can_serve() {
        let mut net = net3x3();
        net.cache(NodeId::new(0), ChunkId::new(7)).unwrap();
        net.cache(NodeId::new(8), ChunkId::new(7)).unwrap();
        assert_eq!(
            net.holders(ChunkId::new(7)),
            vec![NodeId::new(0), NodeId::new(8)]
        );
        assert!(net.can_serve(NodeId::new(0), ChunkId::new(7)));
        assert!(net.can_serve(NodeId::new(4), ChunkId::new(7))); // producer
        assert!(!net.can_serve(NodeId::new(1), ChunkId::new(7)));
    }

    #[test]
    fn uncache_frees_a_slot() {
        let mut net = net3x3();
        let n = NodeId::new(2);
        net.cache(n, ChunkId::new(0)).unwrap();
        assert!(net.uncache(n, ChunkId::new(0)));
        assert!(!net.uncache(n, ChunkId::new(0)));
        assert_eq!(net.used(n), 0);
    }

    #[test]
    fn reset_clears_state() {
        let mut net = net3x3();
        net.cache(NodeId::new(0), ChunkId::new(0)).unwrap();
        net.reset();
        assert_eq!(net.load_vector(), vec![0; 9]);
        assert_eq!(net.total_free_slots(), 16);
    }

    #[test]
    fn interest_defaults_to_everyone() {
        let net = net3x3();
        let audience = net.interested_clients(ChunkId::new(0));
        assert_eq!(audience.len(), 8);
        assert!(net.is_interested(NodeId::new(0), ChunkId::new(0)));
        assert!(!net.is_interested(net.producer(), ChunkId::new(0)));
    }

    #[test]
    fn interest_restriction_and_clearing() {
        let mut net = net3x3();
        net.set_interest(ChunkId::new(1), [NodeId::new(0), NodeId::new(8)])
            .unwrap();
        assert_eq!(
            net.interested_clients(ChunkId::new(1)),
            vec![NodeId::new(0), NodeId::new(8)]
        );
        assert!(!net.is_interested(NodeId::new(1), ChunkId::new(1)));
        // Other chunks are untouched.
        assert!(net.is_interested(NodeId::new(1), ChunkId::new(0)));
        net.clear_interest(ChunkId::new(1));
        assert_eq!(net.interested_clients(ChunkId::new(1)).len(), 8);
    }

    #[test]
    fn interest_rejects_producer_and_unknown_nodes() {
        let mut net = net3x3();
        assert!(matches!(
            net.set_interest(ChunkId::new(0), [net.producer()]),
            Err(CoreError::InvalidParameter(_))
        ));
        assert!(matches!(
            net.set_interest(ChunkId::new(0), [NodeId::new(99)]),
            Err(CoreError::Graph(_))
        ));
    }

    #[test]
    fn empty_interest_set_is_allowed() {
        let mut net = net3x3();
        net.set_interest(ChunkId::new(0), []).unwrap();
        assert!(net.interested_clients(ChunkId::new(0)).is_empty());
    }

    #[test]
    fn battery_defaults_full_and_validates_range() {
        let mut net = net3x3();
        assert_eq!(net.battery(NodeId::new(0)), 1.0);
        assert_eq!(net.battery_fairness_cost(NodeId::new(0)), 0.0);
        assert!(net.set_battery(NodeId::new(0), 1.5).is_err());
        assert!(net.set_battery(NodeId::new(0), -0.1).is_err());
        net.set_battery(NodeId::new(0), 0.5).unwrap();
        assert_eq!(net.battery_fairness_cost(NodeId::new(0)), 1.0);
    }

    #[test]
    fn battery_fairness_is_infinite_when_empty_or_producer() {
        let mut net = net3x3();
        net.set_battery(NodeId::new(1), 0.0).unwrap();
        assert!(net.battery_fairness_cost(NodeId::new(1)).is_infinite());
        assert!(net.battery_fairness_cost(net.producer()).is_infinite());
    }

    #[test]
    fn drain_battery_saturates_at_zero() {
        let mut net = net3x3();
        net.drain_battery(NodeId::new(2), 0.7);
        assert!((net.battery(NodeId::new(2)) - 0.3).abs() < 1e-12);
        net.drain_battery(NodeId::new(2), 5.0);
        assert_eq!(net.battery(NodeId::new(2)), 0.0);
        // Negative amounts are clamped: draining never charges.
        net.drain_battery(NodeId::new(2), -1.0);
        assert_eq!(net.battery(NodeId::new(2)), 0.0);
    }

    #[test]
    fn deactivate_node_clears_cache_and_links() {
        let mut net = net3x3();
        net.cache(NodeId::new(0), ChunkId::new(3)).unwrap();
        let dep = net.deactivate_node(NodeId::new(0)).unwrap();
        assert_eq!(dep.lost_chunks, vec![ChunkId::new(3)]);
        assert_eq!(dep.former_neighbors, vec![NodeId::new(1), NodeId::new(3)]);
        assert!(!net.is_active(NodeId::new(0)));
        assert_eq!(net.graph().degree(NodeId::new(0)), 0);
        assert_eq!(net.used(NodeId::new(0)), 0);
        assert!(net.fairness_cost(NodeId::new(0)).is_infinite());
        assert!(!net.is_interested(NodeId::new(0), ChunkId::new(3)));
        assert_eq!(net.clients().count(), 7);
        assert!(net.active_connected());
        // A departed node can neither cache nor depart again.
        assert!(net.cache(NodeId::new(0), ChunkId::new(3)).is_err());
        assert!(net.deactivate_node(NodeId::new(0)).is_err());
    }

    #[test]
    fn producer_cannot_depart() {
        let mut net = net3x3();
        assert!(matches!(
            net.deactivate_node(net.producer()),
            Err(CoreError::InvalidParameter(_))
        ));
    }

    #[test]
    fn departure_that_partitions_is_rejected() {
        // Path 0-1-2: removing the middle node strands 0 from 2.
        let mut net = Network::new(builders::path(3), NodeId::new(0), 1).unwrap();
        let err = net.deactivate_node(NodeId::new(1)).unwrap_err();
        assert_eq!(err, CoreError::DisconnectedNetwork);
        assert!(net.is_active(NodeId::new(1)));
        assert_eq!(net.graph().degree(NodeId::new(1)), 2);
    }

    #[test]
    fn allow_policy_lets_departures_split_the_network() {
        // Path 0-1-2: removing the middle node strands 0 from 2.
        let mut net = Network::new(builders::path(3), NodeId::new(0), 1).unwrap();
        net.set_partition_policy(PartitionPolicy::Allow);
        net.deactivate_node(NodeId::new(1)).unwrap();
        assert!(!net.active_connected());
        assert_eq!(net.component_count(), 2);
        assert_eq!(net.component_of(NodeId::new(0)), Some(0));
        assert_eq!(net.component_of(NodeId::new(1)), None);
        assert_eq!(net.component_of(NodeId::new(2)), Some(2));
        assert!(!net.same_component(NodeId::new(0), NodeId::new(2)));
        assert!(net.in_producer_component(NodeId::new(0)));
        assert!(!net.in_producer_component(NodeId::new(2)));
    }

    #[test]
    fn allow_policy_lets_link_removal_split_and_add_link_heal() {
        // Path 0-1-2-3, producer 0.
        let mut net = Network::new(builders::path(4), NodeId::new(0), 1).unwrap();
        net.set_partition_policy(PartitionPolicy::Allow);
        assert!(net.remove_link(NodeId::new(1), NodeId::new(2)).unwrap());
        assert_eq!(net.component_count(), 2);
        assert_eq!(
            net.active_components(),
            vec![
                vec![NodeId::new(0), NodeId::new(1)],
                vec![NodeId::new(2), NodeId::new(3)],
            ]
        );
        // Heal through a different edge; the labels merge onto 0.
        assert!(net.add_link(NodeId::new(0), NodeId::new(3)).unwrap());
        assert_eq!(net.component_count(), 1);
        assert!(net.same_component(NodeId::new(1), NodeId::new(2)));
    }

    #[test]
    fn joining_node_bridges_components() {
        let mut net = Network::new(builders::path(3), NodeId::new(0), 1).unwrap();
        net.set_partition_policy(PartitionPolicy::Allow);
        net.remove_link(NodeId::new(1), NodeId::new(2)).unwrap();
        assert_eq!(net.component_count(), 2);
        let id = net.join_node(&[NodeId::new(1), NodeId::new(2)], 1).unwrap();
        assert_eq!(net.component_count(), 1);
        assert_eq!(net.component_of(id), Some(0));
        assert!(net.same_component(NodeId::new(0), NodeId::new(2)));
    }

    #[test]
    fn component_labels_match_a_from_scratch_bfs_after_churn() {
        let mut net = net3x3();
        net.set_partition_policy(PartitionPolicy::Allow);
        // Carve the grid up: lose a corner, cut the middle column.
        net.deactivate_node(NodeId::new(0)).unwrap();
        net.remove_link(NodeId::new(1), NodeId::new(2)).unwrap();
        net.remove_link(NodeId::new(5), NodeId::new(2)).unwrap();
        net.remove_link(NodeId::new(7), NodeId::new(8)).unwrap();
        net.remove_link(NodeId::new(5), NodeId::new(8)).unwrap();
        let expected = components::components_of_subset(net.graph(), &net.active_nodes());
        assert_eq!(net.active_components(), expected);
        assert!(expected.len() > 1);
        // Heal everything back and re-check.
        net.add_link(NodeId::new(1), NodeId::new(2)).unwrap();
        net.add_link(NodeId::new(7), NodeId::new(8)).unwrap();
        let expected = components::components_of_subset(net.graph(), &net.active_nodes());
        assert_eq!(net.active_components(), expected);
        assert_eq!(net.component_count(), 1);
    }

    #[test]
    fn default_policy_is_reject() {
        let net = net3x3();
        assert_eq!(net.partition_policy(), PartitionPolicy::Reject);
        assert_eq!(net.component_count(), 1);
    }

    #[test]
    fn join_node_extends_every_table() {
        let mut net = net3x3();
        let id = net.join_node(&[NodeId::new(8), NodeId::new(5)], 3).unwrap();
        assert_eq!(id, NodeId::new(9));
        assert_eq!(net.node_count(), 10);
        assert_eq!(net.capacity(id), 3);
        assert_eq!(net.battery(id), 1.0);
        assert!(net.is_active(id));
        assert!(net.graph().contains_edge(id, NodeId::new(8)));
        net.cache(id, ChunkId::new(0)).unwrap();
        assert_eq!(net.holders(ChunkId::new(0)), vec![id]);
    }

    #[test]
    fn join_node_rejects_bad_links() {
        let mut net = net3x3();
        assert!(net.join_node(&[], 2).is_err());
        net.deactivate_node(NodeId::new(0)).unwrap();
        assert!(net.join_node(&[NodeId::new(0)], 2).is_err());
        assert_eq!(net.node_count(), 9); // unchanged on error
    }

    #[test]
    fn link_churn_preserves_connectivity() {
        let mut net = net3x3();
        // Redundant link: fine to drop.
        assert!(net.remove_link(NodeId::new(0), NodeId::new(1)).unwrap());
        // Node 0 now hangs off node 3 alone; cutting that would strand it.
        let err = net.remove_link(NodeId::new(0), NodeId::new(3)).unwrap_err();
        assert_eq!(err, CoreError::DisconnectedNetwork);
        assert!(net.graph().contains_edge(NodeId::new(0), NodeId::new(3)));
        // Re-adding the dropped link works; duplicates report false.
        assert!(net.add_link(NodeId::new(0), NodeId::new(1)).unwrap());
        assert!(!net.add_link(NodeId::new(0), NodeId::new(1)).unwrap());
        // Removing an absent link reports false.
        assert!(!net.remove_link(NodeId::new(0), NodeId::new(4)).unwrap());
    }

    #[test]
    fn links_to_departed_nodes_are_rejected() {
        let mut net = net3x3();
        net.deactivate_node(NodeId::new(8)).unwrap();
        assert!(matches!(
            net.add_link(NodeId::new(7), NodeId::new(8)),
            Err(CoreError::InvalidParameter(_))
        ));
    }

    #[test]
    fn interest_filters_departed_nodes() {
        let mut net = net3x3();
        net.set_interest(ChunkId::new(0), [NodeId::new(0), NodeId::new(8)])
            .unwrap();
        net.deactivate_node(NodeId::new(8)).unwrap();
        assert_eq!(
            net.interested_clients(ChunkId::new(0)),
            vec![NodeId::new(0)]
        );
    }

    #[test]
    fn zero_capacity_node_has_infinite_fairness() {
        let mut caps = vec![2; 4];
        caps[1] = 0;
        let net = Network::with_capacities(builders::grid(2, 2), NodeId::new(0), caps).unwrap();
        assert!(net.fairness_cost(NodeId::new(1)).is_infinite());
    }

    use peercache_graph::Graph;
}
