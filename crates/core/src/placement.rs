//! Placement results produced by the planners.
//!
//! A [`Placement`] records, per chunk, which nodes cache it, how every
//! client accesses it, the dissemination tree, and the cost breakdown at
//! placement time — everything the evaluation figures need.

use peercache_graph::paths::PathSelection;
use peercache_graph::NodeId;

use crate::costs::{ContentionMatrix, CostWeights};
use crate::instance::SetCosts;
use crate::{ChunkId, CoreError, Network};

/// The plan for a single chunk.
#[derive(Debug, Clone, PartialEq)]
pub struct ChunkPlacement {
    /// The chunk this plan is for.
    pub chunk: ChunkId,
    /// Nodes selected to cache the chunk (sorted; may be empty when
    /// every client simply fetches from the producer).
    pub caches: Vec<NodeId>,
    /// `(client, provider)` pairs: where each client gets the chunk.
    pub assignment: Vec<(NodeId, NodeId)>,
    /// Edges of the dissemination (Steiner) tree.
    pub tree_edges: Vec<(NodeId, NodeId)>,
    /// Cost breakdown at placement time.
    pub costs: SetCosts,
}

impl ChunkPlacement {
    /// Contention cost of this chunk: accessing + dissemination phases
    /// (what Fig. 9 plots per chunk).
    pub fn contention_cost(&self) -> f64 {
        self.costs.access + self.costs.dissemination
    }
}

/// A full multi-chunk placement.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct Placement {
    chunks: Vec<ChunkPlacement>,
}

impl Placement {
    /// Creates a placement from per-chunk plans.
    pub fn new(chunks: Vec<ChunkPlacement>) -> Self {
        Placement { chunks }
    }

    /// Per-chunk plans in placement order.
    pub fn chunks(&self) -> &[ChunkPlacement] {
        &self.chunks
    }

    /// Appends one chunk's plan.
    pub fn push(&mut self, chunk: ChunkPlacement) {
        self.chunks.push(chunk);
    }

    /// Cached copies per chunk, in placement order — the achieved
    /// replication degrees.
    pub fn copies_per_chunk(&self) -> Vec<usize> {
        self.chunks.iter().map(|c| c.caches.len()).collect()
    }

    /// The smallest copy count over all chunks (0 for an empty
    /// placement): how many copies the worst-protected chunk has, i.e.
    /// the replication degree the placement actually guarantees.
    pub fn min_copies(&self) -> usize {
        self.chunks
            .iter()
            .map(|c| c.caches.len())
            .min()
            .unwrap_or(0)
    }

    /// Summed cost breakdown over all chunks.
    pub fn total_costs(&self) -> SetCosts {
        let mut total = SetCosts::default();
        for c in &self.chunks {
            total.fairness += c.costs.fairness;
            total.access += c.costs.access;
            total.dissemination += c.costs.dissemination;
        }
        total
    }

    /// Total Contention Cost (accessing + dissemination, all chunks) —
    /// the headline metric of Figs. 2, 3, 4 and 8.
    pub fn total_contention_cost(&self) -> f64 {
        self.chunks
            .iter()
            .map(ChunkPlacement::contention_cost)
            .sum()
    }

    /// Contention cost per chunk, in chunk order (Fig. 9).
    pub fn per_chunk_contention(&self) -> Vec<f64> {
        self.chunks
            .iter()
            .map(ChunkPlacement::contention_cost)
            .collect()
    }

    /// Running (accumulated) contention cost after each chunk (Fig. 8).
    pub fn accumulated_contention(&self) -> Vec<f64> {
        let mut acc = 0.0;
        self.chunks
            .iter()
            .map(|c| {
                acc += c.contention_cost();
                acc
            })
            .collect()
    }
}

/// Re-costs a finished placement against a network state.
///
/// §V's cross-algorithm comparisons "put all the chunks to the original
/// connected graph based on which nodes access which chunks in all
/// rounds" — i.e. the recorded assignments and dissemination trees are
/// priced under the **final** caching state, where every cached copy
/// contributes its `(1 + S(k))` contention inflation. Pass the network
/// as it stands after planning.
///
/// Assignments and trees are kept as recorded; only the access and
/// dissemination costs change (fairness stays at its placement-time
/// value — it is not part of the contention figures).
///
/// # Errors
///
/// Propagates path-computation failures (cannot occur for a placement
/// produced on `net`).
pub fn recost_final(
    net: &Network,
    placement: &Placement,
    weights: CostWeights,
    selection: PathSelection,
) -> Result<Placement, CoreError> {
    let matrix = ContentionMatrix::compute(net, selection)?;
    let chunks = placement
        .chunks()
        .iter()
        .map(|cp| {
            let access: f64 = cp
                .assignment
                .iter()
                .map(|&(client, provider)| weights.contention * matrix.cost(provider, client))
                .sum();
            let dissemination: f64 = cp
                .tree_edges
                .iter()
                .map(|&(u, v)| weights.dissemination * matrix.edge_cost(u, v))
                .sum();
            ChunkPlacement {
                costs: SetCosts {
                    fairness: cp.costs.fairness,
                    access,
                    dissemination,
                },
                ..cp.clone()
            }
        })
        .collect();
    Ok(Placement { chunks })
}

impl FromIterator<ChunkPlacement> for Placement {
    fn from_iter<T: IntoIterator<Item = ChunkPlacement>>(iter: T) -> Self {
        Placement::new(iter.into_iter().collect())
    }
}

impl Extend<ChunkPlacement> for Placement {
    fn extend<T: IntoIterator<Item = ChunkPlacement>>(&mut self, iter: T) {
        self.chunks.extend(iter);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn plan(chunk: usize, access: f64, diss: f64, fair: f64) -> ChunkPlacement {
        ChunkPlacement {
            chunk: ChunkId::new(chunk),
            caches: vec![NodeId::new(chunk)],
            assignment: vec![],
            tree_edges: vec![],
            costs: SetCosts {
                fairness: fair,
                access,
                dissemination: diss,
            },
        }
    }

    #[test]
    fn totals_sum_over_chunks() {
        let p = Placement::new(vec![plan(0, 1.0, 2.0, 0.5), plan(1, 3.0, 4.0, 1.5)]);
        let t = p.total_costs();
        assert_eq!(t.fairness, 2.0);
        assert_eq!(t.access, 4.0);
        assert_eq!(t.dissemination, 6.0);
        assert_eq!(p.total_contention_cost(), 10.0);
    }

    #[test]
    fn per_chunk_and_accumulated_series() {
        let p = Placement::new(vec![plan(0, 1.0, 1.0, 0.0), plan(1, 2.0, 0.0, 0.0)]);
        assert_eq!(p.per_chunk_contention(), vec![2.0, 2.0]);
        assert_eq!(p.accumulated_contention(), vec![2.0, 4.0]);
    }

    #[test]
    fn collect_and_extend() {
        let mut p: Placement = vec![plan(0, 1.0, 0.0, 0.0)].into_iter().collect();
        p.extend(vec![plan(1, 1.0, 0.0, 0.0)]);
        assert_eq!(p.chunks().len(), 2);
    }

    #[test]
    fn empty_placement_has_zero_costs() {
        let p = Placement::default();
        assert_eq!(p.total_contention_cost(), 0.0);
        assert!(p.per_chunk_contention().is_empty());
    }

    mod recost {
        use super::super::*;
        use crate::approx::ApproxPlanner;
        use crate::planner::CachePlanner;
        use crate::workload::paper_grid;
        use peercache_graph::paths::PathSelection;

        #[test]
        fn final_recosting_preserves_structure_and_fairness() {
            let mut net = paper_grid(4).unwrap();
            let placed = ApproxPlanner::default().plan(&mut net, 3).unwrap();
            let recosted = recost_final(
                &net,
                &placed,
                CostWeights::default(),
                PathSelection::FewestHops,
            )
            .unwrap();
            for (a, b) in placed.chunks().iter().zip(recosted.chunks()) {
                assert_eq!(a.caches, b.caches);
                assert_eq!(a.assignment, b.assignment);
                assert_eq!(a.tree_edges, b.tree_edges);
                assert_eq!(a.costs.fairness, b.costs.fairness);
            }
        }

        #[test]
        fn later_chunks_cost_no_less_under_final_state() {
            // Final-state pricing sees every copy, so each chunk's cost
            // is at least its placement-time cost (loads only grew).
            let mut net = paper_grid(4).unwrap();
            let placed = ApproxPlanner::default().plan(&mut net, 3).unwrap();
            let recosted = recost_final(
                &net,
                &placed,
                CostWeights::default(),
                PathSelection::FewestHops,
            )
            .unwrap();
            for (a, b) in placed.chunks().iter().zip(recosted.chunks()) {
                assert!(b.costs.access + 1e-9 >= a.costs.access);
                assert!(b.costs.dissemination + 1e-9 >= a.costs.dissemination);
            }
        }

        #[test]
        fn recosting_an_empty_placement_is_empty() {
            let net = paper_grid(3).unwrap();
            let p = recost_final(
                &net,
                &Placement::default(),
                CostWeights::default(),
                PathSelection::FewestHops,
            )
            .unwrap();
            assert!(p.chunks().is_empty());
        }

        #[test]
        fn contention_weight_scales_recosted_access() {
            let mut net = paper_grid(4).unwrap();
            let placed = ApproxPlanner::default().plan(&mut net, 2).unwrap();
            let base = recost_final(
                &net,
                &placed,
                CostWeights::default(),
                PathSelection::FewestHops,
            )
            .unwrap();
            let doubled = recost_final(
                &net,
                &placed,
                CostWeights {
                    contention: 2.0,
                    ..Default::default()
                },
                PathSelection::FewestHops,
            )
            .unwrap();
            for (a, b) in base.chunks().iter().zip(doubled.chunks()) {
                assert!((b.costs.access - 2.0 * a.costs.access).abs() < 1e-9);
            }
        }
    }
}
