//! K-hop-scoped contention state and the hierarchical region planner —
//! the locality stack that breaks the `O(N²)` wall of the dense
//! [`ContentionMatrix`](crate::costs::ContentionMatrix).
//!
//! The dense planners keep every Path Contention Cost `c_ij` in memory:
//! `O(N²)` state and `O(N·(N+E) log N)` recompute per chunk. This
//! module replaces that with three cooperating pieces:
//!
//! 1. **Region partition** — the graph is covered once by connected
//!    regions of bounded size
//!    ([`RegionPartition::grow`](peercache_graph::regions::RegionPartition)),
//!    each extended by a `k`-hop halo.
//! 2. **[`ScopedContention`]** — per region, the exact pairwise costs
//!    from the region's nodes to everything in its `k`-hop demand ball
//!    (region ∪ halo), computed on the induced block subgraph and kept
//!    as lean `cost f64 + hops u32` rows (12 B/pair, no parent
//!    pointers). Because every hop-shortest path between nodes at hop
//!    distance `h ≤ k` stays inside the `k`-ball, these block values
//!    are **bit-identical** to the dense matrix for all pairs within
//!    `k` hops. Everything farther is answered by a seeded
//!    [`LandmarkOracle`] — `O(L·N)` state — whose triangle-inequality
//!    upper bound serves as the documented cross-ball estimate.
//! 3. **[`HierarchicalPlanner`]** — runs the *same* event-driven dual
//!    ascent ([`crate::approx::dual_ascent_scoped`]) independently per
//!    region over a [`RegionView`] of the scoped store, stitches the
//!    result across borders (clients may pick providers in their
//!    region's halo, i.e. within `k` hops of a boundary), and builds
//!    the dissemination tree as a union of producer-rooted
//!    shortest-path-tree trunks instead of a full metric-closure
//!    Steiner run.
//!
//! The incremental discipline mirrors the dense path: committing a
//! chunk dirties only the new caches and the producer, so
//! [`ScopedContention::update`] rebuilds only the blocks whose demand
//! ball contains a dirty node and refreshes the (fixed-selection)
//! landmark vectors.

use peercache_graph::oracle::LandmarkOracle;
use peercache_graph::paths::{dijkstra_edge_weighted, AllPairsPaths, Parallelism, PathSelection};
use peercache_graph::regions::RegionPartition;
use peercache_graph::NodeId;
use peercache_obs as obs;

use crate::approx::{dual_ascent_scoped, ApproxConfig};
use crate::costs::{cost_tie_eq, node_contention_terms, CostWeights};
use crate::instance::{ConflCosts, ConflInstance, SetCosts};
use crate::placement::{ChunkPlacement, Placement};
use crate::planner::{chunk_span, finish_chunk_span, CachePlanner};
use crate::{ChunkId, CoreError, Network};

/// Hop sentinel for pairs unreachable inside a block.
const FAR: u32 = u32::MAX;

/// Tuning parameters of the scoped contention store.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ScopedConfig {
    /// Maximum nodes per region (the block row count).
    pub region_max: usize,
    /// Halo radius `k`: block columns cover the region plus everything
    /// within `k` hops, and pairs within `k` hops are answered exactly.
    pub halo_hops: u32,
    /// Landmark count `L` of the cross-ball distance oracle.
    pub landmarks: usize,
    /// Seed for region growth order and landmark selection.
    pub seed: u64,
}

impl Default for ScopedConfig {
    fn default() -> Self {
        ScopedConfig {
            region_max: 128,
            halo_hops: 2,
            landmarks: 8,
            seed: 0xCAC4E,
        }
    }
}

/// One region's exact-cost block: rows are the region's nodes, columns
/// its `k`-hop demand ball (region ∪ halo), values the pair costs of
/// the induced block subgraph.
#[derive(Debug, Clone)]
struct Block {
    /// Region members, sorted ascending (the block's rows).
    rows: Vec<NodeId>,
    /// Region ∪ halo, sorted ascending (the block's columns).
    cols: Vec<NodeId>,
    /// Closed pair costs, `rows.len() × cols.len()`, row-major.
    cost: Vec<f64>,
    /// Routed hop counts, same shape; [`FAR`] when unreachable inside
    /// the block.
    hops: Vec<u32>,
}

impl Block {
    fn lookup(&self, row: NodeId, col: NodeId) -> Option<(f64, u32)> {
        let ci = self.cols.binary_search(&col).ok()?;
        let ri = self
            .rows
            .binary_search(&row)
            .expect("block rows cover the region");
        let at = ri * self.cols.len() + ci;
        Some((self.cost[at], self.hops[at]))
    }

    fn state_bytes(&self) -> u64 {
        (self.cost.len() * 8 + self.hops.len() * 4 + (self.rows.len() + self.cols.len()) * 4) as u64
    }
}

/// Scoped replacement for the dense contention matrix: exact block
/// state within each region's `k`-hop demand ball, landmark-oracle
/// estimates across balls. See the module docs for the exactness
/// guarantee and the error model.
#[derive(Debug, Clone)]
pub struct ScopedContention {
    cfg: ScopedConfig,
    selection: PathSelection,
    partition: RegionPartition,
    /// Per-node contention terms `w_k (1 + S(k))`.
    terms: Vec<f64>,
    blocks: Vec<Block>,
    oracle: LandmarkOracle,
}

impl ScopedContention {
    /// Builds the scoped store for the network's current caching state:
    /// grows the region partition, computes every region block on its
    /// induced subgraph (fanned out over `parallelism`), and builds the
    /// landmark oracle.
    ///
    /// # Errors
    ///
    /// Propagates [`CoreError::Graph`] on internal failures (cannot
    /// happen for a well-formed [`Network`]).
    pub fn new(
        net: &Network,
        cfg: ScopedConfig,
        selection: PathSelection,
        parallelism: Parallelism,
    ) -> Result<Self, CoreError> {
        let g = net.graph();
        let terms = node_contention_terms(net);
        let partition = RegionPartition::grow(g, cfg.region_max, cfg.seed);
        let oracle = LandmarkOracle::build(g, &terms, cfg.landmarks, cfg.seed)?;
        let all: Vec<usize> = (0..partition.region_count()).collect();
        let built = build_blocks(
            net,
            &partition,
            &terms,
            cfg.halo_hops,
            selection,
            parallelism,
            &all,
        )?;
        let mut blocks = Vec::with_capacity(built.len());
        for (_, b) in built {
            blocks.push(b);
        }
        Ok(ScopedContention {
            cfg,
            selection,
            partition,
            terms,
            blocks,
            oracle,
        })
    }

    /// The region partition the store is built over.
    pub fn partition(&self) -> &RegionPartition {
        &self.partition
    }

    /// The scoped store's configuration.
    pub fn config(&self) -> &ScopedConfig {
        &self.cfg
    }

    /// The per-node contention term `w_k (1 + S(k))`.
    ///
    /// # Panics
    ///
    /// Panics if `k` is out of bounds.
    pub fn node_term(&self, k: NodeId) -> f64 {
        self.terms[k.index()]
    }

    /// Edge cost `c_e` for an adjacent pair — identical to
    /// [`ContentionMatrix::edge_cost`](crate::costs::ContentionMatrix::edge_cost).
    ///
    /// # Panics
    ///
    /// Panics if either node is out of bounds.
    pub fn edge_cost(&self, u: NodeId, v: NodeId) -> f64 {
        self.terms[u.index()] + self.terms[v.index()]
    }

    /// The demand-ball columns (region ∪ halo, sorted) of region `r`.
    ///
    /// # Panics
    ///
    /// Panics if `r` is out of bounds.
    pub fn region_cols(&self, r: usize) -> &[NodeId] {
        &self.blocks[r].cols
    }

    /// The Path Contention Cost `c_uv` under the scoped store: `0` on
    /// the diagonal, the exact block value when either endpoint's block
    /// covers the pair (bit-identical to the dense matrix whenever the
    /// pair is within `k` hops), and the landmark upper-bound estimate
    /// across balls.
    ///
    /// Symmetric by construction: the lookup tries the lower id's home
    /// block first, then the higher id's, so `(u, v)` and `(v, u)`
    /// resolve through the same path.
    ///
    /// # Panics
    ///
    /// Panics if either node is out of bounds.
    pub fn cost(&self, u: NodeId, v: NodeId) -> f64 {
        if u == v {
            return 0.0;
        }
        let (a, b) = if u <= v { (u, v) } else { (v, u) };
        if let Some((c, _)) = self.blocks[self.partition.region_of(a)].lookup(a, b) {
            return c;
        }
        if let Some((c, _)) = self.blocks[self.partition.region_of(b)].lookup(b, a) {
            return c;
        }
        self.oracle.estimate(a, b)
    }

    /// Whether [`ScopedContention::cost`] answers this pair from exact
    /// block state (as opposed to the cross-ball oracle estimate) *and*
    /// the pair lies within the `k`-hop exactness radius.
    ///
    /// # Panics
    ///
    /// Panics if either node is out of bounds.
    pub fn is_exact(&self, u: NodeId, v: NodeId) -> bool {
        if u == v {
            return true;
        }
        let (a, b) = if u <= v { (u, v) } else { (v, u) };
        for (row, col) in [(a, b), (b, a)] {
            if let Some((_, h)) = self.blocks[self.partition.region_of(row)].lookup(row, col) {
                return h <= self.cfg.halo_hops;
            }
        }
        false
    }

    /// Refreshes the store after the caching state changed, rebuilding
    /// only the blocks whose demand ball contains a node whose
    /// contention term moved, and re-running the (fixed-selection)
    /// landmark vectors. `dirty` is the caller's account of the changed
    /// nodes, cross-checked in debug builds; the actual invalidation
    /// diffs the recomputed terms, so a stale set cannot produce a
    /// wrong store.
    ///
    /// Returns the number of blocks rebuilt.
    ///
    /// # Errors
    ///
    /// Propagates [`CoreError::Graph`] on internal failures.
    pub fn update(
        &mut self,
        net: &Network,
        dirty: &[NodeId],
        parallelism: Parallelism,
    ) -> Result<usize, CoreError> {
        let terms = node_contention_terms(net);
        let changed: Vec<NodeId> = (0..terms.len())
            .filter(|&k| terms[k].to_bits() != self.terms[k].to_bits())
            .map(NodeId::new)
            .collect();
        debug_assert!(
            changed.iter().all(|c| dirty.contains(c)),
            "a node outside the declared dirty set {dirty:?} changed its contention term"
        );
        let _ = dirty;
        if changed.is_empty() {
            return Ok(0);
        }
        let stale: Vec<usize> = (0..self.blocks.len())
            .filter(|&r| {
                changed
                    .iter()
                    .any(|c| self.blocks[r].cols.binary_search(c).is_ok())
            })
            .collect();
        let rebuilt = build_blocks(
            net,
            &self.partition,
            &terms,
            self.cfg.halo_hops,
            self.selection,
            parallelism,
            &stale,
        )?;
        for (r, b) in rebuilt {
            self.blocks[r] = b;
        }
        self.oracle.refresh(net.graph(), &terms)?;
        self.terms = terms;
        Ok(stale.len())
    }

    /// Refreshes the store after a *topology* change (links added or
    /// removed, a node deactivated): the structural sibling of
    /// [`ScopedContention::update`], and in fact a documented thin
    /// wrapper over it.
    ///
    /// Why the same invalidation is sound for topology edits: the
    /// per-node contention term is `w_k (1 + S(k))` with `w_k` the
    /// node's *degree*, so every endpoint of a changed link (and every
    /// former neighbor of a departed node, and the departed node
    /// itself) changes its term bitwise, and `update` already rebuilds
    /// every block whose demand ball contains a term-changed node. A
    /// block's values can only change if the edited edge lies inside
    /// its induced ball subgraph — both endpoints in its columns — and
    /// a ball can only *gain* a member through a new edge whose nearer
    /// endpoint was already within `k-1` hops (hence already a column).
    /// Either way the stale block holds an endpoint, so the term diff
    /// catches it and `build_block` recomputes the halo afresh.
    ///
    /// The one structural edit this cannot absorb is a *new node id*
    /// ([`Network::join_node`] grows the graph): the region partition
    /// has no region for it, so that case is rejected and the caller
    /// must rebuild with [`ScopedContention::new`].
    ///
    /// `touched` must cover every node whose degree or load changed
    /// (include the producer when distinct-chunk counts may have
    /// moved); it is cross-checked in debug builds exactly like
    /// `update`'s dirty set. Returns the number of blocks rebuilt.
    ///
    /// # Errors
    ///
    /// * [`CoreError::InvalidParameter`] if the graph's node count no
    ///   longer matches the partition (a node joined).
    /// * [`CoreError::Graph`] on internal failures.
    pub fn update_topology(
        &mut self,
        net: &Network,
        touched: &[NodeId],
        parallelism: Parallelism,
    ) -> Result<usize, CoreError> {
        if net.node_count() != self.terms.len() {
            return Err(CoreError::InvalidParameter(format!(
                "scoped store built for {} nodes cannot absorb a grown graph of {} — rebuild",
                self.terms.len(),
                net.node_count()
            )));
        }
        self.update(net, touched, parallelism)
    }

    /// Strict-invariants oracle: rebuilds every block from scratch
    /// *over the retained partition* and asserts the incrementally
    /// maintained state matches bitwise. A fresh
    /// [`ScopedContention::new`] would re-grow the partition over the
    /// current graph and legitimately differ after topology churn; the
    /// invariant is that incremental maintenance of *this* partition
    /// equals a from-scratch build of it.
    ///
    /// # Panics
    ///
    /// Panics on any bitwise divergence (corrupted incremental state).
    #[cfg(feature = "strict-invariants")]
    pub fn strict_verify(&self, net: &Network) {
        let terms = node_contention_terms(net);
        assert_eq!(
            terms.len(),
            self.terms.len(),
            "strict: node count drifted under the scoped store"
        );
        for (k, (fresh, held)) in terms.iter().zip(&self.terms).enumerate() {
            assert!(
                fresh.to_bits() == held.to_bits(),
                "strict: stale contention term at node {k}"
            );
        }
        let all: Vec<usize> = (0..self.partition.region_count()).collect();
        let built = build_blocks(
            net,
            &self.partition,
            &terms,
            self.cfg.halo_hops,
            self.selection,
            Parallelism::Sequential,
            &all,
        )
        .expect("strict: from-scratch block rebuild failed");
        for (r, fresh) in built {
            let held = &self.blocks[r];
            assert_eq!(held.cols, fresh.cols, "strict: block {r} columns drifted");
            assert_eq!(held.hops, fresh.hops, "strict: block {r} hops drifted");
            assert!(
                held.cost
                    .iter()
                    .zip(&fresh.cost)
                    .all(|(a, b)| a.to_bits() == b.to_bits()),
                "strict: block {r} cost values drifted from a fresh rebuild"
            );
        }
    }

    /// Bytes of heap state the store holds: all block rows plus the
    /// landmark vectors and the term table. This is the
    /// `planner.contention_bytes` gauge.
    pub fn contention_bytes(&self) -> u64 {
        let blocks: u64 = self.blocks.iter().map(Block::state_bytes).sum();
        blocks + self.oracle.state_bytes() + (self.terms.len() * 8) as u64
    }

    /// Bytes an equivalent dense [`AllPairsPaths`] snapshot would hold:
    /// interior `f64` + hops `u32` + parent `Option<NodeId>` per pair
    /// (20 B), mask words excluded — the conservative side.
    pub fn dense_equivalent_bytes(n: usize) -> u64 {
        (n as u64) * (n as u64) * 20
    }
}

/// Builds the blocks for the listed regions, fanning out over
/// `parallelism`; results come back tagged with their region index so
/// the merge is deterministic regardless of thread scheduling.
#[allow(clippy::too_many_arguments)]
fn build_blocks(
    net: &Network,
    partition: &RegionPartition,
    terms: &[f64],
    halo_hops: u32,
    selection: PathSelection,
    parallelism: Parallelism,
    which: &[usize],
) -> Result<Vec<(usize, Block)>, CoreError> {
    let threads = parallelism.threads(which.len().max(1));
    let mut slots: Vec<Option<Result<Block, CoreError>>> = (0..which.len()).map(|_| None).collect();
    if threads <= 1 || which.len() <= 1 {
        for (slot, &r) in slots.iter_mut().zip(which) {
            *slot = Some(obs::with_quiet(|| {
                build_block(net, partition, terms, halo_hops, selection, r)
            }));
        }
    } else {
        let per = which.len().div_ceil(threads);
        std::thread::scope(|s| {
            for (chunk, regions) in slots.chunks_mut(per).zip(which.chunks(per)) {
                s.spawn(move || {
                    for (slot, &r) in chunk.iter_mut().zip(regions) {
                        *slot = Some(obs::with_quiet(|| {
                            build_block(net, partition, terms, halo_hops, selection, r)
                        }));
                    }
                });
            }
        });
    }
    let mut out = Vec::with_capacity(which.len());
    for (slot, &r) in slots.into_iter().zip(which) {
        out.push((r, slot.expect("every block slot is filled")?));
    }
    Ok(out)
}

/// Computes one region's block: all-pairs paths on the induced
/// region-∪-halo subgraph, then only the region rows are kept as lean
/// `cost + hops` arrays.
fn build_block(
    net: &Network,
    partition: &RegionPartition,
    terms: &[f64],
    halo_hops: u32,
    selection: PathSelection,
    r: usize,
) -> Result<Block, CoreError> {
    let g = net.graph();
    let rows: Vec<NodeId> = partition.region(r).to_vec();
    let halo = partition.halo_of(g, r, halo_hops);
    let mut cols = Vec::with_capacity(rows.len() + halo.len());
    cols.extend_from_slice(&rows);
    cols.extend_from_slice(&halo);
    cols.sort_unstable();
    let (sub, originals) = g.induced_subgraph(&cols)?;
    let local_terms: Vec<f64> = originals.iter().map(|&x| terms[x.index()]).collect();
    let ap = AllPairsPaths::compute_with(&sub, &local_terms, selection, Parallelism::Sequential)?;
    let c = cols.len();
    let mut cost = Vec::with_capacity(rows.len() * c);
    let mut hops = Vec::with_capacity(rows.len() * c);
    for &u in &rows {
        let lu = cols
            .binary_search(&u)
            .expect("region rows are block columns");
        for lv in 0..c {
            cost.push(ap.cost(NodeId::new(lu), NodeId::new(lv)));
            hops.push(ap.hops(NodeId::new(lu), NodeId::new(lv)).unwrap_or(FAR));
        }
    }
    Ok(Block {
        rows,
        cols,
        cost,
        hops,
    })
}

/// One region's ConFL view over the scoped store: clients and
/// candidates restricted to the region, connection costs answered by
/// [`ScopedContention::cost`], the ambient producer as the pre-opened
/// root. Feed it to [`dual_ascent_scoped`].
#[derive(Debug)]
pub struct RegionView<'a> {
    scoped: &'a ScopedContention,
    facility_cost: &'a [f64],
    producer: NodeId,
    clients: Vec<NodeId>,
    candidates: Vec<NodeId>,
    weights: CostWeights,
}

impl<'a> RegionView<'a> {
    /// Builds the view for region `r`: `clients` is the chunk audience
    /// restricted to the region (sorted), candidates are the region's
    /// finite-cost nodes.
    pub fn new(
        scoped: &'a ScopedContention,
        facility_cost: &'a [f64],
        producer: NodeId,
        weights: CostWeights,
        r: usize,
        clients: Vec<NodeId>,
    ) -> Self {
        let candidates: Vec<NodeId> = scoped
            .partition()
            .region(r)
            .iter()
            .copied()
            .filter(|&i| facility_cost[i.index()].is_finite())
            .collect();
        RegionView {
            scoped,
            facility_cost,
            producer,
            clients,
            candidates,
            weights,
        }
    }
}

impl ConflCosts for RegionView<'_> {
    fn node_count(&self) -> usize {
        self.facility_cost.len()
    }

    fn producer(&self) -> NodeId {
        self.producer
    }

    fn clients(&self) -> &[NodeId] {
        &self.clients
    }

    fn candidates(&self) -> Vec<NodeId> {
        self.candidates.clone()
    }

    fn facility_cost(&self, i: NodeId) -> f64 {
        self.facility_cost[i.index()]
    }

    fn connection_cost(&self, i: NodeId, j: NodeId) -> f64 {
        self.weights.contention * self.scoped.cost(i, j)
    }

    fn weights(&self) -> CostWeights {
        self.weights
    }
}

/// The hierarchical region planner ("Hier" in the figures): per-region
/// dual ascent over the scoped store, border-stitched assignment, and
/// an SPT-trunk dissemination tree. Plans 10k–100k-node networks in
/// seconds where the dense pipeline needs the full `O(N²)` matrix.
#[derive(Debug, Clone, Default)]
pub struct HierarchicalPlanner {
    /// Dual-ascent parameters (shared with the dense planner).
    pub config: ApproxConfig,
    /// Scoped-store parameters.
    pub scoped: ScopedConfig,
}

impl HierarchicalPlanner {
    /// Creates a planner with explicit parameters.
    pub fn new(config: ApproxConfig, scoped: ScopedConfig) -> Self {
        HierarchicalPlanner { config, scoped }
    }
}

impl CachePlanner for HierarchicalPlanner {
    fn name(&self) -> &str {
        "Hier"
    }

    fn plan(&self, net: &mut Network, chunk_count: usize) -> Result<Placement, CoreError> {
        self.config.validate()?;
        let n = net.node_count();
        let producer = net.producer();
        let weights = self.config.weights;
        let mut scoped = ScopedContention::new(
            net,
            self.scoped,
            self.config.selection,
            self.config.parallelism,
        )?;
        let regions = scoped.partition().region_count();
        obs::gauge("planner.region_count").set(regions as i64);
        obs::gauge("planner.contention_bytes").set(scoped.contention_bytes() as i64);
        let mut scale_span = obs::span!(
            "planner.scale",
            nodes = n,
            regions = regions,
            chunks = chunk_count,
        );

        let mut placement = Placement::default();
        for q in 0..chunk_count {
            let chunk = ChunkId::new(q);
            let mut span = chunk_span("Hier", chunk);
            let mut clock = obs::Stopwatch::start();
            let facility_cost = ConflInstance::facility_costs(net, weights);
            let audience = net.interested_clients(chunk);

            // Per-region dual ascent over the scoped store, fanned out
            // in parallel; the merge is by region order, so every
            // parallelism setting yields the same facilities.
            let mut by_region: Vec<Vec<NodeId>> = vec![Vec::new(); regions];
            for &j in &audience {
                by_region[scoped.partition().region_of(j)].push(j);
            }
            let busy: Vec<usize> = (0..regions).filter(|&r| !by_region[r].is_empty()).collect();
            let opened = ascend_regions(
                &scoped,
                &facility_cost,
                producer,
                weights,
                &self.config,
                &by_region,
                &busy,
                self.config.parallelism,
            )?;
            let mut facilities: Vec<NodeId> = opened.into_iter().flatten().collect();
            facilities.sort_unstable();
            facilities.dedup();
            let ascent_us = clock.lap_us();

            // Border-stitched assignment + prune: every client chooses
            // among the facilities in its region's demand ball (its own
            // region plus the k-hop halo — the cross-border stitch) and
            // the producer; facilities serving nobody are dropped to a
            // fixpoint, exactly like the dense pipeline's prune.
            let (mut current, mut providers, mut costs) = assign_and_prune(
                &scoped,
                &facility_cost,
                producer,
                weights,
                &audience,
                facilities,
            );
            let prune_us = clock.lap_us();

            // Dissemination: one producer-rooted edge-weighted SPT per
            // chunk; the tree is the union of the facilities' trunk
            // paths. Removal improvement scores each facility by the
            // fairness it frees, the access it costs its clients, and
            // the trunk edges only it holds alive.
            let (_, spt_parent) =
                dijkstra_edge_weighted(net.graph(), producer, |u, v| scoped.edge_cost(u, v));
            improve_by_scoped_removal(
                &scoped,
                &facility_cost,
                producer,
                weights,
                &audience,
                &spt_parent,
                &mut current,
                &mut providers,
                &mut costs,
            );
            let improve_us = clock.lap_us();

            // R-copy durability floor (a no-op for the default
            // single-copy policy): top the pruned set up to the
            // replication degree under the replica-load cap, then
            // re-derive providers so a client may be served by a
            // replica that landed inside its region's demand ball. The
            // trunk tree below unions the SPT paths of *all* R copies —
            // the R-connected dissemination objective.
            let extra = crate::replication::top_up_targets(
                net,
                &current,
                &self.config.replication,
                |i| facility_cost[i.index()],
                |a, b| weights.contention * scoped.cost(a, b),
                producer,
            );
            if !extra.is_empty() {
                current.extend(extra);
                current.sort_unstable();
                let by_ball = facilities_by_region(&scoped, &current);
                for (idx, &j) in audience.iter().enumerate() {
                    let options = &by_ball[scoped.partition().region_of(j)];
                    let (p, c) = best_provider(&scoped, weights, producer, options, j, None);
                    providers[idx] = p;
                    costs[idx] = c;
                }
            }

            let (tree_edges, tree_cost) = trunk_tree(&scoped, producer, &spt_parent, &current);
            let fairness: f64 = current.iter().map(|&i| facility_cost[i.index()]).sum();
            let access: f64 = costs.iter().sum();
            let set_costs = SetCosts {
                fairness,
                access,
                dissemination: weights.dissemination * tree_cost,
            };
            let assignment: Vec<(NodeId, NodeId)> =
                audience.iter().copied().zip(providers).collect();
            for &i in &current {
                net.cache(i, chunk)?;
            }
            let cp = ChunkPlacement {
                chunk,
                caches: current,
                assignment,
                tree_edges,
                costs: set_costs,
            };
            #[cfg(feature = "strict-invariants")]
            crate::strict::check_tree_connectivity(net, &cp);
            let commit_us = clock.lap_us();
            if q + 1 < chunk_count {
                let mut dirty = cp.caches.clone();
                dirty.push(producer);
                let rebuilt = scoped.update(net, &dirty, self.config.parallelism)?;
                if span.is_recording() {
                    span.add_field("blocks_rebuilt", obs::Value::from(rebuilt));
                }
            }
            obs::gauge("planner.contention_bytes").set(scoped.contention_bytes() as i64);
            if span.is_recording() {
                span.add_field("regions_active", obs::Value::from(busy.len()));
                span.add_field("ascent_us", obs::Value::from(ascent_us));
                span.add_field("prune_us", obs::Value::from(prune_us));
                span.add_field("improve_us", obs::Value::from(improve_us));
                span.add_field("commit_us", obs::Value::from(commit_us));
            }
            finish_chunk_span(span, &cp);
            placement.push(cp);
        }
        if scale_span.is_recording() {
            scale_span.add_field(
                "contention_bytes",
                obs::Value::from(scoped.contention_bytes()),
            );
        }
        Ok(placement)
    }
}

/// Runs the dual ascent for every busy region, in parallel, returning
/// the opened facilities per busy-region slot (busy order).
#[allow(clippy::too_many_arguments)]
pub(crate) fn ascend_regions(
    scoped: &ScopedContention,
    facility_cost: &[f64],
    producer: NodeId,
    weights: CostWeights,
    cfg: &ApproxConfig,
    by_region: &[Vec<NodeId>],
    busy: &[usize],
    parallelism: Parallelism,
) -> Result<Vec<Vec<NodeId>>, CoreError> {
    let run = |r: usize| -> Result<Vec<NodeId>, CoreError> {
        let view = RegionView::new(
            scoped,
            facility_cost,
            producer,
            weights,
            r,
            by_region[r].clone(),
        );
        if view.candidates.is_empty() {
            return Ok(Vec::new());
        }
        let (facilities, _) = dual_ascent_scoped(&view, cfg)?;
        Ok(facilities)
    };
    let threads = parallelism.threads(busy.len().max(1));
    let mut slots: Vec<Option<Result<Vec<NodeId>, CoreError>>> =
        (0..busy.len()).map(|_| None).collect();
    if threads <= 1 || busy.len() <= 1 {
        for (slot, &r) in slots.iter_mut().zip(busy) {
            *slot = Some(obs::with_quiet(|| run(r)));
        }
    } else {
        let per = busy.len().div_ceil(threads);
        std::thread::scope(|s| {
            for (chunk, rs) in slots.chunks_mut(per).zip(busy.chunks(per)) {
                let run = &run;
                s.spawn(move || {
                    for (slot, &r) in chunk.iter_mut().zip(rs) {
                        *slot = Some(obs::with_quiet(|| run(r)));
                    }
                });
            }
        });
    }
    let mut out = Vec::with_capacity(busy.len());
    for slot in slots {
        out.push(slot.expect("every region slot is filled")?);
    }
    Ok(out)
}

/// Facilities available to each region's clients: the open facilities
/// inside the region's demand ball (region ∪ halo), sorted.
pub(crate) fn facilities_by_region(
    scoped: &ScopedContention,
    facilities: &[NodeId],
) -> Vec<Vec<NodeId>> {
    (0..scoped.partition().region_count())
        .map(|r| {
            let cols = scoped.region_cols(r);
            facilities
                .iter()
                .copied()
                .filter(|i| cols.binary_search(i).is_ok())
                .collect()
        })
        .collect()
}

/// The cheapest provider for one client among its region's reachable
/// facilities (minus `skip`) and the producer; ties break toward the
/// lower node id, matching the dense assignment.
pub(crate) fn best_provider(
    scoped: &ScopedContention,
    weights: CostWeights,
    producer: NodeId,
    options: &[NodeId],
    j: NodeId,
    skip: Option<NodeId>,
) -> (NodeId, f64) {
    let mut best = (producer, weights.contention * scoped.cost(producer, j));
    for &i in options {
        if Some(i) == skip {
            continue;
        }
        let c = weights.contention * scoped.cost(i, j);
        if c < best.1 || (cost_tie_eq(c, best.1) && i < best.0) {
            best = (i, c);
        }
    }
    best
}

/// Assigns every client and drops unused facilities to a fixpoint.
/// Returns the surviving facilities (sorted), plus per-client providers
/// and access costs in audience order.
pub(crate) fn assign_and_prune(
    scoped: &ScopedContention,
    facility_cost: &[f64],
    producer: NodeId,
    weights: CostWeights,
    audience: &[NodeId],
    mut current: Vec<NodeId>,
) -> (Vec<NodeId>, Vec<NodeId>, Vec<f64>) {
    let _ = facility_cost;
    loop {
        let by_region = facilities_by_region(scoped, &current);
        let mut providers = Vec::with_capacity(audience.len());
        let mut costs = Vec::with_capacity(audience.len());
        for &j in audience {
            let options = &by_region[scoped.partition().region_of(j)];
            let (p, c) = best_provider(scoped, weights, producer, options, j, None);
            providers.push(p);
            costs.push(c);
        }
        let mut used: Vec<NodeId> = providers
            .iter()
            .copied()
            .filter(|&p| p != producer)
            .collect();
        used.sort_unstable();
        used.dedup();
        if used.len() == current.len() {
            return (current, providers, costs);
        }
        current = used;
    }
}

/// The trunk dissemination tree: union of the producer-rooted SPT paths
/// of all facilities. Edges are identified by their child node (each
/// non-root node owns exactly one SPT edge), reported as
/// `(child, parent)` pairs in ascending child order, with the summed
/// edge cost.
pub(crate) fn trunk_tree(
    scoped: &ScopedContention,
    producer: NodeId,
    spt_parent: &[Option<NodeId>],
    facilities: &[NodeId],
) -> (Vec<(NodeId, NodeId)>, f64) {
    let mut on_tree = vec![false; spt_parent.len()];
    for &i in facilities {
        let mut v = i;
        while v != producer && !on_tree[v.index()] {
            on_tree[v.index()] = true;
            v = spt_parent[v.index()].expect("facilities are reachable from the producer");
        }
    }
    let mut edges = Vec::new();
    let mut total = 0.0f64;
    for v in 0..on_tree.len() {
        if on_tree[v] {
            let child = NodeId::new(v);
            let parent = spt_parent[v].expect("tree nodes have SPT parents");
            total += scoped.edge_cost(child, parent);
            edges.push((child, parent));
        }
    }
    (edges, total)
}

/// Reference counts of the trunk edges (keyed by child node) across all
/// facilities' SPT paths.
fn trunk_refcounts(
    producer: NodeId,
    spt_parent: &[Option<NodeId>],
    facilities: &[NodeId],
) -> Vec<u32> {
    let mut refc = vec![0u32; spt_parent.len()];
    for &i in facilities {
        let mut v = i;
        while v != producer {
            refc[v.index()] += 1;
            v = spt_parent[v.index()].expect("facilities are reachable from the producer");
        }
    }
    refc
}

/// Greedy improving-removal over the scoped objective: drop a facility
/// whenever the fairness it frees plus the trunk edges only it holds
/// alive outweigh the access its clients lose. Passes repeat until no
/// removal improves; within a pass candidates are visited in
/// ascending-id order, so the outcome is deterministic.
///
/// The per-region option lists are maintained *incrementally* — a
/// removal deletes the facility from the regions whose demand ball
/// held it, so later candidates in the same pass see the post-removal
/// options without the `O(regions × facilities)` rebuild a restart
/// would cost. Total work is `O(passes × facilities)` candidate
/// evaluations, which is what lets the 100k-node plan finish.
#[allow(clippy::too_many_arguments)]
pub(crate) fn improve_by_scoped_removal(
    scoped: &ScopedContention,
    facility_cost: &[f64],
    producer: NodeId,
    weights: CostWeights,
    audience: &[NodeId],
    spt_parent: &[Option<NodeId>],
    current: &mut Vec<NodeId>,
    providers: &mut [NodeId],
    costs: &mut [f64],
) {
    if current.is_empty() {
        return;
    }
    let m_weight = weights.dissemination;
    let mut refc = trunk_refcounts(producer, spt_parent, current);
    let mut by_region = facilities_by_region(scoped, current);
    // Regions whose demand ball holds each facility (facility order =
    // `current` order, maintained across removals).
    let mut regions_of: Vec<Vec<u32>> = vec![Vec::new(); current.len()];
    for (r, options) in by_region.iter().enumerate() {
        for &i in options {
            let fi = current.binary_search(&i).expect("option is a facility");
            regions_of[fi].push(r as u32);
        }
    }
    // Clients per facility, as audience indices.
    let mut clients_of: Vec<Vec<u32>> = vec![Vec::new(); current.len()];
    for (jx, &p) in providers.iter().enumerate() {
        if p != producer {
            if let Ok(fi) = current.binary_search(&p) {
                clients_of[fi].push(jx as u32);
            }
        }
    }
    loop {
        let mut removed_any = false;
        let mut fi = 0usize;
        while fi < current.len() {
            let i = current[fi];
            // Trunk edges only `i` keeps alive.
            let mut freed_tree = 0.0f64;
            let mut v = i;
            while v != producer {
                if refc[v.index()] == 1 {
                    let parent = spt_parent[v.index()].expect("reachable");
                    freed_tree += scoped.edge_cost(v, parent);
                }
                v = spt_parent[v.index()].expect("reachable");
            }
            // Access its clients would lose, with `i` withdrawn.
            let mut lost_access = 0.0f64;
            let mut moves: Vec<(u32, NodeId, f64)> = Vec::new();
            for &jx in &clients_of[fi] {
                let j = audience[jx as usize];
                let options = &by_region[scoped.partition().region_of(j)];
                let (p, c) = best_provider(scoped, weights, producer, options, j, Some(i));
                lost_access += c - costs[jx as usize];
                moves.push((jx, p, c));
            }
            let delta = lost_access - facility_cost[i.index()] - m_weight * freed_tree;
            if delta < -1e-9 {
                // Apply: retire the trunk path, delist the facility from
                // its regions' option lists, reroute the clients.
                let mut v = i;
                while v != producer {
                    refc[v.index()] -= 1;
                    v = spt_parent[v.index()].expect("reachable");
                }
                for &r in &regions_of[fi] {
                    let options = &mut by_region[r as usize];
                    if let Ok(pos) = options.binary_search(&i) {
                        options.remove(pos);
                    }
                }
                for (jx, p, c) in moves {
                    providers[jx as usize] = p;
                    costs[jx as usize] = c;
                    if p != producer {
                        if let Ok(pi) = current.binary_search(&p) {
                            clients_of[pi].push(jx);
                        }
                    }
                }
                current.remove(fi);
                clients_of.remove(fi);
                regions_of.remove(fi);
                removed_any = true;
                // The element after `i` shifted into slot `fi`; scan on.
            } else {
                fi += 1;
            }
        }
        if !removed_any {
            return;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::approx::ApproxPlanner;
    use crate::costs::ContentionMatrix;
    use crate::planner::plan_on_copy;
    use peercache_graph::builders;

    fn grid_net(side: usize, cap: usize) -> Network {
        Network::new(builders::grid(side, side), NodeId::new(side + 1), cap).unwrap()
    }

    fn small_cfg() -> ScopedConfig {
        ScopedConfig {
            region_max: 12,
            halo_hops: 2,
            landmarks: 4,
            seed: 7,
        }
    }

    #[test]
    fn scoped_cost_is_exact_within_the_halo_radius() {
        let net = grid_net(8, 4);
        let dense = ContentionMatrix::compute(&net, PathSelection::FewestHops).unwrap();
        let scoped = ScopedContention::new(
            &net,
            small_cfg(),
            PathSelection::FewestHops,
            Parallelism::Sequential,
        )
        .unwrap();
        let mut exact_pairs = 0usize;
        for u in net.graph().nodes() {
            for v in net.graph().nodes() {
                if scoped.is_exact(u, v) {
                    exact_pairs += 1;
                    assert_eq!(
                        scoped.cost(u, v).to_bits(),
                        dense.cost(u, v).to_bits(),
                        "exact pair ({u},{v}) diverged from the dense matrix"
                    );
                }
            }
        }
        assert!(exact_pairs > net.node_count() * 5, "halo too thin");
        // Every pair within the halo radius must be exact.
        for u in net.graph().nodes() {
            for v in net.graph().nodes() {
                if dense.hops(u, v).is_some_and(|h| h <= 2) {
                    assert!(scoped.is_exact(u, v), "({u},{v}) within k not exact");
                }
            }
        }
    }

    #[test]
    fn scoped_cost_is_symmetric_and_finite_on_connected_graphs() {
        let net = grid_net(7, 4);
        let scoped = ScopedContention::new(
            &net,
            small_cfg(),
            PathSelection::FewestHops,
            Parallelism::Sequential,
        )
        .unwrap();
        for u in net.graph().nodes() {
            for v in net.graph().nodes() {
                let a = scoped.cost(u, v);
                let b = scoped.cost(v, u);
                assert_eq!(a.to_bits(), b.to_bits(), "asymmetric ({u},{v})");
                assert!(a.is_finite());
            }
        }
    }

    #[test]
    fn update_matches_fresh_rebuild() {
        let mut net = grid_net(6, 4);
        let mut scoped = ScopedContention::new(
            &net,
            small_cfg(),
            PathSelection::FewestHops,
            Parallelism::Sequential,
        )
        .unwrap();
        net.cache(NodeId::new(3), ChunkId::new(0)).unwrap();
        net.cache(NodeId::new(20), ChunkId::new(0)).unwrap();
        let dirty = [NodeId::new(3), NodeId::new(20), net.producer()];
        let rebuilt = scoped
            .update(&net, &dirty, Parallelism::Sequential)
            .unwrap();
        assert!(rebuilt > 0);
        let fresh = ScopedContention::new(
            &net,
            small_cfg(),
            PathSelection::FewestHops,
            Parallelism::Sequential,
        )
        .unwrap();
        for u in net.graph().nodes() {
            for v in net.graph().nodes() {
                assert_eq!(
                    scoped.cost(u, v).to_bits(),
                    fresh.cost(u, v).to_bits(),
                    "updated store diverged at ({u},{v})"
                );
            }
        }
    }

    #[test]
    fn update_with_no_changes_rebuilds_nothing() {
        let net = grid_net(5, 4);
        let mut scoped = ScopedContention::new(
            &net,
            small_cfg(),
            PathSelection::FewestHops,
            Parallelism::Sequential,
        )
        .unwrap();
        let rebuilt = scoped.update(&net, &[], Parallelism::Sequential).unwrap();
        assert_eq!(rebuilt, 0);
    }

    #[test]
    fn update_topology_matches_scratch_rebuild_of_retained_partition() {
        let mut net = grid_net(6, 4);
        let cfg = small_cfg();
        let mut scoped = ScopedContention::new(
            &net,
            cfg,
            PathSelection::FewestHops,
            Parallelism::Sequential,
        )
        .unwrap();
        // One link down, one shortcut up, one corner departure — every
        // touched node's degree (hence term) changes, which is what the
        // invalidation rides on.
        let mut touched = vec![NodeId::new(0), NodeId::new(1)];
        assert!(net.remove_link(NodeId::new(0), NodeId::new(1)).unwrap());
        assert!(net.add_link(NodeId::new(2), NodeId::new(14)).unwrap());
        touched.extend([NodeId::new(2), NodeId::new(14)]);
        let dep = net.deactivate_node(NodeId::new(35)).unwrap();
        touched.push(NodeId::new(35));
        touched.extend(dep.former_neighbors);
        touched.push(net.producer());
        touched.sort_unstable();
        touched.dedup();
        let rebuilt = scoped
            .update_topology(&net, &touched, Parallelism::Sequential)
            .unwrap();
        assert!(rebuilt > 0, "topology churn must invalidate blocks");
        // Every block must now equal a from-scratch build over the
        // *retained* partition, bitwise.
        let terms = node_contention_terms(&net);
        let all: Vec<usize> = (0..scoped.partition().region_count()).collect();
        let fresh = build_blocks(
            &net,
            scoped.partition(),
            &terms,
            cfg.halo_hops,
            PathSelection::FewestHops,
            Parallelism::Sequential,
            &all,
        )
        .unwrap();
        for (r, b) in fresh {
            assert_eq!(scoped.blocks[r].cols, b.cols, "block {r} cols drifted");
            assert_eq!(scoped.blocks[r].hops, b.hops, "block {r} hops drifted");
            assert!(
                scoped.blocks[r]
                    .cost
                    .iter()
                    .zip(&b.cost)
                    .all(|(x, y)| x.to_bits() == y.to_bits()),
                "block {r} costs drifted"
            );
        }
        // A grown graph cannot be absorbed: the partition has no region
        // for the newcomer, so the call must refuse and demand a rebuild.
        net.join_node(&[NodeId::new(2)], 3).unwrap();
        assert!(matches!(
            scoped.update_topology(&net, &[], Parallelism::Sequential),
            Err(CoreError::InvalidParameter(_))
        ));
    }

    #[test]
    fn parallel_build_matches_sequential() {
        let net = grid_net(8, 4);
        let seq = ScopedContention::new(
            &net,
            small_cfg(),
            PathSelection::FewestHops,
            Parallelism::Sequential,
        )
        .unwrap();
        let par = ScopedContention::new(
            &net,
            small_cfg(),
            PathSelection::FewestHops,
            Parallelism::Threads(4),
        )
        .unwrap();
        for u in net.graph().nodes() {
            for v in net.graph().nodes() {
                assert_eq!(seq.cost(u, v).to_bits(), par.cost(u, v).to_bits());
            }
        }
    }

    #[test]
    fn state_stays_far_below_dense_equivalent() {
        let net = grid_net(20, 4); // 400 nodes
        let scoped = ScopedContention::new(
            &net,
            ScopedConfig {
                region_max: 32,
                ..ScopedConfig::default()
            },
            PathSelection::FewestHops,
            Parallelism::Sequential,
        )
        .unwrap();
        let dense = ScopedContention::dense_equivalent_bytes(net.node_count());
        assert!(
            scoped.contention_bytes() * 4 < dense,
            "scoped state {} not well below dense {}",
            scoped.contention_bytes(),
            dense
        );
    }

    #[test]
    fn region_view_restricts_candidates_to_the_region() {
        let net = grid_net(6, 4);
        let scoped = ScopedContention::new(
            &net,
            small_cfg(),
            PathSelection::FewestHops,
            Parallelism::Sequential,
        )
        .unwrap();
        let fc = ConflInstance::facility_costs(&net, CostWeights::default());
        let view = RegionView::new(
            &scoped,
            &fc,
            net.producer(),
            CostWeights::default(),
            0,
            scoped.partition().region(0).to_vec(),
        );
        for c in view.candidates() {
            assert_eq!(scoped.partition().region_of(c), 0);
            assert_ne!(c, net.producer());
        }
        assert_eq!(view.node_count(), net.node_count());
    }

    #[test]
    fn hierarchical_planner_places_all_chunks_respecting_capacity() {
        let mut net = grid_net(8, 3);
        let planner = HierarchicalPlanner::new(ApproxConfig::default(), small_cfg());
        let placement = planner.plan(&mut net, 3).unwrap();
        assert_eq!(placement.chunks().len(), 3);
        for n in net.graph().nodes() {
            assert!(net.used(n) <= net.capacity(n));
        }
        for cp in placement.chunks() {
            for &c in &cp.caches {
                assert!(net.is_cached(c, cp.chunk));
            }
            assert_eq!(cp.assignment.len(), net.node_count() - 1);
            assert!(cp.costs.total().is_finite());
        }
    }

    #[test]
    fn hierarchical_planner_is_deterministic_across_runs_and_threads() {
        let net = grid_net(8, 3);
        let mk = |par| {
            let planner = HierarchicalPlanner::new(
                ApproxConfig {
                    parallelism: par,
                    ..Default::default()
                },
                small_cfg(),
            );
            plan_on_copy(&planner, &net, 3).unwrap().0
        };
        let a = mk(Parallelism::Sequential);
        let b = mk(Parallelism::Threads(4));
        assert_eq!(a.chunks().len(), b.chunks().len());
        for (x, y) in a.chunks().iter().zip(b.chunks()) {
            assert_eq!(x.caches, y.caches);
            assert_eq!(x.assignment, y.assignment);
            assert_eq!(x.tree_edges, y.tree_edges);
            assert_eq!(x.costs.total().to_bits(), y.costs.total().to_bits());
        }
    }

    #[test]
    fn hierarchical_plan_stays_near_the_dense_appx_plan() {
        // The quality gate in miniature (the full seeded suite lives in
        // tests/scale_planner.rs): on a 10x10 grid with forced
        // multi-region decomposition the hierarchical total must stay
        // within 10% of the exact-matrix Appx total.
        let net = grid_net(10, 4);
        let (dense, _) = plan_on_copy(&ApproxPlanner::default(), &net, 4).unwrap();
        let planner = HierarchicalPlanner::new(
            ApproxConfig::default(),
            ScopedConfig {
                region_max: 32,
                ..ScopedConfig::default()
            },
        );
        let (hier, _) = plan_on_copy(&planner, &net, 4).unwrap();
        let dense_total: f64 = dense.chunks().iter().map(|c| c.costs.total()).sum();
        let hier_total: f64 = hier.chunks().iter().map(|c| c.costs.total()).sum();
        assert!(
            hier_total <= dense_total * 1.10,
            "hierarchical total {hier_total} exceeds 1.10x dense {dense_total}"
        );
    }

    #[test]
    fn trunk_tree_connects_every_facility_to_the_producer() {
        let net = grid_net(6, 4);
        let scoped = ScopedContention::new(
            &net,
            small_cfg(),
            PathSelection::FewestHops,
            Parallelism::Sequential,
        )
        .unwrap();
        let producer = net.producer();
        let (_, parent) =
            dijkstra_edge_weighted(net.graph(), producer, |u, v| scoped.edge_cost(u, v));
        let facilities = [NodeId::new(0), NodeId::new(35), NodeId::new(17)];
        let (edges, cost) = trunk_tree(&scoped, producer, &parent, &facilities);
        assert!(cost > 0.0);
        // Union-find over the reported edges: every facility must reach
        // the producer.
        let n = net.node_count();
        let mut root: Vec<usize> = (0..n).collect();
        fn find(root: &mut [usize], x: usize) -> usize {
            let mut x = x;
            while root[x] != x {
                root[x] = root[root[x]];
                x = root[x];
            }
            x
        }
        for &(a, b) in &edges {
            let (ra, rb) = (find(&mut root, a.index()), find(&mut root, b.index()));
            root[ra] = rb;
        }
        let rp = find(&mut root, producer.index());
        for &f in &facilities {
            assert_eq!(find(&mut root, f.index()), rp, "{f} disconnected");
        }
    }
}
