//! The region-sharded world: [`CacheWorld`](crate::CacheWorld)'s
//! churn semantics re-hosted on shard-local state with deterministic
//! cross-shard event routing — the concurrency refactor every later
//! throughput number stands on.
//!
//! # Architecture
//!
//! Shard `r` *is* region `r` of the scoped store's
//! [`RegionPartition`](peercache_graph::regions::RegionPartition):
//! every node is homed in exactly one shard, and all of its placement
//! rows live in that shard's [`PlacementArena`](crate::shard::PlacementArena). A tick consumes a
//! batch of [`WorldEvent`]s through a fixed pipeline:
//!
//! 1. **Structural edits** — serial, in input order (joins, departures,
//!    link flips, retirements). Per-event rejections (e.g. a departure
//!    the Reject partition policy refuses) are counted, not fatal.
//! 2. **Scoped refresh** — [`ScopedContention::update_topology`]
//!    rebuilds exactly the stale blocks, fanned out over the
//!    configured [`Parallelism`]; a join (new node id) forces a full
//!    partition + shard rebuild instead.
//! 3. **Churn repair** — replacement-copy and orphan-reassignment
//!    *proposals* are computed in parallel against the frozen post-
//!    refresh state (slot-array fan-out, one pure task per item), then
//!    merged serially in ascending item order with capacity re-checks.
//! 4. **Arrivals** — each new chunk runs the hierarchical planning
//!    pipeline (per-region dual ascent fans out in parallel inside
//!    `ascend_regions`).
//! 5. **Tree rebuild** — one producer-rooted SPT refreshes every live
//!    chunk's trunk dissemination tree.
//! 6. **Telemetry + oracles** — per-shard gauges, the tick span, and
//!    (under `strict-invariants`) a full self-audit.
//!
//! # Determinism
//!
//! Every parallel stage computes proposals into pre-indexed slots and
//! is merged in a fixed order; cross-shard effects travel only through
//! the [`ShardRouter`] and are drained in ascending `(shard, seq)`
//! order at fixed pipeline points. No stage reads ambient time, thread
//! ids, or iteration order of unordered containers, so **any thread
//! count produces bit-for-bit the same state** — `state_digest` and
//! the span count are replay-stable across `Parallelism` settings, and
//! the determinism suite (`tests/shard_world.rs`) pins exactly that.

use std::collections::BTreeMap;

use peercache_graph::paths::{dijkstra_edge_weighted, Parallelism};
use peercache_graph::regions::splitmix64;
use peercache_graph::NodeId;
use peercache_obs as obs;

use crate::approx::ApproxConfig;
use crate::costs::CostWeights;
use crate::instance::ConflInstance;
use crate::instance::SetCosts;
use crate::placement::ChunkPlacement;
use crate::planner::{chunk_span, finish_chunk_span};
use crate::replication::top_up_targets;
use crate::scoped::{
    ascend_regions, assign_and_prune, best_provider, facilities_by_region,
    improve_by_scoped_removal, trunk_tree, ScopedConfig, ScopedContention,
};
use crate::shard::{ArenaRow, CrossShardEvent, ShardRouter, WorldShard};
use crate::world::WorldEvent;
use crate::{ChunkId, CoreError, Network, PartitionPolicy};

/// Configuration of a [`ShardedWorld`]: the planning parameters shared
/// with the dense pipeline plus the scoped-store geometry. The thread
/// budget of every parallel stage is `approx.parallelism`.
#[derive(Debug, Clone, Default)]
pub struct ShardConfig {
    /// Dual-ascent parameters, cost weights, and the `Parallelism`
    /// budget shared by every fan-out stage.
    pub approx: ApproxConfig,
    /// Region/halo geometry of the scoped store (and therefore of the
    /// shards themselves).
    pub scoped: ScopedConfig,
}

/// A live chunk's shard-world record. Per-client assignment rows live
/// in the shards' arenas, not here.
#[derive(Debug, Clone, PartialEq)]
pub struct ShardChunk {
    /// Nodes caching the chunk, sorted ascending.
    pub caches: Vec<NodeId>,
    /// Trunk dissemination tree as `(child, parent)` pairs, ascending
    /// child order.
    pub tree_edges: Vec<(NodeId, NodeId)>,
    /// Summed edge cost of the trunk tree (unweighted; multiply by the
    /// dissemination weight for the objective term).
    pub tree_cost: f64,
}

/// What one [`ShardedWorld::tick`] did.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct TickReport {
    /// 1-based tick index.
    pub tick: u64,
    /// Chunks placed this tick, in arrival order.
    pub placed: Vec<ChunkId>,
    /// Chunks retired this tick (explicit retirements and retention
    /// evictions), in retirement order.
    pub retired: Vec<ChunkId>,
    /// Nodes that departed this tick, in input order.
    pub departed: Vec<NodeId>,
    /// Nodes that joined this tick, in input order.
    pub joined: Vec<NodeId>,
    /// Events rejected by the model (unknown chunk, refused departure,
    /// bad link) — counted, not fatal.
    pub rejected: usize,
    /// Links added / removed this tick.
    pub links_added: usize,
    /// Links removed this tick.
    pub links_removed: usize,
    /// Replacement copies committed by churn repair, as
    /// `(chunk, new holder)` in commit order.
    pub copies_restored: Vec<(ChunkId, NodeId)>,
    /// Orphaned placement rows re-pointed at a surviving provider.
    pub orphans_reassigned: usize,
    /// Cross-shard events routed during this tick.
    pub cross_events: u64,
    /// Whether a join forced a full partition + shard rebuild.
    pub shards_rebuilt: bool,
}

/// One departure's bookkeeping carried from the structural phase to
/// the repair phase.
#[derive(Debug, Clone)]
struct DepartureRec {
    node: NodeId,
    lost: Vec<ChunkId>,
}

/// The region-sharded cache world. See the module docs for the
/// pipeline and the determinism contract.
#[derive(Debug)]
pub struct ShardedWorld {
    net: Network,
    cfg: ShardConfig,
    scoped: ScopedContention,
    shards: Vec<WorldShard>,
    /// Home shard per node id (parallel to the node table).
    shard_of: Vec<u32>,
    router: ShardRouter,
    chunks: BTreeMap<ChunkId, ShardChunk>,
    next_chunk: usize,
    retention: Option<usize>,
    ticks: u64,
    events_applied: u64,
    events_rejected: u64,
    /// Deterministic count of spans this world has emitted (one per
    /// tick plus one per placed chunk), maintained whether or not a
    /// sink is attached — the replay suites compare it across thread
    /// counts.
    span_count: u64,
    /// High-water inbox depth observed at the most recent drain.
    max_queue_depth: usize,
}

impl ShardedWorld {
    /// Creates a sharded world over `net`.
    ///
    /// # Errors
    ///
    /// * [`CoreError::InvalidParameter`] for invalid planning
    ///   parameters or a partition-tolerant (`Allow` policy) network —
    ///   the sharded pipeline requires the active set to stay
    ///   connected (trunk trees are producer-rooted).
    /// * [`CoreError::Graph`] from the scoped-store build.
    pub fn new(net: Network, cfg: ShardConfig) -> Result<Self, CoreError> {
        cfg.approx.validate()?;
        if net.partition_policy() != PartitionPolicy::Reject {
            return Err(CoreError::InvalidParameter(
                "ShardedWorld requires PartitionPolicy::Reject (connected active set)".into(),
            ));
        }
        let scoped = ScopedContention::new(
            &net,
            cfg.scoped,
            cfg.approx.selection,
            cfg.approx.parallelism,
        )?;
        let (shards, shard_of) = shards_of(&scoped);
        obs::gauge("world.shard_count").set(shards.len() as i64);
        Ok(ShardedWorld {
            net,
            cfg,
            scoped,
            shards,
            shard_of,
            router: ShardRouter::new(),
            chunks: BTreeMap::new(),
            next_chunk: 0,
            retention: None,
            ticks: 0,
            events_applied: 0,
            events_rejected: 0,
            span_count: 0,
            max_queue_depth: 0,
        })
    }

    /// Adopts an already-populated network (a dense
    /// [`CacheWorld`](crate::CacheWorld)'s end state): existing copies
    /// stay where they are, every interested client is re-assigned
    /// under the scoped provider rule, and the trunk trees are rebuilt
    /// over the scoped edge costs. Reached through
    /// [`CacheWorld::into_sharded`](crate::CacheWorld::into_sharded).
    pub(crate) fn adopt(
        net: Network,
        cfg: ShardConfig,
        live: Vec<ChunkId>,
        next_chunk: usize,
        retention: Option<usize>,
    ) -> Result<Self, CoreError> {
        let mut world = ShardedWorld::new(net, cfg)?;
        world.next_chunk = next_chunk;
        world.retention = retention;
        let producer = world.net.producer();
        let w = world.weights();
        for chunk in live {
            let caches = world.net.holders(chunk);
            for &holder in &caches {
                let home = world.shard_of[holder.index()] as usize;
                world.shards[home].arena_mut().pin_replica(holder);
            }
            for j in world.net.interested_clients(chunk) {
                let r = world.scoped.partition().region_of(j);
                let options: Vec<NodeId> = caches
                    .iter()
                    .copied()
                    .filter(|i| world.scoped.region_cols(r).binary_search(i).is_ok())
                    .collect();
                let (p, c) = best_provider(&world.scoped, w, producer, &options, j, None);
                let home = world.shard_of[j.index()] as usize;
                world.shards[home].arena_mut().set(j, chunk, p, c.to_bits());
            }
            world.chunks.insert(
                chunk,
                ShardChunk {
                    caches,
                    tree_edges: Vec::new(),
                    tree_cost: 0.0,
                },
            );
        }
        world.rebuild_trees();
        Ok(world)
    }

    /// Keep at most `chunks` live chunks; the oldest is retired before
    /// a new arrival is placed once the cap is reached.
    #[must_use]
    pub fn with_retention(mut self, chunks: usize) -> Self {
        self.retention = Some(chunks.max(1));
        self
    }

    /// The current network state.
    pub fn network(&self) -> &Network {
        &self.net
    }

    /// The configuration.
    pub fn config(&self) -> &ShardConfig {
        &self.cfg
    }

    /// The scoped contention store the shards plan over.
    pub fn scoped(&self) -> &ScopedContention {
        &self.scoped
    }

    /// The shards, in region order.
    pub fn shards(&self) -> &[WorldShard] {
        &self.shards
    }

    /// Number of shards (== regions of the current partition).
    pub fn shard_count(&self) -> usize {
        self.shards.len()
    }

    /// The home shard of `node`.
    ///
    /// # Panics
    ///
    /// Panics if `node` is out of bounds.
    pub fn shard_of(&self, node: NodeId) -> usize {
        self.shard_of[node.index()] as usize
    }

    /// Live chunk ids, ascending (== arrival order).
    pub fn live_chunks(&self) -> Vec<ChunkId> {
        self.chunks.keys().copied().collect()
    }

    /// A live chunk's record.
    pub fn chunk(&self, chunk: ChunkId) -> Option<&ShardChunk> {
        self.chunks.get(&chunk)
    }

    /// Ticks processed so far.
    pub fn ticks(&self) -> u64 {
        self.ticks
    }

    /// Events applied (accepted) over the world's lifetime.
    pub fn events_applied(&self) -> u64 {
        self.events_applied
    }

    /// Events rejected over the world's lifetime.
    pub fn events_rejected(&self) -> u64 {
        self.events_rejected
    }

    /// Cross-shard events routed over the world's lifetime.
    pub fn cross_shard_events(&self) -> u64 {
        self.router.total_routed()
    }

    /// Deterministic span count (one per tick, one per placed chunk),
    /// identical across thread counts for the same event trace.
    pub fn span_count(&self) -> u64 {
        self.span_count
    }

    fn parallelism(&self) -> Parallelism {
        self.cfg.approx.parallelism
    }

    fn weights(&self) -> CostWeights {
        self.cfg.approx.weights
    }

    /// Reconstructs a [`ChunkPlacement`] view of one live chunk from
    /// the shard state (assignment rows gathered from the arenas in
    /// client order).
    pub fn placement(&self, chunk: ChunkId) -> Option<ChunkPlacement> {
        let sc = self.chunks.get(&chunk)?;
        let mut assignment: Vec<(NodeId, NodeId)> = Vec::new();
        let mut access = 0.0f64;
        for shard in &self.shards {
            for row in shard.arena().rows() {
                if row.chunk == chunk {
                    assignment.push((row.client, row.provider));
                    access += f64::from_bits(row.cost_bits);
                }
            }
        }
        assignment.sort_unstable_by_key(|&(j, _)| j);
        let w = self.weights();
        let fairness: f64 = sc
            .caches
            .iter()
            .map(|&i| self.net.fairness_cost(i) * w.fairness)
            .sum();
        Some(ChunkPlacement {
            chunk,
            caches: sc.caches.clone(),
            assignment,
            tree_edges: sc.tree_edges.clone(),
            costs: SetCosts {
                fairness,
                access,
                dissemination: w.dissemination * sc.tree_cost,
            },
        })
    }

    /// Applies one event (convenience wrapper over a one-event
    /// [`ShardedWorld::tick`]).
    ///
    /// # Errors
    ///
    /// Propagates planning/storage errors; model-level rejections are
    /// reported in the [`TickReport`], not as errors.
    pub fn apply(&mut self, event: WorldEvent) -> Result<TickReport, CoreError> {
        self.tick(&[event])
    }

    /// Processes one batch of events through the sharded pipeline (see
    /// the module docs). Events that the model refuses (retiring an
    /// unknown chunk, a departure the Reject policy blocks, a link on
    /// an inactive node) are *counted* in [`TickReport::rejected`] and
    /// skipped; the tick itself still succeeds.
    ///
    /// # Errors
    ///
    /// Propagates internal planning/storage failures (which indicate a
    /// bug, not a bad event).
    pub fn tick(&mut self, events: &[WorldEvent]) -> Result<TickReport, CoreError> {
        self.ticks += 1;
        let mut span = obs::span!("world.tick", tick = self.ticks, events = events.len());
        self.span_count += 1;
        let mut report = TickReport {
            tick: self.ticks,
            ..TickReport::default()
        };
        let mut touched: Vec<NodeId> = Vec::new();
        let mut departures: Vec<DepartureRec> = Vec::new();
        let mut arrivals = 0usize;
        let routed_before = self.router.total_routed();

        // Phase 1: structural edits, serial in input order.
        for ev in events {
            match ev {
                WorldEvent::ChunkArrived => arrivals += 1,
                WorldEvent::ChunkRetired(chunk) => {
                    if self.chunks.contains_key(chunk) {
                        self.retire(*chunk, &mut touched, &mut report);
                    } else {
                        report.rejected += 1;
                    }
                }
                WorldEvent::NodeJoined {
                    neighbors,
                    capacity,
                } => match self.net.join_node(neighbors, *capacity) {
                    Ok(node) => report.joined.push(node),
                    Err(_) => report.rejected += 1,
                },
                WorldEvent::NodeDeparted(node) => match self.net.deactivate_node(*node) {
                    Ok(dep) => {
                        touched.push(*node);
                        touched.extend_from_slice(&dep.former_neighbors);
                        for &c in &dep.lost_chunks {
                            if let Some(sc) = self.chunks.get_mut(&c) {
                                if let Ok(at) = sc.caches.binary_search(node) {
                                    sc.caches.remove(at);
                                }
                            }
                        }
                        let home = self.shard_of[node.index()] as usize;
                        self.shards[home].arena_mut().clear_replicas(*node);
                        report.departed.push(*node);
                        departures.push(DepartureRec {
                            node: *node,
                            lost: dep.lost_chunks,
                        });
                    }
                    Err(_) => report.rejected += 1,
                },
                WorldEvent::LinkUp(u, v) => match self.net.add_link(*u, *v) {
                    Ok(true) => {
                        touched.extend([*u, *v]);
                        self.route_halo_link(*u, *v, true);
                        report.links_added += 1;
                    }
                    Ok(false) => {}
                    Err(_) => report.rejected += 1,
                },
                WorldEvent::LinkDown(u, v) => match self.net.remove_link(*u, *v) {
                    Ok(true) => {
                        touched.extend([*u, *v]);
                        self.route_halo_link(*u, *v, false);
                        report.links_removed += 1;
                    }
                    Ok(false) => {}
                    Err(_) => report.rejected += 1,
                },
            }
        }
        self.drain_cross();

        // Phase 2: scoped-store refresh. A join grows the node table,
        // which the retained partition cannot absorb — rebuild the
        // partition, the shards, and every arena under the new homes.
        if !report.joined.is_empty() {
            self.rebuild_after_join(&report.joined)?;
            report.shards_rebuilt = true;
            self.drain_cross();
        } else if !touched.is_empty() {
            touched.push(self.net.producer());
            touched.sort_unstable();
            touched.dedup();
            self.scoped
                .update_topology(&self.net, &touched, self.parallelism())?;
        }

        // Phase 3: churn repair (parallel proposals, serial merge).
        if !departures.is_empty() {
            self.repair(&departures, &mut report)?;
            self.drain_cross();
        }

        // Phase 4: arrivals.
        for _ in 0..arrivals {
            let placed = self.place_next_chunk(&mut report)?;
            report.placed.push(placed);
        }
        self.drain_cross();

        // Phase 5: one SPT refreshes every live trunk tree after any
        // state change (cheap: live chunks are bounded by retention).
        let dirty_tick = !touched.is_empty()
            || report.shards_rebuilt
            || !report.retired.is_empty()
            || !report.copies_restored.is_empty()
            || !report.placed.is_empty();
        if dirty_tick {
            self.rebuild_trees();
        }

        // Phase 6: telemetry and oracles.
        let applied = events.len() - report.rejected;
        self.events_applied += applied as u64;
        self.events_rejected += report.rejected as u64;
        report.cross_events = self.router.total_routed() - routed_before;
        obs::gauge("world.shard_count").set(self.shards.len() as i64);
        obs::counter("world.cross_shard_events").add(report.cross_events);
        let replicas: usize = self.chunks.values().map(|sc| sc.caches.len()).sum();
        obs::gauge("world.replicas").set(replicas as i64);
        obs::gauge("shard.queue_depth").set(self.max_queue_depth as i64);
        self.max_queue_depth = 0;
        if span.is_recording() {
            span.add_field("applied", obs::Value::from(applied));
            span.add_field("rejected", obs::Value::from(report.rejected));
            span.add_field("cross_events", obs::Value::from(report.cross_events));
        }
        drop(span);
        #[cfg(feature = "strict-invariants")]
        self.strict_check();
        Ok(report)
    }

    /// Routes the halo-link notification to both endpoint shards when
    /// the link crosses a shard boundary.
    fn route_halo_link(&mut self, u: NodeId, v: NodeId, up: bool) {
        let (su, sv) = (self.shard_of[u.index()], self.shard_of[v.index()]);
        if su != sv {
            self.router.send(su, CrossShardEvent::HaloLink { u, v, up });
            self.router.send(sv, CrossShardEvent::HaloLink { u, v, up });
        }
    }

    /// Retires `chunk`: evicts every copy, drops all assignment rows.
    /// The producer's home shard owns chunk lifecycle; rows elsewhere
    /// are dropped through routed [`CrossShardEvent::Retire`] events.
    fn retire(&mut self, chunk: ChunkId, touched: &mut Vec<NodeId>, report: &mut TickReport) {
        let Some(sc) = self.chunks.remove(&chunk) else {
            return;
        };
        for &holder in &sc.caches {
            self.net.uncache(holder, chunk);
            let home = self.shard_of[holder.index()] as usize;
            self.shards[home].arena_mut().unpin_replica(holder);
            touched.push(holder);
        }
        let owner = self.shard_of[self.net.producer().index()];
        for s in 0..self.shards.len() as u32 {
            if s == owner {
                self.shards[s as usize].arena_mut().remove_chunk(chunk);
            } else {
                self.router.send(s, CrossShardEvent::Retire { chunk });
            }
        }
        report.retired.push(chunk);
    }

    /// Delivers pending router traffic and drains every inbox in
    /// ascending shard order, tracking the high-water queue depth.
    fn drain_cross(&mut self) {
        if self.router.pending() == 0 {
            return;
        }
        self.router.flush(&mut self.shards);
        for shard in &mut self.shards {
            self.max_queue_depth = self.max_queue_depth.max(shard.queue_depth());
            shard.drain_inbox();
        }
    }

    /// Full rebuild after a join: the node table grew, so the
    /// partition, the shards, and every arena row are re-homed; the
    /// newcomers get assignment rows for every live chunk.
    fn rebuild_after_join(&mut self, joined: &[NodeId]) -> Result<(), CoreError> {
        self.scoped = ScopedContention::new(
            &self.net,
            self.cfg.scoped,
            self.cfg.approx.selection,
            self.parallelism(),
        )?;
        // Carry every live row across the re-homing. Clients are unique
        // across shards, so concatenation in shard order is a
        // deterministic, disjoint union.
        let mut rows: Vec<ArenaRow> = Vec::new();
        for shard in &self.shards {
            rows.extend(shard.arena().rows());
        }
        let (shards, shard_of) = shards_of(&self.scoped);
        self.shards = shards;
        self.shard_of = shard_of;
        for row in rows {
            let home = self.shard_of[row.client.index()] as usize;
            self.shards[home]
                .arena_mut()
                .set(row.client, row.chunk, row.provider, row.cost_bits);
        }
        // The fresh arenas start with zero replica pins; re-pin every
        // live copy under the new homes.
        for sc in self.chunks.values() {
            for &holder in &sc.caches {
                let home = self.shard_of[holder.index()] as usize;
                self.shards[home].arena_mut().pin_replica(holder);
            }
        }
        // Adoption notices + rows for the newcomers' demand. The
        // newcomer's home shard owns the adoption; its rows are local
        // writes there.
        let w = self.weights();
        let producer = self.net.producer();
        for &node in joined {
            let home = self.shard_of[node.index()];
            self.router.send(home, CrossShardEvent::Adopt { node });
        }
        let live: Vec<ChunkId> = self.chunks.keys().copied().collect();
        for chunk in live {
            let caches = self.chunks[&chunk].caches.clone();
            for &node in joined {
                if !self.net.is_interested(node, chunk) {
                    continue;
                }
                let r = self.scoped.partition().region_of(node);
                let options: Vec<NodeId> = caches
                    .iter()
                    .copied()
                    .filter(|i| self.scoped.region_cols(r).binary_search(i).is_ok())
                    .collect();
                let (p, c) = best_provider(&self.scoped, w, producer, &options, node, None);
                let home = self.shard_of[node.index()] as usize;
                self.shards[home]
                    .arena_mut()
                    .set(node, chunk, p, c.to_bits());
            }
        }
        Ok(())
    }

    /// Churn repair: replacement-copy proposals per lost chunk and
    /// reassignment proposals per orphaned row, both computed in
    /// parallel against frozen state and merged serially.
    fn repair(
        &mut self,
        departures: &[DepartureRec],
        report: &mut TickReport,
    ) -> Result<(), CoreError> {
        let producer = self.net.producer();
        let w = self.weights();
        let mut gone: Vec<NodeId> = departures.iter().map(|d| d.node).collect();
        gone.sort_unstable();
        gone.dedup();

        // (a) Orphan collection: rows whose provider departed, scanned
        // in shard/slot order; rows *of* departed clients are cleared
        // outright (their demand vanished with them).
        let mut orphans: BTreeMap<ChunkId, Vec<(NodeId, NodeId)>> = BTreeMap::new();
        for shard in &self.shards {
            for row in shard.arena().rows() {
                if gone.binary_search(&row.client).is_ok() {
                    continue;
                }
                if gone.binary_search(&row.provider).is_ok() {
                    orphans
                        .entry(row.chunk)
                        .or_default()
                        .push((row.client, row.provider));
                }
            }
        }
        for &d in &gone {
            let home = self.shard_of[d.index()] as usize;
            self.shards[home].arena_mut().clear_client(d);
        }

        // (b) Replacement-copy proposals: one per live chunk that lost
        // a copy *and* has orphaned demand. The candidate scope is the
        // union of the orphans' region balls (demand-side locality);
        // the score is the facility cost plus the orphans' access —
        // pure reads of frozen state, so the fan-out is safe.
        let lost: Vec<ChunkId> = {
            let mut lost: Vec<ChunkId> = departures
                .iter()
                .flat_map(|d| d.lost.iter().copied())
                .filter(|c| self.chunks.contains_key(c) && orphans.contains_key(c))
                .collect();
            lost.sort_unstable();
            lost.dedup();
            lost
        };
        let fc = ConflInstance::facility_costs(&self.net, w);
        let propose = |chunk: ChunkId| -> Option<NodeId> {
            let js: Vec<NodeId> = orphans[&chunk]
                .iter()
                .map(|&(j, _)| j)
                .filter(|&j| self.net.is_active(j))
                .collect();
            let mut candidates: Vec<NodeId> = Vec::new();
            for &j in &js {
                let r = self.scoped.partition().region_of(j);
                candidates.extend_from_slice(self.scoped.region_cols(r));
            }
            candidates.sort_unstable();
            candidates.dedup();
            let mut best: Option<(f64, NodeId)> = None;
            for &i in &candidates {
                if !fc[i.index()].is_finite() || self.net.is_cached(i, chunk) {
                    continue;
                }
                let score = fc[i.index()]
                    + js.iter()
                        .map(|&j| w.contention * self.scoped.cost(i, j))
                        .sum::<f64>();
                let better = match best {
                    None => true,
                    Some((b, bi)) => score < b || (crate::costs::cost_tie_eq(score, b) && i < bi),
                };
                if better {
                    best = Some((score, i));
                }
            }
            best.map(|(_, i)| i)
        };
        let proposals = fan_out(&lost, self.parallelism(), |&chunk| propose(chunk));

        // (c) Serial merge in chunk order: re-check capacity (an
        // earlier chunk's commit may have taken the last slot), commit
        // the copy, and route the remote-copy notice when the new
        // holder is homed outside the deciding shard (the lowest
        // orphan's home — the demand representative).
        let mut dirty: Vec<NodeId> = Vec::new();
        for (&chunk, candidate) in lost.iter().zip(&proposals) {
            let Some(i) = candidate else { continue };
            if self.net.remaining(*i) == 0 || self.net.is_cached(*i, chunk) {
                continue;
            }
            self.net.cache(*i, chunk)?;
            if let Some(sc) = self.chunks.get_mut(&chunk) {
                if let Err(at) = sc.caches.binary_search(i) {
                    sc.caches.insert(at, *i);
                }
            }
            let home = self.shard_of[i.index()] as usize;
            self.shards[home].arena_mut().pin_replica(*i);
            dirty.push(*i);
            report.copies_restored.push((chunk, *i));
            let decider = orphans[&chunk]
                .iter()
                .map(|&(j, _)| self.shard_of[j.index()])
                .min()
                .unwrap_or(self.shard_of[producer.index()]);
            let holder_home = self.shard_of[i.index()];
            if holder_home != decider {
                self.router
                    .send(holder_home, CrossShardEvent::RemoteCopy { chunk, node: *i });
            }
        }
        // (c2) R-copy refill, serial in chunk order (a no-op for the
        // default single-copy policy): every live chunk that lost a
        // copy — orphaned demand or not — is topped back up to the
        // replication degree under the replica-load cap, so durability
        // survives deaths whose audience was served elsewhere.
        let policy = self.cfg.approx.replication;
        if !policy.is_single_copy() {
            let mut deficit: Vec<ChunkId> = departures
                .iter()
                .flat_map(|d| d.lost.iter().copied())
                .filter(|c| self.chunks.contains_key(c))
                .collect();
            deficit.sort_unstable();
            deficit.dedup();
            let decider = self.shard_of[producer.index()];
            for chunk in deficit {
                let holders = self.chunks[&chunk].caches.clone();
                let extra = top_up_targets(
                    &self.net,
                    &holders,
                    &policy,
                    |i| fc[i.index()],
                    |a, b| w.contention * self.scoped.cost(a, b),
                    producer,
                );
                for i in extra {
                    self.net.cache(i, chunk)?;
                    if let Some(sc) = self.chunks.get_mut(&chunk) {
                        if let Err(at) = sc.caches.binary_search(&i) {
                            sc.caches.insert(at, i);
                        }
                    }
                    let home = self.shard_of[i.index()];
                    self.shards[home as usize].arena_mut().pin_replica(i);
                    dirty.push(i);
                    report.copies_restored.push((chunk, i));
                    if home != decider {
                        self.router
                            .send(home, CrossShardEvent::RemoteCopy { chunk, node: i });
                    }
                }
            }
        }
        if !dirty.is_empty() {
            dirty.push(producer);
            dirty.sort_unstable();
            dirty.dedup();
            self.scoped.update(&self.net, &dirty, self.parallelism())?;
        }

        // (d) Orphan reassignment: one pure proposal per orphaned row
        // against the post-repair store, merged in (chunk, client)
        // order. The old provider's home shard owns the decision; rows
        // of clients homed elsewhere travel as OrphanHandoff + Assign.
        let mut items: Vec<(ChunkId, NodeId, NodeId)> = Vec::new();
        for (&chunk, rows) in &orphans {
            if !self.chunks.contains_key(&chunk) {
                continue;
            }
            for &(j, old) in rows {
                if self.net.is_active(j) {
                    items.push((chunk, j, old));
                }
            }
        }
        items.sort_unstable_by_key(|&(c, j, _)| (c, j));
        let reassign = |&(chunk, j, _old): &(ChunkId, NodeId, NodeId)| -> (NodeId, u64) {
            let caches = &self.chunks[&chunk].caches;
            let r = self.scoped.partition().region_of(j);
            let options: Vec<NodeId> = caches
                .iter()
                .copied()
                .filter(|i| self.scoped.region_cols(r).binary_search(i).is_ok())
                .collect();
            let (p, c) = best_provider(&self.scoped, w, producer, &options, j, None);
            (p, c.to_bits())
        };
        let assignments = fan_out(&items, self.parallelism(), reassign);
        for (&(chunk, j, old), &(p, cost_bits)) in items.iter().zip(&assignments) {
            let decider = self.shard_of[old.index()];
            let home = self.shard_of[j.index()];
            if home == decider {
                self.shards[home as usize]
                    .arena_mut()
                    .set(j, chunk, p, cost_bits);
            } else {
                self.router
                    .send(home, CrossShardEvent::OrphanHandoff { chunk, client: j });
                self.router.send(
                    home,
                    CrossShardEvent::Assign {
                        chunk,
                        client: j,
                        provider: p,
                        cost_bits,
                    },
                );
            }
            report.orphans_reassigned += 1;
        }
        Ok(())
    }

    /// Places the next arriving chunk through the hierarchical
    /// pipeline; the producer's home shard owns the decision, so rows
    /// and copies homed elsewhere travel as Assign / RemoteCopy events.
    fn place_next_chunk(&mut self, report: &mut TickReport) -> Result<ChunkId, CoreError> {
        if let Some(cap) = self.retention {
            while self.chunks.len() >= cap {
                let Some(&oldest) = self.chunks.keys().next() else {
                    break;
                };
                let mut touched = Vec::new();
                self.retire(oldest, &mut touched, report);
                self.drain_cross();
                if !touched.is_empty() {
                    touched.push(self.net.producer());
                    touched.sort_unstable();
                    touched.dedup();
                    self.scoped
                        .update_topology(&self.net, &touched, self.parallelism())?;
                }
            }
        }
        let chunk = ChunkId::new(self.next_chunk);
        self.next_chunk += 1;
        let mut span = chunk_span("Shard", chunk);
        self.span_count += 1;
        let producer = self.net.producer();
        let w = self.weights();
        let regions = self.scoped.partition().region_count();
        let fc = ConflInstance::facility_costs(&self.net, w);
        let audience = self.net.interested_clients(chunk);
        let mut by_region: Vec<Vec<NodeId>> = vec![Vec::new(); regions];
        for &j in &audience {
            by_region[self.scoped.partition().region_of(j)].push(j);
        }
        let busy: Vec<usize> = (0..regions).filter(|&r| !by_region[r].is_empty()).collect();
        let opened = ascend_regions(
            &self.scoped,
            &fc,
            producer,
            w,
            &self.cfg.approx,
            &by_region,
            &busy,
            self.parallelism(),
        )?;
        let mut facilities: Vec<NodeId> = opened.into_iter().flatten().collect();
        facilities.sort_unstable();
        facilities.dedup();
        let (mut current, mut providers, mut costs) =
            assign_and_prune(&self.scoped, &fc, producer, w, &audience, facilities);
        let (_, spt_parent) = dijkstra_edge_weighted(self.net.graph(), producer, |u, v| {
            self.scoped.edge_cost(u, v)
        });
        improve_by_scoped_removal(
            &self.scoped,
            &fc,
            producer,
            w,
            &audience,
            &spt_parent,
            &mut current,
            &mut providers,
            &mut costs,
        );
        // R-copy durability floor (a no-op for the default single-copy
        // policy): top the pruned set up to the replication degree
        // under the replica-load cap, then re-derive providers so a
        // client may be served by a replica inside its region's demand
        // ball. The trunk tree unions the SPT paths of all R copies.
        let extra = top_up_targets(
            &self.net,
            &current,
            &self.cfg.approx.replication,
            |i| fc[i.index()],
            |a, b| w.contention * self.scoped.cost(a, b),
            producer,
        );
        if !extra.is_empty() {
            current.extend(extra);
            current.sort_unstable();
            let by_ball = facilities_by_region(&self.scoped, &current);
            for (idx, &j) in audience.iter().enumerate() {
                let options = &by_ball[self.scoped.partition().region_of(j)];
                let (p, c) = best_provider(&self.scoped, w, producer, options, j, None);
                providers[idx] = p;
                costs[idx] = c;
            }
        }
        let (tree_edges, tree_cost) = trunk_tree(&self.scoped, producer, &spt_parent, &current);
        for &i in &current {
            self.net.cache(i, chunk)?;
            let home = self.shard_of[i.index()] as usize;
            self.shards[home].arena_mut().pin_replica(i);
        }
        // Commit rows and copies, shard by shard: the producer's home
        // shard writes locally, everything else goes over the router.
        let decider = self.shard_of[producer.index()];
        for (&j, (&p, &cost)) in audience.iter().zip(providers.iter().zip(&costs)) {
            let home = self.shard_of[j.index()];
            if home == decider {
                self.shards[home as usize]
                    .arena_mut()
                    .set(j, chunk, p, cost.to_bits());
            } else {
                self.router.send(
                    home,
                    CrossShardEvent::Assign {
                        chunk,
                        client: j,
                        provider: p,
                        cost_bits: cost.to_bits(),
                    },
                );
            }
        }
        for &i in &current {
            let home = self.shard_of[i.index()];
            if home != decider {
                self.router
                    .send(home, CrossShardEvent::RemoteCopy { chunk, node: i });
            }
        }
        let mut dirty = current.clone();
        dirty.push(producer);
        dirty.sort_unstable();
        dirty.dedup();
        let sc = ShardChunk {
            caches: current,
            tree_edges,
            tree_cost,
        };
        if span.is_recording() {
            span.add_field("caches", obs::Value::from(sc.caches.len()));
            span.add_field("audience", obs::Value::from(audience.len()));
        }
        let cp = ChunkPlacement {
            chunk,
            caches: sc.caches.clone(),
            assignment: Vec::new(),
            tree_edges: sc.tree_edges.clone(),
            costs: SetCosts {
                fairness: sc.caches.iter().map(|&i| fc[i.index()]).sum(),
                access: costs.iter().sum(),
                dissemination: w.dissemination * sc.tree_cost,
            },
        };
        finish_chunk_span(span, &cp);
        self.chunks.insert(chunk, sc);
        self.scoped.update(&self.net, &dirty, self.parallelism())?;
        Ok(chunk)
    }

    /// Rebuilds every live chunk's trunk tree from one producer-rooted
    /// SPT over the current scoped edge costs.
    fn rebuild_trees(&mut self) {
        if self.chunks.is_empty() {
            return;
        }
        let producer = self.net.producer();
        let (_, spt_parent) = dijkstra_edge_weighted(self.net.graph(), producer, |u, v| {
            self.scoped.edge_cost(u, v)
        });
        for sc in self.chunks.values_mut() {
            let (edges, cost) = trunk_tree(&self.scoped, producer, &spt_parent, &sc.caches);
            sc.tree_edges = edges;
            sc.tree_cost = cost;
        }
    }

    /// A deterministic 64-bit digest of the complete world state:
    /// network (activity, capacity, caches, battery), live chunks
    /// (caches, trees, costs), and every arena row in shard/slot/chunk
    /// order. Bit-for-bit identical states — which the determinism
    /// contract guarantees across thread counts — digest identically.
    pub fn state_digest(&self) -> u64 {
        let mut h = 0x5348_4152_4445_4457u64; // "SHARDEDW"
        let mut mix = |x: u64| {
            h = splitmix64(h ^ x.wrapping_mul(0x9E37_79B9_7F4A_7C15));
        };
        mix(self.net.node_count() as u64);
        for u in 0..self.net.node_count() {
            let node = NodeId::new(u);
            mix(u64::from(self.net.is_active(node)));
            mix(self.net.capacity(node) as u64);
            mix(self.net.battery(node).to_bits());
            for &c in self.net.cached_chunks(node) {
                mix((c.index() as u64).wrapping_add(1));
            }
            mix(u64::MAX); // cache-set terminator
        }
        mix(self.chunks.len() as u64);
        for (&chunk, sc) in &self.chunks {
            mix(chunk.index() as u64);
            for &i in &sc.caches {
                mix(i.index() as u64);
            }
            for &(c, p) in &sc.tree_edges {
                mix((c.index() as u64).wrapping_shl(32) | p.index() as u64);
            }
            mix(sc.tree_cost.to_bits());
        }
        mix(self.shards.len() as u64);
        for shard in &self.shards {
            for row in shard.arena().rows() {
                mix(row.client.index() as u64);
                mix(row.chunk.index() as u64);
                mix(row.provider.index() as u64);
                mix(row.cost_bits);
            }
            mix(u64::MAX); // shard terminator
        }
        h
    }

    /// Structural self-audit: recorded caches are exactly the network's
    /// holders, every interested client of every live chunk has exactly
    /// one arena row homed in its shard pointing at a provider that can
    /// serve it, trees use existing links and reach the producer, no
    /// arena holds rows for foreign clients, and the shard map matches
    /// the partition.
    ///
    /// # Errors
    ///
    /// [`CoreError::InvalidParameter`] describing the first violation.
    pub fn validate(&self) -> Result<(), CoreError> {
        let fail = |msg: String| Err(CoreError::InvalidParameter(msg));
        // Shard map mirrors the partition; members partition the nodes.
        if self.shards.len() != self.scoped.partition().region_count() {
            return fail("shard count diverged from the region count".into());
        }
        for (r, shard) in self.shards.iter().enumerate() {
            if shard.members() != self.scoped.partition().region(r) {
                return fail(format!("shard {r} members diverged from region {r}"));
            }
            for &m in shard.members() {
                if self.shard_of[m.index()] as usize != r {
                    return fail(format!("node {m} home-shard index diverged"));
                }
            }
        }
        // Chunk records match the network's holder sets.
        for (&chunk, sc) in &self.chunks {
            let holders = self.net.holders(chunk);
            if sc.caches != holders {
                return fail(format!(
                    "chunk {chunk} caches {:?} != network holders {holders:?}",
                    sc.caches
                ));
            }
            for &(child, parent) in &sc.tree_edges {
                if !self.net.graph().contains_edge(child, parent) {
                    return fail(format!(
                        "chunk {chunk} tree edge ({child},{parent}) is not a link"
                    ));
                }
            }
        }
        // Arena rows: every row well-formed, every interested client
        // covered exactly once, in its home shard.
        let live: Vec<ChunkId> = self.chunks.keys().copied().collect();
        let mut seen: BTreeMap<(ChunkId, NodeId), NodeId> = BTreeMap::new();
        for (s, shard) in self.shards.iter().enumerate() {
            for row in shard.arena().rows() {
                if self.shard_of[row.client.index()] as usize != s {
                    return fail(format!(
                        "row for client {} homed in wrong shard",
                        row.client
                    ));
                }
                if !self.net.is_active(row.client) {
                    return fail(format!("row for inactive client {}", row.client));
                }
                if live.binary_search(&row.chunk).is_err() {
                    return fail(format!("row for dead chunk {}", row.chunk));
                }
                if !self.net.can_serve(row.provider, row.chunk) {
                    return fail(format!(
                        "client {} assigned to {} which cannot serve {}",
                        row.client, row.provider, row.chunk
                    ));
                }
                if seen.insert((row.chunk, row.client), row.provider).is_some() {
                    return fail(format!(
                        "duplicate row for client {} chunk {}",
                        row.client, row.chunk
                    ));
                }
            }
        }
        for &chunk in &live {
            for j in self.net.interested_clients(chunk) {
                if !seen.contains_key(&(chunk, j)) {
                    return fail(format!("client {j} has no row for live chunk {chunk}"));
                }
            }
        }
        // Capacity.
        for u in 0..self.net.node_count() {
            let node = NodeId::new(u);
            if self.net.used(node) > self.net.capacity(node) {
                return fail(format!("node {node} over capacity"));
            }
        }
        // Replica-load pins mirror the live copies each member hosts.
        let mut hosted = vec![0u32; self.net.node_count()];
        for sc in self.chunks.values() {
            for &holder in &sc.caches {
                hosted[holder.index()] += 1;
            }
        }
        for shard in &self.shards {
            for &m in shard.members() {
                let pinned = shard.arena().replica_load(m);
                if pinned != hosted[m.index()] {
                    return fail(format!(
                        "node {m} replica pins {pinned} != live copies hosted {}",
                        hosted[m.index()]
                    ));
                }
            }
        }
        Ok(())
    }

    /// Runtime oracle under `strict-invariants`: the world self-audit
    /// plus a bitwise comparison of the incrementally maintained scoped
    /// store against a from-scratch rebuild of the retained partition.
    ///
    /// # Panics
    ///
    /// Panics on any violated invariant.
    #[cfg(feature = "strict-invariants")]
    fn strict_check(&self) {
        if let Err(e) = self.validate() {
            panic!("strict-invariants: sharded world self-audit failed: {e}");
        }
        self.scoped.strict_verify(&self.net);
    }
}

/// Builds the shard set (shard `r` == region `r`) and the node → shard
/// map from the scoped store's partition.
fn shards_of(scoped: &ScopedContention) -> (Vec<WorldShard>, Vec<u32>) {
    let p = scoped.partition();
    let mut shards = Vec::with_capacity(p.region_count());
    let mut shard_of = Vec::new();
    for r in 0..p.region_count() {
        shards.push(WorldShard::new(r as u32, p.region(r).to_vec()));
    }
    let n: usize = (0..p.region_count()).map(|r| p.region(r).len()).sum();
    shard_of.resize(n, 0u32);
    for (r, shard) in shards.iter().enumerate() {
        for &m in shard.members() {
            shard_of[m.index()] = r as u32;
        }
    }
    (shards, shard_of)
}

/// Runs `task` over `items` with slot-array fan-out: results land in
/// pre-indexed slots, so the merge order is the item order no matter
/// how threads are scheduled. `task` must be a pure function of frozen
/// state.
fn fan_out<T: Sync, R: Send>(
    items: &[T],
    parallelism: Parallelism,
    task: impl Fn(&T) -> R + Sync,
) -> Vec<R> {
    let threads = parallelism.threads(items.len().max(1));
    let mut slots: Vec<Option<R>> = (0..items.len()).map(|_| None).collect();
    if threads <= 1 || items.len() <= 1 {
        for (slot, item) in slots.iter_mut().zip(items) {
            *slot = Some(obs::with_quiet(|| task(item)));
        }
    } else {
        let per = items.len().div_ceil(threads);
        std::thread::scope(|s| {
            for (chunk, part) in slots.chunks_mut(per).zip(items.chunks(per)) {
                let task = &task;
                s.spawn(move || {
                    for (slot, item) in chunk.iter_mut().zip(part) {
                        *slot = Some(obs::with_quiet(|| task(item)));
                    }
                });
            }
        });
    }
    slots
        .into_iter()
        .map(|s| s.expect("every fan-out slot is filled"))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use peercache_graph::builders;

    fn grid_world(side: usize, cap: usize) -> ShardedWorld {
        let net = Network::new(builders::grid(side, side), NodeId::new(0), cap).unwrap();
        let cfg = ShardConfig {
            approx: ApproxConfig::default(),
            scoped: ScopedConfig {
                region_max: 12,
                halo_hops: 2,
                landmarks: 4,
                seed: 7,
            },
        };
        ShardedWorld::new(net, cfg).unwrap()
    }

    #[test]
    fn shards_cover_every_node_exactly_once() {
        let world = grid_world(8, 3);
        assert!(world.shard_count() > 1);
        let mut seen = vec![false; world.network().node_count()];
        for shard in world.shards() {
            for &m in shard.members() {
                assert!(!seen[m.index()], "node homed twice");
                seen[m.index()] = true;
                assert_eq!(world.shard_of(m), shard.id() as usize);
            }
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn arrival_places_rows_for_every_client() {
        let mut world = grid_world(6, 3);
        let report = world.apply(WorldEvent::ChunkArrived).unwrap();
        assert_eq!(report.placed, vec![ChunkId::new(0)]);
        world.validate().unwrap();
        let rows: usize = world.shards().iter().map(|s| s.arena().len()).sum();
        assert_eq!(rows, world.network().node_count() - 1);
        // Multi-shard worlds route at least some assignments remotely.
        assert!(world.cross_shard_events() > 0);
        let p = world.placement(ChunkId::new(0)).unwrap();
        assert_eq!(p.assignment.len(), rows);
    }

    #[test]
    fn departure_repairs_and_reassigns() {
        let mut world = grid_world(6, 3);
        world.apply(WorldEvent::ChunkArrived).unwrap();
        world.apply(WorldEvent::ChunkArrived).unwrap();
        // Depart a non-producer holder if any, else any client.
        let victim = world
            .chunk(ChunkId::new(0))
            .unwrap()
            .caches
            .first()
            .copied()
            .unwrap_or(NodeId::new(35));
        let report = world.apply(WorldEvent::NodeDeparted(victim)).unwrap();
        assert_eq!(report.departed, vec![victim]);
        world.validate().unwrap();
        // The departed client holds no rows anywhere.
        for shard in world.shards() {
            assert!(shard.arena().rows().iter().all(|r| r.client != victim));
            assert!(shard.arena().rows().iter().all(|r| r.provider != victim));
        }
    }

    #[test]
    fn join_rebuilds_shards_and_covers_newcomer() {
        let mut world = grid_world(6, 3);
        world.apply(WorldEvent::ChunkArrived).unwrap();
        let before = world.network().node_count();
        let report = world
            .apply(WorldEvent::NodeJoined {
                neighbors: vec![NodeId::new(1), NodeId::new(2)],
                capacity: 2,
            })
            .unwrap();
        assert!(report.shards_rebuilt);
        assert_eq!(report.joined.len(), 1);
        let newcomer = report.joined[0];
        assert_eq!(newcomer.index(), before);
        world.validate().unwrap();
        // Newcomer has a row for the live chunk.
        let home = world.shard_of(newcomer);
        assert!(world.shards()[home]
            .arena()
            .get(newcomer, ChunkId::new(0))
            .is_some());
    }

    #[test]
    fn retention_evicts_oldest_first() {
        let mut world = grid_world(6, 2).with_retention(2);
        for _ in 0..3 {
            world.apply(WorldEvent::ChunkArrived).unwrap();
        }
        assert_eq!(world.live_chunks(), vec![ChunkId::new(1), ChunkId::new(2)]);
        world.validate().unwrap();
    }

    #[test]
    fn rejected_events_do_not_fail_the_tick() {
        let mut world = grid_world(4, 2);
        let report = world
            .tick(&[
                WorldEvent::ChunkRetired(ChunkId::new(9)),
                WorldEvent::NodeDeparted(NodeId::new(0)), // producer: refused
                WorldEvent::ChunkArrived,
            ])
            .unwrap();
        assert_eq!(report.rejected, 2);
        assert_eq!(report.placed.len(), 1);
        world.validate().unwrap();
    }

    #[test]
    fn dense_world_adopts_into_sharded_pipeline() {
        use crate::world::CacheWorld;
        let net = Network::new(builders::grid(6, 6), NodeId::new(0), 3).unwrap();
        let mut dense = CacheWorld::new(net, ApproxConfig::default()).with_retention(4);
        for _ in 0..3 {
            dense.apply(WorldEvent::ChunkArrived).unwrap();
        }
        dense
            .apply(WorldEvent::NodeDeparted(NodeId::new(35)))
            .unwrap();
        let live = dense.live_chunks().to_vec();
        let mut world = dense
            .into_sharded(ScopedConfig {
                region_max: 10,
                halo_hops: 2,
                landmarks: 4,
                seed: 7,
            })
            .unwrap();
        assert_eq!(world.live_chunks(), live);
        world.validate().unwrap();
        // The adopted world keeps evolving: next arrival gets a fresh id
        // and the retention cap carries over.
        let r = world.apply(WorldEvent::ChunkArrived).unwrap();
        assert_eq!(r.placed, vec![ChunkId::new(3)]);
        world.apply(WorldEvent::ChunkArrived).unwrap();
        assert_eq!(world.live_chunks().len(), 4);
        world.validate().unwrap();
    }

    #[test]
    fn partition_tolerant_world_refuses_sharding() {
        use crate::world::CacheWorld;
        let net = Network::new(builders::grid(4, 4), NodeId::new(0), 2).unwrap();
        let dense = CacheWorld::new(net, ApproxConfig::default()).partition_tolerant();
        let err = dense
            .into_sharded(ScopedConfig::default())
            .expect_err("Allow-policy world must be rejected");
        assert!(matches!(err, CoreError::InvalidParameter(_)));
    }

    #[test]
    fn digest_is_replay_stable_and_state_sensitive() {
        let run = |par: Parallelism| {
            let net = Network::new(builders::grid(6, 6), NodeId::new(0), 3).unwrap();
            let cfg = ShardConfig {
                approx: ApproxConfig {
                    parallelism: par,
                    ..ApproxConfig::default()
                },
                scoped: ScopedConfig {
                    region_max: 10,
                    halo_hops: 2,
                    landmarks: 4,
                    seed: 7,
                },
            };
            let mut w = ShardedWorld::new(net, cfg).unwrap().with_retention(3);
            for _ in 0..4 {
                w.apply(WorldEvent::ChunkArrived).unwrap();
            }
            w.apply(WorldEvent::NodeDeparted(NodeId::new(35))).unwrap();
            w.apply(WorldEvent::LinkDown(NodeId::new(1), NodeId::new(2)))
                .unwrap();
            (w.state_digest(), w.span_count())
        };
        let a = run(Parallelism::Sequential);
        let b = run(Parallelism::Threads(2));
        let c = run(Parallelism::Auto);
        assert_eq!(a, b, "2 threads diverged from sequential");
        assert_eq!(a, c, "auto threads diverged from sequential");
        // A different trace digests differently.
        let mut w = grid_world(6, 3);
        w.apply(WorldEvent::ChunkArrived).unwrap();
        assert_ne!(a.0, w.state_digest());
    }
}
