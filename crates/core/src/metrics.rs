//! Fairness and distribution metrics of the evaluation (§V-B).
//!
//! * [`gini`] — the Gini coefficient of per-node caching load (Fig. 7);
//! * [`p_percentile_fairness`] — the fraction of nodes needed to hold
//!   `p`% of all cached data (Fig. 6; ideal is `p`% itself);
//! * [`nodes_to_cover`] — the raw node count behind that fraction;
//! * [`distribution_diff`] — per-node difference in stored chunks
//!   against a reference placement (the circles of Fig. 1).

/// Gini coefficient of the load vector: `Σ_i Σ_j |t_i - t_j| / (2 N Σ t)`.
///
/// 0 means perfectly even caching load, values toward 1 mean a few
/// nodes carry everything. An all-zero load (nothing cached) is defined
/// as perfectly fair (0). Pass *client* loads — the producer stores
/// nothing by design and would bias the statistic.
///
/// # Example
///
/// ```
/// use peercache_core::metrics::gini;
///
/// assert_eq!(gini(&[2, 2, 2, 2]), 0.0);
/// assert!(gini(&[8, 0, 0, 0]) > 0.7);
/// ```
pub fn gini(loads: &[usize]) -> f64 {
    let n = loads.len();
    let total: usize = loads.iter().sum();
    if n == 0 || total == 0 {
        return 0.0;
    }
    // O(n log n) closed form over the sorted vector.
    let mut sorted: Vec<usize> = loads.to_vec();
    sorted.sort_unstable();
    let weighted: f64 = sorted
        .iter()
        .enumerate()
        .map(|(rank, &t)| (2.0 * (rank as f64 + 1.0) - n as f64 - 1.0) * t as f64)
        .sum();
    weighted / (n as f64 * total as f64)
}

/// Number of nodes (heaviest first) needed to hold at least
/// `ratio` (0..=1) of all cached copies.
///
/// Returns 0 when nothing is cached.
///
/// # Panics
///
/// Panics if `ratio` is not within `0.0..=1.0`.
pub fn nodes_to_cover(loads: &[usize], ratio: f64) -> usize {
    assert!((0.0..=1.0).contains(&ratio), "ratio must be in [0, 1]");
    let total: usize = loads.iter().sum();
    if total == 0 || crate::costs::approx_zero(ratio) {
        return 0;
    }
    let target = ratio * total as f64;
    let mut sorted: Vec<usize> = loads.to_vec();
    sorted.sort_unstable_by(|a, b| b.cmp(a));
    let mut acc = 0usize;
    for (count, &t) in sorted.iter().enumerate() {
        acc += t;
        if acc as f64 >= target - 1e-9 {
            return count + 1;
        }
    }
    sorted.len()
}

/// `p`-percentile fairness: the *fraction* of nodes needed to cache
/// `p`% of the total data (Fig. 6). Ideal (uniform load) is `p`%; the
/// smaller the value, the more concentrated — thus less fair — the
/// placement.
///
/// # Panics
///
/// Panics if `p` is not within `0.0..=1.0`.
///
/// # Example
///
/// ```
/// use peercache_core::metrics::p_percentile_fairness;
///
/// // Uniform load: 75% of the data sits on 75% of the nodes.
/// assert_eq!(p_percentile_fairness(&[1, 1, 1, 1], 0.75), 0.75);
/// // Concentrated: one node of four holds everything.
/// assert_eq!(p_percentile_fairness(&[4, 0, 0, 0], 0.75), 0.25);
/// ```
pub fn p_percentile_fairness(loads: &[usize], p: f64) -> f64 {
    if loads.is_empty() {
        return 0.0;
    }
    nodes_to_cover(loads, p) as f64 / loads.len() as f64
}

/// Per-node difference `a_i - b_i` in stored chunk counts (Fig. 1's
/// circles, with `b` the optimal placement).
///
/// # Panics
///
/// Panics if the two vectors differ in length.
pub fn distribution_diff(a: &[usize], b: &[usize]) -> Vec<i64> {
    assert_eq!(a.len(), b.len(), "load vectors must cover the same nodes");
    a.iter()
        .zip(b)
        .map(|(&x, &y)| x as i64 - y as i64)
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn gini_of_uniform_is_zero() {
        assert_eq!(gini(&[3, 3, 3]), 0.0);
        assert_eq!(gini(&[0, 0]), 0.0);
        assert_eq!(gini(&[]), 0.0);
    }

    #[test]
    fn gini_of_total_concentration_approaches_one() {
        // (n-1)/n for a single loaded node.
        let g = gini(&[10, 0, 0, 0, 0]);
        assert!((g - 0.8).abs() < 1e-9);
    }

    #[test]
    fn gini_is_scale_invariant() {
        let a = gini(&[1, 2, 3, 4]);
        let b = gini(&[10, 20, 30, 40]);
        assert!((a - b).abs() < 1e-12);
    }

    #[test]
    fn gini_is_within_unit_interval() {
        for loads in [&[5, 1, 0][..], &[7, 7, 1, 2], &[1]] {
            let g = gini(loads);
            assert!((0.0..=1.0).contains(&g), "gini {g} out of range");
        }
    }

    #[test]
    fn gini_matches_pairwise_definition() {
        // Cross-check the sorted closed form against the paper's double
        // sum on a small example.
        let loads = [3usize, 1, 4, 1, 5];
        let n = loads.len() as f64;
        let total: usize = loads.iter().sum();
        let double_sum: f64 = loads
            .iter()
            .flat_map(|&a| loads.iter().map(move |&b| (a as f64 - b as f64).abs()))
            .sum();
        let reference = double_sum / (2.0 * n * total as f64);
        assert!((gini(&loads) - reference).abs() < 1e-12);
    }

    #[test]
    fn nodes_to_cover_counts_heaviest_first() {
        let loads = [5, 1, 1, 1];
        assert_eq!(nodes_to_cover(&loads, 0.5), 1);
        assert_eq!(nodes_to_cover(&loads, 0.75), 2);
        assert_eq!(nodes_to_cover(&loads, 1.0), 4);
        assert_eq!(nodes_to_cover(&loads, 0.0), 0);
        assert_eq!(nodes_to_cover(&[0, 0], 0.5), 0);
    }

    #[test]
    #[should_panic(expected = "ratio must be in [0, 1]")]
    fn nodes_to_cover_panics_on_bad_ratio() {
        nodes_to_cover(&[1], 1.5);
    }

    #[test]
    fn gini_of_single_node_is_zero() {
        // One node trivially carries "everything" and "its fair share"
        // at once: no inequality is expressible.
        assert_eq!(gini(&[7]), 0.0);
        assert_eq!(gini(&[0]), 0.0);
    }

    #[test]
    fn nodes_to_cover_boundary_ratios() {
        let loads = [4, 3, 2, 1, 0];
        // ratio 0: no data needed, no node needed.
        assert_eq!(nodes_to_cover(&loads, 0.0), 0);
        // ratio 1: every copy must be accounted for, but the zero-load
        // tail contributes nothing — four nodes suffice.
        assert_eq!(nodes_to_cover(&loads, 1.0), 4);
        assert_eq!(nodes_to_cover(&[2, 2], 1.0), 2);
        assert_eq!(nodes_to_cover(&[], 1.0), 0);
    }

    #[test]
    fn percentile_fairness_boundary_percentiles() {
        let loads = [4, 3, 2, 1];
        // p = 0: covering nothing takes no nodes.
        assert_eq!(p_percentile_fairness(&loads, 0.0), 0.0);
        // p = 100%: all loaded nodes, as a fraction of all nodes.
        assert_eq!(p_percentile_fairness(&loads, 1.0), 1.0);
        assert_eq!(p_percentile_fairness(&[4, 3, 2, 1, 0], 1.0), 0.8);
        // Uniform load is the ideal diagonal at every percentile.
        for p in [0.25, 0.5, 0.75, 1.0] {
            assert_eq!(p_percentile_fairness(&[1; 4], p), p);
        }
    }

    #[test]
    fn percentile_fairness_examples_from_the_paper_shape() {
        // Uniform: ideal.
        assert_eq!(p_percentile_fairness(&[1; 35], 0.75), 27.0 / 35.0);
        // One hot node: minimal.
        let mut hot = vec![0usize; 35];
        hot[0] = 25;
        assert_eq!(p_percentile_fairness(&hot, 0.75), 1.0 / 35.0);
        assert_eq!(p_percentile_fairness(&[], 0.75), 0.0);
    }

    #[test]
    fn distribution_diff_signs() {
        assert_eq!(distribution_diff(&[3, 0, 2], &[1, 1, 2]), vec![2, -1, 0]);
    }

    #[test]
    #[should_panic(expected = "load vectors must cover the same nodes")]
    fn distribution_diff_length_mismatch_panics() {
        distribution_diff(&[1], &[1, 2]);
    }
}
