//! The planner interface shared by all caching algorithms.
//!
//! Every algorithm of the evaluation — the approximation algorithm, the
//! exact brute force, and the two prior-work baselines — implements
//! [`CachePlanner`]: given a mutable [`Network`], place `Q` chunks and
//! return the [`Placement`]. Planners mutate the network's caching state
//! as they go, which is exactly what couples chunks together through the
//! fairness and contention costs.

use peercache_graph::NodeId;
use peercache_obs as obs;

use crate::instance::ConflInstance;
use crate::placement::{ChunkPlacement, Placement};
use crate::{ChunkId, CoreError, Network};

/// Opens the per-chunk telemetry span every planner emits; pass it to
/// [`finish_chunk_span`] once the chunk is committed. No-op (and
/// allocation-free) when tracing is off.
pub fn chunk_span(planner: &'static str, chunk: ChunkId) -> obs::Span {
    obs::span!("planner.chunk", planner = planner, chunk = chunk.index())
}

/// Attaches the committed cost breakdown to the span and drops it,
/// emitting one record per (planner, chunk) with wall time and the
/// fairness/access/dissemination split.
pub fn finish_chunk_span(mut span: obs::Span, cp: &ChunkPlacement) {
    if span.is_recording() {
        span.add_field("caches", obs::Value::from(cp.caches.len()));
        span.add_field("fairness", obs::Value::from(cp.costs.fairness));
        span.add_field("access", obs::Value::from(cp.costs.access));
        span.add_field("dissemination", obs::Value::from(cp.costs.dissemination));
        span.add_field("cost_total", obs::Value::from(cp.costs.total()));
    }
}

/// A caching-placement algorithm.
pub trait CachePlanner {
    /// Short identifier used in figure legends ("Appx", "Brtf", ...).
    fn name(&self) -> &str;

    /// Places chunks `0..chunk_count`, mutating `net`'s caching state,
    /// and returns the full placement.
    ///
    /// # Errors
    ///
    /// Implementations return [`CoreError`] on invalid parameters,
    /// storage violations, or solver failures.
    fn plan(&self, net: &mut Network, chunk_count: usize) -> Result<Placement, CoreError>;
}

/// Drops facilities that serve no client under the min-cost assignment,
/// iterating until stable.
///
/// The dual ascent (and the greedy baselines) can open a facility whose
/// clients were all claimed by cheaper facilities in the meantime;
/// removing it saves its fairness cost and can only shrink the
/// dissemination tree, while the assignment step reroutes nothing (the
/// facility served nobody). The producer never appears in the result.
pub fn prune_unused_facilities(
    net: &Network,
    inst: &ConflInstance,
    facilities: &[NodeId],
) -> Vec<NodeId> {
    let mut current: Vec<NodeId> = facilities.to_vec();
    current.sort_unstable();
    current.dedup();
    loop {
        let (assignment, _) = inst.assign_clients(net, &current);
        let mut used: Vec<NodeId> = assignment
            .iter()
            .map(|&(_, provider)| provider)
            .filter(|&p| p != inst.producer())
            .collect();
        used.sort_unstable();
        used.dedup();
        if used.len() == current.len() {
            return current;
        }
        current = used;
    }
}

/// Greedy improving-removal cleanup: repeatedly drops the facility
/// whose removal most reduces the total ConFL objective (fairness +
/// access + dissemination), until no removal helps.
///
/// The dual ascent can over-open facilities early on — opening is
/// almost free while caches are empty (`f_i ≈ 0`), but every extra copy
/// inflates the contention seen by *later* chunks through the
/// `(1 + S(k))` feedback. This is the standard local-search cleanup
/// phase of primal-dual facility-location algorithms and never
/// increases the current chunk's objective.
///
/// # Errors
///
/// Propagates evaluation failures (cannot occur on a connected
/// [`Network`] with valid facilities).
pub fn improve_by_removal(
    net: &Network,
    inst: &ConflInstance,
    facilities: &[NodeId],
) -> Result<Vec<NodeId>, CoreError> {
    let mut current: Vec<NodeId> = facilities.to_vec();
    current.sort_unstable();
    current.dedup();
    if current.is_empty() {
        return Ok(current);
    }
    // Every set this search evaluates is a subset of the starting
    // facilities plus the producer, so one Steiner solver's per-terminal
    // shortest-path trees answer all the dissemination queries — instead
    // of re-running Dijkstra from every terminal once per evaluation
    // (see `improve_by_removal_reference` for the original form).
    let mut terminals = current.clone();
    terminals.push(inst.producer());
    let solver = peercache_graph::steiner::SteinerSolver::new(net.graph(), &terminals, |u, v| {
        inst.matrix().edge_cost(u, v)
    })?;
    let (costs, _, _) = inst.evaluate_set_with(net, &current, &solver)?;
    let mut best_total = costs.total();
    loop {
        let mut best_removal: Option<(f64, usize)> = None;
        for idx in 0..current.len() {
            let mut candidate = current.clone();
            candidate.remove(idx);
            let (costs, _, _) = inst.evaluate_set_with(net, &candidate, &solver)?;
            let total = costs.total();
            if total < best_total - 1e-9 && best_removal.is_none_or(|(bt, _)| total < bt) {
                best_removal = Some((total, idx));
            }
        }
        match best_removal {
            Some((total, idx)) => {
                current.remove(idx);
                best_total = total;
            }
            None => return Ok(current),
        }
    }
}

/// The original improving-removal loop, which rebuilds every Steiner
/// tree from scratch per evaluation. Kept verbatim as the oracle behind
/// [`crate::approx::ApproxConfig::reference_mode`]; byte-identical to
/// [`improve_by_removal`].
///
/// # Errors
///
/// Propagates evaluation failures (cannot occur on a connected
/// [`Network`] with valid facilities).
pub fn improve_by_removal_reference(
    net: &Network,
    inst: &ConflInstance,
    facilities: &[NodeId],
) -> Result<Vec<NodeId>, CoreError> {
    let mut current: Vec<NodeId> = facilities.to_vec();
    current.sort_unstable();
    current.dedup();
    if current.is_empty() {
        return Ok(current);
    }
    let (costs, _, _) = inst.evaluate_set(net, &current)?;
    let mut best_total = costs.total();
    loop {
        let mut best_removal: Option<(f64, usize)> = None;
        for idx in 0..current.len() {
            let mut candidate = current.clone();
            candidate.remove(idx);
            let (costs, _, _) = inst.evaluate_set(net, &candidate)?;
            let total = costs.total();
            if total < best_total - 1e-9 && best_removal.is_none_or(|(bt, _)| total < bt) {
                best_removal = Some((total, idx));
            }
        }
        match best_removal {
            Some((total, idx)) => {
                current.remove(idx);
                best_total = total;
            }
            None => return Ok(current),
        }
    }
}

/// Evaluates `facilities` for `chunk`, commits the copies to the
/// network, and returns the chunk's placement record.
///
/// Partition-aware by construction: the instance's client list is the
/// chunk's audience, so a partition-tolerant world that restricted it to
/// one component (see [`crate::instance::ConflInstance::with_clients`])
/// gets an assignment, tree, and costs scoped to that component — no
/// infinite cross-partition terms can enter.
///
/// # Errors
///
/// Propagates storage errors from [`Network::cache`] and evaluation
/// failures from [`ConflInstance::evaluate_set`].
pub fn commit_chunk(
    net: &mut Network,
    inst: &ConflInstance,
    chunk: ChunkId,
    facilities: &[NodeId],
) -> Result<ChunkPlacement, CoreError> {
    let mut caches: Vec<NodeId> = facilities.to_vec();
    caches.sort_unstable();
    caches.dedup();
    let (costs, assignment, tree_edges) = inst.evaluate_set(net, &caches)?;
    for &i in &caches {
        net.cache(i, chunk)?;
    }
    let placement = ChunkPlacement {
        chunk,
        caches,
        assignment,
        tree_edges,
        costs,
    };
    // Oracle: the dissemination tree must actually connect every cache to
    // the producer at the moment it is committed.
    #[cfg(feature = "strict-invariants")]
    crate::strict::check_tree_connectivity(net, &placement);
    Ok(placement)
}

/// [`commit_chunk`] with R-copy replication: tops the facility set up
/// to `policy.degree` copies (fairness-capped, see
/// [`crate::replication::top_up_targets`]) before evaluating and
/// committing, so the assignment may serve clients from replicas and
/// the dissemination tree is the Steiner tree over *all* R copies plus
/// the producer (the R-connected objective). Replica fairness cost is
/// priced exactly like any opened facility via
/// [`ConflInstance::evaluate_set`].
///
/// A single-copy policy delegates to [`commit_chunk`] unchanged — the
/// pre-replication pipeline stays byte-identical.
///
/// # Errors
///
/// Same as [`commit_chunk`].
pub fn commit_chunk_replicated(
    net: &mut Network,
    inst: &ConflInstance,
    chunk: ChunkId,
    facilities: &[NodeId],
    policy: &crate::replication::ReplicationPolicy,
) -> Result<ChunkPlacement, CoreError> {
    if policy.is_single_copy() {
        return commit_chunk(net, inst, chunk, facilities);
    }
    let mut caches: Vec<NodeId> = facilities.to_vec();
    caches.sort_unstable();
    caches.dedup();
    let extra = crate::replication::top_up_targets(
        net,
        &caches,
        policy,
        |i| inst.facility_cost(i),
        |a, b| inst.connection_cost(a, b),
        inst.producer(),
    );
    caches.extend(extra);
    commit_chunk(net, inst, chunk, &caches)
}

/// Convenience: runs a planner on a fresh clone of `net` without
/// mutating the original; returns the placement and the final state.
///
/// # Errors
///
/// Propagates the planner's error.
pub fn plan_on_copy<P: CachePlanner + ?Sized>(
    planner: &P,
    net: &Network,
    chunk_count: usize,
) -> Result<(Placement, Network), CoreError> {
    let mut copy = net.clone();
    let placement = planner.plan(&mut copy, chunk_count)?;
    Ok((placement, copy))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::costs::CostWeights;
    use peercache_graph::builders;
    use peercache_graph::paths::PathSelection;

    fn setup() -> (Network, ConflInstance) {
        let net = Network::new(builders::grid(3, 3), NodeId::new(4), 2).unwrap();
        let inst =
            ConflInstance::build(&net, CostWeights::default(), PathSelection::FewestHops).unwrap();
        (net, inst)
    }

    #[test]
    fn prune_removes_facilities_nobody_uses() {
        // With the full audience every facility serves itself for free
        // and nothing can ever be pruned; a genuinely dominated
        // facility needs a restricted audience. Chunk 0 interests only
        // corner node 0: the adjacent facility 1 serves it strictly
        // cheaper than either the producer (4) or the far corner 8, so
        // 8 serves nobody and must be dropped.
        let (mut net, _) = setup();
        let chunk = crate::ChunkId::new(0);
        net.set_interest(chunk, [NodeId::new(0)]).unwrap();
        let inst = ConflInstance::build_for_chunk(
            &net,
            chunk,
            CostWeights::default(),
            PathSelection::FewestHops,
        )
        .unwrap();
        assert!(
            inst.connection_cost(NodeId::new(1), NodeId::new(0))
                < inst
                    .connection_cost(inst.producer(), NodeId::new(0))
                    .min(inst.connection_cost(NodeId::new(8), NodeId::new(0))),
            "test premise: facility 1 dominates 8 and the producer for client 0"
        );
        let pruned = prune_unused_facilities(&net, &inst, &[NodeId::new(1), NodeId::new(8)]);
        assert_eq!(pruned, vec![NodeId::new(1)]);
    }

    #[test]
    fn prune_keeps_self_serving_facilities() {
        let (net, inst) = setup();
        // Every facility serves at least itself at cost 0, so nothing
        // is pruned from a small spread set.
        let set = [NodeId::new(0), NodeId::new(8)];
        let pruned = prune_unused_facilities(&net, &inst, &set);
        assert_eq!(pruned, vec![NodeId::new(0), NodeId::new(8)]);
    }

    #[test]
    fn commit_chunk_caches_copies_and_reports_costs() {
        let (mut net, inst) = setup();
        let placement = commit_chunk(
            &mut net,
            &inst,
            ChunkId::new(0),
            &[NodeId::new(0), NodeId::new(8)],
        )
        .unwrap();
        assert!(net.is_cached(NodeId::new(0), ChunkId::new(0)));
        assert!(net.is_cached(NodeId::new(8), ChunkId::new(0)));
        assert_eq!(placement.caches.len(), 2);
        assert_eq!(placement.assignment.len(), 8);
        assert!(placement.costs.access > 0.0);
        assert!(placement.costs.dissemination > 0.0);
        assert_eq!(placement.costs.fairness, 0.0); // empty caches before
    }

    #[test]
    fn commit_chunk_rejects_overfull_nodes() {
        let (mut net, _) = setup();
        net.cache(NodeId::new(0), ChunkId::new(10)).unwrap();
        net.cache(NodeId::new(0), ChunkId::new(11)).unwrap();
        let inst =
            ConflInstance::build(&net, CostWeights::default(), PathSelection::FewestHops).unwrap();
        let err = commit_chunk(&mut net, &inst, ChunkId::new(0), &[NodeId::new(0)]);
        assert!(matches!(err, Err(CoreError::StorageFull { .. })));
    }
}
