use std::error::Error;
use std::fmt;

use peercache_graph::{GraphError, NodeId};

use crate::ChunkId;

/// Errors produced by the caching planners and the system model.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum CoreError {
    /// A graph-level failure (bad node, disconnected topology, ...).
    Graph(GraphError),
    /// The planning topology must be connected (paper §III-A).
    DisconnectedNetwork,
    /// The producer node cannot cache chunks (paper §V-A: "the producer
    /// node will not store data on its caching storage").
    ProducerCannotCache {
        /// The producer node.
        producer: NodeId,
    },
    /// A node's caching storage is exhausted.
    StorageFull {
        /// The node whose storage is full.
        node: NodeId,
        /// Its total capacity in chunks.
        capacity: usize,
    },
    /// The chunk is already cached on the node; each node stores at most
    /// one copy of a chunk.
    AlreadyCached {
        /// The caching node.
        node: NodeId,
        /// The duplicate chunk.
        chunk: ChunkId,
    },
    /// No feasible placement exists (e.g. total storage cannot hold the
    /// requested chunks).
    InsufficientStorage {
        /// Chunks requested.
        requested: usize,
        /// Chunk slots available across all non-producer nodes.
        available: usize,
    },
    /// The underlying LP solver failed while computing an exact optimum.
    Solver(String),
    /// The distributed protocol layer failed; carries the rendered
    /// `ProtocolError` (core does not depend on `dist`).
    Protocol(String),
    /// An algorithm parameter was invalid (e.g. a zero bid increment).
    InvalidParameter(String),
}

impl fmt::Display for CoreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CoreError::Graph(e) => write!(f, "graph error: {e}"),
            CoreError::DisconnectedNetwork => {
                write!(f, "network topology must be connected")
            }
            CoreError::ProducerCannotCache { producer } => {
                write!(f, "producer node {producer} cannot cache chunks")
            }
            CoreError::StorageFull { node, capacity } => {
                write!(f, "storage of node {node} is full (capacity {capacity})")
            }
            CoreError::AlreadyCached { node, chunk } => {
                write!(f, "chunk {chunk} is already cached on node {node}")
            }
            CoreError::InsufficientStorage {
                requested,
                available,
            } => write!(
                f,
                "cannot place {requested} chunks: only {available} chunk slots available"
            ),
            CoreError::Solver(why) => write!(f, "solver failure: {why}"),
            CoreError::Protocol(why) => write!(f, "distributed protocol failure: {why}"),
            CoreError::InvalidParameter(why) => write!(f, "invalid parameter: {why}"),
        }
    }
}

impl Error for CoreError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            CoreError::Graph(e) => Some(e),
            _ => None,
        }
    }
}

impl From<GraphError> for CoreError {
    fn from(e: GraphError) -> Self {
        CoreError::Graph(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_informative() {
        let e = CoreError::StorageFull {
            node: NodeId::new(3),
            capacity: 5,
        };
        assert!(e.to_string().contains('3') && e.to_string().contains('5'));
        assert!(CoreError::DisconnectedNetwork
            .to_string()
            .contains("connected"));
    }

    #[test]
    fn graph_errors_convert_and_chain() {
        let e: CoreError = GraphError::Disconnected.into();
        assert!(e.source().is_some());
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<CoreError>();
    }
}
