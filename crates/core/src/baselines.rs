//! Prior-work baselines: Hop-Count-based and Contention-based caching.
//!
//! The evaluation compares against two wireless-caching schemes:
//!
//! * **Hopc** — Nuggehalli et al. \[13\]: cache-location selection driven
//!   by *hop-count* access delay;
//! * **Cont** — Sung et al. \[4\]: the same style of selection driven by a
//!   *contention* delay metric (degree-based path costs).
//!
//! Both select caching nodes from the **topology only** — no storage
//! feedback — so they pick the same set for every chunk. Selection is a
//! greedy facility-location sweep: starting from the producer, keep
//! adding the node that most reduces total access cost in the scheme's
//! own metric, while each added cache charges `λ · |clients|` (the
//! scheme's caching-energy weight; the paper sets `λ = 1`).
//!
//! The **multi-item extension** of §V is implemented as described: the
//! chosen set absorbs chunks until no member has vacancy, then the
//! procedure recurses on the subgraph of untouched nodes (largest
//! connected component when it falls apart), until every chunk is
//! placed or storage is exhausted.
//!
//! Costs reported per chunk use the same Contention Cost model as every
//! other planner, so the figures compare like with like.

use peercache_graph::paths::{AllPairsPaths, PathSelection};
use peercache_graph::{components, NodeId};

use crate::costs::CostWeights;
use crate::instance::ConflInstance;
use crate::placement::Placement;
use crate::planner::{chunk_span, commit_chunk, finish_chunk_span, CachePlanner};
use crate::{ChunkId, CoreError, Network};

/// Which delay metric drives the baseline's greedy selection.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BaselineMetric {
    /// Hop count (Nuggehalli et al. \[13\]).
    HopCount,
    /// Static degree-based contention (Sung et al. \[4\]) — node term
    /// `w_k` without the `(1 + S(k))` storage feedback.
    StaticContention,
}

/// Configuration shared by both baselines.
#[derive(Debug, Clone, PartialEq)]
pub struct BaselineConfig {
    /// Caching-cost weight `λ`; each cache charges `λ · |clients|`
    /// in metric units during selection. The paper uses `λ = 1`.
    pub lambda: f64,
    /// Objective weights used when *reporting* costs.
    pub weights: CostWeights,
    /// Path routing model used when *reporting* costs.
    pub selection: PathSelection,
}

impl Default for BaselineConfig {
    fn default() -> Self {
        BaselineConfig {
            lambda: 1.0,
            weights: CostWeights::default(),
            selection: PathSelection::FewestHops,
        }
    }
}

/// Greedy baseline planner (Hopc or Cont depending on the metric).
#[derive(Debug, Clone)]
pub struct GreedyBaselinePlanner {
    metric: BaselineMetric,
    /// Planner parameters.
    pub config: BaselineConfig,
}

impl GreedyBaselinePlanner {
    /// The Hop-Count-based planner ("Hopc").
    pub fn hop_count(config: BaselineConfig) -> Self {
        GreedyBaselinePlanner {
            metric: BaselineMetric::HopCount,
            config,
        }
    }

    /// The Contention-based planner ("Cont").
    pub fn contention(config: BaselineConfig) -> Self {
        GreedyBaselinePlanner {
            metric: BaselineMetric::StaticContention,
            config,
        }
    }

    /// The metric driving this planner's selection.
    pub fn metric(&self) -> BaselineMetric {
        self.metric
    }
}

/// Greedily selects a caching set on (a component of) the topology.
///
/// `component` lists the nodes of the currently active subgraph in
/// original ids; the producer participates as a free pre-opened provider
/// when it belongs to the component. Returns chosen nodes (never the
/// producer), sorted.
fn greedy_select(
    net: &Network,
    metric: BaselineMetric,
    lambda: f64,
    component: &[NodeId],
) -> Result<Vec<NodeId>, CoreError> {
    let (sub, originals) = net.graph().induced_subgraph(component)?;
    if sub.node_count() == 0 {
        return Ok(Vec::new());
    }
    // Metric within the subgraph.
    let node_costs: Vec<f64> = match metric {
        // Hop counts come straight from path hops; node costs unused.
        BaselineMetric::HopCount => vec![0.0; sub.node_count()],
        BaselineMetric::StaticContention => sub.nodes().map(|k| sub.degree(k) as f64).collect(),
    };
    let paths = AllPairsPaths::compute(&sub, &node_costs, PathSelection::FewestHops)?;
    let cost = |i: usize, j: usize| -> f64 {
        match metric {
            BaselineMetric::HopCount => paths
                .hops(NodeId::new(i), NodeId::new(j))
                .map_or(f64::INFINITY, f64::from),
            BaselineMetric::StaticContention => paths.cost(NodeId::new(i), NodeId::new(j)),
        }
    };

    let producer_local = originals.iter().position(|&o| o == net.producer());
    let clients: Vec<usize> = (0..sub.node_count())
        .filter(|&i| Some(i) != producer_local)
        .collect();
    if clients.is_empty() {
        return Ok(Vec::new());
    }
    let facility_charge = lambda * clients.len() as f64;

    let mut current: Vec<f64> = clients
        .iter()
        .map(|&j| producer_local.map_or(f64::INFINITY, |p| cost(p, j)))
        .collect();
    let mut chosen_local: Vec<usize> = Vec::new();
    loop {
        let mut best: Option<(f64, usize)> = None;
        for &cand in &clients {
            if chosen_local.contains(&cand) {
                continue;
            }
            let gain: f64 = clients
                .iter()
                .enumerate()
                .map(|(idx, &j)| {
                    let c = cost(cand, j);
                    if current[idx].is_infinite() {
                        // Unreached clients value any provider highly but
                        // finitely: use the subgraph diameter surrogate.
                        (sub.node_count() as f64) - c.min(sub.node_count() as f64)
                    } else {
                        (current[idx] - c).max(0.0)
                    }
                })
                .sum();
            if best.is_none_or(|(bg, bc)| gain > bg || (gain == bg && cand < bc)) {
                best = Some((gain, cand));
            }
        }
        // Both schemes always deploy at least one cache (the paper's
        // baselines "choose a group of nodes" unconditionally); further
        // caches must beat the λ-scaled caching charge.
        let force = chosen_local.is_empty();
        match best {
            Some((gain, cand)) if force || gain > facility_charge => {
                chosen_local.push(cand);
                for (idx, &j) in clients.iter().enumerate() {
                    current[idx] = current[idx].min(cost(cand, j));
                }
            }
            _ => break,
        }
    }
    let mut out: Vec<NodeId> = chosen_local.into_iter().map(|l| originals[l]).collect();
    out.sort_unstable();
    Ok(out)
}

impl CachePlanner for GreedyBaselinePlanner {
    fn name(&self) -> &str {
        match self.metric {
            BaselineMetric::HopCount => "Hopc",
            BaselineMetric::StaticContention => "Cont",
        }
    }

    fn plan(&self, net: &mut Network, chunk_count: usize) -> Result<Placement, CoreError> {
        if !(self.config.lambda.is_finite() && self.config.lambda >= 0.0) {
            return Err(CoreError::InvalidParameter(format!(
                "lambda must be nonnegative and finite, got {}",
                self.config.lambda
            )));
        }
        let mut placement = Placement::default();
        // `used_up` marks nodes already claimed by a previous round's set.
        let mut claimed = vec![false; net.node_count()];
        let mut round_set: Vec<NodeId> = Vec::new();
        let name = match self.metric {
            BaselineMetric::HopCount => "Hopc",
            BaselineMetric::StaticContention => "Cont",
        };
        for q in 0..chunk_count {
            let chunk = ChunkId::new(q);
            let span = chunk_span(name, chunk);
            // Refresh the round set when nobody in it has vacancy left.
            if round_set.iter().all(|&i| net.remaining(i) == 0) {
                round_set = self.next_round_set(net, &mut claimed)?;
            }
            let caches: Vec<NodeId> = round_set
                .iter()
                .copied()
                .filter(|&i| net.remaining(i) > 0)
                .collect();
            let inst = ConflInstance::build_for_chunk(
                net,
                chunk,
                self.config.weights,
                self.config.selection,
            )?;
            let cp = commit_chunk(net, &inst, chunk, &caches)?;
            finish_chunk_span(span, &cp);
            placement.push(cp);
        }
        Ok(placement)
    }
}

impl GreedyBaselinePlanner {
    /// Selects the next round's caching set on the residual subgraph
    /// (§V's multi-item extension), marking its members as claimed.
    fn next_round_set(
        &self,
        net: &Network,
        claimed: &mut [bool],
    ) -> Result<Vec<NodeId>, CoreError> {
        // Residual nodes: unclaimed, with capacity, plus the producer.
        let residual: Vec<NodeId> = net
            .graph()
            .nodes()
            .filter(|&n| n == net.producer() || (!claimed[n.index()] && net.remaining(n) > 0))
            .collect();
        if residual.len() <= 1 {
            return Ok(Vec::new()); // nothing but the producer left
        }
        let (sub, originals) = net.graph().induced_subgraph(&residual)?;
        let comp_local = components::largest_component(&sub);
        let component: Vec<NodeId> = comp_local.iter().map(|&l| originals[l.index()]).collect();
        let set = greedy_select(net, self.metric, self.config.lambda, &component)?;
        for &i in &set {
            claimed[i.index()] = true;
        }
        Ok(set)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use peercache_graph::builders;

    fn net6() -> Network {
        Network::new(builders::grid(6, 6), NodeId::new(9), 5).unwrap()
    }

    #[test]
    fn baselines_choose_a_fixed_set_while_capacity_lasts() {
        for planner in [
            GreedyBaselinePlanner::hop_count(BaselineConfig::default()),
            GreedyBaselinePlanner::contention(BaselineConfig::default()),
        ] {
            let mut net = net6();
            let placement = planner.plan(&mut net, 5).unwrap();
            let first = &placement.chunks()[0].caches;
            assert!(!first.is_empty(), "{} chose nothing", planner.name());
            for cp in placement.chunks() {
                assert_eq!(&cp.caches, first, "{} set changed early", planner.name());
            }
        }
    }

    #[test]
    fn contention_baseline_spreads_more_than_hop_count() {
        let mut hnet = net6();
        let mut cnet = net6();
        let hopc = GreedyBaselinePlanner::hop_count(BaselineConfig::default())
            .plan(&mut hnet, 1)
            .unwrap();
        let cont = GreedyBaselinePlanner::contention(BaselineConfig::default())
            .plan(&mut cnet, 1)
            .unwrap();
        assert!(
            cont.chunks()[0].caches.len() >= hopc.chunks()[0].caches.len(),
            "cont {} < hopc {}",
            cont.chunks()[0].caches.len(),
            hopc.chunks()[0].caches.len()
        );
    }

    #[test]
    fn multi_item_extension_recruits_a_second_set() {
        // Capacity 2, 5 chunks: the first set fills after 2 chunks.
        let mut net = Network::new(builders::grid(4, 4), NodeId::new(5), 2).unwrap();
        let planner = GreedyBaselinePlanner::contention(BaselineConfig::default());
        let placement = planner.plan(&mut net, 5).unwrap();
        let set0 = &placement.chunks()[0].caches;
        let set2 = &placement.chunks()[2].caches;
        assert!(!set0.is_empty());
        assert!(
            set0.iter().all(|n| !set2.contains(n)),
            "sets must be disjoint"
        );
    }

    #[test]
    fn exhausted_storage_falls_back_to_producer_only() {
        let mut net = Network::new(builders::grid(3, 3), NodeId::new(4), 1).unwrap();
        let planner = GreedyBaselinePlanner::hop_count(BaselineConfig::default());
        // 9 chunks cannot all be cached with 8 slots; late chunks get
        // empty cache sets instead of errors.
        let placement = planner.plan(&mut net, 9).unwrap();
        assert_eq!(placement.chunks().len(), 9);
        assert!(placement.chunks().last().unwrap().caches.is_empty());
    }

    #[test]
    fn negative_lambda_is_rejected() {
        let mut net = net6();
        let planner = GreedyBaselinePlanner::hop_count(BaselineConfig {
            lambda: -1.0,
            ..Default::default()
        });
        assert!(matches!(
            planner.plan(&mut net, 1),
            Err(CoreError::InvalidParameter(_))
        ));
    }

    #[test]
    fn names_match_the_figures() {
        assert_eq!(
            GreedyBaselinePlanner::hop_count(BaselineConfig::default()).name(),
            "Hopc"
        );
        assert_eq!(
            GreedyBaselinePlanner::contention(BaselineConfig::default()).name(),
            "Cont"
        );
    }

    #[test]
    fn selection_is_deterministic() {
        let planner = GreedyBaselinePlanner::contention(BaselineConfig::default());
        let mut n1 = net6();
        let mut n2 = net6();
        let p1 = planner.plan(&mut n1, 3).unwrap();
        let p2 = planner.plan(&mut n2, 3).unwrap();
        assert_eq!(p1, p2);
    }
}
