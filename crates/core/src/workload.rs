//! Workload and scenario generation for the evaluation.
//!
//! The paper's simulations run on grid networks (producer at node 9,
//! capacity 5, 5 chunks) and connected random geometric networks of
//! 20–180 nodes. [`ScenarioBuilder`] assembles those [`Network`]s
//! reproducibly from a seed.

use peercache_graph::{builders, NodeId};
use rand::Rng;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

use crate::{CoreError, Network};

/// Topology families used in the paper's evaluation.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Topology {
    /// A `rows x cols` grid (§V-A).
    Grid {
        /// Grid rows.
        rows: usize,
        /// Grid columns.
        cols: usize,
    },
    /// A connected random geometric network in the unit square.
    RandomGeometric {
        /// Number of nodes.
        nodes: usize,
        /// Communication range.
        range: f64,
    },
    /// A connected Erdős–Rényi network (stress testing).
    ErdosRenyi {
        /// Number of nodes.
        nodes: usize,
        /// Edge probability.
        p: f64,
    },
}

/// Builder for evaluation scenarios.
///
/// # Example
///
/// ```
/// use peercache_core::workload::{ScenarioBuilder, Topology};
///
/// // The paper's default: 6x6 grid, producer node 9, capacity 5.
/// let net = ScenarioBuilder::new(Topology::Grid { rows: 6, cols: 6 })
///     .capacity(5)
///     .producer(9)
///     .build()?;
/// assert_eq!(net.node_count(), 36);
/// assert_eq!(net.producer().index(), 9);
/// # Ok::<(), peercache_core::CoreError>(())
/// ```
#[derive(Debug, Clone)]
pub struct ScenarioBuilder {
    topology: Topology,
    capacity: usize,
    capacity_range: Option<(usize, usize)>,
    producer: Option<usize>,
    seed: u64,
}

impl ScenarioBuilder {
    /// Starts a scenario on the given topology with the paper's
    /// defaults: capacity 5, producer node 9 (clamped to the graph),
    /// seed 0.
    pub fn new(topology: Topology) -> Self {
        ScenarioBuilder {
            topology,
            capacity: 5,
            capacity_range: None,
            producer: None,
            seed: 0,
        }
    }

    /// Uniform per-node caching capacity (default 5, as in §V-A).
    pub fn capacity(mut self, chunks: usize) -> Self {
        self.capacity = chunks;
        self
    }

    /// Heterogeneous capacities drawn uniformly from `min..=max`
    /// (models devices contributing different amounts of storage).
    pub fn capacity_between(mut self, min: usize, max: usize) -> Self {
        self.capacity_range = Some((min.min(max), min.max(max)));
        self
    }

    /// Index of the producer node (default: node 9, clamped into range).
    pub fn producer(mut self, index: usize) -> Self {
        self.producer = Some(index);
        self
    }

    /// RNG seed for random topologies and capacities.
    pub fn seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Builds the network.
    ///
    /// # Errors
    ///
    /// Propagates [`CoreError`] from [`Network`] construction (bad
    /// producer index, degenerate topology).
    pub fn build(&self) -> Result<Network, CoreError> {
        let mut rng = ChaCha8Rng::seed_from_u64(self.seed);
        let graph = match self.topology {
            Topology::Grid { rows, cols } => builders::grid(rows, cols),
            Topology::RandomGeometric { nodes, range } => {
                builders::random_geometric(nodes, range, &mut rng)
            }
            Topology::ErdosRenyi { nodes, p } => {
                builders::erdos_renyi_connected(nodes, p, &mut rng)
            }
        };
        let n = graph.node_count();
        let producer = NodeId::new(self.producer.unwrap_or(9).min(n.saturating_sub(1)));
        match self.capacity_range {
            None => Network::new(graph, producer, self.capacity),
            Some((min, max)) => {
                let caps = (0..n).map(|_| rng.gen_range(min..=max)).collect();
                Network::with_capacities(graph, producer, caps)
            }
        }
    }
}

/// The paper's default benchmark scenario: a `side x side` grid,
/// producer node 9 (or the last node on tiny grids), capacity 5.
///
/// # Errors
///
/// Propagates [`CoreError`] from network construction.
pub fn paper_grid(side: usize) -> Result<Network, CoreError> {
    ScenarioBuilder::new(Topology::Grid {
        rows: side,
        cols: side,
    })
    .build()
}

/// The paper's random-network scenario: `nodes` nodes, a range chosen
/// to keep average degree moderate, producer node 0, capacity 5.
///
/// # Errors
///
/// Propagates [`CoreError`] from network construction.
pub fn paper_random(nodes: usize, seed: u64) -> Result<Network, CoreError> {
    // Range ~ sqrt(8 / (pi n)) keeps the expected degree near 8 while
    // the repair step guarantees connectivity at every size.
    let range = (8.0 / (std::f64::consts::PI * nodes as f64)).sqrt();
    ScenarioBuilder::new(Topology::RandomGeometric { nodes, range })
        .producer(0)
        .seed(seed)
        .build()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_grid_defaults() {
        let net = paper_grid(6).unwrap();
        assert_eq!(net.node_count(), 36);
        assert_eq!(net.producer().index(), 9);
        assert_eq!(net.capacity(NodeId::new(0)), 5);
    }

    #[test]
    fn tiny_grid_clamps_producer() {
        let net = paper_grid(2).unwrap();
        assert_eq!(net.producer().index(), 3);
    }

    #[test]
    fn random_scenarios_are_reproducible() {
        let a = paper_random(40, 7).unwrap();
        let b = paper_random(40, 7).unwrap();
        assert_eq!(a, b);
        let c = paper_random(40, 8).unwrap();
        assert_ne!(a, c);
    }

    #[test]
    fn heterogeneous_capacities_stay_in_range() {
        let net = ScenarioBuilder::new(Topology::Grid { rows: 4, cols: 4 })
            .capacity_between(1, 3)
            .seed(5)
            .build()
            .unwrap();
        for n in net.graph().nodes() {
            assert!((1..=3).contains(&net.capacity(n)));
        }
    }

    #[test]
    fn erdos_renyi_builds_connected_networks() {
        let net = ScenarioBuilder::new(Topology::ErdosRenyi { nodes: 25, p: 0.1 })
            .producer(0)
            .seed(3)
            .build()
            .unwrap();
        assert_eq!(net.node_count(), 25);
    }

    #[test]
    fn bad_producer_index_is_clamped_not_rejected() {
        let net = ScenarioBuilder::new(Topology::Grid { rows: 2, cols: 2 })
            .producer(100)
            .build()
            .unwrap();
        assert_eq!(net.producer().index(), 3);
    }
}
