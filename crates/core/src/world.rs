//! Churn-aware cache world — the dynamic-topology generalization of
//! the online layer.
//!
//! The planners and [`crate::online::OnlineCache`] assume the topology
//! fixed while chunks come and go. Pervasive edge environments are not
//! that polite: peers walk away mid-session, new ones join, and
//! wireless links appear and drop. [`CacheWorld`] owns the network and
//! consumes a typed stream of [`WorldEvent`]s, keeping the placement
//! records consistent with the mutating topology through **incremental
//! placement repair**:
//!
//! * a departure only re-plans the chunks it *orphaned* — chunks that
//!   lost a cached copy, whose clients must be re-served — via a scoped
//!   dual ascent against the carried [`ContentionMatrix`] (survivor
//!   copies stay pinned as pre-opened facilities);
//! * placements merely *touched* by churn (a dead client in the
//!   assignment, a dissemination tree routed over a dropped link) are
//!   refreshed in place: clients re-assigned among the surviving
//!   holders and the Steiner tree rebuilt, with no copy movement;
//! * everything else is left alone — the contention snapshot itself is
//!   refreshed through the structural dirty-set rules of
//!   [`peercache_graph::paths::AllPairsPaths::update_topology`], so the
//!   all-pairs recompute is scoped too.
//!
//! Full replanning survives as the oracle: [`CacheWorld::repair_vs_replan`]
//! re-places every live chunk from scratch on a copy of the network and
//! reports the contention-cost gap and wall-clock comparison, which the
//! churn benchmarks and the determinism suite assert against.

use std::collections::BTreeMap;

use peercache_graph::{steiner, NodeId};
use peercache_obs as obs;
use peercache_obs::MonotonicClock;

use crate::approx::{dual_ascent, ApproxConfig};
use crate::costs::ContentionMatrix;
use crate::instance::{ConflInstance, SetCosts};
use crate::placement::{recost_final, ChunkPlacement, Placement};
use crate::planner::{commit_chunk_replicated, prune_unused_facilities};
use crate::scoped::ScopedConfig;
use crate::sharded::{ShardConfig, ShardedWorld};
use crate::{ChunkId, CoreError, Network, PartitionPolicy};

/// One step of the dynamic environment driving a [`CacheWorld`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum WorldEvent {
    /// The producer publishes the next chunk; it is placed immediately
    /// with the approximation algorithm.
    ChunkArrived,
    /// A live chunk becomes outdated; every cached copy is evicted.
    ChunkRetired(ChunkId),
    /// A new peer joins, linking to the given active nodes with the
    /// given storage capacity.
    NodeJoined {
        /// Active nodes the newcomer links to (at least one).
        neighbors: Vec<NodeId>,
        /// Storage capacity of the newcomer, in chunks.
        capacity: usize,
    },
    /// An active peer vanishes together with everything it cached.
    NodeDeparted(NodeId),
    /// A wireless link comes up.
    LinkUp(NodeId, NodeId),
    /// A wireless link drops.
    LinkDown(NodeId, NodeId),
}

/// What applying one [`WorldEvent`] did to the world.
#[derive(Debug, Clone, PartialEq)]
pub enum EventOutcome {
    /// A chunk arrived and was placed.
    Placed(ChunkPlacement),
    /// A chunk was retired.
    Retired {
        /// The retired chunk.
        chunk: ChunkId,
        /// Cached copies evicted network-wide.
        copies_freed: usize,
    },
    /// A peer joined the network.
    Joined {
        /// Id assigned to the newcomer.
        node: NodeId,
        /// Live chunks whose assignments were refreshed to include the
        /// newcomer's demand.
        refreshed: Vec<ChunkId>,
    },
    /// A peer departed; placements were repaired.
    Departed(RepairReport),
    /// A link-up event was applied.
    LinkAdded {
        /// `false` if the link already existed.
        added: bool,
    },
    /// A link-down event was applied.
    LinkRemoved {
        /// `false` if there was no such link.
        removed: bool,
        /// Live chunks whose dissemination trees crossed the dropped
        /// link and were rebuilt.
        refreshed: Vec<ChunkId>,
    },
}

/// A partition transition observed by a partition-tolerant world,
/// recorded in a drainable log (see
/// [`CacheWorld::take_partition_events`]).
///
/// Kept out of [`EventOutcome`] so existing consumers of the outcome
/// enum keep compiling: any [`WorldEvent`] can form or heal a partition
/// as a side effect of its primary outcome.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum PartitionEvent {
    /// The active subgraph split into more components than before.
    Formed {
        /// The components after the split, each sorted ascending.
        components: Vec<Vec<NodeId>>,
        /// Interested clients of live chunks left without any reachable
        /// data source (producer or replica) — their demand is deferred.
        deferred_clients: usize,
    },
    /// Components merged back together.
    Healed {
        /// The components after the merge, each sorted ascending.
        components: Vec<Vec<NodeId>>,
        /// Previously deferred clients that regained a data source and
        /// were folded back into the live assignments.
        restored_clients: usize,
    },
}

/// What a node departure cost and how it was repaired, returned by
/// [`CacheWorld::apply`] for [`WorldEvent::NodeDeparted`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RepairReport {
    /// The departed node.
    pub node: NodeId,
    /// Chunks whose copy on the departed node was lost.
    pub lost_chunks: Vec<ChunkId>,
    /// Chunks re-placed by the scoped dual ascent (lost a copy).
    pub repaired: Vec<ChunkId>,
    /// Chunks refreshed in place (touched by the departure without
    /// losing a copy): assignments re-derived, trees rebuilt.
    pub refreshed: Vec<ChunkId>,
    /// New copies cached by the repair, as `(chunk, node)` pairs.
    pub new_copies: Vec<(ChunkId, NodeId)>,
    /// Clients whose recorded provider was the departed node.
    pub orphaned_clients: usize,
    /// All-pairs shortest-path sources the incremental matrix update
    /// actually recomputed (out of `node_count`).
    pub apsp_rows: usize,
    /// Wall-clock time of the whole departure handling, microseconds.
    pub wall_us: u64,
}

/// Cost-gap report of [`CacheWorld::repair_vs_replan`]: the incremental
/// repair state versus re-placing every live chunk from scratch.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RepairVsReplan {
    /// Live chunks compared.
    pub live_chunks: usize,
    /// Total contention cost of the repaired placements, re-priced
    /// under the current state ([`recost_final`]).
    pub repair_contention: f64,
    /// Total contention cost of the from-scratch replan, re-priced
    /// under its own final state.
    pub replan_contention: f64,
    /// `repair_contention / replan_contention` (1.0 when both are 0).
    pub cost_ratio: f64,
    /// Accumulated wall-clock time of every departure repair so far,
    /// microseconds.
    pub repair_wall_us: u64,
    /// Wall-clock time of the from-scratch replan, microseconds.
    pub replan_wall_us: u64,
}

/// Tick-resolution world telemetry: one sample per applied event, on
/// the deterministic event index (never ambient time). Created only
/// when the observability sink is enabled (or forced via
/// [`CacheWorld::with_timeseries`]), so an untraced world does no
/// sampling work at all.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WorldSeries {
    /// Active-component count after each event.
    pub components: obs::TimeSeries,
    /// Live (served) demand: clients with a reachable data source,
    /// summed over live chunks.
    pub demand_live: obs::TimeSeries,
    /// Deferred demand: interested clients cut off from every source.
    pub demand_deferred: obs::TimeSeries,
}

impl WorldSeries {
    fn new() -> Self {
        WorldSeries {
            components: obs::TimeSeries::new("world.components"),
            demand_live: obs::TimeSeries::new("world.demand_live"),
            demand_deferred: obs::TimeSeries::new("world.demand_deferred"),
        }
    }

    /// Writes all three series to the sink (no-op when disabled).
    pub fn emit(&self) {
        self.components.emit();
        self.demand_live.emit();
        self.demand_deferred.emit();
    }
}

/// Re-evaluation of one holder set under the carried snapshot.
struct HolderEval {
    assignment: Vec<(NodeId, NodeId)>,
    tree_edges: Vec<(NodeId, NodeId)>,
    access: f64,
    dissemination: f64,
}

/// An evolving cache over a mutating topology.
///
/// Owns the [`Network`] outright; every mutation flows through
/// [`CacheWorld::apply`] (or a typed convenience method), which keeps
/// three pieces of state mutually consistent that raw network access
/// could silently desynchronize: the live-chunk set, the per-chunk
/// placement records, and the carried contention snapshot.
///
/// # Example
///
/// ```
/// use peercache_core::approx::ApproxConfig;
/// use peercache_core::workload::paper_grid;
/// use peercache_core::world::{CacheWorld, WorldEvent};
/// use peercache_graph::NodeId;
///
/// let mut world = CacheWorld::new(paper_grid(4)?, ApproxConfig::default());
/// world.apply(WorldEvent::ChunkArrived)?;
/// world.apply(WorldEvent::ChunkArrived)?;
/// // A cacher walks away; its orphaned clients are re-served.
/// let holder = world.placement(world.live_chunks()[0]).unwrap().caches[0];
/// world.apply(WorldEvent::NodeDeparted(holder))?;
/// world.validate()?;
/// # Ok::<(), peercache_core::CoreError>(())
/// ```
#[derive(Debug, Clone)]
pub struct CacheWorld {
    net: Network,
    config: ApproxConfig,
    retention: Option<usize>,
    live: Vec<ChunkId>,
    placements: BTreeMap<ChunkId, ChunkPlacement>,
    history: Vec<ChunkPlacement>,
    next_chunk: usize,
    /// Carried contention snapshot; `None` until first needed, and kept
    /// in sync with `net` by every event handler afterwards.
    matrix: Option<ContentionMatrix>,
    events_applied: usize,
    repair_wall_us: u64,
    /// Wall-clock source for repair timing; injectable so the
    /// deterministic layers never read ambient time (lint rule D2).
    clock: MonotonicClock,
    /// Whether the world degrades gracefully across partitions instead
    /// of rejecting partitioning events (see
    /// [`CacheWorld::partition_tolerant`]).
    partition_mode: bool,
    /// Partition transitions observed so far, drained by
    /// [`CacheWorld::take_partition_events`].
    partition_log: Vec<PartitionEvent>,
    /// Event-indexed telemetry; `None` (no sampling cost) unless the
    /// sink is enabled or [`CacheWorld::with_timeseries`] forced it.
    series: Option<WorldSeries>,
}

impl CacheWorld {
    /// Creates a world over `net`, planning every arrival with the
    /// approximation algorithm under `config`.
    pub fn new(net: Network, config: ApproxConfig) -> Self {
        CacheWorld {
            net,
            config,
            retention: None,
            live: Vec::new(),
            placements: BTreeMap::new(),
            history: Vec::new(),
            next_chunk: 0,
            matrix: None,
            events_applied: 0,
            repair_wall_us: 0,
            clock: MonotonicClock::default(),
            partition_mode: false,
            partition_log: Vec::new(),
            series: obs::enabled().then(WorldSeries::new),
        }
    }

    /// Forces event-indexed time-series sampling on even without a
    /// sink (the recorder itself is pure; only [`WorldSeries::emit`]
    /// touches the sink). Lets tests assert the sampled trajectory
    /// deterministically.
    pub fn with_timeseries(mut self) -> Self {
        self.series = Some(WorldSeries::new());
        self
    }

    /// The sampled world trajectory, when sampling is on.
    pub fn series(&self) -> Option<&WorldSeries> {
        self.series.as_ref()
    }

    /// Switches the world to partition-tolerant semantics.
    ///
    /// Departures and link drops that split the active subgraph succeed
    /// (the network moves to [`PartitionPolicy::Allow`]); planning and
    /// repair then run **per component**: a chunk's audience narrows to
    /// the clients whose component holds a data source (the producer or
    /// a surviving replica), the demand of everyone else is explicitly
    /// *deferred* rather than served through infinite-cost paths, and
    /// dissemination trees span only the producer-side replicas —
    /// detached replicas keep serving their own island off-tree. When
    /// components merge again, every live record is reconciled against
    /// the healed reachability and the deferred clients fold back in.
    /// Transitions are reported as typed [`PartitionEvent`]s.
    pub fn partition_tolerant(mut self) -> Self {
        self.net.set_partition_policy(PartitionPolicy::Allow);
        self.partition_mode = true;
        self
    }

    /// Whether this world tolerates partitions (see
    /// [`CacheWorld::partition_tolerant`]).
    pub fn is_partition_tolerant(&self) -> bool {
        self.partition_mode
    }

    /// Drains the partition transitions observed since the last call
    /// (oldest first). Always empty outside partition-tolerant mode.
    pub fn take_partition_events(&mut self) -> Vec<PartitionEvent> {
        std::mem::take(&mut self.partition_log)
    }

    /// Keep at most `chunks` live chunks; older ones are retired before
    /// a new arrival is placed.
    pub fn with_retention(mut self, chunks: usize) -> Self {
        self.retention = Some(chunks.max(1));
        self
    }

    /// Replace the wall-clock source used for repair timing (a
    /// [`MonotonicClock::Fixed`] clock makes timing output fully
    /// deterministic).
    pub fn with_clock(mut self, clock: MonotonicClock) -> Self {
        self.clock = clock;
        self
    }

    /// The live-chunk retention cap, when set.
    pub fn retention(&self) -> Option<usize> {
        self.retention
    }

    /// Hands the world's end state to the region-sharded pipeline:
    /// cached copies stay put, clients are re-assigned under the scoped
    /// provider rule, and trunk trees are rebuilt over the scoped edge
    /// costs. The retention cap and chunk-id counter carry over.
    ///
    /// # Errors
    ///
    /// [`CoreError::InvalidParameter`] when this world is
    /// partition-tolerant — the sharded pipeline requires the
    /// connected-active-set ([`PartitionPolicy::Reject`]) model — or
    /// when the planning parameters are invalid.
    pub fn into_sharded(self, scoped: ScopedConfig) -> Result<ShardedWorld, CoreError> {
        let cfg = ShardConfig {
            approx: self.config,
            scoped,
        };
        ShardedWorld::adopt(self.net, cfg, self.live, self.next_chunk, self.retention)
    }

    /// The current network state.
    pub fn network(&self) -> &Network {
        &self.net
    }

    /// The planning configuration.
    pub fn config(&self) -> &ApproxConfig {
        &self.config
    }

    /// Chunks currently live (not retired), oldest first.
    pub fn live_chunks(&self) -> &[ChunkId] {
        &self.live
    }

    /// The current placement record of a live chunk — kept up to date
    /// through churn, unlike the arrival-time [`CacheWorld::history`].
    pub fn placement(&self, chunk: ChunkId) -> Option<&ChunkPlacement> {
        self.placements.get(&chunk)
    }

    /// Arrival-time placement records, in arrival order (retained even
    /// after a chunk retires; never rewritten by repair).
    pub fn history(&self) -> &[ChunkPlacement] {
        &self.history
    }

    /// Events applied so far.
    pub fn events_applied(&self) -> usize {
        self.events_applied
    }

    /// Accumulated wall-clock time of every departure repair so far,
    /// microseconds.
    pub fn repair_wall_us(&self) -> u64 {
        self.repair_wall_us
    }

    /// Drains battery from a node — environmental change between
    /// events; affects future facility costs only.
    ///
    /// # Panics
    ///
    /// Panics if `node` is out of bounds.
    pub fn drain_battery(&mut self, node: NodeId, amount: f64) {
        self.net.drain_battery(node, amount);
    }

    /// Sets a node's remaining battery fraction.
    ///
    /// # Errors
    ///
    /// As [`Network::set_battery`].
    pub fn set_battery(&mut self, node: NodeId, fraction: f64) -> Result<(), CoreError> {
        self.net.set_battery(node, fraction)
    }

    /// Restricts `chunk` to the given audience. If the chunk is live,
    /// its assignment is refreshed immediately so the placement record
    /// keeps covering exactly the interested clients.
    ///
    /// # Errors
    ///
    /// As [`Network::set_interest`], plus evaluation failures from the
    /// refresh (cannot occur on a connected network).
    pub fn set_interest(
        &mut self,
        chunk: ChunkId,
        clients: impl IntoIterator<Item = NodeId>,
    ) -> Result<(), CoreError> {
        self.net.set_interest(chunk, clients)?;
        if self.placements.contains_key(&chunk) {
            self.refresh_chunk(chunk)?;
        }
        Ok(())
    }

    /// Clients of `chunk` whose component contains a data source — the
    /// producer or a surviving replica. On a connected network this is
    /// exactly [`Network::interested_clients`].
    pub fn served_clients(&self, chunk: ChunkId) -> Vec<NodeId> {
        let interested = self.net.interested_clients(chunk);
        if !self.partition_mode || self.net.component_count() <= 1 {
            return interested;
        }
        let mut sources: Vec<usize> = self
            .net
            .component_of(self.net.producer())
            .into_iter()
            .chain(
                self.net
                    .holders(chunk)
                    .into_iter()
                    .filter_map(|h| self.net.component_of(h)),
            )
            .collect();
        sources.sort_unstable();
        sources.dedup();
        interested
            .into_iter()
            .filter(|&j| {
                self.net
                    .component_of(j)
                    .is_some_and(|c| sources.binary_search(&c).is_ok())
            })
            .collect()
    }

    /// Interested clients of `chunk` currently cut off from every data
    /// source — their demand is deferred until a heal. Empty on a
    /// connected network.
    pub fn deferred_clients(&self, chunk: ChunkId) -> Vec<NodeId> {
        let served = self.served_clients(chunk);
        self.net
            .interested_clients(chunk)
            .into_iter()
            .filter(|j| served.binary_search(j).is_err())
            .collect()
    }

    /// Total deferred demand across all live chunks (the
    /// `world.deferred_demand` gauge).
    pub fn deferred_demand(&self) -> usize {
        self.live
            .iter()
            .map(|&chunk| self.deferred_clients(chunk).len())
            .sum()
    }

    /// Applies one event and reports what it did.
    ///
    /// On error the underlying network is untouched (every mutator
    /// validates before mutating) and the world stays consistent.
    ///
    /// # Errors
    ///
    /// * [`CoreError::InvalidParameter`] for events naming departed or
    ///   unknown nodes, or a departing producer.
    /// * [`CoreError::DisconnectedNetwork`] if a departure or link drop
    ///   would partition the active nodes — only outside
    ///   [partition-tolerant mode](CacheWorld::partition_tolerant).
    /// * Planning and storage errors from chunk placement.
    pub fn apply(&mut self, event: WorldEvent) -> Result<EventOutcome, CoreError> {
        let comps_before = if self.partition_mode {
            self.net.component_count()
        } else {
            1
        };
        let deferred_before = if self.partition_mode {
            self.deferred_demand()
        } else {
            0
        };
        let outcome = match event {
            WorldEvent::ChunkArrived => EventOutcome::Placed(self.place_next_chunk()?),
            WorldEvent::ChunkRetired(chunk) => EventOutcome::Retired {
                chunk,
                copies_freed: self.retire_chunk(chunk),
            },
            WorldEvent::NodeJoined {
                neighbors,
                capacity,
            } => {
                let (node, refreshed) = self.join(&neighbors, capacity)?;
                EventOutcome::Joined { node, refreshed }
            }
            WorldEvent::NodeDeparted(node) => EventOutcome::Departed(self.depart(node)?),
            WorldEvent::LinkUp(u, v) => EventOutcome::LinkAdded {
                added: self.link_up(u, v)?,
            },
            WorldEvent::LinkDown(u, v) => {
                let (removed, refreshed) = self.link_down(u, v)?;
                EventOutcome::LinkRemoved { removed, refreshed }
            }
        };
        if self.partition_mode {
            self.reconcile_partitions(comps_before, deferred_before)?;
        }
        self.events_applied += 1;
        if self.series.is_some() {
            // Sample on the event index, not ambient time: the
            // trajectory is a pure function of the event stream.
            let t = self.events_applied as u64;
            let comps = self.net.component_count() as i64;
            let live = self.live_demand() as i64;
            let deferred = self.deferred_demand() as i64;
            if let Some(series) = self.series.as_mut() {
                series.components.record(t, comps);
                series.demand_live.record(t, live);
                series.demand_deferred.record(t, deferred);
            }
        }
        #[cfg(feature = "strict-invariants")]
        self.strict_check();
        Ok(outcome)
    }

    /// Total served demand across all live chunks (the complement of
    /// [`CacheWorld::deferred_demand`]).
    pub fn live_demand(&self) -> usize {
        self.live
            .iter()
            .map(|&chunk| self.served_clients(chunk).len())
            .sum()
    }

    /// Post-event partition bookkeeping: when the component count moved,
    /// every live record is re-derived against the new reachability
    /// (narrowing audiences on a split, folding deferred demand back in
    /// on a heal) and a typed [`PartitionEvent`] is logged.
    fn reconcile_partitions(
        &mut self,
        comps_before: usize,
        deferred_before: usize,
    ) -> Result<(), CoreError> {
        let comps_after = self.net.component_count();
        if comps_after != comps_before {
            for chunk in self.live.clone() {
                self.refresh_chunk(chunk)?;
            }
            let deferred_after = self.deferred_demand();
            let components = self.net.active_components();
            if comps_after > comps_before {
                obs::event!(
                    "world.partition_formed",
                    components = comps_after,
                    deferred_clients = deferred_after,
                );
                self.partition_log.push(PartitionEvent::Formed {
                    components,
                    deferred_clients: deferred_after,
                });
            } else {
                let restored = deferred_before.saturating_sub(deferred_after);
                obs::event!(
                    "world.partition_healed",
                    components = comps_after,
                    restored_clients = restored,
                );
                self.partition_log.push(PartitionEvent::Healed {
                    components,
                    restored_clients: restored,
                });
            }
        }
        if obs::enabled() {
            obs::gauge("world.deferred_demand").set(self.deferred_demand() as i64);
        }
        Ok(())
    }

    /// Runtime oracle run after every event under `strict-invariants`:
    /// the carried contention snapshot must match a from-scratch
    /// recompute bitwise, every live dissemination tree must connect its
    /// caches to the producer, and the world's own consistency audit
    /// must hold.
    ///
    /// # Panics
    ///
    /// Panics on any violated invariant (corrupted incremental state).
    #[cfg(feature = "strict-invariants")]
    fn strict_check(&self) {
        crate::strict::check_component_tracking(&self.net);
        if let Some(matrix) = &self.matrix {
            crate::strict::check_matrix_consistency(
                matrix,
                &self.net,
                self.config.selection,
                self.config.parallelism,
            );
        }
        for chunk in &self.live {
            if let Some(p) = self.placements.get(chunk) {
                crate::strict::check_tree_connectivity(&self.net, p);
            }
        }
        if let Err(e) = self.validate() {
            panic!("strict-invariants: world self-audit failed after event: {e}");
        }
    }

    /// Places the next arriving chunk and returns its placement record
    /// (convenience for [`WorldEvent::ChunkArrived`]).
    ///
    /// # Errors
    ///
    /// Propagates planning and storage errors.
    pub fn insert_chunk(&mut self) -> Result<ChunkPlacement, CoreError> {
        self.place_next_chunk()
    }

    /// Retires a chunk, evicting every cached copy; returns the number
    /// of copies freed (convenience for [`WorldEvent::ChunkRetired`]).
    pub fn retire_chunk(&mut self, chunk: ChunkId) -> usize {
        self.live.retain(|&c| c != chunk);
        self.placements.remove(&chunk);
        let holders = self.net.holders(chunk);
        for &node in &holders {
            self.net.uncache(node, chunk);
        }
        if !holders.is_empty() && self.refresh_matrix().is_err() {
            // Cannot happen on a well-formed network; recompute lazily
            // rather than serving a stale snapshot.
            self.matrix = None;
        }
        obs::event!(
            "online.retire",
            chunk = chunk.index(),
            copies_freed = holders.len(),
            live = self.live.len(),
        );
        holders.len()
    }

    /// Checks that the placement records are consistent with the
    /// network: recorded caches are exactly the holders, every
    /// interested client of every live chunk is assigned to an active
    /// provider that can serve it, dissemination trees only use links
    /// that exist, and no node exceeds its capacity.
    ///
    /// # Errors
    ///
    /// [`CoreError::InvalidParameter`] describing the first violation.
    pub fn validate(&self) -> Result<(), CoreError> {
        let fail = |msg: String| Err(CoreError::InvalidParameter(msg));
        for &chunk in &self.live {
            let Some(p) = self.placements.get(&chunk) else {
                return fail(format!("live chunk {chunk} has no placement record"));
            };
            let holders = self.net.holders(chunk);
            if p.caches != holders {
                return fail(format!(
                    "chunk {chunk}: recorded caches {:?} != holders {holders:?}",
                    p.caches
                ));
            }
            // Under partition tolerance the record must cover exactly
            // the *served* audience; deferred clients are tracked, not
            // assigned. On a connected network this is the full
            // interested audience, as before.
            let audience = self.served_clients(chunk);
            let assigned: Vec<NodeId> = p.assignment.iter().map(|&(j, _)| j).collect();
            if assigned != audience {
                return fail(format!(
                    "chunk {chunk}: assignment covers {assigned:?}, audience is {audience:?}"
                ));
            }
            for &(client, provider) in &p.assignment {
                if !self.net.is_active(provider) || !self.net.can_serve(provider, chunk) {
                    return fail(format!(
                        "chunk {chunk}: client {client} is orphaned (provider {provider})"
                    ));
                }
                if !self.net.same_component(client, provider) {
                    return fail(format!(
                        "chunk {chunk}: client {client} assigned across a \
                         partition to provider {provider}"
                    ));
                }
            }
            for &(u, v) in &p.tree_edges {
                if !self.net.graph().contains_edge(u, v) {
                    return fail(format!(
                        "chunk {chunk}: tree edge ({u}, {v}) does not exist"
                    ));
                }
            }
        }
        for node in self.net.graph().nodes() {
            if self.net.used(node) > self.net.capacity(node) {
                return fail(format!("node {node} exceeds its capacity"));
            }
        }
        Ok(())
    }

    /// Compares the repaired world against the full-replan oracle:
    /// every live chunk is re-placed from scratch (arrival pipeline, in
    /// arrival order) on a reset copy of the current network, and both
    /// placements are re-priced under their own final state.
    ///
    /// # Errors
    ///
    /// Propagates planning failures from the oracle replan. In
    /// partition-tolerant mode the oracle requires a currently-connected
    /// network (a from-scratch replan of a split world has no
    /// well-defined single cost) and returns
    /// [`CoreError::InvalidParameter`] while partitioned.
    pub fn repair_vs_replan(&self) -> Result<RepairVsReplan, CoreError> {
        if self.partition_mode && self.net.component_count() > 1 {
            return Err(CoreError::InvalidParameter(
                "repair_vs_replan requires a connected network; wait for \
                 partitions to heal"
                    .into(),
            ));
        }
        let live_placement: Placement = self
            .live
            .iter()
            .map(|c| self.placements[c].clone())
            .collect();
        let repaired = recost_final(
            &self.net,
            &live_placement,
            self.config.weights,
            self.config.selection,
        )?;
        let repair_contention = repaired.total_contention_cost();

        let start = self.clock.now_us();
        let mut oracle = self.net.clone();
        oracle.reset();
        let mut matrix = ContentionMatrix::compute_with(
            &oracle,
            self.config.selection,
            self.config.parallelism,
        )?;
        let mut chunks = Vec::new();
        for &chunk in &self.live {
            let inst = ConflInstance::build_for_chunk_with_matrix(
                &oracle,
                chunk,
                self.config.weights,
                matrix,
            );
            let (facilities, _) = dual_ascent(&oracle, &inst, &self.config)?;
            let facilities = prune_unused_facilities(&oracle, &inst, &facilities);
            let cp = commit_chunk_replicated(
                &mut oracle,
                &inst,
                chunk,
                &facilities,
                &self.config.replication,
            )?;
            matrix = inst.into_matrix();
            let mut dirty = cp.caches.clone();
            dirty.push(oracle.producer());
            matrix.update(&oracle, &dirty, self.config.parallelism)?;
            chunks.push(cp);
        }
        let replanned = recost_final(
            &oracle,
            &Placement::new(chunks),
            self.config.weights,
            self.config.selection,
        )?;
        let replan_contention = replanned.total_contention_cost();
        let replan_wall_us = self.clock.elapsed_us(start);
        let cost_ratio = if replan_contention > 0.0 {
            repair_contention / replan_contention
        } else {
            1.0
        };
        obs::event!(
            "world.repair_vs_replan",
            live = self.live.len(),
            repair_contention = repair_contention,
            replan_contention = replan_contention,
            cost_ratio = cost_ratio,
            repair_wall_us = self.repair_wall_us,
            replan_wall_us = replan_wall_us,
        );
        Ok(RepairVsReplan {
            live_chunks: self.live.len(),
            repair_contention,
            replan_contention,
            cost_ratio,
            repair_wall_us: self.repair_wall_us,
            replan_wall_us,
        })
    }

    // ------------------------------------------------------------------
    // Event handlers.
    // ------------------------------------------------------------------

    fn place_next_chunk(&mut self) -> Result<ChunkPlacement, CoreError> {
        if let Some(window) = self.retention {
            while self.live.len() >= window {
                let oldest = self.live[0];
                self.retire_chunk(oldest);
            }
        }
        let chunk = ChunkId::new(self.next_chunk);
        self.next_chunk += 1;
        let mut span = obs::span!("online.insert", chunk = chunk.index());
        let inst = self.build_instance(chunk)?;
        let (facilities, stats) = dual_ascent(&self.net, &inst, &self.config)?;
        let facilities = prune_unused_facilities(&self.net, &inst, &facilities);
        let placement = commit_chunk_replicated(
            &mut self.net,
            &inst,
            chunk,
            &facilities,
            &self.config.replication,
        )?;
        let mut matrix = inst.into_matrix();
        let mut dirty = placement.caches.clone();
        dirty.push(self.net.producer());
        matrix.update(&self.net, &dirty, self.config.parallelism)?;
        self.matrix = Some(matrix);
        if span.is_recording() {
            span.add_field("rounds", obs::Value::from(stats.rounds));
            span.add_field("copies", obs::Value::from(placement.caches.len()));
            span.add_field("live", obs::Value::from(self.live.len() + 1));
            span.add_field("cost_total", obs::Value::from(placement.costs.total()));
        }
        self.live.push(chunk);
        self.placements.insert(chunk, placement.clone());
        self.history.push(placement.clone());
        Ok(placement)
    }

    fn join(
        &mut self,
        neighbors: &[NodeId],
        capacity: usize,
    ) -> Result<(NodeId, Vec<ChunkId>), CoreError> {
        let node = self.net.join_node(neighbors, capacity)?;
        // Node count changed: the snapshot rebuilds wholesale.
        self.update_matrix_topology(&[], &[])?;
        let live = self.live.clone();
        for &chunk in &live {
            self.refresh_chunk(chunk)?;
        }
        obs::event!(
            "world.join",
            node = node.index(),
            links = neighbors.len(),
            refreshed = live.len(),
        );
        Ok((node, live))
    }

    fn depart(&mut self, node: NodeId) -> Result<RepairReport, CoreError> {
        let start = self.clock.now_us();
        let mut span = obs::span!("world.repair", node = node.index());
        let dep = self.net.deactivate_node(node)?;
        let removed: Vec<(NodeId, NodeId)> =
            dep.former_neighbors.iter().map(|&v| (node, v)).collect();
        let apsp_rows = self.update_matrix_topology(&removed, &[])?;

        // Classify the fallout before mutating anything, so refreshes
        // run after every repair has settled the snapshot. A Steiner
        // tree can route *through* the departed node even when it
        // holds no copy; those trees lost edges and must be rebuilt
        // (behind one shared solver). Every other touched chunk merely
        // listed the node as a client or provider — re-assigning
        // clients and re-pricing the intact tree suffices.
        let mut lost = Vec::new();
        let mut tree_hit = Vec::new();
        let mut client_only = Vec::new();
        let mut refreshed = Vec::new();
        for chunk in self.live.clone() {
            let p = &self.placements[&chunk];
            if dep.lost_chunks.contains(&chunk) {
                lost.push(chunk);
            } else if p.tree_edges.iter().any(|&(a, b)| a == node || b == node) {
                tree_hit.push(chunk);
                refreshed.push(chunk);
            } else if placement_touches(p, node) {
                client_only.push(chunk);
                refreshed.push(chunk);
            }
        }
        let mut repaired = Vec::new();
        let mut new_copies = Vec::new();
        let mut orphaned_clients = 0usize;
        for &chunk in &lost {
            let orphans: Vec<NodeId> = self.placements[&chunk]
                .assignment
                .iter()
                .filter(|&&(client, provider)| provider == node && client != node)
                .map(|&(client, _)| client)
                .collect();
            orphaned_clients += orphans.len();
            let added = self.repair_chunk(chunk, &orphans)?;
            new_copies.extend(added.into_iter().map(|i| (chunk, i)));
            repaired.push(chunk);
        }
        self.refresh_chunks_shared_tree(&tree_hit)?;
        for &chunk in &client_only {
            self.refresh_chunk_keeping_tree(chunk)?;
        }
        let wall_us = self.clock.elapsed_us(start);
        self.repair_wall_us += wall_us;
        if span.is_recording() {
            span.add_field("lost_chunks", obs::Value::from(dep.lost_chunks.len()));
            span.add_field("repaired", obs::Value::from(repaired.len()));
            span.add_field("refreshed", obs::Value::from(refreshed.len()));
            span.add_field("new_copies", obs::Value::from(new_copies.len()));
            span.add_field("orphaned_clients", obs::Value::from(orphaned_clients));
            span.add_field("apsp_rows", obs::Value::from(apsp_rows));
        }
        Ok(RepairReport {
            node,
            lost_chunks: dep.lost_chunks,
            repaired,
            refreshed,
            new_copies,
            orphaned_clients,
            apsp_rows,
            wall_us,
        })
    }

    fn link_up(&mut self, u: NodeId, v: NodeId) -> Result<bool, CoreError> {
        let added = self.net.add_link(u, v)?;
        if added {
            self.update_matrix_topology(&[], &[(u, v)])?;
            obs::event!("world.link_up", u = u.index(), v = v.index());
        }
        Ok(added)
    }

    fn link_down(&mut self, u: NodeId, v: NodeId) -> Result<(bool, Vec<ChunkId>), CoreError> {
        let removed = self.net.remove_link(u, v)?;
        let mut refreshed = Vec::new();
        if removed {
            self.update_matrix_topology(&[(u, v)], &[])?;
            for chunk in self.live.clone() {
                let crosses = self.placements[&chunk]
                    .tree_edges
                    .iter()
                    .any(|&(a, b)| (a == u && b == v) || (a == v && b == u));
                if crosses {
                    self.refresh_chunk(chunk)?;
                    refreshed.push(chunk);
                }
            }
            obs::event!(
                "world.link_down",
                u = u.index(),
                v = v.index(),
                refreshed = refreshed.len(),
            );
        }
        Ok((removed, refreshed))
    }

    // ------------------------------------------------------------------
    // Repair machinery.
    // ------------------------------------------------------------------

    /// Re-places one chunk that lost a copy: surviving holders stay
    /// pinned (their copies are sunk cost), the orphaned clients drive
    /// a scoped dual ascent that may open new facilities, and the
    /// record is re-derived for the full audience.
    ///
    /// Returns the newly cached copies.
    fn repair_chunk(
        &mut self,
        chunk: ChunkId,
        orphans: &[NodeId],
    ) -> Result<Vec<NodeId>, CoreError> {
        let inst = self.build_instance(chunk)?;
        let survivors = self.net.holders(chunk);
        // Orphans whose component lost every data source cannot be
        // re-served; their demand is deferred (the instance's audience
        // excludes them already), not fed into the ascent.
        let orphans: Vec<NodeId> = orphans
            .iter()
            .copied()
            .filter(|j| inst.clients().binary_search(j).is_ok())
            .collect();
        let newly = repair_ascent(&self.net, &inst, &survivors, &orphans, &self.config)?;
        // One Steiner solver over every node the repair may touch
        // answers the trim scoring and the final tree alike (the same
        // per-terminal shortest-path-tree reuse as
        // `improve_by_removal`). Detached replicas serve their island
        // off-tree, so only producer-side nodes enter the solver.
        let mut universe: Vec<NodeId> = survivors
            .iter()
            .filter(|&&s| self.net.in_producer_component(s))
            .chain(&newly)
            .copied()
            .collect();
        universe.push(inst.producer());
        universe.sort_unstable();
        universe.dedup();
        let solver = steiner::SteinerSolver::new(self.net.graph(), &universe, |u, v| {
            inst.matrix().edge_cost(u, v)
        })?;
        let mut newly = trim_new_facilities(&self.net, &inst, &survivors, newly, &solver)?;
        // R-copy durability floor: the trim keeps only facilities that
        // earn their keep serving orphans, which can leave the chunk
        // below the replication degree after a death. Top back up over
        // the post-trim set; the extras are priced and committed below
        // exactly like ascent-opened facilities.
        let extra = {
            let mut base = survivors.clone();
            base.extend(newly.iter().copied());
            base.sort_unstable();
            base.dedup();
            crate::replication::top_up_targets(
                &self.net,
                &base,
                &self.config.replication,
                |i| inst.facility_cost(i),
                |a, b| inst.connection_cost(a, b),
                inst.producer(),
            )
        };
        newly.extend(extra.iter().copied());
        newly.sort_unstable();
        let mut caches = survivors.clone();
        caches.extend(newly.iter().copied());
        caches.sort_unstable();
        let (assignment, access) = inst.assign_clients(&self.net, &caches);
        let mut terminals: Vec<NodeId> = caches
            .iter()
            .copied()
            .filter(|&c| self.net.in_producer_component(c))
            .collect();
        terminals.push(inst.producer());
        // The shared solver's universe predates the replica top-up, so
        // an R-extended terminal set needs the direct Steiner solve;
        // the single-copy path keeps the solver reuse byte-identical.
        let tree = if extra.is_empty() {
            solver.tree(&terminals)?
        } else {
            steiner::steiner_tree(self.net.graph(), &terminals, |u, v| {
                inst.matrix().edge_cost(u, v)
            })?
        };
        let eval = HolderEval {
            assignment,
            tree_edges: tree.edges,
            access,
            dissemination: inst.weights().dissemination * tree.cost,
        };
        drop(solver);
        // New copies pay their (pre-caching) fairness cost on top of
        // what the chunk's past placements already paid; survivor
        // copies are sunk and not re-priced.
        let added_fairness: f64 = newly.iter().map(|&i| inst.facility_cost(i)).sum();
        let old_fairness = self.placements[&chunk].costs.fairness;
        for &i in &newly {
            self.net.cache(i, chunk)?;
        }
        self.placements.insert(
            chunk,
            ChunkPlacement {
                chunk,
                caches,
                assignment: eval.assignment,
                tree_edges: eval.tree_edges,
                costs: SetCosts {
                    fairness: old_fairness + added_fairness,
                    access: eval.access,
                    dissemination: eval.dissemination,
                },
            },
        );
        let mut matrix = inst.into_matrix();
        if !newly.is_empty() {
            // Same targeted refresh as the arrival path: only the new
            // copies (and the producer) changed their contention terms,
            // and a load increase never forces a full-row sweep.
            let mut dirty = newly.clone();
            dirty.push(self.net.producer());
            matrix.update(&self.net, &dirty, self.config.parallelism)?;
        }
        self.matrix = Some(matrix);
        Ok(newly)
    }

    /// Refreshes a live chunk's record in place — same copies, fresh
    /// assignment and dissemination tree under the current snapshot.
    fn refresh_chunk(&mut self, chunk: ChunkId) -> Result<(), CoreError> {
        let inst = self.build_instance(chunk)?;
        let caches = self.net.holders(chunk);
        let eval = evaluate_holders(&self.net, &inst, &caches)?;
        let old_fairness = self.placements[&chunk].costs.fairness;
        self.placements.insert(
            chunk,
            ChunkPlacement {
                chunk,
                caches,
                assignment: eval.assignment,
                tree_edges: eval.tree_edges,
                costs: SetCosts {
                    fairness: old_fairness,
                    access: eval.access,
                    dissemination: eval.dissemination,
                },
            },
        );
        self.matrix = Some(inst.into_matrix());
        Ok(())
    }

    /// Full refresh of several chunks whose recorded trees lost edges,
    /// sharing one Steiner solver across all of them: the solver pays
    /// one shortest-path tree per *distinct* holder instead of one per
    /// chunk-holder pair. Tree construction matches [`refresh_chunk`]
    /// exactly — the batching only deduplicates work.
    fn refresh_chunks_shared_tree(&mut self, chunks: &[ChunkId]) -> Result<(), CoreError> {
        if chunks.is_empty() {
            return Ok(());
        }
        let matrix = self.take_matrix()?;
        // Detached replicas stay off the producer-side trees.
        let mut universe: Vec<NodeId> = chunks
            .iter()
            .flat_map(|&c| self.net.holders(c))
            .filter(|&h| self.net.in_producer_component(h))
            .collect();
        universe.push(self.net.producer());
        universe.sort_unstable();
        universe.dedup();
        let solver = steiner::SteinerSolver::new(self.net.graph(), &universe, |u, v| {
            matrix.edge_cost(u, v)
        })?;
        let mut trees = Vec::with_capacity(chunks.len());
        for &chunk in chunks {
            let mut terminals: Vec<NodeId> = self
                .net
                .holders(chunk)
                .into_iter()
                .filter(|&h| self.net.in_producer_component(h))
                .collect();
            terminals.push(self.net.producer());
            trees.push(solver.tree(&terminals)?);
        }
        drop(solver);
        self.matrix = Some(matrix);
        for (&chunk, tree) in chunks.iter().zip(trees) {
            let inst = self.build_instance(chunk)?;
            let caches = self.net.holders(chunk);
            let (assignment, access) = inst.assign_clients(&self.net, &caches);
            let old_fairness = self.placements[&chunk].costs.fairness;
            self.placements.insert(
                chunk,
                ChunkPlacement {
                    chunk,
                    caches,
                    assignment,
                    tree_edges: tree.edges,
                    costs: SetCosts {
                        fairness: old_fairness,
                        access,
                        dissemination: inst.weights().dissemination * tree.cost,
                    },
                },
            );
            self.matrix = Some(inst.into_matrix());
        }
        Ok(())
    }

    /// The cheap refresh variant: same copies *and* same dissemination
    /// tree — clients re-assigned and the intact tree re-priced under
    /// the current snapshot. Only valid when the triggering change
    /// cannot have removed any of the recorded tree edges.
    fn refresh_chunk_keeping_tree(&mut self, chunk: ChunkId) -> Result<(), CoreError> {
        let inst = self.build_instance(chunk)?;
        let caches = self.net.holders(chunk);
        let (assignment, access) = inst.assign_clients(&self.net, &caches);
        let p = &self.placements[&chunk];
        let tree_edges = p.tree_edges.clone();
        let dissemination = inst.weights().dissemination
            * tree_edges
                .iter()
                .map(|&(u, v)| inst.matrix().edge_cost(u, v))
                .sum::<f64>();
        let old_fairness = p.costs.fairness;
        self.placements.insert(
            chunk,
            ChunkPlacement {
                chunk,
                caches,
                assignment,
                tree_edges,
                costs: SetCosts {
                    fairness: old_fairness,
                    access,
                    dissemination,
                },
            },
        );
        self.matrix = Some(inst.into_matrix());
        Ok(())
    }

    // ------------------------------------------------------------------
    // Carried-snapshot plumbing.
    // ------------------------------------------------------------------

    /// Builds `chunk`'s ConFL instance over the carried snapshot. In
    /// partition-tolerant mode the audience is restricted to the served
    /// clients, so planning runs per component and never feeds an
    /// infinite (cross-partition) connection cost into an ascent's
    /// round bound.
    fn build_instance(&mut self, chunk: ChunkId) -> Result<ConflInstance, CoreError> {
        let audience = self.served_clients(chunk);
        let matrix = self.take_matrix()?;
        let mut inst = ConflInstance::build_for_chunk_with_matrix(
            &self.net,
            chunk,
            self.config.weights,
            matrix,
        );
        if self.partition_mode {
            inst = inst.with_clients(audience);
        }
        Ok(inst)
    }

    /// Hands out the carried snapshot (computing it on first use).
    fn take_matrix(&mut self) -> Result<ContentionMatrix, CoreError> {
        match self.matrix.take() {
            Some(m) => Ok(m),
            None => ContentionMatrix::compute_with(
                &self.net,
                self.config.selection,
                self.config.parallelism,
            ),
        }
    }

    /// Incrementally refreshes the snapshot after a structural edit;
    /// returns the number of shortest-path sources recomputed.
    fn update_matrix_topology(
        &mut self,
        removed: &[(NodeId, NodeId)],
        added: &[(NodeId, NodeId)],
    ) -> Result<usize, CoreError> {
        match self.matrix.as_mut() {
            Some(m) => m.update_topology(&self.net, removed, added, self.config.parallelism),
            // No snapshot yet: nothing to invalidate, built lazily.
            None => Ok(0),
        }
    }

    /// Absorbs pure caching-state (node-term) changes into the
    /// snapshot — an empty structural edit, so only the cost-change
    /// dirty rules fire.
    fn refresh_matrix(&mut self) -> Result<usize, CoreError> {
        self.update_matrix_topology(&[], &[])
    }
}

/// Whether a placement record mentions `node` anywhere.
fn placement_touches(p: &ChunkPlacement, node: NodeId) -> bool {
    p.assignment
        .iter()
        .any(|&(client, provider)| client == node || provider == node)
        || p.tree_edges.iter().any(|&(a, b)| a == node || b == node)
}

/// Assignment, tree, and contention costs of serving a chunk's audience
/// from exactly `caches` (plus the producer), under the instance's
/// snapshot. Unlike [`ConflInstance::evaluate_set`] it does not price
/// the facilities — repair treats surviving copies as sunk.
fn evaluate_holders(
    net: &Network,
    inst: &ConflInstance,
    caches: &[NodeId],
) -> Result<HolderEval, CoreError> {
    let (assignment, access) = inst.assign_clients(net, caches);
    // Replicas detached from the producer serve their island off-tree
    // (no-op on a connected network).
    let mut terminals: Vec<NodeId> = caches
        .iter()
        .copied()
        .filter(|&c| net.in_producer_component(c))
        .collect();
    terminals.push(inst.producer());
    let tree = steiner::steiner_tree(net.graph(), &terminals, |u, v| {
        inst.matrix().edge_cost(u, v)
    })?;
    Ok(HolderEval {
        assignment,
        tree_edges: tree.edges,
        access,
        dissemination: inst.weights().dissemination * tree.cost,
    })
}

/// The scoped dual ascent of the repair path.
///
/// Only the `orphans` bid: their `α` rises in `u_alpha` steps until
/// tight with an already-open provider — the producer, a surviving
/// holder, or a facility this ascent opened — while the surplus over a
/// closed candidate's connection cost accrues (in `u_beta` steps per
/// supporter) toward its fairness opening cost. One facility opens per
/// round: the eligible candidate with the most unfrozen supporters,
/// ties to the smallest id — mirroring the full ascent's rule. The
/// round count is bounded exactly like Algorithm 1's: every orphan
/// freezes at the latest when `α` reaches its producer connection cost.
///
/// Returns the newly opened facilities in opening order.
fn repair_ascent(
    net: &Network,
    inst: &ConflInstance,
    survivors: &[NodeId],
    orphans: &[NodeId],
    cfg: &ApproxConfig,
) -> Result<Vec<NodeId>, CoreError> {
    if orphans.is_empty() {
        return Ok(Vec::new());
    }
    for (name, v) in [("u_alpha", cfg.u_alpha), ("u_beta", cfg.u_beta)] {
        if !(v.is_finite() && v > 0.0) {
            return Err(CoreError::InvalidParameter(format!(
                "{name} must be positive and finite, got {v}"
            )));
        }
    }
    let producer = inst.producer();
    // New copies can only go to finite-cost candidates that do not
    // already hold the chunk. Under partition tolerance they are also
    // confined to the producer's component: a copy needs a path to
    // receive the bytes, and detached islands are covered by their
    // surviving replicas only (no-op on a connected network).
    let candidates: Vec<NodeId> = inst
        .candidates()
        .into_iter()
        .filter(|c| !survivors.contains(c) && net.in_producer_component(*c))
        .collect();
    let mut opened: Vec<NodeId> = Vec::new();
    let mut alpha = vec![0.0f64; orphans.len()];
    let mut frozen = vec![false; orphans.len()];
    let mut beta = vec![0.0f64; candidates.len()];

    let open_cost = |opened: &[NodeId], j: NodeId| -> f64 {
        let mut best = inst.connection_cost(producer, j);
        for &i in survivors.iter().chain(opened) {
            best = best.min(inst.connection_cost(i, j));
        }
        best
    };
    let max_anchor = orphans
        .iter()
        .map(|&j| open_cost(&[], j))
        .fold(0.0f64, f64::max);
    let round_cap = (max_anchor / cfg.u_alpha).ceil() as usize + 2;

    for _ in 0..round_cap {
        if frozen.iter().all(|&f| f) {
            break;
        }
        for a in alpha
            .iter_mut()
            .zip(&frozen)
            .filter(|&(_, &f)| !f)
            .map(|(a, _)| a)
        {
            *a += cfg.u_alpha;
        }
        for (idx, &j) in orphans.iter().enumerate() {
            if !frozen[idx] && alpha[idx] >= open_cost(&opened, j) {
                frozen[idx] = true;
            }
        }
        let mut best: Option<(usize, NodeId)> = None;
        for (ci, &i) in candidates.iter().enumerate() {
            if opened.contains(&i) {
                continue;
            }
            let supporters = orphans
                .iter()
                .enumerate()
                .filter(|&(idx, &j)| !frozen[idx] && alpha[idx] >= inst.connection_cost(i, j))
                .count();
            if supporters == 0 {
                continue;
            }
            beta[ci] += cfg.u_beta * supporters as f64;
            if beta[ci] >= inst.facility_cost(i) && best.is_none_or(|(s, _)| supporters > s) {
                // Candidates iterate ascending, so ties keep the
                // smallest id.
                best = Some((supporters, i));
            }
        }
        if let Some((_, i)) = best {
            opened.push(i);
            for (idx, &j) in orphans.iter().enumerate() {
                if !frozen[idx] && alpha[idx] >= inst.connection_cost(i, j) {
                    frozen[idx] = true;
                }
            }
        }
    }
    Ok(opened)
}

/// Greedy improving-removal restricted to the newly opened facilities:
/// survivors stay pinned (their copies are physical), and each
/// candidate set is scored by the marginal objective — the new copies'
/// fairness plus the full access and dissemination costs. Sunk survivor
/// fairness is a constant across all compared sets, so dropping it
/// never changes a comparison.
fn trim_new_facilities<W: Fn(NodeId, NodeId) -> f64>(
    net: &Network,
    inst: &ConflInstance,
    survivors: &[NodeId],
    mut newly: Vec<NodeId>,
    solver: &steiner::SteinerSolver<W>,
) -> Result<Vec<NodeId>, CoreError> {
    if newly.is_empty() {
        return Ok(newly);
    }
    // Cheap first pass, mirroring `prune_unused_facilities` restricted
    // to the newly opened set: a new copy serving no client under the
    // min-cost assignment pays fairness for nothing and can only
    // lengthen the tree. Dropping these first keeps the quadratic
    // greedy phase below small.
    loop {
        let caches: Vec<NodeId> = survivors.iter().chain(&newly).copied().collect();
        let (assignment, _) = inst.assign_clients(net, &caches);
        let before = newly.len();
        newly.retain(|&i| assignment.iter().any(|&(_, provider)| provider == i));
        if newly.len() == before {
            break;
        }
    }
    if newly.is_empty() {
        return Ok(newly);
    }
    let score = |subset: &[NodeId]| -> Result<f64, CoreError> {
        let mut caches: Vec<NodeId> = survivors.iter().chain(subset).copied().collect();
        caches.sort_unstable();
        let (_, access) = inst.assign_clients(net, &caches);
        let mut terminals: Vec<NodeId> = caches
            .into_iter()
            .filter(|&c| net.in_producer_component(c))
            .collect();
        terminals.push(inst.producer());
        let tree = solver.tree(&terminals)?;
        let fairness: f64 = subset.iter().map(|&i| inst.facility_cost(i)).sum();
        Ok(fairness + access + inst.weights().dissemination * tree.cost)
    };
    let mut best_total = score(&newly)?;
    loop {
        let mut best_removal: Option<(f64, usize)> = None;
        for idx in 0..newly.len() {
            let mut candidate = newly.clone();
            candidate.remove(idx);
            let total = score(&candidate)?;
            if total < best_total - 1e-9 && best_removal.is_none_or(|(bt, _)| total < bt) {
                best_removal = Some((total, idx));
            }
        }
        match best_removal {
            Some((total, idx)) => {
                newly.remove(idx);
                best_total = total;
            }
            None => return Ok(newly),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::planner::commit_chunk;
    use crate::workload::paper_grid;

    fn world() -> CacheWorld {
        CacheWorld::new(paper_grid(4).unwrap(), ApproxConfig::default())
    }

    /// A holder of the oldest live chunk that is safe to remove.
    fn departing_holder(w: &CacheWorld) -> NodeId {
        let chunk = w.live_chunks()[0];
        w.placement(chunk).unwrap().caches[0]
    }

    #[test]
    fn partition_defers_and_heal_restores_unreachable_demand() {
        use peercache_graph::builders;
        // Path 0-1-2-3-4, producer 0; a huge span threshold keeps every
        // client producer-served, so reachability is unambiguous.
        let net = Network::new(builders::path(5), NodeId::new(0), 2).unwrap();
        let cfg = ApproxConfig {
            span_threshold: 100,
            ..ApproxConfig::default()
        };
        let mut w = CacheWorld::new(net, cfg).partition_tolerant();
        assert!(w.is_partition_tolerant());
        w.apply(WorldEvent::ChunkArrived).unwrap();
        let chunk = w.live_chunks()[0];
        assert!(w.network().holders(chunk).is_empty());

        // Node 2 is a cut vertex: its departure splits {0,1} from {3,4}.
        let out = w.apply(WorldEvent::NodeDeparted(NodeId::new(2))).unwrap();
        assert!(matches!(out, EventOutcome::Departed(_)));
        assert_eq!(w.network().component_count(), 2);
        assert_eq!(
            w.deferred_clients(chunk),
            vec![NodeId::new(3), NodeId::new(4)]
        );
        assert_eq!(w.deferred_demand(), 2);
        let assigned: Vec<NodeId> = w
            .placement(chunk)
            .unwrap()
            .assignment
            .iter()
            .map(|&(j, _)| j)
            .collect();
        assert_eq!(assigned, vec![NodeId::new(1)]);
        w.validate().unwrap();
        let events = w.take_partition_events();
        assert!(matches!(
            events.as_slice(),
            [PartitionEvent::Formed {
                deferred_clients: 2,
                ..
            }]
        ));
        // The replan oracle refuses to price a split world.
        assert!(matches!(
            w.repair_vs_replan(),
            Err(CoreError::InvalidParameter(_))
        ));

        // Arrivals while split plan for the producer's component only.
        w.apply(WorldEvent::ChunkArrived).unwrap();
        let second = w.live_chunks()[1];
        assert_eq!(
            w.deferred_clients(second),
            vec![NodeId::new(3), NodeId::new(4)]
        );
        w.validate().unwrap();

        // A joining node bridges the islands; deferred demand folds back.
        w.apply(WorldEvent::NodeJoined {
            neighbors: vec![NodeId::new(1), NodeId::new(3)],
            capacity: 2,
        })
        .unwrap();
        assert_eq!(w.network().component_count(), 1);
        assert_eq!(w.deferred_demand(), 0);
        let events = w.take_partition_events();
        assert!(matches!(
            events.as_slice(),
            [PartitionEvent::Healed {
                restored_clients: 4,
                ..
            }]
        ));
        for &c in w.live_chunks() {
            let assigned: Vec<NodeId> = w
                .placement(c)
                .unwrap()
                .assignment
                .iter()
                .map(|&(j, _)| j)
                .collect();
            assert_eq!(assigned, w.network().interested_clients(c));
        }
        w.validate().unwrap();
        w.repair_vs_replan().unwrap();
    }

    #[test]
    fn link_partition_forms_and_heals_via_the_same_edge() {
        let mut w = world().partition_tolerant();
        w.insert_chunk().unwrap();
        let chunk = w.live_chunks()[0];
        // Isolate a corner of the 4x4 grid that caches nothing.
        let producer = w.network().producer();
        let corner = [0usize, 3, 12, 15]
            .into_iter()
            .map(NodeId::new)
            .find(|&c| c != producer && !w.network().holders(chunk).contains(&c))
            .expect("some corner is neither producer nor holder");
        let (a, b) = match corner.index() {
            0 => (1, 4),
            3 => (2, 7),
            12 => (8, 13),
            _ => (11, 14),
        };
        w.apply(WorldEvent::LinkDown(corner, NodeId::new(a)))
            .unwrap();
        assert!(w.take_partition_events().is_empty(), "still connected");
        w.apply(WorldEvent::LinkDown(corner, NodeId::new(b)))
            .unwrap();
        assert_eq!(w.network().component_count(), 2);
        assert_eq!(w.deferred_clients(chunk), vec![corner]);
        assert!(matches!(
            w.take_partition_events().as_slice(),
            [PartitionEvent::Formed { .. }]
        ));
        w.validate().unwrap();
        w.apply(WorldEvent::LinkUp(corner, NodeId::new(a))).unwrap();
        assert_eq!(w.network().component_count(), 1);
        assert!(matches!(
            w.take_partition_events().as_slice(),
            [PartitionEvent::Healed {
                restored_clients: 1,
                ..
            }]
        ));
        assert_eq!(w.deferred_demand(), 0);
        w.validate().unwrap();
    }

    #[test]
    fn arrivals_match_the_online_pipeline() {
        let mut w = world();
        let mut reference = paper_grid(4).unwrap();
        let a = w.insert_chunk().unwrap().clone();
        let b = w.insert_chunk().unwrap().clone();
        // Replay the arrival pipeline by hand on a twin network.
        for expected in [&a, &b] {
            let inst = ConflInstance::build_for_chunk(
                &reference,
                expected.chunk,
                ApproxConfig::default().weights,
                ApproxConfig::default().selection,
            )
            .unwrap();
            let (fac, _) = dual_ascent(&reference, &inst, &ApproxConfig::default()).unwrap();
            let fac = prune_unused_facilities(&reference, &inst, &fac);
            let cp = commit_chunk(&mut reference, &inst, expected.chunk, &fac).unwrap();
            assert_eq!(&cp, expected);
        }
    }

    #[test]
    fn departure_repairs_orphaned_clients() {
        let mut w = world();
        for _ in 0..3 {
            w.insert_chunk().unwrap();
        }
        let victim = departing_holder(&w);
        let lost: Vec<ChunkId> = w
            .live_chunks()
            .iter()
            .copied()
            .filter(|&c| w.network().is_cached(victim, c))
            .collect();
        assert!(!lost.is_empty());
        let outcome = w.apply(WorldEvent::NodeDeparted(victim)).unwrap();
        let EventOutcome::Departed(report) = outcome else {
            panic!("expected a repair report");
        };
        assert_eq!(report.lost_chunks, lost);
        assert_eq!(report.repaired, lost);
        assert!(!w.network().is_active(victim));
        w.validate().unwrap();
        // No record mentions the departed node anymore.
        for &c in w.live_chunks() {
            assert!(!placement_touches(w.placement(c).unwrap(), victim));
        }
    }

    #[test]
    fn departure_of_a_bystander_only_refreshes() {
        let mut w = world();
        w.insert_chunk().unwrap();
        // Find an empty-handed node whose departure keeps the grid
        // connected (any interior-adjacent corner works on 4x4).
        let bystander = w
            .network()
            .clients()
            .find(|&n| w.network().used(n) == 0)
            .expect("some node cached nothing");
        let EventOutcome::Departed(report) = w.apply(WorldEvent::NodeDeparted(bystander)).unwrap()
        else {
            panic!("expected a repair report");
        };
        assert!(report.lost_chunks.is_empty());
        assert!(report.repaired.is_empty());
        assert!(report.new_copies.is_empty());
        w.validate().unwrap();
    }

    #[test]
    fn link_down_rebuilds_crossing_trees() {
        let mut w = world();
        w.insert_chunk().unwrap();
        let chunk = w.live_chunks()[0];
        let &(u, v) = w
            .placement(chunk)
            .unwrap()
            .tree_edges
            .first()
            .expect("dissemination tree is nonempty");
        let EventOutcome::LinkRemoved { removed, refreshed } =
            w.apply(WorldEvent::LinkDown(u, v)).unwrap()
        else {
            panic!("expected a link outcome");
        };
        assert!(removed);
        assert!(refreshed.contains(&chunk));
        w.validate().unwrap();
        // Dropping an absent link is a no-op.
        let EventOutcome::LinkRemoved { removed, refreshed } =
            w.apply(WorldEvent::LinkDown(u, v)).unwrap()
        else {
            panic!("expected a link outcome");
        };
        assert!(!removed);
        assert!(refreshed.is_empty());
    }

    #[test]
    fn join_extends_every_live_assignment() {
        let mut w = world();
        w.insert_chunk().unwrap();
        w.insert_chunk().unwrap();
        let neighbors = vec![NodeId::new(0), NodeId::new(1)];
        let EventOutcome::Joined { node, refreshed } = w
            .apply(WorldEvent::NodeJoined {
                neighbors,
                capacity: 3,
            })
            .unwrap()
        else {
            panic!("expected a join outcome");
        };
        assert_eq!(refreshed.len(), 2);
        w.validate().unwrap();
        for &c in w.live_chunks() {
            assert!(w
                .placement(c)
                .unwrap()
                .assignment
                .iter()
                .any(|&(client, _)| client == node));
        }
    }

    #[test]
    fn link_up_is_tracked_and_idempotent() {
        let mut w = world();
        w.insert_chunk().unwrap();
        // 4x4 grid: 0 and 5 are diagonal, not linked.
        let EventOutcome::LinkAdded { added } = w
            .apply(WorldEvent::LinkUp(NodeId::new(0), NodeId::new(5)))
            .unwrap()
        else {
            panic!("expected a link outcome");
        };
        assert!(added);
        let EventOutcome::LinkAdded { added } = w
            .apply(WorldEvent::LinkUp(NodeId::new(0), NodeId::new(5)))
            .unwrap()
        else {
            panic!("expected a link outcome");
        };
        assert!(!added);
        w.validate().unwrap();
    }

    #[test]
    fn retire_event_frees_copies() {
        let mut w = world();
        let chunk = w.insert_chunk().unwrap().chunk;
        let copies = w.network().holders(chunk).len();
        assert!(copies > 0);
        let outcome = w.apply(WorldEvent::ChunkRetired(chunk)).unwrap();
        assert_eq!(
            outcome,
            EventOutcome::Retired {
                chunk,
                copies_freed: copies
            }
        );
        assert!(w.network().holders(chunk).is_empty());
        assert!(w.live_chunks().is_empty());
        w.validate().unwrap();
    }

    #[test]
    fn repair_stays_within_replan_cost_gap() {
        let mut w = world().with_retention(4);
        for _ in 0..4 {
            w.insert_chunk().unwrap();
        }
        let victim = departing_holder(&w);
        w.apply(WorldEvent::NodeDeparted(victim)).unwrap();
        w.insert_chunk().unwrap();
        let report = w.repair_vs_replan().unwrap();
        assert_eq!(report.live_chunks, 4);
        assert!(report.repair_contention > 0.0);
        assert!(report.replan_contention > 0.0);
        assert!(
            report.cost_ratio <= 1.5,
            "repair cost ratio {} exceeds the 1.5x gap",
            report.cost_ratio
        );
    }

    #[test]
    fn event_streams_are_deterministic() {
        let events = |w: &mut CacheWorld| -> Vec<WorldEvent> {
            let mut applied = Vec::new();
            for _ in 0..3 {
                applied.push(WorldEvent::ChunkArrived);
                w.apply(WorldEvent::ChunkArrived).unwrap();
            }
            let victim = departing_holder(w);
            let ev = WorldEvent::NodeDeparted(victim);
            w.apply(ev.clone()).unwrap();
            applied.push(ev);
            applied.push(WorldEvent::ChunkArrived);
            w.apply(WorldEvent::ChunkArrived).unwrap();
            applied
        };
        let mut a = world();
        let trace = events(&mut a);
        let mut b = world();
        for ev in trace {
            b.apply(ev).unwrap();
        }
        assert_eq!(a.network(), b.network());
        assert_eq!(a.live_chunks(), b.live_chunks());
        for &c in a.live_chunks() {
            assert_eq!(a.placement(c), b.placement(c));
        }
    }

    #[test]
    fn failed_events_leave_the_world_consistent() {
        let mut w = world();
        w.insert_chunk().unwrap();
        let producer = w.network().producer();
        assert!(w.apply(WorldEvent::NodeDeparted(producer)).is_err());
        assert!(w
            .apply(WorldEvent::NodeJoined {
                neighbors: vec![],
                capacity: 1
            })
            .is_err());
        w.validate().unwrap();
        // The world still accepts events afterwards.
        w.apply(WorldEvent::ChunkArrived).unwrap();
        w.validate().unwrap();
    }

    /// Forced time-series sampling records one point per event on the
    /// event index, and the trajectory replays identically — the
    /// recorder reads no ambient time.
    #[test]
    fn world_series_samples_every_event_deterministically() {
        use peercache_graph::builders;
        let run = || {
            let net = Network::new(builders::path(5), NodeId::new(0), 2).unwrap();
            let cfg = ApproxConfig {
                span_threshold: 100,
                ..ApproxConfig::default()
            };
            let mut w = CacheWorld::new(net, cfg)
                .partition_tolerant()
                .with_timeseries();
            w.apply(WorldEvent::ChunkArrived).unwrap();
            w.apply(WorldEvent::NodeDeparted(NodeId::new(2))).unwrap();
            w.apply(WorldEvent::ChunkArrived).unwrap();
            w.series().unwrap().clone()
        };
        let s = run();
        assert_eq!(s.components.points(), [(1, 1), (2, 2), (3, 2)]);
        // After the split, clients 3 and 4 defer on both live chunks.
        assert_eq!(s.demand_deferred.points(), [(1, 0), (2, 2), (3, 4)]);
        assert_eq!(s.demand_live.points().len(), 3);
        assert_eq!(s, run());
        // Without a sink and without forcing, sampling is fully off.
        let silent = world();
        assert!(silent.series().is_none());
    }

    #[test]
    fn set_interest_refreshes_live_records() {
        let mut w = world();
        let chunk = w.insert_chunk().unwrap().chunk;
        w.set_interest(chunk, [NodeId::new(0), NodeId::new(1)])
            .unwrap();
        let p = w.placement(chunk).unwrap();
        let clients: Vec<NodeId> = p.assignment.iter().map(|&(j, _)| j).collect();
        assert_eq!(clients, vec![NodeId::new(0), NodeId::new(1)]);
        w.validate().unwrap();
    }
}
