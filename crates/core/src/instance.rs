//! The per-chunk Connected Facility Location instance.
//!
//! §III-D shows the caching ILP (3) is a *sum of ConFL problems*, one
//! per chunk (formulation (8)). A [`ConflInstance`] is the snapshot of
//! one summand: facility opening costs are the Fairness Degree Costs
//! `f_i`, client connection costs are Path Contention Costs `c_ij`,
//! Steiner edges cost `M · c_e`, and the producer acts as a pre-opened,
//! zero-cost facility that the dissemination tree must reach.

use peercache_graph::paths::PathSelection;
use peercache_graph::{steiner, NodeId};

use crate::costs::{ContentionMatrix, CostWeights};
use crate::{ChunkId, CoreError, Network};

/// Cost breakdown of evaluating one facility set for one chunk.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct SetCosts {
    /// Σ fairness cost of the opened facilities.
    pub fairness: f64,
    /// Σ over clients of the connection cost to the nearest provider.
    pub access: f64,
    /// `M ·` Steiner tree cost over facilities ∪ {producer}.
    pub dissemination: f64,
}

impl SetCosts {
    /// Weighted total of the three terms (the ConFL objective value).
    pub fn total(&self) -> f64 {
        self.fairness + self.access + self.dissemination
    }
}

/// Outcome of [`ConflInstance::evaluate_set`]: the cost breakdown, the
/// `(client, provider)` assignment, and the dissemination-tree edges.
pub type SetEvaluation = (SetCosts, Vec<(NodeId, NodeId)>, Vec<(NodeId, NodeId)>);

/// One chunk's ConFL instance, frozen at the current caching state.
#[derive(Debug, Clone)]
pub struct ConflInstance {
    producer: NodeId,
    facility_cost: Vec<f64>,
    matrix: ContentionMatrix,
    weights: CostWeights,
    clients: Vec<NodeId>,
}

impl ConflInstance {
    /// Builds the instance for the network's current state.
    ///
    /// Facility cost is `weights.fairness · f_i`; nodes with exhausted
    /// storage (and the producer) get `f64::INFINITY` and are not
    /// [`candidates`](ConflInstance::candidates).
    ///
    /// # Errors
    ///
    /// Propagates [`CoreError::Graph`] from the path computation.
    pub fn build(
        net: &Network,
        weights: CostWeights,
        selection: PathSelection,
    ) -> Result<Self, CoreError> {
        ConflInstance::build_with_clients(net, weights, selection, net.clients().collect())
    }

    /// Builds the instance for one specific chunk, honoring its
    /// interest restriction ([`Network::set_interest`]): only the
    /// chunk's audience appears as ConFL clients.
    ///
    /// # Errors
    ///
    /// Propagates [`CoreError::Graph`] from the path computation.
    pub fn build_for_chunk(
        net: &Network,
        chunk: ChunkId,
        weights: CostWeights,
        selection: PathSelection,
    ) -> Result<Self, CoreError> {
        ConflInstance::build_with_clients(net, weights, selection, net.interested_clients(chunk))
    }

    /// Builds the instance for one chunk around an already-computed
    /// contention snapshot — the fast path of the iterative planners,
    /// which carry one [`ContentionMatrix`] across chunks and refresh it
    /// with [`ContentionMatrix::update`] instead of recomputing all
    /// shortest paths.
    ///
    /// `matrix` must reflect `net`'s *current* caching state; the
    /// facility (fairness) costs are rebuilt here, so only the path
    /// snapshot is taken on trust. Recover the matrix for the next chunk
    /// with [`ConflInstance::into_matrix`].
    pub fn build_for_chunk_with_matrix(
        net: &Network,
        chunk: ChunkId,
        weights: CostWeights,
        matrix: ContentionMatrix,
    ) -> Self {
        ConflInstance {
            producer: net.producer(),
            facility_cost: ConflInstance::facility_costs(net, weights),
            matrix,
            weights,
            clients: net.interested_clients(chunk),
        }
    }

    /// Consumes the instance, handing back its contention snapshot so
    /// the next chunk can refresh it incrementally.
    pub fn into_matrix(self) -> ContentionMatrix {
        self.matrix
    }

    /// Restricts the instance to the given client audience (sorted and
    /// deduplicated).
    ///
    /// The per-component planning hook: a partitioned world narrows a
    /// chunk's audience to the clients its data can actually reach
    /// before running the ascent, deferring the rest explicitly instead
    /// of feeding infinite connection costs into the solver.
    pub fn with_clients(mut self, mut clients: Vec<NodeId>) -> Self {
        clients.sort_unstable();
        clients.dedup();
        self.clients = clients;
        self
    }

    fn build_with_clients(
        net: &Network,
        weights: CostWeights,
        selection: PathSelection,
        clients: Vec<NodeId>,
    ) -> Result<Self, CoreError> {
        let matrix = ContentionMatrix::compute(net, selection)?;
        Ok(ConflInstance {
            producer: net.producer(),
            facility_cost: ConflInstance::facility_costs(net, weights),
            matrix,
            weights,
            clients,
        })
    }

    pub(crate) fn facility_costs(net: &Network, weights: CostWeights) -> Vec<f64> {
        net.graph()
            .nodes()
            .map(|i| {
                // Weighted summation of the storage and battery
                // fairness terms (footnote 1 of §III-B). With the
                // default battery weight of 0 this is exactly Eq. 1.
                let storage = weights.fairness * net.fairness_cost(i);
                if weights.battery_fairness > 0.0 {
                    storage + weights.battery_fairness * net.battery_fairness_cost(i)
                } else {
                    storage
                }
            })
            .collect()
    }

    /// The ConFL clients of this instance (the chunk's audience),
    /// sorted.
    pub fn clients(&self) -> &[NodeId] {
        &self.clients
    }

    /// The producer (pre-opened root facility).
    pub fn producer(&self) -> NodeId {
        self.producer
    }

    /// The cost weights the instance was built with.
    pub fn weights(&self) -> CostWeights {
        self.weights
    }

    /// The contention snapshot backing this instance.
    pub fn matrix(&self) -> &ContentionMatrix {
        &self.matrix
    }

    /// Facility opening cost `f_i` (already fairness-weighted);
    /// `f64::INFINITY` for full nodes and the producer.
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of bounds.
    pub fn facility_cost(&self, i: NodeId) -> f64 {
        self.facility_cost[i.index()]
    }

    /// Connection cost of client `j` to facility `i` (contention
    /// weighted).
    ///
    /// # Panics
    ///
    /// Panics if either node is out of bounds.
    pub fn connection_cost(&self, i: NodeId, j: NodeId) -> f64 {
        self.weights.contention * self.matrix.cost(i, j)
    }

    /// Nodes that may open as facilities (finite cost), sorted by id.
    pub fn candidates(&self) -> Vec<NodeId> {
        (0..self.facility_cost.len())
            .map(NodeId::new)
            .filter(|&i| self.facility_cost[i.index()].is_finite())
            .collect()
    }

    /// Number of nodes in the instance.
    pub fn node_count(&self) -> usize {
        self.facility_cost.len()
    }

    /// Assigns each client to its cheapest provider among
    /// `facilities ∪ {producer}`; returns `(client, provider)` pairs in
    /// client order plus the summed access cost.
    ///
    /// A facility node serves itself at zero cost.
    pub fn assign_clients(
        &self,
        _net: &Network,
        facilities: &[NodeId],
    ) -> (Vec<(NodeId, NodeId)>, f64) {
        let mut assignment = Vec::new();
        let mut access = 0.0;
        for &j in &self.clients {
            let mut best = (self.producer, self.connection_cost(self.producer, j));
            for &i in facilities {
                let c = self.connection_cost(i, j);
                if c < best.1 || (crate::costs::cost_tie_eq(c, best.1) && i < best.0) {
                    best = (i, c);
                }
            }
            access += best.1;
            assignment.push((j, best.0));
        }
        (assignment, access)
    }

    /// Evaluates opening exactly `facilities` for this chunk: fairness +
    /// access + `M ·` Steiner(facilities ∪ {producer}).
    ///
    /// Returns the breakdown and the dissemination tree edges.
    ///
    /// # Errors
    ///
    /// Propagates Steiner-tree failures (cannot occur on a connected
    /// [`Network`] with valid facilities).
    pub fn evaluate_set(
        &self,
        net: &Network,
        facilities: &[NodeId],
    ) -> Result<SetEvaluation, CoreError> {
        let fairness: f64 = facilities.iter().map(|&i| self.facility_cost(i)).sum();
        let (assignment, access) = self.assign_clients(net, facilities);
        let mut terminals: Vec<NodeId> = facilities.to_vec();
        terminals.push(self.producer);
        let tree =
            steiner::steiner_tree(net.graph(), &terminals, |u, v| self.matrix.edge_cost(u, v))?;
        let costs = SetCosts {
            fairness,
            access,
            dissemination: self.weights.dissemination * tree.cost,
        };
        Ok((costs, assignment, tree.edges))
    }

    /// Like [`ConflInstance::evaluate_set`], but reuses a prebuilt
    /// [`steiner::SteinerSolver`] for the dissemination tree instead of
    /// re-running the per-terminal shortest paths — the win when many
    /// facility subsets are evaluated against the same snapshot (the
    /// planners' removal-improvement phase). Returns bit-for-bit the
    /// same evaluation as [`ConflInstance::evaluate_set`].
    ///
    /// The solver's candidate set must cover `facilities` and the
    /// producer, and its weight function must be this instance's
    /// [`ContentionMatrix::edge_cost`].
    ///
    /// # Errors
    ///
    /// [`CoreError::Graph`] with
    /// [`peercache_graph::GraphError::UnknownTerminal`] if a facility
    /// (or the producer) is outside the solver's candidates; otherwise
    /// as [`ConflInstance::evaluate_set`].
    pub fn evaluate_set_with<W>(
        &self,
        net: &Network,
        facilities: &[NodeId],
        solver: &steiner::SteinerSolver<W>,
    ) -> Result<SetEvaluation, CoreError>
    where
        W: Fn(NodeId, NodeId) -> f64,
    {
        let fairness: f64 = facilities.iter().map(|&i| self.facility_cost(i)).sum();
        let (assignment, access) = self.assign_clients(net, facilities);
        let mut terminals: Vec<NodeId> = facilities.to_vec();
        terminals.push(self.producer);
        let tree = solver.tree(&terminals)?;
        let costs = SetCosts {
            fairness,
            access,
            dissemination: self.weights.dissemination * tree.cost,
        };
        Ok((costs, assignment, tree.edges))
    }
}

/// The cost surface the dual ascent consumes — exactly the six queries
/// [`crate::approx::dual_ascent`] makes against an instance.
///
/// [`ConflInstance`] implements it over the dense [`ContentionMatrix`];
/// the scoped planner implements it over
/// [`crate::scoped::ScopedContention`] (exact inside region blocks,
/// landmark estimates across), so the *same* event-driven ascent runs
/// unchanged on either substrate.
///
/// Dual state is indexed by raw node id, so [`ConflCosts::node_count`]
/// must report the ambient graph's node count even when `clients` and
/// `candidates` are restricted to a region.
pub trait ConflCosts {
    /// Number of nodes in the ambient graph.
    fn node_count(&self) -> usize;
    /// The producer (pre-opened root facility).
    fn producer(&self) -> NodeId;
    /// The ConFL clients (a chunk's audience), sorted.
    fn clients(&self) -> &[NodeId];
    /// Nodes that may open as facilities (finite cost), sorted by id.
    fn candidates(&self) -> Vec<NodeId>;
    /// Facility opening cost `f_i` (already fairness-weighted).
    fn facility_cost(&self, i: NodeId) -> f64;
    /// Connection cost of client `j` to facility `i` (contention
    /// weighted).
    fn connection_cost(&self, i: NodeId, j: NodeId) -> f64;
    /// The cost weights of the instance.
    fn weights(&self) -> CostWeights;
}

impl ConflCosts for ConflInstance {
    fn node_count(&self) -> usize {
        ConflInstance::node_count(self)
    }

    fn producer(&self) -> NodeId {
        ConflInstance::producer(self)
    }

    fn clients(&self) -> &[NodeId] {
        ConflInstance::clients(self)
    }

    fn candidates(&self) -> Vec<NodeId> {
        ConflInstance::candidates(self)
    }

    fn facility_cost(&self, i: NodeId) -> f64 {
        ConflInstance::facility_cost(self, i)
    }

    fn connection_cost(&self, i: NodeId, j: NodeId) -> f64 {
        ConflInstance::connection_cost(self, i, j)
    }

    fn weights(&self) -> CostWeights {
        ConflInstance::weights(self)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ChunkId;
    use peercache_graph::builders;

    fn net() -> Network {
        Network::new(builders::grid(3, 3), NodeId::new(4), 2).unwrap()
    }

    fn instance(net: &Network) -> ConflInstance {
        ConflInstance::build(net, CostWeights::default(), PathSelection::FewestHops).unwrap()
    }

    #[test]
    fn producer_is_not_a_candidate() {
        let net = net();
        let inst = instance(&net);
        assert!(!inst.candidates().contains(&NodeId::new(4)));
        assert!(inst.facility_cost(NodeId::new(4)).is_infinite());
        assert_eq!(inst.candidates().len(), 8);
    }

    #[test]
    fn full_nodes_drop_out_of_candidates() {
        let mut net = net();
        net.cache(NodeId::new(0), ChunkId::new(0)).unwrap();
        net.cache(NodeId::new(0), ChunkId::new(1)).unwrap();
        let inst = instance(&net);
        assert!(!inst.candidates().contains(&NodeId::new(0)));
    }

    #[test]
    fn empty_facility_set_assigns_everyone_to_producer() {
        let net = net();
        let inst = instance(&net);
        let (assignment, access) = inst.assign_clients(&net, &[]);
        assert_eq!(assignment.len(), 8);
        assert!(assignment.iter().all(|&(_, p)| p == NodeId::new(4)));
        assert!(access > 0.0);
    }

    #[test]
    fn facility_serves_itself_for_free() {
        let net = net();
        let inst = instance(&net);
        let (assignment, _) = inst.assign_clients(&net, &[NodeId::new(0)]);
        let self_assigned = assignment
            .iter()
            .find(|&&(j, _)| j == NodeId::new(0))
            .unwrap();
        assert_eq!(self_assigned.1, NodeId::new(0));
    }

    #[test]
    fn evaluate_empty_set_has_zero_tree_and_fairness() {
        let net = net();
        let inst = instance(&net);
        let (costs, _, tree) = inst.evaluate_set(&net, &[]).unwrap();
        assert_eq!(costs.fairness, 0.0);
        assert_eq!(costs.dissemination, 0.0);
        assert!(tree.is_empty());
        assert!(costs.access > 0.0);
    }

    #[test]
    fn more_facilities_reduce_access_cost() {
        let net = net();
        let inst = instance(&net);
        let (none, _, _) = inst.evaluate_set(&net, &[]).unwrap();
        let corners = [
            NodeId::new(0),
            NodeId::new(2),
            NodeId::new(6),
            NodeId::new(8),
        ];
        let (four, _, _) = inst.evaluate_set(&net, &corners).unwrap();
        assert!(four.access < none.access);
        assert!(four.dissemination > 0.0);
    }

    #[test]
    fn dissemination_scales_with_m() {
        let net = net();
        let weights = CostWeights {
            dissemination: 3.0,
            ..Default::default()
        };
        let base = instance(&net);
        let scaled = ConflInstance::build(&net, weights, PathSelection::FewestHops).unwrap();
        let set = [NodeId::new(0)];
        let (c1, _, _) = base.evaluate_set(&net, &set).unwrap();
        let (c3, _, _) = scaled.evaluate_set(&net, &set).unwrap();
        assert!((c3.dissemination - 3.0 * c1.dissemination).abs() < 1e-9);
    }

    #[test]
    fn fairness_weight_scales_facility_cost() {
        let mut net = net();
        net.cache(NodeId::new(0), ChunkId::new(0)).unwrap();
        let weights = CostWeights {
            fairness: 2.0,
            ..Default::default()
        };
        let inst = ConflInstance::build(&net, weights, PathSelection::FewestHops).unwrap();
        // f_0 = 1/(2-1) = 1, weighted by 2.
        assert_eq!(inst.facility_cost(NodeId::new(0)), 2.0);
    }

    #[test]
    fn battery_weight_penalizes_drained_nodes() {
        let mut net = net();
        net.set_battery(NodeId::new(0), 0.25).unwrap(); // f_batt = 3
        let weights = CostWeights {
            battery_fairness: 2.0,
            ..Default::default()
        };
        let inst = ConflInstance::build(&net, weights, PathSelection::FewestHops).unwrap();
        // storage term 0 + 2 * 3 = 6.
        assert_eq!(inst.facility_cost(NodeId::new(0)), 6.0);
        // Full-battery peers are unaffected.
        assert_eq!(inst.facility_cost(NodeId::new(1)), 0.0);
    }

    #[test]
    fn zero_battery_weight_ignores_battery_state() {
        let mut net = net();
        net.set_battery(NodeId::new(0), 0.1).unwrap();
        let inst = instance(&net);
        assert_eq!(inst.facility_cost(NodeId::new(0)), 0.0);
    }

    #[test]
    fn empty_battery_removes_candidate_under_battery_weight() {
        let mut net = net();
        net.set_battery(NodeId::new(0), 0.0).unwrap();
        let weights = CostWeights {
            battery_fairness: 1.0,
            ..Default::default()
        };
        let inst = ConflInstance::build(&net, weights, PathSelection::FewestHops).unwrap();
        assert!(!inst.candidates().contains(&NodeId::new(0)));
    }

    #[test]
    fn set_costs_total_sums_terms() {
        let c = SetCosts {
            fairness: 1.0,
            access: 2.0,
            dissemination: 3.0,
        };
        assert_eq!(c.total(), 6.0);
    }

    #[test]
    fn matrix_roundtrip_build_matches_fresh_build() {
        let mut net = net();
        net.cache(NodeId::new(0), ChunkId::new(0)).unwrap();
        let fresh = ConflInstance::build_for_chunk(
            &net,
            ChunkId::new(1),
            CostWeights::default(),
            PathSelection::FewestHops,
        )
        .unwrap();
        let matrix =
            crate::costs::ContentionMatrix::compute(&net, PathSelection::FewestHops).unwrap();
        let rebuilt = ConflInstance::build_for_chunk_with_matrix(
            &net,
            ChunkId::new(1),
            CostWeights::default(),
            matrix,
        );
        assert_eq!(rebuilt.clients(), fresh.clients());
        for i in net.graph().nodes() {
            assert_eq!(
                rebuilt.facility_cost(i).to_bits(),
                fresh.facility_cost(i).to_bits()
            );
            for j in net.graph().nodes() {
                assert_eq!(
                    rebuilt.connection_cost(i, j).to_bits(),
                    fresh.connection_cost(i, j).to_bits()
                );
            }
        }
        // The snapshot survives the round trip.
        let back = rebuilt.into_matrix();
        assert_eq!(
            back.cost(NodeId::new(0), NodeId::new(8)).to_bits(),
            fresh
                .matrix()
                .cost(NodeId::new(0), NodeId::new(8))
                .to_bits()
        );
    }

    #[test]
    fn evaluate_set_with_solver_matches_evaluate_set() {
        use peercache_graph::steiner::SteinerSolver;
        let net = net();
        let inst = instance(&net);
        let sets: [&[NodeId]; 3] = [
            &[],
            &[NodeId::new(0)],
            &[NodeId::new(0), NodeId::new(2), NodeId::new(8)],
        ];
        let mut candidates = vec![
            NodeId::new(0),
            NodeId::new(2),
            NodeId::new(8),
            inst.producer(),
        ];
        candidates.sort_unstable();
        let solver = SteinerSolver::new(net.graph(), &candidates, |u, v| {
            inst.matrix().edge_cost(u, v)
        })
        .unwrap();
        for set in sets {
            let (c1, a1, t1) = inst.evaluate_set(&net, set).unwrap();
            let (c2, a2, t2) = inst.evaluate_set_with(&net, set, &solver).unwrap();
            assert_eq!(c1.fairness.to_bits(), c2.fairness.to_bits());
            assert_eq!(c1.access.to_bits(), c2.access.to_bits());
            assert_eq!(c1.dissemination.to_bits(), c2.dissemination.to_bits());
            assert_eq!(a1, a2);
            assert_eq!(t1, t2);
        }
    }
}
