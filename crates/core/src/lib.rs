//! Fair caching for peer data sharing in pervasive edge computing.
//!
//! This crate is a from-scratch Rust implementation of the algorithms in
//! *"Fair Caching Algorithms for Peer Data Sharing in Pervasive Edge
//! Computing Environments"* (Huang, Song, Ye, Yang, Li — ICDCS 2017):
//!
//! * the system model — a connected wireless topology where `Q` equal
//!   size data chunks produced by one node must be cached across peers
//!   ([`Network`], [`ChunkId`]);
//! * the **Fairness Degree Cost** `f_i = S(i) / (S_tot(i) - S(i))`
//!   (Eq. 1) and the **Contention Cost** `c_ij = Σ_k w_k (1 + S(k))`
//!   along shortest paths (Eq. 2) ([`costs`]);
//! * the per-chunk **Connected Facility Location** instance the ILP
//!   decomposes into ([`instance`]);
//! * the paper's **approximation algorithm** (Algorithm 1) — a
//!   primal-dual dual ascent plus a Steiner dissemination tree
//!   ([`approx`]);
//! * the **exact baseline** ("Brtf") — subset enumeration and a MILP
//!   cross-check built on `peercache-lp` ([`exact`]);
//! * the **prior-work baselines** — Hop-Count-based caching
//!   (Nuggehalli et al.) and Contention-based caching (Sung et al.),
//!   with the paper's multi-item subgraph extension ([`baselines`]);
//! * the **evaluation metrics** — total/per-chunk contention cost,
//!   p-percentile fairness and the Gini coefficient ([`metrics`]);
//! * the **locality stack** — k-hop-scoped contention blocks, landmark
//!   distance estimates, and the hierarchical region planner that plans
//!   10k–100k-node networks without the `O(N²)` matrix ([`scoped`]);
//! * **workload generation** for the evaluation scenarios
//!   ([`workload`]);
//! * the **churn-aware world layer** — a typed event stream over a
//!   mutating topology with incremental placement repair ([`world`]).
//!
//! # Quickstart
//!
//! ```
//! use peercache_core::{approx::ApproxPlanner, planner::CachePlanner, Network};
//! use peercache_graph::{builders, NodeId};
//!
//! // 6x6 grid, producer at node 9, everyone can cache 5 chunks.
//! let graph = builders::grid(6, 6);
//! let mut network = Network::new(graph, NodeId::new(9), 5)?;
//!
//! // Place 5 chunks fairly.
//! let planner = ApproxPlanner::default();
//! let placement = planner.plan(&mut network, 5)?;
//!
//! assert_eq!(placement.chunks().len(), 5);
//! # Ok::<(), peercache_core::CoreError>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod error;
mod model;

pub mod approx;
pub mod baselines;
pub mod costs;
pub mod exact;
pub mod instance;
pub mod metrics;
pub mod online;
pub mod placement;
pub mod planner;
pub mod replication;
pub mod report;
pub mod scoped;
pub mod shard;
pub mod sharded;
#[cfg(feature = "strict-invariants")]
pub mod strict;
pub mod workload;
pub mod world;

pub use error::CoreError;
pub use model::{ChunkId, Departure, Network, PartitionPolicy};
pub use replication::ReplicationPolicy;
pub use shard::{ArenaRow, CrossShardEvent, PlacementArena, ShardRouter, WorldShard};
pub use sharded::{ShardConfig, ShardedWorld, TickReport};
pub use world::{CacheWorld, PartitionEvent, WorldEvent};
