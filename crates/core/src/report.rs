//! Human-readable placement reports.
//!
//! The evaluation figures boil placements down to single numbers; when
//! *debugging* an algorithm you want to see the whole picture — who
//! caches what, how load is distributed, what each phase costs. This
//! module renders that as text (the examples use it, and Fig. 1-style
//! load maps fall out of [`render_grid_loads`]).

use std::fmt::Write as _;

use crate::metrics;
use crate::placement::Placement;
use crate::Network;

/// Renders a full placement report: per-chunk cache sets and costs,
/// the load distribution, and the fairness metrics.
///
/// # Example
///
/// ```
/// use peercache_core::{approx::ApproxPlanner, planner::CachePlanner, report, workload};
///
/// let mut net = workload::paper_grid(4)?;
/// let placement = ApproxPlanner::default().plan(&mut net, 2)?;
/// let text = report::render(&net, &placement);
/// assert!(text.contains("chunk 0"));
/// assert!(text.contains("gini"));
/// # Ok::<(), peercache_core::CoreError>(())
/// ```
pub fn render(net: &Network, placement: &Placement) -> String {
    let mut out = String::new();
    let _ = writeln!(
        out,
        "placement report: {} nodes, producer {}, {} chunks",
        net.node_count(),
        net.producer(),
        placement.chunks().len()
    );
    for cp in placement.chunks() {
        let caches: Vec<String> = cp.caches.iter().map(|n| n.to_string()).collect();
        let _ = writeln!(
            out,
            "  chunk {}: {:2} copies [{}]  fair {:8.2}  access {:8.1}  tree {:8.1}",
            cp.chunk,
            cp.caches.len(),
            caches.join(","),
            cp.costs.fairness,
            cp.costs.access,
            cp.costs.dissemination,
        );
    }
    let totals = placement.total_costs();
    let _ = writeln!(
        out,
        "  totals: fairness {:.2}, access {:.1}, dissemination {:.1}, contention {:.1}",
        totals.fairness,
        totals.access,
        totals.dissemination,
        placement.total_contention_cost()
    );

    let loads: Vec<usize> = net.clients().map(|n| net.used(n)).collect();
    let _ = writeln!(out, "{}", render_load_histogram(&loads));
    let _ = writeln!(
        out,
        "  gini {:.3}, 75-percentile fairness {:.1}%, caching nodes {}/{}",
        metrics::gini(&loads),
        100.0 * metrics::p_percentile_fairness(&loads, 0.75),
        loads.iter().filter(|&&l| l > 0).count(),
        loads.len()
    );
    out
}

/// Renders a histogram of caching load ("how many nodes hold k chunks").
pub fn render_load_histogram(loads: &[usize]) -> String {
    let max = loads.iter().copied().max().unwrap_or(0);
    let mut out = String::from("  load histogram:");
    if loads.is_empty() {
        out.push_str(" (no clients)");
        return out;
    }
    out.push('\n');
    for k in 0..=max {
        let count = loads.iter().filter(|&&l| l == k).count();
        let _ = writeln!(
            out,
            "    {k} chunks: {:3} nodes {}",
            count,
            "#".repeat(count)
        );
    }
    out.pop();
    out
}

/// Renders per-node cached-chunk counts laid out as a `cols`-wide grid
/// (the textual cousin of Fig. 1; the producer prints as `*`).
///
/// # Panics
///
/// Panics if `cols` is zero.
///
/// # Example
///
/// ```
/// use peercache_core::{report, workload};
///
/// let net = workload::paper_grid(3)?;
/// let grid = report::render_grid_loads(&net, 3);
/// assert_eq!(grid.lines().count(), 3);
/// assert!(grid.contains('*')); // the producer
/// # Ok::<(), peercache_core::CoreError>(())
/// ```
pub fn render_grid_loads(net: &Network, cols: usize) -> String {
    assert!(cols > 0, "cols must be positive");
    let loads = net.load_vector();
    let mut out = String::new();
    for (i, load) in loads.iter().enumerate() {
        if i > 0 && i % cols == 0 {
            out.push('\n');
        }
        if peercache_graph::NodeId::new(i) == net.producer() {
            out.push_str("  *");
        } else {
            let _ = write!(out, "{load:3}");
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::approx::ApproxPlanner;
    use crate::planner::CachePlanner;
    use crate::workload::paper_grid;

    #[test]
    fn report_mentions_every_chunk_and_the_metrics() {
        let mut net = paper_grid(4).unwrap();
        let placement = ApproxPlanner::default().plan(&mut net, 3).unwrap();
        let text = render(&net, &placement);
        for q in 0..3 {
            assert!(text.contains(&format!("chunk {q}")));
        }
        assert!(text.contains("gini"));
        assert!(text.contains("totals:"));
    }

    #[test]
    fn histogram_counts_every_bucket() {
        let text = render_load_histogram(&[0, 0, 2, 2, 2, 5]);
        assert!(text.contains("0 chunks:   2"));
        assert!(text.contains("2 chunks:   3"));
        assert!(text.contains("5 chunks:   1"));
        assert!(text.contains("1 chunks:   0"));
    }

    #[test]
    fn empty_histogram_is_graceful() {
        assert!(render_load_histogram(&[]).contains("no clients"));
    }

    #[test]
    fn grid_render_marks_the_producer() {
        let net = paper_grid(3).unwrap();
        let grid = render_grid_loads(&net, 3);
        assert_eq!(grid.matches('*').count(), 1);
        assert_eq!(grid.lines().count(), 3);
    }

    #[test]
    #[should_panic(expected = "cols must be positive")]
    fn zero_cols_panics() {
        let net = paper_grid(3).unwrap();
        let _ = render_grid_loads(&net, 0);
    }
}
