//! Shard-local state of the region-sharded world: the placement arena,
//! the per-shard event inbox, and the typed cross-shard channel.
//!
//! A [`WorldShard`](crate::sharded::ShardedWorld) owns exactly one
//! region of the scoped store's
//! [`RegionPartition`](peercache_graph::regions::RegionPartition) —
//! shard `r` *is* region `r`. All per-client placement rows of the
//! shard's members live in a [`PlacementArena`]: a slot per member plus
//! one intrusive cell pool, so churn reuses freed cells instead of
//! reallocating per event (the shard/arena idiom).
//!
//! **Mutation discipline.** Arena state may only be mutated through
//! `WorldShard::arena_mut` (by the shard that owns the decision) or
//! `WorldShard::apply_cross` (when another shard's decision arrives
//! as a routed [`CrossShardEvent`]). Both identifiers are fenced by
//! lint rule R1 to `core/src/shard.rs` and `core/src/sharded.rs`, so
//! no other call site in the workspace can mutate a shard's state
//! behind the router's back — which is what makes the deterministic
//! shard-order merge a complete account of inter-shard effects.

use peercache_graph::NodeId;

use crate::ChunkId;

/// Sentinel for "no cell" in the arena's intrusive lists.
const NIL: u32 = u32::MAX;

/// An effect one shard's decision has on another shard's state, routed
/// through the [`ShardRouter`] and applied in deterministic
/// `(shard, sequence)` order.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CrossShardEvent {
    /// A link crossing this shard's halo came up (`up`) or went down:
    /// the shard's exact-cost ball may have changed shape. Informational
    /// — the scoped store rebuild is centralized — but counted, so the
    /// cross-shard traffic a distributed deployment would pay is
    /// observable.
    HaloLink {
        /// One endpoint of the link.
        u: NodeId,
        /// The other endpoint.
        v: NodeId,
        /// `true` for link-up, `false` for link-down.
        up: bool,
    },
    /// A provider homed in the sending shard departed; the named client
    /// (homed here) lost its row and a replacement [`CrossShardEvent::Assign`]
    /// follows under the same drain.
    OrphanHandoff {
        /// The chunk whose row is orphaned.
        chunk: ChunkId,
        /// The client that lost its provider.
        client: NodeId,
    },
    /// Write (or overwrite) one placement row of a client homed in this
    /// shard, decided by another shard (arrival planning, churn repair).
    Assign {
        /// The chunk being assigned.
        chunk: ChunkId,
        /// The client receiving the row.
        client: NodeId,
        /// The serving provider.
        provider: NodeId,
        /// Access cost of the row, as `f64::to_bits` (bitwise state, so
        /// replay equality is exact).
        cost_bits: u64,
    },
    /// A replica of `chunk` was committed onto `node`, which is homed
    /// in this shard, by another shard's planning or repair decision.
    RemoteCopy {
        /// The chunk that was copied.
        chunk: ChunkId,
        /// The node now caching it.
        node: NodeId,
    },
    /// Drop every row of `chunk` (retirement decided elsewhere).
    Retire {
        /// The retired chunk.
        chunk: ChunkId,
    },
    /// A newcomer was homed into this shard by the partition rebuild.
    Adopt {
        /// The adopted node.
        node: NodeId,
    },
}

/// One placement row stored in the arena.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ArenaRow {
    /// The client the row belongs to.
    pub client: NodeId,
    /// The chunk.
    pub chunk: ChunkId,
    /// The provider serving `client` for `chunk`.
    pub provider: NodeId,
    /// Access cost at the time the row was written (`f64::to_bits`).
    /// Deliberately *not* rewritten when unrelated contention moves —
    /// rows refresh when their chunk is planned, repaired, or handed
    /// off, which keeps replay byte-exact and bounded.
    pub cost_bits: u64,
}

/// One cell of the arena's intrusive per-client chunk lists.
#[derive(Debug, Clone, Copy)]
struct Cell {
    chunk: ChunkId,
    provider: NodeId,
    cost_bits: u64,
    /// Next cell of the same client's list (ascending chunk order), or
    /// the next free cell when on the free list.
    next: u32,
}

/// Arena-backed placement rows for one shard's members: a slot (list
/// head) per member, all cells pooled in one `Vec` with a free list.
///
/// Lists are kept in ascending chunk order, members are sorted, so
/// iteration order — and therefore every digest and merge fold over
/// the arena — is deterministic regardless of the mutation history.
#[derive(Debug, Clone)]
pub struct PlacementArena {
    /// Shard members, sorted ascending.
    members: Vec<NodeId>,
    /// Head cell per member (parallel to `members`), [`NIL`] when empty.
    heads: Vec<u32>,
    /// The shared cell pool.
    cells: Vec<Cell>,
    /// Free-list head into `cells`.
    free: u32,
    /// Live rows.
    live: usize,
    /// Cached copies pinned per member (parallel to `members`): the
    /// shard-local replica-load counter the replication fairness cap
    /// and the load Gini read without a network scan. Maintained by
    /// the sharded world at every copy commit/evict; a distributed
    /// deployment would piggyback these pins on the RemoteCopy /
    /// Retire traffic that is already routed and counted.
    replica_load: Vec<u32>,
}

impl PlacementArena {
    /// Creates an empty arena for the given (sorted) member list.
    pub fn new(members: Vec<NodeId>) -> PlacementArena {
        debug_assert!(members.windows(2).all(|w| w[0] < w[1]));
        let heads = vec![NIL; members.len()];
        let replica_load = vec![0u32; members.len()];
        PlacementArena {
            members,
            heads,
            cells: Vec::new(),
            free: NIL,
            live: 0,
            replica_load,
        }
    }

    /// Cached copies currently pinned on `member`; zero for
    /// non-members.
    pub fn replica_load(&self, member: NodeId) -> u32 {
        self.slot_of(member)
            .map_or(0, |slot| self.replica_load[slot])
    }

    /// Per-member replica loads, parallel to [`PlacementArena::members`].
    pub fn replica_loads(&self) -> &[u32] {
        &self.replica_load
    }

    /// Pins one cached copy on `member`. Returns `false` (and drops the
    /// pin) for a non-member.
    pub fn pin_replica(&mut self, member: NodeId) -> bool {
        let Some(slot) = self.slot_of(member) else {
            return false;
        };
        self.replica_load[slot] = self.replica_load[slot].saturating_add(1);
        true
    }

    /// Unpins one cached copy from `member` (saturating). Returns
    /// `false` for a non-member.
    pub fn unpin_replica(&mut self, member: NodeId) -> bool {
        let Some(slot) = self.slot_of(member) else {
            return false;
        };
        self.replica_load[slot] = self.replica_load[slot].saturating_sub(1);
        true
    }

    /// Zeroes `member`'s pins (the node departed with every copy it
    /// hosted).
    pub fn clear_replicas(&mut self, member: NodeId) {
        if let Some(slot) = self.slot_of(member) {
            self.replica_load[slot] = 0;
        }
    }

    /// The shard members this arena holds slots for.
    pub fn members(&self) -> &[NodeId] {
        &self.members
    }

    /// Number of live rows.
    pub fn len(&self) -> usize {
        self.live
    }

    /// Whether no rows are live.
    pub fn is_empty(&self) -> bool {
        self.live == 0
    }

    /// Cells ever allocated (pool size; freed cells are reused).
    pub fn pool_cells(&self) -> usize {
        self.cells.len()
    }

    fn slot_of(&self, client: NodeId) -> Option<usize> {
        self.members.binary_search(&client).ok()
    }

    fn alloc(&mut self, cell: Cell) -> u32 {
        if self.free == NIL {
            self.cells.push(cell);
            (self.cells.len() - 1) as u32
        } else {
            let at = self.free;
            self.free = self.cells[at as usize].next;
            self.cells[at as usize] = cell;
            at
        }
    }

    /// The row for `(client, chunk)`, if present.
    pub fn get(&self, client: NodeId, chunk: ChunkId) -> Option<ArenaRow> {
        let slot = self.slot_of(client)?;
        let mut at = self.heads[slot];
        while at != NIL {
            let c = &self.cells[at as usize];
            if c.chunk == chunk {
                return Some(ArenaRow {
                    client,
                    chunk,
                    provider: c.provider,
                    cost_bits: c.cost_bits,
                });
            }
            if c.chunk > chunk {
                return None;
            }
            at = c.next;
        }
        None
    }

    /// Inserts or overwrites the row for `(client, chunk)`; returns
    /// `true` when the row is new, `false` for an unknown client (not a
    /// member — the write is dropped) or an overwrite.
    pub fn set(
        &mut self,
        client: NodeId,
        chunk: ChunkId,
        provider: NodeId,
        cost_bits: u64,
    ) -> bool {
        let Some(slot) = self.slot_of(client) else {
            return false;
        };
        // Walk to the insertion point, keeping the list chunk-ascending.
        let mut prev = NIL;
        let mut at = self.heads[slot];
        while at != NIL && self.cells[at as usize].chunk < chunk {
            prev = at;
            at = self.cells[at as usize].next;
        }
        if at != NIL && self.cells[at as usize].chunk == chunk {
            self.cells[at as usize].provider = provider;
            self.cells[at as usize].cost_bits = cost_bits;
            return false;
        }
        let cell = self.alloc(Cell {
            chunk,
            provider,
            cost_bits,
            next: at,
        });
        if prev == NIL {
            self.heads[slot] = cell;
        } else {
            self.cells[prev as usize].next = cell;
        }
        self.live += 1;
        true
    }

    /// Removes the row for `(client, chunk)`; returns whether it
    /// existed.
    pub fn remove(&mut self, client: NodeId, chunk: ChunkId) -> bool {
        let Some(slot) = self.slot_of(client) else {
            return false;
        };
        let mut prev = NIL;
        let mut at = self.heads[slot];
        while at != NIL {
            let c = self.cells[at as usize];
            if c.chunk == chunk {
                if prev == NIL {
                    self.heads[slot] = c.next;
                } else {
                    self.cells[prev as usize].next = c.next;
                }
                self.cells[at as usize].next = self.free;
                self.free = at;
                self.live -= 1;
                return true;
            }
            if c.chunk > chunk {
                return false;
            }
            prev = at;
            at = c.next;
        }
        false
    }

    /// Removes every row of `chunk` across all slots; returns how many.
    pub fn remove_chunk(&mut self, chunk: ChunkId) -> usize {
        let mut removed = 0usize;
        for slot in 0..self.members.len() {
            let mut prev = NIL;
            let mut at = self.heads[slot];
            while at != NIL {
                let c = self.cells[at as usize];
                if c.chunk == chunk {
                    if prev == NIL {
                        self.heads[slot] = c.next;
                    } else {
                        self.cells[prev as usize].next = c.next;
                    }
                    self.cells[at as usize].next = self.free;
                    self.free = at;
                    self.live -= 1;
                    removed += 1;
                    break; // at most one row per (client, chunk)
                }
                if c.chunk > chunk {
                    break;
                }
                prev = at;
                at = c.next;
            }
        }
        removed
    }

    /// Frees every row of `client` (its demand vanished); returns how
    /// many rows were dropped.
    pub fn clear_client(&mut self, client: NodeId) -> usize {
        let Some(slot) = self.slot_of(client) else {
            return 0;
        };
        let mut dropped = 0usize;
        let mut at = self.heads[slot];
        while at != NIL {
            let next = self.cells[at as usize].next;
            self.cells[at as usize].next = self.free;
            self.free = at;
            self.live -= 1;
            dropped += 1;
            at = next;
        }
        self.heads[slot] = NIL;
        dropped
    }

    /// All live rows in `(member, chunk)` ascending order — the
    /// deterministic fold order of digests and audits.
    pub fn rows(&self) -> Vec<ArenaRow> {
        let mut out = Vec::with_capacity(self.live);
        for (slot, &client) in self.members.iter().enumerate() {
            let mut at = self.heads[slot];
            while at != NIL {
                let c = &self.cells[at as usize];
                out.push(ArenaRow {
                    client,
                    chunk: c.chunk,
                    provider: c.provider,
                    cost_bits: c.cost_bits,
                });
                at = c.next;
            }
        }
        out
    }
}

/// One shard of the region-sharded world: a region's members, their
/// placement arena, and the inbox cross-shard events are drained into.
#[derive(Debug, Clone)]
pub struct WorldShard {
    id: u32,
    arena: PlacementArena,
    inbox: Vec<CrossShardEvent>,
    received: u64,
}

impl WorldShard {
    /// Creates the shard for region `id` over the given (sorted)
    /// member list.
    pub fn new(id: u32, members: Vec<NodeId>) -> WorldShard {
        WorldShard {
            id,
            arena: PlacementArena::new(members),
            inbox: Vec::new(),
            received: 0,
        }
    }

    /// The shard's region index.
    pub fn id(&self) -> u32 {
        self.id
    }

    /// The shard's members (sorted ascending).
    pub fn members(&self) -> &[NodeId] {
        self.arena.members()
    }

    /// Read access to the placement arena.
    pub fn arena(&self) -> &PlacementArena {
        &self.arena
    }

    /// Mutable access to the arena — the shard-owner mutation path,
    /// fenced by lint rule R1 to this module and the world that drives
    /// it.
    pub(crate) fn arena_mut(&mut self) -> &mut PlacementArena {
        &mut self.arena
    }

    /// Queues a routed event for this shard (router delivery).
    pub(crate) fn enqueue(&mut self, ev: CrossShardEvent) {
        self.inbox.push(ev);
    }

    /// Events currently queued and not yet applied.
    pub fn queue_depth(&self) -> usize {
        self.inbox.len()
    }

    /// Cross-shard events applied to this shard over its lifetime.
    pub fn received(&self) -> u64 {
        self.received
    }

    /// Drains the inbox, applying every queued event in arrival
    /// (sequence) order; returns how many were applied.
    pub(crate) fn drain_inbox(&mut self) -> usize {
        let events = std::mem::take(&mut self.inbox);
        let applied = events.len();
        for ev in events {
            self.apply_cross(ev);
        }
        applied
    }

    /// Applies one routed event to the shard's state. The only
    /// mutation path besides the owner's `arena_mut` (lint rule R1).
    pub(crate) fn apply_cross(&mut self, ev: CrossShardEvent) {
        self.received += 1;
        match ev {
            // Informational: shape/ownership changes are centralized in
            // the scoped store and the partition rebuild; the event
            // records the traffic a distributed deployment would pay.
            CrossShardEvent::HaloLink { .. }
            | CrossShardEvent::RemoteCopy { .. }
            | CrossShardEvent::Adopt { .. } => {}
            CrossShardEvent::OrphanHandoff { chunk, client } => {
                self.arena.remove(client, chunk);
            }
            CrossShardEvent::Assign {
                chunk,
                client,
                provider,
                cost_bits,
            } => {
                self.arena.set(client, chunk, provider, cost_bits);
            }
            CrossShardEvent::Retire { chunk } => {
                self.arena.remove_chunk(chunk);
            }
        }
    }
}

/// The typed cross-shard channel: decisions made while one shard's
/// state is authoritative send their remote effects here, and the
/// world drains everything in ascending `(shard, sequence)` order at
/// fixed pipeline points — so any thread count observes the same
/// delivery order.
#[derive(Debug, Clone, Default)]
pub struct ShardRouter {
    pending: Vec<(u32, u64, CrossShardEvent)>,
    seq: u64,
    routed: u64,
}

impl ShardRouter {
    /// Creates an empty router.
    pub fn new() -> ShardRouter {
        ShardRouter::default()
    }

    /// Routes `ev` to shard `to`. Send order is captured by a global
    /// sequence number; all sends happen in serial merge phases, so the
    /// sequence — and therefore delivery order — is deterministic.
    pub(crate) fn send(&mut self, to: u32, ev: CrossShardEvent) {
        self.pending.push((to, self.seq, ev));
        self.seq += 1;
        self.routed += 1;
    }

    /// Events routed over the router's lifetime.
    pub fn total_routed(&self) -> u64 {
        self.routed
    }

    /// Events queued and not yet delivered.
    pub fn pending(&self) -> usize {
        self.pending.len()
    }

    /// Delivers every pending event into its target shard's inbox in
    /// ascending `(shard, sequence)` order; returns how many were
    /// delivered. Events addressed to a shard index outside `shards`
    /// cannot exist (targets come from the same partition).
    pub(crate) fn flush(&mut self, shards: &mut [WorldShard]) -> usize {
        let mut pending = std::mem::take(&mut self.pending);
        pending.sort_by_key(|&(to, seq, _)| (to, seq));
        let delivered = pending.len();
        for (to, _, ev) in pending {
            shards[to as usize].enqueue(ev);
        }
        delivered
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn n(i: usize) -> NodeId {
        NodeId::new(i)
    }

    fn c(i: usize) -> ChunkId {
        ChunkId::new(i)
    }

    #[test]
    fn arena_set_get_remove_roundtrip() {
        let mut a = PlacementArena::new(vec![n(2), n(5), n(9)]);
        assert!(a.set(n(5), c(1), n(2), 7));
        assert!(a.set(n(5), c(0), n(9), 3));
        assert!(a.set(n(2), c(1), n(5), 4));
        // Overwrite is not an insert.
        assert!(!a.set(n(5), c(1), n(9), 8));
        assert_eq!(a.len(), 3);
        // Non-members are rejected.
        assert!(!a.set(n(3), c(0), n(2), 1));
        let row = a.get(n(5), c(1)).unwrap();
        assert_eq!((row.provider, row.cost_bits), (n(9), 8));
        assert!(a.remove(n(5), c(0)));
        assert!(!a.remove(n(5), c(0)));
        assert_eq!(a.len(), 2);
        assert!(a.get(n(5), c(0)).is_none());
    }

    #[test]
    fn arena_rows_come_back_in_member_then_chunk_order() {
        let mut a = PlacementArena::new(vec![n(1), n(4)]);
        a.set(n(4), c(2), n(1), 0);
        a.set(n(1), c(1), n(4), 0);
        a.set(n(4), c(0), n(1), 0);
        a.set(n(1), c(3), n(4), 0);
        let order: Vec<(NodeId, ChunkId)> = a.rows().iter().map(|r| (r.client, r.chunk)).collect();
        assert_eq!(
            order,
            vec![(n(1), c(1)), (n(1), c(3)), (n(4), c(0)), (n(4), c(2))]
        );
    }

    #[test]
    fn arena_reuses_freed_cells() {
        let mut a = PlacementArena::new(vec![n(0), n(1)]);
        for i in 0..4 {
            a.set(n(0), c(i), n(1), 0);
        }
        assert_eq!(a.pool_cells(), 4);
        assert_eq!(a.clear_client(n(0)), 4);
        assert!(a.is_empty());
        for i in 0..4 {
            a.set(n(1), c(i), n(0), 0);
        }
        // Churn reuses the freed cells instead of growing the pool.
        assert_eq!(a.pool_cells(), 4);
        assert_eq!(a.remove_chunk(c(2)), 1);
        assert_eq!(a.len(), 3);
    }

    #[test]
    fn router_delivers_in_shard_then_sequence_order() {
        let mut shards = vec![
            WorldShard::new(0, vec![n(0)]),
            WorldShard::new(1, vec![n(1)]),
        ];
        let mut router = ShardRouter::new();
        router.send(1, CrossShardEvent::Adopt { node: n(1) });
        router.send(
            0,
            CrossShardEvent::Assign {
                chunk: c(0),
                client: n(0),
                provider: n(1),
                cost_bits: 5,
            },
        );
        router.send(
            0,
            CrossShardEvent::OrphanHandoff {
                chunk: c(0),
                client: n(0),
            },
        );
        assert_eq!(router.pending(), 3);
        assert_eq!(router.flush(&mut shards), 3);
        assert_eq!(router.total_routed(), 3);
        assert_eq!(shards[0].queue_depth(), 2);
        assert_eq!(shards[1].queue_depth(), 1);
        // Assign then the later handoff: the row ends up removed.
        assert_eq!(shards[0].drain_inbox(), 2);
        assert!(shards[0].arena().get(n(0), c(0)).is_none());
        assert_eq!(shards[0].received(), 2);
        assert_eq!(shards[1].drain_inbox(), 1);
        assert_eq!(shards[1].arena().len(), 0);
    }
}
