//! The paper's approximation algorithm (Algorithm 1).
//!
//! Per chunk, a **primal-dual dual ascent** in the style of the
//! 6.55-approximation ConFL algorithm of Jung et al. [20] selects the
//! caching (ADMIN) set, and a Steiner tree connects it to the producer
//! for dissemination. Chunks are processed iteratively; the storage
//! consumed by earlier chunks raises both the Fairness Degree Cost and
//! the Contention Cost seen by later chunks, which is what spreads load
//! (Theorem 1 shows the iteration preserves the approximation ratio).
//!
//! Mechanics of one chunk (mirroring the paper's variables):
//!
//! * every unfrozen client `j` raises a connection bid `α_j` by `U_α`
//!   per round;
//! * when `α_j ≥ c_ij` for an **open** facility `i` (the producer is
//!   open from the start), `j` connects and freezes;
//! * when `α_j ≥ c_ij` for a **closed** candidate `i ≠ j`, `j` starts
//!   contributing a resource bid `β_ij` toward the facility cost and a
//!   relay bid `γ_ij` toward the dissemination tree (`U_β`, `U_γ` per
//!   round) — `β` is the dual of the fairness term, `γ` plays the role
//!   of the `θ` variables that pay for Steiner edges in dual (9);
//! * a closed candidate opens when the resource bids cover its fairness
//!   cost (`Σ_j β_ij ≥ f_i`), the relay bids cover the (estimated)
//!   `M`-scaled cost of attaching it to the already-connected set
//!   (`Σ_j γ_ij ≥ M · attach(i)`), and at least
//!   [`ApproxConfig::span_threshold`] clients support it;
//! * opening freezes its supporters; the loop ends when every client is
//!   frozen (guaranteed: `α_j` eventually covers the producer's cost).
//!
//! Clients never bid on themselves (`i ≠ j`), matching the distributed
//! algorithm where TIGHT/SPAN requests go to *other* nodes; a client
//! whose own node opens still serves itself at zero cost afterwards.

use peercache_graph::paths::PathSelection;
use peercache_graph::NodeId;

use crate::costs::CostWeights;
use crate::instance::ConflInstance;
use crate::placement::Placement;
use peercache_obs as obs;

use crate::planner::{
    chunk_span, commit_chunk, finish_chunk_span, improve_by_removal, prune_unused_facilities,
    CachePlanner,
};
use crate::{ChunkId, CoreError, Network};

/// Tuning parameters of the approximation algorithm.
#[derive(Debug, Clone, PartialEq)]
pub struct ApproxConfig {
    /// Per-round increment of the connection bids `α_j` (`U_α`).
    pub u_alpha: f64,
    /// Per-round increment of the facility contributions `β_ij` (`U_β`).
    pub u_beta: f64,
    /// Per-round increment of the relay bids `γ_ij` (`U_γ`).
    pub u_gamma: f64,
    /// Number of relay-tight supporters required to open a facility
    /// (the `M` of Algorithm 2's ADMIN rule).
    pub span_threshold: usize,
    /// Objective weights (fairness / contention / dissemination).
    pub weights: CostWeights,
    /// Path routing model for the contention metric.
    pub selection: PathSelection,
}

impl Default for ApproxConfig {
    fn default() -> Self {
        ApproxConfig {
            u_alpha: 1.0,
            u_beta: 1.0,
            // Relay bids grow faster than connection bids: supporters
            // share the dissemination attachment, and the attachment
            // estimate (a node-weighted path cost) counts interior
            // nodes once where the true edge sum counts them twice.
            // Calibrated on the paper's 6x6 scenario (§V): the default
            // yields ~7-10 caching nodes per chunk, a Gini coefficient
            // around 0.25 and a total contention cost at or below the
            // Contention-based baseline — the paper's reported regime.
            u_gamma: 8.0,
            span_threshold: 1,
            weights: CostWeights::default(),
            selection: PathSelection::FewestHops,
        }
    }
}

impl ApproxConfig {
    fn validate(&self) -> Result<(), CoreError> {
        for (name, v) in [
            ("u_alpha", self.u_alpha),
            ("u_beta", self.u_beta),
            ("u_gamma", self.u_gamma),
        ] {
            if !(v.is_finite() && v > 0.0) {
                return Err(CoreError::InvalidParameter(format!(
                    "{name} must be positive and finite, got {v}"
                )));
            }
        }
        if self.span_threshold == 0 {
            return Err(CoreError::InvalidParameter(
                "span_threshold must be at least 1".into(),
            ));
        }
        Ok(())
    }
}

/// Outcome statistics of one chunk's dual ascent.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DualAscentStats {
    /// Rounds until every client froze.
    pub rounds: usize,
    /// Facilities opened (before unused-facility pruning).
    pub opened: usize,
    /// Clients frozen because their α went tight with an already-open
    /// facility (or the producer) — the "tight edge" events of §IV-B.
    pub tight_events: usize,
}

/// Runs the dual ascent for one chunk and returns the opened facility
/// set (sorted) plus statistics.
///
/// # Errors
///
/// Returns [`CoreError::InvalidParameter`] for non-positive increments
/// and propagates internal failures.
pub fn dual_ascent(
    net: &Network,
    inst: &ConflInstance,
    cfg: &ApproxConfig,
) -> Result<(Vec<NodeId>, DualAscentStats), CoreError> {
    cfg.validate()?;
    let n = net.node_count();
    let producer = inst.producer();
    let clients: Vec<NodeId> = inst.clients().to_vec();
    let candidates = inst.candidates();

    let mut alpha = vec![0.0f64; n];
    let mut frozen = vec![false; n];
    let mut open = vec![false; n];
    // Dense bid matrices indexed [facility][client].
    let mut beta = vec![0.0f64; n * n];
    let mut beta_sum = vec![0.0f64; n];
    let mut gamma = vec![0.0f64; n * n];
    let mut gamma_sum = vec![0.0f64; n];
    // Estimated cost of attaching each candidate to the connected set
    // (open facilities ∪ producer); shrinks as facilities open.
    let mut attach: Vec<f64> = (0..n)
        .map(|i| inst.connection_cost(producer, NodeId::new(i)))
        .collect();

    // Termination bound: once α_j reaches the producer's connection
    // cost, j freezes, so the round count is bounded by max c(v, j)/U_α
    // (§IV-B's C = max{c_ij}/U_α), plus slack for the same-round checks.
    let max_producer_cost = clients
        .iter()
        .map(|&j| inst.connection_cost(producer, j))
        .fold(0.0f64, f64::max);
    let round_cap = (max_producer_cost / cfg.u_alpha).ceil() as usize + 2;

    let mut ascent_span = obs::span!(
        "core.dual_ascent",
        clients = clients.len(),
        candidates = candidates.len(),
    );
    let mut rounds = 0usize;
    let mut tight_events = 0usize;
    while clients.iter().any(|&j| !frozen[j.index()]) {
        rounds += 1;
        if rounds > round_cap {
            return Err(CoreError::InvalidParameter(format!(
                "dual ascent failed to converge within {round_cap} rounds"
            )));
        }

        // 1. Raise connection bids.
        for &j in &clients {
            if !frozen[j.index()] {
                alpha[j.index()] += cfg.u_alpha;
            }
        }

        // 2. Freeze clients tight with an open facility (producer
        //    included; a client whose own node is open freezes at cost 0).
        for &j in &clients {
            if frozen[j.index()] {
                continue;
            }
            let tight_open = alpha[j.index()] >= inst.connection_cost(producer, j)
                || candidates
                    .iter()
                    .any(|&i| open[i.index()] && alpha[j.index()] >= inst.connection_cost(i, j));
            if tight_open {
                frozen[j.index()] = true;
                tight_events += 1;
            }
        }

        // 3. Contributions toward closed candidates (never self-bids):
        //    β pays the fairness cost, γ pays the tree attachment.
        for &j in &clients {
            if frozen[j.index()] {
                continue;
            }
            for &i in &candidates {
                if i == j || open[i.index()] {
                    continue;
                }
                if alpha[j.index()] >= inst.connection_cost(i, j) {
                    let f_i = inst.facility_cost(i);
                    let room = f_i - beta_sum[i.index()];
                    if room > 0.0 {
                        let add = cfg.u_beta.min(room);
                        beta[i.index() * n + j.index()] += add;
                        beta_sum[i.index()] += add;
                    }
                    gamma[i.index() * n + j.index()] += cfg.u_gamma;
                    gamma_sum[i.index()] += cfg.u_gamma;
                }
            }
        }

        // 4. Open facilities whose fairness cost and attachment cost are
        //    both paid and whose supporter count meets the SPAN
        //    threshold; freeze their supporters. Openings are
        //    serialized — one per round, best-supported first — because
        //    supporters overlap: batching would open many facilities on
        //    the *same* contributors before freezing can take effect
        //    (the continuous-time primal-dual processes these events one
        //    at a time).
        let mut best_open: Option<(usize, NodeId)> = None;
        for &i in &candidates {
            if open[i.index()] {
                continue;
            }
            let f_i = inst.facility_cost(i);
            if beta_sum[i.index()] + 1e-12 < f_i {
                continue;
            }
            let attach_due = inst.weights().dissemination * attach[i.index()];
            if gamma_sum[i.index()] + 1e-12 < attach_due {
                continue;
            }
            let supporters = clients
                .iter()
                .filter(|&&j| {
                    j != i && !frozen[j.index()] && gamma[i.index() * n + j.index()] > 0.0
                })
                .count();
            if supporters >= cfg.span_threshold
                && best_open.is_none_or(|(bs, bi)| supporters > bs || (supporters == bs && i < bi))
            {
                best_open = Some((supporters, i));
            }
        }
        if let Some((_, i)) = best_open {
            open[i.index()] = true;
            for &j in &clients {
                if frozen[j.index()] || j == i {
                    continue;
                }
                if beta[i.index() * n + j.index()] > 0.0 || gamma[i.index() * n + j.index()] > 0.0 {
                    frozen[j.index()] = true;
                }
            }
            // The new facility shrinks everyone's attachment estimate.
            for (k, slot) in attach.iter_mut().enumerate() {
                let via = inst.connection_cost(i, NodeId::new(k));
                if via < *slot {
                    *slot = via;
                }
            }
        }
    }

    let facilities: Vec<NodeId> = candidates
        .iter()
        .copied()
        .filter(|&i| open[i.index()])
        .collect();
    let stats = DualAscentStats {
        rounds,
        opened: facilities.len(),
        tight_events,
    };
    if ascent_span.is_recording() {
        ascent_span.add_field("rounds", obs::Value::from(stats.rounds));
        ascent_span.add_field("opened", obs::Value::from(stats.opened));
        ascent_span.add_field("tight_events", obs::Value::from(stats.tight_events));
    }
    Ok((facilities, stats))
}

/// The approximation-algorithm planner ("Appx" in the figures).
#[derive(Debug, Clone, Default)]
pub struct ApproxPlanner {
    /// Algorithm parameters.
    pub config: ApproxConfig,
}

impl ApproxPlanner {
    /// Creates a planner with explicit parameters.
    pub fn new(config: ApproxConfig) -> Self {
        ApproxPlanner { config }
    }
}

impl CachePlanner for ApproxPlanner {
    fn name(&self) -> &str {
        "Appx"
    }

    fn plan(&self, net: &mut Network, chunk_count: usize) -> Result<Placement, CoreError> {
        self.config.validate()?;
        let mut placement = Placement::default();
        for q in 0..chunk_count {
            let chunk = ChunkId::new(q);
            let mut span = chunk_span("Appx", chunk);
            let mut clock = obs::Stopwatch::start();
            let inst = ConflInstance::build_for_chunk(
                net,
                chunk,
                self.config.weights,
                self.config.selection,
            )?;
            let build_us = clock.lap_us();
            let (facilities, stats) = dual_ascent(net, &inst, &self.config)?;
            let ascent_us = clock.lap_us();
            let facilities = prune_unused_facilities(net, &inst, &facilities);
            let prune_us = clock.lap_us();
            let facilities = improve_by_removal(net, &inst, &facilities)?;
            let improve_us = clock.lap_us();
            let cp = commit_chunk(net, &inst, chunk, &facilities)?;
            // The commit phase evaluates the final set, which includes
            // building the Steiner dissemination tree.
            let steiner_commit_us = clock.lap_us();
            if span.is_recording() {
                span.add_field("rounds", obs::Value::from(stats.rounds));
                span.add_field("tight_events", obs::Value::from(stats.tight_events));
                span.add_field("opened", obs::Value::from(stats.opened));
                span.add_field("pruned", obs::Value::from(stats.opened - facilities.len()));
                span.add_field("build_us", obs::Value::from(build_us));
                span.add_field("ascent_us", obs::Value::from(ascent_us));
                span.add_field("prune_us", obs::Value::from(prune_us));
                span.add_field("improve_us", obs::Value::from(improve_us));
                span.add_field("steiner_commit_us", obs::Value::from(steiner_commit_us));
            }
            finish_chunk_span(span, &cp);
            placement.push(cp);
        }
        Ok(placement)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use peercache_graph::builders;

    fn grid_net(side: usize, cap: usize) -> Network {
        Network::new(builders::grid(side, side), NodeId::new(side + 1), cap).unwrap()
    }

    fn build_inst(net: &Network) -> ConflInstance {
        ConflInstance::build(net, CostWeights::default(), PathSelection::FewestHops).unwrap()
    }

    #[test]
    fn config_validation_rejects_bad_increments() {
        for bad in [0.0, -1.0, f64::NAN, f64::INFINITY] {
            let cfg = ApproxConfig {
                u_alpha: bad,
                ..Default::default()
            };
            assert!(cfg.validate().is_err(), "u_alpha {bad} accepted");
        }
        let cfg = ApproxConfig {
            span_threshold: 0,
            ..Default::default()
        };
        assert!(cfg.validate().is_err());
    }

    #[test]
    fn dual_ascent_terminates_and_opens_some_facilities() {
        let net = grid_net(4, 5);
        let inst = build_inst(&net);
        let (facilities, stats) = dual_ascent(&net, &inst, &ApproxConfig::default()).unwrap();
        assert!(stats.rounds > 0);
        assert!(
            !facilities.is_empty(),
            "grid should open at least one cache"
        );
        assert!(facilities.iter().all(|&i| i != net.producer()));
    }

    #[test]
    fn dual_ascent_is_deterministic() {
        let net = grid_net(5, 5);
        let inst = build_inst(&net);
        let (f1, s1) = dual_ascent(&net, &inst, &ApproxConfig::default()).unwrap();
        let (f2, s2) = dual_ascent(&net, &inst, &ApproxConfig::default()).unwrap();
        assert_eq!(f1, f2);
        assert_eq!(s1, s2);
    }

    #[test]
    fn huge_span_threshold_leaves_producer_only() {
        let net = grid_net(3, 5);
        let inst = build_inst(&net);
        let cfg = ApproxConfig {
            span_threshold: 1000,
            ..Default::default()
        };
        let (facilities, _) = dual_ascent(&net, &inst, &cfg).unwrap();
        assert!(facilities.is_empty());
    }

    #[test]
    fn bigger_alpha_step_converges_in_fewer_rounds() {
        let net = grid_net(5, 5);
        let inst = build_inst(&net);
        let slow = ApproxConfig {
            u_alpha: 0.5,
            ..Default::default()
        };
        let fast = ApproxConfig {
            u_alpha: 5.0,
            ..Default::default()
        };
        let (_, s_slow) = dual_ascent(&net, &inst, &slow).unwrap();
        let (_, s_fast) = dual_ascent(&net, &inst, &fast).unwrap();
        assert!(s_fast.rounds <= s_slow.rounds);
    }

    #[test]
    fn planner_places_all_chunks_respecting_capacity() {
        let mut net = grid_net(4, 3);
        let placement = ApproxPlanner::default().plan(&mut net, 3).unwrap();
        assert_eq!(placement.chunks().len(), 3);
        for n in net.graph().nodes() {
            assert!(net.used(n) <= net.capacity(n));
        }
        // Every chunk is recorded exactly once per caching node.
        for cp in placement.chunks() {
            for &c in &cp.caches {
                assert!(net.is_cached(c, cp.chunk));
            }
            assert_eq!(cp.assignment.len(), net.node_count() - 1);
        }
    }

    #[test]
    fn later_chunks_prefer_less_loaded_nodes() {
        // With fairness in play, the multiset of caching nodes across
        // chunks should involve strictly more distinct nodes than one
        // chunk's facility set (no fixed-set degeneracy).
        let mut net = grid_net(5, 4);
        let placement = ApproxPlanner::default().plan(&mut net, 4).unwrap();
        let first: Vec<NodeId> = placement.chunks()[0].caches.clone();
        let mut all: Vec<NodeId> = placement
            .chunks()
            .iter()
            .flat_map(|c| c.caches.iter().copied())
            .collect();
        all.sort_unstable();
        all.dedup();
        assert!(
            all.len() > first.len(),
            "fairness should recruit new nodes across chunks: {} vs {}",
            all.len(),
            first.len()
        );
    }

    #[test]
    fn zero_chunks_yields_empty_placement() {
        let mut net = grid_net(3, 2);
        let placement = ApproxPlanner::default().plan(&mut net, 0).unwrap();
        assert!(placement.chunks().is_empty());
    }

    #[test]
    fn works_on_random_topologies() {
        use rand::SeedableRng;
        let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(11);
        let g = builders::random_geometric(30, 0.3, &mut rng);
        let mut net = Network::new(g, NodeId::new(0), 5).unwrap();
        let placement = ApproxPlanner::default().plan(&mut net, 5).unwrap();
        assert_eq!(placement.chunks().len(), 5);
        assert!(placement.total_contention_cost() > 0.0);
    }
}
