//! The paper's approximation algorithm (Algorithm 1).
//!
//! Per chunk, a **primal-dual dual ascent** in the style of the
//! 6.55-approximation ConFL algorithm of Jung et al. \[20\] selects the
//! caching (ADMIN) set, and a Steiner tree connects it to the producer
//! for dissemination. Chunks are processed iteratively; the storage
//! consumed by earlier chunks raises both the Fairness Degree Cost and
//! the Contention Cost seen by later chunks, which is what spreads load
//! (Theorem 1 shows the iteration preserves the approximation ratio).
//!
//! Mechanics of one chunk (mirroring the paper's variables):
//!
//! * every unfrozen client `j` raises a connection bid `α_j` by `U_α`
//!   per round;
//! * when `α_j ≥ c_ij` for an **open** facility `i` (the producer is
//!   open from the start), `j` connects and freezes;
//! * when `α_j ≥ c_ij` for a **closed** candidate `i ≠ j`, `j` starts
//!   contributing a resource bid `β_ij` toward the facility cost and a
//!   relay bid `γ_ij` toward the dissemination tree (`U_β`, `U_γ` per
//!   round) — `β` is the dual of the fairness term, `γ` plays the role
//!   of the `θ` variables that pay for Steiner edges in dual (9);
//! * a closed candidate opens when the resource bids cover its fairness
//!   cost (`Σ_j β_ij ≥ f_i`), the relay bids cover the (estimated)
//!   `M`-scaled cost of attaching it to the already-connected set
//!   (`Σ_j γ_ij ≥ M · attach(i)`), and at least
//!   [`ApproxConfig::span_threshold`] clients support it;
//! * opening freezes its supporters; the loop ends when every client is
//!   frozen (guaranteed: `α_j` eventually covers the producer's cost).
//!
//! Clients never bid on themselves (`i ≠ j`), matching the distributed
//! algorithm where TIGHT/SPAN requests go to *other* nodes; a client
//! whose own node opens still serves itself at zero cost afterwards.

use peercache_graph::paths::{Parallelism, PathSelection};
use peercache_graph::NodeId;

use crate::costs::{ContentionMatrix, CostWeights};
use crate::instance::{ConflCosts, ConflInstance};
use crate::placement::Placement;
use peercache_obs as obs;

use crate::planner::{
    chunk_span, commit_chunk_replicated, finish_chunk_span, improve_by_removal,
    improve_by_removal_reference, prune_unused_facilities, CachePlanner,
};
use crate::replication::ReplicationPolicy;
use crate::{ChunkId, CoreError, Network};

/// Tuning parameters of the approximation algorithm.
#[derive(Debug, Clone, PartialEq)]
pub struct ApproxConfig {
    /// Per-round increment of the connection bids `α_j` (`U_α`).
    pub u_alpha: f64,
    /// Per-round increment of the facility contributions `β_ij` (`U_β`).
    pub u_beta: f64,
    /// Per-round increment of the relay bids `γ_ij` (`U_γ`).
    pub u_gamma: f64,
    /// Number of relay-tight supporters required to open a facility
    /// (the `M` of Algorithm 2's ADMIN rule).
    pub span_threshold: usize,
    /// Objective weights (fairness / contention / dissemination).
    pub weights: CostWeights,
    /// Path routing model for the contention metric.
    pub selection: PathSelection,
    /// Thread fan-out for the all-pairs shortest-path phases. Purely a
    /// wall-clock knob: every setting produces byte-identical plans.
    pub parallelism: Parallelism,
    /// Test-only escape hatch: run the original unoptimized pipeline —
    /// full contention recompute every chunk and the fixed-increment
    /// round-scanning dual ascent. The optimized path is proven against
    /// this oracle by the determinism regression tests; production code
    /// has no reason to enable it.
    pub reference_mode: bool,
    /// R-copy replication: after the ascent settles a chunk's facility
    /// set, top it up to [`ReplicationPolicy::degree`] copies under the
    /// per-node replica-load fairness cap. The default single-copy
    /// policy leaves every planner byte-identical to the pre-replication
    /// pipeline.
    pub replication: ReplicationPolicy,
}

impl Default for ApproxConfig {
    fn default() -> Self {
        ApproxConfig {
            u_alpha: 1.0,
            u_beta: 1.0,
            // Relay bids grow faster than connection bids: supporters
            // share the dissemination attachment, and the attachment
            // estimate (a node-weighted path cost) counts interior
            // nodes once where the true edge sum counts them twice.
            // Calibrated on the paper's 6x6 scenario (§V): the default
            // yields ~7-10 caching nodes per chunk, a Gini coefficient
            // around 0.25 and a total contention cost at or below the
            // Contention-based baseline — the paper's reported regime.
            u_gamma: 8.0,
            span_threshold: 1,
            weights: CostWeights::default(),
            selection: PathSelection::FewestHops,
            parallelism: Parallelism::Auto,
            reference_mode: false,
            replication: ReplicationPolicy::default(),
        }
    }
}

impl ApproxConfig {
    pub(crate) fn validate(&self) -> Result<(), CoreError> {
        for (name, v) in [
            ("u_alpha", self.u_alpha),
            ("u_beta", self.u_beta),
            ("u_gamma", self.u_gamma),
        ] {
            if !(v.is_finite() && v > 0.0) {
                return Err(CoreError::InvalidParameter(format!(
                    "{name} must be positive and finite, got {v}"
                )));
            }
        }
        if self.span_threshold == 0 {
            return Err(CoreError::InvalidParameter(
                "span_threshold must be at least 1".into(),
            ));
        }
        self.replication.validate()?;
        Ok(())
    }
}

/// Outcome statistics of one chunk's dual ascent.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DualAscentStats {
    /// Rounds until every client froze.
    pub rounds: usize,
    /// Facilities opened (before unused-facility pruning).
    pub opened: usize,
    /// Clients frozen because their α went tight with an already-open
    /// facility (or the producer) — the "tight edge" events of §IV-B.
    pub tight_events: usize,
}

/// Runs the dual ascent for one chunk and returns the opened facility
/// set (sorted) plus statistics.
///
/// Dispatches to the event-driven implementation unless
/// [`ApproxConfig::reference_mode`] asks for the original
/// round-scanning loop; both produce byte-identical results.
///
/// # Errors
///
/// Returns [`CoreError::InvalidParameter`] for non-positive increments
/// and propagates internal failures.
pub fn dual_ascent(
    net: &Network,
    inst: &ConflInstance,
    cfg: &ApproxConfig,
) -> Result<(Vec<NodeId>, DualAscentStats), CoreError> {
    cfg.validate()?;
    if cfg.reference_mode {
        dual_ascent_reference(net, inst, cfg)
    } else {
        let result = dual_ascent_fast(inst, cfg)?;
        // Oracle: re-run the reference loop with dual-feasibility and
        // complementary-slackness assertions armed, and require the fast
        // path's opened set to match it exactly.
        #[cfg(feature = "strict-invariants")]
        crate::strict::check_dual_solution(inst, cfg, &result.0);
        Ok(result)
    }
}

/// Runs the event-driven dual ascent over any [`ConflCosts`] view —
/// the entry point the hierarchical planner uses for its per-region
/// sub-instances backed by [`crate::scoped::ScopedContention`].
///
/// Identical algorithm and tie-breaks as the fast path of
/// [`dual_ascent`]; with `strict-invariants` enabled the reference
/// replay oracle is armed against the same view.
///
/// # Errors
///
/// Returns [`CoreError::InvalidParameter`] for non-positive increments
/// and propagates internal failures.
pub fn dual_ascent_scoped<V: ConflCosts>(
    view: &V,
    cfg: &ApproxConfig,
) -> Result<(Vec<NodeId>, DualAscentStats), CoreError> {
    cfg.validate()?;
    let result = dual_ascent_fast(view, cfg)?;
    #[cfg(feature = "strict-invariants")]
    crate::strict::check_dual_solution(view, cfg, &result.0);
    Ok(result)
}

/// The original fixed-increment round loop, kept verbatim as the oracle
/// the optimized ascent is regression-tested against.
fn dual_ascent_reference(
    net: &Network,
    inst: &ConflInstance,
    cfg: &ApproxConfig,
) -> Result<(Vec<NodeId>, DualAscentStats), CoreError> {
    let n = net.node_count();
    let producer = inst.producer();
    let clients: Vec<NodeId> = inst.clients().to_vec();
    let candidates = inst.candidates();

    let mut alpha = vec![0.0f64; n];
    let mut frozen = vec![false; n];
    let mut open = vec![false; n];
    // Dense bid matrices indexed [facility][client].
    let mut beta = vec![0.0f64; n * n];
    let mut beta_sum = vec![0.0f64; n];
    let mut gamma = vec![0.0f64; n * n];
    let mut gamma_sum = vec![0.0f64; n];
    // Estimated cost of attaching each candidate to the connected set
    // (open facilities ∪ producer); shrinks as facilities open.
    let mut attach: Vec<f64> = (0..n)
        .map(|i| inst.connection_cost(producer, NodeId::new(i)))
        .collect();

    // Termination bound: once α_j reaches the producer's connection
    // cost, j freezes, so the round count is bounded by max c(v, j)/U_α
    // (§IV-B's C = max{c_ij}/U_α), plus slack for the same-round checks.
    let max_producer_cost = clients
        .iter()
        .map(|&j| inst.connection_cost(producer, j))
        .fold(0.0f64, f64::max);
    let round_cap = (max_producer_cost / cfg.u_alpha).ceil() as usize + 2;

    let mut ascent_span = obs::span!(
        "core.dual_ascent",
        clients = clients.len(),
        candidates = candidates.len(),
    );
    let mut rounds = 0usize;
    let mut tight_events = 0usize;
    while clients.iter().any(|&j| !frozen[j.index()]) {
        rounds += 1;
        if rounds > round_cap {
            return Err(CoreError::InvalidParameter(format!(
                "dual ascent failed to converge within {round_cap} rounds"
            )));
        }

        // 1. Raise connection bids.
        for &j in &clients {
            if !frozen[j.index()] {
                alpha[j.index()] += cfg.u_alpha;
            }
        }

        // 2. Freeze clients tight with an open facility (producer
        //    included; a client whose own node is open freezes at cost 0).
        for &j in &clients {
            if frozen[j.index()] {
                continue;
            }
            let tight_open = alpha[j.index()] >= inst.connection_cost(producer, j)
                || candidates
                    .iter()
                    .any(|&i| open[i.index()] && alpha[j.index()] >= inst.connection_cost(i, j));
            if tight_open {
                frozen[j.index()] = true;
                tight_events += 1;
            }
        }

        // 3. Contributions toward closed candidates (never self-bids):
        //    β pays the fairness cost, γ pays the tree attachment.
        for &j in &clients {
            if frozen[j.index()] {
                continue;
            }
            for &i in &candidates {
                if i == j || open[i.index()] {
                    continue;
                }
                if alpha[j.index()] >= inst.connection_cost(i, j) {
                    let f_i = inst.facility_cost(i);
                    let room = f_i - beta_sum[i.index()];
                    if room > 0.0 {
                        let add = cfg.u_beta.min(room);
                        beta[i.index() * n + j.index()] += add;
                        beta_sum[i.index()] += add;
                    }
                    gamma[i.index() * n + j.index()] += cfg.u_gamma;
                    gamma_sum[i.index()] += cfg.u_gamma;
                }
            }
        }

        // 4. Open facilities whose fairness cost and attachment cost are
        //    both paid and whose supporter count meets the SPAN
        //    threshold; freeze their supporters. Openings are
        //    serialized — one per round, best-supported first — because
        //    supporters overlap: batching would open many facilities on
        //    the *same* contributors before freezing can take effect
        //    (the continuous-time primal-dual processes these events one
        //    at a time).
        let mut best_open: Option<(usize, NodeId)> = None;
        for &i in &candidates {
            if open[i.index()] {
                continue;
            }
            let f_i = inst.facility_cost(i);
            if beta_sum[i.index()] + 1e-12 < f_i {
                continue;
            }
            let attach_due = inst.weights().dissemination * attach[i.index()];
            if gamma_sum[i.index()] + 1e-12 < attach_due {
                continue;
            }
            let supporters = clients
                .iter()
                .filter(|&&j| {
                    j != i && !frozen[j.index()] && gamma[i.index() * n + j.index()] > 0.0
                })
                .count();
            if supporters >= cfg.span_threshold
                && best_open.is_none_or(|(bs, bi)| supporters > bs || (supporters == bs && i < bi))
            {
                best_open = Some((supporters, i));
            }
        }
        if let Some((_, i)) = best_open {
            open[i.index()] = true;
            for &j in &clients {
                if frozen[j.index()] || j == i {
                    continue;
                }
                if beta[i.index() * n + j.index()] > 0.0 || gamma[i.index() * n + j.index()] > 0.0 {
                    frozen[j.index()] = true;
                }
            }
            // The new facility shrinks everyone's attachment estimate.
            for (k, slot) in attach.iter_mut().enumerate() {
                let via = inst.connection_cost(i, NodeId::new(k));
                if via < *slot {
                    *slot = via;
                }
            }
        }
    }

    let facilities: Vec<NodeId> = candidates
        .iter()
        .copied()
        .filter(|&i| open[i.index()])
        .collect();
    let stats = DualAscentStats {
        rounds,
        opened: facilities.len(),
        tight_events,
    };
    if ascent_span.is_recording() {
        ascent_span.add_field("rounds", obs::Value::from(stats.rounds));
        ascent_span.add_field("opened", obs::Value::from(stats.opened));
        ascent_span.add_field("tight_events", obs::Value::from(stats.tight_events));
    }
    Ok((facilities, stats))
}

/// Pays `adds` per-round contributions of `u_beta` into a facility's
/// resource-bid total, each capped by the remaining room up to the
/// fairness cost `f` — the exact fold the reference loop performs, so
/// the saturated total lands on the same bit pattern.
fn accrue_beta(beta_sum: &mut f64, f: f64, u_beta: f64, adds: usize) {
    for _ in 0..adds {
        let room = f - *beta_sum;
        if room <= 0.0 {
            break;
        }
        *beta_sum += u_beta.min(room);
    }
}

/// Smallest round `r ≥ 1` with `r·u_alpha ≥ c`, i.e. the round at which
/// a bid of cost `c` goes tight. The `ceil` guess is fixed up in both
/// directions so floating-point division error cannot shift the event
/// by a round. `None` for unreachable (non-finite) costs.
fn tight_round_of(c: f64, u_alpha: f64) -> Option<u64> {
    if !c.is_finite() {
        return None;
    }
    if c <= u_alpha {
        return Some(1);
    }
    let mut t = (c / u_alpha).ceil();
    while t * u_alpha < c {
        t += 1.0;
    }
    while t > 1.0 && (t - 1.0) * u_alpha >= c {
        t -= 1.0;
    }
    Some(t as u64)
}

/// Event-driven dual ascent, byte-identical to
/// [`dual_ascent_reference`].
///
/// Three observations collapse the reference loop's per-round
/// `O(n²)` scans:
///
/// 1. Every unfrozen client's bid is `α = r·U_α` — a single scalar per
///    round; a frozen client's bid is never read again.
/// 2. The per-pair `β_ij`/`γ_ij` matrices are only ever *read* as
///    "is this pair contributing?", and a pair `(i, j)` contributes in
///    round `r` exactly when `i` is closed, `j` is unfrozen and
///    `r·U_α ≥ c_ij`. The round each pair first activates is therefore
///    known up front (`tight_round_of`), so pairs are bucket-sorted by
///    activation round and drained with a cursor, and each candidate
///    only needs its *count* of active supporters (`tight`).
/// 3. Rounds with no activation, no freeze and no opening change state
///    by a predictable amount, so the loop computes the round of the
///    next event (next α-freeze, next pair activation, next possible
///    opening) and jumps straight to the round before it, batch-paying
///    the skipped rounds' β/γ contributions. The bounds are
///    conservative lower bounds: undershooting just executes a few
///    exact (cheap) rounds; events themselves always run exactly.
fn dual_ascent_fast<V: ConflCosts>(
    inst: &V,
    cfg: &ApproxConfig,
) -> Result<(Vec<NodeId>, DualAscentStats), CoreError> {
    let producer = inst.producer();
    let clients: Vec<NodeId> = inst.clients().to_vec();
    let candidates: Vec<NodeId> = inst.candidates();
    let nc = clients.len();
    let ncand = candidates.len();
    let m_weight = inst.weights().dissemination;

    // Same termination bound as the reference loop, same error message.
    let max_producer_cost = clients
        .iter()
        .map(|&j| inst.connection_cost(producer, j))
        .fold(0.0f64, f64::max);
    let round_cap = (max_producer_cost / cfg.u_alpha).ceil() as usize + 2;
    let cap = round_cap as u64;

    let mut ascent_span = obs::span!(
        "core.dual_ascent",
        clients = clients.len(),
        candidates = candidates.len(),
    );

    // Per-client: cheapest open facility (producer to start) and the
    // closed candidates whose pair went tight while the client was
    // unfrozen (walked to decrement supporter counts on freeze).
    let mut frozen = vec![false; nc];
    let mut freeze_c: Vec<f64> = clients
        .iter()
        .map(|&j| inst.connection_cost(producer, j))
        .collect();
    let mut tight_lists: Vec<Vec<u32>> = vec![Vec::new(); nc];

    // Per-candidate: bid totals, live supporter count, shrinking
    // attachment estimate.
    let mut open = vec![false; ncand];
    let mut beta_sum = vec![0.0f64; ncand];
    let mut gamma_sum = vec![0.0f64; ncand];
    let mut tight = vec![0usize; ncand];
    let f_cost: Vec<f64> = candidates.iter().map(|&i| inst.facility_cost(i)).collect();
    let mut attach: Vec<f64> = candidates
        .iter()
        .map(|&i| inst.connection_cost(producer, i))
        .collect();

    // All (candidate, client) pairs keyed by first-tight round,
    // counting-sorted when the round range is dense enough (order
    // within a round is irrelevant — only counts reach the totals).
    let mut pairs: Vec<(u64, u32, u32)> = Vec::new();
    for (is, &i) in candidates.iter().enumerate() {
        for (js, &j) in clients.iter().enumerate() {
            if i == j {
                continue;
            }
            if let Some(r) = tight_round_of(inst.connection_cost(i, j), cfg.u_alpha) {
                if r <= cap {
                    pairs.push((r, is as u32, js as u32));
                }
            }
        }
    }
    let max_round = pairs.iter().map(|p| p.0).max().unwrap_or(0) as usize;
    if max_round <= pairs.len().saturating_mul(8) + 1024 {
        let mut counts = vec![0usize; max_round + 2];
        for p in &pairs {
            counts[p.0 as usize + 1] += 1;
        }
        for r in 1..counts.len() {
            counts[r] += counts[r - 1];
        }
        let mut sorted = vec![(0u64, 0u32, 0u32); pairs.len()];
        for p in &pairs {
            let slot = &mut counts[p.0 as usize];
            sorted[*slot] = *p;
            *slot += 1;
        }
        pairs = sorted;
    } else {
        pairs.sort_unstable_by_key(|p| p.0);
    }
    let mut cursor = 0usize;

    let mut unfrozen_left = nc;
    let mut r: u64 = 0;
    let mut exact_rounds = 0usize;
    let mut tight_events = 0usize;
    while unfrozen_left > 0 {
        r += 1;
        if r > cap {
            return Err(CoreError::InvalidParameter(format!(
                "dual ascent failed to converge within {round_cap} rounds"
            )));
        }
        exact_rounds += 1;
        let alpha = r as f64 * cfg.u_alpha;

        // Step 2 of the reference loop: freeze clients tight with an
        // open facility (producer included).
        for js in 0..nc {
            if !frozen[js] && alpha >= freeze_c[js] {
                frozen[js] = true;
                unfrozen_left -= 1;
                tight_events += 1;
                for &is in &tight_lists[js] {
                    tight[is as usize] -= 1;
                }
            }
        }
        if unfrozen_left == 0 {
            // Steps 3–4 are no-ops with no unfrozen contributors
            // (span_threshold ≥ 1 blocks openings), as in the reference.
            break;
        }

        // Step 3, split: (a) activate pairs going tight this round...
        while cursor < pairs.len() && pairs[cursor].0 <= r {
            debug_assert_eq!(pairs[cursor].0, r, "pair activation round was skipped");
            let (_, is, js) = pairs[cursor];
            cursor += 1;
            if !frozen[js as usize] && !open[is as usize] {
                tight[is as usize] += 1;
                tight_lists[js as usize].push(is);
            }
        }
        // ...(b) pay this round's contributions per candidate.
        for is in 0..ncand {
            let t = tight[is];
            if open[is] || t == 0 {
                continue;
            }
            accrue_beta(&mut beta_sum[is], f_cost[is], cfg.u_beta, t);
            gamma_sum[is] += t as f64 * cfg.u_gamma;
        }

        // Step 4: open the best-supported paid-up candidate (smallest
        // id on ties — slot order is id order), freeze its supporters,
        // shrink attachment estimates.
        let mut best: Option<(usize, usize)> = None;
        for is in 0..ncand {
            if open[is] || beta_sum[is] + 1e-12 < f_cost[is] {
                continue;
            }
            if gamma_sum[is] + 1e-12 < m_weight * attach[is] {
                continue;
            }
            let supporters = tight[is];
            if supporters >= cfg.span_threshold && best.is_none_or(|(bs, _)| supporters > bs) {
                best = Some((supporters, is));
            }
        }
        if let Some((_, is_open)) = best {
            open[is_open] = true;
            let i = candidates[is_open];
            for js in 0..nc {
                let j = clients[js];
                if frozen[js] || j == i {
                    continue;
                }
                // A pair bid (β or γ) is nonzero iff it has activated,
                // which for an unfrozen client means α ≥ c_ij now.
                if alpha >= inst.connection_cost(i, j) {
                    frozen[js] = true;
                    unfrozen_left -= 1;
                    for &is in &tight_lists[js] {
                        tight[is as usize] -= 1;
                    }
                }
            }
            for (js, &j) in clients.iter().enumerate() {
                let via = inst.connection_cost(i, j);
                if via < freeze_c[js] {
                    freeze_c[js] = via;
                }
            }
            for (is, &k) in candidates.iter().enumerate() {
                let via = inst.connection_cost(i, k);
                if via < attach[is] {
                    attach[is] = via;
                }
            }
        }
        if unfrozen_left == 0 {
            break;
        }

        // Fast-forward: lower-bound the round of the next event and
        // jump to just before it, batch-paying the skipped rounds.
        let mut next_event = u64::MAX;
        for js in 0..nc {
            if frozen[js] {
                continue;
            }
            let t = tight_round_of(freeze_c[js], cfg.u_alpha).unwrap_or(u64::MAX);
            next_event = next_event.min(t.max(r + 1));
        }
        if cursor < pairs.len() {
            next_event = next_event.min(pairs[cursor].0.max(r + 1));
        }
        for is in 0..ncand {
            let t = tight[is];
            if open[is] || t == 0 || t < cfg.span_threshold {
                continue;
            }
            // Rounds until both bid targets could be met at the current
            // accrual rate (β may saturate early, so this is a lower
            // bound; supporter-count changes are events themselves and
            // bound `next_event` through the clauses above).
            let beta_rounds = if beta_sum[is] + 1e-12 >= f_cost[is] {
                0
            } else {
                let need = f_cost[is] - 1e-12 - beta_sum[is];
                (need / (t as f64 * cfg.u_beta)).floor().max(0.0) as u64
            };
            let attach_due = m_weight * attach[is];
            let gamma_rounds = if gamma_sum[is] + 1e-12 >= attach_due {
                0
            } else {
                let need = attach_due - 1e-12 - gamma_sum[is];
                (need / (t as f64 * cfg.u_gamma)).floor().max(0.0) as u64
            };
            next_event = next_event.min(r + beta_rounds.max(gamma_rounds).max(1));
        }
        if next_event > r + 1 {
            let k = (next_event - r - 1).min(cap.saturating_sub(r));
            if k > 0 {
                for is in 0..ncand {
                    let t = tight[is];
                    if open[is] || t == 0 {
                        continue;
                    }
                    accrue_beta(
                        &mut beta_sum[is],
                        f_cost[is],
                        cfg.u_beta,
                        t.saturating_mul(k as usize),
                    );
                    gamma_sum[is] += k as f64 * t as f64 * cfg.u_gamma;
                }
                r += k;
            }
        }
    }

    let facilities: Vec<NodeId> = candidates
        .iter()
        .enumerate()
        .filter(|&(is, _)| open[is])
        .map(|(_, &i)| i)
        .collect();
    let stats = DualAscentStats {
        rounds: r as usize,
        opened: facilities.len(),
        tight_events,
    };
    if ascent_span.is_recording() {
        ascent_span.add_field("rounds", obs::Value::from(stats.rounds));
        ascent_span.add_field("opened", obs::Value::from(stats.opened));
        ascent_span.add_field("tight_events", obs::Value::from(stats.tight_events));
        ascent_span.add_field("events", obs::Value::from(exact_rounds));
    }
    Ok((facilities, stats))
}

/// The approximation-algorithm planner ("Appx" in the figures).
#[derive(Debug, Clone, Default)]
pub struct ApproxPlanner {
    /// Algorithm parameters.
    pub config: ApproxConfig,
}

impl ApproxPlanner {
    /// Creates a planner with explicit parameters.
    pub fn new(config: ApproxConfig) -> Self {
        ApproxPlanner { config }
    }
}

impl CachePlanner for ApproxPlanner {
    fn name(&self) -> &str {
        "Appx"
    }

    fn plan(&self, net: &mut Network, chunk_count: usize) -> Result<Placement, CoreError> {
        self.config.validate()?;
        let mut placement = Placement::default();
        // The contention matrix is carried from chunk to chunk and
        // refreshed incrementally: committing a chunk only changes the
        // contention terms of the nodes that started caching (plus the
        // producer's load), so most shortest-path rows survive.
        let mut carried: Option<(ContentionMatrix, Vec<NodeId>)> = None;
        for q in 0..chunk_count {
            let chunk = ChunkId::new(q);
            let mut span = chunk_span("Appx", chunk);
            let mut clock = obs::Stopwatch::start();
            let mut apsp_recomputed = net.node_count();
            let inst = if self.config.reference_mode {
                ConflInstance::build_for_chunk(
                    net,
                    chunk,
                    self.config.weights,
                    self.config.selection,
                )?
            } else {
                let matrix = match carried.take() {
                    Some((mut matrix, dirty)) => {
                        apsp_recomputed = matrix.update(net, &dirty, self.config.parallelism)?;
                        matrix
                    }
                    None => ContentionMatrix::compute_with(
                        net,
                        self.config.selection,
                        self.config.parallelism,
                    )?,
                };
                ConflInstance::build_for_chunk_with_matrix(net, chunk, self.config.weights, matrix)
            };
            let build_us = clock.lap_us();
            let (facilities, stats) = dual_ascent(net, &inst, &self.config)?;
            let ascent_us = clock.lap_us();
            let facilities = prune_unused_facilities(net, &inst, &facilities);
            let prune_us = clock.lap_us();
            let facilities = if self.config.reference_mode {
                improve_by_removal_reference(net, &inst, &facilities)?
            } else {
                improve_by_removal(net, &inst, &facilities)?
            };
            let improve_us = clock.lap_us();
            let cp =
                commit_chunk_replicated(net, &inst, chunk, &facilities, &self.config.replication)?;
            // The commit phase evaluates the final set, which includes
            // building the Steiner dissemination tree.
            let steiner_commit_us = clock.lap_us();
            if !self.config.reference_mode && q + 1 < chunk_count {
                // Committing bumped S(k) on the new caches and the
                // producer's load term; those are the only dirty nodes.
                let mut dirty = cp.caches.clone();
                dirty.push(net.producer());
                carried = Some((inst.into_matrix(), dirty));
            }
            if span.is_recording() {
                span.add_field("apsp_recomputed", obs::Value::from(apsp_recomputed));
                span.add_field("rounds", obs::Value::from(stats.rounds));
                span.add_field("tight_events", obs::Value::from(stats.tight_events));
                span.add_field("opened", obs::Value::from(stats.opened));
                span.add_field("pruned", obs::Value::from(stats.opened - facilities.len()));
                span.add_field("build_us", obs::Value::from(build_us));
                span.add_field("ascent_us", obs::Value::from(ascent_us));
                span.add_field("prune_us", obs::Value::from(prune_us));
                span.add_field("improve_us", obs::Value::from(improve_us));
                span.add_field("steiner_commit_us", obs::Value::from(steiner_commit_us));
            }
            finish_chunk_span(span, &cp);
            placement.push(cp);
        }
        Ok(placement)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use peercache_graph::builders;

    fn grid_net(side: usize, cap: usize) -> Network {
        Network::new(builders::grid(side, side), NodeId::new(side + 1), cap).unwrap()
    }

    fn build_inst(net: &Network) -> ConflInstance {
        ConflInstance::build(net, CostWeights::default(), PathSelection::FewestHops).unwrap()
    }

    #[test]
    fn config_validation_rejects_bad_increments() {
        for bad in [0.0, -1.0, f64::NAN, f64::INFINITY] {
            let cfg = ApproxConfig {
                u_alpha: bad,
                ..Default::default()
            };
            assert!(cfg.validate().is_err(), "u_alpha {bad} accepted");
        }
        let cfg = ApproxConfig {
            span_threshold: 0,
            ..Default::default()
        };
        assert!(cfg.validate().is_err());
    }

    #[test]
    fn dual_ascent_terminates_and_opens_some_facilities() {
        let net = grid_net(4, 5);
        let inst = build_inst(&net);
        let (facilities, stats) = dual_ascent(&net, &inst, &ApproxConfig::default()).unwrap();
        assert!(stats.rounds > 0);
        assert!(
            !facilities.is_empty(),
            "grid should open at least one cache"
        );
        assert!(facilities.iter().all(|&i| i != net.producer()));
    }

    #[test]
    fn dual_ascent_is_deterministic() {
        let net = grid_net(5, 5);
        let inst = build_inst(&net);
        let (f1, s1) = dual_ascent(&net, &inst, &ApproxConfig::default()).unwrap();
        let (f2, s2) = dual_ascent(&net, &inst, &ApproxConfig::default()).unwrap();
        assert_eq!(f1, f2);
        assert_eq!(s1, s2);
    }

    #[test]
    fn huge_span_threshold_leaves_producer_only() {
        let net = grid_net(3, 5);
        let inst = build_inst(&net);
        let cfg = ApproxConfig {
            span_threshold: 1000,
            ..Default::default()
        };
        let (facilities, _) = dual_ascent(&net, &inst, &cfg).unwrap();
        assert!(facilities.is_empty());
    }

    #[test]
    fn bigger_alpha_step_converges_in_fewer_rounds() {
        let net = grid_net(5, 5);
        let inst = build_inst(&net);
        let slow = ApproxConfig {
            u_alpha: 0.5,
            ..Default::default()
        };
        let fast = ApproxConfig {
            u_alpha: 5.0,
            ..Default::default()
        };
        let (_, s_slow) = dual_ascent(&net, &inst, &slow).unwrap();
        let (_, s_fast) = dual_ascent(&net, &inst, &fast).unwrap();
        assert!(s_fast.rounds <= s_slow.rounds);
    }

    #[test]
    fn fast_ascent_matches_reference_bitwise() {
        // The event-driven ascent must reproduce the reference loop
        // exactly — facilities, round count, tight events — across
        // increment configurations (including the non-default α steps
        // exercised elsewhere).
        for (ua, ub, ug, thr) in [
            (1.0, 1.0, 8.0, 1),
            (0.5, 1.0, 8.0, 1),
            (5.0, 1.0, 8.0, 1),
            (1.0, 0.5, 2.0, 2),
            (2.0, 1.0, 4.0, 3),
        ] {
            let net = grid_net(6, 5);
            let inst = build_inst(&net);
            let cfg = ApproxConfig {
                u_alpha: ua,
                u_beta: ub,
                u_gamma: ug,
                span_threshold: thr,
                ..Default::default()
            };
            let reference = ApproxConfig {
                reference_mode: true,
                ..cfg.clone()
            };
            let (f_fast, s_fast) = dual_ascent(&net, &inst, &cfg).unwrap();
            let (f_ref, s_ref) = dual_ascent(&net, &inst, &reference).unwrap();
            assert_eq!(f_fast, f_ref, "facilities diverged for {cfg:?}");
            assert_eq!(s_fast, s_ref, "stats diverged for {cfg:?}");
        }
    }

    #[test]
    fn fast_ascent_matches_reference_on_random_topologies() {
        use rand::SeedableRng;
        for seed in 0..6u64 {
            let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(seed);
            let g = builders::random_geometric(24, 0.35, &mut rng);
            let net = Network::new(g, NodeId::new(0), 4).unwrap();
            let inst = build_inst(&net);
            let cfg = ApproxConfig::default();
            let reference = ApproxConfig {
                reference_mode: true,
                ..cfg.clone()
            };
            let (f_fast, s_fast) = dual_ascent(&net, &inst, &cfg).unwrap();
            let (f_ref, s_ref) = dual_ascent(&net, &inst, &reference).unwrap();
            assert_eq!(f_fast, f_ref, "facilities diverged for seed {seed}");
            assert_eq!(s_fast, s_ref, "stats diverged for seed {seed}");
        }
    }

    #[test]
    fn planner_matches_reference_mode_plan() {
        let placement = {
            let mut net = grid_net(5, 4);
            ApproxPlanner::default().plan(&mut net, 4).unwrap()
        };
        let reference = {
            let mut net = grid_net(5, 4);
            let cfg = ApproxConfig {
                reference_mode: true,
                ..Default::default()
            };
            ApproxPlanner::new(cfg).plan(&mut net, 4).unwrap()
        };
        assert_eq!(placement.chunks().len(), reference.chunks().len());
        for (a, b) in placement.chunks().iter().zip(reference.chunks()) {
            assert_eq!(a.chunk, b.chunk);
            assert_eq!(a.caches, b.caches);
            assert_eq!(a.assignment, b.assignment);
            assert_eq!(a.costs.total().to_bits(), b.costs.total().to_bits());
        }
    }

    #[test]
    fn planner_places_all_chunks_respecting_capacity() {
        let mut net = grid_net(4, 3);
        let placement = ApproxPlanner::default().plan(&mut net, 3).unwrap();
        assert_eq!(placement.chunks().len(), 3);
        for n in net.graph().nodes() {
            assert!(net.used(n) <= net.capacity(n));
        }
        // Every chunk is recorded exactly once per caching node.
        for cp in placement.chunks() {
            for &c in &cp.caches {
                assert!(net.is_cached(c, cp.chunk));
            }
            assert_eq!(cp.assignment.len(), net.node_count() - 1);
        }
    }

    #[test]
    fn later_chunks_prefer_less_loaded_nodes() {
        // With fairness in play, the multiset of caching nodes across
        // chunks should involve strictly more distinct nodes than one
        // chunk's facility set (no fixed-set degeneracy).
        let mut net = grid_net(5, 4);
        let placement = ApproxPlanner::default().plan(&mut net, 4).unwrap();
        let first: Vec<NodeId> = placement.chunks()[0].caches.clone();
        let mut all: Vec<NodeId> = placement
            .chunks()
            .iter()
            .flat_map(|c| c.caches.iter().copied())
            .collect();
        all.sort_unstable();
        all.dedup();
        assert!(
            all.len() > first.len(),
            "fairness should recruit new nodes across chunks: {} vs {}",
            all.len(),
            first.len()
        );
    }

    #[test]
    fn zero_chunks_yields_empty_placement() {
        let mut net = grid_net(3, 2);
        let placement = ApproxPlanner::default().plan(&mut net, 0).unwrap();
        assert!(placement.chunks().is_empty());
    }

    #[test]
    fn works_on_random_topologies() {
        use rand::SeedableRng;
        let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(11);
        let g = builders::random_geometric(30, 0.3, &mut rng);
        let mut net = Network::new(g, NodeId::new(0), 5).unwrap();
        let placement = ApproxPlanner::default().plan(&mut net, 5).unwrap();
        assert_eq!(placement.chunks().len(), 5);
        assert!(placement.total_contention_cost() > 0.0);
    }
}
