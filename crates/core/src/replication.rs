//! R-copy replication policy: top up every chunk's facility set to a
//! target replication degree under a per-node replica-load fairness cap.
//!
//! The paper's ConFL objective opens facilities where demand pays for
//! them; nothing guarantees a *minimum* copy count, so a single death
//! can erase a chunk the planner paid to place. [`ReplicationPolicy`]
//! adds a durability floor: after the ascent (and after every repair),
//! the holder set is greedily extended to `degree` copies. Each extra
//! copy is priced like any other facility — its fairness cost plus the
//! cheapest attachment to the already-placed set — so the dissemination
//! tree that is subsequently rebuilt over all holders stays an
//! R-connected Steiner tree rooted at the producer.
//!
//! Fairness of the replica load itself is enforced by a cap: a node is
//! eligible as a top-up target only while its storage load stays below
//! [`ReplicationPolicy::load_cap`] times the current network mean (hub
//! nodes stop absorbing replicas once they are ahead of the pack, the
//! FairCache motivation). The cap is best-effort: when no capped
//! candidate remains, durability wins and the cap is waived for the
//! remaining picks.
//!
//! With the default `degree = 1` every hook in the planners is a no-op
//! and all single-copy behavior (including bench baselines and shard
//! digests) is bit-for-bit unchanged.

use peercache_graph::NodeId;

use crate::{CoreError, Network};

/// The replication knob shared by every planner (see
/// [`crate::approx::ApproxConfig::replication`]).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ReplicationPolicy {
    /// Target number of cached copies per chunk (`R`). `1` disables
    /// replication entirely (the single-copy objective of the paper).
    pub degree: usize,
    /// Per-node replica-load fairness cap, as a multiple of the mean
    /// storage load across active nodes. A node whose load is at or
    /// above `load_cap × mean` is skipped by the top-up (unless no
    /// capped candidate remains at all).
    pub load_cap: f64,
}

impl Default for ReplicationPolicy {
    fn default() -> Self {
        ReplicationPolicy {
            degree: 1,
            load_cap: 2.0,
        }
    }
}

impl ReplicationPolicy {
    /// A policy with the given degree and the default fairness cap.
    pub fn with_degree(degree: usize) -> Self {
        ReplicationPolicy {
            degree,
            ..Default::default()
        }
    }

    /// Whether this policy leaves the planners' single-copy behavior
    /// untouched.
    pub fn is_single_copy(&self) -> bool {
        self.degree <= 1
    }

    /// Validates the policy parameters.
    ///
    /// # Errors
    ///
    /// [`CoreError::InvalidParameter`] for a zero degree or a cap below
    /// 1 (which could forbid even the mean load) or non-finite.
    pub fn validate(&self) -> Result<(), CoreError> {
        if self.degree == 0 {
            return Err(CoreError::InvalidParameter(
                "replication degree must be at least 1".into(),
            ));
        }
        if !(self.load_cap.is_finite() && self.load_cap >= 1.0) {
            return Err(CoreError::InvalidParameter(format!(
                "replication load_cap must be finite and >= 1, got {}",
                self.load_cap
            )));
        }
        Ok(())
    }

    /// The per-node storage budget the fairness cap allows right now:
    /// `ceil(load_cap × mean active load)`, at least 1 so an empty
    /// network can always take its first copies.
    pub fn cap_slots(&self, net: &Network) -> usize {
        let active = net.active_nodes();
        if active.is_empty() {
            return 1;
        }
        let total: usize = active.iter().map(|&n| net.used(n)).sum();
        let mean = total as f64 / active.len() as f64;
        let slots = (self.load_cap * mean).ceil();
        if slots < 1.0 {
            1
        } else {
            slots as usize
        }
    }
}

/// Greedily selects the nodes that top `holders` up to the policy's
/// replication degree.
///
/// Each pick minimizes `facility(i) + min_{h ∈ holders ∪ picked ∪
/// {producer}} link(i, h)` — the fairness price of the copy plus its
/// cheapest attachment to the already-connected set, the same attach
/// logic the dual ascent charges through its `γ` bids. Candidates are
/// scanned in ascending node id, so cost ties resolve to the lower id
/// and the result is deterministic. Eligible candidates are active
/// non-producer nodes with free storage in the producer's component
/// that do not already hold the chunk; the fairness cap
/// ([`ReplicationPolicy::cap_slots`]) is applied first and waived only
/// when it would leave the degree unmet.
///
/// Returns the picked targets in pick order (possibly fewer than
/// requested when the network runs out of eligible nodes). Empty for a
/// single-copy policy.
pub fn top_up_targets(
    net: &Network,
    holders: &[NodeId],
    policy: &ReplicationPolicy,
    facility: impl Fn(NodeId) -> f64,
    link: impl Fn(NodeId, NodeId) -> f64,
    producer: NodeId,
) -> Vec<NodeId> {
    let need = policy.degree.saturating_sub(holders.len());
    if need == 0 {
        return Vec::new();
    }
    let cap = policy.cap_slots(net);
    let mut current: Vec<NodeId> = holders.to_vec();
    debug_assert!(current.windows(2).all(|w| w[0] < w[1]), "holders sorted");
    let mut picked = Vec::with_capacity(need);
    for _ in 0..need {
        let next = pick_best(net, &current, cap, &facility, &link, producer)
            .or_else(|| pick_best(net, &current, usize::MAX, &facility, &link, producer));
        let Some(i) = next else { break };
        picked.push(i);
        if let Err(at) = current.binary_search(&i) {
            current.insert(at, i);
        }
    }
    picked
}

/// One greedy pick: the cheapest eligible candidate under `cap`, ties
/// to the lowest id (the ascending scan makes the first minimum win).
fn pick_best(
    net: &Network,
    current: &[NodeId],
    cap: usize,
    facility: &impl Fn(NodeId) -> f64,
    link: &impl Fn(NodeId, NodeId) -> f64,
    producer: NodeId,
) -> Option<NodeId> {
    let mut best: Option<(f64, NodeId)> = None;
    for i in net.active_nodes() {
        if i == producer || current.binary_search(&i).is_ok() {
            continue;
        }
        if net.remaining(i) == 0 || net.used(i) >= cap || !net.in_producer_component(i) {
            continue;
        }
        let mut attach = link(i, producer);
        for &h in current {
            let via = link(i, h);
            if via < attach {
                attach = via;
            }
        }
        let score = facility(i) + attach;
        if !score.is_finite() {
            continue;
        }
        if best.is_none_or(|(bs, _)| score < bs) {
            best = Some((score, i));
        }
    }
    best.map(|(_, i)| i)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ChunkId;
    use peercache_graph::builders;

    fn grid_net(side: usize, cap: usize) -> Network {
        Network::new(builders::grid(side, side), NodeId::new(0), cap).unwrap()
    }

    #[test]
    fn default_policy_is_single_copy_and_valid() {
        let p = ReplicationPolicy::default();
        assert!(p.is_single_copy());
        p.validate().unwrap();
        assert!(top_up_targets(
            &grid_net(3, 2),
            &[NodeId::new(4)],
            &p,
            |_| 0.0,
            |_, _| 1.0,
            NodeId::new(0),
        )
        .is_empty());
    }

    #[test]
    fn validation_rejects_degenerate_parameters() {
        assert!(ReplicationPolicy {
            degree: 0,
            load_cap: 2.0
        }
        .validate()
        .is_err());
        for bad in [0.5, f64::NAN, f64::INFINITY] {
            assert!(ReplicationPolicy {
                degree: 2,
                load_cap: bad
            }
            .validate()
            .is_err());
        }
        ReplicationPolicy::with_degree(3).validate().unwrap();
    }

    #[test]
    fn top_up_reaches_the_degree_and_skips_holders() {
        let net = grid_net(4, 3);
        let holders = vec![NodeId::new(5)];
        let policy = ReplicationPolicy::with_degree(3);
        let picked = top_up_targets(&net, &holders, &policy, |_| 0.0, |_, _| 1.0, net.producer());
        assert_eq!(picked.len(), 2);
        assert!(picked.iter().all(|&i| i != net.producer()));
        assert!(picked.iter().all(|&i| !holders.contains(&i)));
        let mut uniq = picked.clone();
        uniq.sort_unstable();
        uniq.dedup();
        assert_eq!(uniq.len(), picked.len(), "picks are distinct");
    }

    #[test]
    fn uniform_costs_break_ties_toward_lower_ids() {
        let net = grid_net(3, 2);
        let picked = top_up_targets(
            &net,
            &[],
            &ReplicationPolicy::with_degree(2),
            |_| 0.0,
            |_, _| 1.0,
            net.producer(),
        );
        // Producer is node 0, so the two cheapest eligible ids win.
        assert_eq!(picked, vec![NodeId::new(1), NodeId::new(2)]);
    }

    #[test]
    fn fairness_cap_steers_picks_to_less_loaded_nodes() {
        let mut net = grid_net(3, 5);
        // Node 1 hoards 4 chunks; mean load is low, so the cap excludes
        // it even though its link cost would win.
        for q in 0..4 {
            net.cache(NodeId::new(1), ChunkId::new(10 + q)).unwrap();
        }
        let cheap_hub = NodeId::new(1);
        let picked = top_up_targets(
            &net,
            &[],
            &ReplicationPolicy {
                degree: 1,
                load_cap: 1.5,
            },
            |_| 0.0,
            |i, _| if i == cheap_hub { 0.0 } else { 10.0 },
            net.producer(),
        );
        assert_eq!(picked.len(), 1);
        assert_ne!(picked[0], cheap_hub, "cap must exclude the loaded hub");
    }

    #[test]
    fn cap_is_waived_when_it_would_leave_the_degree_unmet() {
        let mut net = grid_net(2, 4);
        // Every non-producer node already carries load; the cap (mean
        // multiple) excludes nobody absolutely — shrink to a tiny graph
        // where only over-cap nodes remain and the waiver must kick in.
        for q in 0..3 {
            net.cache(NodeId::new(1), ChunkId::new(20 + q)).unwrap();
        }
        let picked = top_up_targets(
            &net,
            &[NodeId::new(2), NodeId::new(3)],
            &ReplicationPolicy {
                degree: 3,
                load_cap: 1.0,
            },
            |_| 0.0,
            |_, _| 1.0,
            net.producer(),
        );
        assert_eq!(picked, vec![NodeId::new(1)], "waiver keeps durability");
    }

    #[test]
    fn exhausted_storage_yields_fewer_picks_not_an_error() {
        let mut net = grid_net(2, 1);
        for u in 1..4 {
            net.cache(NodeId::new(u), ChunkId::new(9)).unwrap();
        }
        let picked = top_up_targets(
            &net,
            &[],
            &ReplicationPolicy::with_degree(3),
            |_| 0.0,
            |_, _| 1.0,
            net.producer(),
        );
        assert!(picked.is_empty(), "no free slot anywhere");
    }

    #[test]
    fn cap_slots_tracks_the_mean_load() {
        let mut net = grid_net(3, 6);
        let policy = ReplicationPolicy {
            degree: 2,
            load_cap: 2.0,
        };
        assert_eq!(policy.cap_slots(&net), 1, "empty network floors at 1");
        for u in 1..9 {
            net.cache(NodeId::new(u), ChunkId::new(50)).unwrap();
        }
        // Mean load 8/9, cap 2.0 → ceil(16/9) = 2 slots.
        assert_eq!(policy.cap_slots(&net), 2);
    }
}
