//! Online chunk arrival — the paper's future-work extension.
//!
//! §VI: "Over long time periods, some chunks may become out-dated,
//! necessitating cache replacement. We plan to ... develop online
//! distributed solutions." [`OnlineCache`] is that extension for the
//! centralized planner: chunks arrive one at a time, each placed with
//! the approximation algorithm against the *current* storage state, and
//! a retention window retires the oldest live chunk when exceeded
//! (freeing its copies network-wide).
//!
//! Since the dynamic-topology refactor this is a thin facade over
//! [`CacheWorld`] restricted to the arrival/retire events — the churn
//! events (departures, joins, link flaps) live on the world itself.
//! There is deliberately no mutable network handle anymore: the old
//! `network_mut` escape hatch let callers evict copies behind the
//! live-chunk bookkeeping's back; every mutation now goes through a
//! typed method that keeps the records consistent.

use crate::approx::ApproxConfig;
use crate::placement::ChunkPlacement;
use crate::world::CacheWorld;
use crate::{ChunkId, CoreError, Network};

use peercache_graph::NodeId;

/// An evolving cache that places chunks as they arrive.
#[derive(Debug, Clone)]
pub struct OnlineCache {
    world: CacheWorld,
}

impl OnlineCache {
    /// Creates an online cache over `net` using the approximation
    /// algorithm with `config` for each arrival.
    pub fn new(net: Network, config: ApproxConfig) -> Self {
        OnlineCache {
            world: CacheWorld::new(net, config),
        }
    }

    /// Keep at most `chunks` live chunks; older ones are retired before
    /// a new arrival is placed.
    pub fn with_retention(mut self, chunks: usize) -> Self {
        self.world = self.world.with_retention(chunks);
        self
    }

    /// Switches the underlying world to partition-tolerant semantics
    /// (see [`CacheWorld::partition_tolerant`]): topology events applied
    /// through [`OnlineCache::into_world`]'s world may then split the
    /// network, with arrivals planned per component and unreachable
    /// demand deferred.
    pub fn partition_tolerant(mut self) -> Self {
        self.world = self.world.partition_tolerant();
        self
    }

    /// The current network state.
    pub fn network(&self) -> &Network {
        self.world.network()
    }

    /// The underlying churn-aware world, for topology events beyond
    /// plain arrivals and retirements.
    pub fn world(&self) -> &CacheWorld {
        &self.world
    }

    /// Consumes the facade, handing the world over for full churn
    /// control.
    pub fn into_world(self) -> CacheWorld {
        self.world
    }

    /// Consumes the facade into the region-sharded pipeline (see
    /// [`CacheWorld::into_sharded`]).
    ///
    /// # Errors
    ///
    /// Propagates [`CacheWorld::into_sharded`]'s errors.
    pub fn into_sharded(
        self,
        scoped: crate::scoped::ScopedConfig,
    ) -> Result<crate::sharded::ShardedWorld, crate::CoreError> {
        self.world.into_sharded(scoped)
    }

    /// Drains battery from a node between arrivals — environmental
    /// change only; affects future facility costs.
    ///
    /// # Panics
    ///
    /// Panics if `node` is out of bounds.
    pub fn drain_battery(&mut self, node: NodeId, amount: f64) {
        self.world.drain_battery(node, amount);
    }

    /// Sets a node's remaining battery fraction.
    ///
    /// # Errors
    ///
    /// As [`Network::set_battery`].
    pub fn set_battery(&mut self, node: NodeId, fraction: f64) -> Result<(), CoreError> {
        self.world.set_battery(node, fraction)
    }

    /// Restricts a chunk's audience; a live chunk's assignment is
    /// refreshed immediately.
    ///
    /// # Errors
    ///
    /// As [`CacheWorld::set_interest`].
    pub fn set_interest(
        &mut self,
        chunk: ChunkId,
        clients: impl IntoIterator<Item = NodeId>,
    ) -> Result<(), CoreError> {
        self.world.set_interest(chunk, clients)
    }

    /// Chunks currently live (not retired), oldest first.
    pub fn live_chunks(&self) -> &[ChunkId] {
        self.world.live_chunks()
    }

    /// Placement records of every arrival, in arrival order.
    pub fn history(&self) -> &[ChunkPlacement] {
        self.world.history()
    }

    /// Places the next arriving chunk and returns its placement.
    ///
    /// # Errors
    ///
    /// Propagates planning and storage errors.
    pub fn insert_chunk(&mut self) -> Result<ChunkPlacement, CoreError> {
        self.world.insert_chunk()
    }

    /// Retires a chunk, evicting every cached copy; returns the number
    /// of copies freed.
    pub fn retire_chunk(&mut self, chunk: ChunkId) -> usize {
        self.world.retire_chunk(chunk)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::workload::paper_grid;

    fn cache() -> OnlineCache {
        OnlineCache::new(paper_grid(4).unwrap(), ApproxConfig::default())
    }

    #[test]
    fn arrivals_place_consecutive_chunk_ids() {
        let mut c = cache();
        let first = c.insert_chunk().unwrap().chunk;
        let second = c.insert_chunk().unwrap().chunk;
        assert_eq!(first, ChunkId::new(0));
        assert_eq!(second, ChunkId::new(1));
        assert_eq!(c.live_chunks().len(), 2);
        assert_eq!(c.history().len(), 2);
    }

    #[test]
    fn retire_frees_all_copies() {
        let mut c = cache();
        let chunk = c.insert_chunk().unwrap().chunk;
        let copies = c.network().holders(chunk).len();
        assert!(copies > 0);
        assert_eq!(c.retire_chunk(chunk), copies);
        assert!(c.network().holders(chunk).is_empty());
        assert!(c.live_chunks().is_empty());
    }

    #[test]
    fn retention_window_evicts_oldest() {
        let mut c = cache().with_retention(2);
        for _ in 0..4 {
            c.insert_chunk().unwrap();
        }
        assert_eq!(c.live_chunks(), &[ChunkId::new(2), ChunkId::new(3)]);
        // Retired chunks hold no copies.
        assert!(c.network().holders(ChunkId::new(0)).is_empty());
        // History still remembers every arrival.
        assert_eq!(c.history().len(), 4);
    }

    #[test]
    fn long_run_never_exhausts_storage() {
        // Without retention a 4x4/cap-5 grid would fill after ~10
        // chunks; the window keeps the system healthy indefinitely.
        let mut c = cache().with_retention(3);
        for _ in 0..20 {
            c.insert_chunk().unwrap();
        }
        assert_eq!(c.live_chunks().len(), 3);
    }

    #[test]
    fn retiring_unknown_chunk_is_a_noop() {
        let mut c = cache();
        assert_eq!(c.retire_chunk(ChunkId::new(99)), 0);
    }

    #[test]
    fn typed_mutators_replace_the_raw_network_handle() {
        let mut c = cache();
        c.drain_battery(NodeId::new(0), 0.4);
        assert!((c.network().battery(NodeId::new(0)) - 0.6).abs() < 1e-12);
        c.set_battery(NodeId::new(1), 0.5).unwrap();
        assert_eq!(c.network().battery(NodeId::new(1)), 0.5);
        let chunk = c.insert_chunk().unwrap().chunk;
        c.set_interest(chunk, [NodeId::new(0)]).unwrap();
        assert_eq!(
            c.world().placement(chunk).unwrap().assignment.len(),
            1,
            "interest refresh narrowed the assignment"
        );
        c.into_world().validate().unwrap();
    }
}
