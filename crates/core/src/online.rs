//! Online chunk arrival — the paper's future-work extension.
//!
//! §VI: "Over long time periods, some chunks may become out-dated,
//! necessitating cache replacement. We plan to ... develop online
//! distributed solutions." [`OnlineCache`] is that extension for the
//! centralized planner: chunks arrive one at a time, each placed with
//! the approximation algorithm against the *current* storage state, and
//! a retention window retires the oldest live chunk when exceeded
//! (freeing its copies network-wide).

use peercache_obs as obs;

use crate::approx::{dual_ascent, ApproxConfig};
use crate::instance::ConflInstance;
use crate::placement::ChunkPlacement;
use crate::planner::{commit_chunk, prune_unused_facilities};
use crate::{ChunkId, CoreError, Network};

/// An evolving cache that places chunks as they arrive.
#[derive(Debug, Clone)]
pub struct OnlineCache {
    net: Network,
    config: ApproxConfig,
    retention: Option<usize>,
    live: Vec<ChunkId>,
    history: Vec<ChunkPlacement>,
    next_chunk: usize,
}

impl OnlineCache {
    /// Creates an online cache over `net` using the approximation
    /// algorithm with `config` for each arrival.
    pub fn new(net: Network, config: ApproxConfig) -> Self {
        OnlineCache {
            net,
            config,
            retention: None,
            live: Vec::new(),
            history: Vec::new(),
            next_chunk: 0,
        }
    }

    /// Keep at most `chunks` live chunks; older ones are retired before
    /// a new arrival is placed.
    pub fn with_retention(mut self, chunks: usize) -> Self {
        self.retention = Some(chunks.max(1));
        self
    }

    /// The current network state.
    pub fn network(&self) -> &Network {
        &self.net
    }

    /// Mutable access to the network, for environmental changes between
    /// arrivals — draining batteries, adjusting capacities. Evicting
    /// chunks through this handle instead of [`OnlineCache::retire_chunk`]
    /// will desynchronize the live-chunk bookkeeping; prefer the typed
    /// methods for cache state.
    pub fn network_mut(&mut self) -> &mut Network {
        &mut self.net
    }

    /// Chunks currently live (not retired), oldest first.
    pub fn live_chunks(&self) -> &[ChunkId] {
        &self.live
    }

    /// Placement records of every arrival, in arrival order.
    pub fn history(&self) -> &[ChunkPlacement] {
        &self.history
    }

    /// Places the next arriving chunk and returns its placement.
    ///
    /// # Errors
    ///
    /// Propagates planning and storage errors.
    pub fn insert_chunk(&mut self) -> Result<&ChunkPlacement, CoreError> {
        if let Some(window) = self.retention {
            while self.live.len() >= window {
                let oldest = self.live[0];
                self.retire_chunk(oldest);
            }
        }
        let chunk = ChunkId::new(self.next_chunk);
        self.next_chunk += 1;
        let mut span = obs::span!("online.insert", chunk = chunk.index());
        let inst = ConflInstance::build_for_chunk(
            &self.net,
            chunk,
            self.config.weights,
            self.config.selection,
        )?;
        let (facilities, stats) = dual_ascent(&self.net, &inst, &self.config)?;
        let facilities = prune_unused_facilities(&self.net, &inst, &facilities);
        let placement = commit_chunk(&mut self.net, &inst, chunk, &facilities)?;
        if span.is_recording() {
            span.add_field("rounds", obs::Value::from(stats.rounds));
            span.add_field("copies", obs::Value::from(placement.caches.len()));
            span.add_field("live", obs::Value::from(self.live.len() + 1));
            span.add_field("cost_total", obs::Value::from(placement.costs.total()));
        }
        self.live.push(chunk);
        self.history.push(placement);
        Ok(self.history.last().expect("just pushed"))
    }

    /// Retires a chunk, evicting every cached copy; returns the number
    /// of copies freed.
    pub fn retire_chunk(&mut self, chunk: ChunkId) -> usize {
        self.live.retain(|&c| c != chunk);
        let holders = self.net.holders(chunk);
        for node in &holders {
            self.net.uncache(*node, chunk);
        }
        obs::event!(
            "online.retire",
            chunk = chunk.index(),
            copies_freed = holders.len(),
            live = self.live.len(),
        );
        holders.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::workload::paper_grid;

    fn cache() -> OnlineCache {
        OnlineCache::new(paper_grid(4).unwrap(), ApproxConfig::default())
    }

    #[test]
    fn arrivals_place_consecutive_chunk_ids() {
        let mut c = cache();
        let first = c.insert_chunk().unwrap().chunk;
        let second = c.insert_chunk().unwrap().chunk;
        assert_eq!(first, ChunkId::new(0));
        assert_eq!(second, ChunkId::new(1));
        assert_eq!(c.live_chunks().len(), 2);
        assert_eq!(c.history().len(), 2);
    }

    #[test]
    fn retire_frees_all_copies() {
        let mut c = cache();
        let chunk = c.insert_chunk().unwrap().chunk;
        let copies = c.network().holders(chunk).len();
        assert!(copies > 0);
        assert_eq!(c.retire_chunk(chunk), copies);
        assert!(c.network().holders(chunk).is_empty());
        assert!(c.live_chunks().is_empty());
    }

    #[test]
    fn retention_window_evicts_oldest() {
        let mut c = cache().with_retention(2);
        for _ in 0..4 {
            c.insert_chunk().unwrap();
        }
        assert_eq!(c.live_chunks(), &[ChunkId::new(2), ChunkId::new(3)]);
        // Retired chunks hold no copies.
        assert!(c.network().holders(ChunkId::new(0)).is_empty());
        // History still remembers every arrival.
        assert_eq!(c.history().len(), 4);
    }

    #[test]
    fn long_run_never_exhausts_storage() {
        // Without retention a 4x4/cap-5 grid would fill after ~10
        // chunks; the window keeps the system healthy indefinitely.
        let mut c = cache().with_retention(3);
        for _ in 0..20 {
            c.insert_chunk().unwrap();
        }
        assert_eq!(c.live_chunks().len(), 3);
    }

    #[test]
    fn retiring_unknown_chunk_is_a_noop() {
        let mut c = cache();
        assert_eq!(c.retire_chunk(ChunkId::new(99)), 0);
    }
}
