//! Runtime invariant oracles, compiled only with the `strict-invariants`
//! feature.
//!
//! These checks make the repo's correctness story executable: instead of
//! trusting that the fast dual ascent, the incremental contention snapshot,
//! and the placement repair machinery preserve their invariants, the
//! determinism and churn test suites run with this feature enabled and
//! every violation panics at the point of corruption.
//!
//! Four oracles:
//!
//! * [`check_dual_solution`] — re-runs the *reference* round-scanning dual
//!   ascent with dual-feasibility and complementary-slackness assertions
//!   armed, and requires the facility set produced by the fast path to
//!   match the reference opening sequence exactly.
//! * [`check_matrix_consistency`] — compares a carried
//!   [`ContentionMatrix`] bitwise against a from-scratch recompute for the
//!   network's current state.
//! * [`check_tree_connectivity`] — verifies every placement's
//!   dissemination (Steiner) tree actually connects its caches to the
//!   producer.
//! * [`check_component_tracking`] — compares the network's incremental
//!   connected-component labels against a from-scratch BFS over the
//!   active subgraph.
//!
//! The functions panic (rather than returning `Result`) by design: a
//! violated invariant means internal state is already corrupted, and the
//! suites run them as debug assertions.

use peercache_graph::paths::{Parallelism, PathSelection};
use peercache_graph::NodeId;

use crate::approx::ApproxConfig;
use crate::costs::ContentionMatrix;
use crate::placement::ChunkPlacement;
use crate::Network;

/// Slack for dual-payment assertions; matches the `1e-12` payment slack
/// the ascent itself uses, scaled up for accumulated sums.
const DUAL_EPS: f64 = 1e-9;

/// Re-runs the reference dual ascent for `inst` under `cfg`, asserting the
/// dual invariants every round, and checks that `facilities` (the opened
/// set reported by the production path, sorted) matches the reference
/// outcome.
///
/// Invariants asserted per round:
///
/// * **Dual feasibility**: `Σ_j β_ij ≤ f_i + ε` for every candidate `i`
///   (resource bids never overpay a facility's fairness cost);
/// * contributions only flow from *tight* clients: `β_ij > 0` or
///   `γ_ij > 0` implies `α_j ≥ c_ij`;
/// * **complementary slackness at opening**: a facility opens only when
///   its fairness cost is fully paid (`Σ_j β_ij ≥ f_i − ε`), its
///   attachment is covered (`Σ_j γ_ij ≥ M·attach(i) − ε`), and it has at
///   least `span_threshold` supporters.
///
/// # Panics
///
/// Panics on any violated invariant, on non-convergence, and when
/// `facilities` differs from the reference opened set.
pub fn check_dual_solution<V: crate::instance::ConflCosts>(
    inst: &V,
    cfg: &ApproxConfig,
    facilities: &[NodeId],
) {
    let n = inst.node_count();
    let producer = inst.producer();
    let clients: Vec<NodeId> = inst.clients().to_vec();
    let candidates = inst.candidates();

    let mut alpha = vec![0.0f64; n];
    let mut frozen = vec![false; n];
    let mut open = vec![false; n];
    let mut beta = vec![0.0f64; n * n];
    let mut beta_sum = vec![0.0f64; n];
    let mut gamma = vec![0.0f64; n * n];
    let mut gamma_sum = vec![0.0f64; n];
    let mut attach: Vec<f64> = (0..n)
        .map(|i| inst.connection_cost(producer, NodeId::new(i)))
        .collect();

    let max_producer_cost = clients
        .iter()
        .map(|&j| inst.connection_cost(producer, j))
        .fold(0.0f64, f64::max);
    let round_cap = (max_producer_cost / cfg.u_alpha).ceil() as usize + 2;

    let mut rounds = 0usize;
    while clients.iter().any(|&j| !frozen[j.index()]) {
        rounds += 1;
        assert!(
            rounds <= round_cap,
            "strict-invariants: reference dual ascent failed to converge \
             within {round_cap} rounds"
        );

        for &j in &clients {
            if !frozen[j.index()] {
                alpha[j.index()] += cfg.u_alpha;
            }
        }
        for &j in &clients {
            if frozen[j.index()] {
                continue;
            }
            let tight_open = alpha[j.index()] >= inst.connection_cost(producer, j)
                || candidates
                    .iter()
                    .any(|&i| open[i.index()] && alpha[j.index()] >= inst.connection_cost(i, j));
            if tight_open {
                frozen[j.index()] = true;
            }
        }
        for &j in &clients {
            if frozen[j.index()] {
                continue;
            }
            for &i in &candidates {
                if i == j || open[i.index()] {
                    continue;
                }
                if alpha[j.index()] >= inst.connection_cost(i, j) {
                    let f_i = inst.facility_cost(i);
                    let room = f_i - beta_sum[i.index()];
                    if room > 0.0 {
                        let add = cfg.u_beta.min(room);
                        beta[i.index() * n + j.index()] += add;
                        beta_sum[i.index()] += add;
                    }
                    gamma[i.index() * n + j.index()] += cfg.u_gamma;
                    gamma_sum[i.index()] += cfg.u_gamma;
                }
            }
        }

        // Dual feasibility + tightness of contributors, every round.
        for &i in &candidates {
            let f_i = inst.facility_cost(i);
            assert!(
                beta_sum[i.index()] <= f_i + DUAL_EPS,
                "strict-invariants: dual infeasible in round {rounds}: \
                 Σβ for facility {i} is {} > f_i = {f_i}",
                beta_sum[i.index()]
            );
            for &j in &clients {
                let b = beta[i.index() * n + j.index()];
                let g = gamma[i.index() * n + j.index()];
                if b > 0.0 || g > 0.0 {
                    assert!(
                        alpha[j.index()] + DUAL_EPS >= inst.connection_cost(i, j),
                        "strict-invariants: round {rounds}: client {j} contributes \
                         (β={b}, γ={g}) to facility {i} without a tight edge \
                         (α={} < c_ij={})",
                        alpha[j.index()],
                        inst.connection_cost(i, j)
                    );
                }
            }
        }

        let mut best_open: Option<(usize, NodeId)> = None;
        for &i in &candidates {
            if open[i.index()] {
                continue;
            }
            let f_i = inst.facility_cost(i);
            if beta_sum[i.index()] + 1e-12 < f_i {
                continue;
            }
            let attach_due = inst.weights().dissemination * attach[i.index()];
            if gamma_sum[i.index()] + 1e-12 < attach_due {
                continue;
            }
            let supporters = clients
                .iter()
                .filter(|&&j| {
                    j != i && !frozen[j.index()] && gamma[i.index() * n + j.index()] > 0.0
                })
                .count();
            if supporters >= cfg.span_threshold
                && best_open.is_none_or(|(bs, bi)| supporters > bs || (supporters == bs && i < bi))
            {
                best_open = Some((supporters, i));
            }
        }
        if let Some((supporters, i)) = best_open {
            // Complementary slackness: the opened facility is fully paid.
            let f_i = inst.facility_cost(i);
            assert!(
                beta_sum[i.index()] >= f_i - DUAL_EPS,
                "strict-invariants: facility {i} opened in round {rounds} with \
                 unpaid fairness cost (Σβ={} < f_i={f_i})",
                beta_sum[i.index()]
            );
            let attach_due = inst.weights().dissemination * attach[i.index()];
            assert!(
                gamma_sum[i.index()] >= attach_due - DUAL_EPS,
                "strict-invariants: facility {i} opened in round {rounds} with \
                 unpaid attachment (Σγ={} < M·attach={attach_due})",
                gamma_sum[i.index()]
            );
            assert!(
                supporters >= cfg.span_threshold,
                "strict-invariants: facility {i} opened in round {rounds} with \
                 {supporters} supporters < span threshold {}",
                cfg.span_threshold
            );
            open[i.index()] = true;
            for &j in &clients {
                if frozen[j.index()] || j == i {
                    continue;
                }
                if beta[i.index() * n + j.index()] > 0.0 || gamma[i.index() * n + j.index()] > 0.0 {
                    frozen[j.index()] = true;
                }
            }
            for (k, slot) in attach.iter_mut().enumerate() {
                let via = inst.connection_cost(i, NodeId::new(k));
                if via < *slot {
                    *slot = via;
                }
            }
        }
    }

    let reference: Vec<NodeId> = candidates
        .iter()
        .copied()
        .filter(|&i| open[i.index()])
        .collect();
    assert_eq!(
        facilities,
        &reference[..],
        "strict-invariants: production dual ascent opened {facilities:?} but the \
         reference run opened {reference:?}"
    );
}

/// Compares a carried contention snapshot bitwise against a from-scratch
/// recompute for `net`'s current caching state.
///
/// The incremental `update`/`update_topology` paths promise bit-identical
/// results to `compute`; any drift (a stale per-node term, a missed path
/// invalidation) breaks the byte-identical replan guarantee, so the
/// comparison is on raw bit patterns, not epsilons.
///
/// # Panics
///
/// Panics on the first divergent term, pairwise cost, or hop count.
pub fn check_matrix_consistency(
    carried: &ContentionMatrix,
    net: &Network,
    selection: PathSelection,
    parallelism: Parallelism,
) {
    let fresh = ContentionMatrix::compute_with(net, selection, parallelism)
        .unwrap_or_else(|e| panic!("strict-invariants: fresh contention recompute failed: {e}"));
    let n = net.node_count();
    for k in 0..n {
        let node = NodeId::new(k);
        let a = carried.node_term(node);
        let b = fresh.node_term(node);
        assert!(
            a.to_bits() == b.to_bits(),
            "strict-invariants: carried node term diverged at node {k}: \
             carried {a} vs fresh {b}"
        );
    }
    for i in 0..n {
        for j in 0..n {
            let (ni, nj) = (NodeId::new(i), NodeId::new(j));
            let a = carried.cost(ni, nj);
            let b = fresh.cost(ni, nj);
            assert!(
                a.to_bits() == b.to_bits(),
                "strict-invariants: carried path cost diverged at ({i}, {j}): \
                 carried {a} vs fresh {b}"
            );
            assert_eq!(
                carried.hops(ni, nj),
                fresh.hops(ni, nj),
                "strict-invariants: carried hop count diverged at ({i}, {j})"
            );
        }
    }
}

/// Verifies that `placement`'s dissemination tree connects every caching
/// node to the producer.
///
/// Caches outside the producer's connected component are skipped: a
/// partition-tolerant world keeps detached replicas serving their own
/// island, and those are by definition not on the producer-side tree.
/// On a connected network (the default policy) nothing is skipped.
///
/// # Panics
///
/// Panics if a tree edge references an unknown node or a producer-side
/// cache is not reachable from the producer through the tree edges.
pub fn check_tree_connectivity(net: &Network, placement: &ChunkPlacement) {
    if placement.caches.is_empty() {
        return; // every client fetches from the producer; no tree needed
    }
    let n = net.node_count();
    // Union-find over node ids, restricted to the tree edges.
    let mut parent: Vec<usize> = (0..n).collect();
    fn find(parent: &mut [usize], mut x: usize) -> usize {
        while parent[x] != x {
            parent[x] = parent[parent[x]];
            x = parent[x];
        }
        x
    }
    for &(a, b) in &placement.tree_edges {
        assert!(
            a.index() < n && b.index() < n,
            "strict-invariants: chunk {:?} tree edge ({a}, {b}) references a \
             node outside the network",
            placement.chunk
        );
        let (ra, rb) = (find(&mut parent, a.index()), find(&mut parent, b.index()));
        parent[ra] = rb;
    }
    let root = find(&mut parent, net.producer().index());
    for &c in &placement.caches {
        if !net.in_producer_component(c) {
            continue; // detached replica: serves its island off-tree
        }
        assert!(
            find(&mut parent, c.index()) == root,
            "strict-invariants: chunk {:?}: cache {c} is not connected to the \
             producer {} by the dissemination tree {:?}",
            placement.chunk,
            net.producer(),
            placement.tree_edges
        );
    }
}

/// Compares the network's incremental component labels against a
/// from-scratch BFS over the active subgraph.
///
/// The partition-tolerant world relies on `Network`'s labels for every
/// served/deferred audience decision; any drift (a missed split, a stale
/// merge) silently corrupts planning, so the check requires exact
/// structural equality, including component order.
///
/// # Panics
///
/// Panics if the incremental labels disagree with the BFS.
pub fn check_component_tracking(net: &Network) {
    let expected =
        peercache_graph::components::components_of_subset(net.graph(), &net.active_nodes());
    let got = net.active_components();
    assert!(
        got == expected,
        "strict-invariants: incremental component labels diverged from the \
         from-scratch BFS: incremental {got:?} vs BFS {expected:?}"
    );
}
