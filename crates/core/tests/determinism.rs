//! Regression guard for the planning hot path: the optimized pipeline
//! (parallel APSP, incremental contention recompute, event-driven dual
//! ascent, shared Steiner solver) must produce **byte-identical** plans
//! to the original unoptimized pipeline, which stays alive behind the
//! test-only [`ApproxConfig::reference_mode`] flag.

use peercache_core::approx::{ApproxConfig, ApproxPlanner};
use peercache_core::planner::CachePlanner;
use peercache_core::Network;
use peercache_graph::paths::Parallelism;
use peercache_graph::{builders, NodeId};
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

/// A seeded 200-node connected random topology — large enough that the
/// incremental APSP, the jump logic and the thread fan-out all engage.
fn random_200(seed: u64) -> Network {
    let mut rng = ChaCha8Rng::seed_from_u64(seed);
    let g = builders::erdos_renyi_connected(200, 0.025, &mut rng);
    Network::new(g, NodeId::new(0), 4).unwrap()
}

fn assert_placements_identical(
    a: &peercache_core::placement::Placement,
    b: &peercache_core::placement::Placement,
    label: &str,
) {
    assert_eq!(a.chunks().len(), b.chunks().len(), "{label}: chunk count");
    for (x, y) in a.chunks().iter().zip(b.chunks()) {
        let q = x.chunk;
        assert_eq!(x.chunk, y.chunk, "{label}: chunk id");
        assert_eq!(x.caches, y.caches, "{label}: caches of chunk {q}");
        assert_eq!(
            x.assignment, y.assignment,
            "{label}: assignment of chunk {q}"
        );
        assert_eq!(x.tree_edges, y.tree_edges, "{label}: tree of chunk {q}");
        for (name, xa, ya) in [
            ("fairness", x.costs.fairness, y.costs.fairness),
            ("access", x.costs.access, y.costs.access),
            (
                "dissemination",
                x.costs.dissemination,
                y.costs.dissemination,
            ),
            ("total", x.costs.total(), y.costs.total()),
        ] {
            assert_eq!(
                xa.to_bits(),
                ya.to_bits(),
                "{label}: {name} cost of chunk {q}: {xa} vs {ya}"
            );
        }
    }
}

#[test]
fn optimized_pipeline_matches_reference_on_random_200() {
    for seed in [3u64, 17] {
        // Optimized path with an explicit thread fan-out, so the test
        // exercises the parallel APSP even on a single-core runner.
        let fast_cfg = ApproxConfig {
            parallelism: Parallelism::Threads(4),
            ..Default::default()
        };
        let reference_cfg = ApproxConfig {
            reference_mode: true,
            parallelism: Parallelism::Sequential,
            ..Default::default()
        };

        let fast = {
            let mut net = random_200(seed);
            ApproxPlanner::new(fast_cfg).plan(&mut net, 3).unwrap()
        };
        let reference = {
            let mut net = random_200(seed);
            ApproxPlanner::new(reference_cfg).plan(&mut net, 3).unwrap()
        };
        assert_placements_identical(&fast, &reference, &format!("seed {seed}"));
        assert!(
            fast.chunks().iter().any(|c| !c.caches.is_empty()),
            "seed {seed}: degenerate run — nothing was cached"
        );
    }
}

#[test]
fn optimized_pipeline_matches_reference_on_grid() {
    let grid = || Network::new(builders::grid(10, 10), NodeId::new(11), 4).unwrap();
    let fast = {
        let mut net = grid();
        ApproxPlanner::default().plan(&mut net, 5).unwrap()
    };
    let reference = {
        let mut net = grid();
        let cfg = ApproxConfig {
            reference_mode: true,
            ..Default::default()
        };
        ApproxPlanner::new(cfg).plan(&mut net, 5).unwrap()
    };
    assert_placements_identical(&fast, &reference, "grid10");
}

#[test]
fn final_network_state_matches_reference() {
    // Placements being equal is necessary; the committed caching state
    // (which feeds every later chunk) must agree too.
    let mut fast_net = random_200(5);
    let mut ref_net = random_200(5);
    ApproxPlanner::default().plan(&mut fast_net, 3).unwrap();
    let cfg = ApproxConfig {
        reference_mode: true,
        ..Default::default()
    };
    ApproxPlanner::new(cfg).plan(&mut ref_net, 3).unwrap();
    for node in fast_net.graph().nodes() {
        assert_eq!(
            fast_net.used(node),
            ref_net.used(node),
            "storage used diverged at {node}"
        );
    }
}
