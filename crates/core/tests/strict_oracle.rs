//! Demonstrates that the `strict-invariants` runtime oracles actually fire
//! on corrupted state — and stay silent on healthy state.
//!
//! These tests only exist under the feature; the plain test run skips the
//! whole file. `scripts/check.sh` runs the workspace suite once more with
//! `--features strict-invariants`, which both executes this file and arms
//! the oracles inside the determinism and churn suites.

#![cfg(feature = "strict-invariants")]

use std::panic::{catch_unwind, AssertUnwindSafe};

use peercache_core::approx::{dual_ascent, ApproxConfig};
use peercache_core::costs::ContentionMatrix;
use peercache_core::instance::ConflInstance;
use peercache_core::strict;
use peercache_core::workload::paper_grid;
use peercache_core::world::WorldEvent;
use peercache_core::{CacheWorld, ChunkId};
use peercache_graph::NodeId;

fn panic_message(result: std::thread::Result<()>) -> String {
    match result {
        Ok(()) => String::new(),
        Err(payload) => payload
            .downcast_ref::<String>()
            .cloned()
            .or_else(|| payload.downcast_ref::<&str>().map(|s| (*s).to_string()))
            .unwrap_or_default(),
    }
}

#[test]
fn dual_oracle_accepts_the_fast_path_result() {
    let net = paper_grid(5).unwrap();
    let cfg = ApproxConfig::default();
    let inst =
        ConflInstance::build_for_chunk(&net, ChunkId::new(0), cfg.weights, cfg.selection).unwrap();
    // dual_ascent itself runs the oracle under this feature; calling the
    // checker directly too makes the contract explicit.
    let (facilities, _) = dual_ascent(&net, &inst, &cfg).unwrap();
    strict::check_dual_solution(&inst, &cfg, &facilities);
}

#[test]
fn dual_oracle_fires_on_a_corrupted_facility_set() {
    let net = paper_grid(5).unwrap();
    let cfg = ApproxConfig::default();
    let inst =
        ConflInstance::build_for_chunk(&net, ChunkId::new(0), cfg.weights, cfg.selection).unwrap();
    let (facilities, _) = dual_ascent(&net, &inst, &cfg).unwrap();
    // Corrupt the solution: claim an extra facility the duals never paid
    // for was opened.
    let extra = inst
        .candidates()
        .into_iter()
        .find(|i| !facilities.contains(i))
        .expect("grid has more candidates than opened facilities");
    let mut corrupted = facilities.clone();
    corrupted.push(extra);
    corrupted.sort_unstable();
    let result = catch_unwind(AssertUnwindSafe(|| {
        strict::check_dual_solution(&inst, &cfg, &corrupted);
    }));
    let msg = panic_message(result);
    assert!(
        msg.contains("strict-invariants"),
        "expected the dual oracle to fire, got: {msg:?}"
    );
}

#[test]
fn matrix_oracle_accepts_a_consistent_snapshot() {
    let net = paper_grid(4).unwrap();
    let cfg = ApproxConfig::default();
    let matrix = ContentionMatrix::compute_with(&net, cfg.selection, cfg.parallelism).unwrap();
    strict::check_matrix_consistency(&matrix, &net, cfg.selection, cfg.parallelism);
}

#[test]
fn matrix_oracle_fires_on_a_stale_snapshot() {
    let mut net = paper_grid(4).unwrap();
    let cfg = ApproxConfig::default();
    let matrix = ContentionMatrix::compute_with(&net, cfg.selection, cfg.parallelism).unwrap();
    // Corrupt the carried state: mutate the caching load behind the
    // snapshot's back (a cached chunk raises the holder's contention
    // term), as a buggy incremental update would.
    net.cache(NodeId::new(1), ChunkId::new(0)).unwrap();
    let result = catch_unwind(AssertUnwindSafe(|| {
        strict::check_matrix_consistency(&matrix, &net, cfg.selection, cfg.parallelism);
    }));
    let msg = panic_message(result);
    assert!(
        msg.contains("diverged"),
        "expected the matrix oracle to fire on the stale term, got: {msg:?}"
    );
}

#[test]
fn tree_oracle_fires_on_a_disconnected_tree() {
    let mut world = CacheWorld::new(paper_grid(4).unwrap(), ApproxConfig::default());
    let placed = world.insert_chunk().unwrap();
    if placed.caches.is_empty() {
        panic!("test needs a placement with caching nodes");
    }
    let mut corrupted = placed.clone();
    corrupted.tree_edges.clear();
    let result = catch_unwind(AssertUnwindSafe(|| {
        strict::check_tree_connectivity(world.network(), &corrupted);
    }));
    let msg = panic_message(result);
    assert!(
        msg.contains("not connected"),
        "expected the connectivity oracle to fire, got: {msg:?}"
    );
}

#[test]
fn world_events_pass_the_oracles_end_to_end() {
    // A miniature churn run with every oracle armed: arrivals, a
    // departure, a link drop, and a retirement all must keep the carried
    // matrix bitwise-consistent and the trees connected.
    let mut world = CacheWorld::new(paper_grid(4).unwrap(), ApproxConfig::default());
    world.apply(WorldEvent::ChunkArrived).unwrap();
    world.apply(WorldEvent::ChunkArrived).unwrap();
    let holder = world.placement(world.live_chunks()[0]).unwrap().caches[0];
    world.apply(WorldEvent::NodeDeparted(holder)).unwrap();
    world.apply(WorldEvent::ChunkArrived).unwrap();
    let first = world.live_chunks()[0];
    world.apply(WorldEvent::ChunkRetired(first)).unwrap();
    world.validate().unwrap();
}
