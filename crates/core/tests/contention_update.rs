//! Property tests for the incremental contention recompute: after any
//! sequence of caching operations (S(k) bumps), refreshing a carried
//! [`ContentionMatrix`] with [`ContentionMatrix::update`] must be
//! bitwise identical to computing a fresh matrix from the new state.

use proptest::prelude::*;

use peercache_core::costs::ContentionMatrix;
use peercache_core::{ChunkId, Network};
use peercache_graph::paths::{Parallelism, PathSelection};
use peercache_graph::{builders, NodeId};

fn connected_net() -> impl Strategy<Value = Network> {
    (
        6usize..32,
        0u64..500,
        prop_oneof![Just(0.08f64), Just(0.2), Just(0.45)],
    )
        .prop_map(|(n, seed, p)| {
            use rand::SeedableRng;
            let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(seed);
            let g = builders::erdos_renyi_connected(n, p, &mut rng);
            Network::new(g, NodeId::new(0), 8).unwrap()
        })
}

fn assert_matrices_identical(a: &ContentionMatrix, b: &ContentionMatrix, n: usize) {
    for u in (0..n).map(NodeId::new) {
        for v in (0..n).map(NodeId::new) {
            assert_eq!(
                a.cost(u, v).to_bits(),
                b.cost(u, v).to_bits(),
                "cost({u},{v}): {} vs {}",
                a.cost(u, v),
                b.cost(u, v)
            );
            assert_eq!(a.hops(u, v), b.hops(u, v), "hops({u},{v})");
            assert_eq!(a.path(u, v), b.path(u, v), "path({u},{v})");
        }
    }
    for k in (0..n).map(NodeId::new) {
        assert_eq!(a.node_term(k).to_bits(), b.node_term(k).to_bits());
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn update_after_cache_ops_matches_fresh_compute(
        net in connected_net(),
        ops in prop::collection::vec(
            prop::collection::vec((0usize..64, 0usize..16), 1..5),
            1..4,
        ),
    ) {
        let n = net.node_count();
        for selection in [PathSelection::FewestHops, PathSelection::MinCost] {
            let mut incremental =
                ContentionMatrix::compute_with(&net, selection, Parallelism::Sequential).unwrap();
            let mut net = net.clone();
            for batch in &ops {
                // Apply a batch of cache commits, recording which nodes
                // changed state (plus the producer, whose term follows
                // the distinct-chunk population).
                let mut dirty = vec![net.producer()];
                for &(node, chunk) in batch {
                    let node = NodeId::new(node % n);
                    let chunk = ChunkId::new(chunk);
                    if !net.is_cached(node, chunk) && net.cache(node, chunk).is_ok() {
                        dirty.push(node);
                    }
                }
                let redone = incremental
                    .update(&net, &dirty, Parallelism::Sequential)
                    .unwrap();
                prop_assert!(redone <= n, "recomputed more sources than exist");
                let fresh = ContentionMatrix::compute(&net, selection).unwrap();
                assert_matrices_identical(&incremental, &fresh, n);
            }
        }
    }

    #[test]
    fn update_with_no_changes_recomputes_nothing(net in connected_net()) {
        for selection in [PathSelection::FewestHops, PathSelection::MinCost] {
            let mut m =
                ContentionMatrix::compute_with(&net, selection, Parallelism::Sequential).unwrap();
            let redone = m.update(&net, &[], Parallelism::Sequential).unwrap();
            prop_assert_eq!(redone, 0, "a no-op change set must not invalidate any source");
        }
    }
}
