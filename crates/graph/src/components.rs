//! Connectivity queries.
//!
//! The paper assumes a connected network for planning, and its multi-item
//! baseline extension repeatedly plans on "the largest connected
//! component" of a residual subgraph — both supported here.

use crate::{Graph, NodeId};

/// Returns the connected components of `g`, each as a sorted node list.
///
/// Components are ordered by their smallest node id, so output is
/// deterministic.
///
/// # Example
///
/// ```
/// use peercache_graph::{components, Graph};
///
/// let g = Graph::from_edges(4, &[(0, 1), (2, 3)])?;
/// let comps = components::connected_components(&g);
/// assert_eq!(comps.len(), 2);
/// assert_eq!(comps[0].len(), 2);
/// # Ok::<(), peercache_graph::GraphError>(())
/// ```
pub fn connected_components(g: &Graph) -> Vec<Vec<NodeId>> {
    let n = g.node_count();
    let mut visited = vec![false; n];
    let mut comps = Vec::new();
    let mut stack = Vec::new();
    for start in 0..n {
        if visited[start] {
            continue;
        }
        let mut comp = Vec::new();
        visited[start] = true;
        stack.push(NodeId::new(start));
        while let Some(u) = stack.pop() {
            comp.push(u);
            for v in g.neighbors(u) {
                if !visited[v.index()] {
                    visited[v.index()] = true;
                    stack.push(v);
                }
            }
        }
        comp.sort_unstable();
        comps.push(comp);
    }
    comps
}

/// Returns `true` if `g` is connected.
///
/// The empty graph is considered connected (there is no pair of nodes
/// that fails to be linked).
pub fn is_connected(g: &Graph) -> bool {
    connected_components(g).len() <= 1
}

/// Returns `true` if the nodes in `keep` are mutually connected inside
/// the subgraph induced by `keep`.
///
/// Used by the churn layer, where departed peers stay in the graph as
/// isolated ghost nodes: connectivity then only matters over the *active*
/// subset. Paths may not leave the subset. An empty or singleton subset
/// is connected; out-of-bounds ids make the subset disconnected rather
/// than panicking (callers validate separately).
///
/// # Example
///
/// ```
/// use peercache_graph::{components, builders, NodeId};
///
/// let g = builders::path(4); // 0 - 1 - 2 - 3
/// let active = [NodeId::new(0), NodeId::new(1), NodeId::new(3)];
/// // 3 can only reach 0 and 1 through the excluded node 2.
/// assert!(!components::is_connected_subset(&g, &active));
/// assert!(components::is_connected_subset(&g, &active[..2]));
/// ```
pub fn is_connected_subset(g: &Graph, keep: &[NodeId]) -> bool {
    if keep.len() <= 1 {
        return keep.first().is_none_or(|n| n.index() < g.node_count());
    }
    if keep.iter().any(|n| n.index() >= g.node_count()) {
        return false;
    }
    let mut in_set = vec![false; g.node_count()];
    for &n in keep {
        in_set[n.index()] = true;
    }
    let mut visited = vec![false; g.node_count()];
    let mut stack = vec![keep[0]];
    visited[keep[0].index()] = true;
    let mut reached = 1usize;
    while let Some(u) = stack.pop() {
        for v in g.neighbors(u) {
            if in_set[v.index()] && !visited[v.index()] {
                visited[v.index()] = true;
                reached += 1;
                stack.push(v);
            }
        }
    }
    // `keep` may repeat ids; count distinct members instead.
    let distinct = in_set.iter().filter(|&&b| b).count();
    reached == distinct
}

/// Returns the connected components of the subgraph induced by `keep`,
/// each as a sorted node list.
///
/// The from-scratch counterpart of `Network`'s incremental component
/// tracking (and the oracle the `strict-invariants` feature checks it
/// against). Components are ordered by their smallest node id, so output
/// is deterministic. Duplicate ids in `keep` are tolerated; out-of-bounds
/// ids are ignored.
pub fn components_of_subset(g: &Graph, keep: &[NodeId]) -> Vec<Vec<NodeId>> {
    let n = g.node_count();
    let mut in_set = vec![false; n];
    for &node in keep {
        if node.index() < n {
            in_set[node.index()] = true;
        }
    }
    let mut visited = vec![false; n];
    let mut comps = Vec::new();
    let mut stack = Vec::new();
    for start in 0..n {
        if !in_set[start] || visited[start] {
            continue;
        }
        let mut comp = Vec::new();
        visited[start] = true;
        stack.push(NodeId::new(start));
        while let Some(u) = stack.pop() {
            comp.push(u);
            for v in g.neighbors(u) {
                if in_set[v.index()] && !visited[v.index()] {
                    visited[v.index()] = true;
                    stack.push(v);
                }
            }
        }
        comp.sort_unstable();
        comps.push(comp);
    }
    comps
}

/// Returns the nodes of the largest connected component (ties broken by
/// smallest node id).
///
/// Returns an empty vector for the empty graph.
pub fn largest_component(g: &Graph) -> Vec<NodeId> {
    connected_components(g)
        .into_iter()
        .max_by(|a, b| a.len().cmp(&b.len()).then(b[0].cmp(&a[0])))
        .unwrap_or_default()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builders;

    #[test]
    fn empty_graph_is_connected() {
        assert!(is_connected(&Graph::new(0)));
    }

    #[test]
    fn single_node_is_connected() {
        assert!(is_connected(&Graph::new(1)));
    }

    #[test]
    fn isolated_nodes_are_separate_components() {
        let g = Graph::new(3);
        assert_eq!(connected_components(&g).len(), 3);
        assert!(!is_connected(&g));
    }

    #[test]
    fn grid_is_connected() {
        assert!(is_connected(&builders::grid(5, 5)));
    }

    #[test]
    fn largest_component_picks_the_bigger_side() {
        // 0-1-2 and 3-4
        let g = Graph::from_edges(5, &[(0, 1), (1, 2), (3, 4)]).unwrap();
        let largest = largest_component(&g);
        let ids: Vec<usize> = largest.iter().map(|n| n.index()).collect();
        assert_eq!(ids, vec![0, 1, 2]);
    }

    #[test]
    fn largest_component_tie_breaks_on_smallest_id() {
        let g = Graph::from_edges(4, &[(0, 1), (2, 3)]).unwrap();
        let ids: Vec<usize> = largest_component(&g).iter().map(|n| n.index()).collect();
        assert_eq!(ids, vec![0, 1]);
    }

    #[test]
    fn largest_component_of_empty_graph_is_empty() {
        assert!(largest_component(&Graph::new(0)).is_empty());
    }

    #[test]
    fn connected_subset_ignores_excluded_cut_nodes() {
        let g = builders::grid(3, 3);
        // Exclude the center; the ring of outer nodes stays connected.
        let ring: Vec<NodeId> = (0..9).filter(|&i| i != 4).map(NodeId::new).collect();
        assert!(is_connected_subset(&g, &ring));
        // Exclude the middle column; the two side columns separate.
        let sides: Vec<NodeId> = [0, 3, 6, 2, 5, 8].iter().map(|&i| NodeId::new(i)).collect();
        assert!(!is_connected_subset(&g, &sides));
    }

    #[test]
    fn subset_components_split_along_exclusions() {
        let g = builders::grid(3, 3);
        // Exclude the middle column; the side columns form two components.
        let sides: Vec<NodeId> = [0, 3, 6, 2, 5, 8].iter().map(|&i| NodeId::new(i)).collect();
        let comps = components_of_subset(&g, &sides);
        assert_eq!(comps.len(), 2);
        let ids: Vec<Vec<usize>> = comps
            .iter()
            .map(|c| c.iter().map(|n| n.index()).collect())
            .collect();
        assert_eq!(ids, vec![vec![0, 3, 6], vec![2, 5, 8]]);
    }

    #[test]
    fn subset_components_tolerate_duplicates_and_out_of_bounds() {
        let g = builders::path(3);
        let keep = [
            NodeId::new(0),
            NodeId::new(0),
            NodeId::new(2),
            NodeId::new(9),
        ];
        let comps = components_of_subset(&g, &keep);
        assert_eq!(comps.len(), 2);
        assert_eq!(comps[0], vec![NodeId::new(0)]);
        assert_eq!(comps[1], vec![NodeId::new(2)]);
        assert!(components_of_subset(&g, &[]).is_empty());
    }

    #[test]
    fn connected_subset_edge_cases() {
        let g = builders::path(3);
        assert!(is_connected_subset(&g, &[]));
        assert!(is_connected_subset(&g, &[NodeId::new(2)]));
        // Duplicates are tolerated.
        assert!(is_connected_subset(
            &g,
            &[NodeId::new(0), NodeId::new(1), NodeId::new(0)]
        ));
        // Out-of-bounds ids report disconnected instead of panicking.
        assert!(!is_connected_subset(&g, &[NodeId::new(0), NodeId::new(7)]));
    }
}
