//! Connectivity queries.
//!
//! The paper assumes a connected network for planning, and its multi-item
//! baseline extension repeatedly plans on "the largest connected
//! component" of a residual subgraph — both supported here.

use crate::{Graph, NodeId};

/// Returns the connected components of `g`, each as a sorted node list.
///
/// Components are ordered by their smallest node id, so output is
/// deterministic.
///
/// # Example
///
/// ```
/// use peercache_graph::{components, Graph};
///
/// let g = Graph::from_edges(4, &[(0, 1), (2, 3)])?;
/// let comps = components::connected_components(&g);
/// assert_eq!(comps.len(), 2);
/// assert_eq!(comps[0].len(), 2);
/// # Ok::<(), peercache_graph::GraphError>(())
/// ```
pub fn connected_components(g: &Graph) -> Vec<Vec<NodeId>> {
    let n = g.node_count();
    let mut visited = vec![false; n];
    let mut comps = Vec::new();
    let mut stack = Vec::new();
    for start in 0..n {
        if visited[start] {
            continue;
        }
        let mut comp = Vec::new();
        visited[start] = true;
        stack.push(NodeId::new(start));
        while let Some(u) = stack.pop() {
            comp.push(u);
            for v in g.neighbors(u) {
                if !visited[v.index()] {
                    visited[v.index()] = true;
                    stack.push(v);
                }
            }
        }
        comp.sort_unstable();
        comps.push(comp);
    }
    comps
}

/// Returns `true` if `g` is connected.
///
/// The empty graph is considered connected (there is no pair of nodes
/// that fails to be linked).
pub fn is_connected(g: &Graph) -> bool {
    connected_components(g).len() <= 1
}

/// Returns the nodes of the largest connected component (ties broken by
/// smallest node id).
///
/// Returns an empty vector for the empty graph.
pub fn largest_component(g: &Graph) -> Vec<NodeId> {
    connected_components(g)
        .into_iter()
        .max_by(|a, b| a.len().cmp(&b.len()).then(b[0].cmp(&a[0])))
        .unwrap_or_default()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builders;

    #[test]
    fn empty_graph_is_connected() {
        assert!(is_connected(&Graph::new(0)));
    }

    #[test]
    fn single_node_is_connected() {
        assert!(is_connected(&Graph::new(1)));
    }

    #[test]
    fn isolated_nodes_are_separate_components() {
        let g = Graph::new(3);
        assert_eq!(connected_components(&g).len(), 3);
        assert!(!is_connected(&g));
    }

    #[test]
    fn grid_is_connected() {
        assert!(is_connected(&builders::grid(5, 5)));
    }

    #[test]
    fn largest_component_picks_the_bigger_side() {
        // 0-1-2 and 3-4
        let g = Graph::from_edges(5, &[(0, 1), (1, 2), (3, 4)]).unwrap();
        let largest = largest_component(&g);
        let ids: Vec<usize> = largest.iter().map(|n| n.index()).collect();
        assert_eq!(ids, vec![0, 1, 2]);
    }

    #[test]
    fn largest_component_tie_breaks_on_smallest_id() {
        let g = Graph::from_edges(4, &[(0, 1), (2, 3)]).unwrap();
        let ids: Vec<usize> = largest_component(&g).iter().map(|n| n.index()).collect();
        assert_eq!(ids, vec![0, 1]);
    }

    #[test]
    fn largest_component_of_empty_graph_is_empty() {
        assert!(largest_component(&Graph::new(0)).is_empty());
    }
}
