//! Network-graph substrate for the `peercache` workspace.
//!
//! This crate models the multi-hop wireless network topology of the paper
//! *"Fair Caching Algorithms for Peer Data Sharing in Pervasive Edge
//! Computing Environments"* (ICDCS 2017) as a connected undirected graph
//! `G = (V, E)` and provides every graph algorithm the caching planners
//! need:
//!
//! * [`Graph`] — compact adjacency-list representation of an undirected
//!   simple graph over dense node indices ([`NodeId`]).
//! * [`builders`] — the topology families used in the paper's evaluation:
//!   grid networks, connected random geometric networks, plus paths,
//!   rings, stars and complete graphs for testing.
//! * [`paths`] — BFS hop distances, node-weighted Dijkstra,
//!   all-pairs shortest paths with path reconstruction, k-hop
//!   neighborhoods (for the distributed algorithm's scoped messages).
//! * [`components`] — connectivity queries and largest-component
//!   extraction (used by the paper's multi-item baseline extension).
//! * [`mst`] — minimum spanning trees (Kruskal and Prim).
//! * [`oracle`] — seeded landmark distance oracle with
//!   triangle-inequality bounds and a k-hop-ball exact fallback (the
//!   O(L·N) substitute for all-pairs state at scale).
//! * [`regions`] — deterministic bounded-size region partitioning with
//!   border sets and k-hop halos (the hierarchical planner's
//!   decomposition).
//! * [`steiner`] — a metric-closure 2-approximation of the Steiner tree
//!   (the dissemination-tree phase of the approximation algorithm).
//! * [`export`] — DOT / CSV serialization for debugging and plotting.
//!
//! # Example
//!
//! ```
//! use peercache_graph::{builders, paths, NodeId};
//!
//! // The paper's default evaluation topology: a 6x6 grid.
//! let g = builders::grid(6, 6);
//! assert_eq!(g.node_count(), 36);
//!
//! // Hop distances from the producer (node 9 in the paper).
//! let hops = paths::bfs_hops(&g, NodeId::new(9));
//! assert_eq!(hops[9], Some(0));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod error;
mod graph;

pub mod analysis;
pub mod builders;
pub mod components;
pub mod export;
pub mod mst;
pub mod oracle;
pub mod paths;
pub mod regions;
pub mod steiner;

pub use error::GraphError;
pub use graph::{Csr, EdgeIter, Graph, NeighborIter, NodeId};
