//! Shortest-path machinery.
//!
//! The paper's Path Contention Cost (Eq. 2) sums **node** costs
//! `w_k (1 + S(k))` along the shortest path between two nodes, so unlike
//! textbook shortest paths the metric here is node-weighted. This module
//! provides:
//!
//! * [`bfs_hops`] — plain hop distances (the Hop-Count baseline metric),
//! * [`k_hop_neighborhood`] — the scope of the distributed algorithm's
//!   local messages,
//! * [`AllPairsPaths`] — all-pairs node-weighted shortest paths with path
//!   reconstruction, under either hop-first or cost-first selection,
//!   computable sequentially or with a scoped-thread fan-out
//!   ([`Parallelism`]) and incrementally updatable when node costs
//!   change ([`AllPairsPaths::update`]).

use std::cmp::Reverse;
use std::collections::BinaryHeap;

use peercache_obs as obs;

use crate::{Csr, Graph, GraphError, NodeId};

/// How ties between candidate paths are resolved.
///
/// The paper routes packets along the *hop-shortest* path and then sums
/// contention costs along it ([`PathSelection::FewestHops`], the
/// default). Selecting the *cheapest* path under the node-cost metric
/// ([`PathSelection::MinCost`]) is a natural ablation: it can only lower
/// path costs, at the price of longer routes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum PathSelection {
    /// Prefer fewer hops; break ties by lower total node cost.
    #[default]
    FewestHops,
    /// Prefer lower total node cost; break ties by fewer hops.
    MinCost,
}

/// How many OS threads a per-source shortest-path fan-out may use.
///
/// Every per-source Dijkstra is independent and deterministic, so the
/// result is **byte-identical** for every variant — parallelism is purely
/// a wall-clock knob and can be flipped freely without perturbing
/// placements.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Parallelism {
    /// One thread per available core, capped at the number of sources.
    #[default]
    Auto,
    /// Single-threaded; never spawns (the right choice for small
    /// graphs, where spawn overhead dwarfs the work).
    Sequential,
    /// Exactly this many threads (clamped to at least 1 and at most the
    /// number of sources).
    Threads(usize),
}

impl Parallelism {
    /// Resolves the thread count for `work` independent items.
    pub fn threads(self, work: usize) -> usize {
        let raw = match self {
            Parallelism::Sequential => 1,
            Parallelism::Auto => std::thread::available_parallelism().map_or(1, usize::from),
            Parallelism::Threads(t) => t.max(1),
        };
        raw.min(work).max(1)
    }
}

/// Hop distances from `src` to every node (`None` when unreachable).
///
/// # Panics
///
/// Panics if `src` is out of bounds.
///
/// # Example
///
/// ```
/// use peercache_graph::{builders, paths, NodeId};
///
/// let g = builders::path(4);
/// let hops = paths::bfs_hops(&g, NodeId::new(0));
/// assert_eq!(hops[3], Some(3));
/// ```
pub fn bfs_hops(g: &Graph, src: NodeId) -> Vec<Option<u32>> {
    let mut dist = vec![None; g.node_count()];
    dist[src.index()] = Some(0);
    let mut queue = std::collections::VecDeque::new();
    queue.push_back(src);
    while let Some(u) = queue.pop_front() {
        let du = dist[u.index()].expect("queued nodes have distances");
        for v in g.neighbors(u) {
            if dist[v.index()].is_none() {
                dist[v.index()] = Some(du + 1);
                queue.push_back(v);
            }
        }
    }
    dist
}

/// Nodes within `k` hops of `src`, excluding `src` itself, sorted by id.
///
/// This is the reach of the distributed algorithm's local control
/// messages (the paper limits CC/TIGHT/SPAN/FREEZE exchanges to a k-hop
/// range, with k = 2 by default). The BFS is depth-bounded: expansion
/// stops at depth `k`, so the cost is proportional to the ball actually
/// returned, not to the whole graph — the distributed engine calls this
/// once per node per round.
///
/// # Panics
///
/// Panics if `src` is out of bounds.
///
/// # Example
///
/// ```
/// use peercache_graph::{builders, paths, NodeId};
///
/// let g = builders::grid(3, 3);
/// // Center of the 3x3 grid reaches everything within 2 hops.
/// let reach = paths::k_hop_neighborhood(&g, NodeId::new(4), 2);
/// assert_eq!(reach.len(), 8);
/// ```
pub fn k_hop_neighborhood(g: &Graph, src: NodeId, k: u32) -> Vec<NodeId> {
    let mut out: Vec<NodeId> = Vec::new();
    if k == 0 {
        assert!(
            src.index() < g.node_count(),
            "source {src} out of bounds for {} nodes",
            g.node_count()
        );
        return out;
    }
    let mut seen = vec![false; g.node_count()];
    seen[src.index()] = true;
    let mut queue = std::collections::VecDeque::new();
    queue.push_back((src, 0u32));
    while let Some((u, depth)) = queue.pop_front() {
        if depth == k {
            // Nodes at the boundary are in the ball but not expanded.
            continue;
        }
        for v in g.neighbors(u) {
            if !seen[v.index()] {
                seen[v.index()] = true;
                out.push(v);
                queue.push_back((v, depth + 1));
            }
        }
    }
    out.sort_unstable();
    out
}

/// All-pairs node-weighted shortest paths with path reconstruction.
///
/// The cost of a (non-trivial) path is the sum of `node_cost` over
/// **every node on the path, endpoints included** — matching the paper's
/// reading of Eq. 2 where both the sender and the receiver contend for
/// the medium. The trivial path from a node to itself has cost 0 (a node
/// reading its own cache transmits nothing).
///
/// Paths are deterministic: among equal candidates the lexicographically
/// smallest parent is chosen.
///
/// Internally the structure stores, per pair, the **interior** cost —
/// the path sum excluding both endpoints — and adds the endpoint terms
/// at query time. Because all candidate paths between a fixed pair share
/// their endpoints, routing depends only on interior costs; this split
/// is what makes [`AllPairsPaths::update`] sound: an endpoint-only cost
/// change never invalidates a stored row.
#[derive(Debug, Clone)]
pub struct AllPairsPaths {
    n: usize,
    selection: PathSelection,
    node_cost: Vec<f64>,
    /// Per-pair interior path cost (`f64::INFINITY` when unreachable).
    interior: Vec<f64>,
    hops: Vec<u32>,
    parent: Vec<Option<NodeId>>,
    /// Per-source bitset of nodes appearing as an *interior* node on
    /// some selected path (i.e. non-source parents in the SP tree);
    /// `words_per_row` words per source.
    interior_mask: Vec<u64>,
}

const UNREACHABLE_HOPS: u32 = u32::MAX;

/// Per-source scratch buffers reused across Dijkstra runs.
struct Scratch {
    heap: BinaryHeap<Reverse<(Key, usize)>>,
    settled: Vec<bool>,
    queue: Vec<u32>,
}

impl Scratch {
    fn new(n: usize) -> Self {
        Scratch {
            heap: BinaryHeap::new(),
            settled: vec![false; n],
            queue: Vec::with_capacity(n),
        }
    }
}

impl AllPairsPaths {
    /// Computes all-pairs shortest paths under the node-cost metric,
    /// single-threaded.
    ///
    /// Runs one deterministic Dijkstra per source with the lexicographic
    /// key implied by `selection`; `O(N (N + E) log N)` total. Equivalent
    /// to [`AllPairsPaths::compute_with`] under
    /// [`Parallelism::Sequential`].
    ///
    /// # Errors
    ///
    /// Returns [`GraphError::NodeOutOfBounds`] if `node_cost` is shorter
    /// than the node count.
    ///
    /// # Example
    ///
    /// ```
    /// use peercache_graph::{builders, paths::{AllPairsPaths, PathSelection}, NodeId};
    ///
    /// let g = builders::path(3);
    /// let costs = vec![1.0, 5.0, 1.0];
    /// let ap = AllPairsPaths::compute(&g, &costs, PathSelection::FewestHops)?;
    /// // 0 -> 2 passes through the expensive middle node: 1 + 5 + 1.
    /// assert_eq!(ap.cost(NodeId::new(0), NodeId::new(2)), 7.0);
    /// assert_eq!(ap.cost(NodeId::new(1), NodeId::new(1)), 0.0);
    /// # Ok::<(), peercache_graph::GraphError>(())
    /// ```
    pub fn compute(
        g: &Graph,
        node_cost: &[f64],
        selection: PathSelection,
    ) -> Result<Self, GraphError> {
        AllPairsPaths::compute_with(g, node_cost, selection, Parallelism::Sequential)
    }

    /// Computes all-pairs shortest paths with a configurable per-source
    /// fan-out over scoped threads.
    ///
    /// Sources are split into contiguous row blocks, one per thread;
    /// every per-source Dijkstra is independent, so the result is
    /// byte-identical to the sequential computation for any thread
    /// count.
    ///
    /// # Errors
    ///
    /// Returns [`GraphError::NodeOutOfBounds`] if `node_cost` is shorter
    /// than the node count.
    pub fn compute_with(
        g: &Graph,
        node_cost: &[f64],
        selection: PathSelection,
        parallelism: Parallelism,
    ) -> Result<Self, GraphError> {
        let n = g.node_count();
        if node_cost.len() < n {
            return Err(GraphError::NodeOutOfBounds {
                node: NodeId::new(node_cost.len()),
                node_count: n,
            });
        }
        let words = words_per_row(n);
        let mut ap = AllPairsPaths {
            n,
            selection,
            node_cost: node_cost[..n].to_vec(),
            interior: vec![f64::INFINITY; n * n],
            hops: vec![UNREACHABLE_HOPS; n * n],
            parent: vec![None; n * n],
            interior_mask: vec![0u64; n * words],
        };
        if n == 0 {
            return Ok(ap);
        }
        let csr = Csr::from_graph(g);
        let threads = parallelism.threads(n);
        let mut span = obs::span!("apsp.compute", sources = n, threads = threads);
        if threads <= 1 {
            let mut scratch = Scratch::new(n);
            for src in 0..n {
                let (ic, hc, pc, mc) = ap.row_mut(src, words);
                single_source(
                    &csr,
                    node_cost,
                    src,
                    selection,
                    ic,
                    hc,
                    pc,
                    mc,
                    &mut scratch,
                );
            }
        } else {
            let rows_per = n.div_ceil(threads);
            std::thread::scope(|s| {
                let chunks = ap
                    .interior
                    .chunks_mut(rows_per * n)
                    .zip(ap.hops.chunks_mut(rows_per * n))
                    .zip(ap.parent.chunks_mut(rows_per * n))
                    .zip(ap.interior_mask.chunks_mut(rows_per * words));
                for (block, (((ints, hops), parents), masks)) in chunks.enumerate() {
                    let csr = &csr;
                    s.spawn(move || {
                        let n = csr.node_count();
                        let mut scratch = Scratch::new(n);
                        for (row, (((ic, hc), pc), mc)) in ints
                            .chunks_mut(n)
                            .zip(hops.chunks_mut(n))
                            .zip(parents.chunks_mut(n))
                            .zip(masks.chunks_mut(words))
                            .enumerate()
                        {
                            let src = block * rows_per + row;
                            single_source(
                                csr,
                                node_cost,
                                src,
                                selection,
                                ic,
                                hc,
                                pc,
                                mc,
                                &mut scratch,
                            );
                        }
                    });
                }
            });
        }
        if span.is_recording() {
            span.add_field("recomputed_sources", obs::Value::from(n));
        }
        Ok(ap)
    }

    /// Incrementally refreshes the structure after the node costs
    /// changed, recomputing only the sources whose selected paths route
    /// *through* a changed node.
    ///
    /// The invalidation rule: a stored row stays valid when every
    /// changed node appears on that source's selected paths only as an
    /// **endpoint** — endpoint terms are added at query time, so the
    /// stored interior costs, hop counts, and parents are untouched.
    /// When a changed node is interior to some selected path, the row is
    /// re-run from scratch. If any node cost *decreased*, previously
    /// unattractive routes may win anywhere, so every row is recomputed
    /// (the caching planners only ever raise `S(k)`, keeping the fast
    /// path; the conservative fallback covers eviction workloads).
    ///
    /// `g` must be the same graph the structure was computed on.
    ///
    /// Returns the number of sources recomputed. The result is
    /// byte-identical to a fresh [`AllPairsPaths::compute_with`] on the
    /// new costs.
    ///
    /// # Errors
    ///
    /// Returns [`GraphError::NodeOutOfBounds`] if `node_cost` is shorter
    /// than the node count or `g` has a different node count.
    ///
    /// # Example
    ///
    /// ```
    /// use peercache_graph::paths::{AllPairsPaths, Parallelism, PathSelection};
    /// use peercache_graph::{builders, NodeId};
    ///
    /// let g = builders::path(4);
    /// let mut costs = vec![1.0; 4];
    /// let mut ap = AllPairsPaths::compute(&g, &costs, PathSelection::FewestHops)?;
    /// costs[3] = 5.0; // a leaf: never interior to any path
    /// let redone = ap.update(&g, &costs, Parallelism::Sequential)?;
    /// assert_eq!(redone, 0); // no row re-ran; queries still see the new cost
    /// assert_eq!(ap.cost(NodeId::new(0), NodeId::new(3)), 8.0);
    /// # Ok::<(), peercache_graph::GraphError>(())
    /// ```
    pub fn update(
        &mut self,
        g: &Graph,
        node_cost: &[f64],
        parallelism: Parallelism,
    ) -> Result<usize, GraphError> {
        let n = self.n;
        if node_cost.len() < n || g.node_count() != n {
            return Err(GraphError::NodeOutOfBounds {
                node: NodeId::new(node_cost.len().min(g.node_count())),
                node_count: n,
            });
        }
        let words = words_per_row(n);
        let mut dirty_words = vec![0u64; words];
        let mut dirty = 0usize;
        let mut decreased = false;
        for k in 0..n {
            if node_cost[k] != self.node_cost[k] {
                dirty_words[k / 64] |= 1u64 << (k % 64);
                dirty += 1;
                decreased |= node_cost[k] < self.node_cost[k];
            }
        }
        if dirty == 0 {
            return Ok(0);
        }
        let rows: Vec<usize> = (0..n)
            .filter(|&src| {
                decreased
                    || self.interior_mask[src * words..(src + 1) * words]
                        .iter()
                        .zip(&dirty_words)
                        .any(|(m, d)| m & d != 0)
            })
            .collect();
        self.node_cost.copy_from_slice(&node_cost[..n]);
        let csr = Csr::from_graph(g);
        let threads = parallelism.threads(rows.len());
        let mut span = obs::span!(
            "apsp.update",
            sources = n,
            dirty_nodes = dirty,
            threads = threads,
        );
        self.recompute_rows(&csr, node_cost, &rows, parallelism);
        if span.is_recording() {
            span.add_field("recomputed_sources", obs::Value::from(rows.len()));
        }
        Ok(rows.len())
    }

    /// Incrementally refreshes the structure after **structural** edits —
    /// edges removed or added, possibly combined with node-cost changes —
    /// recomputing only the rows the edit can actually affect.
    ///
    /// `g` must be the graph *after* the edit; `removed_edges` /
    /// `added_edges` list the net difference from the graph the structure
    /// was last computed on (an edge must not appear in both lists). The
    /// per-row invalidation rules:
    ///
    /// * **Removed edge `(u, v)`** — removal only prunes candidate
    ///   paths, so a row stays valid (and optimal) unless its stored
    ///   shortest-path tree actually uses the edge (`parent[v] == u` or
    ///   `parent[u] == v`).
    /// * **Added edge `(u, v)`**, hop-first selection — a row is
    ///   unaffected when both endpoints sit at *equal* hop depth from the
    ///   source (including both unreachable): an intra-layer edge is
    ///   never part of a hop-shortest path and is never considered by the
    ///   layer DP. Cost-first selection falls back to "dirty when either
    ///   endpoint is reachable". More than one added edge per call falls
    ///   back to a full recompute (per-edge tests against stale hop
    ///   labels are unsound when additions compound).
    /// * **Node-cost changes** are folded in. Increases use the interior
    ///   bitset exactly like [`AllPairsPaths::update`]. A *decrease* at a
    ///   connected node `k` under hop-first selection dirties only the
    ///   rows for which `k` lies on some hop-shortest path — `k`
    ///   reachable with a neighbor one BFS layer further out — which
    ///   keeps departures (where surviving neighbors' degree terms drop)
    ///   incremental. A decrease at an *isolated* node is ignored: it
    ///   cannot be, or become, interior to any path. Cost-first
    ///   selection with any decrease falls back to recomputing every
    ///   remaining row.
    /// * A **node-count change** rebuilds the whole structure.
    ///
    /// Returns the number of rows recomputed; the result is
    /// byte-identical to a fresh [`AllPairsPaths::compute_with`] on the
    /// new graph and costs.
    ///
    /// # Errors
    ///
    /// Returns [`GraphError::NodeOutOfBounds`] if `node_cost` is shorter
    /// than `g`'s node count or an edit mentions an unknown node.
    ///
    /// # Example
    ///
    /// ```
    /// use peercache_graph::paths::{AllPairsPaths, Parallelism, PathSelection};
    /// use peercache_graph::{builders, NodeId};
    ///
    /// let mut g = builders::grid(3, 3);
    /// let costs = vec![1.0; 9];
    /// let mut ap = AllPairsPaths::compute(&g, &costs, PathSelection::FewestHops)?;
    /// let (u, v) = (NodeId::new(4), NodeId::new(5));
    /// g.remove_edge(u, v)?;
    /// let redone = ap.update_topology(&g, &costs, &[(u, v)], &[], Parallelism::Sequential)?;
    /// assert!(redone < 9); // only rows whose tree used (4, 5)
    /// assert_eq!(ap.hops(u, v), Some(3)); // rerouted around the gap
    /// # Ok::<(), peercache_graph::GraphError>(())
    /// ```
    pub fn update_topology(
        &mut self,
        g: &Graph,
        node_cost: &[f64],
        removed_edges: &[(NodeId, NodeId)],
        added_edges: &[(NodeId, NodeId)],
        parallelism: Parallelism,
    ) -> Result<usize, GraphError> {
        if node_cost.len() < g.node_count() {
            return Err(GraphError::NodeOutOfBounds {
                node: NodeId::new(node_cost.len()),
                node_count: g.node_count(),
            });
        }
        for &(u, v) in removed_edges.iter().chain(added_edges) {
            for e in [u, v] {
                if e.index() >= g.node_count() {
                    return Err(GraphError::NodeOutOfBounds {
                        node: e,
                        node_count: g.node_count(),
                    });
                }
            }
        }
        if g.node_count() != self.n || added_edges.len() > 1 {
            *self = AllPairsPaths::compute_with(g, node_cost, self.selection, parallelism)?;
            return Ok(self.n);
        }
        let n = self.n;
        if n == 0 {
            return Ok(0);
        }
        debug_assert!(
            removed_edges.iter().all(|&(u, v)| !g.contains_edge(u, v)),
            "removed_edges must already be absent from the post-edit graph"
        );
        debug_assert!(
            added_edges.iter().all(|&(u, v)| g.contains_edge(u, v)),
            "added_edges must be present in the post-edit graph"
        );
        let words = words_per_row(n);

        // Structurally dirty rows, judged against the stored (pre-edit)
        // trees and hop labels.
        let mut dirty = vec![false; n];
        for (src, flag) in dirty.iter_mut().enumerate() {
            let base = src * n;
            let row_parent = &self.parent[base..base + n];
            let row_hops = &self.hops[base..base + n];
            *flag = removed_edges.iter().any(|&(u, v)| {
                row_parent[v.index()] == Some(u) || row_parent[u.index()] == Some(v)
            }) || added_edges.first().is_some_and(|&(u, v)| {
                let (hu, hv) = (row_hops[u.index()], row_hops[v.index()]);
                match self.selection {
                    PathSelection::FewestHops => hu != hv,
                    PathSelection::MinCost => hu != UNREACHABLE_HOPS || hv != UNREACHABLE_HOPS,
                }
            });
        }
        let structural: Vec<usize> = (0..n).filter(|&src| dirty[src]).collect();
        let csr = Csr::from_graph(g);
        let mut span = obs::span!(
            "apsp.update_topology",
            sources = n,
            removed = removed_edges.len(),
            added = added_edges.len(),
        );
        self.recompute_rows(&csr, node_cost, &structural, parallelism);

        // Fold node-cost changes into the rows the edit left untouched
        // (structurally dirty rows were recomputed with the new costs).
        let mut dirty_words = vec![0u64; words];
        let mut cost_changed = false;
        let mut decreased: Vec<usize> = Vec::new();
        for k in 0..n {
            if node_cost[k] != self.node_cost[k] {
                cost_changed = true;
                dirty_words[k / 64] |= 1u64 << (k % 64);
                if node_cost[k] < self.node_cost[k] && g.degree(NodeId::new(k)) > 0 {
                    decreased.push(k);
                }
            }
        }
        self.node_cost[..n].copy_from_slice(&node_cost[..n]);
        let mut cost_rows: Vec<usize> = Vec::new();
        if cost_changed {
            let mincost_fallback =
                !decreased.is_empty() && self.selection == PathSelection::MinCost;
            for (src, &row_dirty) in dirty.iter().enumerate() {
                if row_dirty {
                    continue;
                }
                let needs = mincost_fallback
                    || self.interior_mask[src * words..(src + 1) * words]
                        .iter()
                        .zip(&dirty_words)
                        .any(|(m, d)| m & d != 0)
                    || decreased.iter().any(|&k| {
                        // The source's own cost never enters its row
                        // (it steps at cost 0), so skip k == src.
                        let hk = self.hops[src * n + k];
                        k != src
                            && hk != UNREACHABLE_HOPS
                            && csr
                                .neighbors(k)
                                .iter()
                                .any(|&x| self.hops[src * n + x as usize] == hk + 1)
                    });
                if needs {
                    cost_rows.push(src);
                }
            }
            self.recompute_rows(&csr, node_cost, &cost_rows, parallelism);
        }
        let total = structural.len() + cost_rows.len();
        if span.is_recording() {
            span.add_field("recomputed_sources", obs::Value::from(total));
        }
        Ok(total)
    }

    /// Re-runs [`single_source`] for the given rows against `csr`,
    /// sequentially or with a scoped-thread scatter, writing results in
    /// place. Byte-identical for any thread count.
    fn recompute_rows(
        &mut self,
        csr: &Csr,
        node_cost: &[f64],
        rows: &[usize],
        parallelism: Parallelism,
    ) {
        if rows.is_empty() {
            return;
        }
        let n = self.n;
        let words = words_per_row(n);
        let selection = self.selection;
        let threads = parallelism.threads(rows.len());
        if threads <= 1 {
            let mut scratch = Scratch::new(n);
            for &src in rows {
                let (ic, hc, pc, mc) = self.row_mut(src, words);
                single_source(csr, node_cost, src, selection, ic, hc, pc, mc, &mut scratch);
            }
        } else {
            // Dirty rows are scattered, so threads produce owned row
            // buffers that are scattered back on the main thread.
            let per = rows.len().div_ceil(threads);
            let results: Vec<(usize, RowBuf)> = std::thread::scope(|s| {
                let mut handles = Vec::new();
                for chunk in rows.chunks(per) {
                    handles.push(s.spawn(move || {
                        let n = csr.node_count();
                        let mut scratch = Scratch::new(n);
                        let mut out = Vec::with_capacity(chunk.len());
                        for &src in chunk {
                            let mut buf = RowBuf::new(n, words);
                            single_source(
                                csr,
                                node_cost,
                                src,
                                selection,
                                &mut buf.interior,
                                &mut buf.hops,
                                &mut buf.parent,
                                &mut buf.mask,
                                &mut scratch,
                            );
                            out.push((src, buf));
                        }
                        out
                    }));
                }
                handles
                    .into_iter()
                    .flat_map(|h| h.join().unwrap())
                    .collect()
            });
            for (src, buf) in results {
                let (ic, hc, pc, mc) = self.row_mut(src, words);
                ic.copy_from_slice(&buf.interior);
                hc.copy_from_slice(&buf.hops);
                pc.copy_from_slice(&buf.parent);
                mc.copy_from_slice(&buf.mask);
            }
        }
    }

    /// Disjoint mutable views of one source's row.
    #[allow(clippy::type_complexity)]
    fn row_mut(
        &mut self,
        src: usize,
        words: usize,
    ) -> (&mut [f64], &mut [u32], &mut [Option<NodeId>], &mut [u64]) {
        let base = src * self.n;
        (
            &mut self.interior[base..base + self.n],
            &mut self.hops[base..base + self.n],
            &mut self.parent[base..base + self.n],
            &mut self.interior_mask[src * words..(src + 1) * words],
        )
    }

    /// Number of nodes the structure was computed for.
    pub fn node_count(&self) -> usize {
        self.n
    }

    /// Cost of the selected path from `u` to `v` (`f64::INFINITY` when
    /// unreachable, `0.0` on the diagonal).
    ///
    /// # Panics
    ///
    /// Panics if `u` or `v` is out of bounds.
    pub fn cost(&self, u: NodeId, v: NodeId) -> f64 {
        if u == v {
            return 0.0;
        }
        let idx = u.index() * self.n + v.index();
        if self.hops[idx] == UNREACHABLE_HOPS {
            return f64::INFINITY;
        }
        self.interior[idx] + self.node_cost[u.index()] + self.node_cost[v.index()]
    }

    /// Hop length of the selected path (`None` when unreachable).
    ///
    /// # Panics
    ///
    /// Panics if `u` or `v` is out of bounds.
    pub fn hops(&self, u: NodeId, v: NodeId) -> Option<u32> {
        match self.hops[u.index() * self.n + v.index()] {
            UNREACHABLE_HOPS => None,
            h => Some(h),
        }
    }

    /// Reconstructs the selected path from `u` to `v`, endpoints
    /// included (`None` when unreachable). `path(u, u)` is `[u]`.
    ///
    /// # Panics
    ///
    /// Panics if `u` or `v` is out of bounds.
    pub fn path(&self, u: NodeId, v: NodeId) -> Option<Vec<NodeId>> {
        self.hops(u, v)?;
        let mut rev = vec![v];
        let mut cur = v;
        while cur != u {
            cur = self.parent[u.index() * self.n + cur.index()]
                .expect("reachable nodes have parents");
            rev.push(cur);
        }
        rev.reverse();
        Some(rev)
    }
}

fn words_per_row(n: usize) -> usize {
    n.div_ceil(64).max(1)
}

/// Owned buffers for one recomputed row (threaded update path).
struct RowBuf {
    interior: Vec<f64>,
    hops: Vec<u32>,
    parent: Vec<Option<NodeId>>,
    mask: Vec<u64>,
}

impl RowBuf {
    fn new(n: usize, words: usize) -> Self {
        RowBuf {
            interior: vec![f64::INFINITY; n],
            hops: vec![UNREACHABLE_HOPS; n],
            parent: vec![None; n],
            mask: vec![0u64; words],
        }
    }
}

/// One deterministic Dijkstra over the interior-cost metric, writing
/// into the caller's row slices.
///
/// The relaxation `interior(v) = interior(u) + node_cost[u]` (0 when `u`
/// is the source) orders paths exactly as the full endpoint-inclusive
/// cost does — every candidate between a fixed pair shares its
/// endpoints — while keeping stored rows independent of endpoint terms.
#[allow(clippy::too_many_arguments)]
fn single_source(
    csr: &Csr,
    node_cost: &[f64],
    src: usize,
    selection: PathSelection,
    interior: &mut [f64],
    hops: &mut [u32],
    parent: &mut [Option<NodeId>],
    mask: &mut [u64],
    scratch: &mut Scratch,
) {
    interior.fill(f64::INFINITY);
    hops.fill(UNREACHABLE_HOPS);
    parent.fill(None);
    mask.fill(0);

    interior[src] = 0.0;
    hops[src] = 0;
    match selection {
        PathSelection::FewestHops => {
            // Hop count is the primary key, so every hop-`h-1` node is
            // final before any hop-`h` node is looked at — the heap
            // degenerates into BFS layers. Run a plain BFS for the hop
            // labels, then a layer-order DP picking each node's best
            // predecessor: the lexicographic minimum over
            // `(interior cost, parent id)`, exactly the value the
            // generic Dijkstra's relaxation rule converges to.
            let queue = &mut scratch.queue;
            queue.clear();
            queue.push(src as u32);
            let mut head = 0;
            while head < queue.len() {
                let u = queue[head] as usize;
                head += 1;
                for &v in csr.neighbors(u) {
                    let vi = v as usize;
                    if hops[vi] == UNREACHABLE_HOPS {
                        hops[vi] = hops[u] + 1;
                        queue.push(v);
                    }
                }
            }
            // BFS order visits layers in order, so each node's
            // predecessors (hop exactly one less) are already final.
            let order: &[u32] = queue;
            for &qv in order.iter().skip(1) {
                let vi = qv as usize;
                let hv = hops[vi];
                let mut best = f64::INFINITY;
                let mut best_parent: Option<NodeId> = None;
                for &u in csr.neighbors(vi) {
                    let ui = u as usize;
                    if hops[ui] + 1 != hv {
                        continue;
                    }
                    let step = if ui == src { 0.0 } else { node_cost[ui] };
                    let cand = interior[ui] + step;
                    let better = match best_parent {
                        None => true,
                        Some(p) => match cand.total_cmp(&best) {
                            std::cmp::Ordering::Less => true,
                            std::cmp::Ordering::Equal => NodeId::new(ui) < p,
                            std::cmp::Ordering::Greater => false,
                        },
                    };
                    if better {
                        best = cand;
                        best_parent = Some(NodeId::new(ui));
                    }
                }
                interior[vi] = best;
                parent[vi] = best_parent;
            }
        }
        PathSelection::MinCost => {
            scratch.heap.clear();
            scratch.settled.fill(false);
            let settled = &mut scratch.settled;
            let heap = &mut scratch.heap;
            heap.push(Reverse((Key::new(selection, 0.0, 0), src)));
            while let Some(Reverse((key, u))) = heap.pop() {
                if settled[u] {
                    continue;
                }
                // Stale entries carry a worse key than the settled value.
                if key != Key::new(selection, interior[u], hops[u]) {
                    continue;
                }
                settled[u] = true;
                // Leaving `u` makes it an interior node of every longer
                // path.
                let step = if u == src { 0.0 } else { node_cost[u] };
                for &v in csr.neighbors(u) {
                    let vi = v as usize;
                    if settled[vi] {
                        continue;
                    }
                    let cand_interior = interior[u] + step;
                    let cand_hops = hops[u] + 1;
                    let cand = Key::new(selection, cand_interior, cand_hops);
                    let cur = Key::new(selection, interior[vi], hops[vi]);
                    let better = cand < cur
                        || (cand == cur && parent[vi].is_some_and(|p| NodeId::new(u) < p));
                    if better {
                        interior[vi] = cand_interior;
                        hops[vi] = cand_hops;
                        parent[vi] = Some(NodeId::new(u));
                        heap.push(Reverse((cand, vi)));
                    }
                }
            }
        }
    }
    // The interior-node bitset: every non-source parent routes traffic
    // through itself, so its term is baked into some stored row entry.
    for &p in parent.iter().flatten() {
        if p.index() != src {
            mask[p.index() / 64] |= 1u64 << (p.index() % 64);
        }
    }
}

/// Single-source shortest paths under a per-edge weight closure.
///
/// Returns `(cost, parent)` vectors indexed by node; unreachable nodes
/// have `f64::INFINITY` cost and no parent. Ties are broken by smaller
/// parent id, so the tree is deterministic.
///
/// Negative weights are not supported (weights model transmission costs,
/// which are nonnegative); a negative weight yields unspecified — but
/// memory-safe — results, as with any Dijkstra.
///
/// # Panics
///
/// Panics if `src` is out of bounds.
///
/// # Example
///
/// ```
/// use peercache_graph::{builders, paths, NodeId};
///
/// let g = builders::ring(4);
/// let (cost, parent) = paths::dijkstra_edge_weighted(&g, NodeId::new(0), |_, _| 1.0);
/// assert_eq!(cost[2], 2.0);
/// assert!(parent[0].is_none());
/// ```
pub fn dijkstra_edge_weighted<W>(
    g: &Graph,
    src: NodeId,
    weight: W,
) -> (Vec<f64>, Vec<Option<NodeId>>)
where
    W: Fn(NodeId, NodeId) -> f64,
{
    let n = g.node_count();
    let mut cost = vec![f64::INFINITY; n];
    let mut parent: Vec<Option<NodeId>> = vec![None; n];
    let mut settled = vec![false; n];
    let mut heap: BinaryHeap<Reverse<(Key, usize)>> = BinaryHeap::new();
    cost[src.index()] = 0.0;
    heap.push(Reverse((
        Key {
            primary: 0.0,
            secondary: 0.0,
        },
        src.index(),
    )));
    while let Some(Reverse((key, u))) = heap.pop() {
        if settled[u] || key.primary != cost[u] {
            continue;
        }
        settled[u] = true;
        for v in g.neighbors(NodeId::new(u)) {
            let vi = v.index();
            if settled[vi] {
                continue;
            }
            let cand = cost[u] + weight(NodeId::new(u), v);
            let better = cand < cost[vi]
                || (cand == cost[vi] && parent[vi].is_some_and(|p| NodeId::new(u) < p));
            if better {
                cost[vi] = cand;
                parent[vi] = Some(NodeId::new(u));
                heap.push(Reverse((
                    Key {
                        primary: cand,
                        secondary: 0.0,
                    },
                    vi,
                )));
            }
        }
    }
    (cost, parent)
}

/// Lexicographic Dijkstra key; which component leads depends on the
/// [`PathSelection`].
#[derive(Debug, Clone, Copy, PartialEq)]
struct Key {
    primary: f64,
    secondary: f64,
}

impl Key {
    fn new(selection: PathSelection, cost: f64, hops: u32) -> Self {
        match selection {
            PathSelection::FewestHops => Key {
                primary: f64::from(hops.min(UNREACHABLE_HOPS - 1)),
                secondary: cost,
            },
            PathSelection::MinCost => Key {
                primary: cost,
                secondary: f64::from(hops.min(UNREACHABLE_HOPS - 1)),
            },
        }
    }
}

impl Eq for Key {}

impl PartialOrd for Key {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Key {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.primary
            .total_cmp(&other.primary)
            .then(self.secondary.total_cmp(&other.secondary))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builders;

    fn unit_costs(g: &Graph) -> Vec<f64> {
        vec![1.0; g.node_count()]
    }

    #[test]
    fn bfs_hops_on_grid() {
        let g = builders::grid(3, 3);
        let hops = bfs_hops(&g, NodeId::new(0));
        assert_eq!(hops[0], Some(0));
        assert_eq!(hops[8], Some(4)); // opposite corner
    }

    #[test]
    fn bfs_hops_unreachable_is_none() {
        let g = Graph::new(2);
        let hops = bfs_hops(&g, NodeId::new(0));
        assert_eq!(hops[1], None);
    }

    #[test]
    fn k_hop_neighborhood_grows_with_k() {
        let g = builders::grid(5, 5);
        let center = NodeId::new(12);
        let one = k_hop_neighborhood(&g, center, 1);
        let two = k_hop_neighborhood(&g, center, 2);
        assert_eq!(one.len(), 4);
        assert_eq!(two.len(), 12);
        assert!(one.iter().all(|n| two.contains(n)));
    }

    #[test]
    fn k_zero_neighborhood_is_empty() {
        let g = builders::grid(3, 3);
        assert!(k_hop_neighborhood(&g, NodeId::new(4), 0).is_empty());
    }

    #[test]
    fn k_hop_matches_bfs_filter_reference() {
        // The depth-bounded BFS must agree with the naive
        // full-BFS-then-filter definition on every (src, k).
        let g = builders::grid(4, 5);
        for src in g.nodes() {
            let hops = bfs_hops(&g, src);
            for k in 0..=6u32 {
                let reference: Vec<NodeId> = g
                    .nodes()
                    .filter(|&v| v != src && hops[v.index()].is_some_and(|h| h <= k))
                    .collect();
                assert_eq!(k_hop_neighborhood(&g, src, k), reference, "src={src} k={k}");
            }
        }
    }

    #[test]
    fn k_hop_is_depth_bounded_on_disconnected_parts() {
        let g = Graph::from_edges(4, &[(0, 1)]).unwrap();
        assert_eq!(
            k_hop_neighborhood(&g, NodeId::new(0), 3),
            vec![NodeId::new(1)]
        );
    }

    #[test]
    fn all_pairs_diagonal_is_zero() {
        let g = builders::grid(3, 3);
        let ap = AllPairsPaths::compute(&g, &unit_costs(&g), PathSelection::FewestHops).unwrap();
        for u in g.nodes() {
            assert_eq!(ap.cost(u, u), 0.0);
            assert_eq!(ap.hops(u, u), Some(0));
            assert_eq!(ap.path(u, u), Some(vec![u]));
        }
    }

    #[test]
    fn unit_cost_path_includes_both_endpoints() {
        let g = builders::path(4);
        let ap = AllPairsPaths::compute(&g, &unit_costs(&g), PathSelection::FewestHops).unwrap();
        // 0-1: both endpoints -> cost 2.
        assert_eq!(ap.cost(NodeId::new(0), NodeId::new(1)), 2.0);
        assert_eq!(ap.cost(NodeId::new(0), NodeId::new(3)), 4.0);
    }

    #[test]
    fn path_reconstruction_matches_hops() {
        let g = builders::grid(4, 4);
        let ap = AllPairsPaths::compute(&g, &unit_costs(&g), PathSelection::FewestHops).unwrap();
        for u in g.nodes() {
            for v in g.nodes() {
                let p = ap.path(u, v).expect("grid is connected");
                assert_eq!(p.len() as u32 - 1, ap.hops(u, v).unwrap());
                assert_eq!(*p.first().unwrap(), u);
                assert_eq!(*p.last().unwrap(), v);
                // Consecutive nodes are adjacent.
                for w in p.windows(2) {
                    assert!(g.contains_edge(w[0], w[1]));
                }
            }
        }
    }

    #[test]
    fn min_cost_routes_around_expensive_nodes() {
        // Square 0-1, 0-2, 1-3, 2-3 with node 1 very expensive.
        let g = Graph::from_edges(4, &[(0, 1), (0, 2), (1, 3), (2, 3)]).unwrap();
        let costs = vec![1.0, 100.0, 1.0, 1.0];
        let hop_first = AllPairsPaths::compute(&g, &costs, PathSelection::FewestHops).unwrap();
        let cost_first = AllPairsPaths::compute(&g, &costs, PathSelection::MinCost).unwrap();
        // Both routes are 2 hops; tie broken by cost, so both avoid node 1 here.
        assert_eq!(hop_first.cost(NodeId::new(0), NodeId::new(3)), 3.0);
        assert_eq!(cost_first.cost(NodeId::new(0), NodeId::new(3)), 3.0);
        // Force a detour: connect 0-3 through a longer cheap path.
        let g2 = Graph::from_edges(5, &[(0, 1), (1, 3), (0, 2), (2, 4), (4, 3)]).unwrap();
        let costs2 = vec![1.0, 100.0, 1.0, 1.0, 1.0];
        let hop2 = AllPairsPaths::compute(&g2, &costs2, PathSelection::FewestHops).unwrap();
        let cost2 = AllPairsPaths::compute(&g2, &costs2, PathSelection::MinCost).unwrap();
        // Hop-first goes 0-1-3 (cost 102); cost-first goes 0-2-4-3 (cost 4).
        assert_eq!(hop2.cost(NodeId::new(0), NodeId::new(3)), 102.0);
        assert_eq!(hop2.hops(NodeId::new(0), NodeId::new(3)), Some(2));
        assert_eq!(cost2.cost(NodeId::new(0), NodeId::new(3)), 4.0);
        assert_eq!(cost2.hops(NodeId::new(0), NodeId::new(3)), Some(3));
    }

    #[test]
    fn unreachable_pairs_report_infinity() {
        let g = Graph::new(3); // no edges
        let ap = AllPairsPaths::compute(&g, &[1.0; 3], PathSelection::FewestHops).unwrap();
        assert!(ap.cost(NodeId::new(0), NodeId::new(2)).is_infinite());
        assert_eq!(ap.hops(NodeId::new(0), NodeId::new(2)), None);
        assert_eq!(ap.path(NodeId::new(0), NodeId::new(2)), None);
    }

    #[test]
    fn cost_matrix_is_symmetric_for_symmetric_metrics() {
        let g = builders::grid(4, 4);
        let costs: Vec<f64> = (0..16).map(|i| 1.0 + (i % 5) as f64).collect();
        let ap = AllPairsPaths::compute(&g, &costs, PathSelection::MinCost).unwrap();
        for u in g.nodes() {
            for v in g.nodes() {
                assert!((ap.cost(u, v) - ap.cost(v, u)).abs() < 1e-9);
            }
        }
    }

    #[test]
    fn short_cost_slice_is_an_error() {
        let g = builders::grid(2, 2);
        let err = AllPairsPaths::compute(&g, &[1.0], PathSelection::FewestHops).unwrap_err();
        assert!(matches!(err, GraphError::NodeOutOfBounds { .. }));
    }

    fn assert_identical(a: &AllPairsPaths, b: &AllPairsPaths, g: &Graph) {
        for u in g.nodes() {
            for v in g.nodes() {
                assert_eq!(a.cost(u, v).to_bits(), b.cost(u, v).to_bits(), "{u}->{v}");
                assert_eq!(a.hops(u, v), b.hops(u, v));
                assert_eq!(a.path(u, v), b.path(u, v));
            }
        }
    }

    #[test]
    fn parallel_matches_sequential_bytewise() {
        let g = builders::grid(5, 5);
        let costs: Vec<f64> = (0..25).map(|i| 1.0 + (i % 7) as f64).collect();
        for selection in [PathSelection::FewestHops, PathSelection::MinCost] {
            let seq = AllPairsPaths::compute(&g, &costs, selection).unwrap();
            for threads in [2usize, 3, 8, 64] {
                let par = AllPairsPaths::compute_with(
                    &g,
                    &costs,
                    selection,
                    Parallelism::Threads(threads),
                )
                .unwrap();
                assert_identical(&seq, &par, &g);
            }
        }
    }

    #[test]
    fn update_matches_fresh_compute() {
        let g = builders::grid(5, 5);
        let mut costs: Vec<f64> = (0..25).map(|i| 1.0 + (i % 4) as f64).collect();
        for selection in [PathSelection::FewestHops, PathSelection::MinCost] {
            let mut ap = AllPairsPaths::compute(&g, &costs, selection).unwrap();
            // Raise a few node terms, as committing a chunk does.
            for bump in [12usize, 3, 24] {
                costs[bump] += 2.0;
                let redone = ap.update(&g, &costs, Parallelism::Sequential).unwrap();
                assert!(redone <= g.node_count());
                let fresh = AllPairsPaths::compute(&g, &costs, selection).unwrap();
                assert_identical(&ap, &fresh, &g);
            }
            // A decrease falls back to the full recompute and stays correct.
            costs[12] -= 3.0;
            let redone = ap.update(&g, &costs, Parallelism::Sequential).unwrap();
            assert_eq!(redone, g.node_count());
            let fresh = AllPairsPaths::compute(&g, &costs, selection).unwrap();
            assert_identical(&ap, &fresh, &g);
            costs[12] += 1.0; // restore for the next selection
        }
    }

    #[test]
    fn update_with_unchanged_costs_is_a_noop() {
        let g = builders::grid(3, 3);
        let costs = unit_costs(&g);
        let mut ap = AllPairsPaths::compute(&g, &costs, PathSelection::FewestHops).unwrap();
        assert_eq!(ap.update(&g, &costs, Parallelism::Auto).unwrap(), 0);
    }

    #[test]
    fn update_threaded_matches_sequential() {
        let g = builders::grid(6, 6);
        let mut costs: Vec<f64> = (0..36).map(|i| 1.0 + (i % 3) as f64).collect();
        let mut seq = AllPairsPaths::compute(&g, &costs, PathSelection::FewestHops).unwrap();
        let mut par = seq.clone();
        costs[7] += 4.0;
        costs[20] += 1.0;
        let a = seq.update(&g, &costs, Parallelism::Sequential).unwrap();
        let b = par.update(&g, &costs, Parallelism::Threads(4)).unwrap();
        assert_eq!(a, b);
        assert_identical(&seq, &par, &g);
    }

    #[test]
    fn topology_update_after_edge_removal_matches_fresh() {
        for selection in [PathSelection::FewestHops, PathSelection::MinCost] {
            let mut g = builders::grid(5, 5);
            let costs: Vec<f64> = (0..25).map(|i| 1.0 + (i % 4) as f64).collect();
            let mut ap = AllPairsPaths::compute(&g, &costs, selection).unwrap();
            let (u, v) = (NodeId::new(6), NodeId::new(7));
            g.remove_edge(u, v).unwrap();
            let redone = ap
                .update_topology(&g, &costs, &[(u, v)], &[], Parallelism::Sequential)
                .unwrap();
            let fresh = AllPairsPaths::compute(&g, &costs, selection).unwrap();
            assert_identical(&ap, &fresh, &g);
            assert!(redone < 25, "removal must stay incremental, redid {redone}");
        }
    }

    #[test]
    fn topology_update_after_edge_addition_matches_fresh() {
        for selection in [PathSelection::FewestHops, PathSelection::MinCost] {
            let mut g = builders::grid(2, 2); // square 0-1, 0-2, 1-3, 2-3
            let costs = vec![1.0, 2.0, 3.0, 4.0];
            let mut ap = AllPairsPaths::compute(&g, &costs, selection).unwrap();
            let (u, v) = (NodeId::new(0), NodeId::new(3));
            g.add_edge(u, v).unwrap();
            let redone = ap
                .update_topology(&g, &costs, &[], &[(u, v)], Parallelism::Sequential)
                .unwrap();
            let fresh = AllPairsPaths::compute(&g, &costs, selection).unwrap();
            assert_identical(&ap, &fresh, &g);
            if selection == PathSelection::FewestHops {
                // From sources 1 and 2 the new diagonal joins two nodes
                // at equal depth, so only rows 0 and 3 re-ran.
                assert_eq!(redone, 2);
            }
        }
    }

    #[test]
    fn topology_update_node_departure_with_cost_decreases() {
        // A departure removes all incident edges AND lowers the degree
        // terms of the surviving neighbors — the combination the world
        // layer issues. The decrease must not force a full recompute
        // under hop-first selection.
        let mut g = builders::grid(5, 5);
        let costs: Vec<f64> = (0..25)
            .map(|k| 1.0 + (g.degree(NodeId::new(k))) as f64)
            .collect();
        let mut ap = AllPairsPaths::compute(&g, &costs, PathSelection::FewestHops).unwrap();
        let dead = NodeId::new(12); // center
        let former = g.remove_node(dead).unwrap();
        let removed: Vec<(NodeId, NodeId)> = former.iter().map(|&v| (dead, v)).collect();
        let new_costs: Vec<f64> = (0..25)
            .map(|k| 1.0 + (g.degree(NodeId::new(k))) as f64)
            .collect();
        let redone = ap
            .update_topology(&g, &new_costs, &removed, &[], Parallelism::Sequential)
            .unwrap();
        let fresh = AllPairsPaths::compute(&g, &new_costs, PathSelection::FewestHops).unwrap();
        assert_identical(&ap, &fresh, &g);
        assert!(redone <= 25);
        assert!(ap.cost(NodeId::new(0), dead).is_infinite());
    }

    #[test]
    fn topology_update_pure_decrease_stays_incremental_hop_first() {
        // Lowering the cost of a node that no hop-shortest path can use
        // must not recompute anything (the old `update` would redo all
        // rows on any decrease).
        let g = builders::path(4);
        let mut costs = vec![1.0, 1.0, 1.0, 5.0];
        let mut ap = AllPairsPaths::compute(&g, &costs, PathSelection::FewestHops).unwrap();
        costs[3] = 2.0; // a leaf: never interior
        let redone = ap
            .update_topology(&g, &costs, &[], &[], Parallelism::Sequential)
            .unwrap();
        assert_eq!(redone, 0);
        let fresh = AllPairsPaths::compute(&g, &costs, PathSelection::FewestHops).unwrap();
        assert_identical(&ap, &fresh, &g);
        // An interior decrease re-runs the rows that can route through it.
        costs[1] = 0.5;
        let redone = ap
            .update_topology(&g, &costs, &[], &[], Parallelism::Sequential)
            .unwrap();
        assert!(redone > 0);
        let fresh = AllPairsPaths::compute(&g, &costs, PathSelection::FewestHops).unwrap();
        assert_identical(&ap, &fresh, &g);
    }

    #[test]
    fn topology_update_node_count_change_rebuilds() {
        let mut g = builders::path(3);
        let mut costs = vec![1.0; 3];
        let mut ap = AllPairsPaths::compute(&g, &costs, PathSelection::FewestHops).unwrap();
        let new = g.add_node();
        g.add_edge(new, NodeId::new(2)).unwrap();
        costs.push(1.0);
        let redone = ap
            .update_topology(
                &g,
                &costs,
                &[],
                &[(new, NodeId::new(2))],
                Parallelism::Sequential,
            )
            .unwrap();
        assert_eq!(redone, 4);
        assert_eq!(ap.node_count(), 4);
        let fresh = AllPairsPaths::compute(&g, &costs, PathSelection::FewestHops).unwrap();
        assert_identical(&ap, &fresh, &g);
    }

    #[test]
    fn topology_update_multi_addition_falls_back_to_full() {
        let mut g = builders::path(4);
        let costs = vec![1.0; 4];
        let mut ap = AllPairsPaths::compute(&g, &costs, PathSelection::FewestHops).unwrap();
        let added = [
            (NodeId::new(0), NodeId::new(2)),
            (NodeId::new(1), NodeId::new(3)),
        ];
        for &(u, v) in &added {
            g.add_edge(u, v).unwrap();
        }
        let redone = ap
            .update_topology(&g, &costs, &[], &added, Parallelism::Sequential)
            .unwrap();
        assert_eq!(redone, 4);
        let fresh = AllPairsPaths::compute(&g, &costs, PathSelection::FewestHops).unwrap();
        assert_identical(&ap, &fresh, &g);
    }

    #[test]
    fn topology_update_rejects_unknown_endpoints() {
        let g = builders::path(3);
        let mut ap =
            AllPairsPaths::compute(&g, &unit_costs(&g), PathSelection::FewestHops).unwrap();
        let err = ap
            .update_topology(
                &g,
                &unit_costs(&g),
                &[(NodeId::new(0), NodeId::new(9))],
                &[],
                Parallelism::Sequential,
            )
            .unwrap_err();
        assert!(matches!(err, GraphError::NodeOutOfBounds { .. }));
    }

    /// Tiny deterministic xorshift so the randomized churn test needs no
    /// external RNG crate.
    struct XorShift(u64);

    impl XorShift {
        fn next(&mut self) -> u64 {
            let mut x = self.0;
            x ^= x << 13;
            x ^= x >> 7;
            x ^= x << 17;
            self.0 = x;
            x
        }

        fn below(&mut self, bound: usize) -> usize {
            (self.next() % bound as u64) as usize
        }
    }

    #[test]
    fn topology_update_randomized_churn_matches_fresh() {
        for selection in [PathSelection::FewestHops, PathSelection::MinCost] {
            let mut g = builders::grid(4, 4);
            let mut costs: Vec<f64> = (0..16).map(|i| 1.0 + (i % 5) as f64).collect();
            let mut ap =
                AllPairsPaths::compute_with(&g, &costs, selection, Parallelism::Threads(3))
                    .unwrap();
            let mut rng = XorShift(0x9e3779b97f4a7c15);
            for step in 0..60 {
                let (mut removed, mut added) = (Vec::new(), Vec::new());
                match rng.below(3) {
                    0 => {
                        let edges: Vec<(NodeId, NodeId)> = g.edges().collect();
                        if !edges.is_empty() {
                            let (u, v) = edges[rng.below(edges.len())];
                            g.remove_edge(u, v).unwrap();
                            removed.push((u, v));
                        }
                    }
                    1 => {
                        let (u, v) = (NodeId::new(rng.below(16)), NodeId::new(rng.below(16)));
                        if u != v && !g.contains_edge(u, v) {
                            g.add_edge(u, v).unwrap();
                            added.push((u, v));
                        }
                    }
                    _ => {
                        let k = rng.below(16);
                        costs[k] = 1.0 + rng.below(7) as f64;
                    }
                }
                let par = if step % 2 == 0 {
                    Parallelism::Sequential
                } else {
                    Parallelism::Threads(4)
                };
                ap.update_topology(&g, &costs, &removed, &added, par)
                    .unwrap();
                let fresh = AllPairsPaths::compute(&g, &costs, selection).unwrap();
                assert_identical(&ap, &fresh, &g);
            }
        }
    }

    #[test]
    fn update_rejects_mismatched_graph() {
        let g = builders::grid(3, 3);
        let mut ap =
            AllPairsPaths::compute(&g, &unit_costs(&g), PathSelection::FewestHops).unwrap();
        let other = builders::grid(2, 2);
        assert!(ap
            .update(&other, &unit_costs(&g), Parallelism::Sequential)
            .is_err());
    }

    #[test]
    fn parallelism_thread_resolution() {
        assert_eq!(Parallelism::Sequential.threads(100), 1);
        assert_eq!(Parallelism::Threads(4).threads(100), 4);
        assert_eq!(Parallelism::Threads(0).threads(100), 1);
        assert_eq!(Parallelism::Threads(16).threads(3), 3);
        assert!(Parallelism::Auto.threads(100) >= 1);
        assert_eq!(Parallelism::Auto.threads(0), 1);
    }
}
