//! Shortest-path machinery.
//!
//! The paper's Path Contention Cost (Eq. 2) sums **node** costs
//! `w_k (1 + S(k))` along the shortest path between two nodes, so unlike
//! textbook shortest paths the metric here is node-weighted. This module
//! provides:
//!
//! * [`bfs_hops`] — plain hop distances (the Hop-Count baseline metric),
//! * [`k_hop_neighborhood`] — the scope of the distributed algorithm's
//!   local messages,
//! * [`AllPairsPaths`] — all-pairs node-weighted shortest paths with path
//!   reconstruction, under either hop-first or cost-first selection.

use std::cmp::Reverse;
use std::collections::BinaryHeap;

use crate::{Graph, GraphError, NodeId};

/// How ties between candidate paths are resolved.
///
/// The paper routes packets along the *hop-shortest* path and then sums
/// contention costs along it ([`PathSelection::FewestHops`], the
/// default). Selecting the *cheapest* path under the node-cost metric
/// ([`PathSelection::MinCost`]) is a natural ablation: it can only lower
/// path costs, at the price of longer routes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum PathSelection {
    /// Prefer fewer hops; break ties by lower total node cost.
    #[default]
    FewestHops,
    /// Prefer lower total node cost; break ties by fewer hops.
    MinCost,
}

/// Hop distances from `src` to every node (`None` when unreachable).
///
/// # Panics
///
/// Panics if `src` is out of bounds.
///
/// # Example
///
/// ```
/// use peercache_graph::{builders, paths, NodeId};
///
/// let g = builders::path(4);
/// let hops = paths::bfs_hops(&g, NodeId::new(0));
/// assert_eq!(hops[3], Some(3));
/// ```
pub fn bfs_hops(g: &Graph, src: NodeId) -> Vec<Option<u32>> {
    let mut dist = vec![None; g.node_count()];
    dist[src.index()] = Some(0);
    let mut queue = std::collections::VecDeque::new();
    queue.push_back(src);
    while let Some(u) = queue.pop_front() {
        let du = dist[u.index()].expect("queued nodes have distances");
        for v in g.neighbors(u) {
            if dist[v.index()].is_none() {
                dist[v.index()] = Some(du + 1);
                queue.push_back(v);
            }
        }
    }
    dist
}

/// Nodes within `k` hops of `src`, excluding `src` itself, sorted by id.
///
/// This is the reach of the distributed algorithm's local control
/// messages (the paper limits CC/TIGHT/SPAN/FREEZE exchanges to a k-hop
/// range, with k = 2 by default).
///
/// # Panics
///
/// Panics if `src` is out of bounds.
///
/// # Example
///
/// ```
/// use peercache_graph::{builders, paths, NodeId};
///
/// let g = builders::grid(3, 3);
/// // Center of the 3x3 grid reaches everything within 2 hops.
/// let reach = paths::k_hop_neighborhood(&g, NodeId::new(4), 2);
/// assert_eq!(reach.len(), 8);
/// ```
pub fn k_hop_neighborhood(g: &Graph, src: NodeId, k: u32) -> Vec<NodeId> {
    let hops = bfs_hops(g, src);
    let mut out: Vec<NodeId> = g
        .nodes()
        .filter(|&v| v != src && hops[v.index()].is_some_and(|h| h <= k))
        .collect();
    out.sort_unstable();
    out
}

/// All-pairs node-weighted shortest paths with path reconstruction.
///
/// The cost of a (non-trivial) path is the sum of `node_cost` over
/// **every node on the path, endpoints included** — matching the paper's
/// reading of Eq. 2 where both the sender and the receiver contend for
/// the medium. The trivial path from a node to itself has cost 0 (a node
/// reading its own cache transmits nothing).
///
/// Paths are deterministic: among equal candidates the lexicographically
/// smallest parent is chosen.
#[derive(Debug, Clone)]
pub struct AllPairsPaths {
    n: usize,
    cost: Vec<f64>,
    hops: Vec<u32>,
    parent: Vec<Option<NodeId>>,
}

const UNREACHABLE_HOPS: u32 = u32::MAX;

impl AllPairsPaths {
    /// Computes all-pairs shortest paths under the node-cost metric.
    ///
    /// Runs one deterministic Dijkstra per source with the lexicographic
    /// key implied by `selection`; `O(N (N + E) log N)` total.
    ///
    /// # Errors
    ///
    /// Returns [`GraphError::NodeOutOfBounds`] if `node_cost` is shorter
    /// than the node count.
    ///
    /// # Example
    ///
    /// ```
    /// use peercache_graph::{builders, paths::{AllPairsPaths, PathSelection}, NodeId};
    ///
    /// let g = builders::path(3);
    /// let costs = vec![1.0, 5.0, 1.0];
    /// let ap = AllPairsPaths::compute(&g, &costs, PathSelection::FewestHops)?;
    /// // 0 -> 2 passes through the expensive middle node: 1 + 5 + 1.
    /// assert_eq!(ap.cost(NodeId::new(0), NodeId::new(2)), 7.0);
    /// assert_eq!(ap.cost(NodeId::new(1), NodeId::new(1)), 0.0);
    /// # Ok::<(), peercache_graph::GraphError>(())
    /// ```
    pub fn compute(
        g: &Graph,
        node_cost: &[f64],
        selection: PathSelection,
    ) -> Result<Self, GraphError> {
        let n = g.node_count();
        if node_cost.len() < n {
            return Err(GraphError::NodeOutOfBounds {
                node: NodeId::new(node_cost.len()),
                node_count: n,
            });
        }
        let mut ap = AllPairsPaths {
            n,
            cost: vec![f64::INFINITY; n * n],
            hops: vec![UNREACHABLE_HOPS; n * n],
            parent: vec![None; n * n],
        };
        for src in 0..n {
            ap.single_source(g, node_cost, NodeId::new(src), selection);
        }
        Ok(ap)
    }

    fn single_source(
        &mut self,
        g: &Graph,
        node_cost: &[f64],
        src: NodeId,
        selection: PathSelection,
    ) {
        let base = src.index() * self.n;
        let cost = &mut self.cost[base..base + self.n];
        let hops = &mut self.hops[base..base + self.n];
        let parent = &mut self.parent[base..base + self.n];

        // Internally the source's own cost is part of every non-trivial
        // path; we seed with it and subtract nothing — only the diagonal
        // is special-cased to zero at the end.
        let mut heap: BinaryHeap<Reverse<(Key, usize)>> = BinaryHeap::new();
        cost[src.index()] = node_cost[src.index()];
        hops[src.index()] = 0;
        heap.push(Reverse((
            Key::new(selection, node_cost[src.index()], 0),
            src.index(),
        )));
        let mut settled = vec![false; self.n];
        while let Some(Reverse((key, u))) = heap.pop() {
            if settled[u] {
                continue;
            }
            // Stale entries carry a worse key than the settled value.
            if key != Key::new(selection, cost[u], hops[u]) {
                continue;
            }
            settled[u] = true;
            for v in g.neighbors(NodeId::new(u)) {
                let vi = v.index();
                if settled[vi] {
                    continue;
                }
                let cand_cost = cost[u] + node_cost[vi];
                let cand_hops = hops[u] + 1;
                let cand = Key::new(selection, cand_cost, cand_hops);
                let cur = Key::new(selection, cost[vi], hops[vi]);
                let better =
                    cand < cur || (cand == cur && parent[vi].is_some_and(|p| NodeId::new(u) < p));
                if better {
                    cost[vi] = cand_cost;
                    hops[vi] = cand_hops;
                    parent[vi] = Some(NodeId::new(u));
                    heap.push(Reverse((cand, vi)));
                }
            }
        }
        // Trivial path: no transmission, no cost.
        cost[src.index()] = 0.0;
    }

    /// Number of nodes the structure was computed for.
    pub fn node_count(&self) -> usize {
        self.n
    }

    /// Cost of the selected path from `u` to `v` (`f64::INFINITY` when
    /// unreachable, `0.0` on the diagonal).
    ///
    /// # Panics
    ///
    /// Panics if `u` or `v` is out of bounds.
    pub fn cost(&self, u: NodeId, v: NodeId) -> f64 {
        self.cost[u.index() * self.n + v.index()]
    }

    /// Hop length of the selected path (`None` when unreachable).
    ///
    /// # Panics
    ///
    /// Panics if `u` or `v` is out of bounds.
    pub fn hops(&self, u: NodeId, v: NodeId) -> Option<u32> {
        match self.hops[u.index() * self.n + v.index()] {
            UNREACHABLE_HOPS => None,
            h => Some(h),
        }
    }

    /// Reconstructs the selected path from `u` to `v`, endpoints
    /// included (`None` when unreachable). `path(u, u)` is `[u]`.
    ///
    /// # Panics
    ///
    /// Panics if `u` or `v` is out of bounds.
    pub fn path(&self, u: NodeId, v: NodeId) -> Option<Vec<NodeId>> {
        self.hops(u, v)?;
        let mut rev = vec![v];
        let mut cur = v;
        while cur != u {
            cur = self.parent[u.index() * self.n + cur.index()]
                .expect("reachable nodes have parents");
            rev.push(cur);
        }
        rev.reverse();
        Some(rev)
    }
}

/// Single-source shortest paths under a per-edge weight closure.
///
/// Returns `(cost, parent)` vectors indexed by node; unreachable nodes
/// have `f64::INFINITY` cost and no parent. Ties are broken by smaller
/// parent id, so the tree is deterministic.
///
/// Negative weights are not supported (weights model transmission costs,
/// which are nonnegative); a negative weight yields unspecified — but
/// memory-safe — results, as with any Dijkstra.
///
/// # Panics
///
/// Panics if `src` is out of bounds.
///
/// # Example
///
/// ```
/// use peercache_graph::{builders, paths, NodeId};
///
/// let g = builders::ring(4);
/// let (cost, parent) = paths::dijkstra_edge_weighted(&g, NodeId::new(0), |_, _| 1.0);
/// assert_eq!(cost[2], 2.0);
/// assert!(parent[0].is_none());
/// ```
pub fn dijkstra_edge_weighted<W>(
    g: &Graph,
    src: NodeId,
    weight: W,
) -> (Vec<f64>, Vec<Option<NodeId>>)
where
    W: Fn(NodeId, NodeId) -> f64,
{
    let n = g.node_count();
    let mut cost = vec![f64::INFINITY; n];
    let mut parent: Vec<Option<NodeId>> = vec![None; n];
    let mut settled = vec![false; n];
    let mut heap: BinaryHeap<Reverse<(Key, usize)>> = BinaryHeap::new();
    cost[src.index()] = 0.0;
    heap.push(Reverse((
        Key {
            primary: 0.0,
            secondary: 0.0,
        },
        src.index(),
    )));
    while let Some(Reverse((key, u))) = heap.pop() {
        if settled[u] || key.primary != cost[u] {
            continue;
        }
        settled[u] = true;
        for v in g.neighbors(NodeId::new(u)) {
            let vi = v.index();
            if settled[vi] {
                continue;
            }
            let cand = cost[u] + weight(NodeId::new(u), v);
            let better = cand < cost[vi]
                || (cand == cost[vi] && parent[vi].is_some_and(|p| NodeId::new(u) < p));
            if better {
                cost[vi] = cand;
                parent[vi] = Some(NodeId::new(u));
                heap.push(Reverse((
                    Key {
                        primary: cand,
                        secondary: 0.0,
                    },
                    vi,
                )));
            }
        }
    }
    (cost, parent)
}

/// Lexicographic Dijkstra key; which component leads depends on the
/// [`PathSelection`].
#[derive(Debug, Clone, Copy, PartialEq)]
struct Key {
    primary: f64,
    secondary: f64,
}

impl Key {
    fn new(selection: PathSelection, cost: f64, hops: u32) -> Self {
        match selection {
            PathSelection::FewestHops => Key {
                primary: f64::from(hops.min(UNREACHABLE_HOPS - 1)),
                secondary: cost,
            },
            PathSelection::MinCost => Key {
                primary: cost,
                secondary: f64::from(hops.min(UNREACHABLE_HOPS - 1)),
            },
        }
    }
}

impl Eq for Key {}

impl PartialOrd for Key {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Key {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.primary
            .total_cmp(&other.primary)
            .then(self.secondary.total_cmp(&other.secondary))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builders;

    fn unit_costs(g: &Graph) -> Vec<f64> {
        vec![1.0; g.node_count()]
    }

    #[test]
    fn bfs_hops_on_grid() {
        let g = builders::grid(3, 3);
        let hops = bfs_hops(&g, NodeId::new(0));
        assert_eq!(hops[0], Some(0));
        assert_eq!(hops[8], Some(4)); // opposite corner
    }

    #[test]
    fn bfs_hops_unreachable_is_none() {
        let g = Graph::new(2);
        let hops = bfs_hops(&g, NodeId::new(0));
        assert_eq!(hops[1], None);
    }

    #[test]
    fn k_hop_neighborhood_grows_with_k() {
        let g = builders::grid(5, 5);
        let center = NodeId::new(12);
        let one = k_hop_neighborhood(&g, center, 1);
        let two = k_hop_neighborhood(&g, center, 2);
        assert_eq!(one.len(), 4);
        assert_eq!(two.len(), 12);
        assert!(one.iter().all(|n| two.contains(n)));
    }

    #[test]
    fn k_zero_neighborhood_is_empty() {
        let g = builders::grid(3, 3);
        assert!(k_hop_neighborhood(&g, NodeId::new(4), 0).is_empty());
    }

    #[test]
    fn all_pairs_diagonal_is_zero() {
        let g = builders::grid(3, 3);
        let ap = AllPairsPaths::compute(&g, &unit_costs(&g), PathSelection::FewestHops).unwrap();
        for u in g.nodes() {
            assert_eq!(ap.cost(u, u), 0.0);
            assert_eq!(ap.hops(u, u), Some(0));
            assert_eq!(ap.path(u, u), Some(vec![u]));
        }
    }

    #[test]
    fn unit_cost_path_includes_both_endpoints() {
        let g = builders::path(4);
        let ap = AllPairsPaths::compute(&g, &unit_costs(&g), PathSelection::FewestHops).unwrap();
        // 0-1: both endpoints -> cost 2.
        assert_eq!(ap.cost(NodeId::new(0), NodeId::new(1)), 2.0);
        assert_eq!(ap.cost(NodeId::new(0), NodeId::new(3)), 4.0);
    }

    #[test]
    fn path_reconstruction_matches_hops() {
        let g = builders::grid(4, 4);
        let ap = AllPairsPaths::compute(&g, &unit_costs(&g), PathSelection::FewestHops).unwrap();
        for u in g.nodes() {
            for v in g.nodes() {
                let p = ap.path(u, v).expect("grid is connected");
                assert_eq!(p.len() as u32 - 1, ap.hops(u, v).unwrap());
                assert_eq!(*p.first().unwrap(), u);
                assert_eq!(*p.last().unwrap(), v);
                // Consecutive nodes are adjacent.
                for w in p.windows(2) {
                    assert!(g.contains_edge(w[0], w[1]));
                }
            }
        }
    }

    #[test]
    fn min_cost_routes_around_expensive_nodes() {
        // Square 0-1, 0-2, 1-3, 2-3 with node 1 very expensive.
        let g = Graph::from_edges(4, &[(0, 1), (0, 2), (1, 3), (2, 3)]).unwrap();
        let costs = vec![1.0, 100.0, 1.0, 1.0];
        let hop_first = AllPairsPaths::compute(&g, &costs, PathSelection::FewestHops).unwrap();
        let cost_first = AllPairsPaths::compute(&g, &costs, PathSelection::MinCost).unwrap();
        // Both routes are 2 hops; tie broken by cost, so both avoid node 1 here.
        assert_eq!(hop_first.cost(NodeId::new(0), NodeId::new(3)), 3.0);
        assert_eq!(cost_first.cost(NodeId::new(0), NodeId::new(3)), 3.0);
        // Force a detour: connect 0-3 through a longer cheap path.
        let g2 = Graph::from_edges(5, &[(0, 1), (1, 3), (0, 2), (2, 4), (4, 3)]).unwrap();
        let costs2 = vec![1.0, 100.0, 1.0, 1.0, 1.0];
        let hop2 = AllPairsPaths::compute(&g2, &costs2, PathSelection::FewestHops).unwrap();
        let cost2 = AllPairsPaths::compute(&g2, &costs2, PathSelection::MinCost).unwrap();
        // Hop-first goes 0-1-3 (cost 102); cost-first goes 0-2-4-3 (cost 4).
        assert_eq!(hop2.cost(NodeId::new(0), NodeId::new(3)), 102.0);
        assert_eq!(hop2.hops(NodeId::new(0), NodeId::new(3)), Some(2));
        assert_eq!(cost2.cost(NodeId::new(0), NodeId::new(3)), 4.0);
        assert_eq!(cost2.hops(NodeId::new(0), NodeId::new(3)), Some(3));
    }

    #[test]
    fn unreachable_pairs_report_infinity() {
        let g = Graph::new(3); // no edges
        let ap = AllPairsPaths::compute(&g, &[1.0; 3], PathSelection::FewestHops).unwrap();
        assert!(ap.cost(NodeId::new(0), NodeId::new(2)).is_infinite());
        assert_eq!(ap.hops(NodeId::new(0), NodeId::new(2)), None);
        assert_eq!(ap.path(NodeId::new(0), NodeId::new(2)), None);
    }

    #[test]
    fn cost_matrix_is_symmetric_for_symmetric_metrics() {
        let g = builders::grid(4, 4);
        let costs: Vec<f64> = (0..16).map(|i| 1.0 + (i % 5) as f64).collect();
        let ap = AllPairsPaths::compute(&g, &costs, PathSelection::MinCost).unwrap();
        for u in g.nodes() {
            for v in g.nodes() {
                assert!((ap.cost(u, v) - ap.cost(v, u)).abs() < 1e-9);
            }
        }
    }

    #[test]
    fn short_cost_slice_is_an_error() {
        let g = builders::grid(2, 2);
        let err = AllPairsPaths::compute(&g, &[1.0], PathSelection::FewestHops).unwrap_err();
        assert!(matches!(err, GraphError::NodeOutOfBounds { .. }));
    }
}
