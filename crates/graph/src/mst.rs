//! Minimum spanning trees and the union-find helper behind them.
//!
//! The Steiner-tree approximation ([`crate::steiner`]) builds MSTs twice:
//! once over the metric closure of the terminals, once over the expanded
//! subgraph. Both Kruskal (edge-list) and Prim (adjacency) variants are
//! provided; they are cross-checked against each other in tests.

use crate::{Graph, NodeId};

/// Disjoint-set (union-find) structure with path compression and union
/// by rank.
///
/// # Example
///
/// ```
/// use peercache_graph::mst::UnionFind;
///
/// let mut uf = UnionFind::new(4);
/// assert!(uf.union(0, 1));
/// assert!(!uf.union(1, 0)); // already joined
/// assert!(uf.connected(0, 1));
/// assert!(!uf.connected(0, 3));
/// ```
#[derive(Debug, Clone)]
pub struct UnionFind {
    parent: Vec<usize>,
    rank: Vec<u32>,
    sets: usize,
}

impl UnionFind {
    /// Creates `n` singleton sets.
    pub fn new(n: usize) -> Self {
        UnionFind {
            parent: (0..n).collect(),
            rank: vec![0; n],
            sets: n,
        }
    }

    /// Representative of the set containing `x`.
    ///
    /// # Panics
    ///
    /// Panics if `x >= n`.
    pub fn find(&mut self, x: usize) -> usize {
        if self.parent[x] != x {
            let root = self.find(self.parent[x]);
            self.parent[x] = root;
        }
        self.parent[x]
    }

    /// Merges the sets of `x` and `y`; returns `false` if already merged.
    ///
    /// # Panics
    ///
    /// Panics if `x` or `y` is `>= n`.
    pub fn union(&mut self, x: usize, y: usize) -> bool {
        let (rx, ry) = (self.find(x), self.find(y));
        if rx == ry {
            return false;
        }
        let (hi, lo) = if self.rank[rx] >= self.rank[ry] {
            (rx, ry)
        } else {
            (ry, rx)
        };
        self.parent[lo] = hi;
        if self.rank[hi] == self.rank[lo] {
            self.rank[hi] += 1;
        }
        self.sets -= 1;
        true
    }

    /// Returns `true` when `x` and `y` share a set.
    ///
    /// # Panics
    ///
    /// Panics if `x` or `y` is `>= n`.
    pub fn connected(&mut self, x: usize, y: usize) -> bool {
        self.find(x) == self.find(y)
    }

    /// Number of disjoint sets remaining.
    pub fn set_count(&self) -> usize {
        self.sets
    }
}

/// Kruskal's algorithm over an explicit weighted edge list.
///
/// Returns a minimum spanning *forest* (spanning tree per component) as
/// a subset of the input edges. Ties are broken deterministically by
/// `(weight, u, v)`.
///
/// # Example
///
/// ```
/// use peercache_graph::mst;
///
/// let edges = [(0, 1, 1.0), (1, 2, 2.0), (0, 2, 10.0)];
/// let tree = mst::kruskal(3, &edges);
/// let total: f64 = tree.iter().map(|e| e.2).sum();
/// assert_eq!(total, 3.0);
/// ```
pub fn kruskal(n: usize, edges: &[(usize, usize, f64)]) -> Vec<(usize, usize, f64)> {
    let mut sorted: Vec<(usize, usize, f64)> = edges.to_vec();
    sorted.sort_by(|a, b| a.2.total_cmp(&b.2).then(a.0.cmp(&b.0)).then(a.1.cmp(&b.1)));
    let mut uf = UnionFind::new(n);
    let mut out = Vec::new();
    for (u, v, w) in sorted {
        if uf.union(u, v) {
            out.push((u, v, w));
            if out.len() + 1 == n {
                break;
            }
        }
    }
    out
}

/// Prim's algorithm on a [`Graph`] with a per-edge weight closure.
///
/// Returns the MST edges when the graph is connected, `None` otherwise.
/// The run starts from node 0 and breaks ties by smallest endpoint ids.
///
/// # Example
///
/// ```
/// use peercache_graph::{builders, mst};
///
/// let g = builders::grid(3, 3);
/// let tree = mst::prim(&g, |_, _| 1.0).expect("grid is connected");
/// assert_eq!(tree.len(), g.node_count() - 1);
/// ```
pub fn prim<W>(g: &Graph, weight: W) -> Option<Vec<(NodeId, NodeId)>>
where
    W: Fn(NodeId, NodeId) -> f64,
{
    let n = g.node_count();
    if n == 0 {
        return Some(Vec::new());
    }
    let mut in_tree = vec![false; n];
    let mut best: Vec<Option<(f64, NodeId)>> = vec![None; n];
    let mut out = Vec::with_capacity(n.saturating_sub(1));
    in_tree[0] = true;
    for v in g.neighbors(NodeId::new(0)) {
        best[v.index()] = Some((weight(NodeId::new(0), v), NodeId::new(0)));
    }
    for _ in 1..n {
        // Deterministic linear scan keeps the implementation simple; the
        // planners only call Prim on small facility subgraphs.
        let mut pick: Option<(f64, usize)> = None;
        for v in 0..n {
            if in_tree[v] {
                continue;
            }
            if let Some((w, _)) = best[v] {
                if pick.is_none_or(|(pw, pv)| w < pw || (w == pw && v < pv)) {
                    pick = Some((w, v));
                }
            }
        }
        let (_, v) = pick?;
        let (_, from) = best[v].expect("picked nodes have an attachment");
        in_tree[v] = true;
        out.push((from, NodeId::new(v)));
        for u in g.neighbors(NodeId::new(v)) {
            if in_tree[u.index()] {
                continue;
            }
            let w = weight(NodeId::new(v), u);
            if best[u.index()].is_none_or(|(bw, _)| w < bw) {
                best[u.index()] = Some((w, NodeId::new(v)));
            }
        }
    }
    Some(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builders;

    #[test]
    fn union_find_tracks_set_count() {
        let mut uf = UnionFind::new(5);
        assert_eq!(uf.set_count(), 5);
        uf.union(0, 1);
        uf.union(2, 3);
        uf.union(0, 3);
        assert_eq!(uf.set_count(), 2);
        assert!(uf.connected(1, 2));
        assert!(!uf.connected(0, 4));
    }

    #[test]
    fn kruskal_finds_cheap_tree() {
        let edges = [
            (0, 1, 4.0),
            (0, 2, 1.0),
            (1, 2, 2.0),
            (1, 3, 5.0),
            (2, 3, 8.0),
        ];
        let tree = kruskal(4, &edges);
        assert_eq!(tree.len(), 3);
        let total: f64 = tree.iter().map(|e| e.2).sum();
        assert_eq!(total, 1.0 + 2.0 + 5.0);
    }

    #[test]
    fn kruskal_on_disconnected_graph_returns_forest() {
        let edges = [(0, 1, 1.0), (2, 3, 1.0)];
        let forest = kruskal(4, &edges);
        assert_eq!(forest.len(), 2);
    }

    #[test]
    fn prim_matches_kruskal_total_weight() {
        let g = builders::grid(4, 4);
        // Deterministic pseudo-random weights from edge endpoints.
        let weight = |u: NodeId, v: NodeId| {
            let (a, b) = (u.index().min(v.index()), u.index().max(v.index()));
            ((a * 7 + b * 13) % 11) as f64 + 1.0
        };
        let prim_tree = prim(&g, weight).unwrap();
        let edges: Vec<(usize, usize, f64)> = g
            .edges()
            .map(|(u, v)| (u.index(), v.index(), weight(u, v)))
            .collect();
        let kruskal_tree = kruskal(g.node_count(), &edges);
        let pw: f64 = prim_tree.iter().map(|&(u, v)| weight(u, v)).sum();
        let kw: f64 = kruskal_tree.iter().map(|e| e.2).sum();
        assert!((pw - kw).abs() < 1e-9);
    }

    #[test]
    fn prim_on_disconnected_graph_is_none() {
        let g = Graph::new(3);
        assert_eq!(prim(&g, |_, _| 1.0), None);
    }

    #[test]
    fn prim_on_empty_and_singleton() {
        assert_eq!(prim(&Graph::new(0), |_, _| 1.0), Some(vec![]));
        assert_eq!(prim(&Graph::new(1), |_, _| 1.0), Some(vec![]));
    }

    use crate::Graph;
}
