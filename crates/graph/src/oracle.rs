//! Landmark distance oracle — O(L·N) state replacing O(N²) all-pairs
//! storage for *cross-region* cost queries.
//!
//! [`LandmarkOracle`] selects `L` landmarks deterministically (seeded
//! start, then farthest-point refinement in the hop metric, so a prefix
//! of a larger selection is always a valid smaller selection), and
//! stores two vectors per landmark: BFS hop distances and node-weighted
//! shortest-path distances.
//!
//! # Bound semantics and the error model
//!
//! All cost bounds are stated on the **min-cost metric**: the cheapest
//! node-weighted path cost between `u` and `v`, endpoints included —
//! exactly [`AllPairsPaths::cost`](crate::paths::AllPairsPaths::cost)
//! under [`PathSelection::MinCost`](crate::paths::PathSelection). That
//! quantity is a metric (node weights are non-negative), so the
//! triangle inequality gives, for every landmark `l` with closed
//! distances `Δ(x, y)` (where `Δ(x, x) = w_x`):
//!
//! * `cost(u,v) ≤ Δ(u,l) + Δ(l,v) − w_l`   (concatenation counts `l` once)
//! * `cost(u,v) ≥ Δ(u,l) − Δ(l,v) + w_v`   (and symmetrically)
//!
//! Under `FewestHops` — the planners' selection — the *lower* bound
//! still holds (a hop-shortest path can only cost at least the cheapest
//! path), while the upper bound degrades to an estimate: the
//! hop-shortest path may be forced through heavier nodes. The scoped
//! contention store therefore uses exact block state wherever available
//! and treats the oracle value as a documented estimate across regions;
//! the property suite pins the exact bracketing on `MinCost` and the
//! lower-bound side on `FewestHops`.
//!
//! The **exact fallback** [`LandmarkOracle::exact_in_ball`] answers
//! pairs within a `k`-hop ball precisely (in `FewestHops` semantics) by
//! a bounded BFS-layer sweep: every hop-shortest path between nodes at
//! hop distance `h ≤ k` stays inside the ball of radius `k`, so the
//! restriction loses nothing.

use crate::graph::{Graph, NodeId};
use crate::paths::bfs_hops;
use crate::regions::splitmix64;
use crate::GraphError;
use std::cmp::Reverse;
use std::collections::BinaryHeap;

/// Hop sentinel for unreachable nodes in the landmark hop vectors.
const FAR: u32 = u32::MAX;

/// A deterministic landmark/sketch distance oracle over a node-weighted
/// graph. See the module docs for the bound semantics.
#[derive(Debug, Clone)]
pub struct LandmarkOracle {
    n: usize,
    landmarks: Vec<NodeId>,
    /// Per landmark: closed node-weighted min-cost distance to every
    /// node (`Δ(l, v)`, both endpoints counted; `Δ(l, l) = w_l`).
    dist: Vec<Vec<f64>>,
    /// Per landmark: BFS hop distance to every node ([`FAR`] when
    /// unreachable).
    hops: Vec<Vec<u32>>,
    node_cost: Vec<f64>,
}

impl LandmarkOracle {
    /// Builds the oracle with `count` landmarks (clamped to `1..=n`)
    /// over `g` with per-node costs `node_cost`.
    ///
    /// # Errors
    ///
    /// Returns [`GraphError::NodeOutOfBounds`] when `node_cost` is
    /// shorter than the node count.
    pub fn build(
        g: &Graph,
        node_cost: &[f64],
        count: usize,
        seed: u64,
    ) -> Result<Self, GraphError> {
        let n = g.node_count();
        if node_cost.len() < n {
            return Err(GraphError::NodeOutOfBounds {
                node: NodeId::new(node_cost.len()),
                node_count: n,
            });
        }
        let landmarks = select_landmarks(g, count, seed);
        let mut oracle = LandmarkOracle {
            n,
            landmarks,
            dist: Vec::new(),
            hops: Vec::new(),
            node_cost: node_cost[..n].to_vec(),
        };
        oracle.refresh(g, node_cost)?;
        Ok(oracle)
    }

    /// Recomputes the per-landmark vectors for updated node costs,
    /// keeping the landmark *selection* fixed (it depends only on the
    /// hop metric, which node-cost churn does not change).
    ///
    /// # Errors
    ///
    /// Returns [`GraphError::NodeOutOfBounds`] when `node_cost` is
    /// shorter than the node count.
    pub fn refresh(&mut self, g: &Graph, node_cost: &[f64]) -> Result<(), GraphError> {
        if node_cost.len() < self.n || g.node_count() != self.n {
            return Err(GraphError::NodeOutOfBounds {
                node: NodeId::new(node_cost.len().min(g.node_count())),
                node_count: self.n,
            });
        }
        self.node_cost.clear();
        self.node_cost.extend_from_slice(&node_cost[..self.n]);
        self.dist = self
            .landmarks
            .iter()
            .map(|&l| node_weighted_closed_dist(g, &self.node_cost, l))
            .collect();
        self.hops = self
            .landmarks
            .iter()
            .map(|&l| {
                bfs_hops(g, l)
                    .into_iter()
                    .map(|h| h.unwrap_or(FAR))
                    .collect()
            })
            .collect();
        Ok(())
    }

    /// The selected landmarks, in selection order (a prefix is itself a
    /// valid farthest-point selection).
    #[must_use]
    pub fn landmarks(&self) -> &[NodeId] {
        &self.landmarks
    }

    /// Lower bound on the min-cost pair cost (valid for `FewestHops`
    /// too); `0.0` on the diagonal, `f64::INFINITY` across components.
    ///
    /// # Panics
    ///
    /// Panics if `u` or `v` is out of bounds.
    #[must_use]
    pub fn lower_bound(&self, u: NodeId, v: NodeId) -> f64 {
        if u == v {
            return 0.0;
        }
        let (cu, cv) = (self.node_cost[u.index()], self.node_cost[v.index()]);
        let mut lo = cu + cv;
        for d in &self.dist {
            let (du, dv) = (d[u.index()], d[v.index()]);
            match (du.is_finite(), dv.is_finite()) {
                (true, true) => {
                    lo = lo.max(du - dv + cv).max(dv - du + cu);
                }
                (false, false) => {}
                // The landmark reaches exactly one endpoint: the pair
                // straddles components.
                _ => return f64::INFINITY,
            }
        }
        lo
    }

    /// Upper bound on the min-cost pair cost (an *estimate* under
    /// `FewestHops`); `0.0` on the diagonal.
    ///
    /// # Panics
    ///
    /// Panics if `u` or `v` is out of bounds.
    #[must_use]
    pub fn upper_bound(&self, u: NodeId, v: NodeId) -> f64 {
        if u == v {
            return 0.0;
        }
        let mut hi = f64::INFINITY;
        for (li, d) in self.dist.iter().enumerate() {
            let (du, dv) = (d[u.index()], d[v.index()]);
            if du.is_finite() && dv.is_finite() {
                hi = hi.min(du + dv - self.node_cost[self.landmarks[li].index()]);
            }
        }
        hi
    }

    /// The oracle's point estimate for a cross-ball pair cost: the
    /// upper bound (conservative — it never undersells a detour).
    ///
    /// # Panics
    ///
    /// Panics if `u` or `v` is out of bounds.
    #[must_use]
    pub fn estimate(&self, u: NodeId, v: NodeId) -> f64 {
        self.upper_bound(u, v)
    }

    /// Upper bound on the hop distance (`None` when every landmark
    /// shows the pair disconnected or no landmark reaches both).
    ///
    /// # Panics
    ///
    /// Panics if `u` or `v` is out of bounds.
    #[must_use]
    pub fn hops_upper(&self, u: NodeId, v: NodeId) -> Option<u32> {
        if u == v {
            return Some(0);
        }
        let mut best: Option<u32> = None;
        for h in &self.hops {
            let (hu, hv) = (h[u.index()], h[v.index()]);
            match (hu, hv) {
                (FAR, FAR) => {}
                (FAR, _) | (_, FAR) => return None,
                _ => {
                    let through = hu.saturating_add(hv);
                    best = Some(best.map_or(through, |b| b.min(through)));
                }
            }
        }
        best
    }

    /// Lower bound on the hop distance (`0` when no landmark separates
    /// the pair).
    ///
    /// # Panics
    ///
    /// Panics if `u` or `v` is out of bounds.
    #[must_use]
    pub fn hops_lower(&self, u: NodeId, v: NodeId) -> u32 {
        if u == v {
            return 0;
        }
        let mut lo = 1u32;
        for h in &self.hops {
            let (hu, hv) = (h[u.index()], h[v.index()]);
            if hu != FAR && hv != FAR {
                lo = lo.max(hu.abs_diff(hv));
            }
        }
        lo
    }

    /// Exact `FewestHops` pair cost when `v` lies within the `k`-hop
    /// ball of `u` (`None` otherwise): a bounded BFS plus a layer-order
    /// DP over the ball, matching the all-pairs tie-break (lexicographic
    /// minimum of interior cost then parent id) bit for bit.
    ///
    /// # Panics
    ///
    /// Panics if `u` or `v` is out of bounds for `g`, or `node_cost` is
    /// shorter than the node count.
    #[must_use]
    pub fn exact_in_ball(
        g: &Graph,
        node_cost: &[f64],
        u: NodeId,
        v: NodeId,
        k: u32,
    ) -> Option<f64> {
        if u == v {
            return Some(0.0);
        }
        // Bounded BFS from `u`: hop labels plus visit order (layered).
        let mut hops = vec![FAR; g.node_count()];
        hops[u.index()] = 0;
        let mut order: Vec<NodeId> = vec![u];
        let mut head = 0usize;
        while head < order.len() {
            let x = order[head];
            head += 1;
            if hops[x.index()] == k {
                continue;
            }
            for y in g.neighbors(x) {
                if hops[y.index()] == FAR {
                    hops[y.index()] = hops[x.index()] + 1;
                    order.push(y);
                }
            }
        }
        if hops[v.index()] == FAR {
            return None;
        }
        // Layer DP: interior[x] = cheapest interior cost of a
        // hop-shortest u→x path (nodes strictly between u and x).
        let mut interior = vec![f64::INFINITY; g.node_count()];
        interior[u.index()] = 0.0;
        for &x in order.iter().skip(1) {
            let hx = hops[x.index()];
            let mut best = f64::INFINITY;
            let mut best_parent: Option<NodeId> = None;
            for p in g.neighbors(x) {
                if hops[p.index()] == FAR || hops[p.index()] + 1 != hx {
                    continue;
                }
                let step = if p == u { 0.0 } else { node_cost[p.index()] };
                let cand = interior[p.index()] + step;
                let better = match best_parent {
                    None => true,
                    Some(bp) => match cand.total_cmp(&best) {
                        std::cmp::Ordering::Less => true,
                        std::cmp::Ordering::Equal => p < bp,
                        std::cmp::Ordering::Greater => false,
                    },
                };
                if better {
                    best = cand;
                    best_parent = Some(p);
                }
            }
            interior[x.index()] = best;
        }
        Some(interior[v.index()] + node_cost[u.index()] + node_cost[v.index()])
    }

    /// Bytes of heap state the oracle holds (landmark vectors + node
    /// costs) — the locality stack's memory accounting.
    #[must_use]
    pub fn state_bytes(&self) -> u64 {
        let per_landmark = (self.n * (8 + 4)) as u64;
        per_landmark * self.landmarks.len() as u64
            + (self.node_cost.len() * 8) as u64
            + (self.landmarks.len() * 8) as u64
    }
}

/// Seeded farthest-point landmark selection in the hop metric. The
/// first landmark is seed-derived; each further landmark maximizes the
/// minimum hop distance to the chosen set (unreachable counts as
/// farthest, ties break toward the smaller id), so prefixes of the
/// sequence are themselves valid selections.
fn select_landmarks(g: &Graph, count: usize, seed: u64) -> Vec<NodeId> {
    let n = g.node_count();
    if n == 0 {
        return Vec::new();
    }
    let count = count.clamp(1, n);
    let first = NodeId::new((splitmix64(seed) % n as u64) as usize);
    let mut chosen = vec![first];
    let mut min_hops: Vec<u32> = bfs_hops(g, first)
        .into_iter()
        .map(|h| h.unwrap_or(FAR))
        .collect();
    while chosen.len() < count {
        let mut best = NodeId::new(0);
        let mut best_d = 0u32;
        let mut found = false;
        for (u, &d) in min_hops.iter().enumerate() {
            if d == 0 {
                continue; // already a landmark
            }
            if !found || d > best_d {
                best = NodeId::new(u);
                best_d = d;
                found = true;
            }
        }
        if !found {
            break; // n < count after dedup — cannot happen with clamp
        }
        chosen.push(best);
        for (u, h) in bfs_hops(g, best).into_iter().enumerate() {
            let h = h.unwrap_or(FAR);
            if h < min_hops[u] {
                min_hops[u] = h;
            }
        }
    }
    chosen
}

/// Single-source node-weighted shortest distances, *closed* form: the
/// returned `d[v]` counts both endpoints (`d[src] = w_src`), matching
/// the `Δ` of the module docs. Plain binary-heap Dijkstra with
/// `total_cmp` ordering and node-id tie-breaks — deterministic.
fn node_weighted_closed_dist(g: &Graph, node_cost: &[f64], src: NodeId) -> Vec<f64> {
    let n = g.node_count();
    let mut d = vec![f64::INFINITY; n];
    let mut settled = vec![false; n];
    d[src.index()] = node_cost[src.index()];
    let mut heap: BinaryHeap<Reverse<(OrdF64, usize)>> = BinaryHeap::new();
    heap.push(Reverse((OrdF64(d[src.index()]), src.index())));
    while let Some(Reverse((OrdF64(du), u))) = heap.pop() {
        if settled[u] {
            continue;
        }
        if du > d[u] {
            continue; // stale entry
        }
        settled[u] = true;
        for v in g.neighbors(NodeId::new(u)) {
            let vi = v.index();
            let cand = du + node_cost[vi];
            if cand < d[vi] {
                d[vi] = cand;
                heap.push(Reverse((OrdF64(cand), vi)));
            }
        }
    }
    d
}

/// Total-order wrapper so finite path distances can live in a heap.
#[derive(Debug, Clone, Copy, PartialEq)]
struct OrdF64(f64);

impl Eq for OrdF64 {}

impl PartialOrd for OrdF64 {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for OrdF64 {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.0.total_cmp(&other.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builders;
    use crate::paths::{AllPairsPaths, Parallelism, PathSelection};

    fn weights(n: usize) -> Vec<f64> {
        (0..n).map(|i| 1.0 + (i % 5) as f64 * 0.25).collect()
    }

    #[test]
    fn bounds_bracket_min_cost_metric_on_a_grid() {
        let g = builders::grid(5, 5);
        let w = weights(25);
        let ap =
            AllPairsPaths::compute_with(&g, &w, PathSelection::MinCost, Parallelism::Sequential)
                .unwrap();
        let oracle = LandmarkOracle::build(&g, &w, 4, 9).unwrap();
        for u in g.nodes() {
            for v in g.nodes() {
                let exact = ap.cost(u, v);
                let lo = oracle.lower_bound(u, v);
                let hi = oracle.upper_bound(u, v);
                assert!(
                    lo <= exact + 1e-9 && exact <= hi + 1e-9,
                    "bracket broken for ({u},{v}): {lo} !<= {exact} !<= {hi}"
                );
            }
        }
    }

    #[test]
    fn landmark_prefixes_are_stable() {
        let g = builders::grid(6, 6);
        let w = weights(36);
        let small = LandmarkOracle::build(&g, &w, 3, 4).unwrap();
        let large = LandmarkOracle::build(&g, &w, 8, 4).unwrap();
        assert_eq!(small.landmarks(), &large.landmarks()[..3]);
    }

    #[test]
    fn exact_in_ball_matches_all_pairs_fewest_hops() {
        let g = builders::grid(5, 5);
        let w = weights(25);
        let ap =
            AllPairsPaths::compute_with(&g, &w, PathSelection::FewestHops, Parallelism::Sequential)
                .unwrap();
        for u in g.nodes() {
            for v in g.nodes() {
                let exact = LandmarkOracle::exact_in_ball(&g, &w, u, v, 3);
                match ap.hops(u, v) {
                    Some(h) if h <= 3 => {
                        let e = exact.expect("pair inside the ball");
                        assert_eq!(e.to_bits(), ap.cost(u, v).to_bits(), "({u},{v})");
                    }
                    _ => assert!(exact.is_none(), "({u},{v}) outside the ball"),
                }
            }
        }
    }

    #[test]
    fn hop_bounds_bracket_bfs() {
        let g = builders::grid(4, 6);
        let w = weights(24);
        let oracle = LandmarkOracle::build(&g, &w, 3, 2).unwrap();
        for u in g.nodes() {
            let hops = crate::paths::bfs_hops(&g, u);
            for v in g.nodes() {
                let h = hops[v.index()].unwrap();
                assert!(oracle.hops_lower(u, v) <= h);
                assert!(h <= oracle.hops_upper(u, v).unwrap());
            }
        }
    }

    #[test]
    fn disconnected_pairs_report_infinity() {
        let mut g = Graph::new(4);
        g.add_edge(NodeId::new(0), NodeId::new(1)).unwrap();
        g.add_edge(NodeId::new(2), NodeId::new(3)).unwrap();
        let w = vec![1.0; 4];
        let oracle = LandmarkOracle::build(&g, &w, 2, 0).unwrap();
        let (a, b) = (NodeId::new(0), NodeId::new(2));
        assert!(oracle.lower_bound(a, b).is_infinite() || oracle.upper_bound(a, b).is_infinite());
    }

    #[test]
    fn refresh_tracks_new_node_costs() {
        let g = builders::grid(4, 4);
        let w0 = vec![1.0; 16];
        let mut oracle = LandmarkOracle::build(&g, &w0, 4, 1).unwrap();
        let before = oracle.upper_bound(NodeId::new(0), NodeId::new(15));
        let w1: Vec<f64> = (0..16).map(|i| 1.0 + i as f64).collect();
        oracle.refresh(&g, &w1).unwrap();
        let after = oracle.upper_bound(NodeId::new(0), NodeId::new(15));
        assert!(after > before);
        assert!(oracle.state_bytes() > 0);
    }
}
