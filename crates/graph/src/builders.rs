//! Topology generators for the evaluation scenarios of the paper.
//!
//! The paper evaluates on two families: **grid networks** (each node is
//! connected to its four lattice neighbors) and **random networks**
//! (nodes within a communication range are connected, with a guarantee
//! that the result is a connected graph). The remaining generators are
//! standard shapes useful in unit tests and examples.

use rand::Rng;

use crate::components;
use crate::{Graph, NodeId};

/// Builds a `rows x cols` grid network.
///
/// Node `(r, c)` has index `r * cols + c`; nodes are connected to their
/// horizontal and vertical lattice neighbors, so interior nodes have
/// degree 4 as in the paper's grid scenario.
///
/// A zero-sized dimension produces an empty graph.
///
/// # Example
///
/// ```
/// use peercache_graph::builders;
///
/// let g = builders::grid(6, 6);
/// assert_eq!(g.node_count(), 36);
/// // 2 * 6 * 5 lattice edges
/// assert_eq!(g.edge_count(), 60);
/// ```
pub fn grid(rows: usize, cols: usize) -> Graph {
    let mut g = Graph::new(rows * cols);
    for r in 0..rows {
        for c in 0..cols {
            let id = r * cols + c;
            if c + 1 < cols {
                g.add_edge(NodeId::new(id), NodeId::new(id + 1))
                    .expect("grid edges are in bounds");
            }
            if r + 1 < rows {
                g.add_edge(NodeId::new(id), NodeId::new(id + cols))
                    .expect("grid edges are in bounds");
            }
        }
    }
    g
}

/// Builds a path graph `0 - 1 - ... - (n-1)`.
pub fn path(n: usize) -> Graph {
    let mut g = Graph::new(n);
    for i in 1..n {
        g.add_edge(NodeId::new(i - 1), NodeId::new(i))
            .expect("path edges are in bounds");
    }
    g
}

/// Builds a ring graph (a path with the ends joined).
///
/// Rings with fewer than 3 nodes degenerate into a path, since the graph
/// is simple.
pub fn ring(n: usize) -> Graph {
    let mut g = path(n);
    if n >= 3 {
        g.add_edge(NodeId::new(n - 1), NodeId::new(0))
            .expect("ring closure edge is in bounds");
    }
    g
}

/// Builds a star graph with node 0 at the center.
pub fn star(n: usize) -> Graph {
    let mut g = Graph::new(n);
    for i in 1..n {
        g.add_edge(NodeId::new(0), NodeId::new(i))
            .expect("star edges are in bounds");
    }
    g
}

/// Builds the complete graph on `n` nodes.
pub fn complete(n: usize) -> Graph {
    let mut g = Graph::new(n);
    for u in 0..n {
        for v in (u + 1)..n {
            g.add_edge(NodeId::new(u), NodeId::new(v))
                .expect("complete-graph edges are in bounds");
        }
    }
    g
}

/// Builds a connected random geometric network.
///
/// This is the paper's "random network" model: `n` nodes are placed
/// uniformly at random in the unit square and two nodes are connected
/// when their Euclidean distance is at most `range`. If the resulting
/// graph is disconnected, the components are stitched together by linking
/// each component to its geometrically nearest already-connected node —
/// the standard repair that keeps the topology plausible (shortest
/// possible extra links) while guaranteeing connectivity, which the
/// paper requires ("make sure the random network is a connected graph").
///
/// # Example
///
/// ```
/// use peercache_graph::{builders, components};
/// use rand::SeedableRng;
///
/// let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(7);
/// let g = builders::random_geometric(50, 0.2, &mut rng);
/// assert_eq!(g.node_count(), 50);
/// assert!(components::is_connected(&g));
/// ```
pub fn random_geometric<R: Rng + ?Sized>(n: usize, range: f64, rng: &mut R) -> Graph {
    let positions: Vec<(f64, f64)> = (0..n)
        .map(|_| (rng.gen::<f64>(), rng.gen::<f64>()))
        .collect();
    let mut g = Graph::new(n);
    let range2 = range * range;
    for u in 0..n {
        for v in (u + 1)..n {
            if dist2(positions[u], positions[v]) <= range2 {
                g.add_edge(NodeId::new(u), NodeId::new(v))
                    .expect("geometric edges are in bounds");
            }
        }
    }
    connect_components_by_distance(&mut g, &positions);
    g
}

/// Builds a connected random geometric network with spatial bucketing —
/// the same model as [`random_geometric`] (identical positions for the
/// same RNG stream and identical edge set), but neighbor search goes
/// through a `range`-sized cell grid instead of the O(n²) pair scan, so
/// 100k-node instances build in well under a second.
///
/// Connectivity repair differs from the dense builder's (it links each
/// stray component to the geometrically nearest node of the largest
/// component rather than re-scanning all pairs), so the *repair* edges
/// can differ when the raw graph is disconnected; with a sensible
/// `range` the raw graph is connected and the two builders agree edge
/// for edge.
pub fn random_geometric_bucketed<R: Rng + ?Sized>(n: usize, range: f64, rng: &mut R) -> Graph {
    let positions: Vec<(f64, f64)> = (0..n)
        .map(|_| (rng.gen::<f64>(), rng.gen::<f64>()))
        .collect();
    let mut g = Graph::new(n);
    if n == 0 {
        return g;
    }
    let range = range.max(f64::MIN_POSITIVE);
    let range2 = range * range;
    let cells_per_side = (1.0 / range).floor().max(1.0) as u32;
    let cell_of = |p: (f64, f64)| -> (u32, u32) {
        let clamp = |x: f64| ((x * cells_per_side as f64) as u32).min(cells_per_side - 1);
        (clamp(p.0), clamp(p.1))
    };
    // BTreeMap keeps the bucket walk deterministic (lint rule D1).
    let mut buckets: std::collections::BTreeMap<(u32, u32), Vec<u32>> =
        std::collections::BTreeMap::new();
    for (i, &p) in positions.iter().enumerate() {
        buckets.entry(cell_of(p)).or_default().push(i as u32);
    }
    for u in 0..n {
        let (cx, cy) = cell_of(positions[u]);
        for dx in -1i64..=1 {
            for dy in -1i64..=1 {
                let nx = cx as i64 + dx;
                let ny = cy as i64 + dy;
                if nx < 0 || ny < 0 || nx >= cells_per_side as i64 || ny >= cells_per_side as i64 {
                    continue;
                }
                let Some(cell) = buckets.get(&(nx as u32, ny as u32)) else {
                    continue;
                };
                for &v in cell {
                    let v = v as usize;
                    if v > u && dist2(positions[u], positions[v]) <= range2 {
                        g.add_edge(NodeId::new(u), NodeId::new(v))
                            .expect("geometric edges are in bounds");
                    }
                }
            }
        }
    }
    // Repair: attach every stray component to the geometrically nearest
    // node of the largest component (ties toward smaller ids). Linear
    // in n per stray component — strays are rare at sensible ranges.
    let comps = components::connected_components(&g);
    if comps.len() > 1 {
        let main_idx = comps
            .iter()
            .enumerate()
            .max_by_key(|(i, c)| (c.len(), std::cmp::Reverse(*i)))
            .map(|(i, _)| i)
            .unwrap_or(0);
        let mut in_main = vec![false; n];
        for &m in &comps[main_idx] {
            in_main[m.index()] = true;
        }
        for (ci, comp) in comps.iter().enumerate() {
            if ci == main_idx {
                continue;
            }
            let mut best: Option<(f64, NodeId, NodeId)> = None;
            for &u in comp {
                for v in (0..n).map(NodeId::new).filter(|v| in_main[v.index()]) {
                    let d = dist2(positions[u.index()], positions[v.index()]);
                    let better = match best {
                        None => true,
                        Some((bd, bu, bv)) => match d.total_cmp(&bd) {
                            std::cmp::Ordering::Less => true,
                            std::cmp::Ordering::Equal => (u, v) < (bu, bv),
                            std::cmp::Ordering::Greater => false,
                        },
                    };
                    if better {
                        best = Some((d, u, v));
                    }
                }
            }
            let (_, u, v) = best.expect("main component is non-empty");
            g.add_edge(u, v).expect("repair edge is in bounds");
            for &m in comp {
                in_main[m.index()] = true;
            }
        }
    }
    g
}

/// Builds a connected Erdős–Rényi graph `G(n, p)`.
///
/// Used for stress-testing the planners on irregular topologies. As with
/// [`random_geometric`], disconnected results are repaired, here by
/// adding a random edge between separate components.
pub fn erdos_renyi_connected<R: Rng + ?Sized>(n: usize, p: f64, rng: &mut R) -> Graph {
    let mut g = Graph::new(n);
    for u in 0..n {
        for v in (u + 1)..n {
            if rng.gen::<f64>() < p {
                g.add_edge(NodeId::new(u), NodeId::new(v))
                    .expect("random edges are in bounds");
            }
        }
    }
    // Repair connectivity: link each non-root component to a random node
    // of the first component.
    loop {
        let comps = components::connected_components(&g);
        if comps.len() <= 1 {
            break;
        }
        let a = comps[0][rng.gen_range(0..comps[0].len())];
        let b = comps[1][rng.gen_range(0..comps[1].len())];
        g.add_edge(a, b).expect("repair edge is in bounds");
    }
    g
}

fn dist2(a: (f64, f64), b: (f64, f64)) -> f64 {
    let dx = a.0 - b.0;
    let dy = a.1 - b.1;
    dx * dx + dy * dy
}

fn connect_components_by_distance(g: &mut Graph, positions: &[(f64, f64)]) {
    loop {
        let comps = components::connected_components(g);
        if comps.len() <= 1 {
            return;
        }
        // Join the first component to the globally nearest outside node.
        let in_first: Vec<bool> = {
            let mut v = vec![false; g.node_count()];
            for &n in &comps[0] {
                v[n.index()] = true;
            }
            v
        };
        let mut best: Option<(f64, NodeId, NodeId)> = None;
        for u in g.nodes().filter(|u| in_first[u.index()]) {
            for v in g.nodes().filter(|v| !in_first[v.index()]) {
                let d = dist2(positions[u.index()], positions[v.index()]);
                if best.is_none_or(|(bd, _, _)| d < bd) {
                    best = Some((d, u, v));
                }
            }
        }
        let (_, u, v) = best.expect("two components imply a candidate pair");
        g.add_edge(u, v).expect("repair edge is in bounds");
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::components::is_connected;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    #[test]
    fn grid_dimensions_and_degrees() {
        let g = grid(4, 5);
        assert_eq!(g.node_count(), 20);
        assert_eq!(g.edge_count(), 4 * 4 + 3 * 5);
        // Corner, edge, interior degrees.
        assert_eq!(g.degree(NodeId::new(0)), 2);
        assert_eq!(g.degree(NodeId::new(1)), 3);
        assert_eq!(g.degree(NodeId::new(6)), 4);
    }

    #[test]
    fn grid_empty_dimensions() {
        assert_eq!(grid(0, 5).node_count(), 0);
        assert_eq!(grid(3, 0).node_count(), 0);
    }

    #[test]
    fn path_and_ring_shapes() {
        let p = path(5);
        assert_eq!(p.edge_count(), 4);
        let r = ring(5);
        assert_eq!(r.edge_count(), 5);
        for n in r.nodes() {
            assert_eq!(r.degree(n), 2);
        }
        // Tiny rings degenerate to paths.
        assert_eq!(ring(2).edge_count(), 1);
        assert_eq!(ring(1).edge_count(), 0);
    }

    #[test]
    fn star_and_complete_shapes() {
        let s = star(6);
        assert_eq!(s.degree(NodeId::new(0)), 5);
        assert_eq!(s.edge_count(), 5);
        let k = complete(5);
        assert_eq!(k.edge_count(), 10);
        for n in k.nodes() {
            assert_eq!(k.degree(n), 4);
        }
    }

    #[test]
    fn random_geometric_is_connected_even_with_tiny_range() {
        let mut rng = ChaCha8Rng::seed_from_u64(42);
        let g = random_geometric(40, 0.01, &mut rng);
        assert_eq!(g.node_count(), 40);
        assert!(is_connected(&g));
    }

    #[test]
    fn random_geometric_large_range_is_dense() {
        let mut rng = ChaCha8Rng::seed_from_u64(1);
        let g = random_geometric(10, 2.0, &mut rng);
        // Range 2.0 covers the whole unit square: complete graph.
        assert_eq!(g.edge_count(), 45);
    }

    #[test]
    fn bucketed_geometric_matches_dense_builder() {
        // Same RNG stream → same positions; connected raw graph → the
        // two neighbor searches must produce the identical edge set.
        let dense = random_geometric(60, 0.25, &mut ChaCha8Rng::seed_from_u64(11));
        let bucketed = random_geometric_bucketed(60, 0.25, &mut ChaCha8Rng::seed_from_u64(11));
        assert_eq!(dense, bucketed);
    }

    #[test]
    fn bucketed_geometric_repairs_connectivity() {
        let mut rng = ChaCha8Rng::seed_from_u64(42);
        let g = random_geometric_bucketed(40, 0.01, &mut rng);
        assert_eq!(g.node_count(), 40);
        assert!(is_connected(&g));
        assert!(random_geometric_bucketed(0, 0.1, &mut rng).node_count() == 0);
    }

    #[test]
    fn erdos_renyi_is_connected() {
        let mut rng = ChaCha8Rng::seed_from_u64(3);
        let g = erdos_renyi_connected(30, 0.02, &mut rng);
        assert!(is_connected(&g));
    }

    #[test]
    fn generators_are_deterministic_under_a_fixed_seed() {
        let g1 = random_geometric(25, 0.3, &mut ChaCha8Rng::seed_from_u64(9));
        let g2 = random_geometric(25, 0.3, &mut ChaCha8Rng::seed_from_u64(9));
        assert_eq!(g1, g2);
    }
}
