use std::error::Error;
use std::fmt;

use crate::NodeId;

/// Errors produced by graph construction and graph algorithms.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum GraphError {
    /// A node index referenced a node outside the graph.
    NodeOutOfBounds {
        /// The offending node.
        node: NodeId,
        /// Number of nodes actually in the graph.
        node_count: usize,
    },
    /// A self-loop was added; the wireless model is a simple graph.
    SelfLoop {
        /// The node that would have been connected to itself.
        node: NodeId,
    },
    /// The algorithm required a connected graph but the input was not.
    Disconnected,
    /// A terminal set was empty where at least one terminal is required.
    NoTerminals,
    /// A terminal was queried on a [`crate::steiner::SteinerSolver`]
    /// that did not precompute it as a candidate.
    UnknownTerminal {
        /// The terminal missing from the solver's candidate set.
        node: NodeId,
    },
}

impl fmt::Display for GraphError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            GraphError::NodeOutOfBounds { node, node_count } => write!(
                f,
                "node {node} is out of bounds for a graph with {node_count} nodes"
            ),
            GraphError::SelfLoop { node } => {
                write!(
                    f,
                    "self-loop on node {node} is not allowed in a simple graph"
                )
            }
            GraphError::Disconnected => write!(f, "graph is not connected"),
            GraphError::NoTerminals => write!(f, "terminal set is empty"),
            GraphError::UnknownTerminal { node } => write!(
                f,
                "terminal {node} is not among the solver's precomputed candidates"
            ),
        }
    }
}

impl Error for GraphError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages_are_lowercase_and_informative() {
        let e = GraphError::NodeOutOfBounds {
            node: NodeId::new(7),
            node_count: 4,
        };
        let msg = e.to_string();
        assert!(msg.contains('7') && msg.contains('4'));

        assert_eq!(
            GraphError::Disconnected.to_string(),
            "graph is not connected"
        );
        assert!(GraphError::SelfLoop {
            node: NodeId::new(1)
        }
        .to_string()
        .contains("self-loop"));
        assert!(GraphError::NoTerminals.to_string().contains("empty"));
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<GraphError>();
    }
}
