use std::fmt;

use crate::GraphError;

/// Dense identifier of a node in a [`Graph`].
///
/// Node ids are indices in `0..graph.node_count()`. The newtype prevents
/// accidentally mixing node ids with chunk ids or other counters in the
/// caching planners.
///
/// # Example
///
/// ```
/// use peercache_graph::NodeId;
///
/// let producer = NodeId::new(9);
/// assert_eq!(producer.index(), 9);
/// assert_eq!(producer.to_string(), "9");
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct NodeId(usize);

impl NodeId {
    /// Creates a node id from a raw index.
    #[inline]
    pub const fn new(index: usize) -> Self {
        NodeId(index)
    }

    /// Returns the raw index of this node.
    #[inline]
    pub const fn index(self) -> usize {
        self.0
    }
}

impl From<usize> for NodeId {
    #[inline]
    fn from(index: usize) -> Self {
        NodeId(index)
    }
}

impl From<NodeId> for usize {
    #[inline]
    fn from(id: NodeId) -> usize {
        id.0
    }
}

impl fmt::Display for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.0)
    }
}

/// An undirected simple graph stored as adjacency lists.
///
/// Nodes are dense indices `0..node_count`; edges are unweighted (the
/// wireless model of the paper attaches all costs to *nodes*, not links,
/// so weights live in the caching layer).
///
/// Neighbor lists are kept sorted, which makes iteration deterministic —
/// important for reproducible simulations.
///
/// # Example
///
/// ```
/// use peercache_graph::{Graph, NodeId};
///
/// let mut g = Graph::new(3);
/// g.add_edge(NodeId::new(0), NodeId::new(1))?;
/// g.add_edge(NodeId::new(1), NodeId::new(2))?;
///
/// assert_eq!(g.degree(NodeId::new(1)), 2);
/// assert!(g.contains_edge(NodeId::new(0), NodeId::new(1)));
/// assert!(!g.contains_edge(NodeId::new(0), NodeId::new(2)));
/// # Ok::<(), peercache_graph::GraphError>(())
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct Graph {
    adjacency: Vec<Vec<NodeId>>,
    edge_count: usize,
}

impl Graph {
    /// Creates a graph with `node_count` isolated nodes.
    pub fn new(node_count: usize) -> Self {
        Graph {
            adjacency: vec![Vec::new(); node_count],
            edge_count: 0,
        }
    }

    /// Builds a graph from an explicit edge list.
    ///
    /// Duplicate edges are ignored; see [`Graph::add_edge`].
    ///
    /// # Errors
    ///
    /// Returns [`GraphError::NodeOutOfBounds`] if an endpoint is `>=
    /// node_count` and [`GraphError::SelfLoop`] for `(u, u)` entries.
    ///
    /// # Example
    ///
    /// ```
    /// use peercache_graph::Graph;
    ///
    /// let g = Graph::from_edges(4, &[(0, 1), (1, 2), (2, 3)])?;
    /// assert_eq!(g.edge_count(), 3);
    /// # Ok::<(), peercache_graph::GraphError>(())
    /// ```
    pub fn from_edges(node_count: usize, edges: &[(usize, usize)]) -> Result<Self, GraphError> {
        let mut g = Graph::new(node_count);
        for &(u, v) in edges {
            g.add_edge(NodeId::new(u), NodeId::new(v))?;
        }
        Ok(g)
    }

    /// Number of nodes in the graph.
    #[inline]
    pub fn node_count(&self) -> usize {
        self.adjacency.len()
    }

    /// Number of (undirected) edges in the graph.
    #[inline]
    pub fn edge_count(&self) -> usize {
        self.edge_count
    }

    /// Returns `true` if `node` is a valid index for this graph.
    #[inline]
    pub fn contains_node(&self, node: NodeId) -> bool {
        node.index() < self.adjacency.len()
    }

    fn check_node(&self, node: NodeId) -> Result<(), GraphError> {
        if self.contains_node(node) {
            Ok(())
        } else {
            Err(GraphError::NodeOutOfBounds {
                node,
                node_count: self.node_count(),
            })
        }
    }

    /// Adds the undirected edge `(u, v)`.
    ///
    /// Adding an edge that already exists is a no-op, which keeps random
    /// topology generators simple.
    ///
    /// # Errors
    ///
    /// Returns [`GraphError::NodeOutOfBounds`] if either endpoint is not a
    /// node of this graph, or [`GraphError::SelfLoop`] if `u == v`.
    pub fn add_edge(&mut self, u: NodeId, v: NodeId) -> Result<(), GraphError> {
        self.check_node(u)?;
        self.check_node(v)?;
        if u == v {
            return Err(GraphError::SelfLoop { node: u });
        }
        if self.contains_edge(u, v) {
            return Ok(());
        }
        let (ua, va) = (u.index(), v.index());
        let pos_u = self.adjacency[ua].binary_search(&v).unwrap_err();
        self.adjacency[ua].insert(pos_u, v);
        let pos_v = self.adjacency[va].binary_search(&u).unwrap_err();
        self.adjacency[va].insert(pos_v, u);
        self.edge_count += 1;
        Ok(())
    }

    /// Appends a new isolated node and returns its id.
    ///
    /// Existing node ids are unaffected, so snapshots keyed by id (CSR,
    /// path tables) stay consistent with the nodes they already cover —
    /// though any [`Csr`] or all-pairs table built before the call does
    /// not know the new node and must be rebuilt to include it.
    pub fn add_node(&mut self) -> NodeId {
        self.adjacency.push(Vec::new());
        NodeId::new(self.adjacency.len() - 1)
    }

    /// Removes the undirected edge `(u, v)` if present.
    ///
    /// Returns `true` if an edge was removed, `false` if it did not
    /// exist. Any [`Csr`] snapshot taken before the call is stale
    /// afterwards and must be rebuilt.
    ///
    /// # Errors
    ///
    /// Returns [`GraphError::NodeOutOfBounds`] if either endpoint is not
    /// a node of this graph.
    pub fn remove_edge(&mut self, u: NodeId, v: NodeId) -> Result<bool, GraphError> {
        self.check_node(u)?;
        self.check_node(v)?;
        let Ok(pos_u) = self.adjacency[u.index()].binary_search(&v) else {
            return Ok(false);
        };
        self.adjacency[u.index()].remove(pos_u);
        let pos_v = self.adjacency[v.index()]
            .binary_search(&u)
            .expect("adjacency lists are symmetric");
        self.adjacency[v.index()].remove(pos_v);
        self.edge_count -= 1;
        Ok(true)
    }

    /// Removes all edges incident to `node`, leaving it as an isolated
    /// "ghost" node, and returns its former neighbors in ascending order.
    ///
    /// The node itself stays in the graph so every other node keeps its
    /// dense id — downstream tables indexed by id (costs, path tables,
    /// cache state) remain aligned. An isolated node is unreachable and
    /// has degree 0, which is exactly how a departed peer should look to
    /// the planners. Any [`Csr`] snapshot taken before the call is stale
    /// afterwards.
    ///
    /// # Errors
    ///
    /// Returns [`GraphError::NodeOutOfBounds`] if `node` is not a node of
    /// this graph.
    pub fn remove_node(&mut self, node: NodeId) -> Result<Vec<NodeId>, GraphError> {
        self.check_node(node)?;
        let neighbors = std::mem::take(&mut self.adjacency[node.index()]);
        for &v in &neighbors {
            let pos = self.adjacency[v.index()]
                .binary_search(&node)
                .expect("adjacency lists are symmetric");
            self.adjacency[v.index()].remove(pos);
        }
        self.edge_count -= neighbors.len();
        Ok(neighbors)
    }

    /// Returns `true` if the undirected edge `(u, v)` exists.
    ///
    /// Out-of-bounds endpoints simply yield `false`.
    pub fn contains_edge(&self, u: NodeId, v: NodeId) -> bool {
        self.adjacency
            .get(u.index())
            .is_some_and(|adj| adj.binary_search(&v).is_ok())
    }

    /// Degree (number of one-hop neighbors) of `node`.
    ///
    /// This is exactly the paper's Node Contention Cost `w_k`: every
    /// neighbor sends requests through `k`, so contention grows with the
    /// neighbor count.
    ///
    /// # Panics
    ///
    /// Panics if `node` is out of bounds.
    #[inline]
    pub fn degree(&self, node: NodeId) -> usize {
        self.adjacency[node.index()].len()
    }

    /// Iterates over the neighbors of `node` in ascending id order.
    ///
    /// # Panics
    ///
    /// Panics if `node` is out of bounds.
    pub fn neighbors(&self, node: NodeId) -> NeighborIter<'_> {
        NeighborIter {
            inner: self.adjacency[node.index()].iter(),
        }
    }

    /// Iterates over all nodes of the graph.
    pub fn nodes(&self) -> impl Iterator<Item = NodeId> + '_ {
        (0..self.node_count()).map(NodeId::new)
    }

    /// Iterates over every undirected edge once, as `(u, v)` with `u < v`.
    pub fn edges(&self) -> EdgeIter<'_> {
        EdgeIter {
            graph: self,
            u: 0,
            pos: 0,
        }
    }

    /// Returns the induced subgraph on `keep` together with the mapping
    /// from new ids to the original ids.
    ///
    /// Nodes listed in `keep` receive dense ids `0..keep.len()` in the
    /// order given; edges of the original graph with both endpoints kept
    /// are preserved. Used by the multi-item baseline extension, which
    /// repeatedly re-plans on the residual subgraph.
    ///
    /// # Errors
    ///
    /// Returns [`GraphError::NodeOutOfBounds`] if `keep` mentions an
    /// unknown node.
    ///
    /// # Example
    ///
    /// ```
    /// use peercache_graph::{builders, NodeId};
    ///
    /// let g = builders::path(4); // 0 - 1 - 2 - 3
    /// let keep = [NodeId::new(1), NodeId::new(2)];
    /// let (sub, original) = g.induced_subgraph(&keep)?;
    /// assert_eq!(sub.node_count(), 2);
    /// assert_eq!(sub.edge_count(), 1);
    /// assert_eq!(original[1], NodeId::new(2));
    /// # Ok::<(), peercache_graph::GraphError>(())
    /// ```
    pub fn induced_subgraph(&self, keep: &[NodeId]) -> Result<(Graph, Vec<NodeId>), GraphError> {
        for &n in keep {
            self.check_node(n)?;
        }
        let mut new_id = vec![usize::MAX; self.node_count()];
        for (new, &orig) in keep.iter().enumerate() {
            new_id[orig.index()] = new;
        }
        let mut sub = Graph::new(keep.len());
        for (u, v) in self.edges() {
            let (nu, nv) = (new_id[u.index()], new_id[v.index()]);
            if nu != usize::MAX && nv != usize::MAX {
                sub.add_edge(NodeId::new(nu), NodeId::new(nv))?;
            }
        }
        Ok((sub, keep.to_vec()))
    }
}

/// Flat compressed-sparse-row snapshot of a [`Graph`]'s adjacency.
///
/// The per-node `Vec<NodeId>` lists of [`Graph`] are pointer-chasing
/// hostile in hot loops: every neighbor scan dereferences a separate
/// heap allocation. `Csr` packs all neighbor lists into one contiguous
/// `targets` array indexed by an `offsets` prefix-sum, which is what the
/// all-pairs Dijkstra fan-out iterates. Neighbor order is preserved
/// (ascending id), so algorithms behave identically on either
/// representation.
///
/// A `Csr` is a snapshot: edges added to the `Graph` afterwards are not
/// reflected.
///
/// # Example
///
/// ```
/// use peercache_graph::{builders, Csr, NodeId};
///
/// let g = builders::grid(3, 3);
/// let csr = Csr::from_graph(&g);
/// let via_graph: Vec<NodeId> = g.neighbors(NodeId::new(4)).collect();
/// let via_csr: Vec<NodeId> = csr.neighbors(4).iter().map(|&v| NodeId::new(v as usize)).collect();
/// assert_eq!(via_graph, via_csr);
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Csr {
    /// `offsets[u]..offsets[u + 1]` indexes `targets` for node `u`.
    offsets: Vec<u32>,
    /// Concatenated neighbor lists, ascending within each node.
    targets: Vec<u32>,
}

impl Csr {
    /// Builds the CSR snapshot of `g`'s adjacency.
    pub fn from_graph(g: &Graph) -> Self {
        let n = g.node_count();
        let mut offsets = Vec::with_capacity(n + 1);
        let mut targets = Vec::with_capacity(2 * g.edge_count());
        offsets.push(0);
        for u in 0..n {
            for v in &g.adjacency[u] {
                targets.push(v.index() as u32);
            }
            offsets.push(targets.len() as u32);
        }
        Csr { offsets, targets }
    }

    /// Number of nodes in the snapshot.
    #[inline]
    pub fn node_count(&self) -> usize {
        self.offsets.len() - 1
    }

    /// The neighbors of `u` as a raw index slice, ascending.
    ///
    /// # Panics
    ///
    /// Panics if `u` is out of bounds.
    #[inline]
    pub fn neighbors(&self, u: usize) -> &[u32] {
        &self.targets[self.offsets[u] as usize..self.offsets[u + 1] as usize]
    }
}

/// Iterator over the neighbors of a node, created by [`Graph::neighbors`].
#[derive(Debug, Clone)]
pub struct NeighborIter<'a> {
    inner: std::slice::Iter<'a, NodeId>,
}

impl<'a> Iterator for NeighborIter<'a> {
    type Item = NodeId;

    fn next(&mut self) -> Option<NodeId> {
        self.inner.next().copied()
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        self.inner.size_hint()
    }
}

impl ExactSizeIterator for NeighborIter<'_> {}

/// Iterator over undirected edges, created by [`Graph::edges`].
#[derive(Debug, Clone)]
pub struct EdgeIter<'a> {
    graph: &'a Graph,
    u: usize,
    pos: usize,
}

impl<'a> Iterator for EdgeIter<'a> {
    type Item = (NodeId, NodeId);

    fn next(&mut self) -> Option<(NodeId, NodeId)> {
        while self.u < self.graph.node_count() {
            let adj = &self.graph.adjacency[self.u];
            while self.pos < adj.len() {
                let v = adj[self.pos];
                self.pos += 1;
                if v.index() > self.u {
                    return Some((NodeId::new(self.u), v));
                }
            }
            self.u += 1;
            self.pos = 0;
        }
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn new_graph_has_no_edges() {
        let g = Graph::new(5);
        assert_eq!(g.node_count(), 5);
        assert_eq!(g.edge_count(), 0);
        for n in g.nodes() {
            assert_eq!(g.degree(n), 0);
        }
    }

    #[test]
    fn add_edge_is_undirected_and_idempotent() {
        let mut g = Graph::new(3);
        g.add_edge(NodeId::new(0), NodeId::new(2)).unwrap();
        g.add_edge(NodeId::new(2), NodeId::new(0)).unwrap();
        assert_eq!(g.edge_count(), 1);
        assert!(g.contains_edge(NodeId::new(0), NodeId::new(2)));
        assert!(g.contains_edge(NodeId::new(2), NodeId::new(0)));
    }

    #[test]
    fn self_loop_rejected() {
        let mut g = Graph::new(2);
        let err = g.add_edge(NodeId::new(1), NodeId::new(1)).unwrap_err();
        assert_eq!(
            err,
            GraphError::SelfLoop {
                node: NodeId::new(1)
            }
        );
    }

    #[test]
    fn out_of_bounds_rejected() {
        let mut g = Graph::new(2);
        let err = g.add_edge(NodeId::new(0), NodeId::new(5)).unwrap_err();
        assert!(matches!(err, GraphError::NodeOutOfBounds { .. }));
    }

    #[test]
    fn neighbors_are_sorted() {
        let mut g = Graph::new(5);
        for v in [4, 1, 3] {
            g.add_edge(NodeId::new(0), NodeId::new(v)).unwrap();
        }
        let ns: Vec<usize> = g.neighbors(NodeId::new(0)).map(NodeId::index).collect();
        assert_eq!(ns, vec![1, 3, 4]);
    }

    #[test]
    fn edges_iterates_each_edge_once() {
        let g = Graph::from_edges(4, &[(0, 1), (1, 2), (2, 3), (0, 3)]).unwrap();
        let edges: Vec<(usize, usize)> = g.edges().map(|(u, v)| (u.index(), v.index())).collect();
        assert_eq!(edges, vec![(0, 1), (0, 3), (1, 2), (2, 3)]);
    }

    #[test]
    fn induced_subgraph_remaps_ids() {
        let g = Graph::from_edges(5, &[(0, 1), (1, 2), (2, 3), (3, 4)]).unwrap();
        let keep = [NodeId::new(2), NodeId::new(3), NodeId::new(4)];
        let (sub, orig) = g.induced_subgraph(&keep).unwrap();
        assert_eq!(sub.node_count(), 3);
        assert_eq!(sub.edge_count(), 2);
        assert!(sub.contains_edge(NodeId::new(0), NodeId::new(1)));
        assert!(sub.contains_edge(NodeId::new(1), NodeId::new(2)));
        assert_eq!(orig[0], NodeId::new(2));
    }

    #[test]
    fn add_node_appends_isolated_node() {
        let mut g = Graph::from_edges(3, &[(0, 1), (1, 2)]).unwrap();
        let id = g.add_node();
        assert_eq!(id, NodeId::new(3));
        assert_eq!(g.node_count(), 4);
        assert_eq!(g.degree(id), 0);
        assert_eq!(g.edge_count(), 2);
        g.add_edge(id, NodeId::new(0)).unwrap();
        assert!(g.contains_edge(NodeId::new(0), id));
    }

    #[test]
    fn remove_edge_is_symmetric() {
        let mut g = Graph::from_edges(3, &[(0, 1), (1, 2)]).unwrap();
        assert!(g.remove_edge(NodeId::new(1), NodeId::new(0)).unwrap());
        assert_eq!(g.edge_count(), 1);
        assert!(!g.contains_edge(NodeId::new(0), NodeId::new(1)));
        assert!(!g.contains_edge(NodeId::new(1), NodeId::new(0)));
        // Removing a missing edge reports false and changes nothing.
        assert!(!g.remove_edge(NodeId::new(0), NodeId::new(1)).unwrap());
        assert_eq!(g.edge_count(), 1);
    }

    #[test]
    fn remove_edge_out_of_bounds_rejected() {
        let mut g = Graph::new(2);
        let err = g.remove_edge(NodeId::new(0), NodeId::new(9)).unwrap_err();
        assert!(matches!(err, GraphError::NodeOutOfBounds { .. }));
    }

    #[test]
    fn remove_node_leaves_isolated_ghost() {
        let mut g = Graph::from_edges(4, &[(0, 1), (1, 2), (1, 3), (2, 3)]).unwrap();
        let former = g.remove_node(NodeId::new(1)).unwrap();
        assert_eq!(former, vec![NodeId::new(0), NodeId::new(2), NodeId::new(3)]);
        // Ids are stable: node 1 still exists, just isolated.
        assert_eq!(g.node_count(), 4);
        assert_eq!(g.degree(NodeId::new(1)), 0);
        assert_eq!(g.edge_count(), 1);
        assert!(g.contains_edge(NodeId::new(2), NodeId::new(3)));
        assert!(!g.contains_edge(NodeId::new(0), NodeId::new(1)));
        // Removing an already-isolated node is a no-op.
        assert_eq!(g.remove_node(NodeId::new(1)).unwrap(), Vec::new());
    }

    #[test]
    fn mutations_match_rebuilt_graph() {
        let mut g = Graph::from_edges(5, &[(0, 1), (1, 2), (2, 3), (3, 4), (0, 4)]).unwrap();
        g.remove_edge(NodeId::new(2), NodeId::new(3)).unwrap();
        g.remove_node(NodeId::new(0)).unwrap();
        g.add_edge(NodeId::new(2), NodeId::new(4)).unwrap();
        let rebuilt = Graph::from_edges(5, &[(1, 2), (3, 4), (2, 4)]).unwrap();
        assert_eq!(g, rebuilt);
        assert_eq!(Csr::from_graph(&g), Csr::from_graph(&rebuilt));
    }

    #[test]
    fn node_id_conversions_roundtrip() {
        let id: NodeId = 42usize.into();
        let back: usize = id.into();
        assert_eq!(back, 42);
    }

    #[test]
    fn graph_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<Graph>();
    }
}
