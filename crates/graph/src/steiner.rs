//! Steiner-tree approximation for the dissemination phase.
//!
//! Phase 2 of the paper's approximation algorithm connects the selected
//! caching (ADMIN) nodes and the producer with a Steiner tree, along
//! which the chunk is disseminated (the `z_en` variables of the ILP).
//! The paper cites an LP-based 1.55-approximation \[25\]; as documented in
//! DESIGN.md we substitute the classical metric-closure MST algorithm
//! (Kou–Markowsky–Berman), a deterministic 2-approximation:
//!
//! 1. build the metric closure over the terminals (edge-weighted
//!    shortest paths),
//! 2. take its MST,
//! 3. expand MST edges into real paths and take the MST of the expanded
//!    subgraph,
//! 4. prune non-terminal leaves.

// Index loops below walk several parallel arrays at once; iterator
// chains would obscure the lockstep structure.
#![allow(clippy::needless_range_loop)]

use std::collections::BTreeSet;

use crate::paths::dijkstra_edge_weighted;
use crate::{mst, Graph, GraphError, NodeId};

/// A Steiner tree: edges of the host graph connecting all terminals.
#[derive(Debug, Clone, PartialEq)]
pub struct SteinerTree {
    /// Tree edges `(u, v)` with `u < v`, sorted.
    pub edges: Vec<(NodeId, NodeId)>,
    /// All nodes spanned by the tree (terminals plus Steiner points).
    pub nodes: Vec<NodeId>,
    /// Total weight of [`SteinerTree::edges`] under the weight function
    /// given to [`steiner_tree`].
    pub cost: f64,
}

impl SteinerTree {
    /// A tree with no edges (single- or zero-terminal case).
    fn trivial(nodes: Vec<NodeId>) -> Self {
        SteinerTree {
            edges: Vec::new(),
            nodes,
            cost: 0.0,
        }
    }
}

/// Computes an approximate minimum Steiner tree connecting `terminals`.
///
/// `weight` gives the cost of each *graph edge*; in the caching problem
/// this is the Path Contention Cost of the one-hop link, `c_e`. The
/// returned tree's cost is within 2x of the optimal Steiner tree
/// (Kou–Markowsky–Berman bound).
///
/// Duplicate terminals are allowed and ignored.
///
/// # Errors
///
/// * [`GraphError::NoTerminals`] if `terminals` is empty.
/// * [`GraphError::NodeOutOfBounds`] for unknown terminals.
/// * [`GraphError::Disconnected`] if some terminal cannot reach another.
///
/// # Example
///
/// ```
/// use peercache_graph::{builders, steiner, NodeId};
///
/// let g = builders::grid(3, 3);
/// let terminals = [NodeId::new(0), NodeId::new(2), NodeId::new(6)];
/// let tree = steiner::steiner_tree(&g, &terminals, |_, _| 1.0)?;
/// // Corner terminals of a 3x3 grid need 4 unit edges.
/// assert_eq!(tree.cost, 4.0);
/// # Ok::<(), peercache_graph::GraphError>(())
/// ```
pub fn steiner_tree<W>(
    g: &Graph,
    terminals: &[NodeId],
    weight: W,
) -> Result<SteinerTree, GraphError>
where
    W: Fn(NodeId, NodeId) -> f64,
{
    let uniq: BTreeSet<NodeId> = terminals.iter().copied().collect();
    if uniq.is_empty() {
        return Err(GraphError::NoTerminals);
    }
    for &t in &uniq {
        if !g.contains_node(t) {
            return Err(GraphError::NodeOutOfBounds {
                node: t,
                node_count: g.node_count(),
            });
        }
    }
    let terms: Vec<NodeId> = uniq.into_iter().collect();
    if terms.len() == 1 {
        return Ok(SteinerTree::trivial(terms));
    }
    let paths: Vec<(Vec<f64>, Vec<Option<NodeId>>)> = terms
        .iter()
        .map(|&t| dijkstra_edge_weighted(g, t, &weight))
        .collect();
    let views: Vec<&(Vec<f64>, Vec<Option<NodeId>>)> = paths.iter().collect();
    tree_from_sssp(&weight, &terms, &views)
}

/// Reusable Steiner-tree solver over a fixed candidate-terminal set.
///
/// The metric-closure algorithm's only expensive ingredient is one
/// shortest-path tree per terminal — and that tree depends solely on the
/// graph and the edge weights, **not** on which other terminals are in
/// play. The solver therefore runs the per-candidate Dijkstras once at
/// construction and answers [`SteinerSolver::tree`] queries for any
/// subset of the candidates with only the cheap closure-MST / expansion
/// steps. A query returns bit-for-bit the same tree [`steiner_tree`]
/// would (it runs the identical code on the identical shortest-path
/// trees).
///
/// The planners leverage this in their removal-improvement phase, which
/// evaluates `|F|` candidate facility sets against the same weights.
///
/// # Example
///
/// ```
/// use peercache_graph::{builders, steiner::{steiner_tree, SteinerSolver}, NodeId};
///
/// let g = builders::grid(3, 3);
/// let cands = [NodeId::new(0), NodeId::new(2), NodeId::new(6), NodeId::new(8)];
/// let solver = SteinerSolver::new(&g, &cands, |_, _| 1.0)?;
/// let sub = [NodeId::new(0), NodeId::new(2), NodeId::new(6)];
/// assert_eq!(solver.tree(&sub)?, steiner_tree(&g, &sub, |_, _| 1.0)?);
/// # Ok::<(), peercache_graph::GraphError>(())
/// ```
pub struct SteinerSolver<W> {
    weight: W,
    /// Sorted, deduplicated candidate terminals.
    candidates: Vec<NodeId>,
    /// One `(cost, parent)` shortest-path tree per candidate.
    sssp: Vec<(Vec<f64>, Vec<Option<NodeId>>)>,
}

impl<W> SteinerSolver<W>
where
    W: Fn(NodeId, NodeId) -> f64,
{
    /// Precomputes shortest-path trees for every candidate terminal.
    ///
    /// Duplicate candidates are allowed and ignored.
    ///
    /// # Errors
    ///
    /// * [`GraphError::NoTerminals`] if `candidates` is empty.
    /// * [`GraphError::NodeOutOfBounds`] for unknown candidates.
    pub fn new(g: &Graph, candidates: &[NodeId], weight: W) -> Result<Self, GraphError> {
        let uniq: BTreeSet<NodeId> = candidates.iter().copied().collect();
        if uniq.is_empty() {
            return Err(GraphError::NoTerminals);
        }
        for &t in &uniq {
            if !g.contains_node(t) {
                return Err(GraphError::NodeOutOfBounds {
                    node: t,
                    node_count: g.node_count(),
                });
            }
        }
        let candidates: Vec<NodeId> = uniq.into_iter().collect();
        let sssp = candidates
            .iter()
            .map(|&t| dijkstra_edge_weighted(g, t, &weight))
            .collect();
        Ok(SteinerSolver {
            weight,
            candidates,
            sssp,
        })
    }

    /// The sorted candidate set queries may draw terminals from.
    pub fn candidates(&self) -> &[NodeId] {
        &self.candidates
    }

    /// Computes the approximate Steiner tree over a subset of the
    /// candidates, reusing the precomputed shortest-path trees.
    ///
    /// Duplicate terminals are allowed and ignored.
    ///
    /// # Errors
    ///
    /// * [`GraphError::NoTerminals`] if `terminals` is empty.
    /// * [`GraphError::UnknownTerminal`] if a terminal was not given to
    ///   [`SteinerSolver::new`].
    /// * [`GraphError::Disconnected`] if some terminal cannot reach
    ///   another.
    pub fn tree(&self, terminals: &[NodeId]) -> Result<SteinerTree, GraphError> {
        let uniq: BTreeSet<NodeId> = terminals.iter().copied().collect();
        if uniq.is_empty() {
            return Err(GraphError::NoTerminals);
        }
        let terms: Vec<NodeId> = uniq.into_iter().collect();
        let mut views = Vec::with_capacity(terms.len());
        for &t in &terms {
            let slot = self
                .candidates
                .binary_search(&t)
                .map_err(|_| GraphError::UnknownTerminal { node: t })?;
            views.push(&self.sssp[slot]);
        }
        if terms.len() == 1 {
            return Ok(SteinerTree::trivial(terms));
        }
        tree_from_sssp(&self.weight, &terms, &views)
    }
}

/// Steps 1–4 of Kou–Markowsky–Berman given the per-terminal
/// shortest-path trees (`sssp[i]` rooted at `terms[i]`); `terms` must be
/// sorted, deduplicated, and have at least two entries.
fn tree_from_sssp<W>(
    weight: &W,
    terms: &[NodeId],
    paths: &[&(Vec<f64>, Vec<Option<NodeId>>)],
) -> Result<SteinerTree, GraphError>
where
    W: Fn(NodeId, NodeId) -> f64,
{
    // Step 1: metric closure restricted to terminals.
    let mut closure_edges = Vec::new();
    for a in 0..terms.len() {
        for b in (a + 1)..terms.len() {
            let d = paths[a].0[terms[b].index()];
            if d.is_infinite() {
                return Err(GraphError::Disconnected);
            }
            closure_edges.push((a, b, d));
        }
    }

    // Step 2: MST of the closure.
    let closure_mst = mst::kruskal(terms.len(), &closure_edges);

    // Step 3: expand closure edges into real paths; collect subgraph.
    let mut sub_nodes: BTreeSet<NodeId> = terms.iter().copied().collect();
    let mut sub_edges: BTreeSet<(NodeId, NodeId)> = BTreeSet::new();
    for (a, b, _) in closure_mst {
        // Walk parents from terms[b] back to terms[a] in the tree rooted
        // at terms[a].
        let mut cur = terms[b];
        while cur != terms[a] {
            let prev = paths[a].1[cur.index()].expect("finite distance implies a parent");
            sub_edges.insert(ordered(prev, cur));
            sub_nodes.insert(cur);
            sub_nodes.insert(prev);
            cur = prev;
        }
    }

    // Step 4: MST of the expanded subgraph, then prune non-terminal
    // leaves repeatedly.
    let node_list: Vec<NodeId> = sub_nodes.iter().copied().collect();
    let index_of = |n: NodeId| {
        node_list
            .binary_search(&n)
            .expect("node is in the subgraph")
    };
    let weighted: Vec<(usize, usize, f64)> = sub_edges
        .iter()
        .map(|&(u, v)| (index_of(u), index_of(v), weight(u, v)))
        .collect();
    let sub_mst = mst::kruskal(node_list.len(), &weighted);

    let mut adj: Vec<BTreeSet<usize>> = vec![BTreeSet::new(); node_list.len()];
    for &(u, v, _) in &sub_mst {
        adj[u].insert(v);
        adj[v].insert(u);
    }
    let is_terminal: Vec<bool> = node_list
        .iter()
        .map(|n| terms.binary_search(n).is_ok())
        .collect();
    let mut removed = vec![false; node_list.len()];
    loop {
        let mut pruned_any = false;
        for v in 0..node_list.len() {
            if !removed[v] && !is_terminal[v] && adj[v].len() <= 1 {
                if let Some(&u) = adj[v].iter().next() {
                    adj[u].remove(&v);
                }
                adj[v].clear();
                removed[v] = true;
                pruned_any = true;
            }
        }
        if !pruned_any {
            break;
        }
    }

    let mut edges: Vec<(NodeId, NodeId)> = Vec::new();
    let mut cost = 0.0;
    for u in 0..node_list.len() {
        for &v in &adj[u] {
            if v > u {
                let e = ordered(node_list[u], node_list[v]);
                cost += weight(e.0, e.1);
                edges.push(e);
            }
        }
    }
    edges.sort_unstable();
    let nodes: Vec<NodeId> = node_list
        .iter()
        .enumerate()
        .filter(|&(i, _)| !removed[i])
        .map(|(_, &n)| n)
        .collect();
    Ok(SteinerTree { edges, nodes, cost })
}

fn ordered(a: NodeId, b: NodeId) -> (NodeId, NodeId) {
    if a < b {
        (a, b)
    } else {
        (b, a)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builders;
    use crate::mst::UnionFind;

    fn assert_is_tree_spanning(g: &Graph, tree: &SteinerTree, terminals: &[NodeId]) {
        // Every terminal present.
        for t in terminals {
            assert!(tree.nodes.contains(t), "terminal {t} missing from tree");
        }
        // Edge count = node count - 1 (a tree), and edges connect all nodes.
        assert_eq!(tree.edges.len() + 1, tree.nodes.len().max(1));
        let mut uf = UnionFind::new(g.node_count());
        for &(u, v) in &tree.edges {
            assert!(g.contains_edge(u, v), "tree edge must exist in graph");
            assert!(uf.union(u.index(), v.index()), "cycle in steiner tree");
        }
        for t in terminals {
            assert!(uf.connected(terminals[0].index(), t.index()));
        }
    }

    #[test]
    fn single_terminal_is_trivial() {
        let g = builders::grid(3, 3);
        let tree = steiner_tree(&g, &[NodeId::new(4)], |_, _| 1.0).unwrap();
        assert_eq!(tree.cost, 0.0);
        assert!(tree.edges.is_empty());
        assert_eq!(tree.nodes, vec![NodeId::new(4)]);
    }

    #[test]
    fn duplicate_terminals_are_deduplicated() {
        let g = builders::path(3);
        let tree = steiner_tree(
            &g,
            &[NodeId::new(0), NodeId::new(0), NodeId::new(2)],
            |_, _| 1.0,
        )
        .unwrap();
        assert_eq!(tree.cost, 2.0);
    }

    #[test]
    fn no_terminals_is_an_error() {
        let g = builders::path(3);
        assert_eq!(
            steiner_tree(&g, &[], |_, _| 1.0),
            Err(GraphError::NoTerminals)
        );
    }

    #[test]
    fn disconnected_terminals_error() {
        let g = Graph::new(2);
        let r = steiner_tree(&g, &[NodeId::new(0), NodeId::new(1)], |_, _| 1.0);
        assert_eq!(r, Err(GraphError::Disconnected));
    }

    #[test]
    fn two_terminals_use_shortest_path() {
        let g = builders::grid(4, 4);
        let tree = steiner_tree(&g, &[NodeId::new(0), NodeId::new(15)], |_, _| 1.0).unwrap();
        assert_eq!(tree.cost, 6.0); // manhattan distance in the grid
        assert_is_tree_spanning(&g, &tree, &[NodeId::new(0), NodeId::new(15)]);
    }

    #[test]
    fn steiner_point_is_used_when_beneficial() {
        // Star: center 0, leaves 1..=3. Terminals are the leaves; the
        // optimal tree must include the non-terminal center.
        let g = builders::star(4);
        let terms = [NodeId::new(1), NodeId::new(2), NodeId::new(3)];
        let tree = steiner_tree(&g, &terms, |_, _| 1.0).unwrap();
        assert_eq!(tree.cost, 3.0);
        assert!(tree.nodes.contains(&NodeId::new(0)));
        assert_is_tree_spanning(&g, &tree, &terms);
    }

    #[test]
    fn non_terminal_leaves_are_pruned() {
        let g = builders::grid(5, 5);
        let terms = [NodeId::new(0), NodeId::new(4), NodeId::new(20)];
        let tree = steiner_tree(&g, &terms, |_, _| 1.0).unwrap();
        // Every leaf of the tree must be a terminal.
        for &n in &tree.nodes {
            let deg = tree
                .edges
                .iter()
                .filter(|&&(u, v)| u == n || v == n)
                .count();
            if deg <= 1 {
                assert!(terms.contains(&n), "non-terminal leaf {n} not pruned");
            }
        }
    }

    #[test]
    fn respects_edge_weights() {
        // Path 0-1-2 plus shortcut 0-2; shortcut is expensive.
        let mut g = builders::path(3);
        g.add_edge(NodeId::new(0), NodeId::new(2)).unwrap();
        let weight = |u: NodeId, v: NodeId| {
            if (u.index(), v.index()) == (0, 2) {
                10.0
            } else {
                1.0
            }
        };
        let tree = steiner_tree(&g, &[NodeId::new(0), NodeId::new(2)], weight).unwrap();
        assert_eq!(tree.cost, 2.0); // via node 1
        assert!(tree.nodes.contains(&NodeId::new(1)));
    }

    #[test]
    fn spanning_all_nodes_costs_at_most_mst() {
        let g = builders::grid(4, 4);
        let all: Vec<NodeId> = g.nodes().collect();
        let tree = steiner_tree(&g, &all, |_, _| 1.0).unwrap();
        // With every node a terminal the Steiner tree IS a spanning tree.
        assert_eq!(tree.edges.len(), g.node_count() - 1);
        assert_eq!(tree.cost, (g.node_count() - 1) as f64);
    }

    #[test]
    fn out_of_bounds_terminal_is_an_error() {
        let g = builders::path(3);
        let r = steiner_tree(&g, &[NodeId::new(0), NodeId::new(9)], |_, _| 1.0);
        assert!(matches!(r, Err(GraphError::NodeOutOfBounds { .. })));
    }

    #[test]
    fn solver_matches_one_shot_on_every_subset() {
        let g = builders::grid(4, 4);
        let weight = |u: NodeId, v: NodeId| 1.0 + ((u.index() * 7 + v.index() * 3) % 5) as f64;
        let cands = [
            NodeId::new(0),
            NodeId::new(5),
            NodeId::new(10),
            NodeId::new(15),
        ];
        let solver = SteinerSolver::new(&g, &cands, weight).unwrap();
        assert_eq!(solver.candidates(), &cands);
        // Every non-empty subset of the candidates must agree bitwise.
        for mask in 1u32..16 {
            let subset: Vec<NodeId> = cands
                .iter()
                .enumerate()
                .filter(|&(i, _)| mask & (1 << i) != 0)
                .map(|(_, &n)| n)
                .collect();
            let fresh = steiner_tree(&g, &subset, weight).unwrap();
            let cached = solver.tree(&subset).unwrap();
            assert_eq!(cached, fresh, "mask {mask:#b}");
            assert_eq!(cached.cost.to_bits(), fresh.cost.to_bits());
        }
    }

    #[test]
    fn solver_rejects_unknown_terminals() {
        let g = builders::grid(3, 3);
        let solver = SteinerSolver::new(&g, &[NodeId::new(0), NodeId::new(8)], |_, _| 1.0).unwrap();
        assert_eq!(
            solver.tree(&[NodeId::new(0), NodeId::new(4)]),
            Err(GraphError::UnknownTerminal {
                node: NodeId::new(4)
            })
        );
        assert_eq!(solver.tree(&[]), Err(GraphError::NoTerminals));
    }

    #[test]
    fn solver_requires_candidates_in_bounds() {
        let g = builders::path(3);
        assert!(matches!(
            SteinerSolver::new(&g, &[NodeId::new(9)], |_, _| 1.0),
            Err(GraphError::NodeOutOfBounds { .. })
        ));
        assert_eq!(
            SteinerSolver::new(&g, &[], |_, _| 1.0).err(),
            Some(GraphError::NoTerminals)
        );
    }
}
