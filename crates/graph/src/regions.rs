//! Deterministic bounded-size region partitioning (the hierarchical
//! planner's decomposition substrate).
//!
//! [`RegionPartition::grow`] covers the graph with connected regions of
//! at most `max_size` nodes by seeded BFS-ball growth: region seeds are
//! visited in a seeded pseudo-random order, and each region floods
//! breadth-first over still-unassigned nodes (neighbors in ascending-id
//! order) until it hits the size bound. The construction touches every
//! node and edge once, is fully deterministic for a given `(graph,
//! max_size, seed)`, and never leaves a node unassigned.
//!
//! The partition also exposes the **border set** — nodes with at least
//! one neighbor in a different region — and k-hop *halos* around each
//! region, which is exactly the locality the paper's distributed
//! Algorithm 2 exchanges messages over: planning a region only needs
//! exact cost state for its own nodes plus a k-hop fringe.

use crate::graph::{Graph, NodeId};

/// SplitMix64 — the tiny seeded mixer used wherever the graph layer
/// needs deterministic pseudo-randomness without an injected RNG
/// (region seed order, landmark start). Public so downstream crates can
/// derive sub-seeds the same way.
#[must_use]
pub fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^ (x >> 31)
}

/// A cover of the node set by connected, bounded-size regions.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RegionPartition {
    /// Region index per node.
    region_of: Vec<u32>,
    /// Node lists per region, each sorted ascending.
    regions: Vec<Vec<NodeId>>,
    /// `true` for nodes with a neighbor in another region.
    border: Vec<bool>,
}

impl RegionPartition {
    /// Grows the partition over `g` with regions of at most `max_size`
    /// nodes (clamped to at least 1), visiting region seeds in an order
    /// derived from `seed`.
    ///
    /// Every node is assigned to exactly one region; regions are
    /// connected in the subgraph induced on their own nodes (a region
    /// is one BFS flood over unassigned nodes). Enclaves left behind by
    /// earlier floods simply become their own (possibly small) regions.
    #[must_use]
    pub fn grow(g: &Graph, max_size: usize, seed: u64) -> RegionPartition {
        let n = g.node_count();
        let max_size = max_size.max(1);
        let mut order: Vec<u32> = (0..n as u32).collect();
        order.sort_by_key(|&u| (splitmix64(seed ^ u64::from(u)), u));

        const UNASSIGNED: u32 = u32::MAX;
        let mut region_of = vec![UNASSIGNED; n];
        let mut regions: Vec<Vec<NodeId>> = Vec::new();
        let mut queue: Vec<u32> = Vec::new();
        for &start in &order {
            if region_of[start as usize] != UNASSIGNED {
                continue;
            }
            let r = regions.len() as u32;
            let mut members: Vec<NodeId> = Vec::new();
            queue.clear();
            queue.push(start);
            region_of[start as usize] = r;
            let mut head = 0usize;
            while head < queue.len() && members.len() < max_size {
                let u = queue[head];
                head += 1;
                members.push(NodeId::new(u as usize));
                for v in g.neighbors(NodeId::new(u as usize)) {
                    if members.len() + (queue.len() - head) >= max_size {
                        break;
                    }
                    if region_of[v.index()] == UNASSIGNED {
                        region_of[v.index()] = r;
                        queue.push(v.index() as u32);
                    }
                }
            }
            // Nodes still queued but past the size bound go back to the
            // pool for a later region.
            for &u in &queue[head..] {
                region_of[u as usize] = UNASSIGNED;
            }
            members.sort_unstable();
            regions.push(members);
        }

        let mut border = vec![false; n];
        for (u, v) in g.edges() {
            if region_of[u.index()] != region_of[v.index()] {
                border[u.index()] = true;
                border[v.index()] = true;
            }
        }
        RegionPartition {
            region_of,
            regions,
            border,
        }
    }

    /// Number of regions.
    #[must_use]
    pub fn region_count(&self) -> usize {
        self.regions.len()
    }

    /// The (sorted) nodes of region `r`.
    ///
    /// # Panics
    ///
    /// Panics if `r` is out of bounds.
    #[must_use]
    pub fn region(&self, r: usize) -> &[NodeId] {
        &self.regions[r]
    }

    /// The region index of `node`.
    ///
    /// # Panics
    ///
    /// Panics if `node` is out of bounds.
    #[must_use]
    pub fn region_of(&self, node: NodeId) -> usize {
        self.region_of[node.index()] as usize
    }

    /// Whether `node` has a neighbor in a different region.
    ///
    /// # Panics
    ///
    /// Panics if `node` is out of bounds.
    #[must_use]
    pub fn is_border(&self, node: NodeId) -> bool {
        self.border[node.index()]
    }

    /// All border nodes, sorted ascending.
    #[must_use]
    pub fn border_nodes(&self) -> Vec<NodeId> {
        (0..self.border.len())
            .filter(|&u| self.border[u])
            .map(NodeId::new)
            .collect()
    }

    /// The k-hop halo of region `r`: nodes *outside* the region within
    /// `k` hops of one of its members, sorted ascending. `k == 0`
    /// yields an empty halo.
    ///
    /// # Panics
    ///
    /// Panics if `r` is out of bounds.
    #[must_use]
    pub fn halo_of(&self, g: &Graph, r: usize, k: u32) -> Vec<NodeId> {
        let mut depth = vec![u32::MAX; g.node_count()];
        let mut queue: Vec<NodeId> = Vec::new();
        for &u in &self.regions[r] {
            depth[u.index()] = 0;
            queue.push(u);
        }
        let mut head = 0usize;
        let mut halo = Vec::new();
        while head < queue.len() {
            let u = queue[head];
            head += 1;
            if depth[u.index()] == k {
                continue;
            }
            for v in g.neighbors(u) {
                if depth[v.index()] == u32::MAX {
                    depth[v.index()] = depth[u.index()] + 1;
                    queue.push(v);
                    halo.push(v);
                }
            }
        }
        halo.sort_unstable();
        halo
    }

    /// The k-hop demand ball of region `r`: the region's own members
    /// plus its [`halo_of`](RegionPartition::halo_of), sorted ascending.
    /// This is the column set of a scoped-contention block and the
    /// candidate scope of shard-local repair decisions.
    ///
    /// # Panics
    ///
    /// Panics if `r` is out of bounds.
    #[must_use]
    pub fn ball_of(&self, g: &Graph, r: usize, k: u32) -> Vec<NodeId> {
        let mut ball = self.regions[r].clone();
        ball.extend(self.halo_of(g, r, k));
        ball.sort_unstable();
        ball
    }

    /// Per-node flags: `true` when the node lies within `k` hops of any
    /// border node (including the border nodes themselves). This is the
    /// stitch scope of the hierarchical planner.
    #[must_use]
    pub fn near_border(&self, g: &Graph, k: u32) -> Vec<bool> {
        let n = g.node_count();
        let mut depth = vec![u32::MAX; n];
        let mut queue: Vec<NodeId> = Vec::new();
        for (u, d) in depth.iter_mut().enumerate() {
            if self.border[u] {
                *d = 0;
                queue.push(NodeId::new(u));
            }
        }
        let mut head = 0usize;
        while head < queue.len() {
            let u = queue[head];
            head += 1;
            if depth[u.index()] == k {
                continue;
            }
            for v in g.neighbors(u) {
                if depth[v.index()] == u32::MAX {
                    depth[v.index()] = depth[u.index()] + 1;
                    queue.push(v);
                }
            }
        }
        depth.into_iter().map(|d| d != u32::MAX).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builders;

    #[test]
    fn covers_every_node_within_bound() {
        let g = builders::grid(10, 10);
        let p = RegionPartition::grow(&g, 16, 7);
        let mut seen = [false; 100];
        for r in 0..p.region_count() {
            assert!(p.region(r).len() <= 16, "region over the size bound");
            assert!(!p.region(r).is_empty());
            for &u in p.region(r) {
                assert!(!seen[u.index()], "node assigned twice");
                seen[u.index()] = true;
                assert_eq!(p.region_of(u), r);
            }
        }
        assert!(seen.iter().all(|&s| s), "node left unassigned");
    }

    #[test]
    fn regions_are_connected_internally() {
        let g = builders::grid(12, 12);
        let p = RegionPartition::grow(&g, 20, 3);
        for r in 0..p.region_count() {
            assert!(
                crate::components::is_connected_subset(&g, p.region(r)),
                "region {r} is disconnected"
            );
        }
    }

    #[test]
    fn deterministic_per_seed_and_sensitive_to_it() {
        let g = builders::grid(8, 8);
        let a = RegionPartition::grow(&g, 12, 1);
        let b = RegionPartition::grow(&g, 12, 1);
        assert_eq!(a, b);
        let c = RegionPartition::grow(&g, 12, 2);
        // Different seeds are allowed to coincide on tiny graphs, but on
        // an 8x8 grid the seed order virtually always differs.
        assert!(a != c || a.region_count() == c.region_count());
    }

    #[test]
    fn borders_and_halos_are_consistent() {
        let g = builders::grid(6, 6);
        let p = RegionPartition::grow(&g, 9, 11);
        for u in g.nodes() {
            let crosses = g.neighbors(u).any(|v| p.region_of(v) != p.region_of(u));
            assert_eq!(p.is_border(u), crosses);
        }
        for r in 0..p.region_count() {
            let halo = p.halo_of(&g, r, 1);
            for &h in &halo {
                assert_ne!(p.region_of(h), r);
                assert!(g.neighbors(h).any(|v| p.region_of(v) == r));
            }
            assert!(p.halo_of(&g, r, 0).is_empty());
        }
        let near = p.near_border(&g, 0);
        for u in g.nodes() {
            assert_eq!(near[u.index()], p.is_border(u));
        }
    }

    #[test]
    fn ball_is_sorted_union_of_region_and_halo() {
        let g = builders::grid(6, 6);
        let p = RegionPartition::grow(&g, 9, 11);
        for r in 0..p.region_count() {
            for k in 0..3u32 {
                let ball = p.ball_of(&g, r, k);
                let halo = p.halo_of(&g, r, k);
                assert_eq!(ball.len(), p.region(r).len() + halo.len());
                assert!(ball.windows(2).all(|w| w[0] < w[1]), "ball not sorted");
                for &u in p.region(r) {
                    assert!(ball.binary_search(&u).is_ok());
                }
                for &u in &halo {
                    assert!(ball.binary_search(&u).is_ok());
                }
            }
        }
    }

    #[test]
    fn single_region_when_bound_covers_graph() {
        let g = builders::grid(4, 4);
        let p = RegionPartition::grow(&g, 100, 5);
        assert_eq!(p.region_count(), 1);
        assert!(p.border_nodes().is_empty());
    }
}
