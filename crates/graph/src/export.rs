//! Serialization helpers for debugging and plotting.
//!
//! The benchmark harness writes topologies and placements to disk so the
//! figures can be re-plotted outside Rust; Graphviz DOT output is handy
//! when eyeballing small grids.

use std::fmt::Write as _;

use crate::{Graph, NodeId};

/// Renders the graph in Graphviz DOT format.
///
/// `label` customizes per-node labels (return `None` to fall back to the
/// node id).
///
/// # Example
///
/// ```
/// use peercache_graph::{builders, export};
///
/// let g = builders::path(2);
/// let dot = export::to_dot(&g, |_| None);
/// assert!(dot.contains("0 -- 1"));
/// ```
pub fn to_dot<F>(g: &Graph, label: F) -> String
where
    F: Fn(NodeId) -> Option<String>,
{
    let mut out = String::from("graph peercache {\n");
    for n in g.nodes() {
        match label(n) {
            Some(l) => {
                let _ = writeln!(out, "  {} [label=\"{}\"];", n.index(), l);
            }
            None => {
                let _ = writeln!(out, "  {};", n.index());
            }
        }
    }
    for (u, v) in g.edges() {
        let _ = writeln!(out, "  {} -- {};", u.index(), v.index());
    }
    out.push_str("}\n");
    out
}

/// Renders the edge list as CSV with a `u,v` header.
pub fn to_edge_csv(g: &Graph) -> String {
    let mut out = String::from("u,v\n");
    for (u, v) in g.edges() {
        let _ = writeln!(out, "{},{}", u.index(), v.index());
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builders;

    #[test]
    fn dot_contains_every_edge() {
        let g = builders::grid(2, 2);
        let dot = to_dot(&g, |_| None);
        assert!(dot.starts_with("graph peercache {"));
        for (u, v) in g.edges() {
            assert!(dot.contains(&format!("{} -- {};", u.index(), v.index())));
        }
    }

    #[test]
    fn dot_uses_labels_when_given() {
        let g = builders::path(2);
        let dot = to_dot(&g, |n| Some(format!("node-{}", n.index())));
        assert!(dot.contains("label=\"node-0\""));
    }

    #[test]
    fn csv_has_header_and_rows() {
        let g = builders::path(3);
        let csv = to_edge_csv(&g);
        let lines: Vec<&str> = csv.lines().collect();
        assert_eq!(lines[0], "u,v");
        assert_eq!(lines.len(), 1 + g.edge_count());
    }
}
