//! Topology analysis: eccentricities, diameter, path lengths, degree
//! statistics and betweenness centrality.
//!
//! These statistics explain *why* the caching algorithms behave the way
//! they do on a topology: the Hop-Count baseline gravitates to the
//! betweenness peak, contention costs concentrate on high-degree nodes,
//! and the dual ascent's convergence time tracks the producer's
//! eccentricity.

use std::collections::VecDeque;

use crate::paths::bfs_hops;
use crate::{Graph, GraphError, NodeId};

/// Hop eccentricity of every node: the distance to its farthest peer.
///
/// # Errors
///
/// Returns [`GraphError::Disconnected`] if any pair is unreachable.
pub fn eccentricities(g: &Graph) -> Result<Vec<u32>, GraphError> {
    let mut out = Vec::with_capacity(g.node_count());
    for n in g.nodes() {
        let hops = bfs_hops(g, n);
        let mut ecc = 0;
        for h in hops {
            match h {
                Some(h) => ecc = ecc.max(h),
                None => return Err(GraphError::Disconnected),
            }
        }
        out.push(ecc);
    }
    Ok(out)
}

/// Hop diameter: the largest eccentricity (0 for empty/singleton).
///
/// # Errors
///
/// Returns [`GraphError::Disconnected`] for disconnected graphs.
pub fn diameter(g: &Graph) -> Result<u32, GraphError> {
    Ok(eccentricities(g)?.into_iter().max().unwrap_or(0))
}

/// Hop radius: the smallest eccentricity (0 for empty/singleton).
///
/// # Errors
///
/// Returns [`GraphError::Disconnected`] for disconnected graphs.
pub fn radius(g: &Graph) -> Result<u32, GraphError> {
    Ok(eccentricities(g)?.into_iter().min().unwrap_or(0))
}

/// Mean hop distance over all ordered pairs of distinct nodes.
///
/// Returns 0 for graphs with fewer than two nodes.
///
/// # Errors
///
/// Returns [`GraphError::Disconnected`] for disconnected graphs.
pub fn average_path_length(g: &Graph) -> Result<f64, GraphError> {
    let n = g.node_count();
    if n < 2 {
        return Ok(0.0);
    }
    let mut total = 0u64;
    for src in g.nodes() {
        for h in bfs_hops(g, src) {
            match h {
                Some(h) => total += u64::from(h),
                None => return Err(GraphError::Disconnected),
            }
        }
    }
    Ok(total as f64 / (n * (n - 1)) as f64)
}

/// Summary of the degree sequence.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DegreeStats {
    /// Smallest degree.
    pub min: usize,
    /// Largest degree.
    pub max: usize,
    /// Mean degree.
    pub mean: f64,
}

/// Degree statistics of the graph (zeros for the empty graph).
pub fn degree_stats(g: &Graph) -> DegreeStats {
    let degrees: Vec<usize> = g.nodes().map(|n| g.degree(n)).collect();
    if degrees.is_empty() {
        return DegreeStats {
            min: 0,
            max: 0,
            mean: 0.0,
        };
    }
    DegreeStats {
        min: *degrees.iter().min().expect("nonempty"),
        max: *degrees.iter().max().expect("nonempty"),
        mean: degrees.iter().sum::<usize>() as f64 / degrees.len() as f64,
    }
}

/// Betweenness centrality of every node (Brandes' algorithm on the
/// unweighted graph), normalized by the number of ordered pairs not
/// involving the node.
///
/// High-betweenness nodes relay the most shortest paths — they are
/// where contention concentrates, and where the Hop-Count baseline
/// likes to park its caches.
///
/// # Example
///
/// ```
/// use peercache_graph::{analysis, builders, NodeId};
///
/// let g = builders::star(5);
/// let bc = analysis::betweenness(&g);
/// // The hub relays every leaf pair; leaves relay nothing.
/// assert_eq!(bc[0], 1.0);
/// assert_eq!(bc[1], 0.0);
/// ```
pub fn betweenness(g: &Graph) -> Vec<f64> {
    let n = g.node_count();
    let mut centrality = vec![0.0f64; n];
    for s in 0..n {
        // Brandes: single-source shortest-path DAG + dependency
        // accumulation in reverse BFS order.
        let mut stack: Vec<usize> = Vec::new();
        let mut preds: Vec<Vec<usize>> = vec![Vec::new(); n];
        let mut sigma = vec![0.0f64; n];
        let mut dist = vec![-1i64; n];
        sigma[s] = 1.0;
        dist[s] = 0;
        let mut queue = VecDeque::new();
        queue.push_back(s);
        while let Some(v) = queue.pop_front() {
            stack.push(v);
            for w in g.neighbors(NodeId::new(v)) {
                let w = w.index();
                if dist[w] < 0 {
                    dist[w] = dist[v] + 1;
                    queue.push_back(w);
                }
                if dist[w] == dist[v] + 1 {
                    sigma[w] += sigma[v];
                    preds[w].push(v);
                }
            }
        }
        let mut delta = vec![0.0f64; n];
        while let Some(w) = stack.pop() {
            for &v in &preds[w] {
                delta[v] += sigma[v] / sigma[w] * (1.0 + delta[w]);
            }
            if w != s {
                centrality[w] += delta[w];
            }
        }
    }
    // Normalize by the (n-1)(n-2) ordered pairs excluding the node.
    if n > 2 {
        let scale = 1.0 / ((n - 1) as f64 * (n - 2) as f64);
        for c in &mut centrality {
            *c *= scale;
        }
    }
    centrality
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builders;

    #[test]
    fn grid_eccentricities_and_diameter() {
        let g = builders::grid(3, 3);
        let ecc = eccentricities(&g).unwrap();
        assert_eq!(ecc[4], 2); // center
        assert_eq!(ecc[0], 4); // corner
        assert_eq!(diameter(&g).unwrap(), 4);
        assert_eq!(radius(&g).unwrap(), 2);
    }

    #[test]
    fn disconnected_graph_errors() {
        let g = Graph::new(3);
        assert_eq!(eccentricities(&g), Err(GraphError::Disconnected));
        assert_eq!(diameter(&g), Err(GraphError::Disconnected));
        assert_eq!(average_path_length(&g), Err(GraphError::Disconnected));
    }

    #[test]
    fn trivial_graphs() {
        assert_eq!(diameter(&Graph::new(1)).unwrap(), 0);
        assert_eq!(average_path_length(&Graph::new(1)).unwrap(), 0.0);
        assert_eq!(diameter(&Graph::new(0)).unwrap(), 0);
    }

    #[test]
    fn path_average_length() {
        // Path 0-1-2: pairs (0,1)=1 (0,2)=2 (1,2)=1 both directions.
        let g = builders::path(3);
        let apl = average_path_length(&g).unwrap();
        assert!((apl - 8.0 / 6.0).abs() < 1e-12);
    }

    #[test]
    fn degree_stats_of_star() {
        let s = degree_stats(&builders::star(5));
        assert_eq!(s.min, 1);
        assert_eq!(s.max, 4);
        assert!((s.mean - 8.0 / 5.0).abs() < 1e-12);
        let empty = degree_stats(&Graph::new(0));
        assert_eq!(empty.max, 0);
    }

    #[test]
    fn betweenness_of_path_peaks_in_the_middle() {
        let g = builders::path(5);
        let bc = betweenness(&g);
        assert!(bc[2] > bc[1]);
        assert!(bc[1] > bc[0]);
        assert_eq!(bc[0], 0.0);
        // Middle of a 5-path relays (0,3),(0,4),(1,3),(1,4),(3,0)... —
        // normalized: 4 pairs each direction / 12 ordered pairs.
        assert!((bc[2] - 8.0 / 12.0).abs() < 1e-9);
    }

    #[test]
    fn betweenness_of_complete_graph_is_zero() {
        let g = builders::complete(5);
        for c in betweenness(&g) {
            assert_eq!(c, 0.0);
        }
    }

    #[test]
    fn betweenness_handles_equal_shortest_paths() {
        // 4-cycle: opposite pairs have two shortest paths; each relay
        // node carries half of each.
        let g = builders::ring(4);
        let bc = betweenness(&g);
        for c in bc {
            assert!((c - (2.0 * 0.5) / (3.0 * 2.0)).abs() < 1e-9);
        }
    }
}
