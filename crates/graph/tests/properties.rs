//! Property-based tests of the graph substrate on randomized inputs.

use proptest::prelude::*;

use peercache_graph::mst::{kruskal, prim, UnionFind};
use peercache_graph::oracle::LandmarkOracle;
use peercache_graph::paths::{
    bfs_hops, dijkstra_edge_weighted, k_hop_neighborhood, AllPairsPaths, Parallelism, PathSelection,
};
use peercache_graph::regions::RegionPartition;
use peercache_graph::{analysis, builders, components, steiner, Graph, NodeId};

fn connected_graph() -> impl Strategy<Value = Graph> {
    (
        4usize..40,
        0u64..1000,
        prop_oneof![Just(0.05f64), Just(0.15), Just(0.4)],
    )
        .prop_map(|(n, seed, p)| {
            use rand::SeedableRng;
            let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(seed);
            builders::erdos_renyi_connected(n, p, &mut rng)
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn generated_graphs_are_connected_simple(g in connected_graph()) {
        prop_assert!(components::is_connected(&g));
        // Simple: no self-loops, each edge listed once with u < v.
        let edges: Vec<_> = g.edges().collect();
        for &(u, v) in &edges {
            prop_assert!(u < v);
        }
        let mut dedup = edges.clone();
        dedup.sort_unstable();
        dedup.dedup();
        prop_assert_eq!(dedup.len(), edges.len());
        prop_assert_eq!(edges.len(), g.edge_count());
    }

    #[test]
    fn bfs_satisfies_the_triangle_property(g in connected_graph()) {
        // Distances differ by at most 1 across an edge.
        let hops = bfs_hops(&g, NodeId::new(0));
        for (u, v) in g.edges() {
            let du = hops[u.index()].unwrap();
            let dv = hops[v.index()].unwrap();
            prop_assert!(du.abs_diff(dv) <= 1);
        }
    }

    #[test]
    fn k_hop_neighborhoods_are_nested(g in connected_graph()) {
        let src = NodeId::new(0);
        let mut prev: Vec<NodeId> = Vec::new();
        for k in 1..=4 {
            let cur = k_hop_neighborhood(&g, src, k);
            for n in &prev {
                prop_assert!(cur.contains(n), "k-hop sets must be nested");
            }
            prev = cur;
        }
        // At the diameter everything is reachable.
        let all = k_hop_neighborhood(&g, src, g.node_count() as u32);
        prop_assert_eq!(all.len(), g.node_count() - 1);
    }

    #[test]
    fn all_pairs_agrees_with_single_source_dijkstra(g in connected_graph()) {
        let costs: Vec<f64> = g.nodes().map(|n| 1.0 + (n.index() % 4) as f64).collect();
        let ap = AllPairsPaths::compute(&g, &costs, PathSelection::MinCost).unwrap();
        // Node-weighted path cost == edge-weighted cost under the
        // half-sum transform plus both endpoint terms.
        let src = NodeId::new(0);
        let (edge_costs, _) = dijkstra_edge_weighted(&g, src, |u, v| {
            (costs[u.index()] + costs[v.index()]) / 2.0
        });
        for v in g.nodes() {
            if v == src { continue; }
            let expected = edge_costs[v.index()]
                + (costs[src.index()] + costs[v.index()]) / 2.0;
            prop_assert!((ap.cost(src, v) - expected).abs() < 1e-6,
                "node {v}: {} vs {}", ap.cost(src, v), expected);
        }
    }

    #[test]
    fn path_costs_match_reconstructed_paths(g in connected_graph()) {
        let costs: Vec<f64> = g.nodes().map(|n| 1.0 + (n.index() % 3) as f64).collect();
        let ap = AllPairsPaths::compute(&g, &costs, PathSelection::FewestHops).unwrap();
        for u in g.nodes().take(5) {
            for v in g.nodes().take(5) {
                let path = ap.path(u, v).unwrap();
                let sum: f64 = if u == v {
                    0.0
                } else {
                    path.iter().map(|n| costs[n.index()]).sum()
                };
                prop_assert!((ap.cost(u, v) - sum).abs() < 1e-9);
            }
        }
    }

    #[test]
    fn mst_algorithms_agree_and_span(g in connected_graph()) {
        let weight = |u: NodeId, v: NodeId| {
            let (a, b) = (u.index().min(v.index()), u.index().max(v.index()));
            1.0 + ((a * 31 + b * 17) % 13) as f64
        };
        let p = prim(&g, weight).unwrap();
        prop_assert_eq!(p.len(), g.node_count() - 1);
        let edges: Vec<(usize, usize, f64)> = g
            .edges()
            .map(|(u, v)| (u.index(), v.index(), weight(u, v)))
            .collect();
        let k = kruskal(g.node_count(), &edges);
        let pw: f64 = p.iter().map(|&(u, v)| weight(u, v)).sum();
        let kw: f64 = k.iter().map(|e| e.2).sum();
        prop_assert!((pw - kw).abs() < 1e-9);
        // Spanning: union-find over prim edges joins everyone.
        let mut uf = UnionFind::new(g.node_count());
        for (u, v) in p {
            uf.union(u.index(), v.index());
        }
        prop_assert_eq!(uf.set_count(), 1);
    }

    #[test]
    fn steiner_interpolates_between_path_and_mst(g in connected_graph()) {
        let weight = |_: NodeId, _: NodeId| 1.0;
        let all: Vec<NodeId> = g.nodes().collect();
        let spanning = steiner::steiner_tree(&g, &all, weight).unwrap();
        prop_assert_eq!(spanning.edges.len(), g.node_count() - 1);
        let some: Vec<NodeId> = all.iter().copied().step_by(3).collect();
        let partial = steiner::steiner_tree(&g, &some, weight).unwrap();
        // A subset of terminals never needs a costlier tree than the
        // full spanning tree.
        prop_assert!(partial.cost <= spanning.cost + 1e-9);
        // And at least the terminals minus one edges' worth of cost is
        // needed if they are distinct components... sanity: tree is
        // large enough to touch every terminal.
        prop_assert!(partial.nodes.len() >= some.len());
    }

    #[test]
    fn betweenness_is_nonnegative_and_bounded(g in connected_graph()) {
        for c in analysis::betweenness(&g) {
            prop_assert!((0.0..=1.0 + 1e-9).contains(&c));
        }
    }

    #[test]
    fn diameter_bounds_eccentricities(g in connected_graph()) {
        let ecc = analysis::eccentricities(&g).unwrap();
        let d = analysis::diameter(&g).unwrap();
        let r = analysis::radius(&g).unwrap();
        prop_assert!(r <= d);
        prop_assert!(d <= 2 * r, "diameter at most twice the radius");
        for e in ecc {
            prop_assert!(e >= r && e <= d);
        }
        let apl = analysis::average_path_length(&g).unwrap();
        prop_assert!(apl <= f64::from(d));
    }

    #[test]
    fn induced_subgraph_preserves_adjacency(g in connected_graph()) {
        let keep: Vec<NodeId> = g.nodes().step_by(2).collect();
        let (sub, originals) = g.induced_subgraph(&keep).unwrap();
        for u in 0..sub.node_count() {
            for v in (u + 1)..sub.node_count() {
                prop_assert_eq!(
                    sub.contains_edge(NodeId::new(u), NodeId::new(v)),
                    g.contains_edge(originals[u], originals[v])
                );
            }
        }
    }

    #[test]
    fn parallel_apsp_is_bitwise_identical_to_sequential(
        g in connected_graph(),
        threads in 2usize..9,
    ) {
        let costs: Vec<f64> = g.nodes().map(|n| g.degree(n) as f64).collect();
        for selection in [PathSelection::FewestHops, PathSelection::MinCost] {
            let seq =
                AllPairsPaths::compute_with(&g, &costs, selection, Parallelism::Sequential)
                    .unwrap();
            let par =
                AllPairsPaths::compute_with(&g, &costs, selection, Parallelism::Threads(threads))
                    .unwrap();
            for u in g.nodes() {
                for v in g.nodes() {
                    prop_assert_eq!(seq.cost(u, v).to_bits(), par.cost(u, v).to_bits());
                    prop_assert_eq!(seq.hops(u, v), par.hops(u, v));
                    prop_assert_eq!(seq.path(u, v), par.path(u, v));
                }
            }
        }
    }

    #[test]
    fn landmark_bounds_bracket_all_pairs_cost(
        g in connected_graph(),
        count in 1usize..8,
        seed in 0u64..64,
    ) {
        // Bounds bracket the MinCost metric exactly; under FewestHops
        // (the planners' selection) the lower bound still holds.
        let costs: Vec<f64> = g.nodes().map(|n| 1.0 + (n.index() % 5) as f64 * 0.5).collect();
        let min_cost =
            AllPairsPaths::compute(&g, &costs, PathSelection::MinCost).unwrap();
        let fewest =
            AllPairsPaths::compute(&g, &costs, PathSelection::FewestHops).unwrap();
        let oracle = LandmarkOracle::build(&g, &costs, count, seed).unwrap();
        for u in g.nodes() {
            for v in g.nodes() {
                let exact = min_cost.cost(u, v);
                let (lo, hi) = (oracle.lower_bound(u, v), oracle.upper_bound(u, v));
                prop_assert!(lo <= exact + 1e-9, "lower bound broken at ({u},{v})");
                prop_assert!(exact <= hi + 1e-9, "upper bound broken at ({u},{v})");
                prop_assert!(lo <= fewest.cost(u, v) + 1e-9,
                    "FewestHops lower bound broken at ({u},{v})");
            }
        }
    }

    #[test]
    fn landmark_bounds_tighten_monotonically(
        g in connected_graph(),
        seed in 0u64..64,
    ) {
        // Farthest-point selection is prefix-stable, so more landmarks
        // can only shrink the bracket.
        let costs: Vec<f64> = g.nodes().map(|n| 1.0 + (n.index() % 3) as f64).collect();
        let small = LandmarkOracle::build(&g, &costs, 2, seed).unwrap();
        let large = LandmarkOracle::build(&g, &costs, 6, seed).unwrap();
        prop_assert_eq!(small.landmarks(), &large.landmarks()[..small.landmarks().len()]);
        for u in g.nodes() {
            for v in g.nodes() {
                prop_assert!(large.lower_bound(u, v) >= small.lower_bound(u, v) - 1e-12);
                prop_assert!(large.upper_bound(u, v) <= small.upper_bound(u, v) + 1e-12);
            }
        }
    }

    #[test]
    fn landmark_oracle_is_deterministic_across_replay(
        g in connected_graph(),
        count in 1usize..6,
        seed in 0u64..64,
    ) {
        let costs: Vec<f64> = g.nodes().map(|n| 1.0 + g.degree(n) as f64).collect();
        let a = LandmarkOracle::build(&g, &costs, count, seed).unwrap();
        let b = LandmarkOracle::build(&g, &costs, count, seed).unwrap();
        prop_assert_eq!(a.landmarks(), b.landmarks());
        for u in g.nodes() {
            for v in g.nodes() {
                prop_assert_eq!(a.lower_bound(u, v).to_bits(), b.lower_bound(u, v).to_bits());
                prop_assert_eq!(a.upper_bound(u, v).to_bits(), b.upper_bound(u, v).to_bits());
                prop_assert_eq!(a.hops_lower(u, v), b.hops_lower(u, v));
                prop_assert_eq!(a.hops_upper(u, v), b.hops_upper(u, v));
            }
        }
    }

    #[test]
    fn ball_fallback_is_exact_inside_and_absent_outside(
        g in connected_graph(),
        k in 1u32..4,
    ) {
        let costs: Vec<f64> = g.nodes().map(|n| 1.0 + (n.index() % 4) as f64).collect();
        let ap = AllPairsPaths::compute(&g, &costs, PathSelection::FewestHops).unwrap();
        for u in g.nodes().take(6) {
            for v in g.nodes() {
                let got = LandmarkOracle::exact_in_ball(&g, &costs, u, v, k);
                match ap.hops(u, v) {
                    Some(h) if h <= k => {
                        prop_assert_eq!(got.unwrap().to_bits(), ap.cost(u, v).to_bits());
                    }
                    _ => prop_assert!(got.is_none()),
                }
            }
        }
    }

    #[test]
    fn region_partition_covers_and_bounds(
        g in connected_graph(),
        max_size in 2usize..16,
        seed in 0u64..64,
    ) {
        let p = RegionPartition::grow(&g, max_size, seed);
        let mut seen = vec![false; g.node_count()];
        for r in 0..p.region_count() {
            prop_assert!(p.region(r).len() <= max_size);
            prop_assert!(components::is_connected_subset(&g, p.region(r)));
            for &u in p.region(r) {
                prop_assert!(!seen[u.index()]);
                seen[u.index()] = true;
            }
        }
        prop_assert!(seen.iter().all(|&s| s));
        prop_assert_eq!(p.clone(), RegionPartition::grow(&g, max_size, seed));
    }

    #[test]
    fn incremental_update_matches_fresh_compute(
        g in connected_graph(),
        rounds in prop::collection::vec(
            prop::collection::vec((0usize..64, 1u32..4), 1..5),
            1..4,
        ),
    ) {
        // Arbitrary sequences of positive S(k)-style bumps: after every
        // batch, the incrementally-updated structure must be bitwise
        // identical to a fresh computation on the new costs.
        let n = g.node_count();
        let base: Vec<f64> = g.nodes().map(|v| g.degree(v) as f64).collect();
        for selection in [PathSelection::FewestHops, PathSelection::MinCost] {
            let mut incremental =
                AllPairsPaths::compute_with(&g, &base, selection, Parallelism::Sequential)
                    .unwrap();
            let mut costs = base.clone();
            for batch in &rounds {
                for &(node, delta) in batch {
                    costs[node % n] += f64::from(delta);
                }
                incremental.update(&g, &costs, Parallelism::Sequential).unwrap();
                let fresh = AllPairsPaths::compute(&g, &costs, selection).unwrap();
                for u in g.nodes() {
                    for v in g.nodes() {
                        prop_assert_eq!(
                            incremental.cost(u, v).to_bits(),
                            fresh.cost(u, v).to_bits(),
                            "cost({u},{v}) diverged after update"
                        );
                        prop_assert_eq!(incremental.hops(u, v), fresh.hops(u, v));
                        prop_assert_eq!(incremental.path(u, v), fresh.path(u, v));
                    }
                }
            }
        }
    }
}
