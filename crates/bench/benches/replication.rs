//! Replication matrix: durability, SWIM detection lag, repair traffic,
//! and replica-load fairness versus replication degree R and fault
//! intensity.
//!
//! One seeded chaos trace (two 2-node death batches, a crash-restart,
//! SWIM-driven departures, versioned replicas with anti-entropy) runs
//! per `(R, intensity)` cell. The cell logic lives in
//! [`peercache_bench::replication_cells`], shared with the `repro
//! replication` table and the `repro perf` regression gate so the
//! committed baseline and the gate can never measure different things.
//! Besides the criterion display, the bench writes
//! `BENCH_replication.json` at the repository root with per-cell
//! durability, detection, recovery, and fairness numbers. Set
//! `PEERCACHE_BENCH_QUICK=1` for a fast smoke variant that skips the
//! JSON.

use criterion::{criterion_group, criterion_main, Criterion};

use peercache_bench::replication_cells::{render_json, run_cell, DEGREES, INTENSITIES};

fn quick_mode() -> bool {
    std::env::var("PEERCACHE_BENCH_QUICK").is_ok_and(|v| v == "1")
}

fn replication_matrix(c: &mut Criterion) {
    let quick = quick_mode();

    // Criterion display: the R = 3 trace at the middle intensity.
    let mut group = c.benchmark_group("replication");
    group.sample_size(10);
    group.bench_function("trace_r3_at_0.05", |b| b.iter(|| run_cell(3, 0.05)));
    group.finish();

    let degrees: &[usize] = if quick { &DEGREES[..1] } else { &DEGREES };
    let intensities: &[f64] = if quick {
        &INTENSITIES[..1]
    } else {
        &INTENSITIES
    };
    let mut cells = Vec::new();
    for &degree in degrees {
        for &intensity in intensities {
            cells.push(run_cell(degree, intensity));
        }
    }
    for c in &cells {
        eprintln!(
            "R={} intensity={:.2}: durability {:.4} ({}/{} lost), {} confirmed (lag max {}), {} repairs, {} recovered, min copies {}, gini {:.4}",
            c.degree,
            c.intensity,
            c.durability(),
            c.lost_writes,
            c.at_risk,
            c.confirmed,
            c.detect_lag_max,
            c.repairs,
            c.recovery_chunks,
            c.min_copies,
            c.replica_gini
        );
    }
    if !quick {
        let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_replication.json");
        std::fs::write(path, render_json(&cells)).expect("write BENCH_replication.json");
        eprintln!("wrote {path}");
    }
}

criterion_group!(benches, replication_matrix);
criterion_main!(benches);
