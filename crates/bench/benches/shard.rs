//! The shard thread sweep: one region-sharded world per thread setting
//! consumes the same seeded churn trace; every setting must end on the
//! bit-identical state digest (asserted inside the sweep), and the wall
//! times show what the fan-out buys on this host.
//!
//! The measurement lives in [`peercache_bench::shard_cells`], shared
//! with `repro shard` and the `repro perf` regression gate. Besides the
//! criterion display, the bench writes `BENCH_shard.json` at the
//! repository root. Set `PEERCACHE_BENCH_QUICK=1` for a fast smoke
//! variant that shrinks the grid and skips the JSON, so CI smoke runs
//! never clobber the committed numbers.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

use peercache_bench::shard_cells::{
    measure_threads, render_json, run_sweep, speedup_8x, GRID_SIDE, TICKS,
};

fn quick_mode() -> bool {
    std::env::var("PEERCACHE_BENCH_QUICK").is_ok_and(|v| v == "1")
}

fn shard(c: &mut Criterion) {
    let quick = quick_mode();
    let (side, ticks) = if quick { (20, 2) } else { (GRID_SIDE, TICKS) };

    let rows = run_sweep(side, ticks);
    for r in &rows {
        eprintln!(
            "grid{side} x{ticks} ticks, threads={}: {:.1} ms \
             (digest {:#018x}, {} shards, {} cross-shard events)",
            r.threads, r.wall_ms, r.digest, r.shards, r.cross_shard_events
        );
    }
    eprintln!("speedup 1->8 threads: {:.2}x", speedup_8x(&rows));

    // Criterion display: re-run the single-thread and max-thread
    // settings on the small grid only (one full-size sweep is seconds
    // and already measured above).
    let mut group = c.benchmark_group("shard");
    group.sample_size(10);
    for threads in [1usize, 8] {
        group.bench_with_input(
            BenchmarkId::new("churn_ticks", threads),
            &threads,
            |b, &threads| {
                b.iter(|| measure_threads(12, 2, threads));
            },
        );
    }
    group.finish();

    if !quick {
        let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_shard.json");
        std::fs::write(path, render_json(side, ticks, &rows)).expect("write BENCH_shard.json");
        eprintln!("wrote {path}");
    }
}

criterion_group!(benches, shard);
criterion_main!(benches);
