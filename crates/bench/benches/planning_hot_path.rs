//! The planning hot path: optimized pipeline (parallel APSP,
//! incremental contention recompute, event-driven dual ascent, shared
//! Steiner solver) versus the original reference pipeline, on the
//! topologies the acceptance criteria name.
//!
//! Besides the criterion display, the bench writes `BENCH_planning.json`
//! at the repository root with wall-clock medians and speedups measured
//! by `std::time::Instant` (the in-tree criterion stand-in does not
//! export its measurements). Set `PEERCACHE_BENCH_QUICK=1` to run a
//! fast smoke variant that skips the JSON (so CI smoke runs never
//! clobber the committed numbers).

use std::time::Instant;

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

use peercache_core::approx::{ApproxConfig, ApproxPlanner};
use peercache_core::planner::CachePlanner;
use peercache_core::workload::paper_grid;
use peercache_core::Network;

const CHUNKS: usize = 8;

fn quick_mode() -> bool {
    std::env::var("PEERCACHE_BENCH_QUICK").is_ok_and(|v| v == "1")
}

fn optimized_config() -> ApproxConfig {
    ApproxConfig::default()
}

fn reference_config() -> ApproxConfig {
    ApproxConfig {
        reference_mode: true,
        ..Default::default()
    }
}

fn plan_total(net: &Network, cfg: &ApproxConfig, chunks: usize) -> f64 {
    let mut copy = net.clone();
    let placement = ApproxPlanner::new(cfg.clone())
        .plan(&mut copy, chunks)
        .expect("planner succeeds");
    placement.total_costs().total()
}

/// Median wall time in milliseconds over `runs` full plans.
fn measure_ms(net: &Network, cfg: &ApproxConfig, chunks: usize, runs: usize) -> f64 {
    let mut samples: Vec<f64> = (0..runs)
        .map(|_| {
            let start = Instant::now();
            let total = plan_total(net, cfg, chunks);
            let ms = start.elapsed().as_secs_f64() * 1e3;
            assert!(total.is_finite());
            ms
        })
        .collect();
    samples.sort_by(f64::total_cmp);
    samples[samples.len() / 2]
}

fn write_json(rows: &[(String, usize, f64, f64, bool)], chunks: usize) {
    let mut out = String::from("{\n");
    out.push_str("  \"bench\": \"planning_hot_path\",\n");
    out.push_str(&format!("  \"chunks\": {chunks},\n"));
    out.push_str("  \"planner\": \"Appx\",\n  \"results\": [\n");
    for (idx, (topo, nodes, opt_ms, ref_ms, cost_equal)) in rows.iter().enumerate() {
        let comma = if idx + 1 < rows.len() { "," } else { "" };
        out.push_str(&format!(
            "    {{\"topology\": \"{topo}\", \"nodes\": {nodes}, \
             \"optimized_ms\": {opt_ms:.1}, \"reference_ms\": {ref_ms:.1}, \
             \"speedup\": {:.2}, \"cost_bitwise_equal\": {cost_equal}}}{comma}\n",
            ref_ms / opt_ms,
        ));
    }
    out.push_str("  ]\n}\n");
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_planning.json");
    std::fs::write(path, out).expect("write BENCH_planning.json");
    eprintln!("wrote {path}");
}

fn planning_hot_path(c: &mut Criterion) {
    let quick = quick_mode();
    let sides: &[usize] = if quick { &[6] } else { &[10, 20] };
    let runs = if quick { 1 } else { 3 };

    let mut group = c.benchmark_group("planning_hot_path");
    group.sample_size(10);
    let mut rows = Vec::new();
    for &side in sides {
        let net = paper_grid(side).expect("grid builds");
        let nodes = side * side;
        group.bench_with_input(BenchmarkId::new("optimized", nodes), &net, |b, net| {
            b.iter(|| plan_total(net, &optimized_config(), CHUNKS))
        });
        group.bench_with_input(BenchmarkId::new("reference", nodes), &net, |b, net| {
            b.iter(|| plan_total(net, &reference_config(), CHUNKS))
        });

        let opt_ms = measure_ms(&net, &optimized_config(), CHUNKS, runs);
        let ref_ms = measure_ms(&net, &reference_config(), CHUNKS, runs);
        let cost_equal = plan_total(&net, &optimized_config(), CHUNKS).to_bits()
            == plan_total(&net, &reference_config(), CHUNKS).to_bits();
        eprintln!(
            "grid{side} (Q={CHUNKS}): optimized {opt_ms:.1} ms, reference {ref_ms:.1} ms, \
             speedup {:.2}x, cost_bitwise_equal={cost_equal}",
            ref_ms / opt_ms
        );
        rows.push((format!("grid{side}"), nodes, opt_ms, ref_ms, cost_equal));
    }
    group.finish();

    if !quick {
        write_json(&rows, CHUNKS);
    }
}

criterion_group!(benches, planning_hot_path);
criterion_main!(benches);
