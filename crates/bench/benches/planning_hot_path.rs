//! The planning hot path: optimized pipeline (parallel APSP,
//! incremental contention recompute, event-driven dual ascent, shared
//! Steiner solver) versus the original reference pipeline, on the
//! topologies the acceptance criteria name.
//!
//! The measurement lives in [`peercache_bench::planning_cells`],
//! shared with the `repro perf` regression gate. Besides the criterion
//! display, the bench writes `BENCH_planning.json` at the repository
//! root with wall-clock medians and speedups measured by
//! `std::time::Instant` (the in-tree criterion stand-in does not
//! export its measurements). Set `PEERCACHE_BENCH_QUICK=1` to run a
//! fast smoke variant that skips the JSON (so CI smoke runs never
//! clobber the committed numbers).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

use peercache_bench::planning_cells::{
    measure_side, optimized_config, plan_total, reference_config, render_json, CHUNKS, FULL_RUNS,
    FULL_SIDES,
};
use peercache_core::workload::paper_grid;

fn quick_mode() -> bool {
    std::env::var("PEERCACHE_BENCH_QUICK").is_ok_and(|v| v == "1")
}

fn planning_hot_path(c: &mut Criterion) {
    let quick = quick_mode();
    let sides: &[usize] = if quick { &[6] } else { &FULL_SIDES };
    let runs = if quick { 1 } else { FULL_RUNS };

    let mut group = c.benchmark_group("planning_hot_path");
    group.sample_size(10);
    let mut rows = Vec::new();
    for &side in sides {
        let net = paper_grid(side).expect("grid builds");
        let nodes = side * side;
        group.bench_with_input(BenchmarkId::new("optimized", nodes), &net, |b, net| {
            b.iter(|| plan_total(net, &optimized_config(), CHUNKS))
        });
        group.bench_with_input(BenchmarkId::new("reference", nodes), &net, |b, net| {
            b.iter(|| plan_total(net, &reference_config(), CHUNKS))
        });

        let row = measure_side(side, runs);
        eprintln!(
            "grid{side} (Q={CHUNKS}): optimized {:.1} ms, reference {:.1} ms, \
             speedup {:.2}x, cost_bitwise_equal={}",
            row.2,
            row.3,
            row.3 / row.2,
            row.4
        );
        rows.push(row);
    }
    group.finish();

    if !quick {
        let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_planning.json");
        std::fs::write(path, render_json(&rows, CHUNKS)).expect("write BENCH_planning.json");
        eprintln!("wrote {path}");
    }
}

criterion_group!(benches, planning_hot_path);
criterion_main!(benches);
