//! Microbenchmarks of the substrates the planners are built on:
//! all-pairs node-weighted shortest paths, Steiner trees, the simplex
//! solver, the distributed protocol round, and the fairness metrics.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

use peercache_core::workload::paper_grid;
use peercache_core::ChunkId;
use peercache_dist::sim::{run_chunk_round, SimConfig};
use peercache_dist::view::build_views;
use peercache_graph::paths::{AllPairsPaths, PathSelection};
use peercache_graph::{builders, steiner, NodeId};
use peercache_lp::{solve_lp, Model, Relation, Sense};

fn all_pairs(c: &mut Criterion) {
    let mut group = c.benchmark_group("all_pairs_paths");
    for side in [6usize, 10, 16] {
        let g = builders::grid(side, side);
        let costs: Vec<f64> = g.nodes().map(|n| 1.0 + g.degree(n) as f64).collect();
        group.bench_with_input(BenchmarkId::from_parameter(side * side), &g, |b, g| {
            b.iter(|| {
                AllPairsPaths::compute(g, &costs, PathSelection::FewestHops).expect("paths compute")
            })
        });
    }
    group.finish();
}

fn steiner_tree(c: &mut Criterion) {
    let mut group = c.benchmark_group("steiner_tree");
    for (side, terminals) in [(8usize, 4usize), (8, 12), (16, 12)] {
        let g = builders::grid(side, side);
        let terms: Vec<NodeId> = (0..terminals)
            .map(|i| NodeId::new(i * (side * side) / terminals))
            .collect();
        group.bench_with_input(
            BenchmarkId::new(format!("{side}x{side}"), terminals),
            &terms,
            |b, terms| {
                b.iter(|| {
                    steiner::steiner_tree(&g, terms, |u, v| (g.degree(u) + g.degree(v)) as f64)
                        .expect("tree builds")
                })
            },
        );
    }
    group.finish();
}

fn simplex(c: &mut Criterion) {
    // A transportation-style LP that grows with n.
    let build = |n: usize| {
        let mut m = Model::new(Sense::Minimize);
        let vars: Vec<Vec<_>> = (0..n)
            .map(|i| {
                (0..n)
                    .map(|j| {
                        m.add_var(
                            format!("x{i}_{j}"),
                            0.0,
                            f64::INFINITY,
                            ((i * 7 + j * 13) % 11) as f64 + 1.0,
                        )
                    })
                    .collect()
            })
            .collect();
        for row in &vars {
            m.add_constraint(row.iter().map(|&v| (v, 1.0)).collect(), Relation::Eq, 1.0);
        }
        for j in 0..n {
            m.add_constraint(
                vars.iter().map(|row| (row[j], 1.0)).collect(),
                Relation::Le,
                1.0,
            );
        }
        m
    };
    let mut group = c.benchmark_group("simplex_assignment");
    for n in [4usize, 8, 12] {
        let model = build(n);
        group.bench_with_input(BenchmarkId::from_parameter(n * n), &model, |b, m| {
            b.iter(|| solve_lp(m).expect("lp solves"))
        });
    }
    group.finish();
}

fn distributed_round(c: &mut Criterion) {
    let mut group = c.benchmark_group("distributed_chunk_round");
    group.sample_size(10);
    for side in [6usize, 10] {
        let net = paper_grid(side).expect("grid builds");
        let (views, _) = build_views(&net, 2).unwrap();
        group.bench_with_input(BenchmarkId::from_parameter(side * side), &net, |b, net| {
            b.iter(|| run_chunk_round(net, &views, ChunkId::new(0), &SimConfig::default()))
        });
    }
    group.finish();
}

fn metrics(c: &mut Criterion) {
    let loads: Vec<usize> = (0..10_000).map(|i| (i * 31) % 7).collect();
    c.bench_function("gini_10k", |b| {
        b.iter(|| peercache_core::metrics::gini(&loads))
    });
}

criterion_group!(
    benches,
    all_pairs,
    steiner_tree,
    simplex,
    distributed_round,
    metrics
);
criterion_main!(benches);
