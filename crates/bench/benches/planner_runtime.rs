//! Criterion companion to Fig. 5: per-chunk planning time of every
//! algorithm across grid sizes, plus an ablation on the dual-ascent
//! bid step `U_α` (§IV-B: larger steps converge faster but may select
//! fewer caching nodes).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

use peercache_bench::harness::{all_planners, run_planner};
use peercache_core::approx::{dual_ascent, ApproxConfig};
use peercache_core::costs::CostWeights;
use peercache_core::exact::BruteForcePlanner;
use peercache_core::instance::ConflInstance;
use peercache_core::workload::{ScenarioBuilder, Topology};
use peercache_graph::paths::PathSelection;

fn grid(side: usize) -> peercache_core::Network {
    ScenarioBuilder::new(Topology::Grid {
        rows: side,
        cols: side,
    })
    .capacity(5)
    .build()
    .expect("grid scenario builds")
}

/// One chunk planned by each algorithm on growing grids (Fig. 5).
fn planner_runtime(c: &mut Criterion) {
    let mut group = c.benchmark_group("single_chunk_plan");
    group.sample_size(10);
    for side in [4usize, 6, 8] {
        let net = grid(side);
        for planner in all_planners() {
            group.bench_with_input(
                BenchmarkId::new(planner.name().to_string(), side * side),
                &net,
                |b, net| b.iter(|| run_planner(planner.as_ref(), net, 1)),
            );
        }
    }
    // Brute force only fits on the smallest grid.
    let tiny = grid(4);
    group.bench_with_input(BenchmarkId::new("Brtf", 16), &tiny, |b, net| {
        b.iter(|| run_planner(&BruteForcePlanner::default(), net, 1))
    });
    group.finish();
}

/// Ablation: the `U_α` bid step trades rounds for selection quality.
fn bid_step_ablation(c: &mut Criterion) {
    let net = grid(6);
    let inst = ConflInstance::build(&net, CostWeights::default(), PathSelection::FewestHops)
        .expect("instance builds");
    let mut group = c.benchmark_group("dual_ascent_u_alpha");
    for u_alpha in [0.5f64, 1.0, 2.0, 4.0] {
        let cfg = ApproxConfig {
            u_alpha,
            ..Default::default()
        };
        group.bench_with_input(BenchmarkId::from_parameter(u_alpha), &cfg, |b, cfg| {
            b.iter(|| dual_ascent(&net, &inst, cfg).expect("ascent converges"))
        });
    }
    group.finish();
}

criterion_group!(benches, planner_runtime, bid_step_ablation);
criterion_main!(benches);
