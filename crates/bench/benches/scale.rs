//! The scale wall: the hierarchical region planner on topologies the
//! dense `O(N²)` pipeline cannot touch — a 100×100 grid (10k nodes)
//! and a 100k-node connected random-geometric network.
//!
//! The measurement lives in [`peercache_bench::scale_cells`], shared
//! with the `repro perf` regression gate. Besides the criterion
//! display, the bench writes `BENCH_scale.json` at the repository root
//! (wall times by `std::time::Instant`; the in-tree criterion stand-in
//! does not export its measurements). Set `PEERCACHE_BENCH_QUICK=1`
//! for a fast smoke variant that shrinks the topologies and skips the
//! JSON, so CI smoke runs never clobber the committed numbers.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

use peercache_bench::scale_cells::{
    grid_network, measure_quality, measure_scale, render_json, rgg_network, GRID_BUDGET_MS,
    GRID_SIDE, MIN_BYTES_RATIO, QUALITY_SIDE, RGG_BUDGET_MS, RGG_NODES, RGG_SEED, SCALE_CHUNKS,
};

fn quick_mode() -> bool {
    std::env::var("PEERCACHE_BENCH_QUICK").is_ok_and(|v| v == "1")
}

fn scale(c: &mut Criterion) {
    let quick = quick_mode();
    let (grid_side, rgg_nodes, quality_side) = if quick {
        (20, 2_000, 10)
    } else {
        (GRID_SIDE, RGG_NODES, QUALITY_SIDE)
    };

    let mut group = c.benchmark_group("scale");
    group.sample_size(10);

    let quality = measure_quality(quality_side, SCALE_CHUNKS);
    eprintln!(
        "quality anchor {} ({} nodes): hier/appx total = {:.4}",
        quality.topology, quality.nodes, quality.hier_over_appx
    );

    let mut rows = Vec::new();
    for (label, net, budget_ms) in [
        (
            format!("grid{grid_side}"),
            grid_network(grid_side),
            GRID_BUDGET_MS,
        ),
        (
            format!("rgg{rgg_nodes}"),
            rgg_network(rgg_nodes, RGG_SEED),
            RGG_BUDGET_MS,
        ),
    ] {
        let row = measure_scale(&label, &net, SCALE_CHUNKS, budget_ms);
        eprintln!(
            "{label} ({} nodes, Q={SCALE_CHUNKS}): {:.1} ms (budget {:.0} ms), \
             {} regions, {} scoped bytes = {:.1}x below dense",
            row.nodes,
            row.plan_ms,
            row.budget_ms,
            row.regions,
            row.contention_bytes,
            row.bytes_ratio,
        );
        if !quick {
            assert!(
                row.plan_ms < row.budget_ms,
                "{label}: {:.1} ms blows the {:.0} ms budget",
                row.plan_ms,
                row.budget_ms
            );
            assert!(
                row.bytes_ratio >= MIN_BYTES_RATIO,
                "{label}: scoped state only {:.1}x below dense (need {MIN_BYTES_RATIO}x)",
                row.bytes_ratio
            );
        }
        // The criterion display re-plans the smaller topology only: one
        // 100k plan is tens of seconds and already measured above.
        if row.nodes <= grid_side * grid_side {
            group.bench_with_input(BenchmarkId::new("hier", row.nodes), &net, |b, net| {
                b.iter(|| {
                    measure_scale(&format!("{label}-iter"), net, 1, budget_ms);
                })
            });
        }
        rows.push(row);
    }
    group.finish();

    if !quick {
        let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_scale.json");
        std::fs::write(path, render_json(&quality, &rows, SCALE_CHUNKS))
            .expect("write BENCH_scale.json");
        eprintln!("wrote {path}");
    }
}

criterion_group!(benches, scale);
criterion_main!(benches);
