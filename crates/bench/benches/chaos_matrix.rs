//! Chaos matrix: protocol convergence and retry traffic versus fault
//! intensity, on the 10x10 grid and the paper's random-geometric
//! topology.
//!
//! One protocol round runs per `(topology, intensity)` cell with the
//! liveness mechanisms armed (retry/backoff, FREEZE leases, election
//! timeouts). Intensity scales message loss, duplication, reordering,
//! and the length of a partition window islanding one node. The cell
//! logic lives in [`peercache_bench::chaos_cells`], shared with the
//! `repro perf` regression gate so the committed baseline and the gate
//! can never measure different things. Besides the criterion display,
//! the bench writes `BENCH_chaos.json` at the repository root with
//! per-cell convergence ticks, retries, depositions, and fault counts.
//! Set `PEERCACHE_BENCH_QUICK=1` for a fast smoke variant that skips
//! the JSON.

use criterion::{criterion_group, criterion_main, Criterion};

use peercache_bench::chaos_cells::{config_at, render_json, run_cell, INTENSITIES, K_HOPS};
use peercache_core::workload::{paper_grid, paper_random};
use peercache_core::ChunkId;
use peercache_dist::sim::run_chunk_round;
use peercache_dist::view::build_views;

fn quick_mode() -> bool {
    std::env::var("PEERCACHE_BENCH_QUICK").is_ok_and(|v| v == "1")
}

fn chaos_matrix(c: &mut Criterion) {
    let quick = quick_mode();

    // Criterion display: one mid-intensity round on each topology.
    let grid = paper_grid(10).expect("grid builds");
    let geo = paper_random(60, 7).expect("random geometric builds");
    let mut group = c.benchmark_group("chaos_matrix");
    group.sample_size(10);
    for (name, net) in [("grid10", &grid), ("random60", &geo)] {
        let (views, _) = build_views(net, K_HOPS).expect("views build");
        let cfg = config_at(net, 0.2);
        group.bench_function(format!("round_{name}_at_0.2"), |b| {
            b.iter(|| run_chunk_round(net, &views, ChunkId::new(0), &cfg))
        });
        if quick {
            break;
        }
    }
    group.finish();

    let intensities: &[f64] = if quick {
        &INTENSITIES[..2]
    } else {
        &INTENSITIES
    };
    let mut cells = Vec::new();
    for &intensity in intensities {
        cells.push(run_cell(&grid, "grid10", intensity));
        if !quick {
            cells.push(run_cell(&geo, "random60", intensity));
        }
    }
    for c in &cells {
        eprintln!(
            "{} n={} intensity={:.2}: {} ticks, {} retries, {} depositions, {} chaos faults, {} lossy drops",
            c.topology, c.nodes, c.intensity, c.ticks, c.retries, c.depositions, c.faults, c.lossy_drops
        );
    }
    if !quick {
        let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_chaos.json");
        std::fs::write(path, render_json(&cells)).expect("write BENCH_chaos.json");
        eprintln!("wrote {path}");
    }
}

criterion_group!(benches, chaos_matrix);
criterion_main!(benches);
