//! Chaos matrix: protocol convergence and retry traffic versus fault
//! intensity, on the 10x10 grid and the paper's random-geometric
//! topology.
//!
//! One protocol round runs per `(topology, intensity)` cell with the
//! liveness mechanisms armed (retry/backoff, FREEZE leases, election
//! timeouts). Intensity scales message loss, duplication, reordering,
//! and the length of a partition window islanding one node. Besides the
//! criterion display, the bench writes `BENCH_chaos.json` at the
//! repository root with per-cell convergence ticks, retries,
//! depositions, and fault counts. Set `PEERCACHE_BENCH_QUICK=1` for a
//! fast smoke variant that skips the JSON.

use criterion::{criterion_group, criterion_main, Criterion};

use peercache_core::workload::{paper_grid, paper_random};
use peercache_core::{ChunkId, Network};
use peercache_dist::engine::LossConfig;
use peercache_dist::sim::{run_chunk_round, SimConfig};
use peercache_dist::view::build_views;
use peercache_dist::{FaultPlan, LivenessConfig};
use peercache_graph::NodeId;

const K_HOPS: u32 = 2;
const INTENSITIES: [f64; 4] = [0.0, 0.1, 0.2, 0.3];

fn quick_mode() -> bool {
    std::env::var("PEERCACHE_BENCH_QUICK").is_ok_and(|v| v == "1")
}

/// The liveness parameters armed for every cell.
fn liveness() -> LivenessConfig {
    LivenessConfig {
        retry_limit: 3,
        backoff_base: 4,
        backoff_jitter: 2,
        lease_ticks: 20,
        election_timeout: 300,
    }
}

/// Scales every fault knob with one intensity in `[0, 1]`: loss,
/// duplication, and reordering at the given probability, plus a
/// partition window islanding one non-producer node whose length grows
/// with the intensity.
fn config_at(net: &Network, intensity: f64) -> SimConfig {
    let island = if net.producer() == NodeId::new(0) {
        NodeId::new(1)
    } else {
        NodeId::new(0)
    };
    let mut chaos = FaultPlan::new(0xFA117)
        .duplicate(intensity / 2.0)
        .reorder(intensity / 2.0, 2);
    let window = (intensity * 200.0) as u64;
    if window > 0 {
        chaos = chaos.partition(10, 10 + window, vec![island]);
    }
    SimConfig {
        loss: LossConfig {
            drop_probability: intensity,
            seed: 29,
        },
        chaos,
        liveness: liveness(),
        ..Default::default()
    }
}

/// One matrix row: what a single chaos-afflicted round did.
struct Cell {
    topology: &'static str,
    nodes: usize,
    intensity: f64,
    ticks: u64,
    retries: u64,
    depositions: u64,
    faults: u64,
    lossy_drops: u64,
    degraded: usize,
    fallbacks: usize,
}

fn run_cell(net: &Network, topology: &'static str, intensity: f64) -> Cell {
    let (views, _) = build_views(net, K_HOPS).expect("views build");
    let cfg = config_at(net, intensity);
    let out = run_chunk_round(net, &views, ChunkId::new(0), &cfg);
    assert!(
        out.ticks < cfg.max_ticks,
        "{topology} @ {intensity}: round must settle"
    );
    Cell {
        topology,
        nodes: net.node_count(),
        intensity,
        ticks: out.ticks,
        retries: out.retries,
        depositions: out.depositions,
        faults: out.faults.total(),
        lossy_drops: out.stats.dropped,
        degraded: out.degraded.len(),
        fallbacks: out.producer_fallbacks,
    }
}

fn write_json(cells: &[Cell]) {
    let liv = liveness();
    let mut out = String::from("{\n  \"bench\": \"chaos_matrix\",\n");
    out.push_str(&format!(
        "  \"liveness\": {{ \"retry_limit\": {}, \"backoff_base\": {}, \"lease_ticks\": {}, \"election_timeout\": {} }},\n",
        liv.retry_limit, liv.backoff_base, liv.lease_ticks, liv.election_timeout
    ));
    out.push_str("  \"rows\": [\n");
    for (i, c) in cells.iter().enumerate() {
        out.push_str(&format!(
            "    {{ \"topology\": \"{}\", \"nodes\": {}, \"intensity\": {:.2}, \"ticks\": {}, \"retries\": {}, \"depositions\": {}, \"chaos_faults\": {}, \"lossy_drops\": {}, \"degraded\": {}, \"producer_fallbacks\": {} }}{}\n",
            c.topology,
            c.nodes,
            c.intensity,
            c.ticks,
            c.retries,
            c.depositions,
            c.faults,
            c.lossy_drops,
            c.degraded,
            c.fallbacks,
            if i + 1 < cells.len() { "," } else { "" }
        ));
    }
    out.push_str("  ]\n}\n");
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_chaos.json");
    std::fs::write(path, out).expect("write BENCH_chaos.json");
    eprintln!("wrote {path}");
}

fn chaos_matrix(c: &mut Criterion) {
    let quick = quick_mode();

    // Criterion display: one mid-intensity round on each topology.
    let grid = paper_grid(10).expect("grid builds");
    let geo = paper_random(60, 7).expect("random geometric builds");
    let mut group = c.benchmark_group("chaos_matrix");
    group.sample_size(10);
    for (name, net) in [("grid10", &grid), ("random60", &geo)] {
        let (views, _) = build_views(net, K_HOPS).expect("views build");
        let cfg = config_at(net, 0.2);
        group.bench_function(format!("round_{name}_at_0.2"), |b| {
            b.iter(|| run_chunk_round(net, &views, ChunkId::new(0), &cfg))
        });
        if quick {
            break;
        }
    }
    group.finish();

    let intensities: &[f64] = if quick {
        &INTENSITIES[..2]
    } else {
        &INTENSITIES
    };
    let mut cells = Vec::new();
    for &intensity in intensities {
        cells.push(run_cell(&grid, "grid10", intensity));
        if !quick {
            cells.push(run_cell(&geo, "random60", intensity));
        }
    }
    for c in &cells {
        eprintln!(
            "{} n={} intensity={:.2}: {} ticks, {} retries, {} depositions, {} chaos faults, {} lossy drops",
            c.topology, c.nodes, c.intensity, c.ticks, c.retries, c.depositions, c.faults, c.lossy_drops
        );
    }
    if !quick {
        write_json(&cells);
    }
}

criterion_group!(benches, chaos_matrix);
criterion_main!(benches);
