//! Ablation benchmarks for the design choices DESIGN.md calls out:
//! routing model (hop-shortest vs contention-cheapest paths), the
//! improving-removal cleanup, the span threshold, and the battery
//! fairness term.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

use peercache_core::approx::{dual_ascent, ApproxConfig, ApproxPlanner};
use peercache_core::costs::CostWeights;
use peercache_core::instance::ConflInstance;
use peercache_core::planner::{improve_by_removal, prune_unused_facilities, CachePlanner};
use peercache_core::workload::paper_grid;
use peercache_graph::paths::PathSelection;

/// Hop-shortest routing (the paper's model) vs contention-cheapest
/// routing: the min-cost ablation pays more path computation.
fn path_selection(c: &mut Criterion) {
    let mut group = c.benchmark_group("path_selection");
    for (label, selection) in [
        ("fewest_hops", PathSelection::FewestHops),
        ("min_cost", PathSelection::MinCost),
    ] {
        group.bench_function(label, |b| {
            b.iter(|| {
                let mut net = paper_grid(6).expect("grid builds");
                let cfg = ApproxConfig {
                    selection,
                    ..Default::default()
                };
                ApproxPlanner::new(cfg).plan(&mut net, 3).expect("plan")
            })
        });
    }
    group.finish();
}

/// Cost of the improving-removal cleanup relative to the raw ascent.
fn cleanup_cost(c: &mut Criterion) {
    let net = paper_grid(6).expect("grid builds");
    let inst = ConflInstance::build(&net, CostWeights::default(), PathSelection::FewestHops)
        .expect("instance builds");
    let cfg = ApproxConfig::default();
    let (raw, _) = dual_ascent(&net, &inst, &cfg).expect("ascent");
    let pruned = prune_unused_facilities(&net, &inst, &raw);
    let mut group = c.benchmark_group("facility_cleanup");
    group.bench_function("dual_ascent_only", |b| {
        b.iter(|| dual_ascent(&net, &inst, &cfg).expect("ascent"))
    });
    group.bench_function("improve_by_removal", |b| {
        b.iter(|| improve_by_removal(&net, &inst, &pruned).expect("cleanup"))
    });
    group.finish();
}

/// SPAN-threshold sweep: how election strictness changes runtime.
fn span_threshold(c: &mut Criterion) {
    let net = paper_grid(6).expect("grid builds");
    let inst = ConflInstance::build(&net, CostWeights::default(), PathSelection::FewestHops)
        .expect("instance builds");
    let mut group = c.benchmark_group("span_threshold");
    for thr in [1usize, 2, 4, 8] {
        let cfg = ApproxConfig {
            span_threshold: thr,
            ..Default::default()
        };
        group.bench_with_input(BenchmarkId::from_parameter(thr), &cfg, |b, cfg| {
            b.iter(|| dual_ascent(&net, &inst, cfg).expect("ascent"))
        });
    }
    group.finish();
}

/// Battery-term ablation: the weighted-summation fairness costs a
/// second per-node term but no extra path work.
fn battery_term(c: &mut Criterion) {
    let mut group = c.benchmark_group("battery_fairness");
    for (label, weight) in [("off", 0.0f64), ("on", 4.0)] {
        group.bench_function(label, |b| {
            b.iter(|| {
                let mut net = paper_grid(6).expect("grid builds");
                for n in net.clients().collect::<Vec<_>>() {
                    if n.index() % 2 == 0 {
                        net.set_battery(n, 0.4).expect("valid fraction");
                    }
                }
                let cfg = ApproxConfig {
                    weights: CostWeights {
                        battery_fairness: weight,
                        ..Default::default()
                    },
                    ..Default::default()
                };
                ApproxPlanner::new(cfg).plan(&mut net, 3).expect("plan")
            })
        });
    }
    group.finish();
}

criterion_group!(
    benches,
    path_selection,
    cleanup_cost,
    span_threshold,
    battery_term
);
criterion_main!(benches);
