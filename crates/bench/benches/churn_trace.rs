//! Churn on the 10x10 grid: incremental placement repair versus the
//! full-replan oracle, on a seeded departure trace.
//!
//! Each departure is handled twice: once by [`CacheWorld`]'s scoped
//! repair (orphans re-placed by a mini dual ascent against the carried
//! contention matrix) and once — for reference — by re-planning every
//! live chunk from scratch on the post-departure topology. Besides the
//! criterion display, the bench writes `BENCH_churn.json` at the
//! repository root with the per-departure wall-clock totals, the
//! repair-over-replan speedup, and the cost gap. Set
//! `PEERCACHE_BENCH_QUICK=1` for a fast smoke variant that skips the
//! JSON.

use criterion::{criterion_group, criterion_main, Criterion};

use peercache_core::approx::ApproxConfig;
use peercache_core::workload::paper_grid;
use peercache_core::world::{CacheWorld, EventOutcome, WorldEvent};
use peercache_graph::NodeId;

const RETENTION: usize = 6;

fn quick_mode() -> bool {
    std::env::var("PEERCACHE_BENCH_QUICK").is_ok_and(|v| v == "1")
}

/// xorshift64 — the trace must be identical on every run.
struct XorShift(u64);

impl XorShift {
    fn next_u64(&mut self) -> u64 {
        let mut x = self.0;
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        self.0 = x;
        x
    }

    fn below(&mut self, n: usize) -> usize {
        (self.next_u64() % n.max(1) as u64) as usize
    }
}

/// Builds the warmed-up world: a 10x10 grid with the retention window
/// full of live chunks.
fn warm_world() -> CacheWorld {
    let net = paper_grid(10).expect("grid builds");
    let mut world = CacheWorld::new(net, ApproxConfig::default()).with_retention(RETENTION);
    for _ in 0..RETENTION {
        world.apply(WorldEvent::ChunkArrived).expect("arrival");
    }
    world
}

/// One departure + one arrival per trace step, keeping the live set
/// full. Returns per-step `(repair_us, replan_us, cost_ratio)`.
fn run_trace(world: &mut CacheWorld, steps: usize, seed: u64) -> Vec<(u64, u64, f64)> {
    let mut rng = XorShift(seed);
    let mut rows = Vec::new();
    while rows.len() < steps {
        let producer = world.network().producer();
        let candidates: Vec<NodeId> = world
            .network()
            .active_nodes()
            .into_iter()
            .filter(|&n| n != producer)
            .collect();
        let victim = candidates[rng.below(candidates.len())];
        let report = match world.apply(WorldEvent::NodeDeparted(victim)) {
            Ok(EventOutcome::Departed(report)) => report,
            Ok(_) => unreachable!("departure outcome"),
            Err(_) => continue, // would disconnect the survivors; redraw
        };
        let gap = world.repair_vs_replan().expect("oracle replan");
        rows.push((report.wall_us, gap.replan_wall_us, gap.cost_ratio));
        world.apply(WorldEvent::ChunkArrived).expect("arrival");
    }
    rows
}

fn write_json(rows: &[(u64, u64, f64)]) {
    let repair_us: u64 = rows.iter().map(|r| r.0).sum();
    let replan_us: u64 = rows.iter().map(|r| r.1).sum();
    let speedup = replan_us as f64 / repair_us.max(1) as f64;
    let max_ratio = rows.iter().map(|r| r.2).fold(0.0, f64::max);
    let mean_ratio = rows.iter().map(|r| r.2).sum::<f64>() / rows.len() as f64;
    let mut out = String::from("{\n");
    out.push_str("  \"bench\": \"churn_trace\",\n");
    out.push_str("  \"topology\": \"grid10\",\n  \"nodes\": 100,\n");
    out.push_str(&format!(
        "  \"retention\": {RETENTION},\n  \"departures\": {},\n",
        rows.len()
    ));
    out.push_str(&format!(
        "  \"repair_total_ms\": {:.2},\n  \"replan_total_ms\": {:.2},\n",
        repair_us as f64 / 1e3,
        replan_us as f64 / 1e3,
    ));
    out.push_str(&format!(
        "  \"repair_over_replan_speedup\": {speedup:.2},\n"
    ));
    out.push_str(&format!(
        "  \"cost_ratio_mean\": {mean_ratio:.4},\n  \"cost_ratio_max\": {max_ratio:.4}\n}}\n"
    ));
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_churn.json");
    std::fs::write(path, out).expect("write BENCH_churn.json");
    eprintln!("wrote {path}");
}

fn churn_trace(c: &mut Criterion) {
    let quick = quick_mode();
    let steps = if quick { 2 } else { 12 };

    let mut group = c.benchmark_group("churn_trace");
    group.sample_size(10);
    // Criterion display: one full departure-repair on a warmed clone,
    // versus the from-scratch replan of the same live set.
    let warmed = warm_world();
    let victim = warmed.placement(warmed.live_chunks()[0]).unwrap().caches[0];
    group.bench_function("repair_one_departure", |b| {
        b.iter(|| {
            let mut w = warmed.clone();
            w.apply(WorldEvent::NodeDeparted(victim)).expect("repair")
        })
    });
    group.bench_function("replan_all_live", |b| {
        b.iter(|| warmed.repair_vs_replan().expect("replan"))
    });
    group.finish();

    let mut world = warm_world();
    let rows = run_trace(&mut world, steps, 0xBADC0DE);
    world.validate().expect("trace leaves a valid world");
    let repair_us: u64 = rows.iter().map(|r| r.0).sum();
    let replan_us: u64 = rows.iter().map(|r| r.1).sum();
    eprintln!(
        "grid10 churn ({} departures): repair {:.2} ms, replan {:.2} ms, speedup {:.2}x",
        rows.len(),
        repair_us as f64 / 1e3,
        replan_us as f64 / 1e3,
        replan_us as f64 / repair_us.max(1) as f64,
    );
    if !quick {
        write_json(&rows);
    }
}

criterion_group!(benches, churn_trace);
criterion_main!(benches);
