//! Churn on the 10x10 grid: incremental placement repair versus the
//! full-replan oracle, on a seeded departure trace.
//!
//! Each departure is handled twice: once by [`CacheWorld`]'s scoped
//! repair (orphans re-placed by a mini dual ascent against the carried
//! contention matrix) and once — for reference — by re-planning every
//! live chunk from scratch on the post-departure topology. The
//! measurement lives in [`peercache_bench::churn_cells`], shared with
//! the `repro perf` regression gate. Besides the criterion display,
//! the bench writes `BENCH_churn.json` at the repository root with the
//! per-departure wall-clock totals, the repair-over-replan speedup,
//! and the cost gap. Set `PEERCACHE_BENCH_QUICK=1` for a fast smoke
//! variant that skips the JSON.

use criterion::{criterion_group, criterion_main, Criterion};

use peercache_bench::churn_cells::{render_json, run_trace, warm_world, FULL_STEPS, TRACE_SEED};
use peercache_core::world::WorldEvent;

fn quick_mode() -> bool {
    std::env::var("PEERCACHE_BENCH_QUICK").is_ok_and(|v| v == "1")
}

fn churn_trace(c: &mut Criterion) {
    let quick = quick_mode();
    let steps = if quick { 2 } else { FULL_STEPS };

    let mut group = c.benchmark_group("churn_trace");
    group.sample_size(10);
    // Criterion display: one full departure-repair on a warmed clone,
    // versus the from-scratch replan of the same live set.
    let warmed = warm_world();
    let victim = warmed.placement(warmed.live_chunks()[0]).unwrap().caches[0];
    group.bench_function("repair_one_departure", |b| {
        b.iter(|| {
            let mut w = warmed.clone();
            w.apply(WorldEvent::NodeDeparted(victim)).expect("repair")
        })
    });
    group.bench_function("replan_all_live", |b| {
        b.iter(|| warmed.repair_vs_replan().expect("replan"))
    });
    group.finish();

    let mut world = warm_world();
    let rows = run_trace(&mut world, steps, TRACE_SEED);
    world.validate().expect("trace leaves a valid world");
    let repair_us: u64 = rows.iter().map(|r| r.0).sum();
    let replan_us: u64 = rows.iter().map(|r| r.1).sum();
    eprintln!(
        "grid10 churn ({} departures): repair {:.2} ms, replan {:.2} ms, speedup {:.2}x",
        rows.len(),
        repair_us as f64 / 1e3,
        replan_us as f64 / 1e3,
        replan_us as f64 / repair_us.max(1) as f64,
    );
    if !quick {
        let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_churn.json");
        std::fs::write(path, render_json(&rows)).expect("write BENCH_churn.json");
        eprintln!("wrote {path}");
    }
}

criterion_group!(benches, churn_trace);
criterion_main!(benches);
