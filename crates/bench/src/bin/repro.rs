//! Regenerates the paper's evaluation figures.
//!
//! ```text
//! cargo run --release -p peercache-bench --bin repro -- all
//! cargo run --release -p peercache-bench --bin repro -- fig2 fig6 fig7
//! ```
//!
//! Tables are printed and written as CSV to `target/repro/`.

use std::process::ExitCode;
use std::time::Instant;

use peercache_bench::figs;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.is_empty() || args.iter().any(|a| a == "-h" || a == "--help") {
        eprintln!("usage: repro <all | fig1 .. fig9>...");
        eprintln!("figures: {}", figs::ALL.join(" "));
        return ExitCode::from(2);
    }
    let ids: Vec<&str> = if args.iter().any(|a| a == "all") {
        figs::ALL.to_vec()
    } else {
        args.iter().map(String::as_str).collect()
    };
    for id in &ids {
        if !figs::ALL.contains(id) {
            eprintln!("unknown figure id: {id} (expected one of {})", figs::ALL.join(", "));
            return ExitCode::from(2);
        }
    }
    for id in ids {
        let start = Instant::now();
        for table in figs::run(id) {
            table.emit();
        }
        eprintln!("[{id} done in {:.1}s]\n", start.elapsed().as_secs_f64());
    }
    ExitCode::SUCCESS
}
