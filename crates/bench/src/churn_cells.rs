//! The churn-trace measurement shared by the `churn_trace` criterion
//! bench and the `repro perf` regression gate (same warm-up, same
//! seeded departure trace, same JSON rendering as the committed
//! `BENCH_churn.json`).

use peercache_core::approx::ApproxConfig;
use peercache_core::workload::paper_grid;
use peercache_core::world::{CacheWorld, EventOutcome, WorldEvent};
use peercache_graph::NodeId;

/// Live-chunk retention window of the warmed world.
pub const RETENTION: usize = 6;

/// Departure-trace seed of the committed baseline.
pub const TRACE_SEED: u64 = 0xBADC0DE;

/// Departures in the full (non-quick) trace.
pub const FULL_STEPS: usize = 12;

/// xorshift64 — the trace must be identical on every run.
struct XorShift(u64);

impl XorShift {
    fn next_u64(&mut self) -> u64 {
        let mut x = self.0;
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        self.0 = x;
        x
    }

    fn below(&mut self, n: usize) -> usize {
        (self.next_u64() % n.max(1) as u64) as usize
    }
}

/// Builds the warmed-up world: a 10x10 grid with the retention window
/// full of live chunks.
pub fn warm_world() -> CacheWorld {
    let net = paper_grid(10).expect("grid builds");
    let mut world = CacheWorld::new(net, ApproxConfig::default()).with_retention(RETENTION);
    for _ in 0..RETENTION {
        world.apply(WorldEvent::ChunkArrived).expect("arrival");
    }
    world
}

/// One departure + one arrival per trace step, keeping the live set
/// full. Returns per-step `(repair_us, replan_us, cost_ratio)`.
pub fn run_trace(world: &mut CacheWorld, steps: usize, seed: u64) -> Vec<(u64, u64, f64)> {
    let mut rng = XorShift(seed);
    let mut rows = Vec::new();
    while rows.len() < steps {
        let producer = world.network().producer();
        let candidates: Vec<NodeId> = world
            .network()
            .active_nodes()
            .into_iter()
            .filter(|&n| n != producer)
            .collect();
        let victim = candidates[rng.below(candidates.len())];
        let report = match world.apply(WorldEvent::NodeDeparted(victim)) {
            Ok(EventOutcome::Departed(report)) => report,
            Ok(_) => unreachable!("departure outcome"),
            Err(_) => continue, // would disconnect the survivors; redraw
        };
        let gap = world.repair_vs_replan().expect("oracle replan");
        rows.push((report.wall_us, gap.replan_wall_us, gap.cost_ratio));
        world.apply(WorldEvent::ChunkArrived).expect("arrival");
    }
    rows
}

/// Renders the trace rows in the exact committed `BENCH_churn.json`
/// format.
pub fn render_json(rows: &[(u64, u64, f64)]) -> String {
    let repair_us: u64 = rows.iter().map(|r| r.0).sum();
    let replan_us: u64 = rows.iter().map(|r| r.1).sum();
    let speedup = replan_us as f64 / repair_us.max(1) as f64;
    let max_ratio = rows.iter().map(|r| r.2).fold(0.0, f64::max);
    let mean_ratio = rows.iter().map(|r| r.2).sum::<f64>() / rows.len().max(1) as f64;
    let mut out = String::from("{\n");
    out.push_str("  \"bench\": \"churn_trace\",\n");
    out.push_str("  \"topology\": \"grid10\",\n  \"nodes\": 100,\n");
    out.push_str(&format!(
        "  \"retention\": {RETENTION},\n  \"departures\": {},\n",
        rows.len()
    ));
    out.push_str(&format!(
        "  \"repair_total_ms\": {:.2},\n  \"replan_total_ms\": {:.2},\n",
        repair_us as f64 / 1e3,
        replan_us as f64 / 1e3,
    ));
    out.push_str(&format!(
        "  \"repair_over_replan_speedup\": {speedup:.2},\n"
    ));
    out.push_str(&format!(
        "  \"cost_ratio_mean\": {mean_ratio:.4},\n  \"cost_ratio_max\": {max_ratio:.4}\n}}\n"
    ));
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The departure trace (victims, cost ratios) is a pure function of
    /// the seed; only the wall-clock fields vary between runs.
    #[test]
    fn trace_cost_ratios_replay_identically() {
        let mut a = warm_world();
        let ra = run_trace(&mut a, 2, TRACE_SEED);
        let mut b = warm_world();
        let rb = run_trace(&mut b, 2, TRACE_SEED);
        let ratios = |r: &[(u64, u64, f64)]| r.iter().map(|x| x.2).collect::<Vec<_>>();
        assert_eq!(ratios(&ra), ratios(&rb));
        a.validate().unwrap();
    }
}
