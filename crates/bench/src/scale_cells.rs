//! The scale measurement shared by the `scale` criterion bench and the
//! `repro perf` regression gate (same topologies, same single-plan
//! timing, same JSON rendering as the committed `BENCH_scale.json`).
//!
//! Where `planning_cells` races the dense pipeline against itself on
//! paper-sized grids, this module measures the locality stack — the
//! [`HierarchicalPlanner`] over k-hop-scoped contention blocks — on
//! topologies the `O(N²)` matrix cannot touch: a 100×100 grid (10k
//! nodes) and a 100k-node connected random-geometric network. Each row
//! records the wall time of one full plan, the number of regions, and
//! the scoped store's byte footprint against the dense equivalent.

use std::time::Instant;

use peercache_core::approx::{ApproxConfig, ApproxPlanner};
use peercache_core::planner::CachePlanner;
use peercache_core::scoped::{HierarchicalPlanner, ScopedConfig, ScopedContention};
use peercache_core::workload::paper_grid;
use peercache_core::Network;
use peercache_graph::{builders, NodeId};
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

/// Chunks planned per scale measurement. Smaller than the hot-path
/// bench's 8: each chunk re-runs the per-region ascent and rebuilds the
/// stale blocks, and four chunks already exercise the incremental
/// update path while keeping the 100k row inside its budget.
pub const SCALE_CHUNKS: usize = 4;

/// Seed of the 100k random-geometric topology.
pub const RGG_SEED: u64 = 7;

/// Node count of the large random-geometric row.
pub const RGG_NODES: usize = 100_000;

/// Grid side of the 10k-node row.
pub const GRID_SIDE: usize = 100;

/// Wall budget of the grid row (acceptance: a 10k-node plan < 10 s).
pub const GRID_BUDGET_MS: f64 = 10_000.0;

/// Wall budget of the RGG row (acceptance: a 100k-node plan < 60 s).
pub const RGG_BUDGET_MS: f64 = 60_000.0;

/// Minimum factor the scoped store must undercut the dense equivalent.
pub const MIN_BYTES_RATIO: f64 = 50.0;

/// Scoped-store parameters of the measurement (the defaults).
pub fn scale_config() -> ScopedConfig {
    ScopedConfig::default()
}

/// The grid scenario of the given side (paper defaults: capacity 5).
pub fn grid_network(side: usize) -> Network {
    paper_grid(side).expect("grid builds")
}

/// A connected random-geometric network built with the bucketed O(n)
/// builder (the dense pairwise builder is itself `O(N²)`), expected
/// degree ~8, producer node 0, capacity 5.
pub fn rgg_network(nodes: usize, seed: u64) -> Network {
    let range = (8.0 / (std::f64::consts::PI * nodes as f64)).sqrt();
    let mut rng = ChaCha8Rng::seed_from_u64(seed);
    let graph = builders::random_geometric_bucketed(nodes, range, &mut rng);
    Network::new(graph, NodeId::new(0), 5).expect("network builds")
}

/// One result row of the scale table.
#[derive(Debug, Clone)]
pub struct ScaleRow {
    /// Topology label (`grid100`, `rgg100000`).
    pub topology: String,
    /// Node count.
    pub nodes: usize,
    /// Regions of the scoped partition.
    pub regions: usize,
    /// Bytes held by the scoped contention store after planning.
    pub contention_bytes: u64,
    /// Bytes the dense all-pairs store would need at this size.
    pub dense_bytes: u64,
    /// `dense_bytes / contention_bytes`.
    pub bytes_ratio: f64,
    /// Wall time of one full [`SCALE_CHUNKS`]-chunk plan.
    pub plan_ms: f64,
    /// The acceptance budget the committed number must stay under.
    pub budget_ms: f64,
}

/// Plans `chunks` chunks hierarchically on a copy of `net`, returning
/// the row. State sizes are read back from the `planner.*` gauges the
/// planner publishes, so the measurement also exercises that wiring.
pub fn measure_scale(topology: &str, net: &Network, chunks: usize, budget_ms: f64) -> ScaleRow {
    let planner = HierarchicalPlanner::new(ApproxConfig::default(), scale_config());
    let mut copy = net.clone();
    let start = Instant::now();
    let placement = planner.plan(&mut copy, chunks).expect("planner succeeds");
    let plan_ms = start.elapsed().as_secs_f64() * 1e3;
    assert!(placement.total_costs().total().is_finite());
    assert_eq!(placement.chunks().len(), chunks);
    let regions = peercache_obs::gauge("planner.region_count").get();
    let contention_bytes = peercache_obs::gauge("planner.contention_bytes").get();
    assert!(regions > 0 && contention_bytes > 0);
    let dense_bytes = ScopedContention::dense_equivalent_bytes(net.node_count());
    ScaleRow {
        topology: topology.to_string(),
        nodes: net.node_count(),
        regions: regions as usize,
        contention_bytes: contention_bytes as u64,
        dense_bytes,
        bytes_ratio: dense_bytes as f64 / contention_bytes as f64,
        plan_ms,
        budget_ms,
    }
}

/// The quality anchor: the hierarchical total against the dense
/// pipeline's total on a grid small enough for the full matrix. The
/// ratio is deterministic — the perf gate compares it exactly.
#[derive(Debug, Clone)]
pub struct QualityCell {
    /// Topology label.
    pub topology: String,
    /// Node count.
    pub nodes: usize,
    /// Hierarchical plan total over the dense Appx total.
    pub hier_over_appx: f64,
}

/// Grid side of the quality anchor (dense-feasible).
pub const QUALITY_SIDE: usize = 20;

/// Measures the quality anchor on the given grid side.
pub fn measure_quality(side: usize, chunks: usize) -> QualityCell {
    let net = grid_network(side);
    let hier = HierarchicalPlanner::new(ApproxConfig::default(), scale_config());
    let mut copy = net.clone();
    let hier_total = hier
        .plan(&mut copy, chunks)
        .expect("hierarchical plan succeeds")
        .total_costs()
        .total();
    let mut copy = net.clone();
    let appx_total = ApproxPlanner::default()
        .plan(&mut copy, chunks)
        .expect("dense plan succeeds")
        .total_costs()
        .total();
    QualityCell {
        topology: format!("grid{side}"),
        nodes: side * side,
        hier_over_appx: hier_total / appx_total,
    }
}

/// Renders the cells in the exact committed `BENCH_scale.json` format.
pub fn render_json(quality: &QualityCell, rows: &[ScaleRow], chunks: usize) -> String {
    let mut out = String::from("{\n");
    out.push_str("  \"bench\": \"scale\",\n");
    out.push_str(&format!("  \"chunks\": {chunks},\n"));
    out.push_str("  \"planner\": \"Hier\",\n");
    out.push_str(&format!(
        "  \"quality\": {{\"topology\": \"{}\", \"nodes\": {}, \"hier_over_appx\": {:.6}}},\n",
        quality.topology, quality.nodes, quality.hier_over_appx,
    ));
    out.push_str("  \"results\": [\n");
    for (idx, r) in rows.iter().enumerate() {
        let comma = if idx + 1 < rows.len() { "," } else { "" };
        out.push_str(&format!(
            "    {{\"topology\": \"{}\", \"nodes\": {}, \"regions\": {}, \
             \"contention_bytes\": {}, \"dense_bytes\": {}, \"bytes_ratio\": {:.1}, \
             \"plan_ms\": {:.1}, \"budget_ms\": {:.1}}}{comma}\n",
            r.topology,
            r.nodes,
            r.regions,
            r.contention_bytes,
            r.dense_bytes,
            r.bytes_ratio,
            r.plan_ms,
            r.budget_ms,
        ));
    }
    out.push_str("  ]\n}\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn measure_scale_fills_every_field_on_a_small_grid() {
        let net = grid_network(8);
        let row = measure_scale("grid8", &net, 2, 1_000.0);
        assert_eq!(row.nodes, 64);
        assert!(row.regions >= 1);
        assert!(row.contention_bytes > 0);
        assert!(row.dense_bytes > row.contention_bytes / 2);
        assert!(row.plan_ms > 0.0);
    }

    #[test]
    fn rgg_network_is_connected_and_deterministic() {
        let a = rgg_network(500, RGG_SEED);
        let b = rgg_network(500, RGG_SEED);
        assert_eq!(a.node_count(), 500);
        assert_eq!(a.graph().edge_count(), b.graph().edge_count());
    }

    #[test]
    fn render_json_parses_back() {
        let quality = QualityCell {
            topology: "grid20".into(),
            nodes: 400,
            hier_over_appx: 1.012345,
        };
        let rows = vec![ScaleRow {
            topology: "grid100".into(),
            nodes: 10_000,
            regions: 90,
            contention_bytes: 1_000_000,
            dense_bytes: 2_000_000_000,
            bytes_ratio: 2000.0,
            plan_ms: 1234.5,
            budget_ms: GRID_BUDGET_MS,
        }];
        let text = render_json(&quality, &rows, SCALE_CHUNKS);
        let doc = peercache_obs::Json::parse(&text).expect("renders valid JSON");
        let rendered = format!("{doc:?}");
        assert!(rendered.contains("grid100"));
        assert!(rendered.contains("hier_over_appx"));
    }
}

#[cfg(test)]
mod profile {
    use super::*;

    /// Manual phase breakdown at scale; run with
    /// `cargo test --release -p peercache-bench -- --ignored profile_ --nocapture`.
    #[test]
    #[ignore]
    fn profile_large_rgg() {
        use peercache_graph::paths::{Parallelism, PathSelection};
        let n: usize = std::env::var("PROFILE_NODES")
            .ok()
            .and_then(|v| v.parse().ok())
            .unwrap_or(20_000);
        let t = Instant::now();
        let net = rgg_network(n, RGG_SEED);
        eprintln!("[{n}] build net: {:?}", t.elapsed());
        let t = Instant::now();
        let mut scoped = ScopedContention::new(
            &net,
            scale_config(),
            PathSelection::FewestHops,
            Parallelism::Auto,
        )
        .unwrap();
        eprintln!(
            "[{n}] scoped new: {:?} ({} regions, {} bytes)",
            t.elapsed(),
            scoped.partition().region_count(),
            scoped.contention_bytes()
        );
        let planner = HierarchicalPlanner::new(ApproxConfig::default(), scale_config());
        let t = Instant::now();
        let mut copy = net.clone();
        planner.plan(&mut copy, 1).unwrap();
        eprintln!("[{n}] plan 1 chunk: {:?}", t.elapsed());
        let t = Instant::now();
        let mut copy = net.clone();
        let p = planner.plan(&mut copy, 2).unwrap();
        eprintln!("[{n}] plan 2 chunks: {:?}", t.elapsed());
        let dirty: Vec<NodeId> = p.chunks()[0].caches.clone();
        let t = Instant::now();
        let rebuilt = scoped.update(&copy, &dirty, Parallelism::Auto).unwrap();
        eprintln!(
            "[{n}] update with {} dirty: {:?} ({rebuilt} blocks rebuilt)",
            dirty.len(),
            t.elapsed()
        );
    }
}
