//! Benchmark harness regenerating every figure of the ICDCS'17
//! evaluation (§V).
//!
//! The workspace's `repro` binary (entry point in [`repro`]) drives one
//! module per figure:
//!
//! ```text
//! cargo run --release --bin repro              # run summary
//! cargo run --release --bin repro -- all
//! cargo run --release --bin repro -- fig2 fig6
//! ```
//!
//! Each figure prints the paper's series as a table and writes CSV to
//! `target/repro/`. Absolute values differ from the paper (different
//! Steiner subroutine, calibrated baseline λ, Rust vs Python 2.7); the
//! *shapes* — orderings, ratios, crossovers — are the reproduction
//! target and are recorded against the paper in `EXPERIMENTS.md`.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod chaos_cells;
pub mod churn_cells;
pub mod figs;
pub mod harness;
pub mod perf;
pub mod planning_cells;
pub mod replication_cells;
pub mod repro;
pub mod scale_cells;
pub mod shard_cells;
pub mod trace_cmd;
