//! `repro trace <file.jsonl>` — causal-trace analysis.
//!
//! Reads a JSONL sink capture (a `PEERCACHE_TRACE` file), reconstructs
//! the span forest, and prints:
//!
//! * a per-trace summary (spans, orphans, root fate);
//! * the per-kind delivery-latency table (p50/p95/p99/max over the
//!   `dist.msg.*` spans that were actually delivered);
//! * the critical path of the busiest chunk negotiation — the causal
//!   chain from the round root to the latest-settling leaf span.

use peercache_obs as obs;

/// One rendered report, separated from printing for testability.
pub struct TraceReport {
    /// Lines of the rendered report, in print order.
    pub lines: Vec<String>,
}

/// Analyzes sink JSONL content into a printable report.
///
/// # Errors
///
/// Returns a message when the content contains malformed JSON.
pub fn analyze(content: &str) -> Result<TraceReport, String> {
    let spans = obs::parse_spans(content)?;
    let forest = obs::build_forest(&spans);
    let mut lines = Vec::new();
    lines.push(format!(
        "{} causal span(s) across {} trace(s)",
        spans.len(),
        forest.len()
    ));
    // Per-trace listing, capped at the busiest traces for big captures
    // — but a trace with orphans is always shown: broken causality is
    // the signal this report exists for.
    const LISTED: usize = 12;
    let mut by_size: Vec<&obs::TraceTree> = forest.iter().collect();
    by_size.sort_by_key(|t| std::cmp::Reverse(t.spans.len()));
    let listed: std::collections::BTreeSet<u64> = by_size
        .iter()
        .enumerate()
        .filter(|(i, t)| *i < LISTED || !t.orphans.is_empty())
        .map(|(_, t)| t.trace)
        .collect();
    let mut orphans = 0usize;
    for tree in &forest {
        orphans += tree.orphans.len();
        if !listed.contains(&tree.trace) {
            continue;
        }
        let root_fate = tree
            .spans
            .iter()
            .find(|s| s.parent == 0)
            .map_or("<no root>", |s| s.fate.as_str());
        lines.push(format!(
            "  trace {:#018x}: {} spans, {} orphan(s), root fate {}",
            tree.trace,
            tree.spans.len(),
            tree.orphans.len(),
            root_fate
        ));
    }
    let unlisted = forest.len().saturating_sub(listed.len());
    if unlisted > 0 {
        lines.push(format!(
            "  ... and {unlisted} smaller trace(s), all complete"
        ));
    }
    if orphans > 0 {
        lines.push(format!(
            "WARNING: {orphans} orphan span(s) — broken causality"
        ));
    }

    let table = obs::latency_table(&spans);
    if table.is_empty() {
        lines.push("no delivered dist.msg.* spans — no latency table".into());
    } else {
        lines.push(String::new());
        lines.push(format!(
            "{:<22} {:>7} {:>6} {:>6} {:>6} {:>6}",
            "kind", "count", "p50", "p95", "p99", "max"
        ));
        for row in &table {
            lines.push(format!(
                "{:<22} {:>7} {:>6} {:>6} {:>6} {:>6}",
                row.name, row.count, row.p50, row.p95, row.p99, row.max
            ));
        }
    }

    // The busiest negotiation tells the most interesting story.
    if let Some(busiest) = forest.iter().max_by_key(|t| t.spans.len()) {
        if let Some(cp) = obs::critical_path(busiest) {
            lines.push(String::new());
            lines.push(format!(
                "critical path of trace {:#018x} ({} hop(s), {} tick(s) end to end):",
                busiest.trace,
                cp.spans.len(),
                cp.total
            ));
            for s in &cp.spans {
                lines.push(format!(
                    "  #{:<4} {:<22} [{:>4}..{:<4}] {}",
                    s.span, s.name, s.start, s.end, s.fate
                ));
            }
        }
    }
    Ok(TraceReport { lines })
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A hand-written negotiation: root -> NPI -> TIGHT -> FREEZE. The
    /// critical path and its total latency are computed by hand and
    /// asserted exactly (acceptance criterion).
    #[test]
    fn report_matches_hand_computed_critical_path() {
        let jsonl = concat!(
            r#"{"ts_us":1,"kind":"span","name":"dist.round","trace":10,"span":1,"parent":0,"start":0,"end":30,"fate":"settled"}"#,
            "\n",
            r#"{"ts_us":2,"kind":"span","name":"dist.msg.npi","trace":10,"span":2,"parent":1,"start":0,"end":4,"fate":"delivered"}"#,
            "\n",
            r#"{"ts_us":3,"kind":"span","name":"dist.msg.tight","trace":10,"span":3,"parent":2,"start":4,"end":9,"fate":"delivered"}"#,
            "\n",
            r#"{"ts_us":4,"kind":"span","name":"dist.msg.freeze","trace":10,"span":4,"parent":3,"start":9,"end":16,"fate":"delivered"}"#,
            "\n",
            r#"{"ts_us":5,"kind":"span","name":"dist.msg.npi","trace":10,"span":5,"parent":1,"start":0,"end":2,"fate":"dropped:loss"}"#,
            "\n",
        );
        let report = analyze(jsonl).unwrap();
        let text = report.lines.join("\n");
        // 5 spans, one trace, no orphans.
        assert!(text.contains("5 causal span(s) across 1 trace(s)"));
        assert!(text.contains("0 orphan(s)"));
        assert!(!text.contains("WARNING"));
        // Latency table covers only delivered message spans: npi (4),
        // tight (5), freeze (7).
        assert!(text.contains("dist.msg.npi"));
        assert!(text.contains("dist.msg.freeze"));
        // Hand-computed critical path: leaf #4 ends latest (16); chain
        // 4 -> 3 -> 2 -> 1 reversed is [1, 2, 3, 4]; 4 hops; total =
        // leaf.end - root.start = 16.
        assert!(
            text.contains("4 hop(s), 16 tick(s)"),
            "critical path mismatch:\n{text}"
        );
        let hops: Vec<&str> = report
            .lines
            .iter()
            .filter(|l| l.trim_start().starts_with('#'))
            .map(String::as_str)
            .collect();
        assert_eq!(hops.len(), 4);
        assert!(hops[0].contains("dist.round"));
        assert!(hops[3].contains("dist.msg.freeze"));
    }

    #[test]
    fn orphans_are_flagged() {
        let jsonl = concat!(
            r#"{"kind":"span","name":"dist.round","trace":3,"span":1,"parent":0,"start":0,"end":5,"fate":"settled"}"#,
            "\n",
            r#"{"kind":"span","name":"dist.msg.cc","trace":3,"span":9,"parent":7,"start":1,"end":2,"fate":"delivered"}"#,
            "\n",
        );
        let report = analyze(jsonl).unwrap();
        let text = report.lines.join("\n");
        assert!(text.contains("WARNING: 1 orphan span(s)"));
    }

    #[test]
    fn malformed_input_errors() {
        assert!(analyze("{\"kind\":\"span\",").is_err());
    }
}
