//! Shared plumbing: planner roster, table rendering, CSV output.

use std::fmt::Write as _;
use std::fs;
use std::path::PathBuf;
use std::time::Instant;

use peercache_core::approx::ApproxPlanner;
use peercache_core::baselines::{BaselineConfig, GreedyBaselinePlanner};
use peercache_core::costs::CostWeights;
use peercache_core::placement::{recost_final, Placement};
use peercache_core::planner::CachePlanner;
use peercache_core::Network;
use peercache_dist::DistributedPlanner;
use peercache_graph::paths::PathSelection;
use peercache_obs as obs;

/// The four algorithms every figure compares (Brtf joins where feasible).
pub fn all_planners() -> Vec<Box<dyn CachePlanner>> {
    vec![
        Box::new(ApproxPlanner::default()),
        Box::new(DistributedPlanner::default()),
        Box::new(GreedyBaselinePlanner::hop_count(BaselineConfig::default())),
        Box::new(GreedyBaselinePlanner::contention(BaselineConfig::default())),
    ]
}

/// Runs a planner on a fresh copy of `net`; returns the placement and
/// the final network state.
pub fn run_planner(
    planner: &dyn CachePlanner,
    net: &Network,
    chunks: usize,
) -> (Placement, Network) {
    let mut copy = net.clone();
    let placement = planner
        .plan(&mut copy, chunks)
        .unwrap_or_else(|e| panic!("{} failed: {e}", planner.name()));
    (placement, copy)
}

/// Runs a planner and re-costs its placement on the final state — the
/// multi-item accounting of §V used by Figs. 8 and 9.
pub fn run_final_costed(
    planner: &dyn CachePlanner,
    net: &Network,
    chunks: usize,
) -> (Placement, Network) {
    let (placement, final_net) = run_planner(planner, net, chunks);
    let recosted = recost_final(
        &final_net,
        &placement,
        CostWeights::default(),
        PathSelection::FewestHops,
    )
    .expect("recosting a valid placement succeeds");
    (recosted, final_net)
}

/// Runs every planner on every topology and tabulates wall time, the
/// cost breakdown, and (for Dist) message traffic — the machine-readable
/// run summary behind the `repro` binary's default mode. Each cell also
/// goes to the trace as one `bench.run` event when `PEERCACHE_TRACE`
/// selects a sink.
pub fn run_summary(topologies: &[(&str, Network)], chunks: usize) -> Table {
    let mut table = Table::new(
        "summary",
        &format!("run summary — every planner × topology, {chunks} chunks"),
        &[
            "topology",
            "planner",
            "chunks",
            "wall_ms",
            "fairness",
            "access",
            "dissemination",
            "cost_total",
            "messages",
            "dropped",
        ],
    );
    for (topo, net) in topologies {
        let appx = ApproxPlanner::default();
        let dist = DistributedPlanner::default();
        let hopc = GreedyBaselinePlanner::hop_count(BaselineConfig::default());
        let cont = GreedyBaselinePlanner::contention(BaselineConfig::default());
        let planners: [&dyn CachePlanner; 4] = [&appx, &dist, &hopc, &cont];
        for planner in planners {
            let start = Instant::now();
            let (placement, _) = run_planner(planner, net, chunks);
            let wall_ms = start.elapsed().as_secs_f64() * 1e3;
            let costs = placement.total_costs();
            // Message traffic only exists for the distributed protocol.
            let (messages, dropped) = if planner.name() == "Dist" {
                let report = dist.last_report();
                (report.messages.total(), report.messages.dropped)
            } else {
                (0, 0)
            };
            obs::event!(
                "bench.run",
                topology = topo.to_string(),
                planner = planner.name().to_string(),
                chunks = chunks,
                wall_ms = wall_ms,
                fairness = costs.fairness,
                access = costs.access,
                dissemination = costs.dissemination,
                cost_total = costs.total(),
                messages = messages,
                dropped = dropped,
            );
            table.push_row(vec![
                topo.to_string(),
                planner.name().to_string(),
                chunks.to_string(),
                f3(wall_ms),
                f1(costs.fairness),
                f1(costs.access),
                f1(costs.dissemination),
                f1(costs.total()),
                messages.to_string(),
                dropped.to_string(),
            ]);
        }
    }
    table
}

/// Wall-time scaling of the approximation planner with topology size:
/// one row per grid side, so the run summary shows at a glance how the
/// planning hot path behaves as the network grows.
pub fn planner_walltime_by_size(sides: &[usize], chunks: usize) -> Table {
    let mut table = Table::new(
        "planner_walltime",
        &format!("Appx planner wall time by topology size, {chunks} chunks"),
        &["topology", "nodes", "chunks", "wall_ms", "cost_total"],
    );
    for &side in sides {
        let net = peercache_core::workload::paper_grid(side)
            .unwrap_or_else(|e| panic!("cannot build grid{side}: {e}"));
        let planner = ApproxPlanner::default();
        let start = Instant::now();
        let (placement, _) = run_planner(&planner, &net, chunks);
        let wall_ms = start.elapsed().as_secs_f64() * 1e3;
        let costs = placement.total_costs();
        obs::event!(
            "bench.walltime_by_size",
            topology = format!("grid{side}"),
            nodes = side * side,
            chunks = chunks,
            wall_ms = wall_ms,
            cost_total = costs.total(),
        );
        table.push_row(vec![
            format!("grid{side}"),
            (side * side).to_string(),
            chunks.to_string(),
            f3(wall_ms),
            f1(costs.total()),
        ]);
    }
    table
}

/// A printable/serializable result table.
#[derive(Debug, Clone)]
pub struct Table {
    /// Figure id, e.g. `fig2a` (used as the CSV file name).
    pub id: String,
    /// Human-readable caption.
    pub caption: String,
    /// Column names.
    pub header: Vec<String>,
    /// Row values, already formatted.
    pub rows: Vec<Vec<String>>,
}

impl Table {
    /// Creates an empty table.
    pub fn new(id: &str, caption: &str, header: &[&str]) -> Self {
        Table {
            id: id.to_string(),
            caption: caption.to_string(),
            header: header.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends a row (values pre-formatted).
    pub fn push_row(&mut self, row: Vec<String>) {
        debug_assert_eq!(row.len(), self.header.len());
        self.rows.push(row);
    }

    /// Renders the table with aligned columns.
    pub fn render(&self) -> String {
        let mut widths: Vec<usize> = self.header.iter().map(String::len).collect();
        for row in &self.rows {
            for (w, cell) in widths.iter_mut().zip(row) {
                *w = (*w).max(cell.len());
            }
        }
        let mut out = String::new();
        let _ = writeln!(out, "== {} — {}", self.id, self.caption);
        let fmt_row = |cells: &[String], widths: &[usize]| -> String {
            cells
                .iter()
                .zip(widths)
                .map(|(c, w)| format!("{c:>w$}"))
                .collect::<Vec<_>>()
                .join("  ")
        };
        let _ = writeln!(out, "{}", fmt_row(&self.header, &widths));
        for row in &self.rows {
            let _ = writeln!(out, "{}", fmt_row(row, &widths));
        }
        out
    }

    /// Writes the table as CSV into [`out_dir`]; returns the path.
    pub fn write_csv(&self) -> PathBuf {
        let dir = out_dir();
        let path = dir.join(format!("{}.csv", self.id));
        let mut csv = self.header.join(",");
        csv.push('\n');
        for row in &self.rows {
            csv.push_str(&row.join(","));
            csv.push('\n');
        }
        fs::write(&path, csv).expect("writing CSV output");
        path
    }

    /// Prints the table and persists the CSV.
    pub fn emit(&self) {
        println!("{}", self.render());
        let path = self.write_csv();
        println!("   (csv: {})\n", path.display());
    }
}

/// Output directory for CSV artifacts (`target/repro`), created on
/// first use.
pub fn out_dir() -> PathBuf {
    let dir = PathBuf::from("target/repro");
    fs::create_dir_all(&dir).expect("creating target/repro");
    dir
}

/// Formats a float with one decimal.
pub fn f1(x: f64) -> String {
    format!("{x:.1}")
}

/// Formats a float with three decimals.
pub fn f3(x: f64) -> String {
    format!("{x:.3}")
}

#[cfg(test)]
mod tests {
    use super::*;
    use peercache_core::workload::paper_grid;

    #[test]
    fn roster_has_the_four_comparison_algorithms() {
        let names: Vec<String> = all_planners()
            .iter()
            .map(|p| p.name().to_string())
            .collect();
        assert_eq!(names, vec!["Appx", "Dist", "Hopc", "Cont"]);
    }

    #[test]
    fn run_does_not_mutate_the_template_network() {
        let net = paper_grid(3).unwrap();
        let planners = all_planners();
        let (placement, final_net) = run_planner(planners[0].as_ref(), &net, 2);
        assert_eq!(placement.chunks().len(), 2);
        assert_eq!(net.load_vector().iter().sum::<usize>(), 0);
        assert!(final_net.load_vector().iter().sum::<usize>() > 0);
    }

    #[test]
    fn table_renders_and_writes_csv() {
        let mut t = Table::new("test_table", "caption", &["a", "b"]);
        t.push_row(vec!["1".into(), "2".into()]);
        let rendered = t.render();
        assert!(rendered.contains("caption"));
        assert!(rendered.contains('1'));
        let path = t.write_csv();
        let content = std::fs::read_to_string(path).unwrap();
        assert_eq!(content, "a,b\n1,2\n");
    }

    #[test]
    fn final_costed_changes_only_costs() {
        let net = paper_grid(3).unwrap();
        let planners = all_planners();
        let (placed, netf) = run_planner(planners[0].as_ref(), &net, 2);
        let (recosted, _) = run_final_costed(planners[0].as_ref(), &net, 2);
        let _ = netf;
        assert_eq!(placed.chunks().len(), recosted.chunks().len());
        for (a, b) in placed.chunks().iter().zip(recosted.chunks()) {
            assert_eq!(a.caches, b.caches);
            assert_eq!(a.assignment, b.assignment);
        }
    }
}
