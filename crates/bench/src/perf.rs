//! `repro perf [--check]` — the perf-regression gate.
//!
//! Re-measures the six committed baselines (`BENCH_planning.json`,
//! `BENCH_churn.json`, `BENCH_chaos.json`, `BENCH_scale.json`,
//! `BENCH_shard.json`, `BENCH_replication.json`) through the same
//! shared cell modules the criterion benches use, then diffs fresh
//! against committed field by field:
//!
//! * **wall-time fields** (`*_ms`, `*_wall*`, `*speedup*`) get a
//!   generous ratio band — they vary with the machine; the gate only
//!   catches order-of-magnitude regressions. The band is
//!   [`DEFAULT_WALL_BAND`]× in either direction, overridable with
//!   `PEERCACHE_PERF_TOL` (a factor > 1).
//! * **every other number** is exact — convergence ticks, retry and
//!   fault counts, cost ratios, and structural fields are all
//!   deterministic, so *any* drift is a behavior change, not noise.
//!
//! With `--check` the gate exits nonzero when any field falls outside
//! its band; without it the comparison is printed and always succeeds.

use peercache_obs::Json;

use crate::{
    chaos_cells, churn_cells, planning_cells, replication_cells, scale_cells, shard_cells,
};

/// Default multiplicative band for wall-time fields: fresh must lie in
/// `[committed / band, committed * band]`.
pub const DEFAULT_WALL_BAND: f64 = 8.0;

/// Whether a JSON key holds a wall-clock-dependent measurement.
pub fn is_wall_field(key: &str) -> bool {
    key.ends_with("_ms") || key.contains("wall") || key.contains("speedup")
}

/// One field-level discrepancy found by [`compare`].
#[derive(Debug, Clone, PartialEq)]
pub struct Discrepancy {
    /// Dotted path of the offending field (e.g. `rows[4].retries`).
    pub path: String,
    /// Human-readable description of the mismatch.
    pub detail: String,
}

/// Recursively diffs `fresh` against `baseline`.
///
/// Object key sets must match exactly (a vanished or new field is a
/// schema change the baseline must be regenerated for); arrays compare
/// element-wise; numbers under a wall-time key use the ratio band,
/// every other leaf compares exactly.
pub fn compare(baseline: &Json, fresh: &Json, band: f64) -> Vec<Discrepancy> {
    let mut out = Vec::new();
    diff("", baseline, fresh, band, false, &mut out);
    out
}

fn push(out: &mut Vec<Discrepancy>, path: &str, detail: String) {
    out.push(Discrepancy {
        path: if path.is_empty() {
            "$".into()
        } else {
            path.into()
        },
        detail,
    });
}

fn diff(
    path: &str,
    baseline: &Json,
    fresh: &Json,
    band: f64,
    wall: bool,
    out: &mut Vec<Discrepancy>,
) {
    match (baseline, fresh) {
        (Json::Obj(b), Json::Obj(f)) => {
            for (key, bv) in b {
                let sub = if path.is_empty() {
                    key.clone()
                } else {
                    format!("{path}.{key}")
                };
                match f.iter().find(|(k, _)| k == key) {
                    Some((_, fv)) => diff(&sub, bv, fv, band, wall || is_wall_field(key), out),
                    None => push(out, &sub, "missing in fresh output".into()),
                }
            }
            for (key, _) in f {
                if !b.iter().any(|(k, _)| k == key) {
                    let sub = if path.is_empty() {
                        key.clone()
                    } else {
                        format!("{path}.{key}")
                    };
                    push(out, &sub, "not in committed baseline".into());
                }
            }
        }
        (Json::Arr(b), Json::Arr(f)) => {
            if b.len() != f.len() {
                push(
                    out,
                    path,
                    format!("length {} in baseline, {} fresh", b.len(), f.len()),
                );
                return;
            }
            for (i, (bv, fv)) in b.iter().zip(f).enumerate() {
                diff(&format!("{path}[{i}]"), bv, fv, band, wall, out);
            }
        }
        (bn, fn_) if bn.as_f64().is_some() && fn_.as_f64().is_some() => {
            // Exact equality is integer-exact when both sides parsed as
            // integers (counts, ticks); float-exact otherwise.
            let exact_eq = match (bn, fn_) {
                (Json::Int(b), Json::Int(f)) => b == f,
                _ => bn.as_f64() == fn_.as_f64(),
            };
            let b = bn.as_f64().unwrap_or(f64::NAN);
            let f = fn_.as_f64().unwrap_or(f64::NAN);
            if wall {
                let lo = b / band;
                let hi = b * band;
                // A zero committed wall time accepts anything small.
                let ok = if b == 0.0 {
                    f.abs() <= band
                } else {
                    f >= lo.min(hi) && f <= lo.max(hi)
                };
                if !ok {
                    push(
                        out,
                        path,
                        format!(
                            "wall-time {f} outside [{:.3}, {:.3}] (committed {b})",
                            lo, hi
                        ),
                    );
                }
            } else if !exact_eq {
                push(out, path, format!("expected {b}, got {f} (exact field)"));
            }
        }
        _ => {
            if baseline != fresh {
                push(out, path, format!("expected {baseline:?}, got {fresh:?}"));
            }
        }
    }
}

/// The wall-time band: `PEERCACHE_PERF_TOL` when set to a factor > 1,
/// else [`DEFAULT_WALL_BAND`].
pub fn wall_band() -> f64 {
    std::env::var("PEERCACHE_PERF_TOL")
        .ok()
        .and_then(|v| v.parse::<f64>().ok())
        .filter(|&v| v.is_finite() && v > 1.0)
        .unwrap_or(DEFAULT_WALL_BAND)
}

/// One baseline of the gate: its committed file and how to re-measure.
pub struct Baseline {
    /// Committed file name at the repository root.
    pub file: &'static str,
    /// Re-runs the measurement and renders it in the committed format.
    pub fresh: fn() -> String,
}

/// The six gated baselines.
pub const BASELINES: [Baseline; 6] = [
    Baseline {
        file: "BENCH_planning.json",
        fresh: || {
            let rows: Vec<planning_cells::Row> = planning_cells::FULL_SIDES
                .iter()
                .map(|&side| planning_cells::measure_side(side, planning_cells::FULL_RUNS))
                .collect();
            planning_cells::render_json(&rows, planning_cells::CHUNKS)
        },
    },
    Baseline {
        file: "BENCH_churn.json",
        fresh: || {
            let mut world = churn_cells::warm_world();
            let rows = churn_cells::run_trace(
                &mut world,
                churn_cells::FULL_STEPS,
                churn_cells::TRACE_SEED,
            );
            world.validate().expect("trace leaves a valid world");
            churn_cells::render_json(&rows)
        },
    },
    Baseline {
        file: "BENCH_chaos.json",
        fresh: || chaos_cells::render_json(&chaos_cells::run_matrix()),
    },
    Baseline {
        file: "BENCH_scale.json",
        fresh: || {
            let quality =
                scale_cells::measure_quality(scale_cells::QUALITY_SIDE, scale_cells::SCALE_CHUNKS);
            let rows = vec![
                scale_cells::measure_scale(
                    &format!("grid{}", scale_cells::GRID_SIDE),
                    &scale_cells::grid_network(scale_cells::GRID_SIDE),
                    scale_cells::SCALE_CHUNKS,
                    scale_cells::GRID_BUDGET_MS,
                ),
                scale_cells::measure_scale(
                    &format!("rgg{}", scale_cells::RGG_NODES),
                    &scale_cells::rgg_network(scale_cells::RGG_NODES, scale_cells::RGG_SEED),
                    scale_cells::SCALE_CHUNKS,
                    scale_cells::RGG_BUDGET_MS,
                ),
            ];
            scale_cells::render_json(&quality, &rows, scale_cells::SCALE_CHUNKS)
        },
    },
    Baseline {
        file: "BENCH_shard.json",
        fresh: || {
            let rows = shard_cells::run_sweep(shard_cells::GRID_SIDE, shard_cells::TICKS);
            shard_cells::render_json(shard_cells::GRID_SIDE, shard_cells::TICKS, &rows)
        },
    },
    Baseline {
        file: "BENCH_replication.json",
        fresh: || replication_cells::render_json(&replication_cells::run_matrix()),
    },
];

/// Runs the gate against the committed files in `root`. Returns the
/// discrepancies per baseline, or an error string when a file is
/// missing or unparsable.
pub fn run_gate(
    root: &std::path::Path,
    band: f64,
) -> Result<Vec<(String, Vec<Discrepancy>)>, String> {
    let mut results = Vec::new();
    for b in &BASELINES {
        let path = root.join(b.file);
        let committed = std::fs::read_to_string(&path)
            .map_err(|e| format!("cannot read {}: {e}", path.display()))?;
        let committed = Json::parse(&committed).map_err(|e| format!("{}: {e}", path.display()))?;
        let fresh_text = (b.fresh)();
        let fresh =
            Json::parse(&fresh_text).map_err(|e| format!("fresh {} output: {e}", b.file))?;
        results.push((b.file.to_string(), compare(&committed, &fresh, band)));
    }
    Ok(results)
}

#[cfg(test)]
mod tests {
    use super::*;

    const BASE: &str =
        r#"{"bench":"x","rows":[{"ticks":153,"retries":1369,"wall_ms":10.0,"speedup":2.5}]}"#;

    fn parsed(s: &str) -> Json {
        Json::parse(s).unwrap()
    }

    #[test]
    fn identical_documents_pass() {
        assert!(compare(&parsed(BASE), &parsed(BASE), 4.0).is_empty());
    }

    #[test]
    fn wall_fields_tolerate_machine_noise_but_not_blowups() {
        let fresh = BASE.replace("10.0", "30.0"); // 3x: inside a 4x band
        assert!(compare(&parsed(BASE), &parsed(&fresh), 4.0).is_empty());
        let fresh = BASE.replace("10.0", "45.0"); // 4.5x: outside
        let diffs = compare(&parsed(BASE), &parsed(&fresh), 4.0);
        assert_eq!(diffs.len(), 1);
        assert_eq!(diffs[0].path, "rows[0].wall_ms");
    }

    /// A perturbed count must trip the gate — counts are exact.
    #[test]
    fn perturbed_counts_fail_exactly() {
        let fresh = BASE.replace("1369", "1370");
        let diffs = compare(&parsed(BASE), &parsed(&fresh), 4.0);
        assert_eq!(diffs.len(), 1);
        assert_eq!(diffs[0].path, "rows[0].retries");
        assert!(diffs[0].detail.contains("exact"));
    }

    #[test]
    fn speedup_fields_are_banded_not_exact() {
        let fresh = BASE.replace("2.5", "3.0");
        assert!(compare(&parsed(BASE), &parsed(&fresh), 4.0).is_empty());
    }

    #[test]
    fn schema_drift_is_reported_both_ways() {
        let fresh = BASE.replace("\"ticks\":153,", "");
        let diffs = compare(&parsed(BASE), &parsed(&fresh), 4.0);
        assert!(diffs.iter().any(|d| d.path == "rows[0].ticks"));
        let diffs = compare(&parsed(&fresh), &parsed(BASE), 4.0);
        assert!(diffs
            .iter()
            .any(|d| d.detail.contains("not in committed baseline")));
    }

    #[test]
    fn array_length_drift_is_one_finding() {
        let base = r#"{"rows":[1,2,3]}"#;
        let fresh = r#"{"rows":[1,2]}"#;
        let diffs = compare(&parsed(base), &parsed(fresh), 4.0);
        assert_eq!(diffs.len(), 1);
        assert!(diffs[0].detail.contains("length"));
    }

    #[test]
    fn wall_band_classification() {
        assert!(is_wall_field("repair_total_ms"));
        assert!(is_wall_field("replan_wall_us"));
        assert!(is_wall_field("repair_over_replan_speedup"));
        assert!(!is_wall_field("retries"));
        assert!(!is_wall_field("cost_ratio_mean"));
    }
}
