//! The shard thread-sweep measurement shared by the `shard` criterion
//! bench, the `repro shard` table, and the `repro perf` regression gate
//! (same topology, same event trace, same JSON rendering as the
//! committed `BENCH_shard.json`).
//!
//! One [`ShardedWorld`] per thread setting consumes the *same* seeded
//! churn trace — arrivals, departures, and link drops — and the sweep
//! asserts right here that every setting ends on the **bit-identical
//! state digest and span count**: the thread knob is pure wall-clock,
//! exactly the sharded world's determinism contract. Wall times and the
//! derived speedup are machine-dependent (the perf gate bands them);
//! everything else in a row — shard count, cross-shard event count, the
//! digest itself — is deterministic and compared exactly.

use std::time::Instant;

use peercache_core::approx::ApproxConfig;
use peercache_core::scoped::ScopedConfig;
use peercache_core::sharded::{ShardConfig, ShardedWorld};
use peercache_core::world::WorldEvent;
use peercache_core::Network;
use peercache_graph::paths::Parallelism;
use peercache_graph::regions::splitmix64;
use peercache_graph::{builders, NodeId};

/// Grid side of the full sweep (2500 nodes, ~20 shards at the default
/// region bound).
pub const GRID_SIDE: usize = 50;

/// Live-chunk retention cap and warm-up chunk count of the sweep.
pub const RETENTION: usize = 6;

/// Churn ticks measured after warm-up.
pub const TICKS: usize = 8;

/// Seed of the churn trace.
pub const TRACE_SEED: u64 = 0x5EED_5EED;

/// Thread settings of the sweep. The host's actual core count does not
/// matter for correctness — every setting must digest identically; on a
/// single-core host the wall times simply stay flat.
pub const THREADS: [usize; 4] = [1, 2, 4, 8];

/// Builds the sweep world: a `side`×`side` grid, producer at node 0,
/// capacity 5, under the default scoped geometry and the given thread
/// budget.
pub fn sweep_world(side: usize, threads: usize) -> ShardedWorld {
    let net =
        Network::new(builders::grid(side, side), NodeId::new(0), 5).expect("grid network builds");
    let cfg = ShardConfig {
        approx: ApproxConfig {
            parallelism: Parallelism::Threads(threads),
            ..ApproxConfig::default()
        },
        scoped: ScopedConfig::default(),
    };
    ShardedWorld::new(net, cfg)
        .expect("sharded world builds")
        .with_retention(RETENTION)
}

/// The event batch of churn tick `t`: three seeded departures, one
/// seeded link drop, one arrival. Picks are pure functions of
/// `(TRACE_SEED, t)` — never of world state — so every thread setting
/// replays the identical trace. Picks that the model refuses (the
/// producer, an already-inactive node, a cut that would disconnect the
/// active set) are *counted as rejected* by the world, identically
/// across settings.
pub fn trace_tick(t: usize, nodes: usize, edges: &[(NodeId, NodeId)]) -> Vec<WorldEvent> {
    let mut events = Vec::with_capacity(5);
    for i in 0..3u64 {
        let pick = splitmix64(TRACE_SEED ^ (t as u64) << 8 ^ i) as usize % nodes;
        events.push(WorldEvent::NodeDeparted(NodeId::new(pick.max(1))));
    }
    let e = splitmix64(TRACE_SEED ^ (t as u64) << 16 ^ 0xE0) as usize % edges.len();
    let (u, v) = edges[e];
    events.push(WorldEvent::LinkDown(u, v));
    events.push(WorldEvent::ChunkArrived);
    events
}

/// One row of the thread sweep.
#[derive(Debug, Clone)]
pub struct ShardRow {
    /// Thread budget of this run.
    pub threads: usize,
    /// Wall time of the measured churn ticks (warm-up excluded).
    pub wall_ms: f64,
    /// Final state digest, identical across every thread setting.
    pub digest: u64,
    /// Deterministic span count (ticks + placed chunks).
    pub spans: u64,
    /// Cross-shard events routed over the whole run.
    pub cross_shard_events: u64,
    /// Shards of the world's partition.
    pub shards: usize,
}

/// Runs warm-up plus the [`TICKS`]-tick churn trace under one thread
/// setting and returns the row.
pub fn measure_threads(side: usize, ticks: usize, threads: usize) -> ShardRow {
    let mut world = sweep_world(side, threads);
    let nodes = world.network().node_count();
    let edges: Vec<(NodeId, NodeId)> = world.network().graph().edges().collect();
    for _ in 0..RETENTION {
        world
            .apply(WorldEvent::ChunkArrived)
            .expect("warm-up arrival places");
    }
    let start = Instant::now();
    for t in 0..ticks {
        world
            .tick(&trace_tick(t, nodes, &edges))
            .expect("churn tick succeeds");
    }
    let wall_ms = start.elapsed().as_secs_f64() * 1e3;
    world.validate().expect("sweep leaves a valid world");
    ShardRow {
        threads,
        wall_ms,
        digest: world.state_digest(),
        spans: world.span_count(),
        cross_shard_events: world.cross_shard_events(),
        shards: world.shard_count(),
    }
}

/// Runs the full sweep over [`THREADS`], asserting the determinism
/// contract — every setting must produce the same digest, span count,
/// shard count, and cross-shard event count.
pub fn run_sweep(side: usize, ticks: usize) -> Vec<ShardRow> {
    let rows: Vec<ShardRow> = THREADS
        .iter()
        .map(|&threads| measure_threads(side, ticks, threads))
        .collect();
    for r in &rows[1..] {
        assert_eq!(
            r.digest, rows[0].digest,
            "threads={} diverged from threads={} (digest)",
            r.threads, rows[0].threads
        );
        assert_eq!(r.spans, rows[0].spans, "span count diverged");
        assert_eq!(r.shards, rows[0].shards, "shard count diverged");
        assert_eq!(
            r.cross_shard_events, rows[0].cross_shard_events,
            "cross-shard event count diverged"
        );
    }
    rows
}

/// `wall(threads=1) / wall(threads=8)` of a sweep: > 1 when the shard
/// fan-out buys wall-clock, ~1 on a single-core host. Machine-dependent
/// by nature — the perf gate bands it, never compares it exactly.
pub fn speedup_8x(rows: &[ShardRow]) -> f64 {
    let wall_of = |threads: usize| {
        rows.iter()
            .find(|r| r.threads == threads)
            .map_or(f64::NAN, |r| r.wall_ms)
    };
    wall_of(1) / wall_of(8)
}

/// Renders the sweep in the exact committed `BENCH_shard.json` format.
pub fn render_json(side: usize, ticks: usize, rows: &[ShardRow]) -> String {
    let mut out = String::from("{\n");
    out.push_str("  \"bench\": \"shard\",\n");
    out.push_str(&format!("  \"topology\": \"grid{side}\",\n"));
    out.push_str(&format!("  \"nodes\": {},\n", side * side));
    out.push_str(&format!("  \"retention\": {RETENTION},\n"));
    out.push_str(&format!("  \"ticks\": {ticks},\n"));
    out.push_str(&format!("  \"shards\": {},\n", rows[0].shards));
    out.push_str(&format!("  \"digest\": \"{:#018x}\",\n", rows[0].digest));
    out.push_str(&format!("  \"spans\": {},\n", rows[0].spans));
    out.push_str(&format!(
        "  \"cross_shard_events\": {},\n",
        rows[0].cross_shard_events
    ));
    out.push_str(&format!("  \"speedup_8x\": {:.3},\n", speedup_8x(rows)));
    out.push_str("  \"rows\": [\n");
    for (idx, r) in rows.iter().enumerate() {
        let comma = if idx + 1 < rows.len() { "," } else { "" };
        out.push_str(&format!(
            "    {{\"threads\": {}, \"wall_ms\": {:.1}}}{comma}\n",
            r.threads, r.wall_ms,
        ));
    }
    out.push_str("  ]\n}\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn small_sweep_is_deterministic_across_thread_settings() {
        let rows = run_sweep(12, 2);
        assert_eq!(rows.len(), THREADS.len());
        assert!(rows[0].shards > 1);
        assert!(rows[0].cross_shard_events > 0);
        // run_sweep itself asserted digest/span equality; spot-check the
        // digest is also stable across a re-run (cross-run determinism,
        // the property the perf gate's exact digest compare rests on).
        let again = run_sweep(12, 2);
        assert_eq!(rows[0].digest, again[0].digest);
        assert_eq!(rows[0].spans, again[0].spans);
    }

    #[test]
    fn trace_ticks_are_pure_functions_of_the_seed() {
        let edges: Vec<(NodeId, NodeId)> = vec![(NodeId::new(0), NodeId::new(1))];
        assert_eq!(trace_tick(3, 100, &edges), trace_tick(3, 100, &edges));
        assert_ne!(trace_tick(3, 100, &edges), trace_tick(4, 100, &edges));
        // Departure picks never name the producer (node 0).
        for t in 0..50 {
            for ev in trace_tick(t, 100, &edges) {
                if let WorldEvent::NodeDeparted(n) = ev {
                    assert!(n.index() >= 1);
                }
            }
        }
    }

    #[test]
    fn render_json_parses_back() {
        let rows = vec![
            ShardRow {
                threads: 1,
                wall_ms: 100.0,
                digest: 0xDEAD_BEEF,
                spans: 40,
                cross_shard_events: 99,
                shards: 21,
            },
            ShardRow {
                threads: 8,
                wall_ms: 50.0,
                digest: 0xDEAD_BEEF,
                spans: 40,
                cross_shard_events: 99,
                shards: 21,
            },
        ];
        let text = render_json(50, 8, &rows);
        let doc = peercache_obs::Json::parse(&text).expect("renders valid JSON");
        let rendered = format!("{doc:?}");
        assert!(rendered.contains("speedup_8x"));
        assert!(rendered.contains("0x00000000deadbeef"));
    }
}
