//! The chaos-matrix cells shared by the `chaos_matrix` criterion bench
//! and the `repro perf` regression gate.
//!
//! Both consumers must measure *exactly* the same thing — same seeds,
//! same liveness arming, same intensity grid — or the committed
//! `BENCH_chaos.json` baseline would drift from what the gate
//! recomputes. Keeping the cell logic here makes that a compile-time
//! fact instead of a convention.

use peercache_core::workload::{paper_grid, paper_random};
use peercache_core::{ChunkId, Network};
use peercache_dist::engine::LossConfig;
use peercache_dist::sim::{run_chunk_round, SimConfig};
use peercache_dist::view::build_views;
use peercache_dist::{FaultPlan, LivenessConfig};
use peercache_graph::NodeId;

/// Local-control scope of every cell (the paper's sweet spot, Fig. 3).
pub const K_HOPS: u32 = 2;

/// The fault-intensity grid.
pub const INTENSITIES: [f64; 4] = [0.0, 0.1, 0.2, 0.3];

/// The liveness parameters armed for every cell.
pub fn liveness() -> LivenessConfig {
    LivenessConfig {
        retry_limit: 3,
        backoff_base: 4,
        backoff_jitter: 2,
        lease_ticks: 20,
        election_timeout: 300,
    }
}

/// Scales every fault knob with one intensity in `[0, 1]`: loss,
/// duplication, and reordering at the given probability, plus a
/// partition window islanding one non-producer node whose length grows
/// with the intensity.
pub fn config_at(net: &Network, intensity: f64) -> SimConfig {
    let island = if net.producer() == NodeId::new(0) {
        NodeId::new(1)
    } else {
        NodeId::new(0)
    };
    let mut chaos = FaultPlan::new(0xFA117)
        .duplicate(intensity / 2.0)
        .reorder(intensity / 2.0, 2);
    let window = (intensity * 200.0) as u64;
    if window > 0 {
        chaos = chaos.partition(10, 10 + window, vec![island]);
    }
    SimConfig {
        loss: LossConfig {
            drop_probability: intensity,
            seed: 29,
        },
        chaos,
        liveness: liveness(),
        ..Default::default()
    }
}

/// One matrix row: what a single chaos-afflicted round did.
pub struct Cell {
    /// Topology label (`grid10` / `random60`).
    pub topology: &'static str,
    /// Node count of the topology.
    pub nodes: usize,
    /// Fault intensity of the cell.
    pub intensity: f64,
    /// Ticks to convergence.
    pub ticks: u64,
    /// TIGHT/SPAN retransmissions.
    pub retries: u64,
    /// Lease-expiry depositions.
    pub depositions: u64,
    /// Chaos-layer faults injected.
    pub faults: u64,
    /// Messages dropped (loss + chaos).
    pub lossy_drops: u64,
    /// Clients that left the round degraded.
    pub degraded: usize,
    /// Clients that fell back to the producer.
    pub fallbacks: usize,
}

/// Runs one cell and panics if the round fails to settle.
pub fn run_cell(net: &Network, topology: &'static str, intensity: f64) -> Cell {
    let (views, _) = build_views(net, K_HOPS).expect("views build");
    let cfg = config_at(net, intensity);
    let out = run_chunk_round(net, &views, ChunkId::new(0), &cfg);
    assert!(
        out.ticks < cfg.max_ticks,
        "{topology} @ {intensity}: round must settle"
    );
    Cell {
        topology,
        nodes: net.node_count(),
        intensity,
        ticks: out.ticks,
        retries: out.retries,
        depositions: out.depositions,
        faults: out.faults.total(),
        lossy_drops: out.stats.dropped,
        degraded: out.degraded.len(),
        fallbacks: out.producer_fallbacks,
    }
}

/// Runs the full matrix (both topologies, all intensities) in the
/// committed baseline's row order.
pub fn run_matrix() -> Vec<Cell> {
    let grid = paper_grid(10).expect("grid builds");
    let geo = paper_random(60, 7).expect("random geometric builds");
    let mut cells = Vec::new();
    for &intensity in &INTENSITIES {
        cells.push(run_cell(&grid, "grid10", intensity));
        cells.push(run_cell(&geo, "random60", intensity));
    }
    cells
}

/// Renders the cells in the exact committed `BENCH_chaos.json` format.
pub fn render_json(cells: &[Cell]) -> String {
    let liv = liveness();
    let mut out = String::from("{\n  \"bench\": \"chaos_matrix\",\n");
    out.push_str(&format!(
        "  \"liveness\": {{ \"retry_limit\": {}, \"backoff_base\": {}, \"lease_ticks\": {}, \"election_timeout\": {} }},\n",
        liv.retry_limit, liv.backoff_base, liv.lease_ticks, liv.election_timeout
    ));
    out.push_str("  \"rows\": [\n");
    for (i, c) in cells.iter().enumerate() {
        out.push_str(&format!(
            "    {{ \"topology\": \"{}\", \"nodes\": {}, \"intensity\": {:.2}, \"ticks\": {}, \"retries\": {}, \"depositions\": {}, \"chaos_faults\": {}, \"lossy_drops\": {}, \"degraded\": {}, \"producer_fallbacks\": {} }}{}\n",
            c.topology,
            c.nodes,
            c.intensity,
            c.ticks,
            c.retries,
            c.depositions,
            c.faults,
            c.lossy_drops,
            c.degraded,
            c.fallbacks,
            if i + 1 < cells.len() { "," } else { "" }
        ));
    }
    out.push_str("  ]\n}\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cells_replay_identically() {
        let net = paper_grid(4).unwrap();
        let a = run_cell(&net, "grid4", 0.2);
        let b = run_cell(&net, "grid4", 0.2);
        assert_eq!(
            (a.ticks, a.retries, a.faults, a.lossy_drops),
            (b.ticks, b.retries, b.faults, b.lossy_drops)
        );
    }

    #[test]
    fn render_matches_baseline_shape() {
        let net = paper_grid(3).unwrap();
        let cells = vec![run_cell(&net, "grid3", 0.0)];
        let json = render_json(&cells);
        let parsed = peercache_obs::Json::parse(&json).expect("well-formed");
        assert_eq!(
            parsed.get("bench").and_then(|j| j.as_str()),
            Some("chaos_matrix")
        );
        assert_eq!(
            parsed.get("rows").and_then(|j| j.as_arr()).map(|r| r.len()),
            Some(1)
        );
    }
}
