//! The replication-matrix cells shared by the `replication` criterion
//! bench, the `repro replication` table, and the `repro perf`
//! regression gate.
//!
//! Each cell runs one seeded chaos trace — the same shape as the
//! `tests/replication_chaos.rs` acceptance suite, shrunk to a 6×6 grid —
//! at one `(replication degree R, fault intensity)` point and measures
//! what the robustness stack actually delivers:
//!
//! * **durability** — the fraction of acknowledged writes that survive
//!   two 2-node death batches (at R = 3 a 2-death batch can never erase
//!   an acked write; at R = 1 every batch costs chunks);
//! * **detection** — SWIM confirmations and the worst death→confirm lag;
//! * **repair traffic** — anti-entropy repairs plus the crash-restart
//!   recovery bound (chunks refilled ≤ chunks hosted);
//! * **replica-load fairness** — the Gini coefficient of per-node copy
//!   counts in the final placement.
//!
//! Everything except `wall_ms` is deterministic: the transport drops
//! messages by a pure hash of `(tick, from, to)`, SWIM draws from its
//! own seeded stream, and the world replays byte-identically (the
//! acceptance suite asserts this across thread counts). The committed
//! numbers live in `BENCH_replication.json`.

use std::collections::BTreeMap;
use std::time::Instant;

use peercache_core::approx::ApproxConfig;
use peercache_core::metrics;
use peercache_core::replication::ReplicationPolicy;
use peercache_core::scoped::ScopedConfig;
use peercache_core::sharded::{ShardConfig, ShardedWorld};
use peercache_core::world::WorldEvent;
use peercache_core::Network;
use peercache_dist::engine::Tick;
use peercache_dist::membership::{Swim, SwimConfig};
use peercache_dist::replica::ReplicaSim;
use peercache_graph::{builders, NodeId};

/// Grid side of every cell (36 nodes, producer at node 0).
pub const SIDE: usize = 6;

/// Per-node storage capacity — roomy enough that the repair planner can
/// always restore the replication floor after the death batches.
pub const NODE_CAP: usize = 6;

/// Trace length in ticks: long enough for the second death batch to be
/// suspected, confirmed, repaired, re-replicated, and re-converged.
pub const TICKS: Tick = 160;

/// ADMIN-rule span threshold (`M`) of every cell: demanding this many
/// relay-tight supporters per facility keeps the ascent's natural
/// opening count *below* the replication axis, so the R floor — not
/// demand — decides the copy count and the durability curve actually
/// varies with R.
pub const SPAN_THRESHOLD: usize = 16;

/// The replication-degree axis of the matrix.
pub const DEGREES: [usize; 3] = [1, 2, 3];

/// The fault-intensity axis: per-message drop probability of the
/// transport (deaths and the crash-restart are scripted in every cell).
pub const INTENSITIES: [f64; 3] = [0.0, 0.05, 0.15];

/// The SWIM detector parameters armed for every cell. The suspicion
/// timeout is long enough that intensity-driven drops are always
/// refuted before they can confirm a live node.
pub fn swim_config() -> SwimConfig {
    SwimConfig {
        ping_period: 4,
        suspect_timeout: 40,
        ping_req_fanout: 2,
        seed: 0x5717,
    }
}

/// One matrix row: what a single replicated chaos trace did.
pub struct Cell {
    /// Replication degree R of the cell.
    pub degree: usize,
    /// Transport drop probability of the cell.
    pub intensity: f64,
    /// Chunks alive at the end of the trace.
    pub chunks: usize,
    /// Replicated writes attempted (re-replication + version churn).
    pub write_attempts: u64,
    /// Writes acknowledged by every target (write-all ack).
    pub write_acks: u64,
    /// Acked ledger entries at risk across the death batches.
    pub at_risk: u64,
    /// Acked writes erased by a death batch (no surviving copy).
    pub lost_writes: u64,
    /// SWIM death confirmations (the scripted deaths; never the
    /// crash-restart node, never a false positive).
    pub confirmed: usize,
    /// Worst death→confirmation lag in ticks.
    pub detect_lag_max: u64,
    /// Anti-entropy repairs applied over the whole trace.
    pub repairs: u64,
    /// Chunks refilled by the crash-restart recovery.
    pub recovery_chunks: u64,
    /// Smallest holder-set size over live chunks at the end.
    pub min_copies: usize,
    /// Gini coefficient of per-node cached-copy counts at the end.
    pub replica_gini: f64,
    /// Faults injected: transport drops + scripted deaths.
    pub faults: u64,
    /// Wall time of the trace (machine-dependent; the gate bands it).
    pub wall_ms: f64,
}

impl Cell {
    /// Acked writes that survived, as a fraction of those at risk
    /// (`1.0` when no ledger entry was ever exposed to a batch).
    pub fn durability(&self) -> f64 {
        if self.at_risk == 0 {
            1.0
        } else {
            1.0 - self.lost_writes as f64 / self.at_risk as f64
        }
    }
}

/// Deterministic per-message drop: a pure hash of `(tick, from, to)`
/// against a permille threshold, so every replay sees identical loss.
fn dropped(t: Tick, from: NodeId, to: NodeId, permille: u64) -> bool {
    let mut x = t
        .wrapping_mul(0x9E37_79B9_7F4A_7C15)
        .wrapping_add((from.index() as u64) << 32)
        .wrapping_add(to.index() as u64)
        .wrapping_add(0xC4A0_5EED);
    x ^= x >> 33;
    x = x.wrapping_mul(0xFF51_AFD7_ED55_8CCD);
    x ^= x >> 29;
    x % 1000 < permille
}

/// Manhattan distance on the cell grid — the nearest-replica metric
/// for crash recovery.
fn grid_distance(a: NodeId, b: NodeId) -> u64 {
    let (ar, ac) = (a.index() / SIDE, a.index() % SIDE);
    let (br, bc) = (b.index() / SIDE, b.index() % SIDE);
    (ar.abs_diff(br) + ac.abs_diff(bc)) as u64
}

/// Picks `k` live replica holders (oldest chunks first, ascending node
/// id) excluding the producer and already-dead nodes. Candidates are
/// probe-departed on a network clone — together with every pending dead
/// node — so a victim whose eventual [`WorldEvent::NodeDeparted`] the
/// partition policy would refuse (it would disconnect the survivors) is
/// never chosen; a refused departure would strand the dead node in the
/// chunk's holder set and block re-replication forever.
fn pick_holders(world: &ShardedWorld, dead: &[NodeId], k: usize) -> Vec<NodeId> {
    let producer = world.network().producer();
    let mut probe = world.network().clone();
    for &d in dead {
        let _ = probe.deactivate_node(d);
    }
    let mut victims = Vec::with_capacity(k);
    for c in world.live_chunks() {
        if let Some(sc) = world.chunk(c) {
            for &h in &sc.caches {
                if h != producer
                    && !dead.contains(&h)
                    && !victims.contains(&h)
                    && probe.deactivate_node(h).is_ok()
                {
                    victims.push(h);
                    if victims.len() == k {
                        return victims;
                    }
                }
            }
        }
    }
    victims
}

/// Runs one `(degree, intensity)` cell and panics on any structural
/// oracle violation (false-positive confirmation, recovery overrun,
/// failed convergence, invalid world).
pub fn run_cell(degree: usize, intensity: f64) -> Cell {
    let start = Instant::now();
    let permille = (intensity * 1000.0).round() as u64;
    let nodes = SIDE * SIDE;
    let net =
        Network::new(builders::grid(SIDE, SIDE), NodeId::new(0), NODE_CAP).expect("grid builds");
    let cfg = ShardConfig {
        approx: ApproxConfig {
            span_threshold: SPAN_THRESHOLD,
            replication: ReplicationPolicy::with_degree(degree),
            ..ApproxConfig::default()
        },
        scoped: ScopedConfig::default(),
    };
    let mut world = ShardedWorld::new(net, cfg).expect("sharded world builds");
    let mut replica = ReplicaSim::new(nodes);
    let mut swim = Swim::new((1..nodes).map(NodeId::new), swim_config());

    let mut dead: Vec<NodeId> = Vec::new();
    let mut death_tick: BTreeMap<NodeId, Tick> = BTreeMap::new();
    let mut faults = 0u64;
    let mut write_attempts = 0u64;
    let mut write_acks = 0u64;
    let mut at_risk = 0u64;
    let mut lost_writes = 0u64;
    let mut repairs = 0u64;
    let mut recovery_chunks = 0u64;
    let mut detect_lag_max = 0u64;
    let mut confirmed_total = 0usize;
    let mut crashed: Option<NodeId> = None;

    for t in 0..TICKS {
        // --- scripted faults: two 2-death batches + a crash-restart ---
        let batch = match t {
            30 | 90 => 2,
            _ => 0,
        };
        if batch > 0 {
            for v in pick_holders(&world, &dead, batch) {
                dead.push(v);
                death_tick.insert(v, t);
                replica.kill(v);
                faults += 1;
            }
            at_risk += replica.acked_versions().len() as u64;
            lost_writes += replica.lost_acked_writes().len() as u64;
        }
        if t == 100 {
            if let Some(&v) = pick_holders(&world, &dead, 1).first() {
                dead.push(v);
                death_tick.insert(v, t);
                replica.kill(v);
                faults += 1;
                crashed = Some(v);
            }
        }
        if t == 105 {
            if let Some(v) = crashed {
                dead.retain(|&d| d != v);
                death_tick.remove(&v);
                let hosted = world
                    .live_chunks()
                    .iter()
                    .filter(|&&c| replica.hosts(c).contains(&v))
                    .count() as u64;
                let recovered = replica.revive(
                    v,
                    |a, b| !dead.contains(&a) && !dead.contains(&b),
                    grid_distance,
                );
                assert!(
                    recovered <= hosted,
                    "R={degree} i={intensity}: recovery refills at most hosted chunks"
                );
                recovery_chunks = recovered;
            }
        }

        // The transport every layer shares this tick: dead nodes are
        // silent, everything else drops by the intensity hash.
        let reach = |from: NodeId, to: NodeId| -> bool {
            if dead.contains(&from) || dead.contains(&to) {
                return false;
            }
            !dropped(t, from, to, permille)
        };

        // --- SWIM detection driving world departures ---------------
        let mut drops_this_tick = 0u64;
        swim.tick(t, &mut |tk, a, b| {
            if dead.contains(&a) || dead.contains(&b) {
                return false;
            }
            if dropped(tk, a, b, permille) {
                drops_this_tick += 1;
                return false;
            }
            true
        });
        faults += drops_this_tick;
        let confirmed = swim.take_confirmed();
        for &d in &confirmed {
            let at = death_tick
                .get(&d)
                .copied()
                .unwrap_or_else(|| panic!("false-positive confirmation of {d:?}"));
            let lag = t.saturating_sub(at);
            if lag > detect_lag_max {
                detect_lag_max = lag;
            }
        }
        confirmed_total += confirmed.len();
        let mut events: Vec<WorldEvent> = confirmed
            .into_iter()
            .map(WorldEvent::NodeDeparted)
            .collect();
        if t % 8 == 0 && t <= 80 {
            events.push(WorldEvent::ChunkArrived);
        }
        if !events.is_empty() {
            let report = world.tick(&events).expect("tick applies");
            assert_eq!(
                report.rejected, 0,
                "R={degree} i={intensity} t={t}: no event may be refused"
            );
            world.validate().expect("world stays consistent");
        }

        // --- replica layer: re-replication, churn, sync, reads ------
        let live = world.live_chunks();
        let producer = world.network().producer();
        for &c in &live {
            let holders = world
                .chunk(c)
                .map(|sc| sc.caches.clone())
                .unwrap_or_default();
            if !holders.is_empty() && replica.hosts(c) != holders.as_slice() {
                write_attempts += 1;
                if replica.write(c, producer, &holders, reach).acked {
                    write_acks += 1;
                }
            }
        }
        if t % 4 == 0 && t <= 120 && !live.is_empty() {
            let c = live[(t as usize / 4) % live.len()];
            let holders = world
                .chunk(c)
                .map(|sc| sc.caches.clone())
                .unwrap_or_default();
            if !holders.is_empty() {
                write_attempts += 1;
                if replica.write(c, producer, &holders, reach).acked {
                    write_acks += 1;
                }
            }
        }
        repairs += replica.anti_entropy_round(reach) as u64;
        if t % 9 == 0 {
            if let Some(&c) = live.last() {
                replica.read(c, producer, reach);
            }
        }
    }

    // End-of-trace oracles: the detector found exactly the unrecovered
    // scripted deaths, and the live replicas converged post-quiescence.
    assert_eq!(
        confirmed_total,
        dead.len(),
        "R={degree} i={intensity}: every scripted death confirmed, no extras"
    );
    assert!(
        replica.converged(),
        "R={degree} i={intensity}: live replicas converge after quiescence"
    );

    // Final placement: copy floor and per-node replica-load fairness.
    let live = world.live_chunks();
    let mut min_copies = usize::MAX;
    let mut per_node: BTreeMap<NodeId, usize> = world
        .network()
        .active_nodes()
        .iter()
        .filter(|&&n| n != world.network().producer())
        .map(|&n| (n, 0))
        .collect();
    for &c in &live {
        if let Some(sc) = world.chunk(c) {
            min_copies = min_copies.min(sc.caches.len());
            for h in &sc.caches {
                if let Some(slot) = per_node.get_mut(h) {
                    *slot += 1;
                }
            }
        }
    }
    let loads: Vec<usize> = per_node.values().copied().collect();

    Cell {
        degree,
        intensity,
        chunks: live.len(),
        write_attempts,
        write_acks,
        at_risk,
        lost_writes,
        confirmed: confirmed_total,
        detect_lag_max,
        repairs,
        recovery_chunks,
        min_copies: if live.is_empty() { 0 } else { min_copies },
        replica_gini: metrics::gini(&loads),
        faults,
        wall_ms: start.elapsed().as_secs_f64() * 1e3,
    }
}

/// Runs the full matrix (all degrees, all intensities) in the committed
/// baseline's row order.
pub fn run_matrix() -> Vec<Cell> {
    let mut cells = Vec::new();
    for &degree in &DEGREES {
        for &intensity in &INTENSITIES {
            cells.push(run_cell(degree, intensity));
        }
    }
    cells
}

/// Renders the cells in the exact committed `BENCH_replication.json`
/// format.
pub fn render_json(cells: &[Cell]) -> String {
    let swim = swim_config();
    let mut out = String::from("{\n  \"bench\": \"replication\",\n");
    out.push_str(&format!(
        "  \"grid_side\": {SIDE}, \"node_cap\": {NODE_CAP}, \"ticks\": {TICKS},\n"
    ));
    out.push_str(&format!(
        "  \"swim\": {{ \"ping_period\": {}, \"suspect_timeout\": {}, \"ping_req_fanout\": {} }},\n",
        swim.ping_period, swim.suspect_timeout, swim.ping_req_fanout
    ));
    out.push_str("  \"rows\": [\n");
    for (i, c) in cells.iter().enumerate() {
        out.push_str(&format!(
            "    {{ \"degree\": {}, \"intensity\": {:.2}, \"chunks\": {}, \"write_attempts\": {}, \"write_acks\": {}, \"at_risk\": {}, \"lost_writes\": {}, \"durability\": {:.4}, \"confirmed\": {}, \"detect_lag_max\": {}, \"repairs\": {}, \"recovery_chunks\": {}, \"min_copies\": {}, \"replica_gini\": {:.4}, \"faults\": {}, \"wall_ms\": {:.3} }}{}\n",
            c.degree,
            c.intensity,
            c.chunks,
            c.write_attempts,
            c.write_acks,
            c.at_risk,
            c.lost_writes,
            c.durability(),
            c.confirmed,
            c.detect_lag_max,
            c.repairs,
            c.recovery_chunks,
            c.min_copies,
            c.replica_gini,
            c.faults,
            c.wall_ms,
            if i + 1 < cells.len() { "," } else { "" }
        ));
    }
    out.push_str("  ]\n}\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cells_replay_identically() {
        let a = run_cell(3, 0.05);
        let b = run_cell(3, 0.05);
        assert_eq!(
            (a.write_acks, a.lost_writes, a.repairs, a.faults),
            (b.write_acks, b.lost_writes, b.repairs, b.faults)
        );
        assert_eq!(a.detect_lag_max, b.detect_lag_max);
        assert_eq!(a.replica_gini.to_bits(), b.replica_gini.to_bits());
    }

    #[test]
    fn triple_replication_loses_nothing_to_two_death_batches() {
        let cell = run_cell(3, 0.0);
        assert_eq!(cell.lost_writes, 0, "R=3 survives 2-death batches");
        assert!(cell.durability() == 1.0);
        assert!(
            cell.min_copies >= 3,
            "the repair planner restores the floor"
        );
    }

    #[test]
    fn render_matches_baseline_shape() {
        let cells = vec![run_cell(1, 0.0)];
        let json = render_json(&cells);
        let parsed = peercache_obs::Json::parse(&json).expect("well-formed");
        assert_eq!(
            parsed.get("bench").and_then(|j| j.as_str()),
            Some("replication")
        );
        assert_eq!(
            parsed.get("rows").and_then(|j| j.as_arr()).map(|r| r.len()),
            Some(1)
        );
    }
}
