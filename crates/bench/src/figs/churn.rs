//! `churn` — not a paper figure: the dynamic-topology extension.
//!
//! Drives a seeded departure/arrival trace on the 10x10 grid through
//! [`CacheWorld`]'s incremental repair and compares every step against
//! the full-replan oracle. The paper plans on a static network; this
//! table shows what the repair path buys once nodes churn: per-event
//! wall clock well under the replan cost at a contention gap of a few
//! percent.

use peercache_core::approx::ApproxConfig;
use peercache_core::workload::paper_grid;
use peercache_core::world::{CacheWorld, EventOutcome, WorldEvent};
use peercache_graph::NodeId;

use crate::harness::{f3, Table};

const RETENTION: usize = 6;
const DEPARTURES: usize = 10;
const SEED: u64 = 0xBADC0DE;

/// xorshift64 — the same deterministic trace on every run.
struct XorShift(u64);

impl XorShift {
    fn next_u64(&mut self) -> u64 {
        let mut x = self.0;
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        self.0 = x;
        x
    }

    fn below(&mut self, n: usize) -> usize {
        (self.next_u64() % n.max(1) as u64) as usize
    }
}

/// Runs the churn trace and tabulates repair-vs-replan per departure.
pub fn run() -> Vec<Table> {
    let net = paper_grid(10).expect("grid builds");
    let mut world = CacheWorld::new(net, ApproxConfig::default()).with_retention(RETENTION);
    for _ in 0..RETENTION {
        world.apply(WorldEvent::ChunkArrived).expect("arrival");
    }
    let mut rng = XorShift(SEED);
    let mut table = Table::new(
        "churn",
        &format!(
            "incremental repair vs full replan, {DEPARTURES} seeded departures \
             (10x10 grid, retention {RETENTION})"
        ),
        &[
            "departure",
            "node",
            "orphans",
            "new copies",
            "repair ms",
            "replan ms",
            "cost ratio",
        ],
    );
    let mut repair_us = 0u64;
    let mut replan_us = 0u64;
    let mut step = 0usize;
    while step < DEPARTURES {
        let producer = world.network().producer();
        let candidates: Vec<NodeId> = world
            .network()
            .active_nodes()
            .into_iter()
            .filter(|&n| n != producer)
            .collect();
        let victim = candidates[rng.below(candidates.len())];
        let report = match world.apply(WorldEvent::NodeDeparted(victim)) {
            Ok(EventOutcome::Departed(report)) => report,
            Ok(_) => unreachable!("departure outcome"),
            Err(_) => continue, // would disconnect the survivors; redraw
        };
        let gap = world.repair_vs_replan().expect("oracle replan");
        step += 1;
        repair_us += report.wall_us;
        replan_us += gap.replan_wall_us;
        table.push_row(vec![
            step.to_string(),
            report.node.index().to_string(),
            report.orphaned_clients.to_string(),
            report.new_copies.len().to_string(),
            format!("{:.2}", report.wall_us as f64 / 1e3),
            format!("{:.2}", gap.replan_wall_us as f64 / 1e3),
            f3(gap.cost_ratio),
        ]);
        world.apply(WorldEvent::ChunkArrived).expect("arrival");
    }
    world.validate().expect("trace leaves a valid world");
    table.push_row(vec![
        "total".into(),
        "-".into(),
        "-".into(),
        "-".into(),
        format!("{:.2}", repair_us as f64 / 1e3),
        format!("{:.2}", replan_us as f64 / 1e3),
        format!("{:.2}x speedup", replan_us as f64 / repair_us.max(1) as f64),
    ]);
    vec![table]
}
