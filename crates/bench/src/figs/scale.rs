//! `scale` — not a paper figure: the locality-stack extension.
//!
//! Plans the grid100 (10,000-node) instance with the hierarchical
//! region planner and anchors its quality against the dense-matrix
//! Appx pipeline on grid20, the largest size where both run. The paper
//! evaluates 16–100 nodes; this table shows the scoped contention
//! store planning 25x beyond the dense `O(N²)` wall while holding the
//! dense planner's totals. The full sweep — including the 100k-node
//! random-geometric row — lives in `cargo bench --bench scale` /
//! `BENCH_scale.json`.

use crate::harness::{f3, Table};
use crate::scale_cells::{
    grid_network, measure_quality, measure_scale, GRID_BUDGET_MS, GRID_SIDE, QUALITY_SIDE,
    SCALE_CHUNKS,
};

/// Runs the quality anchor and the grid100 scale row.
pub fn run() -> Vec<Table> {
    let quality = measure_quality(QUALITY_SIDE, SCALE_CHUNKS);
    let mut anchor = Table::new(
        "scale-quality",
        &format!(
            "hierarchical vs dense Appx total, {SCALE_CHUNKS} chunks \
             (largest dense-feasible grid)"
        ),
        &["topology", "nodes", "hier/dense"],
    );
    anchor.push_row(vec![
        quality.topology.clone(),
        quality.nodes.to_string(),
        f3(quality.hier_over_appx),
    ]);

    let net = grid_network(GRID_SIDE);
    let row = measure_scale(
        &format!("grid{GRID_SIDE}"),
        &net,
        SCALE_CHUNKS,
        GRID_BUDGET_MS,
    );
    let mut table = Table::new(
        "scale",
        &format!(
            "hierarchical planner past the dense wall, {SCALE_CHUNKS} chunks \
             (full sweep: BENCH_scale.json)"
        ),
        &[
            "topology",
            "nodes",
            "regions",
            "state MiB",
            "dense MiB",
            "ratio",
            "plan ms",
        ],
    );
    table.push_row(vec![
        row.topology.clone(),
        row.nodes.to_string(),
        row.regions.to_string(),
        format!("{:.1}", row.contention_bytes as f64 / (1024.0 * 1024.0)),
        format!("{:.1}", row.dense_bytes as f64 / (1024.0 * 1024.0)),
        format!("{:.1}x", row.bytes_ratio),
        format!("{:.1}", row.plan_ms),
    ]);
    vec![anchor, table]
}
