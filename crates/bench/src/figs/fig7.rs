//! Fig. 7 — Gini coefficient of caching load on grid (a) and random (b)
//! networks of growing size.

use peercache_core::metrics::gini;
use peercache_core::workload::{paper_random, ScenarioBuilder, Topology};

use crate::harness::{all_planners, f3, run_planner, Table};

const CHUNKS: usize = 5;

fn gini_of(
    planner: &dyn peercache_core::planner::CachePlanner,
    net: &peercache_core::Network,
) -> f64 {
    let (_, final_net) = run_planner(planner, net, CHUNKS);
    let loads: Vec<usize> = final_net.clients().map(|n| final_net.used(n)).collect();
    gini(&loads)
}

/// Runs both panels.
pub fn run() -> Vec<Table> {
    let mut grid = Table::new(
        "fig7a",
        "gini coefficient on grids (5 chunks)",
        &["nodes", "Appx", "Dist", "Hopc", "Cont"],
    );
    for side in [4usize, 5, 6, 7, 8] {
        let net = ScenarioBuilder::new(Topology::Grid {
            rows: side,
            cols: side,
        })
        .capacity(5)
        .build()
        .expect("grid scenario builds");
        let mut row = vec![(side * side).to_string()];
        for planner in all_planners() {
            row.push(f3(gini_of(planner.as_ref(), &net)));
        }
        grid.push_row(row);
    }

    let mut random = Table::new(
        "fig7b",
        "gini coefficient on random networks (5 chunks, mean of 3 seeds)",
        &["nodes", "Appx", "Dist", "Hopc", "Cont"],
    );
    for nodes in [20usize, 60, 100, 140, 180] {
        let mut sums = [0.0; 4];
        for seed in 0..3u64 {
            let net = paper_random(nodes, seed).expect("random scenario builds");
            for (i, planner) in all_planners().iter().enumerate() {
                sums[i] += gini_of(planner.as_ref(), &net);
            }
        }
        let mut row = vec![nodes.to_string()];
        row.extend(sums.iter().map(|s| f3(s / 3.0)));
        random.push_row(row);
    }
    vec![grid, random]
}
