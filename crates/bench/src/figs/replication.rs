//! `replication` — not a paper figure: durability, detection, and
//! replica-load fairness versus replication degree R and fault
//! intensity.
//!
//! Each row replays one seeded chaos trace (two 2-node death batches, a
//! crash-restart, SWIM-driven departures, versioned replicas) at one
//! `(R, intensity)` point via [`crate::replication_cells`], shared with
//! the `replication` criterion bench and the `repro perf` regression
//! gate. Committed numbers live in `BENCH_replication.json`; wall times
//! are machine-dependent, everything else is exact.

use crate::harness::Table;
use crate::replication_cells::{run_matrix, NODE_CAP, SIDE, TICKS};

/// Runs the full matrix and renders the table.
pub fn run() -> Vec<Table> {
    let cells = run_matrix();
    let mut table = Table::new(
        "replication",
        &format!(
            "R-copy replication under chaos: grid{SIDE} (cap {NODE_CAP}), {TICKS} ticks, \
             2+2 deaths + crash-restart per cell (committed matrix: BENCH_replication.json)"
        ),
        &[
            "R",
            "intensity",
            "durability",
            "lost/at-risk",
            "confirmed",
            "lag max",
            "repairs",
            "recovered",
            "min copies",
            "gini",
            "wall ms",
        ],
    );
    for c in &cells {
        table.push_row(vec![
            c.degree.to_string(),
            format!("{:.2}", c.intensity),
            format!("{:.4}", c.durability()),
            format!("{}/{}", c.lost_writes, c.at_risk),
            c.confirmed.to_string(),
            c.detect_lag_max.to_string(),
            c.repairs.to_string(),
            c.recovery_chunks.to_string(),
            c.min_copies.to_string(),
            format!("{:.4}", c.replica_gini),
            format!("{:.1}", c.wall_ms),
        ]);
    }
    vec![table]
}
