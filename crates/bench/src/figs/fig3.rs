//! Fig. 3 — the distributed algorithm under different hop limits.
//!
//! k = 1 gives nodes too little information (few caches elected, high
//! accessing cost); k >= 2 plateaus, which is why the paper — and our
//! default — uses a 2-hop message scope.

use peercache_core::metrics;
use peercache_core::planner::CachePlanner;
use peercache_core::workload::paper_grid;
use peercache_dist::DistributedPlanner;

use crate::harness::{f1, f3, Table};

const CHUNKS: usize = 5;

/// Runs the hop-limit sweep.
pub fn run() -> Vec<Table> {
    let mut table = Table::new(
        "fig3",
        "distributed algorithm vs. hop limit (6x6 grid, 5 chunks)",
        &["k", "contention", "gini", "messages", "fallbacks"],
    );
    for k in 1..=5u32 {
        let mut net = paper_grid(6).expect("paper grid builds");
        let planner = DistributedPlanner::with_k_hops(k);
        let placement = planner.plan(&mut net, CHUNKS).expect("plan succeeds");
        let report = planner.last_report();
        let loads: Vec<usize> = net.clients().map(|n| net.used(n)).collect();
        table.push_row(vec![
            k.to_string(),
            f1(placement.total_contention_cost()),
            f3(metrics::gini(&loads)),
            report.messages.total().to_string(),
            report.fallbacks_per_chunk.iter().sum::<usize>().to_string(),
        ]);
    }
    vec![table]
}
