//! Fig. 8 — accumulated contention cost as the number of distinct
//! chunks grows from 1 to 10.
//!
//! Uses the paper's multi-item accounting: after all rounds, every
//! chunk's recorded accesses and trees are priced on the final graph.
//! The paper's panels are 4x4 and 8x8; we add 6x6 and keep 4x4 — note
//! in EXPERIMENTS.md that on the tiny 4x4 the fair planner's copy count
//! makes it lose its edge under this accounting.

use peercache_core::workload::{ScenarioBuilder, Topology};

use crate::harness::{all_planners, f1, run_final_costed, Table};

/// Runs the chunk-count sweep on the paper's two grid sizes (+ 6x6).
pub fn run() -> Vec<Table> {
    let mut out = Vec::new();
    for (panel, side) in [("fig8a", 4usize), ("fig8b", 8), ("fig8c", 6)] {
        let net = ScenarioBuilder::new(Topology::Grid {
            rows: side,
            cols: side,
        })
        .capacity(5)
        .build()
        .expect("grid scenario builds");
        let mut table = Table::new(
            panel,
            &format!(
                "accumulated contention cost vs. distinct chunks \
                 ({side}x{side} grid, final-state accounting)"
            ),
            &["chunks", "Appx", "Dist", "Hopc", "Cont"],
        );
        for q in 1..=10usize {
            let mut row = vec![q.to_string()];
            for planner in all_planners() {
                let (p, _) = run_final_costed(planner.as_ref(), &net, q);
                row.push(f1(p.total_contention_cost()));
            }
            table.push_row(row);
        }
        out.push(table);
    }
    out
}
