//! Fig. 6 — how many nodes are needed to store a given share of the
//! data (the p-percentile fairness curve).

use peercache_core::metrics::{nodes_to_cover, p_percentile_fairness};
use peercache_core::workload::paper_grid;

use crate::harness::{all_planners, run_planner, Table};

const CHUNKS: usize = 5;

/// Runs the fairness-curve experiment.
pub fn run() -> Vec<Table> {
    let net = paper_grid(6).expect("paper grid builds");
    let mut loads_per_algo = Vec::new();
    for planner in all_planners() {
        let (_, final_net) = run_planner(planner.as_ref(), &net, CHUNKS);
        let loads: Vec<usize> = final_net.clients().map(|n| final_net.used(n)).collect();
        loads_per_algo.push((planner.name().to_string(), loads));
    }

    let mut curve = Table::new(
        "fig6",
        "nodes needed to store p% of all cached data (6x6 grid, 5 chunks)",
        &["p%", "Appx", "Dist", "Hopc", "Cont"],
    );
    for p in (10..=100).step_by(10) {
        let mut row = vec![p.to_string()];
        for (_, loads) in &loads_per_algo {
            row.push(nodes_to_cover(loads, p as f64 / 100.0).to_string());
        }
        curve.push_row(row);
    }

    let mut summary = Table::new(
        "fig6_summary",
        "75-percentile fairness (fraction of nodes holding 75% of the data; ideal 75%)",
        &["algorithm", "fairness"],
    );
    for (name, loads) in &loads_per_algo {
        summary.push_row(vec![
            name.clone(),
            format!("{:.1}%", 100.0 * p_percentile_fairness(loads, 0.75)),
        ]);
    }
    vec![curve, summary]
}
