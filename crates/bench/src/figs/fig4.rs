//! Fig. 4 — random networks of 20–180 nodes, averaged over 5 seeds.

use peercache_core::workload::paper_random;

use crate::harness::{all_planners, f1, run_planner, Table};

const CHUNKS: usize = 5;
const SEEDS: u64 = 5;

/// Runs the random-network sweep.
pub fn run() -> Vec<Table> {
    let mut table = Table::new(
        "fig4",
        "total contention cost on random networks (5 chunks, mean of 5 seeds)",
        &["nodes", "Appx", "Dist", "Hopc", "Cont"],
    );
    for nodes in [20usize, 60, 100, 140, 180] {
        let mut sums = [0.0; 4];
        for seed in 0..SEEDS {
            let net = paper_random(nodes, seed).expect("random scenario builds");
            for (i, planner) in all_planners().iter().enumerate() {
                let (p, _) = run_planner(planner.as_ref(), &net, CHUNKS);
                sums[i] += p.total_contention_cost();
            }
        }
        let mut row = vec![nodes.to_string()];
        row.extend(sums.iter().map(|s| f1(s / SEEDS as f64)));
        table.push_row(row);
    }
    vec![table]
}
