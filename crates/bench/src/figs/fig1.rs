//! Fig. 1 — chunk-distribution difference against the optimal solution.
//!
//! The paper draws, for a 6x6 grid with 5 chunks, circles whose area is
//! each node's difference in stored-chunk count against the brute-force
//! optimum. Our brute force enumerates facility subsets and cannot cover
//! 35 candidates, so this figure runs on a **4x4 grid** (15 candidates,
//! the largest exhaustively solvable size — see EXPERIMENTS.md).

use peercache_core::exact::BruteForcePlanner;
use peercache_core::metrics::distribution_diff;
use peercache_core::workload::{ScenarioBuilder, Topology};

use crate::harness::{all_planners, run_planner, Table};

const SIDE: usize = 4;
const CHUNKS: usize = 5;

/// Runs the experiment.
pub fn run() -> Vec<Table> {
    let net = ScenarioBuilder::new(Topology::Grid {
        rows: SIDE,
        cols: SIDE,
    })
    .capacity(5)
    .producer(9)
    .build()
    .expect("grid scenario builds");

    let (_, brtf_net) = run_planner_boxed(&net);
    let brtf_loads = brtf_net.load_vector();

    let mut table = Table::new(
        "fig1",
        &format!(
            "per-node stored-chunk difference vs. brute-force optimum \
             ({SIDE}x{SIDE} grid, {CHUNKS} chunks, producer node 9)"
        ),
        &["node", "Brtf", "Appx", "Dist", "Hopc", "Cont"],
    );

    let mut diffs: Vec<Vec<i64>> = Vec::new();
    for planner in all_planners() {
        let (_, final_net) = run_planner(planner.as_ref(), &net, CHUNKS);
        diffs.push(distribution_diff(&final_net.load_vector(), &brtf_loads));
    }
    for node in 0..net.node_count() {
        let mut row = vec![node.to_string(), brtf_loads[node].to_string()];
        for diff in &diffs {
            row.push(format!("{:+}", diff[node]));
        }
        table.push_row(row);
    }

    let mut summary = Table::new(
        "fig1_summary",
        "sum of absolute per-node differences vs. optimum (smaller = closer)",
        &["algorithm", "sum |diff|"],
    );
    for (planner, diff) in all_planners().iter().zip(&diffs) {
        let total: i64 = diff.iter().map(|d| d.abs()).sum();
        summary.push_row(vec![planner.name().to_string(), total.to_string()]);
    }
    vec![table, summary]
}

fn run_planner_boxed(
    net: &peercache_core::Network,
) -> (
    peercache_core::placement::Placement,
    peercache_core::Network,
) {
    run_planner(&BruteForcePlanner::default(), net, CHUNKS)
}
