//! Fig. 9 — per-chunk contention cost with 10 distinct chunks.
//!
//! Chunks of one data item must arrive together, so their costs should
//! be even. The baselines show two flat plateaus (same node set for the
//! first five chunks, then the next set); the fair planners vary
//! smoothly and sit lower for most chunks.

use peercache_core::workload::{ScenarioBuilder, Topology};

use crate::harness::{all_planners, f1, run_final_costed, Table};

const CHUNKS: usize = 10;

/// Runs the per-chunk experiment on the paper's two grid sizes.
pub fn run() -> Vec<Table> {
    let mut out = Vec::new();
    for (panel, side) in [("fig9a", 4usize), ("fig9b", 6)] {
        let net = ScenarioBuilder::new(Topology::Grid {
            rows: side,
            cols: side,
        })
        .capacity(5)
        .build()
        .expect("grid scenario builds");
        let mut series: Vec<(String, Vec<f64>)> = Vec::new();
        for planner in all_planners() {
            let (p, _) = run_final_costed(planner.as_ref(), &net, CHUNKS);
            series.push((planner.name().to_string(), p.per_chunk_contention()));
        }
        let mut table = Table::new(
            panel,
            &format!(
                "per-chunk contention cost, 10 chunks \
                 ({side}x{side} grid, final-state accounting)"
            ),
            &["chunk", "Appx", "Dist", "Hopc", "Cont"],
        );
        for c in 0..CHUNKS {
            let mut row = vec![(c + 1).to_string()];
            for (_, per) in &series {
                row.push(f1(per[c]));
            }
            table.push_row(row);
        }
        out.push(table);
    }
    out
}
