//! `chaos` — not a paper figure: the partition-tolerance extension.
//!
//! Runs one protocol round per fault intensity on the 10x10 grid and
//! the random-geometric topology, with the liveness mechanisms armed
//! (retry/backoff, FREEZE leases, election timeouts). Intensity scales
//! message loss, duplication, reordering, and the length of a
//! partition window islanding one node. The paper's protocol assumes a
//! quiet network; this table shows convergence degrading gracefully —
//! more ticks and retries, deposed ADMINs re-elected — instead of
//! stalling.

use peercache_core::workload::{paper_grid, paper_random};
use peercache_core::{ChunkId, Network};
use peercache_dist::engine::LossConfig;
use peercache_dist::sim::{run_chunk_round, SimConfig};
use peercache_dist::view::build_views;
use peercache_dist::{FaultPlan, LivenessConfig};
use peercache_graph::NodeId;

use crate::harness::Table;

const K_HOPS: u32 = 2;
const INTENSITIES: [f64; 4] = [0.0, 0.1, 0.2, 0.3];

/// Fault-intensity sweep config: loss, duplication, and reordering at
/// the given probability, plus a partition window whose length grows
/// with the intensity — the same cells as the `chaos_matrix` bench.
fn config_at(net: &Network, intensity: f64) -> SimConfig {
    let island = if net.producer() == NodeId::new(0) {
        NodeId::new(1)
    } else {
        NodeId::new(0)
    };
    let mut chaos = FaultPlan::new(0xFA117)
        .duplicate(intensity / 2.0)
        .reorder(intensity / 2.0, 2);
    let window = (intensity * 200.0) as u64;
    if window > 0 {
        chaos = chaos.partition(10, 10 + window, vec![island]);
    }
    SimConfig {
        loss: LossConfig {
            drop_probability: intensity,
            seed: 29,
        },
        chaos,
        liveness: LivenessConfig {
            retry_limit: 3,
            backoff_base: 4,
            backoff_jitter: 2,
            lease_ticks: 20,
            election_timeout: 300,
        },
        ..Default::default()
    }
}

/// Runs the intensity sweep and tabulates convergence per cell.
pub fn run() -> Vec<Table> {
    let topologies = [
        ("grid10", paper_grid(10).expect("grid builds")),
        ("random60", paper_random(60, 7).expect("geometric builds")),
    ];
    let mut table = Table::new(
        "chaos",
        "protocol convergence vs fault intensity (loss + duplication + \
         reordering + partition window), liveness armed",
        &[
            "topology",
            "intensity",
            "ticks",
            "retries",
            "timeouts",
            "depositions",
            "chaos faults",
            "lossy drops",
            "degraded",
            "fallbacks",
        ],
    );
    for (name, net) in &topologies {
        let (views, _) = build_views(net, K_HOPS).expect("views build");
        for intensity in INTENSITIES {
            let cfg = config_at(net, intensity);
            let out = run_chunk_round(net, &views, ChunkId::new(0), &cfg);
            assert!(
                out.ticks < cfg.max_ticks,
                "{name} @ {intensity}: round must settle"
            );
            table.push_row(vec![
                (*name).to_string(),
                format!("{intensity:.2}"),
                out.ticks.to_string(),
                out.retries.to_string(),
                out.timeouts.to_string(),
                out.depositions.to_string(),
                out.faults.total().to_string(),
                out.stats.dropped.to_string(),
                out.degraded.len().to_string(),
                out.producer_fallbacks.to_string(),
            ]);
        }
    }
    vec![table]
}
