//! One module per figure of the paper's evaluation (§V).
//!
//! Every `run()` returns the [`crate::harness::Table`]s that regenerate
//! the figure's series; the `repro` binary emits them.

pub mod chaos;
pub mod churn;
pub mod fig1;
pub mod fig2;
pub mod fig3;
pub mod fig4;
pub mod fig5;
pub mod fig6;
pub mod fig7;
pub mod fig8;
pub mod fig9;
pub mod replication;
pub mod scale;
pub mod shard;

use crate::harness::Table;

/// Figure ids in paper order, plus the `churn`, `chaos`, `scale`,
/// `shard`, and `replication` extension tables.
pub const ALL: [&str; 14] = [
    "fig1",
    "fig2",
    "fig3",
    "fig4",
    "fig5",
    "fig6",
    "fig7",
    "fig8",
    "fig9",
    "churn",
    "chaos",
    "scale",
    "shard",
    "replication",
];

/// Dispatches a figure by id.
///
/// # Panics
///
/// Panics on an unknown id (the binary validates its arguments first).
pub fn run(id: &str) -> Vec<Table> {
    match id {
        "fig1" => fig1::run(),
        "fig2" => fig2::run(),
        "fig3" => fig3::run(),
        "fig4" => fig4::run(),
        "fig5" => fig5::run(),
        "fig6" => fig6::run(),
        "fig7" => fig7::run(),
        "fig8" => fig8::run(),
        "fig9" => fig9::run(),
        "churn" => churn::run(),
        "chaos" => chaos::run(),
        "replication" => replication::run(),
        "scale" => scale::run(),
        "shard" => shard::run(),
        other => panic!("unknown figure id: {other}"),
    }
}
