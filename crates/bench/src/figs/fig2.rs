//! Fig. 2 — total Contention Cost on small grids (with the brute-force
//! optimum) and large grids (100–256 nodes, where brute force "fails to
//! obtain results within meaningful time").

use peercache_core::exact::BruteForcePlanner;
use peercache_core::workload::{ScenarioBuilder, Topology};

use crate::harness::{all_planners, f1, run_planner, Table};

const CHUNKS: usize = 5;

fn grid(rows: usize, cols: usize) -> peercache_core::Network {
    ScenarioBuilder::new(Topology::Grid { rows, cols })
        .capacity(5)
        .build()
        .expect("grid scenario builds")
}

/// Runs both panels.
pub fn run() -> Vec<Table> {
    // (a) small networks, brute force included.
    let mut small = Table::new(
        "fig2a",
        "total contention cost, small grids (5 chunks; Brtf = practical optimum); \
         ratio column = single-chunk Appx/Brtf objective (bound: 6.55)",
        &[
            "nodes",
            "Brtf",
            "Appx",
            "Dist",
            "Hopc",
            "Cont",
            "ratio(q=1)",
        ],
    );
    for (rows, cols) in [(2, 2), (2, 3), (3, 3), (3, 4), (4, 4)] {
        let net = grid(rows, cols);
        let (brtf, _) = run_planner(&BruteForcePlanner::default(), &net, CHUNKS);
        let mut row = vec![(rows * cols).to_string(), f1(brtf.total_contention_cost())];
        for planner in all_planners() {
            let (p, _) = run_planner(planner.as_ref(), &net, CHUNKS);
            row.push(f1(p.total_contention_cost()));
        }
        // The approximation guarantee is per ConFL instance, i.e. per
        // chunk; across chunks both solvers are myopic and can trade
        // places. Report the certified single-chunk ratio.
        let objective = |p: &peercache_core::placement::Placement| {
            let c = p.total_costs();
            c.fairness + c.access + c.dissemination
        };
        let (brtf1, _) = run_planner(&BruteForcePlanner::default(), &net, 1);
        let planners = all_planners();
        let (appx1, _) = run_planner(planners[0].as_ref(), &net, 1);
        row.push(format!("{:.2}", objective(&appx1) / objective(&brtf1)));
        small.push_row(row);
    }

    // (b) large networks.
    let mut large = Table::new(
        "fig2b",
        "total contention cost, large grids (5 chunks; brute force infeasible)",
        &["nodes", "Appx", "Dist", "Hopc", "Cont"],
    );
    for side in [10usize, 12, 14, 16] {
        let net = grid(side, side);
        let mut row = vec![(side * side).to_string()];
        for planner in all_planners() {
            let (p, _) = run_planner(planner.as_ref(), &net, CHUNKS);
            row.push(f1(p.total_contention_cost()));
        }
        large.push_row(row);
    }
    vec![small, large]
}
