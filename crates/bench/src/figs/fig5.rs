//! Fig. 5 — running time to compute one chunk's caching locations.
//!
//! The paper times its Python implementations on grids; we report
//! wall-clock per single-chunk plan. Absolute numbers are incomparable
//! (Rust vs Python 2.7); the claims that survive are the polynomial
//! growth and the ordering (Appx at or below the greedy baselines,
//! brute force exploding immediately). Criterion variants live in
//! `benches/planner_runtime.rs`.

use std::time::Instant;

use peercache_core::exact::BruteForcePlanner;
use peercache_core::planner::CachePlanner;
use peercache_core::workload::{ScenarioBuilder, Topology};

use crate::harness::{all_planners, run_planner, Table};

fn time_one_chunk(planner: &dyn CachePlanner, net: &peercache_core::Network) -> f64 {
    // Median of three runs to tame scheduler noise.
    let mut samples = Vec::with_capacity(3);
    for _ in 0..3 {
        let start = Instant::now();
        let _ = run_planner(planner, net, 1);
        samples.push(start.elapsed().as_secs_f64() * 1e3);
    }
    samples.sort_by(f64::total_cmp);
    samples[1]
}

/// Runs the timing sweep.
pub fn run() -> Vec<Table> {
    let mut table = Table::new(
        "fig5",
        "wall-clock per single-chunk plan, ms (median of 3; Brtf only where feasible)",
        &["nodes", "Appx", "Dist", "Hopc", "Cont", "Brtf"],
    );
    for side in [4usize, 6, 8, 10, 12] {
        let net = ScenarioBuilder::new(Topology::Grid {
            rows: side,
            cols: side,
        })
        .capacity(5)
        .build()
        .expect("grid scenario builds");
        let mut row = vec![(side * side).to_string()];
        for planner in all_planners() {
            row.push(format!("{:.2}", time_one_chunk(planner.as_ref(), &net)));
        }
        if side <= 4 {
            row.push(format!(
                "{:.2}",
                time_one_chunk(&BruteForcePlanner::default(), &net)
            ));
        } else {
            row.push("-".to_string());
        }
        table.push_row(row);
    }
    vec![table]
}
