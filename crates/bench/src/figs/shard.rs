//! `shard` — not a paper figure: the region-sharded world's thread
//! sweep.
//!
//! Replays the same seeded churn trace (arrivals, departures, link
//! drops) through one [`peercache_core::sharded::ShardedWorld`] per
//! thread setting and tabulates the wall times. The sweep *asserts*
//! bit-identical final digests across settings before rendering — the
//! table cannot print from a nondeterministic run. Committed numbers
//! live in `BENCH_shard.json` (written by `cargo bench --bench shard`);
//! wall times and the speedup are machine-dependent, everything else is
//! exact.

use crate::harness::Table;
use crate::shard_cells::{run_sweep, speedup_8x, GRID_SIDE, RETENTION, TICKS};

/// Runs the full thread sweep and renders the table.
pub fn run() -> Vec<Table> {
    let rows = run_sweep(GRID_SIDE, TICKS);
    let mut table = Table::new(
        "shard",
        &format!(
            "region-sharded world thread sweep: grid{GRID_SIDE}, {RETENTION} live chunks, \
             {TICKS} churn ticks (committed sweep: BENCH_shard.json)"
        ),
        &[
            "threads",
            "wall ms",
            "digest",
            "shards",
            "cross-shard events",
        ],
    );
    for r in &rows {
        table.push_row(vec![
            r.threads.to_string(),
            format!("{:.1}", r.wall_ms),
            format!("{:#018x}", r.digest),
            r.shards.to_string(),
            r.cross_shard_events.to_string(),
        ]);
    }
    let mut summary = Table::new(
        "shard-speedup",
        "wall(1 thread) / wall(8 threads); ~1.0 on a single-core host",
        &["speedup 1->8"],
    );
    summary.push_row(vec![format!("{:.2}x", speedup_8x(&rows))]);
    vec![table, summary]
}
