//! Entry point for the workspace `repro` binary: argument parsing and
//! dispatch to the figure modules and the run-summary mode.

use std::process::ExitCode;
use std::time::Instant;

use peercache_core::workload::{paper_grid, paper_random};
use peercache_obs as obs;

use crate::figs;
use crate::harness::{planner_walltime_by_size, run_summary, Table};
use crate::{perf, trace_cmd};

/// Runs the no-argument mode: a compact summary of every planner on
/// every reference topology (wall time, cost breakdown, messages).
fn summary() -> ExitCode {
    let topologies = [
        ("grid4", paper_grid(4)),
        ("grid6", paper_grid(6)),
        ("random24", paper_random(24, 7)),
    ];
    let mut built = Vec::new();
    for (name, net) in topologies {
        match net {
            Ok(net) => built.push((name, net)),
            Err(e) => {
                eprintln!("cannot build topology {name}: {e}");
                return ExitCode::FAILURE;
            }
        }
    }
    run_summary(&built, 3).emit();
    planner_walltime_by_size(&[4, 8, 12, 16, 20], 3).emit();
    obs::emit_metrics();
    ExitCode::SUCCESS
}

/// `repro trace <file.jsonl>`: span-forest analysis of a sink capture.
fn trace_mode(args: &[String]) -> ExitCode {
    let Some(path) = args.first() else {
        eprintln!("usage: repro trace <file.jsonl>");
        return ExitCode::from(2);
    };
    let span = obs::span!("repro.trace", file = path.clone());
    let content = match std::fs::read_to_string(path) {
        Ok(c) => c,
        Err(e) => {
            eprintln!("cannot read {path}: {e}");
            return ExitCode::from(2);
        }
    };
    match trace_cmd::analyze(&content) {
        Ok(report) => {
            for line in &report.lines {
                println!("{line}");
            }
            drop(span);
            ExitCode::SUCCESS
        }
        Err(e) => {
            eprintln!("{path}: {e}");
            ExitCode::FAILURE
        }
    }
}

/// `repro lint <report.json>`: renders the static-analysis report the
/// deep lint pass wrote (`peercache-lint --deep --json ...`) as a
/// per-rule summary table plus the unwaived findings, if any.
fn lint_mode(args: &[String]) -> ExitCode {
    let Some(path) = args.first() else {
        eprintln!("usage: repro lint <lint-report.json>");
        return ExitCode::from(2);
    };
    let content = match std::fs::read_to_string(path) {
        Ok(c) => c,
        Err(e) => {
            eprintln!("cannot read {path}: {e}");
            return ExitCode::from(2);
        }
    };
    let report = match obs::Json::parse(&content) {
        Ok(j) => j,
        Err(e) => {
            eprintln!("{path}: {e}");
            return ExitCode::FAILURE;
        }
    };
    if report.get("schema").and_then(obs::Json::as_str) != Some("peercache-lint/1") {
        eprintln!("{path}: not a peercache-lint/1 report");
        return ExitCode::FAILURE;
    }
    let deep = report.get("deep").and_then(obs::Json::as_bool) == Some(true);
    let files = report.get("files").and_then(obs::Json::as_u64).unwrap_or(0);
    let functions = report
        .get("functions")
        .and_then(obs::Json::as_u64)
        .unwrap_or(0);
    let duration = report
        .get("duration_ms")
        .and_then(obs::Json::as_u64)
        .unwrap_or(0);
    let mut table = Table::new(
        "lint",
        &format!(
            "Static analysis: {files} files, {functions} functions ({} pass, {duration} ms)",
            if deep { "deep" } else { "token" }
        ),
        &["rule", "total", "waived", "open"],
    );
    let empty: [(String, obs::Json); 0] = [];
    let rules = report
        .get("rules")
        .and_then(obs::Json::as_obj)
        .unwrap_or(&empty);
    let mut open_total = 0u64;
    for (rule, counts) in rules {
        let total = counts.get("total").and_then(obs::Json::as_u64).unwrap_or(0);
        let waived = counts
            .get("waived")
            .and_then(obs::Json::as_u64)
            .unwrap_or(0);
        let open = total.saturating_sub(waived);
        open_total += open;
        table.push_row(vec![
            rule.clone(),
            total.to_string(),
            waived.to_string(),
            open.to_string(),
        ]);
    }
    table.emit();
    if let Some(findings) = report.get("findings").and_then(obs::Json::as_arr) {
        for f in findings {
            if f.get("waived").and_then(obs::Json::as_bool) == Some(true) {
                continue;
            }
            println!(
                "OPEN {}:{} [{}] {}",
                f.get("file").and_then(obs::Json::as_str).unwrap_or("?"),
                f.get("line").and_then(obs::Json::as_u64).unwrap_or(0),
                f.get("rule").and_then(obs::Json::as_str).unwrap_or("?"),
                f.get("message").and_then(obs::Json::as_str).unwrap_or(""),
            );
        }
    }
    if open_total > 0 {
        eprintln!("lint report has {open_total} open finding(s)");
        return ExitCode::FAILURE;
    }
    ExitCode::SUCCESS
}

/// `repro perf [--check]`: re-measures the committed baselines and
/// diffs them field by field. With `--check`, any discrepancy turns
/// into a nonzero exit (the CI regression gate).
fn perf_mode(args: &[String]) -> ExitCode {
    let check = args.iter().any(|a| a == "--check");
    if let Some(bad) = args.iter().find(|a| *a != "--check") {
        eprintln!("unknown perf option: {bad} (only --check is accepted)");
        return ExitCode::from(2);
    }
    let band = perf::wall_band();
    let root = std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("../..");
    let span = obs::span!("repro.perf", check = check, band = band);
    let results = match perf::run_gate(&root, band) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("perf gate: {e}");
            return ExitCode::FAILURE;
        }
    };
    let mut regressions = 0usize;
    for (file, diffs) in &results {
        if diffs.is_empty() {
            println!("{file}: OK (counts exact, wall times within {band}x)");
        } else {
            regressions += diffs.len();
            println!(
                "{file}: {} discrepanc{}",
                diffs.len(),
                if diffs.len() == 1 { "y" } else { "ies" }
            );
            for d in diffs {
                println!("  {}: {}", d.path, d.detail);
            }
        }
    }
    drop(span);
    if check && regressions > 0 {
        eprintln!("perf gate FAILED: {regressions} field(s) outside tolerance");
        return ExitCode::FAILURE;
    }
    ExitCode::SUCCESS
}

/// The `repro` binary: `repro` (run summary), `repro all`,
/// `repro fig1 ... fig9`, `repro trace <file.jsonl>`,
/// `repro perf [--check]`, or `repro lint <report.json>`. Returns the
/// process exit code.
pub fn main_with_args(args: &[String]) -> ExitCode {
    if args.iter().any(|a| a == "-h" || a == "--help") {
        eprintln!(
            "usage: repro [all | fig1 .. fig9 | churn | chaos | scale | shard | replication]..."
        );
        eprintln!("       repro            (no args: run summary over every planner)");
        eprintln!("       repro trace <file.jsonl>   (span-forest analysis of a sink capture)");
        eprintln!("       repro perf [--check]       (diff fresh bench numbers vs BENCH_*.json)");
        eprintln!("       repro lint <report.json>   (summary of a peercache-lint --json report)");
        eprintln!("figures: {}", figs::ALL.join(" "));
        return ExitCode::from(2);
    }
    if args.is_empty() {
        return summary();
    }
    match args.first().map(String::as_str) {
        Some("trace") => return trace_mode(args.get(1..).unwrap_or(&[])),
        Some("perf") => return perf_mode(args.get(1..).unwrap_or(&[])),
        Some("lint") => return lint_mode(args.get(1..).unwrap_or(&[])),
        _ => {}
    }
    let ids: Vec<&str> = if args.iter().any(|a| a == "all") {
        figs::ALL.to_vec()
    } else {
        args.iter().map(String::as_str).collect()
    };
    for id in &ids {
        if !figs::ALL.contains(id) {
            eprintln!(
                "unknown figure id: {id} (expected one of {})",
                figs::ALL.join(", ")
            );
            return ExitCode::from(2);
        }
    }
    for id in ids {
        let start = Instant::now();
        let span = obs::span!("repro.figure", id = id.to_string());
        for table in figs::run(id) {
            table.emit();
        }
        drop(span);
        eprintln!("[{id} done in {:.1}s]\n", start.elapsed().as_secs_f64());
    }
    obs::emit_metrics();
    ExitCode::SUCCESS
}
