//! Entry point for the workspace `repro` binary: argument parsing and
//! dispatch to the figure modules and the run-summary mode.

use std::process::ExitCode;
use std::time::Instant;

use peercache_core::workload::{paper_grid, paper_random};
use peercache_obs as obs;

use crate::figs;
use crate::harness::{planner_walltime_by_size, run_summary};

/// Runs the no-argument mode: a compact summary of every planner on
/// every reference topology (wall time, cost breakdown, messages).
fn summary() -> ExitCode {
    let topologies = [
        ("grid4", paper_grid(4)),
        ("grid6", paper_grid(6)),
        ("random24", paper_random(24, 7)),
    ];
    let mut built = Vec::new();
    for (name, net) in topologies {
        match net {
            Ok(net) => built.push((name, net)),
            Err(e) => {
                eprintln!("cannot build topology {name}: {e}");
                return ExitCode::FAILURE;
            }
        }
    }
    run_summary(&built, 3).emit();
    planner_walltime_by_size(&[4, 8, 12, 16, 20], 3).emit();
    obs::emit_metrics();
    ExitCode::SUCCESS
}

/// The `repro` binary: `repro` (run summary), `repro all`, or
/// `repro fig1 ... fig9`. Returns the process exit code.
pub fn main_with_args(args: &[String]) -> ExitCode {
    if args.iter().any(|a| a == "-h" || a == "--help") {
        eprintln!("usage: repro [all | fig1 .. fig9 | churn | chaos]...");
        eprintln!("       repro            (no args: run summary over every planner)");
        eprintln!("figures: {}", figs::ALL.join(" "));
        return ExitCode::from(2);
    }
    if args.is_empty() {
        return summary();
    }
    let ids: Vec<&str> = if args.iter().any(|a| a == "all") {
        figs::ALL.to_vec()
    } else {
        args.iter().map(String::as_str).collect()
    };
    for id in &ids {
        if !figs::ALL.contains(id) {
            eprintln!(
                "unknown figure id: {id} (expected one of {})",
                figs::ALL.join(", ")
            );
            return ExitCode::from(2);
        }
    }
    for id in ids {
        let start = Instant::now();
        let span = obs::span!("repro.figure", id = id.to_string());
        for table in figs::run(id) {
            table.emit();
        }
        drop(span);
        eprintln!("[{id} done in {:.1}s]\n", start.elapsed().as_secs_f64());
    }
    obs::emit_metrics();
    ExitCode::SUCCESS
}
