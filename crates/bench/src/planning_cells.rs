//! The planning-hot-path measurement shared by the `planning_hot_path`
//! criterion bench and the `repro perf` regression gate (same
//! workloads, same median-of-N timing, same JSON rendering as the
//! committed `BENCH_planning.json`).

use std::time::Instant;

use peercache_core::approx::{ApproxConfig, ApproxPlanner};
use peercache_core::planner::CachePlanner;
use peercache_core::workload::paper_grid;
use peercache_core::Network;

/// Chunks planned per measurement.
pub const CHUNKS: usize = 8;

/// Grid sides of the full (non-quick) measurement.
pub const FULL_SIDES: [usize; 2] = [10, 20];

/// Timing repetitions of the full measurement (median taken).
pub const FULL_RUNS: usize = 3;

/// The optimized pipeline under measurement.
pub fn optimized_config() -> ApproxConfig {
    ApproxConfig::default()
}

/// The original reference pipeline.
pub fn reference_config() -> ApproxConfig {
    ApproxConfig {
        reference_mode: true,
        ..Default::default()
    }
}

/// Plans `chunks` chunks on a copy of `net` and returns the total cost.
pub fn plan_total(net: &Network, cfg: &ApproxConfig, chunks: usize) -> f64 {
    let mut copy = net.clone();
    let placement = ApproxPlanner::new(cfg.clone())
        .plan(&mut copy, chunks)
        .expect("planner succeeds");
    placement.total_costs().total()
}

/// Median wall time in milliseconds over `runs` full plans.
pub fn measure_ms(net: &Network, cfg: &ApproxConfig, chunks: usize, runs: usize) -> f64 {
    let mut samples: Vec<f64> = (0..runs)
        .map(|_| {
            let start = Instant::now();
            let total = plan_total(net, cfg, chunks);
            let ms = start.elapsed().as_secs_f64() * 1e3;
            assert!(total.is_finite());
            ms
        })
        .collect();
    samples.sort_by(f64::total_cmp);
    samples[samples.len() / 2]
}

/// One result row: `(topology, nodes, optimized_ms, reference_ms,
/// cost_bitwise_equal)`.
pub type Row = (String, usize, f64, f64, bool);

/// Measures one grid side at the baseline's settings.
pub fn measure_side(side: usize, runs: usize) -> Row {
    let net = paper_grid(side).expect("grid builds");
    let opt_ms = measure_ms(&net, &optimized_config(), CHUNKS, runs);
    let ref_ms = measure_ms(&net, &reference_config(), CHUNKS, runs);
    let cost_equal = plan_total(&net, &optimized_config(), CHUNKS).to_bits()
        == plan_total(&net, &reference_config(), CHUNKS).to_bits();
    (
        format!("grid{side}"),
        side * side,
        opt_ms,
        ref_ms,
        cost_equal,
    )
}

/// Renders the rows in the exact committed `BENCH_planning.json` format.
pub fn render_json(rows: &[Row], chunks: usize) -> String {
    let mut out = String::from("{\n");
    out.push_str("  \"bench\": \"planning_hot_path\",\n");
    out.push_str(&format!("  \"chunks\": {chunks},\n"));
    out.push_str("  \"planner\": \"Appx\",\n  \"results\": [\n");
    for (idx, (topo, nodes, opt_ms, ref_ms, cost_equal)) in rows.iter().enumerate() {
        let comma = if idx + 1 < rows.len() { "," } else { "" };
        out.push_str(&format!(
            "    {{\"topology\": \"{topo}\", \"nodes\": {nodes}, \
             \"optimized_ms\": {opt_ms:.1}, \"reference_ms\": {ref_ms:.1}, \
             \"speedup\": {:.2}, \"cost_bitwise_equal\": {cost_equal}}}{comma}\n",
            ref_ms / opt_ms,
        ));
    }
    out.push_str("  ]\n}\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn optimized_and_reference_agree_bitwise_on_a_small_grid() {
        let (_, nodes, opt_ms, ref_ms, equal) = measure_side(4, 1);
        assert_eq!(nodes, 16);
        assert!(opt_ms > 0.0 && ref_ms > 0.0);
        assert!(equal, "pipelines must price plans identically");
    }
}
