//! Fixture for rule R1: direct shard-state mutation outside the shard
//! modules. Never compiled — lexed by the lint tests only.

pub fn poke_foreign_shard(world: &mut ShardedWorld, row: ArenaRow) {
    // Reaching into another shard's arena bypasses the router's
    // deterministic (shard, seq) merge order.
    let shard = &mut world.shards[0];
    shard.arena_mut().set(row.client, row.chunk, row.provider, row.cost_bits);
}

pub fn replay_event_out_of_band(shard: &mut WorldShard, ev: CrossShardEvent) {
    // Applying a cross-shard event outside the owning shard's drain.
    shard.apply_cross(ev);
}

pub fn quiet_sites(shard: &WorldShard) -> usize {
    // Mentions without a call never fire: doc talk about arena_mut and
    // apply_cross semantics, field-position identifiers, reads.
    let arena_mut_count = 0;
    shard.arena().len() + arena_mut_count
}

#[cfg(test)]
mod tests {
    // Test-only regions stay exempt even for R1.
    fn t(shard: &mut WorldShard, ev: CrossShardEvent) {
        shard.apply_cross(ev);
        shard.arena_mut().remove_chunk(ChunkId::new(0));
    }
}
