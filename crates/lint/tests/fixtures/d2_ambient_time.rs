// Fixture: D2 must flag ambient time and randomness sources.
use std::time::Instant;
use std::time::SystemTime;

pub fn timed_repair() -> u64 {
    let start = Instant::now();
    let _wall = SystemTime::now();
    let mut rng = rand::thread_rng();
    let _ = rng;
    start.elapsed().as_micros() as u64
}
