// Fixture: S1 must flag dense all-pairs computes outside the
// sanctioned files, in both the plain and parallel form, but leave
// doc-path references and test-only regions alone.
use peercache_graph::paths::{AllPairsPaths, Parallelism, PathSelection};

/// See [`AllPairsPaths::compute`] for the dense form.
pub fn rebuild_everything(g: &Graph, costs: &[f64]) -> AllPairsPaths {
    let dense = AllPairsPaths::compute(g, costs, PathSelection::FewestHops).unwrap();
    let par = AllPairsPaths::compute_with(g, costs, PathSelection::FewestHops, Parallelism::Auto);
    let _ = par;
    dense
}

#[cfg(test)]
mod tests {
    #[test]
    fn dense_is_fine_in_tests() {
        let _ = AllPairsPaths::compute(&g(), &[1.0], PathSelection::FewestHops);
    }
}
