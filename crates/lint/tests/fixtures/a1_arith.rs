//! A1 positive fixture: raw integer arithmetic inside a digest path.
//! Linted as if in `crates/core`.

fn splitmix(h: u64, x: u64) -> u64 {
    let z = h ^ x;
    z.wrapping_mul(0x9E37_79B9_7F4A_7C15)
}

/// Two calls below the digest root: the raw `<<` and `+` here must both
/// be flagged, each with a trace back to `state_digest`.
fn mix_row(h: u64, c: u32, p: u32) -> u64 {
    let key = ((c as u64) << 32) | p as u64;
    splitmix(h, key + 1)
}

pub fn state_digest(rows: &[(u32, u32)]) -> u64 {
    let mut h = 0u64;
    for &(c, p) in rows {
        h = mix_row(h, c, p);
    }
    h
}
