//! A1 negative fixture: wrapping arithmetic inside the digest path, the
//! documented operator escapes, and raw arithmetic *outside* any digest
//! path (which is not A1's business).

fn splitmix(h: u64, x: u64) -> u64 {
    let z = h ^ x;
    z.wrapping_mul(0x9E37_79B9_7F4A_7C15)
}

fn mix_row(h: u64, c: u32, p: u32) -> u64 {
    let key = (c as u64).wrapping_shl(32) | p as u64;
    let offset = 4 + 4;
    let weight = key as f64 * 0.5;
    let _ = weight;
    splitmix(h, key.wrapping_add(offset))
}

pub fn state_digest(rows: &[(u32, u32)]) -> u64 {
    let mut h = 0u64;
    for &(c, p) in rows {
        h = mix_row(h, c, p);
    }
    h
}

/// Raw `+` on an integer, but no digest function reaches here: quiet.
pub fn tally(xs: &[u64]) -> u64 {
    let mut t = 0u64;
    for &x in xs {
        t = t + x;
    }
    t
}
