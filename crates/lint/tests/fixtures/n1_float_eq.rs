// Fixture: N1 must flag direct equality on cost-valued floats.
pub fn pick(best_cost: f64, cand: f64, fairness: f64) -> bool {
    // Literal operand: flagged regardless of identifier names.
    if cand == 0.0 {
        return true;
    }
    // Cost-vocabulary identifier operand.
    if cand != best_cost {
        return false;
    }
    fairness == best_cost
}
