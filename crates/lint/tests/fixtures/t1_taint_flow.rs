//! T1 positive fixture: determinism taint reaching ordering-sensitive
//! sinks across function boundaries. Linted as if in `crates/core`.

/// Ambient-time source: reads the wall clock.
fn ambient_seed() -> u64 {
    let t = Instant::now();
    t.elapsed().as_nanos() as u64
}

/// Middle hop: no source of its own, inherits taint from `ambient_seed`.
fn fold_state(x: u64) -> u64 {
    ambient_seed() ^ x
}

/// Sink primitive (by name): the taint arrives two calls deep, so the
/// finding must carry a multi-step flow trace.
pub fn state_digest(seed: u64) -> u64 {
    fold_state(seed)
}

/// Hash-iteration-order source feeding an emission sink directly: the
/// values come out in `HashMap` order and go straight into telemetry.
fn order_counts(m: &HashMap<u32, u32>) -> Vec<u32> {
    m.values().copied().collect()
}

pub fn report(m: &HashMap<u32, u32>) {
    let v = order_counts(m);
    obs::event!("fixture.report", n = v.len());
}
