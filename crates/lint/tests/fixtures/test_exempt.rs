// Fixture: violations confined to test-only items are exempt.
pub fn production(x: Option<u32>) -> u32 {
    x.unwrap_or_default()
}

#[cfg(test)]
mod tests {
    use std::collections::HashMap;
    use std::time::Instant;

    #[test]
    fn helper_may_unwrap() {
        let start = Instant::now();
        let mut m: HashMap<u32, f64> = HashMap::new();
        m.insert(1, 0.5);
        let cost = m.get(&1).copied().unwrap();
        assert!(cost == 0.5);
        let _ = start.elapsed();
    }
}
