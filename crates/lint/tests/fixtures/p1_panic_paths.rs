// Fixture: P1 must flag every panic vector in a protocol path.
pub fn deliver(queue: &mut Vec<Option<u32>>) -> u32 {
    let slot = queue.pop().unwrap();
    let payload = slot.expect("queued slots hold payloads");
    if payload == 0 {
        panic!("zero payload");
    }
    if payload == 1 {
        todo!("retransmission");
    }
    if payload == 2 {
        unreachable!("filtered earlier");
    }
    payload
}
