//! T1 negative fixture: the same flow shapes as `t1_taint_flow.rs`, cut
//! at the sanctioned boundaries or sanitized before the sink.

/// Sanctioned boundary: `MonotonicClock::now_us` may read ambient time —
/// tests freeze it — so its taint must not propagate to callers.
impl MonotonicClock {
    pub fn now_us(&self) -> u64 {
        let t = Instant::now();
        t.elapsed().as_micros() as u64
    }
}

fn sim_now(clock: &MonotonicClock) -> u64 {
    clock.now_us()
}

/// Sink primitive fed only through the sanctioned clock: clean.
pub fn state_digest(clock: &MonotonicClock) -> u64 {
    sim_now(clock)
}

/// Hash-order source sanitized at function granularity: the contents are
/// sorted before they leave, so the hash class is cleared here.
fn sorted_counts(m: &HashMap<u32, u32>) -> Vec<u32> {
    let mut v: Vec<u32> = m.values().copied().collect();
    v.sort_unstable();
    v
}

/// Emission sink fed only through the sanitizing function: clean.
pub fn emit_summary(world: &World) {
    let v = sorted_counts(world.counts());
    obs::event!("fixture.sorted", n = v.len());
}
