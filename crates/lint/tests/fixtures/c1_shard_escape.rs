//! C1 positive fixture: fan-out closures that escape their shard. Linted
//! as if in `crates/core`.

fn emit_progress(done: usize) {
    obs::event!("fixture.progress", done = done);
}

/// Every escape vector at once: an outer `&mut` capture, a direct
/// emission, a resolved call that reaches emission, and calls to a
/// caller-supplied closure — none of them quiet-wrapped.
pub fn leaky_fan_out(items: &[u32], acc: &mut Vec<u64>, task: impl Fn(u32) -> u64 + Sync) {
    let mut slots: Vec<Option<u64>> = (0..items.len()).map(|_| None).collect();
    std::thread::scope(|s| {
        for (slot, item) in slots.iter_mut().zip(items) {
            s.spawn(move || {
                obs::counter("fixture.items").incr();
                emit_progress(1);
                push_result(&mut acc, task(*item));
                *slot = Some(task(*item));
            });
        }
    });
}

/// Direct shard mutation from a worker thread.
pub fn mutating_fan_out(shard: &mut WorldShard, items: &[u32]) {
    std::thread::scope(|s| {
        s.spawn(|| {
            for &item in items {
                shard.arena_mut().retire(item);
            }
        });
    });
}
