// Fixture: idiomatic code that must pass every rule.
use std::collections::BTreeMap;

pub fn plan_order(weights: &BTreeMap<usize, f64>, eps: f64) -> Result<Vec<usize>, String> {
    // Epsilon comparison instead of `==`; integer ids compared exactly.
    let picked: Vec<usize> = weights
        .iter()
        .filter(|&(&id, &w)| (w - 1.0).abs() <= eps && id != 0)
        .map(|(&id, _)| id)
        .collect();
    picked
        .first()
        .copied()
        .map(|_| picked.clone())
        .ok_or_else(|| "empty plan".to_string())
}

pub fn fallible(queue: &mut Vec<Option<u32>>) -> Option<u32> {
    // `unwrap_or`-style combinators are fine; only `.unwrap()` panics.
    queue.pop().flatten().or(Some(0)).map(|p| p.saturating_add(1))
}

// Mentions in prose and strings must not fire: HashMap, Instant::now,
// thread_rng, unwrap.
pub const DOC: &str = "HashMap Instant SystemTime unwrap panic!";
