// Fixture: D1 must flag hash-ordered collections in deterministic crates.
use std::collections::HashMap;
use std::collections::HashSet;

pub fn plan_order(ids: &[usize]) -> Vec<usize> {
    let mut seen: HashSet<usize> = HashSet::new();
    let mut weights: HashMap<usize, f64> = HashMap::new();
    for &id in ids {
        if seen.insert(id) {
            weights.insert(id, 1.0);
        }
    }
    // Iteration order of a HashMap is nondeterministic: this is exactly
    // the bug class D1 exists to stop.
    weights.keys().copied().collect()
}
