//! C1 negative fixture: the same fan-out shape with every obligation
//! discharged — workers write only their own slot and all potentially
//! emitting calls are wrapped in `obs::with_quiet`.

fn emit_progress(done: usize) {
    obs::event!("fixture.progress", done = done);
}

pub fn quiet_fan_out(items: &[u32], task: impl Fn(u32) -> u64 + Sync) -> Vec<u64> {
    let mut slots: Vec<Option<u64>> = (0..items.len()).map(|_| None).collect();
    std::thread::scope(|s| {
        for (slot, item) in slots.iter_mut().zip(items) {
            s.spawn(move || {
                let mut local = 0u64;
                local = local.wrapping_add(obs::with_quiet(|| task(*item)));
                obs::with_quiet(|| emit_progress(1));
                *slot = Some(local);
            });
        }
    });
    slots.into_iter().flatten().collect()
}
